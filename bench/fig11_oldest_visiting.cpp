// Figure 11: effect of inter-agent visiting on OLDEST-NODE agents. Paper:
// visiting *hurts* — after a meeting all participants hold identical
// histories, make identical movement decisions, and chase one another, so
// some nodes go unvisited and connectivity drops.
#include "bench_util.hpp"
#include "common/compare.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 11 — oldest-node agents, visiting vs not",
      "direct communication REDUCES oldest-node connectivity (identical "
      "histories → chasing)",
      runs);
  const auto& scenario = bench::routing_scenario();

  const std::vector<std::size_t> histories =
      bench_full() ? std::vector<std::size_t>{5, 10, 20, 30}
                   : std::vector<std::size_t>{5, 10, 20};

  Table table({"history", "no visiting", "visiting", "delta", "p-value"});
  for (std::size_t h : histories) {
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.policy = RoutingPolicy::kOldestNode;
    task.agent.history_size = h;

    task.agent.communicate = false;
    const auto solo =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    task.agent.communicate = true;
    const auto visiting =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

    const Comparison cmp = compare_samples(visiting.mean_connectivity,
                                           solo.mean_connectivity);
    table.add_row({static_cast<std::int64_t>(h),
                   solo.mean_connectivity.mean(),
                   visiting.mean_connectivity.mean(), cmp.difference,
                   cmp.p_value});
  }
  bench::finish_table("fig11", table);
  std::cout << "\n(paper expects delta < 0 for oldest-node agents; p-value "
               "is Welch's test on the per-run means)\n";
  return 0;
}
