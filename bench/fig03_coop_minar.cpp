// Figure 3: knowledge over time for 15 cooperating Minar conscientious
// agents. Paper: the team finishes mapping in ≈140 steps.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header("Fig 3 — 15 Minar conscientious agents, cooperation",
                      "team finishes ≈140 steps", runs);
  const auto& net = bench::mapping_network();

  MappingTaskConfig task;
  task.population = 15;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  const auto summary =
      run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
  bench::print_finish("15x conscientious (Minar)", summary);
  std::cout << "\nknowledge over time (mean across agents and runs):\n";
  bench::print_series("knowledge", summary.knowledge, 30);

  // Cooperation ablation: the same team with direct communication disabled.
  auto no_comm = task;
  no_comm.communication = false;
  const auto isolated =
      run_mapping_experiment(net, no_comm, runs, paper::kRunSeedBase);
  bench::print_finish("15x conscientious, communication OFF", isolated);
  std::printf("cooperation speedup: %.2fx\n",
              isolated.finishing_time.mean() / summary.finishing_time.mean());
  return 0;
}
