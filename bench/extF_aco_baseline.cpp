// Extension F — the related-work baseline: AntHocNet-style ant-colony
// routing (Di Caro/Ducatelle/Gambardella, the paper's ref [9]) versus the
// paper's mobile-agent designs, on the identical scenario and metric, with
// control overhead in bytes for both systems.
#include "aco/ant_routing_task.hpp"
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext F — ant-colony baseline vs mobile agents",
      "pheromone routing is competitive but pays per-packet path sampling; "
      "mobile agents amortise state in the walker",
      runs);
  const auto& scenario = bench::routing_scenario();

  Table table({"system", "connectivity", "ci95", "control MB"});

  // Mobile-agent designs (migration traffic = overhead).
  struct AgentRow {
    const char* label;
    RoutingPolicy policy;
    StigmergyMode mode;
    int population;
  };
  const AgentRow agent_rows[] = {
      {"mobile agents: oldest-node x100", RoutingPolicy::kOldestNode,
       StigmergyMode::kOff, 100},
      {"mobile agents: oldest-node+stig x100", RoutingPolicy::kOldestNode,
       StigmergyMode::kFilterFirst, 100},
      {"mobile agents: oldest-node x25", RoutingPolicy::kOldestNode,
       StigmergyMode::kOff, 25},
  };
  for (const auto& row : agent_rows) {
    auto task = bench::paper_routing_task();
    task.population = row.population;
    task.agent.policy = row.policy;
    task.agent.history_size = 10;
    task.agent.stigmergy = row.mode;
    RunningStats conn, mb;
    for (int r = 0; r < runs; ++r) {
      const auto result = run_routing_task(
          scenario, task,
          Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      conn.add(result.mean_connectivity);
      mb.add(static_cast<double>(result.migration_bytes) / 1e6);
    }
    table.add_row({std::string(row.label), conn.mean(),
                   confidence_halfwidth(conn), mb.mean()});
  }

  // Ant-colony settings: launch rate is the ants' population knob.
  for (double launch : {0.05, 0.2, 0.5}) {
    AntRoutingTaskConfig cfg;
    cfg.steps = paper::kRoutingSteps;
    cfg.measure_from = paper::kRoutingMeasureFrom;
    cfg.ants.launch_probability = launch;
    RunningStats conn, mb;
    for (int r = 0; r < runs; ++r) {
      const auto result = run_ant_routing_task(
          scenario, cfg,
          Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      conn.add(result.mean_connectivity);
      mb.add(static_cast<double>(result.control_bytes) / 1e6);
    }
    char label[64];
    std::snprintf(label, sizeof label, "ant colony: launch p=%.2f", launch);
    table.add_row({std::string(label), conn.mean(),
                   confidence_halfwidth(conn), mb.mean()});
  }

  bench::finish_table("extF", table);
  std::cout << "\n(control MB = agent migrations x serialized size, or ant "
               "hops x ant size — the same yardstick)\n";
  return 0;
}
