// Extension B — ablation of the stigmergy design choices called out in
// DESIGN.md: (1) footprint precedence (filter-first, the paper's
// description, vs tie-break only) and (2) footprint horizon, on the
// mapping task at two population sizes.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Ext B — stigmergy ablation (mapping)",
      "which ingredient of the footprint rule buys the speedup", runs);
  const auto& net = bench::mapping_network();

  const std::vector<int> pops{1, 15};
  struct Variant {
    const char* label;
    StigmergyMode mode;
    std::size_t horizon;  // 0 = never expires
  };
  const Variant variants[] = {
      {"no stigmergy", StigmergyMode::kOff, 0},
      {"tie-break only", StigmergyMode::kTieBreak, 0},
      {"filter-first (paper)", StigmergyMode::kFilterFirst, 0},
      {"filter-first, horizon 50", StigmergyMode::kFilterFirst, 50},
      {"filter-first, horizon 5", StigmergyMode::kFilterFirst, 5},
  };

  for (int pop : pops) {
    std::printf("population %d, conscientious agents:\n", pop);
    Table table({"variant", "finishing time", "ci95"});
    table.set_precision(1);
    for (const auto& v : variants) {
      MappingTaskConfig task;
      task.population = pop;
      task.agent = {MappingPolicy::kConscientious, v.mode};
      task.stigmergy_horizon = v.horizon;
      task.record_series = false;
      const auto summary =
          run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
      table.add_row({std::string(v.label), summary.finishing_time.mean(),
                     confidence_halfwidth(summary.finishing_time)});
    }
    bench::finish_table("extB_pop" + std::to_string(pop), table);
    std::cout << "\n";
  }
  return 0;
}
