// Figure 1: single-agent mapping with N. Minar's (non-stigmergic) agents on
// the paper's 300-node / ≈2164-edge network. Paper: the conscientious agent
// finishes around 3000 steps, the random agent around 8000.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Fig 1 — single agent, Minar algorithms",
      "conscientious ≈3000 steps, random ≈8000 steps (ratio ≈ 2.7x)", runs);
  const auto& net = bench::mapping_network();
  std::printf("network: %zu nodes, %zu directed edges\n\n",
              net.graph.node_count(), net.graph.edge_count());

  MappingTaskConfig task;
  task.population = 1;

  task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
  const auto random_summary =
      run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  const auto consc_summary =
      run_mapping_experiment(net, task, runs, paper::kRunSeedBase);

  bench::print_finish("random (Minar)", random_summary);
  bench::print_finish("conscientious (Minar)", consc_summary);
  std::printf("speedup conscientious vs random: %.2fx\n\n",
              random_summary.finishing_time.mean() /
                  consc_summary.finishing_time.mean());

  std::cout << "knowledge over time, random agent:\n";
  bench::print_series("knowledge", random_summary.knowledge, 20);
  std::cout << "knowledge over time, conscientious agent:\n";
  bench::print_series("knowledge", consc_summary.knowledge, 20);
  return 0;
}
