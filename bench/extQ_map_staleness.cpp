// Extension Q — how fast does a finished map rot? The paper's environment
// section warns that "the topology knowledge of the network become[s]
// invalid after awhile, such that we need to fire up the agents again".
// This bench maps a battery-degrading network once, then freezes the team
// and tracks the map's validity against the live topology — the re-fire
// schedule implied by the paper, quantified.
#include "bench_util.hpp"

using namespace agentnet;

namespace {

World decaying_world(const GeneratedNetwork& net, double drain,
                     double battery_fraction_of_nodes, Rng& rng) {
  const std::size_t n = net.positions.size();
  std::vector<bool> on_battery(n, false);
  const auto k = static_cast<std::size_t>(
      battery_fraction_of_nodes * static_cast<double>(n));
  for (std::size_t idx : rng.sample_indices(n, k)) on_battery[idx] = true;
  BatteryBank batteries(n, on_battery, BatteryParams{1.0, drain});
  return World(net.bounds, net.positions,
               RadioModel(net.base_ranges, RangeScaling{0.55}),
               std::move(batteries), std::make_unique<StationaryMobility>(),
               net.policy);
}

}  // namespace

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext Q — map staleness under battery decay",
      "a completed map loses validity as links rot; this is the re-fire "
      "interval the paper's architecture implies",
      runs);
  const auto& net = bench::mapping_network();
  const double drain = 0.0015;  // ~45% charge gone over 300 steps

  Table table({"steps after mapping", "recall", "precision", "ci95",
               "live links"});
  RunningStats validity_at[7];
  RunningStats precision_at[7];
  RunningStats links_at[7];
  const std::size_t checkpoints[] = {0, 25, 50, 100, 150, 200, 300};

  for (int r = 0; r < runs; ++r) {
    Rng rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r));
    World world = decaying_world(net, drain, 0.4, rng);

    // Map while the network decays (the realistic setting).
    StigmergyBoard board(world.node_count());
    std::vector<MappingAgent> agents;
    for (int a = 0; a < 15; ++a)
      agents.emplace_back(a, static_cast<NodeId>(
                                 rng.index(world.node_count())),
                          world.node_count(),
                          MappingAgentConfig{MappingPolicy::kConscientious,
                                             StigmergyMode::kFilterFirst},
                          rng.fork(a + 1));
    // Run until the team's pooled map covers 99% of the live topology.
    for (std::size_t t = 0; t < 2000; ++t) {
      for (auto& agent : agents) agent.sense(world.graph(), t);
      double best = 0.0;
      for (auto& agent : agents)
        best = std::max(best,
                        static_cast<double>(agent.knowledge()
                                                .known_edge_count_in(
                                                    world.graph())) /
                            static_cast<double>(world.graph().edge_count()));
      if (best >= 0.99) break;
      for (auto& agent : agents) {
        const NodeId target = agent.decide(world.graph(), board, t);
        if (target != agent.location())
          board.stamp(agent.location(), target, t);
        agent.move_to(target);
      }
      world.advance();
    }
    // Freeze: best-informed agent's map vs the decaying truth.
    const MappingAgent* best_agent = &agents[0];
    for (const auto& agent : agents)
      if (agent.knowledge().known_edge_count() >
          best_agent->knowledge().known_edge_count())
        best_agent = &agent;
    for (std::size_t c = 0; c < 7; ++c) {
      const Graph& truth = world.graph();
      const auto still_true =
          best_agent->knowledge().known_edge_count_in(truth);
      // Recall: how much of the live topology the frozen map covers.
      validity_at[c].add(static_cast<double>(still_true) /
                         static_cast<double>(truth.edge_count()));
      // Precision: how much of the frozen map is still real — THIS is what
      // rots under battery decay (the map asserts links that have died).
      precision_at[c].add(
          static_cast<double>(still_true) /
          static_cast<double>(best_agent->knowledge().known_edge_count()));
      links_at[c].add(static_cast<double>(truth.edge_count()));
      if (c + 1 < 7) {
        for (std::size_t s = checkpoints[c]; s < checkpoints[c + 1]; ++s)
          world.advance();
      }
    }
  }

  for (std::size_t c = 0; c < 7; ++c) {
    table.add_row({static_cast<std::int64_t>(checkpoints[c]),
                   validity_at[c].mean(), precision_at[c].mean(),
                   confidence_halfwidth(precision_at[c]),
                   links_at[c].mean()});
  }
  bench::finish_table("extQ", table);
  std::cout << "\n(recall = live links covered by the frozen map; precision "
               "= map links still alive. Battery decay only removes links, "
               "so recall holds while precision rots — a router using the "
               "stale map forwards into dead air. Falling precision is the "
               "paper's cue to re-fire the agents.)\n";
  return 0;
}
