// Figure 4: knowledge over time for 15 of the paper's stigmergic
// conscientious agents. Paper: ≈125 steps, roughly 10% faster than the
// Minar team of Fig. 3.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Fig 4 — 15 stigmergic conscientious agents, cooperation",
      "team finishes ≈125 steps, ~10% faster than Fig 3's ≈140", runs);
  const auto& net = bench::mapping_network();

  MappingTaskConfig task;
  task.population = 15;

  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  const auto minar =
      run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  const auto ours =
      run_mapping_experiment(net, task, runs, paper::kRunSeedBase);

  bench::print_finish("15x conscientious (Minar)", minar);
  bench::print_finish("15x conscientious (stigmergic)", ours);
  std::printf(
      "\nstigmergic team is %.1f%% faster (paper: ~10%%)\n\n",
      100.0 * (1.0 - ours.finishing_time.mean() /
                         minar.finishing_time.mean()));
  std::cout << "knowledge over time, stigmergic team:\n";
  bench::print_series("knowledge", ours.knowledge, 30);
  return 0;
}
