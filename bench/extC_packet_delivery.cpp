// Extension C — throughput and latency over stigmergetic routes. The
// paper's connectivity metric is a proxy for "how many nodes have access
// to the outside world"; this bench loads the network with flow traffic
// (docs/TRAFFIC.md) and reports what the proxy buys under load: offered vs
// carried load, delivery ratio, the drop taxonomy, and exact p50/p95/p99
// latency — comparing hop-count pheromone reinforcement against AntNet's
// delay-based reinforcement (with and without gateway balancing) at low
// and high offered load. Delay-based reinforcement should win the latency
// tail at high load: it routes around queues hop count cannot see.
#include "bench_util.hpp"

#include "experiments/traffic_experiments.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext C — flow traffic over ant-maintained routes",
      "AntNet (Di Caro & Dorigo): delay-aware stigmergy beats shortest-path "
      "metrics under load",
      runs);
  const auto& scenario = bench::routing_scenario();

  struct Setting {
    const char* label;
    double offered_load;
    AntReinforcement reinforcement;
    bool balance;
  };
  const double low = env_double("AGENTNET_TRAFFIC_LOW_LOAD", 0.05);
  const double high = env_double("AGENTNET_TRAFFIC_HIGH_LOAD", 0.3);
  const Setting settings[] = {
      {"hop-count, low load", low, AntReinforcement::kHopCount, false},
      {"delay, low load", low, AntReinforcement::kDelay, false},
      {"hop-count, high load", high, AntReinforcement::kHopCount, false},
      {"delay, high load", high, AntReinforcement::kDelay, false},
      {"delay+balance, high load", high, AntReinforcement::kDelay, true},
  };

  Table table({"setting", "offered", "carried", "delivery", "drop nr",
               "drop ld", "drop ttl", "drop qf", "p50", "p95", "p99"});
  for (const auto& s : settings) {
    TrafficTaskConfig task;
    task.steps = paper::kRoutingSteps;
    task.measure_from = paper::kRoutingMeasureFrom;
    task.workload = FlowWorkloadConfig::from_env();
    task.workload.offered_load = s.offered_load;
    task.queue = LinkQueueConfig::from_env();
    task.ants.reinforcement = s.reinforcement;
    task.balance_gateways = s.balance;

    const TrafficSummary summary = run_traffic_experiment(
        scenario, task, runs, paper::kRunSeedBase);
    const FlowTrafficStats& ts = summary.traffic;
    const auto frac = [&](std::uint64_t n) {
      return ts.generated == 0 ? 0.0
                               : static_cast<double>(n) /
                                     static_cast<double>(ts.generated);
    };
    table.add_row({std::string(s.label), summary.offered_load.mean(),
                   summary.carried_load.mean(), ts.delivery_ratio(),
                   frac(ts.dropped_no_route), frac(ts.dropped_link_down),
                   frac(ts.dropped_ttl), frac(ts.dropped_queue_full),
                   static_cast<std::int64_t>(ts.latency_quantile(0.5)),
                   static_cast<std::int64_t>(ts.latency_quantile(0.95)),
                   static_cast<std::int64_t>(ts.latency_quantile(0.99))});
  }
  bench::finish_table("extC", table);
  std::cout << "\n(offered/carried in packets per node per step over the "
               "converged window; latency percentiles in steps, exact from "
               "the merged integer histogram — bit-identical at any "
               "AGENTNET_THREADS; drop columns are fractions of generated: "
               "nr = no route, ld = link down, qf = queue full)\n";
  return 0;
}
