// Extension C — end-to-end packet delivery. The paper's connectivity metric
// is a proxy for "how many nodes have access to the outside world"; this
// bench injects real packets over the converged window and reports delivery
// ratio and latency for each agent design, showing how the proxy translates
// into service.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext C — packet delivery over agent-maintained routes",
      "delivery ratio should track the connectivity ordering of Figs 8-11",
      runs);
  const auto& scenario = bench::routing_scenario();

  struct Setting {
    const char* label;
    RoutingPolicy policy;
    bool communicate;
    StigmergyMode mode;
    int population;
  };
  const Setting settings[] = {
      {"random, pop 40", RoutingPolicy::kRandom, false, StigmergyMode::kOff,
       40},
      {"oldest-node, pop 40", RoutingPolicy::kOldestNode, false,
       StigmergyMode::kOff, 40},
      {"oldest-node, pop 100", RoutingPolicy::kOldestNode, false,
       StigmergyMode::kOff, 100},
      {"oldest-node + visiting, pop 100", RoutingPolicy::kOldestNode, true,
       StigmergyMode::kOff, 100},
      {"oldest-node + stigmergy, pop 100", RoutingPolicy::kOldestNode, false,
       StigmergyMode::kFilterFirst, 100},
  };

  Table table({"setting", "connectivity", "delivery ratio", "mean latency",
               "p95 latency"});
  for (const auto& s : settings) {
    auto task = bench::paper_routing_task();
    task.population = s.population;
    task.agent.policy = s.policy;
    task.agent.history_size = 10;
    task.agent.communicate = s.communicate;
    task.agent.stigmergy = s.mode;
    task.traffic = TrafficConfig{};

    RunningStats conn, ratio, lat_mean, lat_max;
    for (int r = 0; r < runs; ++r) {
      const auto result = run_routing_task(
          scenario, task, Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      conn.add(result.mean_connectivity);
      const TrafficStats& ts = *result.traffic_stats;
      ratio.add(ts.delivery_ratio());
      if (ts.latency.count() > 0) {
        lat_mean.add(ts.latency.mean());
        lat_max.add(ts.latency.max());
      }
    }
    table.add_row({std::string(s.label), conn.mean(), ratio.mean(),
                   lat_mean.empty() ? 0.0 : lat_mean.mean(),
                   lat_max.empty() ? 0.0 : lat_max.mean()});
  }
  bench::finish_table("extC", table);
  std::cout << "\n(latency in steps; 'p95 latency' column reports the mean "
               "of per-run max latencies)\n";
  return 0;
}
