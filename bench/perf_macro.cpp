// Macro benchmarks (google-benchmark): whole-world steps/sec for the three
// regimes the incremental topology path targets, each in Full and
// Incremental pairs sharing a name stem. tools/bench_gate reads
// items_per_second off both and reports/gates the Incremental/Full speedup
// (routing ≥2×, scale ≥5× by default; mapping-static is informational —
// both modes skip rebuilds entirely when nothing moves).
//
// Worlds are built directly with RandomDirectionMobility rather than the
// scenarios' TraceMobility: a recorded trace freezes once playback ends,
// which would silently turn a long timing run into the static case.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <memory>
#include <vector>

#include "aco/ant_routing.hpp"
#include "common/agent_parallel.hpp"
#include "common/rng.hpp"
#include "core/routing_task.hpp"
#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"
#include "obs/manifest.hpp"
#include "radio/range_model.hpp"
#include "sim/world.hpp"
#include "traffic/flow_traffic.hpp"

namespace agentnet {
namespace {

struct MacroParams {
  std::size_t node_count = 250;
  double mobile_fraction = 0.5;
  double side = 1000.0;  ///< Square arena edge length.
  std::uint64_t seed = 2010;
};

/// A routing-style world (heterogeneous battery-backed radios, paper
/// movement parameters) with never-ending random-direction motion.
World make_macro_world(const MacroParams& p, bool incremental) {
  Rng rng(p.seed);
  const Aabb bounds{{0.0, 0.0}, {p.side, p.side}};
  std::vector<Vec2> positions = random_positions(p.node_count, bounds, rng);
  std::vector<double> ranges =
      heterogeneous_ranges(p.node_count, 110.0 * 0.85, 110.0 * 1.15, rng);
  std::vector<bool> mobile(p.node_count, false);
  const auto mobile_count = static_cast<std::size_t>(
      std::llround(p.mobile_fraction * static_cast<double>(p.node_count)));
  for (std::size_t i = 0; i < mobile_count; ++i) mobile[i] = true;
  auto mobility = std::make_unique<RandomDirectionMobility>(
      bounds, mobile, RandomDirectionMobility::Params{0.5, 3.0, 0.05},
      rng.fork(0x30B));
  BatteryBank batteries(p.node_count, mobile, BatteryParams{1.0, 0.001});
  World world(bounds, std::move(positions),
              RadioModel(std::move(ranges), RangeScaling{0.6}),
              std::move(batteries), std::move(mobility),
              LinkPolicy::kSymmetricAnd);
  world.set_incremental_topology(incremental);
  return world;
}

void advance_loop(benchmark::State& state, World world) {
  for (int i = 0; i < 16; ++i) world.advance();  // warm every buffer
  for (auto _ : state) {
    world.advance();
    benchmark::DoNotOptimize(world.graph().edge_count());
    benchmark::DoNotOptimize(world.epoch());
  }
  state.SetItemsProcessed(state.iterations());  // items/sec == steps/sec
}

// --- Mapping regime: static sensor field, nothing ever moves. Both modes
// --- detect the empty dirty set and skip all topology work.
void BM_MappingStaticAdvanceFull(benchmark::State& state) {
  MacroParams p;
  p.node_count = 100;
  p.mobile_fraction = 0.0;
  p.side = 632.0;  // ≈250-node paper density at n=100
  advance_loop(state, make_macro_world(p, false));
}
BENCHMARK(BM_MappingStaticAdvanceFull);

void BM_MappingStaticAdvanceIncremental(benchmark::State& state) {
  MacroParams p;
  p.node_count = 100;
  p.mobile_fraction = 0.0;
  p.side = 632.0;
  advance_loop(state, make_macro_world(p, true));
}
BENCHMARK(BM_MappingStaticAdvanceIncremental);

// --- Routing regime: the paper's dynamic network, n=250 with half the
// --- nodes mobile. Every step dirties ~125 nodes; the incremental win is
// --- bounded but must stay ≥2×.
void BM_RoutingAdvanceFull(benchmark::State& state) {
  advance_loop(state, make_macro_world(MacroParams{}, false));
}
BENCHMARK(BM_RoutingAdvanceFull);

void BM_RoutingAdvanceIncremental(benchmark::State& state) {
  advance_loop(state, make_macro_world(MacroParams{}, true));
}
BENCHMARK(BM_RoutingAdvanceIncremental);

// --- Scalability regime: n=2000 mostly static (5% mobile) at the same
// --- spatial density (side scales with sqrt(n)). Full rebuilds touch all
// --- 2000 rows for ~100 movers; incremental must win ≥5×.
MacroParams scale_params() {
  MacroParams p;
  p.node_count = 2000;
  p.mobile_fraction = 0.05;
  p.side = 1000.0 * std::sqrt(2000.0 / 250.0);  // ≈2828: same density
  return p;
}

void BM_ScaleAdvanceFull(benchmark::State& state) {
  advance_loop(state, make_macro_world(scale_params(), false));
}
BENCHMARK(BM_ScaleAdvanceFull);

void BM_ScaleAdvanceIncremental(benchmark::State& state) {
  advance_loop(state, make_macro_world(scale_params(), true));
}
BENCHMARK(BM_ScaleAdvanceIncremental);

// --- Million-node regime: Flat / Sharded pairs at n=100k and n=1M. A huge
// --- mains-powered static sensor field with a small battery-powered mobile
// --- convoy (0.1% of nodes, clustered so dirty tiles stay localised) at
// --- the same spatial density. The flat path refreezes the whole O(n+E)
// --- CSR on every epoch change; the sharded path patches only the touched
// --- rows, so the within-run Sharded/Flat ratio is the tentpole's win and
// --- tools/bench_gate enforces a floor on it. Each benchmark also reports
// --- bytes_per_node (World::memory_bytes() / n) for the memory story.
World make_scale_world(std::size_t node_count, bool sharded) {
  // Pin the mode via the env knob so construction never builds the other
  // mode's structures first (auto mode would shard everything ≥4096).
  setenv("AGENTNET_TOPO_SHARD", sharded ? "1" : "0", 1);
  Rng rng(4242);
  const double side =
      1000.0 * std::sqrt(static_cast<double>(node_count) / 250.0);
  const Aabb bounds{{0.0, 0.0}, {side, side}};
  std::vector<Vec2> positions = random_positions(node_count, bounds, rng);
  std::vector<double> ranges =
      heterogeneous_ranges(node_count, 110.0 * 0.85, 110.0 * 1.15, rng);
  const std::size_t movers = std::max<std::size_t>(16, node_count / 1000);
  std::vector<bool> mobile(node_count, false);
  // Convoy: movers clustered in a corner box an eighth of the arena wide.
  const Aabb convoy{{0.0, 0.0}, {side / 8.0, side / 8.0}};
  for (std::size_t i = 0; i < movers; ++i) {
    mobile[i] = true;
    positions[i] = {rng.uniform_real(convoy.lo.x, convoy.hi.x),
                    rng.uniform_real(convoy.lo.y, convoy.hi.y)};
  }
  auto mobility = std::make_unique<RandomDirectionMobility>(
      bounds, mobile, RandomDirectionMobility::Params{0.5, 3.0, 0.05},
      rng.fork(0x30B));
  BatteryBank batteries(node_count, mobile, BatteryParams{1.0, 0.001});
  World world(bounds, std::move(positions),
              RadioModel(std::move(ranges), RangeScaling{0.6}),
              std::move(batteries), std::move(mobility),
              LinkPolicy::kSymmetricAnd);
  unsetenv("AGENTNET_TOPO_SHARD");
  return world;
}

void scale_advance_loop(benchmark::State& state, std::size_t node_count,
                        bool sharded) {
  World world = make_scale_world(node_count, sharded);
  state.counters["bytes_per_node"] = benchmark::Counter(
      static_cast<double>(world.memory_bytes()) /
      static_cast<double>(node_count));
  advance_loop(state, std::move(world));
}

// Fixed iteration counts: google-benchmark's calibration would otherwise
// re-run the (expensive to construct) million-node worlds several times.
void BM_Scale100kAdvanceFlat(benchmark::State& state) {
  scale_advance_loop(state, 100'000, false);
}
BENCHMARK(BM_Scale100kAdvanceFlat)->Iterations(32);

void BM_Scale100kAdvanceSharded(benchmark::State& state) {
  scale_advance_loop(state, 100'000, true);
}
BENCHMARK(BM_Scale100kAdvanceSharded)->Iterations(32);

void BM_Scale1MAdvanceFlat(benchmark::State& state) {
  scale_advance_loop(state, 1'000'000, false);
}
BENCHMARK(BM_Scale1MAdvanceFlat)->Iterations(8);

void BM_Scale1MAdvanceSharded(benchmark::State& state) {
  scale_advance_loop(state, 1'000'000, true);
}
BENCHMARK(BM_Scale1MAdvanceSharded)->Iterations(8);

// --- Agent-engine regime: Serial / ParallelAgents pairs sharing a stem.
// --- The intra-run engine (AGENTNET_AGENT_THREADS) fans the per-step
// --- agent phases and the per-root measurement walks over the shared
// --- pool; outputs are bit-identical by contract, so the pair's only
// --- observable is the steps/sec ratio, which tools/bench_gate floors —
// --- but only when the host has more than one CPU (num_cpus in the
// --- benchmark context), since a single-core pool can only add overhead.
void dense_routing_task_loop(benchmark::State& state, std::size_t threads) {
  RoutingScenarioParams params;
  params.trace_steps = 48;
  const RoutingScenario scenario(params, 2027);
  RoutingTaskConfig task;
  task.population = 250;  // dense team: one agent per node on average
  task.agent.communicate = true;
  task.steps = 32;
  task.measure_from = 16;
  task.agent_parallel.threads = threads;
  for (auto _ : state) {
    const auto result = run_routing_task(scenario, task, Rng(7));
    benchmark::DoNotOptimize(result.mean_connectivity);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(task.steps));
}

void BM_AgentsDenseRoutingTaskSerial(benchmark::State& state) {
  dense_routing_task_loop(state, 1);
}
BENCHMARK(BM_AgentsDenseRoutingTaskSerial)
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);

void BM_AgentsDenseRoutingTaskParallelAgents(benchmark::State& state) {
  dense_routing_task_loop(state, 0);  // 0 = one worker per hardware thread
}
BENCHMARK(BM_AgentsDenseRoutingTaskParallelAgents)
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);

// --- Measurement at scale: all-pairs BFS (mean shortest path) on the
// --- n=2000 world, the embarrassingly parallel per-root fan-out the
// --- engine accelerates best.
void scale_measure_loop(benchmark::State& state, std::size_t threads) {
  AgentParallelConfig config;
  config.threads = threads;
  const AgentParallel par(config);
  World world = make_macro_world(scale_params(), true);
  for (int i = 0; i < 4; ++i) world.advance();
  for (auto _ : state)
    benchmark::DoNotOptimize(mean_shortest_path(world.graph(), par));
  state.SetItemsProcessed(state.iterations());
}

void BM_AgentsScaleMeasureSerial(benchmark::State& state) {
  scale_measure_loop(state, 1);
}
BENCHMARK(BM_AgentsScaleMeasureSerial)
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);

void BM_AgentsScaleMeasureParallelAgents(benchmark::State& state) {
  scale_measure_loop(state, 0);
}
BENCHMARK(BM_AgentsScaleMeasureParallelAgents)
    ->Iterations(8)
    ->Unit(benchmark::kMillisecond);

// --- Traffic regime (informational, no Full/Incremental pair): the whole
// --- loaded-network loop — delay-mode ants, flow generation, batch
// --- forwarding with queueing — on the paper-sized world. The counted-
// --- arrival design is what keeps the loaded case within a small factor
// --- of idle: load scales packet *counts*, not queue-entry counts.
void traffic_advance_loop(benchmark::State& state, double offered_load) {
  MacroParams p;
  World world = make_macro_world(p, true);
  std::vector<bool> is_gateway(p.node_count, false);
  for (std::size_t g = 0; g < 12; ++g)
    is_gateway[g * p.node_count / 12] = true;
  AntRoutingConfig ant_config;
  ant_config.reinforcement = AntReinforcement::kDelay;
  Rng rng(p.seed);
  AntRoutingSystem ants(p.node_count, is_gateway, ant_config,
                        rng.fork(0xA27));
  FlowWorkloadConfig workload;
  workload.offered_load = offered_load;
  FlowTrafficSimulator traffic(p.node_count, is_gateway, workload,
                               LinkQueueConfig{}, rng.fork(0xF10A));
  std::size_t t = 0;
  for (int i = 0; i < 16; ++i) world.advance();  // warm every buffer
  for (auto _ : state) {
    ants.step(world.graph(), t, traffic.hop_delays(), {});
    const RoutingTables tables = ants.snapshot_tables(t);
    traffic.step(world.graph(), tables, t);
    world.advance();
    benchmark::DoNotOptimize(traffic.queued());
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_TrafficAdvanceIdle(benchmark::State& state) {
  traffic_advance_loop(state, 0.0);
}
BENCHMARK(BM_TrafficAdvanceIdle);

void BM_TrafficAdvanceLoaded(benchmark::State& state) {
  traffic_advance_loop(state, 0.5);
}
BENCHMARK(BM_TrafficAdvanceLoaded);

}  // namespace
}  // namespace agentnet

// Custom main instead of BENCHMARK_MAIN() so every bench run can drop a
// provenance manifest next to its JSON (gated on AGENTNET_MANIFEST).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  agentnet::obs::write_env_manifest();
  return 0;
}
