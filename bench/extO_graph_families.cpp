// Extension O — are the mapping results geometry artefacts? The paper's
// network is a unit-disk-style radio graph; this bench reruns the core
// agent comparison on Erdős–Rényi and preferential-attachment topologies
// of matched size and density.
#include "bench_util.hpp"

using namespace agentnet;

namespace {

struct Family {
  const char* label;
  Graph graph;
};

double mean_finish(const Graph& graph, MappingPolicy policy,
                   StigmergyMode mode, int population, int runs) {
  RunningStats finish;
  for (int r = 0; r < runs; ++r) {
    World world = World::fixed(graph);
    MappingTaskConfig cfg;
    cfg.population = population;
    cfg.agent = {policy, mode};
    cfg.record_series = false;
    cfg.max_steps = 500000;
    const auto result = run_mapping_task(
        world, cfg, Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
    if (result.finished)
      finish.add(static_cast<double>(result.finishing_time));
  }
  return finish.empty() ? -1.0 : finish.mean();
}

}  // namespace

int main() {
  const int runs = bench_runs(5);
  bench::print_header(
      "Ext O — mapping across graph families",
      "conscientious < random and stigmergy/cooperation gains should not "
      "be unit-disk artefacts",
      runs);

  std::vector<Family> families;
  families.push_back({"geometric (paper)", bench::mapping_network().graph});
  families.push_back(
      {"Erdos-Renyi", erdos_renyi_digraph(300, 4328, 2010)});
  families.push_back(
      {"pref. attachment", preferential_attachment_graph(300, 7, 2010)});

  Table table({"family", "arcs", "random x1", "consc x1", "ratio",
               "consc x15", "super x15"});
  table.set_precision(1);
  for (const auto& fam : families) {
    const double rnd =
        mean_finish(fam.graph, MappingPolicy::kRandom, StigmergyMode::kOff,
                    1, runs);
    const double consc = mean_finish(fam.graph, MappingPolicy::kConscientious,
                                     StigmergyMode::kOff, 1, runs);
    const double team = mean_finish(fam.graph, MappingPolicy::kConscientious,
                                    StigmergyMode::kOff, 15, runs);
    const double super_team =
        mean_finish(fam.graph, MappingPolicy::kSuperConscientious,
                    StigmergyMode::kOff, 15, runs);
    table.add_row({std::string(fam.label),
                   static_cast<std::int64_t>(fam.graph.edge_count()), rnd,
                   consc, rnd / consc, team, super_team});
  }
  bench::finish_table("extO", table);
  std::cout << "\n(expander-like families should shrink the random/consc "
               "gap — random walks mix fast there — while the orderings "
               "persist)\n";
  return 0;
}
