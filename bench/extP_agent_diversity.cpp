// Extension P — agent diversity. Minar et al. (the paper's foundation)
// found that "the efficient division of labor in the absence of
// centralized control has a subtle, important effect". This bench builds
// mixed teams of 15 and asks whether blending explorers (random) into a
// team of systematic mappers (conscientious / super-conscientious) helps
// — random walkers cross regions DFS-ish walkers postpone, and their
// knowledge spreads through meetings.
#include "bench_util.hpp"

using namespace agentnet;

namespace {

std::vector<MappingAgentConfig> mixed_team(int random_count,
                                           int conscientious_count,
                                           int super_count,
                                           StigmergyMode mode) {
  std::vector<MappingAgentConfig> team;
  for (int i = 0; i < random_count; ++i)
    team.push_back({MappingPolicy::kRandom, mode});
  for (int i = 0; i < conscientious_count; ++i)
    team.push_back({MappingPolicy::kConscientious, mode});
  for (int i = 0; i < super_count; ++i)
    team.push_back({MappingPolicy::kSuperConscientious, mode});
  return team;
}

}  // namespace

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Ext P — team diversity (mapping, 15 agents)",
      "does a pinch of randomness or super-conscientiousness improve a "
      "conscientious team?",
      runs);
  const auto& net = bench::mapping_network();

  struct Mix {
    const char* label;
    int random, consc, super;
  };
  const Mix mixes[] = {
      {"15 random", 15, 0, 0},
      {"15 conscientious", 0, 15, 0},
      {"15 super-conscientious", 0, 0, 15},
      {"3 random + 12 conscientious", 3, 12, 0},
      {"8 random + 7 conscientious", 8, 7, 0},
      {"12 conscientious + 3 super", 0, 12, 3},
      {"5 random + 5 consc + 5 super", 5, 5, 5},
  };

  for (StigmergyMode mode :
       {StigmergyMode::kOff, StigmergyMode::kFilterFirst}) {
    std::printf("%s:\n", mode == StigmergyMode::kOff
                             ? "plain (Minar-style) agents"
                             : "stigmergic agents");
    Table table({"team composition", "finishing time", "ci95"});
    table.set_precision(1);
    for (const auto& mix : mixes) {
      MappingTaskConfig task;
      task.team = mixed_team(mix.random, mix.consc, mix.super, mode);
      task.record_series = false;
      const auto summary =
          run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
      table.add_row({std::string(mix.label), summary.finishing_time.mean(),
                     confidence_halfwidth(summary.finishing_time)});
    }
    bench::finish_table(mode == StigmergyMode::kOff ? "extP_plain" : "extP_stig", table);
    std::printf("\n");
  }
  return 0;
}
