// Extension N — network density and the "2164 edges" question. DESIGN.md
// argues the paper's figure must mean bidirectional links (4328 arcs): at
// 2164 *arcs* the 300-node geometric network sits near its connectivity
// threshold and random-walk cover times explode. This bench shows the
// threshold with data — single-agent finishing times and their ratio as a
// function of arc count.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(5);
  bench::print_header(
      "Ext N — mapping network density sweep",
      "random/conscientious ratio collapses toward the paper's ~2.7x as "
      "density grows; the literal 2164-arc reading is pathological",
      runs);

  Table table({"arcs", "mean out-deg", "conscientious", "random", "ratio"});
  table.set_precision(1);
  const std::vector<std::size_t> arc_targets =
      bench_full()
          ? std::vector<std::size_t>{2164, 2600, 3200, 4328, 5200, 6400}
          : std::vector<std::size_t>{2164, 3200, 4328, 5200};
  for (std::size_t arcs : arc_targets) {
    TargetEdgeParams params;
    params.geometry.node_count = 300;
    params.target_edges = arcs;
    params.tolerance = 0.02;
    const auto net =
        generate_target_edge_network(params, paper::kMappingNetworkSeed);

    MappingTaskConfig task;
    task.population = 1;
    task.record_series = false;
    task.max_steps = 400000;

    task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    const auto consc =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
    const auto random =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);

    table.add_row(
        {static_cast<std::int64_t>(net.graph.edge_count()),
         static_cast<double>(net.graph.edge_count()) / 300.0,
         consc.finishing_time.mean(), random.finishing_time.mean(),
         random.finishing_time.mean() / consc.finishing_time.mean()});
  }
  bench::finish_table("extN", table);
  std::cout << "\n(the paper reports 8000/3000 ≈ 2.7x; see DESIGN.md §2 for "
               "why we adopt the 4328-arc reading)\n";
  return 0;
}
