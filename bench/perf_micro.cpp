// Micro-benchmarks (google-benchmark) for the substrate hot paths: topology
// rebuild, graph queries, knowledge merges, agent stepping and connectivity
// measurement. These guard the costs that the figure benches amortise.
#include <benchmark/benchmark.h>

#include "core/mapping_task.hpp"
#include "core/routing_task.hpp"
#include "experiments/mapping_experiments.hpp"
#include "geom/spatial_grid.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"
#include "routing/connectivity.hpp"

namespace agentnet {
namespace {

const GeneratedNetwork& net300() {
  static const GeneratedNetwork net = paper_mapping_network(2010);
  return net;
}

void BM_TopologyBuild(benchmark::State& state) {
  const auto& net = net300();
  TopologyBuilder builder(net.bounds, 1000.0, LinkPolicy::kDirected);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(net.positions, net.base_ranges));
  }
}
BENCHMARK(BM_TopologyBuild);

void BM_GraphHasEdge(benchmark::State& state) {
  const Graph& g = net300().graph;
  NodeId u = 0, v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.has_edge(u, v));
    u = (u + 7) % 300;
    v = (v + 13) % 300;
  }
}
BENCHMARK(BM_GraphHasEdge);

void BM_BfsDistances(benchmark::State& state) {
  const Graph& g = net300().graph;
  for (auto _ : state) benchmark::DoNotOptimize(bfs_distances(g, 0));
}
BENCHMARK(BM_BfsDistances);

void BM_KnowledgeMerge(benchmark::State& state) {
  MapKnowledge a(300), b(300);
  const Graph& g = net300().graph;
  for (NodeId u = 0; u < 300; u += 2) b.observe_node(u, g.out_neighbors(u), 0);
  for (auto _ : state) {
    MapKnowledge fresh(300);
    fresh.learn_from(b);
    benchmark::DoNotOptimize(fresh.known_edge_count());
  }
}
BENCHMARK(BM_KnowledgeMerge);

void BM_MappingStep(benchmark::State& state) {
  // Cost of one full team-step, measured as a short task run.
  const auto pop = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World world = World::frozen(net300());
    MappingTaskConfig cfg;
    cfg.population = pop;
    cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
    cfg.max_steps = 50;
    cfg.record_series = false;
    benchmark::DoNotOptimize(run_mapping_task(world, cfg, Rng(1)));
  }
  state.SetItemsProcessed(state.iterations() * 50 * pop);
}
BENCHMARK(BM_MappingStep)->Arg(1)->Arg(15)->Arg(100);

void BM_MappingExperiment(benchmark::State& state) {
  // The replication fan-out path the figure benches run on; arg = worker
  // threads (1 = exact serial loop, 0 = AGENTNET_THREADS / all cores).
  const auto threads = static_cast<int>(state.range(0));
  MappingTaskConfig cfg;
  cfg.population = 15;
  cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  cfg.max_steps = 60;
  cfg.record_series = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mapping_experiment(net300(), cfg, 8, 1, threads));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MappingExperiment)->Arg(1)->Arg(0)->UseRealTime();

void BM_ConnectivityMeasure(benchmark::State& state) {
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  World world = scenario.make_world();
  RoutingTables tables(world.node_count());
  // Seed plausible routes from a BFS tree toward gateway 0-ish nodes.
  std::vector<bool> gw = scenario.is_gateway();
  for (NodeId v = 0; v < world.node_count(); ++v) {
    const auto nbrs = world.graph().out_neighbors(v);
    if (!nbrs.empty()) tables.force(v, {nbrs[0], 0, 3, 0});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_connectivity(world.graph(), tables, gw));
}
BENCHMARK(BM_ConnectivityMeasure);

void BM_RoutingStep(benchmark::State& state) {
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  for (auto _ : state) {
    RoutingTaskConfig cfg;
    cfg.population = static_cast<int>(state.range(0));
    cfg.steps = 30;
    cfg.measure_from = 15;
    benchmark::DoNotOptimize(run_routing_task(scenario, cfg, Rng(1)));
  }
  state.SetItemsProcessed(state.iterations() * 30 * state.range(0));
}
BENCHMARK(BM_RoutingStep)->Arg(25)->Arg(100);

void BM_WorldAdvance(benchmark::State& state) {
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  World world = scenario.make_world();
  for (auto _ : state) {
    world.advance();
    benchmark::DoNotOptimize(world.graph().edge_count());
  }
}
BENCHMARK(BM_WorldAdvance);

void BM_SpatialGridRebuild(benchmark::State& state) {
  Rng rng(1);
  const Aabb arena{{0.0, 0.0}, {1000.0, 1000.0}};
  const auto positions =
      random_positions(static_cast<std::size_t>(state.range(0)), arena, rng);
  SpatialGrid grid(arena, 110.0);
  for (auto _ : state) {
    grid.rebuild(positions);
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpatialGridRebuild)->Arg(250)->Arg(2000);

}  // namespace
}  // namespace agentnet

BENCHMARK_MAIN();
