// Micro-benchmarks (google-benchmark) for the substrate hot paths: topology
// rebuild, graph queries, knowledge merges, agent stepping and connectivity
// measurement. These guard the costs that the figure benches amortise.
//
// This TU also replaces global operator new/delete with counting versions,
// so the zero-allocation claims (warm World::advance(), warm build_into())
// are measured as counters instead of argued in comments.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <string>

#include "common/flat_map.hpp"
#include "core/mapping_task.hpp"
#include "core/routing_task.hpp"
#include "experiments/mapping_experiments.hpp"
#include "geom/spatial_grid.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"
#include "obs/manifest.hpp"
#include "routing/connectivity.hpp"
#include "snapshot/snapshot.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size) != 0)
    throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace agentnet {
namespace {

const GeneratedNetwork& net300() {
  static const GeneratedNetwork net = paper_mapping_network(2010);
  return net;
}

void BM_TopologyBuild(benchmark::State& state) {
  const auto& net = net300();
  TopologyBuilder builder(net.bounds, 1000.0, LinkPolicy::kDirected);
  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(net.positions, net.base_ranges));
  }
}
BENCHMARK(BM_TopologyBuild);

void BM_TopologyBuildInto(benchmark::State& state) {
  // Warm rebuild into recycled storage — the per-step path World uses.
  // allocs_per_rebuild should read 0.
  const auto& net = net300();
  TopologyBuilder builder(net.bounds, 1000.0, LinkPolicy::kDirected);
  Graph reused;
  builder.build_into(reused, net.positions, net.base_ranges);
  std::size_t allocs = 0;
  for (auto _ : state) {
    const std::size_t before =
        g_allocations.load(std::memory_order_relaxed);
    builder.build_into(reused, net.positions, net.base_ranges);
    allocs += g_allocations.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(reused.edge_count());
  }
  state.counters["allocs_per_rebuild"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_TopologyBuildInto);

void BM_GraphHasEdge(benchmark::State& state) {
  const Graph& g = net300().graph;
  NodeId u = 0, v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.has_edge(u, v));
    u = (u + 7) % 300;
    v = (v + 13) % 300;
  }
}
BENCHMARK(BM_GraphHasEdge);

void BM_BfsDistances(benchmark::State& state) {
  const Graph& g = net300().graph;
  for (auto _ : state) benchmark::DoNotOptimize(bfs_distances(g, 0));
}
BENCHMARK(BM_BfsDistances);

void BM_CsrBfsDistances(benchmark::State& state) {
  // Same BFS over the frozen CSR snapshot, distance array reused.
  const CsrView csr(net300().graph);
  std::vector<int> dist;
  for (auto _ : state) {
    bfs_distances(csr, 0, dist);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_CsrBfsDistances);

void BM_GraphIterateEdges(benchmark::State& state) {
  const Graph& g = net300().graph;
  for (auto _ : state) {
    std::size_t sum = 0;
    for (NodeId u = 0; u < g.node_count(); ++u)
      for (NodeId v : g.out_neighbors(u)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_GraphIterateEdges);

void BM_CsrIterateEdges(benchmark::State& state) {
  // The whole edge set is two contiguous arrays; compare against
  // BM_GraphIterateEdges for the vector-of-vectors cost.
  const CsrView csr(net300().graph);
  for (auto _ : state) {
    std::size_t sum = 0;
    for (NodeId u = 0; u < csr.node_count(); ++u)
      for (NodeId v : csr.out_neighbors(u)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_CsrIterateEdges);

template <class MapType>
void table_churn(benchmark::State& state) {
  // The agent-table access mix: point lookups, insert-or-bump, full scans
  // (the trim/evaporation pattern) over a small per-agent table.
  for (auto _ : state) {
    MapType table;
    for (std::uint32_t round = 0; round < 16; ++round) {
      for (std::uint32_t k = 0; k < 24; ++k)
        table[(k * 37 + round) % 64] += 1.0;
      double sum = 0.0;
      for (const auto& [key, value] : table) sum += value;
      benchmark::DoNotOptimize(sum);
      for (std::uint32_t k = 0; k < 24; k += 3) {
        auto it = table.find((k * 37 + round) % 64);
        if (it != table.end()) table.erase(it);
      }
    }
    benchmark::DoNotOptimize(table.size());
  }
}

void BM_StdMapChurn(benchmark::State& state) {
  table_churn<std::map<NodeId, double>>(state);
}
BENCHMARK(BM_StdMapChurn);

void BM_FlatMapChurn(benchmark::State& state) {
  table_churn<FlatMap<NodeId, double>>(state);
}
BENCHMARK(BM_FlatMapChurn);

void BM_KnowledgeMerge(benchmark::State& state) {
  MapKnowledge a(300), b(300);
  const Graph& g = net300().graph;
  for (NodeId u = 0; u < 300; u += 2) b.observe_node(u, g.out_neighbors(u), 0);
  for (auto _ : state) {
    MapKnowledge fresh(300);
    fresh.learn_from(b);
    benchmark::DoNotOptimize(fresh.known_edge_count());
  }
}
BENCHMARK(BM_KnowledgeMerge);

void BM_MappingStep(benchmark::State& state) {
  // Cost of one full team-step, measured as a short task run.
  const auto pop = static_cast<int>(state.range(0));
  for (auto _ : state) {
    World world = World::frozen(net300());
    MappingTaskConfig cfg;
    cfg.population = pop;
    cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
    cfg.max_steps = 50;
    cfg.record_series = false;
    benchmark::DoNotOptimize(run_mapping_task(world, cfg, Rng(1)));
  }
  state.SetItemsProcessed(state.iterations() * 50 * pop);
}
BENCHMARK(BM_MappingStep)->Arg(1)->Arg(15)->Arg(100);

void BM_MappingExperiment(benchmark::State& state) {
  // The replication fan-out path the figure benches run on; arg = worker
  // threads (1 = exact serial loop, 0 = AGENTNET_THREADS / all cores).
  const auto threads = static_cast<int>(state.range(0));
  MappingTaskConfig cfg;
  cfg.population = 15;
  cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  cfg.max_steps = 60;
  cfg.record_series = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_mapping_experiment(net300(), cfg, 8, 1, threads));
  }
  state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_MappingExperiment)->Arg(1)->Arg(0)->UseRealTime();

void BM_ConnectivityMeasure(benchmark::State& state) {
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  World world = scenario.make_world();
  RoutingTables tables(world.node_count());
  // Seed plausible routes from a BFS tree toward gateway 0-ish nodes.
  std::vector<bool> gw = scenario.is_gateway();
  for (NodeId v = 0; v < world.node_count(); ++v) {
    const auto nbrs = world.graph().out_neighbors(v);
    if (!nbrs.empty()) tables.force(v, {nbrs[0], 0, 3, 0});
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(measure_connectivity(world.graph(), tables, gw));
}
BENCHMARK(BM_ConnectivityMeasure);

void BM_RoutingStep(benchmark::State& state) {
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  for (auto _ : state) {
    RoutingTaskConfig cfg;
    cfg.population = static_cast<int>(state.range(0));
    cfg.steps = 30;
    cfg.measure_from = 15;
    benchmark::DoNotOptimize(run_routing_task(scenario, cfg, Rng(1)));
  }
  state.SetItemsProcessed(state.iterations() * 30 * state.range(0));
}
BENCHMARK(BM_RoutingStep)->Arg(25)->Arg(100);

void BM_WorldAdvance(benchmark::State& state) {
  // allocs_per_advance is the zero-allocation steady-state gauge: after the
  // warm-up advances below, a full mobility + battery + rebuild + CSR step
  // should not touch the heap.
  const RoutingScenario scenario{RoutingScenarioParams{}, 2010};
  World world = scenario.make_world();
  for (int i = 0; i < 64; ++i) world.advance();  // warm every buffer
  std::size_t allocs = 0;
  for (auto _ : state) {
    const std::size_t before =
        g_allocations.load(std::memory_order_relaxed);
    world.advance();
    allocs += g_allocations.load(std::memory_order_relaxed) - before;
    benchmark::DoNotOptimize(world.graph().edge_count());
  }
  state.counters["allocs_per_advance"] = benchmark::Counter(
      static_cast<double>(allocs), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_WorldAdvance);

void BM_SpatialGridRebuild(benchmark::State& state) {
  Rng rng(1);
  const Aabb arena{{0.0, 0.0}, {1000.0, 1000.0}};
  const auto positions =
      random_positions(static_cast<std::size_t>(state.range(0)), arena, rng);
  SpatialGrid grid(arena, 110.0);
  for (auto _ : state) {
    grid.rebuild(positions);
    benchmark::DoNotOptimize(grid.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpatialGridRebuild)->Arg(250)->Arg(2000);

// --- Checkpoint/restore cost (docs/ROBUSTNESS.md) -------------------------
// One realistic mid-run routing checkpoint (paper-scale scenario, 100
// agents, fault-free): how long a periodic autosave stalls a run, how long
// a resume takes, and how large the artefact is per node.

constexpr std::size_t kCheckpointNodes = 250;

/// Lazily produces the checkpoint file by actually checkpointing a
/// routing run at step 20, so the payload has the real shape (tables,
/// board, agents, caches, telemetry), not synthetic filler.
const std::string& checkpoint_fixture() {
  static const std::string path = [] {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string p = std::string(tmpdir ? tmpdir : "/tmp") +
                          "/agentnet_perf_micro_ck.snap";
    RoutingScenarioParams params;
    params.node_count = kCheckpointNodes;
    const RoutingScenario scenario{params, 2010};
    snapshot::ExperimentCheckpointer checkpointer(
        {"routing", 1, 1, scenario.node_count(), 40}, p, 20, "");
    snapshot::RunCheckpointPort port = checkpointer.port(0);
    RoutingTaskConfig cfg;
    cfg.population = 100;
    cfg.steps = 40;
    cfg.measure_from = 20;
    cfg.checkpoint = &port;
    run_routing_task(scenario, cfg, Rng(1));
    return p;
  }();
  return path;
}

void BM_CheckpointSave(benchmark::State& state) {
  const snapshot::Checkpoint checkpoint =
      snapshot::load_checkpoint(checkpoint_fixture());
  const std::string out = checkpoint_fixture() + ".resave";
  for (auto _ : state) snapshot::save_checkpoint(checkpoint, out);
  std::ifstream is(out, std::ios::binary | std::ios::ate);
  const auto bytes = static_cast<double>(is.tellg());
  state.counters["snapshot_bytes"] = bytes;
  state.counters["bytes_per_node"] =
      bytes / static_cast<double>(kCheckpointNodes);
  std::remove(out.c_str());
}
BENCHMARK(BM_CheckpointSave);

void BM_CheckpointLoad(benchmark::State& state) {
  const std::string& path = checkpoint_fixture();
  for (auto _ : state)
    benchmark::DoNotOptimize(snapshot::load_checkpoint(path));
}
BENCHMARK(BM_CheckpointLoad);

}  // namespace
}  // namespace agentnet

// Custom main instead of BENCHMARK_MAIN() so every bench run can drop a
// provenance manifest next to its JSON (gated on AGENTNET_MANIFEST).
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  agentnet::obs::write_env_manifest();
  return 0;
}
