// Figure 7: connectivity over time for 100 oldest-node agents on the
// 250-node / 12-gateway MANET. Paper: connectivity starts at zero, rises
// within a few steps, then fluctuates around a converged mean (convergence
// by step 150 or well before).
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Fig 7 — connectivity over time, 100 oldest-node agents",
      "0 → rapid rise → fluctuation around a converged mean by step 150",
      runs);
  const auto& scenario = bench::routing_scenario();
  std::printf("network: %zu nodes, %zu gateways, half mobile\n\n",
              scenario.node_count(), scenario.params().gateway_count);

  auto task = bench::paper_routing_task();
  task.population = 100;
  task.agent.policy = RoutingPolicy::kOldestNode;
  task.agent.history_size = 10;
  task.record_oracle = true;

  const auto summary =
      run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

  Table table({"step", "connectivity", "stddev", "oracle"});
  const auto conn = summary.connectivity.mean();
  const auto sd = summary.connectivity.stddev();
  const auto oracle = summary.oracle.mean();
  for (std::size_t idx : series_sample_points(conn.size(), 30))
    table.add_row({static_cast<std::int64_t>(idx), conn[idx], sd[idx],
                   oracle[idx]});
  bench::finish_table("fig07", table);

  std::printf(
      "\nconverged mean connectivity (steps %zu-%zu): %.3f ± %.3f\n"
      "oracle (any-path) over same window:            %.3f\n",
      task.measure_from, task.steps, summary.mean_connectivity.mean(),
      confidence_halfwidth(summary.mean_connectivity),
      [&] {
        double s = 0.0;
        for (std::size_t t = task.measure_from; t < oracle.size(); ++t)
          s += oracle[t];
        return s / static_cast<double>(oracle.size() - task.measure_from);
      }());
  return 0;
}
