// Shared plumbing for the figure-reproduction binaries.
//
// Each bench regenerates one table/figure of the paper (see DESIGN.md §3 and
// EXPERIMENTS.md). Defaults favour quick runs; set AGENTNET_RUNS=40 for the
// paper's averaging protocol and AGENTNET_FULL=1 for full-scale sweeps.
#pragma once

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "common/env.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/paper.hpp"
#include "experiments/routing_experiments.hpp"
#include "obs/obs.hpp"

namespace agentnet::bench {

/// Writes the process-cumulative phase timing table (and any non-zero
/// counters) as `#`-prefixed comment lines. Used for the CSV footer and the
/// stderr report — out-of-band in both places, so stdout result tables stay
/// byte-stable and diffable whether or not telemetry is compiled in.
inline void write_obs_report(std::ostream& os) {
#if AGENTNET_OBS_LEVEL >= 1
  os << "# threads," << ThreadPool::default_threads() << "\n";
  const obs::PhaseSnapshot phases = obs::snapshot(obs::current_obs().phases);
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i) {
    const auto phase = static_cast<obs::Phase>(i);
    const auto entry = phases.at(phase);
    if (entry.calls == 0) continue;
    char line[160];
    std::snprintf(line, sizeof(line), "# phase,%s,%llu,%.3f\n",
                  obs::phase_name(phase),
                  static_cast<unsigned long long>(entry.calls),
                  static_cast<double>(entry.ns) / 1e6);
    os << line;
  }
  const obs::MetricsSnapshot counters =
      obs::snapshot(obs::current_obs().counters);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i) {
    const auto counter = static_cast<obs::Counter>(i);
    // Bookkeeping counters track harness activity (checkpoint autosaves,
    // agent-engine dispatches), so they would make this footer depend on
    // AGENTNET_AGENT_THREADS / AGENTNET_CHECKPOINT instead of the run.
    if (obs::is_bookkeeping_counter(counter)) continue;
    if (counters.values[i] == 0) continue;
    os << "# counter," << obs::counter_name(counter) << ","
       << counters.values[i] << "\n";
  }
#else
  (void)os;
#endif
}

inline void print_header(const std::string& figure,
                         const std::string& paper_result, int runs) {
  std::cout << "=== " << figure << " ===\n"
            << "paper: " << paper_result << "\n"
            << "runs per setting: " << runs
            << " (set AGENTNET_RUNS=40 for the paper protocol)\n"
            << "threads: " << ThreadPool::default_threads()
            << " (AGENTNET_THREADS; results identical at any setting)\n\n";
}

/// The paper's mapping network (300 nodes / ≈2164 bidirectional links,
/// ≈4328 directed arcs), built once per process.
inline const GeneratedNetwork& mapping_network() {
  static const GeneratedNetwork net =
      paper_mapping_network(paper::kMappingNetworkSeed);
  return net;
}

/// The paper's routing scenario (250 nodes / 12 gateways / half mobile),
/// built once per process.
inline const RoutingScenario& routing_scenario() {
  static const RoutingScenario scenario{RoutingScenarioParams{},
                                        paper::kRoutingScenarioSeed};
  return scenario;
}

inline RoutingTaskConfig paper_routing_task() {
  RoutingTaskConfig task;
  task.steps = paper::kRoutingSteps;
  task.measure_from = paper::kRoutingMeasureFrom;
  return task;
}

/// Prints a result table and, when AGENTNET_CSV_DIR is set, also writes it
/// to <dir>/<figure_id>.csv for external plotting. The directory is created
/// if missing; an unwritable destination is an error, not a silent skip.
inline void finish_table(const std::string& figure_id, const Table& table) {
  table.print(std::cout);
  if (const auto dir = env_string("AGENTNET_CSV_DIR")) {
    std::error_code ec;
    std::filesystem::create_directories(*dir, ec);
    if (ec) {
      std::cerr << "error: cannot create AGENTNET_CSV_DIR " << *dir << ": "
                << ec.message() << "\n";
      throw ConfigError("cannot create AGENTNET_CSV_DIR " + *dir);
    }
    const std::string path = *dir + "/" + figure_id + ".csv";
    std::ofstream os(path);
    if (!os.is_open()) {
      std::cerr << "error: cannot write " << path << "\n";
      throw ConfigError("cannot write " + path);
    }
    table.write_csv(os);
    // Footer: resolved thread count plus phase timings / counters
    // accumulated so far in this process, as CSV comment lines.
    write_obs_report(os);
    std::cout << "(csv written to " << path << ")\n";
  }
  // The same report goes to stderr so interactive runs see it without
  // perturbing the diffable stdout tables.
  write_obs_report(std::cerr);
}

/// Prints a knowledge-over-time series as a table of ≤ max_points rows.
inline void print_series(const std::string& label,
                         const SeriesAccumulator& acc,
                         std::size_t max_points = 25) {
  Table table({"step", label + " mean", "stddev"});
  for (std::size_t idx : series_sample_points(acc.length(), max_points)) {
    table.add_row({static_cast<std::int64_t>(idx), acc.at(idx).mean(),
                   acc.at(idx).stddev()});
  }
  table.print(std::cout);
  std::cout << "\n";
}

/// One-line summary of a mapping experiment.
inline void print_finish(const std::string& label,
                         const MappingSummary& summary) {
  std::printf("%-42s finishing time: mean %8.1f  (±%.1f, min %.0f, max %.0f",
              label.c_str(), summary.finishing_time.mean(),
              confidence_halfwidth(summary.finishing_time),
              summary.finishing_time.min(), summary.finishing_time.max());
  if (summary.unfinished > 0)
    std::printf(", %d/%d unfinished", summary.unfinished, summary.runs);
  std::printf(")\n");
}

}  // namespace agentnet::bench
