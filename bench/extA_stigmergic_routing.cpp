// Extension A — the paper's stated future work: "employing indirect
// communication, stigmergy, in [the] dynamic routing problem ... we
// strongly believe stigmergy can improve the agents performance
// effectively." We add footprint dispersion to both routing-agent types,
// with and without visiting.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Ext A — stigmergy in dynamic routing (paper's future work)",
      "footprints should raise connectivity, and rescue oldest-node agents "
      "from the visiting penalty of Fig 11",
      runs);
  const auto& scenario = bench::routing_scenario();

  struct Setting {
    const char* label;
    RoutingPolicy policy;
    bool communicate;
    StigmergyMode mode;
  };
  const Setting settings[] = {
      {"random", RoutingPolicy::kRandom, false, StigmergyMode::kOff},
      {"random + stigmergy", RoutingPolicy::kRandom, false,
       StigmergyMode::kFilterFirst},
      {"oldest-node", RoutingPolicy::kOldestNode, false, StigmergyMode::kOff},
      {"oldest-node + stigmergy", RoutingPolicy::kOldestNode, false,
       StigmergyMode::kFilterFirst},
      {"oldest-node + visiting", RoutingPolicy::kOldestNode, true,
       StigmergyMode::kOff},
      {"oldest-node + visiting + stigmergy", RoutingPolicy::kOldestNode, true,
       StigmergyMode::kFilterFirst},
  };

  Table table({"setting", "connectivity", "ci95", "stability sd"});
  for (const auto& s : settings) {
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.policy = s.policy;
    task.agent.history_size = 10;
    task.agent.communicate = s.communicate;
    task.agent.stigmergy = s.mode;
    const auto summary =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    table.add_row({std::string(s.label), summary.mean_connectivity.mean(),
                   confidence_halfwidth(summary.mean_connectivity),
                   summary.window_stddev.mean()});
  }
  bench::finish_table("extA", table);
  return 0;
}
