// Extension D — two cures for super-conscientious clumping. Minar et al.
// fixed the Fig 5 pathology by adding randomness to the movement decision
// ("in the best case they make super-conscientious and conscientious agents
// identical in high population size runs"); this paper's cure is stigmergy.
// This bench pits the two against each other across the randomness dial.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Ext D — dispersal by randomness (Minar) vs stigmergy (paper)",
      "randomness at best recovers conscientious performance; stigmergy "
      "should beat it",
      runs);
  const auto& net = bench::mapping_network();

  const std::vector<int> pops{15, 40};
  for (int pop : pops) {
    std::printf("population %d, super-conscientious agents:\n", pop);
    Table table({"variant", "finishing time", "ci95"});
    table.set_precision(1);

    auto measure = [&](const char* label, StigmergyMode mode,
                       double randomness) {
      MappingTaskConfig task;
      task.population = pop;
      task.agent = {MappingPolicy::kSuperConscientious, mode, randomness};
      task.record_series = false;
      const auto summary =
          run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
      table.add_row({std::string(label), summary.finishing_time.mean(),
                     confidence_halfwidth(summary.finishing_time)});
    };

    measure("plain (Fig 5 pathology)", StigmergyMode::kOff, 0.0);
    measure("randomness 0.05", StigmergyMode::kOff, 0.05);
    measure("randomness 0.20", StigmergyMode::kOff, 0.20);
    measure("randomness 0.50", StigmergyMode::kOff, 0.50);
    measure("stigmergy (paper)", StigmergyMode::kFilterFirst, 0.0);
    measure("stigmergy + randomness 0.05", StigmergyMode::kFilterFirst, 0.05);

    // Conscientious reference: the bar the randomness fix aims for.
    MappingTaskConfig ref;
    ref.population = pop;
    ref.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    ref.record_series = false;
    const auto consc =
        run_mapping_experiment(net, ref, runs, paper::kRunSeedBase);
    table.add_row({std::string("conscientious reference"),
                   consc.finishing_time.mean(),
                   confidence_halfwidth(consc.finishing_time)});
    bench::finish_table("extD_pop" + std::to_string(pop), table);
    std::cout << "\n";
  }
  return 0;
}
