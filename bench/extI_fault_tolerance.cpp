// Extension I — fault tolerance. Mobile-agent systems have no control
// plane to heal: when a migrating agent is lost with its carried state,
// routing only survives if the remaining walkers re-cover the ground.
// This bench sweeps the in-transit loss rate, with and without gateway
// respawn (gateways are wired to the outside world — the natural place to
// relaunch agents), and reports how gracefully connectivity degrades.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext I — agent loss and gateway respawn",
      "graceful degradation under loss; respawn restores the population "
      "and most of the connectivity",
      runs);
  const auto& scenario = bench::routing_scenario();

  Table table({"loss per migration", "no respawn", "final pop",
               "with respawn", "final pop (r)"});
  table.set_precision(3);
  for (double loss : {0.0, 0.002, 0.005, 0.01, 0.02}) {
    RunningStats plain_conn, plain_pop, heal_conn, heal_pop;
    for (int r = 0; r < runs; ++r) {
      auto task = bench::paper_routing_task();
      task.population = 100;
      task.agent.policy = RoutingPolicy::kOldestNode;
      task.agent.history_size = 10;
      task.agent_loss_probability = loss;
      const Rng seed(paper::kRunSeedBase + static_cast<std::uint64_t>(r));
      const auto plain = run_routing_task(scenario, task, seed);
      plain_conn.add(plain.mean_connectivity);
      plain_pop.add(static_cast<double>(plain.final_population));
      task.gateway_respawn_probability = 0.25;
      const auto healed = run_routing_task(scenario, task, seed);
      heal_conn.add(healed.mean_connectivity);
      heal_pop.add(static_cast<double>(healed.final_population));
    }
    table.add_row({loss, plain_conn.mean(), plain_pop.mean(),
                   heal_conn.mean(), heal_pop.mean()});
  }
  bench::finish_table("extI", table);
  std::cout << "\n(loss 0.01/migration kills ~95% of a 100-agent team over "
               "300 steps without respawn)\n";
  return 0;
}
