// Extension J — how much does cooperation depend on meeting opportunity?
// The paper's agents exchange knowledge only when they land on the same
// node; but agents sit on radios, and a link between their hosts could
// carry the exchange without a migration. This bench reruns the Fig 3/4
// cooperation experiment with radius-1 (in-range, relayed) meetings — and
// shows the finishing-time gap between mean-knowledge saturation and
// "every agent perfect" is a meeting-opportunity artefact.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Ext J — meeting radius ablation (mapping cooperation)",
      "same-node meetings throttle knowledge spread; radio-range meetings "
      "collapse the straggler tail",
      runs);
  const auto& net = bench::mapping_network();

  Table table({"team", "same-node meetings", "in-range meetings",
               "speedup"});
  table.set_precision(1);
  for (int pop : {5, 15, 50}) {
    MappingTaskConfig task;
    task.population = pop;
    task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    task.record_series = false;

    task.comm_radius = 0;
    const auto near =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    task.comm_radius = 1;
    const auto far =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    table.add_row({static_cast<std::int64_t>(pop),
                   near.finishing_time.mean(), far.finishing_time.mean(),
                   near.finishing_time.mean() / far.finishing_time.mean()});
  }
  bench::finish_table("extJ", table);
  std::cout << "\n(EXPERIMENTS.md discusses this against the paper's Fig 3 "
               "cooperation factor)\n";
  return 0;
}
