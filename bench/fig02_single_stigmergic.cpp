// Figure 2: single-agent mapping with the paper's stigmergic agents. Paper:
// stigmergic conscientious ≈2500 steps, stigmergic random ≈6600 — both beat
// the corresponding Minar agents of Fig. 1.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(10);
  bench::print_header(
      "Fig 2 — single agent, stigmergic algorithms",
      "stigmergic conscientious ≈2500, stigmergic random ≈6600; both beat "
      "Fig 1",
      runs);
  const auto& net = bench::mapping_network();

  MappingTaskConfig task;
  task.population = 1;

  // A footprint is useful until the agent next returns through the node;
  // revisit periods differ by policy, so the expiry horizon does too. The
  // random walker's returns are slow — footprints never expire; the
  // conscientious agent cycles in ~n/3 steps — older marks are stale noise
  // (extB ablates this choice).
  struct Row {
    const char* label;
    MappingPolicy policy;
    StigmergyMode mode;
    std::size_t horizon;
  };
  const Row rows[] = {
      {"random (Minar)", MappingPolicy::kRandom, StigmergyMode::kOff, 0},
      {"random (stigmergic)", MappingPolicy::kRandom,
       StigmergyMode::kFilterFirst, 0},
      {"conscientious (Minar)", MappingPolicy::kConscientious,
       StigmergyMode::kOff, 0},
      {"conscientious (stigmergic)", MappingPolicy::kConscientious,
       StigmergyMode::kFilterFirst, 100},
  };
  MappingSummary summaries[4];
  for (int i = 0; i < 4; ++i) {
    task.agent = {rows[i].policy, rows[i].mode};
    task.stigmergy_horizon = rows[i].horizon;
    summaries[i] =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    bench::print_finish(rows[i].label, summaries[i]);
  }
  std::printf(
      "\nstigmergy speedup: random %.2fx, conscientious %.2fx (paper: "
      "8000/6600=1.21x, 3000/2500=1.20x)\n\n",
      summaries[0].finishing_time.mean() / summaries[1].finishing_time.mean(),
      summaries[2].finishing_time.mean() /
          summaries[3].finishing_time.mean());

  std::cout << "knowledge over time, stigmergic conscientious agent:\n";
  bench::print_series("knowledge", summaries[3].knowledge, 20);
  return 0;
}
