// Figure 6: conscientious vs super-conscientious with the paper's
// stigmergy. Paper: stigmergic super-conscientious outperforms stigmergic
// conscientious at *all* population sizes — footprints disperse the
// identical-knowledge agents that plain super-conscientious suffers from.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 6 — conscientious vs super-conscientious, stigmergic agents",
      "stigmergic super-conscientious ≥ conscientious at every population "
      "size",
      runs);
  const auto& net = bench::mapping_network();

  const std::vector<int> pops = bench_full()
                                    ? std::vector<int>{1, 2, 5, 10, 15, 20,
                                                       30, 50, 75, 100}
                                    : std::vector<int>{1, 2, 5, 10, 20, 40};

  Table table({"population", "consc (stig)", "super (stig)", "super/consc"});
  table.set_precision(1);
  MappingTaskConfig task;
  task.record_series = false;
  for (int pop : pops) {
    task.population = pop;
    task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
    const auto consc =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    task.agent = {MappingPolicy::kSuperConscientious,
                  StigmergyMode::kFilterFirst};
    const auto super_c =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    table.add_row({static_cast<std::int64_t>(pop),
                   consc.finishing_time.mean(),
                   super_c.finishing_time.mean(),
                   super_c.finishing_time.mean() /
                       consc.finishing_time.mean()});
  }
  bench::finish_table("fig06", table);
  std::cout << "\n(paper expects super/consc ≤ 1 throughout)\n";
  return 0;
}
