// Extension R — engineering scalability. The paper stops at 300 nodes;
// this bench scales the routing scenario from 100 to 1000 nodes (agent
// population and gateways scaled proportionally, arena scaled to keep
// density constant) and reports connectivity plus wall-time per simulated
// step, showing the simulator itself is not the bottleneck.
#include <chrono>

#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(3);
  bench::print_header(
      "Ext R — scalability of the routing scenario",
      "constant-density scaling: connectivity should hold roughly steady; "
      "step cost should grow near-linearly",
      runs);

  Table table({"nodes", "gateways", "agents", "connectivity",
               "us per step"});
  for (std::size_t nodes : {100u, 250u, 500u, 1000u}) {
    const double scale =
        std::sqrt(static_cast<double>(nodes) / 250.0);  // constant density
    RoutingScenarioParams params;
    params.node_count = nodes;
    params.gateway_count = std::max<std::size_t>(2, nodes * 12 / 250);
    params.bounds = {{0.0, 0.0}, {1000.0 * scale, 1000.0 * scale}};
    const RoutingScenario scenario(params, paper::kRoutingScenarioSeed);

    auto task = bench::paper_routing_task();
    task.population = static_cast<int>(nodes * 100 / 250);
    task.agent.history_size = 10;

    RunningStats conn;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < runs; ++r) {
      conn.add(run_routing_task(
                   scenario, task,
                   Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)))
                   .mean_connectivity);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const double us_per_step =
        static_cast<double>(elapsed) /
        static_cast<double>(runs * static_cast<int>(task.steps));
    table.add_row({static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(params.gateway_count),
                   static_cast<std::int64_t>(task.population), conn.mean(),
                   us_per_step});
  }
  bench::finish_table("extR", table);
  std::cout << "\n(step cost includes mobility, battery, full topology "
               "rebuild, all agent phases and the connectivity walk)\n";
  return 0;
}
