// Extension R — engineering scalability. The paper stops at 300 nodes;
// this bench scales the routing scenario from 100 to 1000 nodes (agent
// population and gateways scaled proportionally, arena scaled to keep
// density constant) and reports connectivity plus wall-time per simulated
// step, showing the simulator itself is not the bottleneck.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>

#include "bench_util.hpp"
#include "energy/battery.hpp"
#include "mobility/mobility.hpp"
#include "radio/range_model.hpp"
#include "sim/world.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(3);
  bench::print_header(
      "Ext R — scalability of the routing scenario",
      "constant-density scaling: connectivity should hold roughly steady; "
      "step cost should grow near-linearly",
      runs);

  Table table({"nodes", "gateways", "agents", "connectivity",
               "us per step"});
  for (std::size_t nodes : {100u, 250u, 500u, 1000u}) {
    const double scale =
        std::sqrt(static_cast<double>(nodes) / 250.0);  // constant density
    RoutingScenarioParams params;
    params.node_count = nodes;
    params.gateway_count = std::max<std::size_t>(2, nodes * 12 / 250);
    params.bounds = {{0.0, 0.0}, {1000.0 * scale, 1000.0 * scale}};
    const RoutingScenario scenario(params, paper::kRoutingScenarioSeed);

    auto task = bench::paper_routing_task();
    task.population = static_cast<int>(nodes * 100 / 250);
    task.agent.history_size = 10;

    RunningStats conn;
    const auto start = std::chrono::steady_clock::now();
    for (int r = 0; r < runs; ++r) {
      conn.add(run_routing_task(
                   scenario, task,
                   Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)))
                   .mean_connectivity);
    }
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    const double us_per_step =
        static_cast<double>(elapsed) /
        static_cast<double>(runs * static_cast<int>(task.steps));
    table.add_row({static_cast<std::int64_t>(nodes),
                   static_cast<std::int64_t>(params.gateway_count),
                   static_cast<std::int64_t>(task.population), conn.mean(),
                   us_per_step});
  }
  bench::finish_table("extR", table);
  std::cout << "\n(step cost includes mobility, battery, full topology "
               "rebuild, all agent phases and the connectivity walk)\n";

  // --- Second table: world-advance-only scaling into the million-node
  // regime, flat vs sharded upkeep (docs/PERFORMANCE.md, "Sharded world").
  // No agents here — this isolates the simulator's topology upkeep, the
  // part the spatial sharding accelerates. The 1M row is gated behind
  // AGENTNET_FULL=1 (construction alone takes a while at that size).
  Table scale({"nodes", "mode", "steps per sec", "bytes per node"});
  std::vector<std::size_t> sizes{10'000, 100'000};
  if (env_bool("AGENTNET_FULL", false)) sizes.push_back(1'000'000);
  for (const std::size_t nodes : sizes) {
    for (const bool sharded : {false, true}) {
      setenv("AGENTNET_TOPO_SHARD", sharded ? "1" : "0", 1);
      Rng rng(4242);
      const double side =
          1000.0 * std::sqrt(static_cast<double>(nodes) / 250.0);
      const Aabb arena{{0.0, 0.0}, {side, side}};
      std::vector<Vec2> positions = random_positions(nodes, arena, rng);
      std::vector<double> ranges =
          heterogeneous_ranges(nodes, 110.0 * 0.85, 110.0 * 1.15, rng);
      const std::size_t movers = std::max<std::size_t>(16, nodes / 1000);
      std::vector<bool> mobile(nodes, false);
      for (std::size_t i = 0; i < movers; ++i) {
        mobile[i] = true;
        positions[i] = {rng.uniform_real(0.0, side / 8.0),
                        rng.uniform_real(0.0, side / 8.0)};
      }
      auto mobility = std::make_unique<RandomDirectionMobility>(
          arena, mobile, RandomDirectionMobility::Params{0.5, 3.0, 0.05},
          rng.fork(0x30B));
      World world(arena, std::move(positions),
                  RadioModel(std::move(ranges), RangeScaling{0.6}),
                  BatteryBank(nodes, mobile, BatteryParams{1.0, 0.001}),
                  std::move(mobility), LinkPolicy::kSymmetricAnd);
      unsetenv("AGENTNET_TOPO_SHARD");
      const int steps = nodes >= 1'000'000 ? 8 : 32;
      for (int i = 0; i < 4; ++i) world.advance();  // warm buffers
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < steps; ++i) world.advance();
      const double us =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count());
      scale.add_row({static_cast<std::int64_t>(nodes),
                     sharded ? "sharded" : "flat",
                     1e6 * static_cast<double>(steps) / std::max(us, 1.0),
                     static_cast<double>(world.memory_bytes()) /
                         static_cast<double>(nodes)});
    }
  }
  bench::finish_table("extR_scale", scale);
  std::cout << "\n(world advance only — mobility, battery, topology upkeep; "
               "a 0.1% mobile convoy in a static mains field; set "
               "AGENTNET_FULL=1 for the 1M-node rows)\n";
  return 0;
}
