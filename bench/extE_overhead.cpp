// Extension E — agent overhead accounting. The paper argues comparisons
// must hold overhead fixed ("stigmergic versus non stigmergic having
// identical overheads") and dismisses rivals that ship 4-5x more state per
// hop. This bench meters actual migration traffic (serialized agent size x
// moves) for each design and reports cost per unit of performance.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext E — migration overhead per design",
      "stigmergy adds ~zero bytes; history size is the routing overhead "
      "knob",
      runs);

  std::cout << "mapping (300 nodes, population 15):\n";
  {
    const auto& net = bench::mapping_network();
    struct V {
      const char* label;
      MappingPolicy policy;
      StigmergyMode mode;
    };
    const V variants[] = {
        {"random", MappingPolicy::kRandom, StigmergyMode::kOff},
        {"conscientious", MappingPolicy::kConscientious, StigmergyMode::kOff},
        {"conscientious + stigmergy", MappingPolicy::kConscientious,
         StigmergyMode::kFilterFirst},
        {"super-conscientious", MappingPolicy::kSuperConscientious,
         StigmergyMode::kOff},
    };
    Table table({"design", "finish", "MB moved", "MB per agent-step"});
    for (const auto& v : variants) {
      MappingTaskConfig task;
      task.population = 15;
      task.agent = {v.policy, v.mode};
      task.record_series = false;
      RunningStats finish, megabytes, per_step;
      for (int r = 0; r < runs; ++r) {
        World world = World::frozen(net);
        const auto result = run_mapping_task(
            world, task,
            Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
        if (!result.finished) continue;
        finish.add(static_cast<double>(result.finishing_time));
        const double mb =
            static_cast<double>(result.migration_bytes) / 1e6;
        megabytes.add(mb);
        per_step.add(mb / static_cast<double>(result.finishing_time * 15));
      }
      table.add_row({std::string(v.label), finish.mean(), megabytes.mean(),
                     per_step.mean()});
    }
    bench::finish_table("extE_mapping", table);
  }

  std::cout << "\nrouting (250 nodes, population 100, 300 steps):\n";
  {
    const auto& scenario = bench::routing_scenario();
    struct V {
      const char* label;
      std::size_t history;
      StigmergyMode mode;
    };
    const V variants[] = {
        {"oldest-node, history 5", 5, StigmergyMode::kOff},
        {"oldest-node, history 10", 10, StigmergyMode::kOff},
        {"oldest-node, history 10 + stigmergy", 10,
         StigmergyMode::kFilterFirst},
        {"oldest-node, history 40", 40, StigmergyMode::kOff},
    };
    Table table({"design", "connectivity", "MB moved",
                 "connectivity per MB"});
    for (const auto& v : variants) {
      auto task = bench::paper_routing_task();
      task.population = 100;
      task.agent.policy = RoutingPolicy::kOldestNode;
      task.agent.history_size = v.history;
      task.agent.stigmergy = v.mode;
      RunningStats conn, megabytes;
      for (int r = 0; r < runs; ++r) {
        const auto result = run_routing_task(
            scenario, task,
            Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
        conn.add(result.mean_connectivity);
        megabytes.add(static_cast<double>(result.migration_bytes) / 1e6);
      }
      table.add_row({std::string(v.label), conn.mean(), megabytes.mean(),
                     conn.mean() / megabytes.mean()});
    }
    bench::finish_table("extE_routing", table);
  }
  std::cout << "\n(stigmergic rows should match their plain counterparts in "
               "MB moved — footprints live on nodes, not in agents)\n";
  return 0;
}
