// Figure 8: converged connectivity vs agent population, oldest-node and
// random agents. Paper: more agents → higher and more stable connectivity;
// oldest-node beats random at every population size.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 8 — connectivity vs population size",
      "monotone in population; oldest-node > random everywhere", runs);
  const auto& scenario = bench::routing_scenario();

  const std::vector<int> pops =
      bench_full() ? std::vector<int>{5, 10, 25, 50, 75, 100, 150, 200}
                   : std::vector<int>{5, 15, 40, 100};

  Table table({"population", "oldest-node", "(stability sd)", "random",
               "(stability sd)"});
  for (int pop : pops) {
    auto task = bench::paper_routing_task();
    task.population = pop;
    task.agent.history_size = 10;

    task.agent.policy = RoutingPolicy::kOldestNode;
    const auto oldest =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    task.agent.policy = RoutingPolicy::kRandom;
    const auto random =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

    table.add_row({static_cast<std::int64_t>(pop),
                   oldest.mean_connectivity.mean(),
                   oldest.window_stddev.mean(),
                   random.mean_connectivity.mean(),
                   random.window_stddev.mean()});
  }
  bench::finish_table("fig08", table);
  std::cout << "\n(stability sd = per-run stddev of connectivity inside the "
               "converged window; the paper reports higher populations as "
               "both higher and more stable)\n";
  return 0;
}
