// Figure 9: converged connectivity vs agent history (cache) size. Paper:
// more history → higher connectivity and more stability, for both agent
// types; oldest-node stays ahead of random throughout.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 9 — connectivity vs history size",
      "monotone in history size; oldest-node > random everywhere", runs);
  const auto& scenario = bench::routing_scenario();

  const std::vector<std::size_t> histories =
      bench_full() ? std::vector<std::size_t>{2, 4, 6, 10, 15, 20, 30, 50}
                   : std::vector<std::size_t>{2, 5, 10, 25};

  Table table({"history", "oldest-node", "(stability sd)", "random",
               "(stability sd)"});
  for (std::size_t h : histories) {
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.history_size = h;

    task.agent.policy = RoutingPolicy::kOldestNode;
    const auto oldest =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    task.agent.policy = RoutingPolicy::kRandom;
    const auto random =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

    table.add_row({static_cast<std::int64_t>(h),
                   oldest.mean_connectivity.mean(),
                   oldest.window_stddev.mean(),
                   random.mean_connectivity.mean(),
                   random.window_stddev.mean()});
  }
  bench::finish_table("fig09", table);
  return 0;
}
