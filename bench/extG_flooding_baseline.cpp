// Extension G — mapping: mobile agents vs conventional link-state flooding.
// The paper motivates agents by contrast with "current systems"; this bench
// quantifies the contrast on the paper's own 300-node network: time until
// everyone holds the full map, and bytes on the air to get there. Flooding
// needs every node to run a protocol; agents need the nodes to do nothing.
#include "bench_util.hpp"
#include "flooding/link_state.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext G — mapping via agents vs link-state flooding",
      "flooding converges in O(diameter) steps but costs O(n·m) messages "
      "and a protocol stack on every node",
      runs);
  const auto& net = bench::mapping_network();

  Table table({"system", "time to full map", "MB on air", "nodes run code"});

  // Link-state flooding (deterministic — one run suffices).
  {
    LinkStateFlooding flood(net.graph.node_count(), {});
    std::size_t steps = 0;
    while (steps < 1000 && !flood.converged(net.graph)) {
      flood.step(net.graph, steps);
      ++steps;
    }
    table.add_row({std::string("link-state flooding"),
                   static_cast<std::int64_t>(steps),
                   static_cast<double>(flood.bytes_sent()) / 1e6,
                   std::string("yes")});
  }

  // Mobile-agent teams.
  struct Row {
    const char* label;
    int population;
    StigmergyMode mode;
  };
  const Row rows[] = {
      {"15 conscientious agents", 15, StigmergyMode::kOff},
      {"15 stigmergic agents", 15, StigmergyMode::kFilterFirst},
      {"100 stigmergic agents", 100, StigmergyMode::kFilterFirst},
  };
  for (const auto& row : rows) {
    MappingTaskConfig task;
    task.population = row.population;
    task.agent = {MappingPolicy::kConscientious, row.mode};
    task.record_series = false;
    RunningStats finish, mb;
    for (int r = 0; r < runs; ++r) {
      World world = World::frozen(net);
      const auto result = run_mapping_task(
          world, task,
          Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      if (!result.finished) continue;
      finish.add(static_cast<double>(result.finishing_time));
      mb.add(static_cast<double>(result.migration_bytes) / 1e6);
    }
    table.add_row({std::string(row.label),
                   static_cast<std::int64_t>(finish.mean() + 0.5), mb.mean(),
                   std::string("no")});
  }

  bench::finish_table("extG", table);
  std::cout << "\n(flooding wins time by O(diameter) vs the agents' cover "
               "time, but refloods every LSA on every link, so the agents "
               "are byte-competitive; their real price is latency — and the "
               "prize is that nodes need no protocol stack at all)\n";
  return 0;
}
