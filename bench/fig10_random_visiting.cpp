// Figure 10: effect of inter-agent visiting (best-route exchange + history
// merge) on RANDOM agents, across cache/history sizes. Paper: visiting has
// a positive effect on connectivity for random agents.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 10 — random agents, visiting vs not",
      "direct communication improves random-agent connectivity", runs);
  const auto& scenario = bench::routing_scenario();

  const std::vector<std::size_t> histories =
      bench_full() ? std::vector<std::size_t>{5, 10, 20, 30}
                   : std::vector<std::size_t>{5, 10, 20};

  Table table({"history", "no visiting", "visiting", "delta"});
  for (std::size_t h : histories) {
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.policy = RoutingPolicy::kRandom;
    task.agent.history_size = h;

    task.agent.communicate = false;
    const auto solo =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    task.agent.communicate = true;
    const auto visiting =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

    table.add_row({static_cast<std::int64_t>(h),
                   solo.mean_connectivity.mean(),
                   visiting.mean_connectivity.mean(),
                   visiting.mean_connectivity.mean() -
                       solo.mean_connectivity.mean()});
  }
  bench::finish_table("fig10", table);
  std::cout << "\n(paper expects delta > 0 for random agents)\n";
  return 0;
}
