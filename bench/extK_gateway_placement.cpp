// Extension K — gateway placement. The paper drops its 12 gateways at
// random; a deployed relief/sensor network would plan them. This bench
// compares random, grid-spread and perimeter placements under the same
// movement script class and agent design.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext K — gateway placement strategies",
      "planned (spread) placement should beat random; perimeter should "
      "trail (interior nodes live far from every uplink)",
      runs);

  Table table({"placement", "connectivity", "ci95", "oracle"});
  for (auto placement :
       {GatewayPlacement::kRandom, GatewayPlacement::kSpread,
        GatewayPlacement::kPerimeter}) {
    RoutingScenarioParams params;  // paper defaults, 250 nodes / 12 gateways
    params.gateway_placement = placement;
    const RoutingScenario scenario(params, paper::kRoutingScenarioSeed);
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.policy = RoutingPolicy::kOldestNode;
    task.agent.history_size = 10;
    task.record_oracle = true;

    const auto summary =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    const auto oracle = summary.oracle.mean();
    double oracle_window = 0.0;
    for (std::size_t t = task.measure_from; t < oracle.size(); ++t)
      oracle_window += oracle[t];
    oracle_window /=
        static_cast<double>(oracle.size() - task.measure_from);
    table.add_row({std::string(to_string(placement)),
                   summary.mean_connectivity.mean(),
                   confidence_halfwidth(summary.mean_connectivity),
                   oracle_window});
  }
  bench::finish_table("extK", table);
  std::cout << "\n(oracle = fraction of nodes with any physical path to a "
               "gateway; placement moves the ceiling as well as the "
               "achieved value)\n";
  return 0;
}
