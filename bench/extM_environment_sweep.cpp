// Extension M — robustness of the paper's core routing claim across the
// environment knobs it introduced (the "realistic" ingredients: range
// heterogeneity, gateway capability, battery drain). For each environment
// the bench reruns oldest-node vs random and reports whether the paper's
// ordering survives.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext M — environment sweep (routing)",
      "oldest-node > random should hold across the realism knobs, not just "
      "at the paper's point settings",
      runs);

  struct Env {
    const char* label;
    double range_spread;
    double gateway_boost;
    double drain;
    double min_scale;
  };
  const Env envs[] = {
      {"paper defaults", 0.15, 1.5, 0.001, 0.6},
      {"homogeneous radios", 0.0, 1.5, 0.001, 0.6},
      {"no gateway boost", 0.15, 1.0, 0.001, 0.6},
      {"no battery decay", 0.15, 1.5, 0.0, 0.6},
      {"harsh decay", 0.15, 1.5, 0.003, 0.4},
      {"wild heterogeneity", 0.4, 1.5, 0.001, 0.6},
  };

  Table table({"environment", "oldest-node", "random", "ordering"});
  for (const auto& env : envs) {
    RoutingScenarioParams params;
    params.range_spread = env.range_spread;
    params.gateway_range_boost = env.gateway_boost;
    params.battery.drain_per_step = env.drain;
    params.scaling.min_scale = env.min_scale;
    const RoutingScenario scenario(params, paper::kRoutingScenarioSeed);

    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.history_size = 10;

    task.agent.policy = RoutingPolicy::kOldestNode;
    const auto oldest =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);
    task.agent.policy = RoutingPolicy::kRandom;
    const auto random =
        run_routing_experiment(scenario, task, runs, paper::kRunSeedBase);

    table.add_row({std::string(env.label),
                   oldest.mean_connectivity.mean(),
                   random.mean_connectivity.mean(),
                   std::string(oldest.mean_connectivity.mean() >
                                       random.mean_connectivity.mean()
                                   ? "paper"
                                   : "INVERTED")});
  }
  bench::finish_table("extM", table);
  return 0;
}
