// Figure 5: conscientious vs super-conscientious (Minar agents) across
// population sizes. Paper's surprising result: super-conscientious wins at
// small populations but *loses* to conscientious at large ones — after a
// meeting the agents' knowledge is identical, so they pick the same next
// node and chase each other.
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Fig 5 — conscientious vs super-conscientious, Minar agents",
      "super wins at small populations, conscientious wins at large ones "
      "(crossover)",
      runs);
  const auto& net = bench::mapping_network();

  const std::vector<int> pops = bench_full()
                                    ? std::vector<int>{1, 2, 5, 10, 15, 20,
                                                       30, 50, 75, 100}
                                    : std::vector<int>{1, 2, 5, 10, 20, 40};

  Table table({"population", "conscientious", "super-conscientious",
               "super/consc"});
  table.set_precision(1);
  MappingTaskConfig task;
  task.record_series = false;
  for (int pop : pops) {
    task.population = pop;
    task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    const auto consc =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    task.agent = {MappingPolicy::kSuperConscientious, StigmergyMode::kOff};
    const auto super_c =
        run_mapping_experiment(net, task, runs, paper::kRunSeedBase);
    table.add_row({static_cast<std::int64_t>(pop),
                   consc.finishing_time.mean(),
                   super_c.finishing_time.mean(),
                   super_c.finishing_time.mean() /
                       consc.finishing_time.mean()});
  }
  bench::finish_table("fig05", table);
  std::cout << "\n(super/consc < 1 means super-conscientious is faster; "
               "paper expects the ratio to cross 1 as population grows)\n";
  return 0;
}
