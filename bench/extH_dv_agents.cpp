// Extension H — the paper's overhead argument against related work, made
// measurable: distance-vector-carrying agents (MARP / ADV style, refs
// [10][11]) versus the paper's history+reverse-path agents, same scenario,
// same metric, overhead in bytes.
#include "adv/dv_agent.hpp"
#include "bench_util.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(6);
  bench::print_header(
      "Ext H — DV-carrying agents (related work) vs the paper's agents",
      "the paper claims rivals pay ~4x the overhead for similar "
      "performance",
      runs);
  const auto& scenario = bench::routing_scenario();

  Table table({"agent design", "connectivity", "ci95", "MB moved",
               "conn per MB"});

  // The paper's agents at two history sizes.
  for (std::size_t history : {10u, 40u}) {
    auto task = bench::paper_routing_task();
    task.population = 100;
    task.agent.policy = RoutingPolicy::kOldestNode;
    task.agent.history_size = history;
    RunningStats conn, mb;
    for (int r = 0; r < runs; ++r) {
      const auto result = run_routing_task(
          scenario, task,
          Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      conn.add(result.mean_connectivity);
      mb.add(static_cast<double>(result.migration_bytes) / 1e6);
    }
    char label[64];
    std::snprintf(label, sizeof label, "paper: oldest-node, history %zu",
                  history);
    table.add_row({std::string(label), conn.mean(),
                   confidence_halfwidth(conn), mb.mean(),
                   conn.mean() / mb.mean()});
  }

  // DV agents at two table sizes.
  for (std::size_t table_size : {40u, 100u}) {
    DvRoutingTaskConfig cfg;
    cfg.population = 100;
    cfg.steps = paper::kRoutingSteps;
    cfg.measure_from = paper::kRoutingMeasureFrom;
    cfg.agent.table_size = table_size;
    RunningStats conn, mb;
    for (int r = 0; r < runs; ++r) {
      const auto result = run_dv_routing_task(
          scenario, cfg,
          Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
      conn.add(result.mean_connectivity);
      mb.add(static_cast<double>(result.migration_bytes) / 1e6);
    }
    char label[64];
    std::snprintf(label, sizeof label, "related: DV agent, table %zu",
                  table_size);
    table.add_row({std::string(label), conn.mean(),
                   confidence_halfwidth(conn), mb.mean(),
                   conn.mean() / mb.mean()});
  }

  bench::finish_table("extH", table);
  std::cout << "\n(conn per MB is the efficiency the paper argues for: its "
               "lightweight agents should dominate that column)\n";
  return 0;
}
