// Extension L — mapping under link degradation. The paper's environment
// declares that battery-driven degradation makes links come and go, which
// is why "we need to fire up the agents again" — but its figures map a
// stable snapshot. This bench quantifies the missing axis: team finishing
// time against the full underlying topology as a function of how much of
// the network is down at any moment.
#include "bench_util.hpp"
#include "net/link_noise.hpp"

using namespace agentnet;

int main() {
  const int runs = bench_runs(8);
  bench::print_header(
      "Ext L — mapping vs link flap rate",
      "finishing time should rise smoothly with the fraction of links "
      "down; stigmergy's advantage should survive the weather",
      runs);
  const auto& net = bench::mapping_network();
  std::printf("network: %zu nodes, %zu arcs; outages persist 5 steps\n\n",
              net.graph.node_count(), net.graph.edge_count());

  Table table({"links down", "plain team", "stigmergic team", "stig gain"});
  for (double q : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    RunningStats plain, stig;
    for (int r = 0; r < runs; ++r) {
      for (int variant = 0; variant < 2; ++variant) {
        World world = World::frozen(net);
        if (q > 0.0) world.set_link_flapper(LinkFlapper(q, 5, 99));
        MappingTaskConfig cfg;
        cfg.population = 15;
        cfg.agent = {MappingPolicy::kConscientious,
                     variant == 0 ? StigmergyMode::kOff
                                  : StigmergyMode::kFilterFirst};
        cfg.advance_world = true;
        cfg.truth_edges_override = net.graph.edge_count();
        cfg.record_series = false;
        const auto result = run_mapping_task(
            world, cfg,
            Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
        if (!result.finished) continue;
        (variant == 0 ? plain : stig)
            .add(static_cast<double>(result.finishing_time));
      }
    }
    table.add_row({q, plain.mean(), stig.mean(),
                   plain.mean() / stig.mean()});
  }
  table.set_precision(2);
  bench::finish_table("extL", table);
  std::cout << "\n(stig gain > 1 means the stigmergic team stays faster "
               "under degradation)\n";
  return 0;
}
