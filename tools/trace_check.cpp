// Validates AGENTNET_TRACE jsonl files: every line must parse back through
// obs::parse_trace_line (the strict round-tripping parser). Prints a per-
// file event count and exits non-zero on the first malformed line. Used by
// tools/run_paper_protocol.sh --smoke.
#include <cstdio>
#include <fstream>
#include <string>

#include "obs/trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_check <trace.jsonl>...\n");
    return 2;
  }
  bool ok = true;
  for (int arg = 1; arg < argc; ++arg) {
    std::ifstream is(argv[arg]);
    if (!is.is_open()) {
      std::fprintf(stderr, "trace_check: cannot open %s\n", argv[arg]);
      ok = false;
      continue;
    }
    std::string line;
    std::size_t line_no = 0, events = 0, groups = 0;
    bool file_ok = true;
    while (std::getline(is, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::string error;
      const auto record = agentnet::obs::parse_trace_line(line, &error);
      if (!record) {
        std::fprintf(stderr, "trace_check: %s:%zu: %s\n", argv[arg], line_no,
                     error.c_str());
        file_ok = false;
        break;
      }
      if (record->event.kind == agentnet::obs::TraceEventKind::kRunGroup)
        ++groups;
      else
        ++events;
    }
    if (file_ok && groups == 0) {
      std::fprintf(stderr, "trace_check: %s: no run_group marker\n", argv[arg]);
      file_ok = false;
    }
    if (file_ok)
      std::printf("trace_check: %s: %zu run groups, %zu events ok\n",
                  argv[arg], groups, events);
    ok = ok && file_ok;
  }
  return ok ? 0 : 1;
}
