// Validates AGENTNET_TRACE jsonl files: every line must parse back through
// obs::parse_trace_line (the strict round-tripping parser). Prints a per-
// file event count and exits non-zero on the first malformed line. Used by
// tools/run_paper_protocol.sh --smoke.
//
//   trace_check [--require=<event> ...] <trace.jsonl>...
//   trace_check --metrics <metrics.jsonl>...
//
// Each --require=<event> names a trace event (snake_case, e.g. node_crash,
// watchdog_respawn) that must appear at least once across ALL given files —
// the smoke harness uses it to prove a chaos run actually injected faults
// rather than silently taking the fault-free path.
//
// With --metrics the files are AGENTNET_METRICS time-series streams
// instead: every line must parse through obs::parse_metrics_line and each
// file must carry at least one group header. (tools/metrics_report offers
// the analysis modes; this is the pure validation gate.)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace {

int check_metrics(const std::vector<const char*>& files) {
  bool ok = true;
  for (const char* path : files) {
    std::ifstream is(path);
    if (!is.is_open()) {
      std::fprintf(stderr, "trace_check: cannot open %s\n", path);
      ok = false;
      continue;
    }
    std::string line;
    std::size_t line_no = 0, rows = 0, groups = 0;
    bool file_ok = true;
    while (std::getline(is, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::string error;
      const auto record = agentnet::obs::parse_metrics_line(line, &error);
      if (!record) {
        std::fprintf(stderr, "trace_check: %s:%zu: %s\n", path, line_no,
                     error.c_str());
        file_ok = false;
        break;
      }
      if (record->is_group)
        ++groups;
      else
        ++rows;
    }
    if (file_ok && groups == 0) {
      std::fprintf(stderr, "trace_check: %s: no metrics group header\n",
                   path);
      file_ok = false;
    }
    if (file_ok)
      std::printf("trace_check: %s: %zu metric groups, %zu rows ok\n", path,
                  groups, rows);
    ok = ok && file_ok;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> required;
  std::vector<const char*> files;
  bool metrics_mode = false;
  for (int arg = 1; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--metrics") == 0) {
      metrics_mode = true;
    } else if (std::strncmp(argv[arg], "--require=", 10) == 0) {
      required.emplace_back(argv[arg] + 10);
      if (required.back().empty()) {
        std::fprintf(stderr, "trace_check: empty --require event name\n");
        return 2;
      }
    } else {
      files.push_back(argv[arg]);
    }
  }
  if (files.empty() || (metrics_mode && !required.empty())) {
    std::fprintf(stderr,
                 "usage: trace_check [--require=<event> ...] "
                 "<trace.jsonl>...\n"
                 "       trace_check --metrics <metrics.jsonl>...\n");
    return 2;
  }
  if (metrics_mode) return check_metrics(files);
  bool ok = true;
  std::map<std::string, std::size_t> seen;
  for (const char* path : files) {
    std::ifstream is(path);
    if (!is.is_open()) {
      std::fprintf(stderr, "trace_check: cannot open %s\n", path);
      ok = false;
      continue;
    }
    std::string line;
    std::size_t line_no = 0, events = 0, groups = 0;
    bool file_ok = true;
    while (std::getline(is, line)) {
      ++line_no;
      if (line.empty()) continue;
      std::string error;
      const auto record = agentnet::obs::parse_trace_line(line, &error);
      if (!record) {
        std::fprintf(stderr, "trace_check: %s:%zu: %s\n", path, line_no,
                     error.c_str());
        file_ok = false;
        break;
      }
      if (record->event.kind == agentnet::obs::TraceEventKind::kRunGroup)
        ++groups;
      else
        ++events;
      ++seen[agentnet::obs::trace_event_name(record->event.kind)];
    }
    if (file_ok && groups == 0) {
      std::fprintf(stderr, "trace_check: %s: no run_group marker\n", path);
      file_ok = false;
    }
    if (file_ok)
      std::printf("trace_check: %s: %zu run groups, %zu events ok\n", path,
                  groups, events);
    ok = ok && file_ok;
  }
  for (const std::string& name : required) {
    const auto it = seen.find(name);
    const std::size_t count = it == seen.end() ? 0 : it->second;
    if (count == 0) {
      std::fprintf(stderr,
                   "trace_check: required event '%s' never appeared\n",
                   name.c_str());
      ok = false;
    } else {
      std::printf("trace_check: required event '%s': %zu occurrence(s)\n",
                  name.c_str(), count);
    }
  }
  return ok ? 0 : 1;
}
