#!/bin/sh
# Runs every figure and extension bench at the paper's protocol (40 runs per
# setting, full sweeps) and tees the log. From the repository root:
#
#   cmake -B build -G Ninja && cmake --build build
#   tools/run_paper_protocol.sh [output-file]
#
# Takes a few minutes; the quick default settings (no env vars) take ~1 min.
set -eu

out="${1:-paper_protocol_results.txt}"
bench_dir="build/bench"
[ -d "$bench_dir" ] || { echo "build first: cmake --build build" >&2; exit 1; }

AGENTNET_RUNS=40 AGENTNET_FULL=1 sh -c '
  for b in '"$bench_dir"'/fig* '"$bench_dir"'/ext*; do
    echo "##### $(basename "$b")"
    "$b"
  done
' | tee "$out"
echo "wrote $out" >&2
