#!/bin/sh
# Runs every figure and extension bench at the paper's protocol (40 runs per
# setting, full sweeps) and tees the log. From the repository root:
#
#   cmake -B build && cmake --build build -j
#   tools/run_paper_protocol.sh [output-file]
#
# Replications fan out across cores (AGENTNET_THREADS, default all); the
# tables are bit-identical at any thread count. The quick default settings
# (no env vars) take ~1 min serial.
#
#   tools/run_paper_protocol.sh --smoke
#
# instead builds the parallel determinism + telemetry suites under
# ThreadSanitizer (-DAGENTNET_SANITIZE=thread, separate build-tsan/ tree),
# runs them, then drives one traced mapping run and one traced routing run
# (AGENTNET_TRACE, 7 threads) plus one chaos-harness run of each under the
# AGENTNET_FAULT_* environment (docs/ROBUSTNESS.md), and validates the
# JSONL event streams with tools/trace_check — including --require proofs
# that the chaos runs actually crashed nodes and lost agents. It also runs
# one traced+metered fault-injected routing run per thread count (1 and 2),
# proves the metrics stream byte-identical across the two, and pushes it
# through trace_check --metrics and tools/metrics_report
# (validate/summarize/diff; docs/OBSERVABILITY.md). An agent-engine leg
# repeats that proof for AGENTNET_AGENT_THREADS (the intra-run fan-out,
# docs/PERFORMANCE.md): mapping and routing runs at agent threads 1 and 2,
# byte-diffed across stdout, trace and metrics. A checkpoint/restore
# leg then snapshots a fault-injected routing run mid-flight, resumes it
# in a fresh process at a different thread count, and byte-diffs stdout,
# metrics and traces against the uninterrupted run (docs/ROBUSTNESS.md).
# A fast data-race + schema check, not a bench sweep.
set -eu

if [ "${1:-}" = "--smoke" ]; then
  cmake -B build-tsan -S . -DAGENTNET_SANITIZE=thread
  cmake --build build-tsan \
    --target parallel_determinism_test obs_test agentnet_cli trace_check \
    metrics_report -j"$(nproc)"
  echo "##### parallel_determinism_test (TSan)"
  AGENTNET_THREADS=7 build-tsan/tests/parallel_determinism_test
  echo "##### obs_test (TSan)"
  AGENTNET_THREADS=7 build-tsan/tests/obs_test
  echo "##### traced runs (TSan + trace_check)"
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' EXIT
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/map.jsonl" \
    build-tsan/examples/agentnet_cli scenario=mapping nodes=60 edges=300 \
    population=4 runs=3
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/route.jsonl" \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2
  # Loaded data plane (docs/TRAFFIC.md): delay-mode ants + gateway
  # balancing under traffic heavy enough that session, queue and drop
  # events all provably fire.
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/traffic.jsonl" \
    build-tsan/examples/agentnet_cli scenario=traffic nodes=50 gateways=4 \
    load=0.4 mode=delay balance=1 runs=2
  build-tsan/tools/trace_check "$tmp/map.jsonl" "$tmp/route.jsonl"
  build-tsan/tools/trace_check --require=flow_start --require=flow_end \
    --require=packet_drop "$tmp/traffic.jsonl"
  echo "##### chaos runs (TSan + AGENTNET_FAULT_* + trace_check --require)"
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/map_chaos.jsonl" \
    AGENTNET_FAULT_AGENT_LOSS=0.02 AGENTNET_FAULT_NODE_CRASH=0.02 \
    AGENTNET_FAULT_BURST_DROP=0.05 AGENTNET_FAULT_EXCHANGE=0.1 \
    AGENTNET_FAULT_WATCHDOG_TTL=60 AGENTNET_FAULT_KNOWLEDGE_TTL=120 \
    build-tsan/examples/agentnet_cli scenario=mapping nodes=60 edges=300 \
    population=4 runs=3 max_steps=3000
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/route_chaos.jsonl" \
    AGENTNET_FAULT_AGENT_LOSS=0.03 AGENTNET_FAULT_RESPAWN=0.3 \
    AGENTNET_FAULT_NODE_CRASH=0.03 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2
  build-tsan/tools/trace_check --require=node_crash --require=node_recover \
    --require=lost "$tmp/map_chaos.jsonl" "$tmp/route_chaos.jsonl"
  echo "##### time-series metrics (TSan + metrics_report + thread diff)"
  # One fault-injected routing run per thread count: stdout tables and the
  # metrics stream must be byte-identical at threads=1 and threads=2
  # (docs/OBSERVABILITY.md determinism contract; manifests legitimately
  # differ — they record the thread count). The analyzer leg then proves
  # the stream is machine-readable end to end.
  AGENTNET_THREADS=1 AGENTNET_TRACE="$tmp/route_m1.trace.jsonl" \
    AGENTNET_METRICS="$tmp/route_m1.jsonl" AGENTNET_METRICS_EVERY=1 \
    AGENTNET_MANIFEST="$tmp/route_m1.manifest.json" \
    AGENTNET_FAULT_NODE_CRASH=0.05 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/route_m1.out"
  AGENTNET_THREADS=2 AGENTNET_TRACE="$tmp/route_m2.trace.jsonl" \
    AGENTNET_METRICS="$tmp/route_m2.jsonl" AGENTNET_METRICS_EVERY=1 \
    AGENTNET_MANIFEST="$tmp/route_m2.manifest.json" \
    AGENTNET_FAULT_NODE_CRASH=0.05 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/route_m2.out"
  diff "$tmp/route_m1.out" "$tmp/route_m2.out"
  diff "$tmp/route_m1.jsonl" "$tmp/route_m2.jsonl"
  echo "metrics streams at threads=1 and threads=2 are bit-identical"
  build-tsan/tools/trace_check --metrics "$tmp/route_m1.jsonl"
  build-tsan/tools/metrics_report validate "$tmp/route_m1.jsonl"
  build-tsan/tools/metrics_report summarize "$tmp/route_m1.jsonl" \
    --gauge=connectivity --threshold=0.5
  build-tsan/tools/metrics_report diff "$tmp/route_m1.jsonl" \
    "$tmp/route_m2.jsonl"
  echo "##### intra-run agent engine byte-identity (TSan, agent threads 1/2)"
  # The tentpole contract (docs/PERFORMANCE.md "Intra-run agent
  # parallelism"): AGENTNET_AGENT_THREADS fans the per-step agent phases
  # over the shared pool and must change wall-clock only. One traced +
  # metered fault-injected run per agent-thread count, for mapping and for
  # routing; stdout tables, the JSONL event stream and the metrics stream
  # are byte-diffed, under TSan so a data race in the fan-out fails the
  # leg outright. trace_check --require proves the exchange phase (meet /
  # merge events — the group-parallel part) actually fired.
  for scenario in mapping routing; do
    case "$scenario" in
      mapping) cli_args="scenario=mapping nodes=60 edges=300 population=4 \
        runs=2 max_steps=3000" ;;
      routing) cli_args="scenario=routing nodes=50 gateways=4 \
        population=10 runs=2 visiting=1" ;;
    esac
    for at in 1 2; do
      AGENTNET_THREADS=2 AGENTNET_AGENT_THREADS="$at" \
        AGENTNET_TRACE="$tmp/${scenario}_a${at}.trace.jsonl" \
        AGENTNET_METRICS="$tmp/${scenario}_a${at}.jsonl" \
        AGENTNET_METRICS_EVERY=1 \
        AGENTNET_FAULT_NODE_CRASH=0.03 AGENTNET_FAULT_AGENT_LOSS=0.02 \
        build-tsan/examples/agentnet_cli $cli_args \
        > "$tmp/${scenario}_a${at}.out"
    done
    diff "$tmp/${scenario}_a1.out" "$tmp/${scenario}_a2.out"
    diff "$tmp/${scenario}_a1.trace.jsonl" "$tmp/${scenario}_a2.trace.jsonl"
    diff "$tmp/${scenario}_a1.jsonl" "$tmp/${scenario}_a2.jsonl"
    build-tsan/tools/trace_check --require=meet --require=merge \
      "$tmp/${scenario}_a1.trace.jsonl"
  done
  echo "agent-thread 1 and 2 runs are bit-identical (mapping + routing)"
  echo "##### hot-path equivalence suite (TSan)"
  cmake --build build-tsan --target rebuild_equivalence_test \
    sharded_world_test -j"$(nproc)"
  build-tsan/tests/rebuild_equivalence_test
  build-tsan/tests/sharded_world_test
  echo "##### incremental topology bit-for-bit diff (TSan)"
  # One traced routing run per topology-upkeep mode: stdout tables and the
  # JSONL event stream must be byte-identical. (CSV counter footers are not
  # diffed — topo_nodes_dirty vs topo_full_rebuilds differ by design.)
  AGENTNET_THREADS=7 AGENTNET_TOPO_INCREMENTAL=0 \
    AGENTNET_TRACE="$tmp/route_full.jsonl" \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/route_full.out"
  AGENTNET_THREADS=7 AGENTNET_TOPO_INCREMENTAL=1 \
    AGENTNET_TRACE="$tmp/route_incr.jsonl" \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/route_incr.out"
  diff "$tmp/route_full.out" "$tmp/route_incr.out"
  diff "$tmp/route_full.jsonl" "$tmp/route_incr.jsonl"
  echo "incremental and full topology runs are bit-identical"
  echo "##### sharded world bit-for-bit diff (TSan, 7 shard threads)"
  # The sharded advance fans the tile scan and row gather over a thread
  # pool; under TSan, against the flat run, stdout tables and the JSONL
  # event stream must still be byte-identical (docs/PERFORMANCE.md,
  # "Sharded world"; counter footers differ by design — shard_tiles_dirty
  # exists only in sharded mode).
  AGENTNET_THREADS=7 AGENTNET_TOPO_SHARD=1 AGENTNET_TOPO_SHARD_THREADS=7 \
    AGENTNET_TRACE="$tmp/route_shard.jsonl" \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/route_shard.out"
  diff "$tmp/route_full.out" "$tmp/route_shard.out"
  diff "$tmp/route_full.jsonl" "$tmp/route_shard.jsonl"
  echo "sharded and flat topology runs are bit-identical"
  echo "##### checkpoint/restore byte-identity (TSan + snapshot_inspect)"
  # Crash-tolerance proof (docs/ROBUSTNESS.md "Checkpoint/restore"): run a
  # traced+metered fault-injected routing experiment uninterrupted, run it
  # again with periodic checkpointing, then resume from the on-disk
  # snapshot in a FRESH process at a different thread count. Final stdout,
  # metrics stream and trace must be byte-identical — checkpoint_* trace
  # events are recovery bookkeeping outside the deterministic surface and
  # are filtered per the documented contract.
  cmake --build build-tsan --target snapshot_inspect -j"$(nproc)"
  AGENTNET_THREADS=7 AGENTNET_TRACE="$tmp/ck_base.trace.jsonl" \
    AGENTNET_METRICS="$tmp/ck_base.metrics.jsonl" \
    AGENTNET_FAULT_NODE_CRASH=0.05 AGENTNET_FAULT_AGENT_LOSS=0.02 \
    AGENTNET_FAULT_RESPAWN=0.1 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/ck_base.out"
  AGENTNET_THREADS=2 AGENTNET_CHECKPOINT="$tmp/ck.snap" \
    AGENTNET_CHECKPOINT_EVERY=100 \
    AGENTNET_TRACE="$tmp/ck_save.trace.jsonl" \
    AGENTNET_METRICS="$tmp/ck_save.metrics.jsonl" \
    AGENTNET_FAULT_NODE_CRASH=0.05 AGENTNET_FAULT_AGENT_LOSS=0.02 \
    AGENTNET_FAULT_RESPAWN=0.1 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/ck_save.out"
  build-tsan/tools/snapshot_inspect "$tmp/ck.snap"
  AGENTNET_THREADS=7 AGENTNET_RESUME="$tmp/ck.snap" \
    AGENTNET_TRACE="$tmp/ck_resume.trace.jsonl" \
    AGENTNET_METRICS="$tmp/ck_resume.metrics.jsonl" \
    AGENTNET_FAULT_NODE_CRASH=0.05 AGENTNET_FAULT_AGENT_LOSS=0.02 \
    AGENTNET_FAULT_RESPAWN=0.1 \
    build-tsan/examples/agentnet_cli scenario=routing nodes=50 gateways=4 \
    population=10 runs=2 > "$tmp/ck_resume.out"
  diff "$tmp/ck_base.out" "$tmp/ck_save.out"
  diff "$tmp/ck_base.out" "$tmp/ck_resume.out"
  diff "$tmp/ck_base.metrics.jsonl" "$tmp/ck_save.metrics.jsonl"
  diff "$tmp/ck_base.metrics.jsonl" "$tmp/ck_resume.metrics.jsonl"
  grep -v 'checkpoint_' "$tmp/ck_save.trace.jsonl" > "$tmp/ck_save.trace.flt"
  grep -v 'checkpoint_' "$tmp/ck_resume.trace.jsonl" \
    > "$tmp/ck_resume.trace.flt"
  diff "$tmp/ck_base.trace.jsonl" "$tmp/ck_save.trace.flt"
  diff "$tmp/ck_base.trace.jsonl" "$tmp/ck_resume.trace.flt"
  # Corruption must be rejected loudly, never resumed from.
  head -c 64 "$tmp/ck.snap" > "$tmp/ck_torn.snap"
  if build-tsan/tools/snapshot_inspect --validate "$tmp/ck_torn.snap" \
    2>/dev/null; then
    echo "truncated snapshot was accepted" >&2; exit 1
  fi
  echo "checkpointed, resumed and uninterrupted runs are bit-identical"
  echo "##### bench gates (report-only; docs/PERFORMANCE.md)"
  # Report-only: CI containers are 1-core and noisy, so the smoke leg
  # records the numbers without enforcing; run tools/bench_gate directly
  # (no flag) to enforce the thresholds on quiet hardware.
  # --strict-build-type still hard-fails if the perf tree was configured
  # Debug — timing noise is tolerated, measuring the wrong binary is not.
  if [ -x build/bench/perf_micro ]; then
    tools/bench_gate --no-fail --strict-build-type
  else
    echo "perf binaries not built (Release tree) — skipping bench gates" >&2
  fi
  echo "TSan + trace + chaos + perf smoke passed" >&2
  exit 0
fi

out="${1:-paper_protocol_results.txt}"
bench_dir="build/bench"
[ -d "$bench_dir" ] || { echo "build first: cmake --build build" >&2; exit 1; }

AGENTNET_RUNS=40 AGENTNET_FULL=1 sh -c '
  for b in '"$bench_dir"'/fig* '"$bench_dir"'/ext*; do
    echo "##### $(basename "$b")"
    "$b"
  done
' | tee "$out"
echo "wrote $out" >&2
