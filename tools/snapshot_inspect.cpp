// Dumps and validates AGENTNET_CHECKPOINT snapshot files.
//
//   snapshot_inspect <file.snap>...           # validate + summary dump
//   snapshot_inspect --validate <file.snap>...  # validation only (quiet)
//
// Loading runs the full container validation path — magic, version, chunk
// CRC32s, per-chunk parses, duplicate/unknown-chunk checks — so a zero exit
// certifies the file would be accepted by AGENTNET_RESUME. The dump prints
// the experiment identity and one line per run record (run index, captured
// step, payload bytes). Exits 1 on the first rejected file, printing the
// ConfigError that resume would raise.
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "snapshot/snapshot.hpp"

int main(int argc, char** argv) {
  bool quiet = false;
  std::vector<const char*> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0)
      quiet = true;
    else
      files.push_back(argv[i]);
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: snapshot_inspect [--validate] <file.snap>...\n");
    return 2;
  }
  for (const char* path : files) {
    agentnet::snapshot::Checkpoint checkpoint;
    try {
      checkpoint = agentnet::snapshot::load_checkpoint(path);
    } catch (const agentnet::ConfigError& e) {
      std::fprintf(stderr, "snapshot_inspect: %s\n", e.what());
      return 1;
    }
    if (quiet) {
      std::printf("%s: OK (%zu run records)\n", path,
                  checkpoint.runs.size());
      continue;
    }
    const auto& id = checkpoint.identity;
    std::printf("%s:\n", path);
    std::printf("  kind=%s runs=%llu run_seed_base=%llu node_count=%llu "
                "steps=%llu\n",
                id.kind.c_str(), static_cast<unsigned long long>(id.runs),
                static_cast<unsigned long long>(id.run_seed_base),
                static_cast<unsigned long long>(id.node_count),
                static_cast<unsigned long long>(id.steps));
    for (const auto& [run, record] : checkpoint.runs)
      std::printf("  run %llu: step %llu, %zu payload bytes\n",
                  static_cast<unsigned long long>(run),
                  static_cast<unsigned long long>(record.step),
                  record.payload.size());
  }
  return 0;
}
