// metrics_report — the AGENTNET_METRICS time-series analyzer.
//
//   metrics_report validate  <metrics.jsonl>...
//   metrics_report summarize <metrics.jsonl> [--gauge=NAME] [--threshold=X]
//   metrics_report diff      <a.jsonl> <b.jsonl> [--tol=X]
//
// validate   — strict parse of every line (obs::parse_metrics_line); exits
//              non-zero on the first malformed line or a file without a
//              group header.
// summarize  — per-gauge statistics over the per-step mean across runs
//              (samples, min, max, mean, AUC), the degradation/recovery
//              curve of one gauge (--gauge, default connectivity): first
//              step its mean drops below --threshold (default 0.5), the
//              first step it recovers, and the step count between them
//              (time-to-reconnect); windowed latency totals and summed
//              counter deltas.
// diff       — record-by-record comparison of two streams; byte-exact by
//              default (the determinism gate: threads=1 vs threads=N),
//              --tol=X allows gauge values to differ by at most X while
//              integers stay exact. Exits 1 on the first divergence.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

using agentnet::obs::Gauge;
using agentnet::obs::kCounterCount;
using agentnet::obs::kGaugeCount;
using agentnet::obs::MetricsRecord;

namespace {

struct ParsedFile {
  std::vector<MetricsRecord> records;  ///< In file order, groups included.
  std::size_t groups = 0;
  std::size_t rows = 0;
};

bool read_file(const char* path, ParsedFile& out) {
  std::ifstream is(path);
  if (!is.is_open()) {
    std::fprintf(stderr, "metrics_report: cannot open %s\n", path);
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string error;
    const auto record = agentnet::obs::parse_metrics_line(line, &error);
    if (!record) {
      std::fprintf(stderr, "metrics_report: %s:%zu: %s\n", path, line_no,
                   error.c_str());
      return false;
    }
    if (record->is_group)
      ++out.groups;
    else
      ++out.rows;
    out.records.push_back(*record);
  }
  if (out.groups == 0) {
    std::fprintf(stderr, "metrics_report: %s: no metrics group header\n",
                 path);
    return false;
  }
  return true;
}

int run_validate(const std::vector<const char*>& files) {
  bool ok = true;
  for (const char* path : files) {
    ParsedFile parsed;
    if (!read_file(path, parsed)) {
      ok = false;
      continue;
    }
    std::printf("metrics_report: %s: %zu groups, %zu rows ok\n", path,
                parsed.groups, parsed.rows);
  }
  return ok ? 0 : 1;
}

/// Mean across runs of one gauge at each sampled step, in step order.
std::vector<std::pair<std::uint64_t, double>> step_means(
    const ParsedFile& parsed, std::size_t gauge) {
  std::map<std::uint64_t, std::pair<double, std::size_t>> acc;
  for (const MetricsRecord& record : parsed.records) {
    if (record.is_group || !record.row.has_gauge[gauge]) continue;
    auto& [sum, count] = acc[record.row.step];
    sum += record.row.gauges[gauge];
    ++count;
  }
  std::vector<std::pair<std::uint64_t, double>> series;
  series.reserve(acc.size());
  for (const auto& [step, entry] : acc)
    series.emplace_back(step, entry.first / static_cast<double>(entry.second));
  return series;
}

/// Step-function area under the series: each sample covers the gap to the
/// next sampled step (the final sample reuses the preceding gap, or 1).
double series_auc(const std::vector<std::pair<std::uint64_t, double>>& s) {
  double auc = 0.0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    double dt = 1.0;
    if (i + 1 < s.size())
      dt = static_cast<double>(s[i + 1].first - s[i].first);
    else if (i > 0)
      dt = static_cast<double>(s[i].first - s[i - 1].first);
    auc += s[i].second * dt;
  }
  return auc;
}

int run_summarize(const char* path, const std::string& gauge_name,
                  double threshold) {
  std::size_t target = kGaugeCount;
  for (std::size_t g = 0; g < kGaugeCount; ++g)
    if (gauge_name == agentnet::obs::gauge_name(static_cast<Gauge>(g)))
      target = g;
  if (target == kGaugeCount) {
    std::fprintf(stderr, "metrics_report: unknown gauge '%s'\n",
                 gauge_name.c_str());
    return 2;
  }
  ParsedFile parsed;
  if (!read_file(path, parsed)) return 1;
  std::printf("metrics_report: %s: %zu groups, %zu rows\n", path,
              parsed.groups, parsed.rows);

  for (std::size_t g = 0; g < kGaugeCount; ++g) {
    const auto series = step_means(parsed, g);
    if (series.empty()) continue;
    double lo = series.front().second, hi = lo, sum = 0.0;
    for (const auto& [step, value] : series) {
      lo = std::min(lo, value);
      hi = std::max(hi, value);
      sum += value;
    }
    std::printf(
        "gauge %s: samples %zu, min %.6g, max %.6g, mean %.6g, auc %.6g\n",
        agentnet::obs::gauge_name(static_cast<Gauge>(g)), series.size(), lo,
        hi, sum / static_cast<double>(series.size()), series_auc(series));
  }

  // Degradation / recovery curve of the selected gauge: when did its
  // cross-run mean first sink below the threshold, and when was it back?
  const auto curve = step_means(parsed, target);
  if (curve.empty()) {
    std::printf("curve %s: no samples\n", gauge_name.c_str());
  } else {
    std::int64_t drop = -1, recover = -1;
    for (const auto& [step, value] : curve) {
      if (drop < 0 && value < threshold) drop = static_cast<std::int64_t>(step);
      if (drop >= 0 && recover < 0 && value >= threshold &&
          static_cast<std::int64_t>(step) > drop)
        recover = static_cast<std::int64_t>(step);
    }
    if (drop < 0) {
      std::printf("curve %s: never below threshold %g\n", gauge_name.c_str(),
                  threshold);
    } else if (recover < 0) {
      std::printf(
          "curve %s: below threshold %g from step %lld, never recovered\n",
          gauge_name.c_str(), threshold, static_cast<long long>(drop));
    } else {
      std::printf(
          "curve %s: below threshold %g at step %lld, recovered at step "
          "%lld, time_to_reconnect %lld\n",
          gauge_name.c_str(), threshold, static_cast<long long>(drop),
          static_cast<long long>(recover),
          static_cast<long long>(recover - drop));
    }
  }

  // Windowed latency totals: every has_latency row is one (run, window).
  std::size_t windows = 0;
  std::uint64_t packets = 0, p99_max = 0;
  for (const MetricsRecord& record : parsed.records) {
    if (record.is_group || !record.row.has_latency) continue;
    ++windows;
    packets += record.row.lat_count;
    p99_max = std::max(p99_max, record.row.lat_p99);
  }
  if (windows > 0)
    std::printf("latency: %zu windows, %llu packets, worst p99 %llu steps\n",
                windows, static_cast<unsigned long long>(packets),
                static_cast<unsigned long long>(p99_max));

  // Counter deltas summed over every row reproduce the run totals.
  std::vector<std::uint64_t> totals(kCounterCount, 0);
  for (const MetricsRecord& record : parsed.records) {
    if (record.is_group) continue;
    for (std::size_t i = 0; i < kCounterCount; ++i)
      totals[i] += record.row.deltas[i];
  }
  for (std::size_t i = 0; i < kCounterCount; ++i)
    if (totals[i] != 0)
      std::printf("delta_total %s: %llu\n",
                  agentnet::obs::counter_name(
                      static_cast<agentnet::obs::Counter>(i)),
                  static_cast<unsigned long long>(totals[i]));
  return 0;
}

bool rows_match(const MetricsRecord& a, const MetricsRecord& b, double tol) {
  if (a.is_group != b.is_group) return false;
  if (a.is_group) return a.runs == b.runs && a.every == b.every;
  if (a.run != b.run || a.row.step != b.row.step) return false;
  if (a.row.has_gauge != b.row.has_gauge) return false;
  for (std::size_t g = 0; g < kGaugeCount; ++g)
    if (a.row.has_gauge[g] &&
        std::abs(a.row.gauges[g] - b.row.gauges[g]) > tol)
      return false;
  return a.row.deltas == b.row.deltas &&
         a.row.has_latency == b.row.has_latency &&
         a.row.lat_count == b.row.lat_count &&
         a.row.lat_p50 == b.row.lat_p50 && a.row.lat_p95 == b.row.lat_p95 &&
         a.row.lat_p99 == b.row.lat_p99;
}

int run_diff(const char* path_a, const char* path_b, double tol) {
  ParsedFile a, b;
  if (!read_file(path_a, a) || !read_file(path_b, b)) return 1;
  const std::size_t n = std::min(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool same =
        tol == 0.0 ? a.records[i].is_group == b.records[i].is_group &&
                         (a.records[i].is_group
                              ? a.records[i].runs == b.records[i].runs &&
                                    a.records[i].every == b.records[i].every
                              : a.records[i].run == b.records[i].run &&
                                    a.records[i].row == b.records[i].row)
                   : rows_match(a.records[i], b.records[i], tol);
    if (!same) {
      const auto& ra = a.records[i];
      std::fprintf(stderr,
                   "metrics_report: diverges at record %zu (%s run %lld "
                   "step %llu)\n",
                   i + 1, ra.is_group ? "group" : "row",
                   static_cast<long long>(ra.run),
                   static_cast<unsigned long long>(ra.row.step));
      return 1;
    }
  }
  if (a.records.size() != b.records.size()) {
    std::fprintf(stderr,
                 "metrics_report: record count differs: %zu vs %zu\n",
                 a.records.size(), b.records.size());
    return 1;
  }
  std::printf("metrics_report: %s == %s (%zu records%s)\n", path_a, path_b,
              a.records.size(), tol == 0.0 ? ", exact" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(
        stderr,
        "usage: metrics_report validate  <metrics.jsonl>...\n"
        "       metrics_report summarize <metrics.jsonl> [--gauge=NAME] "
        "[--threshold=X]\n"
        "       metrics_report diff      <a.jsonl> <b.jsonl> [--tol=X]\n");
    return 2;
  };
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  std::vector<const char*> files;
  std::string gauge = "connectivity";
  double threshold = 0.5, tol = 0.0;
  for (int arg = 2; arg < argc; ++arg) {
    if (std::strncmp(argv[arg], "--gauge=", 8) == 0)
      gauge = argv[arg] + 8;
    else if (std::strncmp(argv[arg], "--threshold=", 12) == 0)
      threshold = std::atof(argv[arg] + 12);
    else if (std::strncmp(argv[arg], "--tol=", 6) == 0)
      tol = std::atof(argv[arg] + 6);
    else if (std::strncmp(argv[arg], "--", 2) == 0) {
      std::fprintf(stderr, "metrics_report: unknown flag %s\n", argv[arg]);
      return 2;
    } else
      files.push_back(argv[arg]);
  }
  if (mode == "validate" && !files.empty()) return run_validate(files);
  if (mode == "summarize" && files.size() == 1)
    return run_summarize(files[0], gauge, threshold);
  if (mode == "diff" && files.size() == 2)
    return run_diff(files[0], files[1], tol);
  return usage();
}
