// ASCII observatory: watch the dynamic-routing world evolve in the
// terminal — the spiritual successor of the original simulator's
// "graphical view". Also a demonstration of driving agents through the
// low-level API instead of run_routing_task.
//
//   ./build/examples/ascii_observatory [steps]
//
// Legend:  G gateway   o node (no valid route)   + node with a live route
//          1-9 that many agents on the cell       · empty space
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "agentnet.hpp"

using namespace agentnet;

namespace {

constexpr int kCols = 64;
constexpr int kRows = 24;

void render(const World& world, const RoutingScenario& scenario,
            const std::vector<RoutingAgent>& agents,
            const RoutingTables& tables, std::size_t step) {
  const Aabb bounds = world.bounds();
  std::vector<std::string> canvas(kRows, std::string(kCols, ' '));
  for (auto& row : canvas)
    for (auto& c : row) c = '.';

  auto cell = [&](Vec2 p, int& cx, int& cy) {
    cx = std::min(kCols - 1,
                  static_cast<int>((p.x - bounds.lo.x) / bounds.width() *
                                   kCols));
    cy = std::min(kRows - 1,
                  static_cast<int>((p.y - bounds.lo.y) / bounds.height() *
                                   kRows));
  };

  const auto valid =
      valid_route_flags(world.graph(), tables, scenario.is_gateway());
  for (NodeId v = 0; v < world.node_count(); ++v) {
    int cx, cy;
    cell(world.positions()[v], cx, cy);
    char& c = canvas[cy][cx];
    if (scenario.is_gateway()[v])
      c = 'G';
    else if (c != 'G')
      c = valid[v] ? '+' : 'o';
  }
  std::vector<int> agent_count(static_cast<std::size_t>(kRows) * kCols, 0);
  for (const auto& agent : agents) {
    int cx, cy;
    cell(world.positions()[agent.location()], cx, cy);
    ++agent_count[static_cast<std::size_t>(cy) * kCols + cx];
  }
  for (int cy = 0; cy < kRows; ++cy)
    for (int cx = 0; cx < kCols; ++cx) {
      const int k = agent_count[static_cast<std::size_t>(cy) * kCols + cx];
      if (k > 0) canvas[cy][cx] = static_cast<char>('0' + std::min(9, k));
    }

  const auto conn =
      measure_connectivity(world.graph(), tables, scenario.is_gateway());
  std::printf("step %3zu   connectivity %.3f   links %zu\n", step,
              conn.fraction(), world.graph().edge_count());
  for (const auto& row : canvas) std::printf("  %s\n", row.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t steps =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  RoutingScenarioParams params;
  params.node_count = 120;
  params.gateway_count = 6;
  params.bounds = {{0.0, 0.0}, {800.0, 800.0}};
  params.trace_steps = steps;
  const RoutingScenario scenario(params, 7);
  World world = scenario.make_world();

  RoutingTables tables(world.node_count());
  StigmergyBoard board(world.node_count(), 20);
  RoutingAgentConfig agent_cfg;
  agent_cfg.policy = RoutingPolicy::kOldestNode;
  agent_cfg.stigmergy = StigmergyMode::kFilterFirst;

  Rng rng(9);
  std::vector<RoutingAgent> agents;
  for (int a = 0; a < 40; ++a)
    agents.emplace_back(a,
                        static_cast<NodeId>(rng.index(world.node_count())),
                        agent_cfg, rng.fork(a + 1));

  for (std::size_t t = 0; t < steps; ++t) {
    for (auto& agent : agents) agent.arrive(scenario.is_gateway(), t);
    for (auto& agent : agents) {
      const NodeId target = agent.decide(world.graph(), board, t);
      if (target != agent.location()) board.stamp(agent.location(), target, t);
      agent.move_to(target);
      agent.install(tables, scenario.is_gateway(), t);
    }
    world.advance();
    if (t % (steps / 4 == 0 ? 1 : steps / 4) == 0 || t + 1 == steps)
      render(world, scenario, agents, tables, t);
  }
  return 0;
}
