// Disaster-relief MANET: the paper's dynamic-routing scenario as a story.
//
// A relief operation drops 12 satellite-uplink gateways into an area where
// responders' devices move unpredictably and run on battery. Mobile agents
// keep every device's routing table pointed at a live uplink. This example
// compares the two agent movement policies and prints the connectivity the
// operation actually gets versus the best physically possible (oracle).
//
//   ./build/examples/disaster_relief_manet
#include <cstdio>
#include <iostream>

#include "core/routing_task.hpp"

using namespace agentnet;

int main() {
  RoutingScenarioParams params;  // the paper's 250-node / 12-gateway setup
  const RoutingScenario scenario(params, 2026);
  std::printf(
      "relief network: %zu devices, %zu uplink gateways, ~half mobile with "
      "random speeds, mobile radios decaying on battery\n\n",
      scenario.node_count(), params.gateway_count);

  RoutingTaskConfig task;
  task.population = 100;
  task.agent.history_size = 10;
  task.record_oracle = true;

  for (RoutingPolicy policy :
       {RoutingPolicy::kRandom, RoutingPolicy::kOldestNode}) {
    task.agent.policy = policy;
    const RoutingTaskResult result = run_routing_task(scenario, task, Rng(5));
    std::printf("%-12s agents: converged connectivity %.3f (sd %.3f)\n",
                to_string(policy), result.mean_connectivity,
                result.stddev_connectivity);
  }

  // Show the oldest-node trace against the oracle: how much headroom the
  // physical topology leaves on the table.
  task.agent.policy = RoutingPolicy::kOldestNode;
  const RoutingTaskResult trace = run_routing_task(scenario, task, Rng(5));
  std::printf("\n%8s  %12s  %8s\n", "step", "connectivity", "oracle");
  for (std::size_t t = 0; t < trace.connectivity.size(); t += 25)
    std::printf("%8zu  %12.3f  %8.3f\n", t, trace.connectivity[t],
                trace.oracle[t]);
  std::printf("%8zu  %12.3f  %8.3f\n", trace.connectivity.size() - 1,
              trace.connectivity.back(), trace.oracle.back());

  std::printf(
      "\nthe gap to the oracle is the cost of learning routes with wandering "
      "agents in a network that rewires under them.\n");
  return 0;
}
