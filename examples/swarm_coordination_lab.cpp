// Swarm-coordination lab: a side-by-side tour of every agent design choice
// in the paper, on one mid-sized network — the example to read when deciding
// which agent to deploy.
//
//   ./build/examples/swarm_coordination_lab [population]
#include <cstdio>
#include <cstdlib>

#include "common/table.hpp"
#include "experiments/mapping_experiments.hpp"

#include <iostream>

using namespace agentnet;

int main(int argc, char** argv) {
  const int population = argc > 1 ? std::atoi(argv[1]) : 15;
  TargetEdgeParams params;
  params.geometry.node_count = 150;
  params.target_edges = 1050;
  params.tolerance = 0.05;
  const GeneratedNetwork net = generate_target_edge_network(params, 123);
  std::printf("arena: %zu nodes / %zu edges, %d agents, 8 runs each\n\n",
              net.graph.node_count(), net.graph.edge_count(), population);

  struct Design {
    const char* label;
    MappingPolicy policy;
    StigmergyMode stigmergy;
    bool communication;
  };
  const Design designs[] = {
      {"random", MappingPolicy::kRandom, StigmergyMode::kOff, true},
      {"random + stigmergy", MappingPolicy::kRandom,
       StigmergyMode::kFilterFirst, true},
      {"conscientious", MappingPolicy::kConscientious, StigmergyMode::kOff,
       true},
      {"conscientious, comms off", MappingPolicy::kConscientious,
       StigmergyMode::kOff, false},
      {"conscientious + stigmergy", MappingPolicy::kConscientious,
       StigmergyMode::kFilterFirst, true},
      {"super-conscientious", MappingPolicy::kSuperConscientious,
       StigmergyMode::kOff, true},
      {"super-conscientious + stigmergy", MappingPolicy::kSuperConscientious,
       StigmergyMode::kFilterFirst, true},
  };

  Table table({"agent design", "finishing time", "ci95", "vs baseline"});
  table.set_precision(1);
  double baseline = 0.0;
  for (const auto& d : designs) {
    MappingTaskConfig task;
    task.population = population;
    task.agent = {d.policy, d.stigmergy};
    task.communication = d.communication;
    task.record_series = false;
    const MappingSummary summary = run_mapping_experiment(net, task, 8, 555);
    const double mean = summary.finishing_time.mean();
    if (baseline == 0.0) baseline = mean;
    table.add_row({std::string(d.label), mean,
                   confidence_halfwidth(summary.finishing_time),
                   mean / baseline});
  }
  table.print(std::cout);
  std::printf(
      "\nreadings: cooperation (comms) and directed wandering both matter; "
      "stigmergy stacks on top of either; super-conscientious needs "
      "stigmergy to stay ahead at scale.\n");
  return 0;
}
