// Sensor-field survey: mapping a battery-degrading network.
//
// The paper's mapping environment notes that battery-powered radios degrade,
// so "the topology knowledge of the network become[s] invalid after awhile,
// such that we need to fire up the agents again". This example runs repeated
// survey waves over a field of sensors whose ranges decay, and shows how the
// previous wave's map rots between waves.
//
//   ./build/examples/sensor_field_survey
#include <iostream>
#include <memory>

#include "core/mapping_task.hpp"
#include "net/generators.hpp"
#include "sim/world.hpp"

using namespace agentnet;

namespace {

// A world over the generated layout where 40% of sensors are on battery.
World make_decaying_world(const GeneratedNetwork& net, Rng& rng) {
  const std::size_t n = net.positions.size();
  std::vector<bool> on_battery(n, false);
  for (std::size_t idx : rng.sample_indices(n, n * 2 / 5))
    on_battery[idx] = true;
  BatteryBank batteries(n, on_battery, BatteryParams{1.0, 0.004});
  return World(net.bounds, net.positions,
               RadioModel(net.base_ranges, RangeScaling{0.55}),
               std::move(batteries), std::make_unique<StationaryMobility>(),
               net.policy);
}

}  // namespace

int main() {
  TargetEdgeParams params;
  params.geometry.node_count = 120;
  params.target_edges = 840;
  params.tolerance = 0.05;
  const GeneratedNetwork net = generate_target_edge_network(params, 11);
  Rng rng(99);
  World world = make_decaying_world(net, rng);

  std::cout << "sensor field: " << net.graph.node_count() << " sensors, "
            << net.graph.edge_count() << " links at full charge\n\n";

  MappingTaskConfig task;
  task.population = 12;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  task.advance_world = true;  // batteries drain while agents survey
  task.max_steps = 5000;

  // Run three survey waves, 60 decay steps apart, and report how much of
  // the map captured by each wave is still valid when the next one starts.
  std::size_t previous_map_size = 0;
  for (int wave = 0; wave < 3; ++wave) {
    const std::size_t edges_now = world.graph().edge_count();
    if (previous_map_size > 0) {
      std::cout << "  links live now: " << edges_now << " (previous wave saw "
                << previous_map_size << " — "
                << (previous_map_size >= edges_now
                        ? previous_map_size - edges_now
                        : 0)
                << " links rotted)\n";
    }
    const MappingTaskResult result = run_mapping_task(world, task, rng.fork(wave + 1));
    std::string outcome;
    if (result.finished) {
      outcome = "mapped in " + std::to_string(result.finishing_time) + " steps";
    } else {
      // Battery decay can disconnect parts of the field mid-wave; report
      // how much of the (current) topology the team still captured.
      const int percent = static_cast<int>(result.mean_knowledge.back() * 100.0);
      outcome = "covered " + std::to_string(percent) +
                "% before the field degraded past full coverage";
    }
    std::cout << "wave " << (wave + 1) << ": " << outcome << ", network had "
              << edges_now << " links at wave start\n";
    previous_map_size = world.graph().edge_count();
    for (int t = 0; t < 60; ++t) world.advance();  // decay between waves
  }
  std::cout << "\nradio decay makes yesterday's map stale — exactly why the "
               "paper re-fires the agents.\n";
  return 0;
}
