// The compilable companion to docs/API.md: every snippet in the reference
// is lifted from here. Covers network generation, a single mapping task, a
// parallel multi-run mapping experiment, a routing experiment, flow traffic
// with delay-reinforced ants, and the stats types — the whole public
// surface a typical consumer touches.
#include <cstdio>

#include "agentnet.hpp"

using namespace agentnet;

int main() {
  // --- Network generation ---------------------------------------------------
  // The paper's mapping network: 300 nodes, ≈2164 directed edges, strongly
  // connected. Deterministic in the seed.
  GeneratedNetwork net = paper_mapping_network(/*seed=*/2010);
  std::printf("network: %zu nodes, %zu directed edges\n",
              net.graph.node_count(), net.graph.edge_count());

  // --- One mapping task -----------------------------------------------------
  // Ten stigmergic conscientious agents map the network cooperatively.
  World world = World::frozen(net);
  MappingTaskConfig task;
  task.population = 10;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  MappingTaskResult one = run_mapping_task(world, task, Rng(7));
  std::printf("single run: finished=%d at step %zu\n", one.finished,
              one.finishing_time);

  // --- A multi-run experiment (parallel, bit-reproducible) -------------------
  // 12 replications seeded 1000+r, fanned out across AGENTNET_THREADS
  // workers (default: all cores). The summary is bit-identical at every
  // thread count; pass threads=1 explicitly for the plain serial loop.
  MappingSummary summary =
      run_mapping_experiment(net, task, /*runs=*/12, /*run_seed_base=*/1000);
  std::printf("experiment: mean finish %.1f ±%.1f over %d runs\n",
              summary.finishing_time.mean(),
              confidence_halfwidth(summary.finishing_time), summary.runs);

  // --- The routing scenario and experiment -----------------------------------
  // A small MANET: placement, gateway mask and the full movement script are
  // generated once from the seed and replayed identically for every run.
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {400.0, 400.0}};
  params.trace_steps = 80;
  RoutingScenario scenario(params, /*seed=*/9);

  RoutingTaskConfig routing;
  routing.population = 20;
  routing.steps = 80;
  routing.measure_from = 40;  // converged window
  RoutingSummary routed =
      run_routing_experiment(scenario, routing, /*runs=*/8,
                             /*run_seed_base=*/50);
  std::printf("routing: connectivity %.3f ±%.3f\n",
              routed.mean_connectivity.mean(),
              confidence_halfwidth(routed.mean_connectivity));

  // --- Flow traffic over the ant-maintained routes ---------------------------
  // Sessions arrive Poisson, packets queue at each hop, and the ants deposit
  // pheromone in proportion to 1/trip-time (kDelay) instead of hop count.
  // The latency percentiles come off an exact integer histogram, so they are
  // bit-identical at any AGENTNET_THREADS.
  TrafficTaskConfig traffic;
  traffic.workload.offered_load = 0.3;  // packets / node / step
  traffic.ants.reinforcement = AntReinforcement::kDelay;
  traffic.balance_gateways = true;
  traffic.steps = 80;
  traffic.measure_from = 40;
  TrafficTaskResult carried = run_traffic_task(scenario, traffic, Rng(5));
  TrafficSummary loaded =
      run_traffic_experiment(scenario, traffic, /*runs=*/4,
                             /*run_seed_base=*/500);
  std::printf("traffic: delivery %.3f p99 %llu steps (one run %.3f)\n",
              loaded.delivery_ratio.mean(),
              static_cast<unsigned long long>(
                  loaded.traffic.latency_quantile(0.99)),
              carried.traffic.delivery_ratio());

  // --- Stats types ------------------------------------------------------------
  // RunningStats and SeriesAccumulator are mergeable (Chan/Welford): combine
  // accumulators you built elsewhere, e.g. across your own worker shards.
  RunningStats shard_a, shard_b;
  shard_a.add(1.0);
  shard_a.add(2.0);
  shard_b.add(3.0);
  shard_a.merge(shard_b);
  std::printf("merged stats: n=%zu mean=%.2f\n", shard_a.count(),
              shard_a.mean());

  // Per-step series over the experiment's runs, decimated for printing.
  const SeriesAccumulator& knowledge = summary.knowledge;
  for (std::size_t idx : series_sample_points(knowledge.length(), 5))
    std::printf("  step %4zu: knowledge %.3f\n", idx,
                knowledge.at(idx).mean());
  return 0;
}
