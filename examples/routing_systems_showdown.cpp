// Routing-systems showdown: three ways to keep a MANET pointed at its
// gateways, one scenario, one metric, one overhead yardstick.
//
//   1. the paper's mobile agents (bounded history + reverse-path hints),
//   2. distance-vector-carrying agents (the related work's heavyweights),
//   3. ant-colony pheromone routing (AntHocNet-style).
//
//   ./build/examples/routing_systems_showdown
#include <cstdio>
#include <iostream>

#include "agentnet.hpp"

using namespace agentnet;

int main() {
  RoutingScenarioParams params;
  params.node_count = 150;
  params.gateway_count = 8;
  params.bounds = {{0.0, 0.0}, {800.0, 800.0}};
  params.trace_steps = 200;
  const RoutingScenario scenario(params, 404);
  std::printf(
      "arena: %zu nodes, %zu gateways, half mobile on battery, 200 steps, "
      "converged window 100-200\n\n",
      params.node_count, params.gateway_count);

  Table table({"system", "connectivity", "control MB", "notes"});

  {
    RoutingTaskConfig task;
    task.population = 60;
    task.agent.policy = RoutingPolicy::kOldestNode;
    task.agent.history_size = 10;
    task.steps = 200;
    task.measure_from = 100;
    const auto r = run_routing_task(scenario, task, Rng(1));
    table.add_row({std::string("mobile agents (paper)"), r.mean_connectivity,
                   static_cast<double>(r.migration_bytes) / 1e6,
                   std::string("60 walkers, history 10")});
    task.agent.stigmergy = StigmergyMode::kFilterFirst;
    const auto s = run_routing_task(scenario, task, Rng(1));
    table.add_row({std::string("  + stigmergy"), s.mean_connectivity,
                   static_cast<double>(s.migration_bytes) / 1e6,
                   std::string("same bytes, better spread")});
  }
  {
    DvRoutingTaskConfig cfg;
    cfg.population = 60;
    cfg.steps = 200;
    cfg.measure_from = 100;
    const auto r = run_dv_routing_task(scenario, cfg, Rng(1));
    table.add_row({std::string("DV agents (related work)"),
                   r.mean_connectivity,
                   static_cast<double>(r.migration_bytes) / 1e6,
                   std::string("60 walkers, table 40")});
  }
  {
    AntRoutingTaskConfig cfg;
    cfg.steps = 200;
    cfg.measure_from = 100;
    cfg.ants.launch_probability = 0.2;
    const auto r = run_ant_routing_task(scenario, cfg, Rng(1));
    char notes[64];
    std::snprintf(notes, sizeof notes, "%zu ants launched, %zu returned",
                  r.ants_launched, r.ants_completed);
    table.add_row({std::string("ant colony (AntHocNet-ish)"),
                   r.mean_connectivity,
                   static_cast<double>(r.control_bytes) / 1e6,
                   std::string(notes)});
  }

  table.print(std::cout);
  std::printf(
      "\nreading: constant path sampling (ants) and carried DV tables both "
      "buy connectivity over the paper's minimal walkers; stigmergy closes "
      "part of the gap for free. The ant colony — the field's direction "
      "after this paper (its own ref [9]) — is the strongest system here; "
      "the mobile-agent designs remain the ones that need zero routing "
      "intelligence on or about specific destinations and degrade most "
      "gracefully as state budgets shrink (bench extH).\n");
  return 0;
}
