// Quickstart: build a wireless network, release a team of stigmergic
// mapping agents, and watch them assemble the topology map.
//
//   ./build/examples/quickstart [nodes] [agents]
#include <cstdlib>
#include <iostream>

#include "core/mapping_task.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"
#include "sim/world.hpp"

using namespace agentnet;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 150;
  const int agents = argc > 2 ? std::atoi(argv[2]) : 10;

  // 1. Generate a strongly connected directed radio network. Heterogeneous
  //    per-node ranges mean some links are one-way, as in real radios.
  TargetEdgeParams net_params;
  net_params.geometry.node_count = nodes;
  net_params.target_edges = nodes * 7;  // mean out-degree ≈ 7
  net_params.tolerance = 0.05;
  const GeneratedNetwork net = generate_target_edge_network(net_params, 42);
  const auto stats = degree_stats(net.graph);
  std::cout << "network: " << net.graph.node_count() << " nodes, "
            << net.graph.edge_count() << " directed edges, mean out-degree "
            << stats.mean_out << ", link symmetry " << stats.symmetry
            << "\n";

  // 2. Freeze it into a world (mapping assumes stationary nodes) and run a
  //    cooperative team of stigmergic conscientious agents.
  World world = World::frozen(net);
  MappingTaskConfig task;
  task.population = agents;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  const MappingTaskResult result = run_mapping_task(world, task, Rng(7));

  // 3. Report. finishing_time is the step at which EVERY agent holds a
  //    perfect map (team efficiency, per the paper).
  if (!result.finished) {
    std::cout << "did not finish within " << task.max_steps << " steps\n";
    return 1;
  }
  std::cout << agents << " agents mapped all " << result.truth_edges
            << " edges in " << result.finishing_time << " steps\n\n";
  std::cout << "knowledge over time (mean fraction of edges known):\n";
  for (std::size_t t = 0; t < result.mean_knowledge.size();
       t += std::max<std::size_t>(1, result.mean_knowledge.size() / 12)) {
    std::cout << "  step " << t << ": " << result.mean_knowledge[t] << "\n";
  }
  std::cout << "  step " << result.finishing_time << ": "
            << result.mean_knowledge.back() << "\n";
  return 0;
}
