// agentnet_cli — run any paper experiment from the command line.
//
//   # mapping: 15 stigmergic conscientious agents on a fresh 300-node net
//   ./agentnet_cli scenario=mapping policy=conscientious stigmergy=filter ...
//                  population=15 runs=10
//
//   # routing: Fig-11-style oldest-node agents with visiting, plus traffic
//   ./agentnet_cli scenario=routing policy=oldest visiting=true ...
//                  population=100 history=10 traffic=true runs=5
//
//   # flow traffic over delay-reinforced ant routes (docs/TRAFFIC.md;
//   # AGENTNET_TRAFFIC_* env knobs supply workload/queue defaults)
//   ./agentnet_cli scenario=traffic mode=delay load=0.4 balance=true runs=5
//
//   # artefact export
//   ./agentnet_cli scenario=mapping export_net=net.txt export_dot=net.dot ...
//                  csv=knowledge.csv
//
// All keys are validated; a typo fails loudly instead of being ignored.
#include <fstream>
#include <iostream>

#include "agentnet.hpp"
#include "common/atomic_file.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"

using namespace agentnet;

namespace {

MappingPolicy parse_mapping_policy(const std::string& name) {
  if (name == "random") return MappingPolicy::kRandom;
  if (name == "conscientious") return MappingPolicy::kConscientious;
  if (name == "super") return MappingPolicy::kSuperConscientious;
  throw ConfigError("policy must be random|conscientious|super, got " + name);
}

RoutingPolicy parse_routing_policy(const std::string& name) {
  if (name == "random") return RoutingPolicy::kRandom;
  if (name == "oldest") return RoutingPolicy::kOldestNode;
  throw ConfigError("policy must be random|oldest, got " + name);
}

StigmergyMode parse_stigmergy(const std::string& name) {
  if (name == "off") return StigmergyMode::kOff;
  if (name == "filter") return StigmergyMode::kFilterFirst;
  if (name == "tiebreak") return StigmergyMode::kTieBreak;
  throw ConfigError("stigmergy must be off|filter|tiebreak, got " + name);
}

int run_mapping(Options& opts) {
  TargetEdgeParams net_params;
  net_params.geometry.node_count =
      static_cast<std::size_t>(opts.get_int("nodes", 300));
  net_params.target_edges = static_cast<std::size_t>(
      opts.get_int("edges", static_cast<std::int64_t>(
                                net_params.geometry.node_count * 14)));
  net_params.tolerance = opts.get_double("edge_tolerance", 0.02);
  const auto seed =
      static_cast<std::uint64_t>(opts.get_int("seed", 2010));

  MappingTaskConfig task;
  task.population = static_cast<int>(opts.get_int("population", 15));
  task.agent.policy =
      parse_mapping_policy(opts.get_string("policy", "conscientious"));
  task.agent.stigmergy = parse_stigmergy(opts.get_string("stigmergy", "off"));
  task.agent.randomness = opts.get_double("randomness", 0.0);
  task.communication = opts.get_bool("communication", true);
  task.stigmergy_horizon =
      static_cast<std::size_t>(opts.get_int("horizon", 0));
  task.stigmergy_capacity =
      static_cast<std::size_t>(opts.get_int("capacity", 1));
  // Chaos runs may never finish (agents keep dying); a bounded step budget
  // makes degradation sweeps terminate. The default is the task's own.
  task.max_steps = static_cast<std::size_t>(
      opts.get_int("max_steps", static_cast<std::int64_t>(task.max_steps)));
  const int runs = static_cast<int>(opts.get_int("runs", 10));
  const std::string export_net = opts.get_string("export_net", "");
  const std::string export_dot = opts.get_string("export_dot", "");
  const std::string csv = opts.get_string("csv", "");
  opts.finish();

  const GeneratedNetwork net = generate_target_edge_network(net_params, seed);
  std::printf("network: %zu nodes, %zu directed edges (seed %llu)\n",
              net.graph.node_count(), net.graph.edge_count(),
              static_cast<unsigned long long>(seed));
  if (!export_net.empty()) save_network_file(net, export_net);
  if (!export_dot.empty()) {
    AtomicFileWriter file(export_dot);
    file.stream() << to_dot(net);
    file.commit();
  }

  // Collect the merged per-run counters so CSV exports can carry them as a
  // `#` footer (topology upkeep and cache-hit totals included).
  obs::RunObs run_obs;
  obs::ObsConfig obs_config = obs::ObsConfig::from_env();
  obs_config.sink = &run_obs;
  const MappingSummary summary = run_mapping_experiment(
      net, task, runs, paper::kRunSeedBase, 0, obs_config);
  std::printf(
      "%d x %s%s agents: finishing time %.1f ± %.1f over %d runs"
      " (%d unfinished)\n",
      task.population, to_string(task.agent.policy),
      task.agent.stigmergy == StigmergyMode::kOff ? "" : " (stigmergic)",
      summary.finishing_time.empty() ? 0.0 : summary.finishing_time.mean(),
      confidence_halfwidth(summary.finishing_time), runs, summary.unfinished);
  if (!csv.empty()) {
    AtomicFileWriter file(csv);
    write_series_csv(file.stream(), {"knowledge_mean", "knowledge_stddev"},
                     {summary.knowledge.mean(), summary.knowledge.stddev()});
    obs::write_run_footer(file.stream(), run_obs, obs_config);
    file.commit();
    std::printf("knowledge series written to %s\n", csv.c_str());
  }
  return 0;
}

GatewayPlacement parse_placement(const std::string& name) {
  if (name == "random") return GatewayPlacement::kRandom;
  if (name == "spread") return GatewayPlacement::kSpread;
  if (name == "perimeter") return GatewayPlacement::kPerimeter;
  throw ConfigError("placement must be random|spread|perimeter, got " +
                    name);
}

int run_routing(Options& opts) {
  RoutingScenarioParams scenario_params;
  scenario_params.node_count =
      static_cast<std::size_t>(opts.get_int("nodes", 250));
  scenario_params.gateway_count =
      static_cast<std::size_t>(opts.get_int("gateways", 12));
  scenario_params.gateway_placement =
      parse_placement(opts.get_string("placement", "random"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 2010));
  const std::string scenario_file = opts.get_string("scenario_file", "");
  const std::string export_scenario =
      opts.get_string("export_scenario", "");

  RoutingTaskConfig task;
  task.population = static_cast<int>(opts.get_int("population", 100));
  task.agent.policy =
      parse_routing_policy(opts.get_string("policy", "oldest"));
  task.agent.history_size =
      static_cast<std::size_t>(opts.get_int("history", 10));
  task.agent.communicate = opts.get_bool("visiting", false);
  task.agent.stigmergy = parse_stigmergy(opts.get_string("stigmergy", "off"));
  task.record_oracle = opts.get_bool("oracle", false);
  if (opts.get_bool("traffic", false)) task.traffic = TrafficConfig{};
  const int runs = static_cast<int>(opts.get_int("runs", 5));
  const std::string csv = opts.get_string("csv", "");
  opts.finish();

  const RoutingScenario scenario =
      scenario_file.empty() ? RoutingScenario(scenario_params, seed)
                            : load_scenario_file(scenario_file);
  if (!export_scenario.empty()) {
    save_scenario_file(scenario, export_scenario);
    std::printf("scenario written to %s\n", export_scenario.c_str());
  }
  obs::RunObs run_obs;
  obs::ObsConfig obs_config = obs::ObsConfig::from_env();
  obs_config.sink = &run_obs;
  const RoutingSummary summary = run_routing_experiment(
      scenario, task, runs, paper::kRunSeedBase, 0, obs_config);
  std::printf(
      "%d x %s agents%s%s: connectivity %.3f ± %.3f over %d runs\n",
      task.population, to_string(task.agent.policy),
      task.agent.communicate ? " + visiting" : "",
      task.agent.stigmergy == StigmergyMode::kOff ? "" : " + stigmergy",
      summary.mean_connectivity.mean(),
      confidence_halfwidth(summary.mean_connectivity), runs);
  if (task.traffic) {
    // Re-run one task to surface the traffic stats of a representative run.
    const auto one = run_routing_task(scenario, task, Rng(paper::kRunSeedBase));
    const TrafficStats& ts = *one.traffic_stats;
    std::printf(
        "traffic: generated %zu, delivered %zu (ratio %.3f), mean latency "
        "%.2f steps\n",
        ts.generated, ts.delivered, ts.delivery_ratio(),
        ts.latency.count() ? ts.latency.mean() : 0.0);
  }
  if (!csv.empty()) {
    AtomicFileWriter file(csv);
    std::vector<std::string> names{"connectivity_mean", "connectivity_sd"};
    std::vector<std::vector<double>> series{summary.connectivity.mean(),
                                            summary.connectivity.stddev()};
    if (summary.oracle.runs() > 0) {
      names.push_back("oracle_mean");
      series.push_back(summary.oracle.mean());
    }
    write_series_csv(file.stream(), names, series);
    obs::write_run_footer(file.stream(), run_obs, obs_config);
    file.commit();
    std::printf("connectivity series written to %s\n", csv.c_str());
  }
  return 0;
}

int run_aco(Options& opts) {
  RoutingScenarioParams scenario_params;
  scenario_params.node_count =
      static_cast<std::size_t>(opts.get_int("nodes", 250));
  scenario_params.gateway_count =
      static_cast<std::size_t>(opts.get_int("gateways", 12));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 2010));
  AntRoutingTaskConfig task;
  task.ants.launch_probability = opts.get_double("launch", 0.2);
  task.ants.evaporation = opts.get_double("evaporation", 0.02);
  const int runs = static_cast<int>(opts.get_int("runs", 5));
  opts.finish();

  const RoutingScenario scenario(scenario_params, seed);
  obs::RunObs run_obs;
  obs::ObsConfig obs_config = obs::ObsConfig::from_env();
  obs_config.sink = &run_obs;
  std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
  obs::enable_slots(slots, obs_config);
  const auto checkpointer = snapshot::ExperimentCheckpointer::from_env(
      {"aco", static_cast<std::uint64_t>(runs), paper::kRunSeedBase,
       scenario.node_count(), task.steps});
  RunningStats conn, mb;
  for (int r = 0; r < runs; ++r) {
    obs::ObsRunScope scope(slots[static_cast<std::size_t>(r)]);
    AntRoutingTaskConfig run_config = task;
    snapshot::RunCheckpointPort port;
    if (checkpointer) {
      port = checkpointer->port(static_cast<std::uint64_t>(r));
      run_config.checkpoint = &port;
    }
    const auto result = run_ant_routing_task(
        scenario, run_config,
        Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
    conn.add(result.mean_connectivity);
    mb.add(static_cast<double>(result.control_bytes) / 1e6);
  }
  obs::merge_and_write(slots, obs_config, paper::kRunSeedBase, runs, 1);
  std::printf(
      "ant colony (launch %.2f): connectivity %.3f ± %.3f, control %.2f MB "
      "over %d runs\n",
      task.ants.launch_probability, conn.mean(),
      confidence_halfwidth(conn), mb.mean(), runs);
  return 0;
}

int run_traffic(Options& opts) {
  RoutingScenarioParams scenario_params;
  scenario_params.node_count =
      static_cast<std::size_t>(opts.get_int("nodes", 250));
  scenario_params.gateway_count =
      static_cast<std::size_t>(opts.get_int("gateways", 12));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 2010));

  TrafficTaskConfig task;
  task.workload = FlowWorkloadConfig::from_env();
  task.workload.offered_load =
      opts.get_double("load", task.workload.offered_load);
  task.queue = LinkQueueConfig::from_env();
  const std::string mode = opts.get_string("mode", "delay");
  if (mode == "hop") {
    task.ants.reinforcement = AntReinforcement::kHopCount;
  } else if (mode == "delay") {
    task.ants.reinforcement = AntReinforcement::kDelay;
  } else {
    throw ConfigError("mode must be hop|delay, got " + mode);
  }
  task.balance_gateways = opts.get_bool("balance", false);
  if (task.balance_gateways)
    task.balancer = GatewayBalancerConfig::from_env();
  const int runs = static_cast<int>(opts.get_int("runs", 5));
  opts.finish();

  const RoutingScenario scenario(scenario_params, seed);
  obs::RunObs run_obs;
  obs::ObsConfig obs_config = obs::ObsConfig::from_env();
  obs_config.sink = &run_obs;
  const TrafficSummary summary = run_traffic_experiment(
      scenario, task, runs, paper::kRunSeedBase, 0, obs_config);
  const FlowTrafficStats& ts = summary.traffic;
  std::printf(
      "ant routing (%s%s): offered %.3f, carried %.3f pkts/node/step, "
      "delivery %.3f over %d runs\n",
      mode.c_str(), task.balance_gateways ? "+balance" : "",
      summary.offered_load.mean(), summary.carried_load.mean(),
      ts.delivery_ratio(), runs);
  std::printf(
      "latency p50/p95/p99: %llu/%llu/%llu steps; drops: no-route %llu, "
      "link-down %llu, ttl %llu, queue-full %llu; flows %llu started, "
      "%llu completed\n",
      static_cast<unsigned long long>(ts.latency_quantile(0.5)),
      static_cast<unsigned long long>(ts.latency_quantile(0.95)),
      static_cast<unsigned long long>(ts.latency_quantile(0.99)),
      static_cast<unsigned long long>(ts.dropped_no_route),
      static_cast<unsigned long long>(ts.dropped_link_down),
      static_cast<unsigned long long>(ts.dropped_ttl),
      static_cast<unsigned long long>(ts.dropped_queue_full),
      static_cast<unsigned long long>(ts.flows_started),
      static_cast<unsigned long long>(ts.flows_completed));
  return 0;
}

int run_dv(Options& opts) {
  RoutingScenarioParams scenario_params;
  scenario_params.node_count =
      static_cast<std::size_t>(opts.get_int("nodes", 250));
  scenario_params.gateway_count =
      static_cast<std::size_t>(opts.get_int("gateways", 12));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 2010));
  DvRoutingTaskConfig task;
  task.population = static_cast<int>(opts.get_int("population", 100));
  task.agent.table_size =
      static_cast<std::size_t>(opts.get_int("table", 40));
  const int runs = static_cast<int>(opts.get_int("runs", 5));
  opts.finish();

  const RoutingScenario scenario(scenario_params, seed);
  const auto checkpointer = snapshot::ExperimentCheckpointer::from_env(
      {"dv", static_cast<std::uint64_t>(runs), paper::kRunSeedBase,
       scenario.node_count(), task.steps});
  RunningStats conn, mb;
  for (int r = 0; r < runs; ++r) {
    DvRoutingTaskConfig run_config = task;
    snapshot::RunCheckpointPort port;
    if (checkpointer) {
      port = checkpointer->port(static_cast<std::uint64_t>(r));
      run_config.checkpoint = &port;
    }
    const auto result = run_dv_routing_task(
        scenario, run_config,
        Rng(paper::kRunSeedBase + static_cast<std::uint64_t>(r)));
    conn.add(result.mean_connectivity);
    mb.add(static_cast<double>(result.migration_bytes) / 1e6);
  }
  std::printf(
      "%d x DV agents (table %zu): connectivity %.3f ± %.3f, migration "
      "%.2f MB over %d runs\n",
      task.population, task.agent.table_size, conn.mean(),
      confidence_halfwidth(conn), mb.mean(), runs);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Options opts = Options::parse(argc, argv);
    const std::string scenario = opts.get_string("scenario", "mapping");
    if (scenario == "mapping") return run_mapping(opts);
    if (scenario == "routing") return run_routing(opts);
    if (scenario == "aco") return run_aco(opts);
    if (scenario == "traffic") return run_traffic(opts);
    if (scenario == "dv") return run_dv(opts);
    throw ConfigError("scenario must be mapping|routing|aco|traffic|dv, "
                      "got " + scenario);
  } catch (const Error& e) {
    std::cerr << "agentnet_cli: " << e.what() << "\n"
              << "see the header of examples/agentnet_cli.cpp for usage\n";
    return 2;
  }
}
