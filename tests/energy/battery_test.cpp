#include "energy/battery.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

TEST(BatteryTest, StartsFull) {
  Battery b({2.0, 0.1});
  EXPECT_DOUBLE_EQ(b.charge(), 2.0);
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
  EXPECT_FALSE(b.depleted());
}

TEST(BatteryTest, DrainsLinearly) {
  Battery b({1.0, 0.25});
  b.step();
  EXPECT_DOUBLE_EQ(b.fraction(), 0.75);
  b.step();
  EXPECT_DOUBLE_EQ(b.fraction(), 0.5);
}

TEST(BatteryTest, NeverGoesNegative) {
  Battery b({1.0, 0.4});
  for (int i = 0; i < 10; ++i) b.step();
  EXPECT_DOUBLE_EQ(b.charge(), 0.0);
  EXPECT_TRUE(b.depleted());
}

TEST(BatteryTest, ZeroDrainIsMainsPower) {
  Battery b({1.0, 0.0});
  for (int i = 0; i < 1000; ++i) b.step();
  EXPECT_DOUBLE_EQ(b.fraction(), 1.0);
}

TEST(BatteryTest, RejectsBadParams) {
  EXPECT_THROW(Battery({0.0, 0.1}), ConfigError);
  EXPECT_THROW(Battery({-1.0, 0.1}), ConfigError);
  EXPECT_THROW(Battery({1.0, -0.1}), ConfigError);
}

TEST(BatteryBankTest, MaskSelectsWhoDrains) {
  BatteryBank bank(3, {true, false, true}, {1.0, 0.5});
  bank.step();
  EXPECT_DOUBLE_EQ(bank.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(bank.fraction(1), 1.0);
  EXPECT_DOUBLE_EQ(bank.fraction(2), 0.5);
  EXPECT_TRUE(bank.on_battery(0));
  EXPECT_FALSE(bank.on_battery(1));
}

TEST(BatteryBankTest, MainsNodesReportFullForever) {
  BatteryBank bank(1, {false}, {1.0, 0.9});
  for (int i = 0; i < 100; ++i) bank.step();
  EXPECT_DOUBLE_EQ(bank.fraction(0), 1.0);
}

TEST(BatteryBankTest, RejectsMaskSizeMismatch) {
  EXPECT_THROW(BatteryBank(3, {true, false}, {}), ConfigError);
}

TEST(BatteryBankTest, SizeReported) {
  BatteryBank bank(5, std::vector<bool>(5, true), {1.0, 0.01});
  EXPECT_EQ(bank.size(), 5u);
}

TEST(BatteryBankTest, BatteryAccessor) {
  BatteryBank bank(2, {true, true}, {4.0, 1.0});
  bank.step();
  EXPECT_DOUBLE_EQ(bank.battery(0).charge(), 3.0);
}

}  // namespace
}  // namespace agentnet
