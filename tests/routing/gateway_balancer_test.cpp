#include "routing/gateway_balancer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace agentnet {
namespace {

const std::vector<bool> kMask{true, true, false, false};  // gateways 0, 1

TEST(GatewayBalancerTest, RejectsBadConfig) {
  GatewayBalancerConfig bad;
  bad.smoothing = 0.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = {};
  bad.smoothing = 1.5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = {};
  bad.strength = -1.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  EXPECT_THROW(GatewayBalancer(4, std::vector<bool>(3, false), {}),
               ConfigError);
}

TEST(GatewayBalancerTest, ZeroTrafficBiasIsExactIdentity) {
  GatewayBalancer balancer(4, kMask, {});
  balancer.observe(std::vector<std::uint64_t>{0, 0, 0, 0});
  // Exactly 1.0 — multiplying deposits by this bias must be bit-identical
  // to not balancing at all (the golden-equivalence guarantee).
  for (double b : balancer.bias()) EXPECT_EQ(b, 1.0);
}

TEST(GatewayBalancerTest, ZeroStrengthBiasIsExactIdentity) {
  GatewayBalancerConfig cfg;
  cfg.strength = 0.0;
  GatewayBalancer balancer(4, kMask, cfg);
  balancer.observe(std::vector<std::uint64_t>{100, 0, 0, 0});
  for (double b : balancer.bias()) EXPECT_EQ(b, 1.0);
}

TEST(GatewayBalancerTest, HotGatewayDampedColdBoosted) {
  GatewayBalancer balancer(4, kMask, {});
  for (int i = 0; i < 20; ++i)
    balancer.observe(std::vector<std::uint64_t>{90, 10, 0, 0});
  const auto& bias = balancer.bias();
  EXPECT_LT(bias[0], 1.0);  // hot gateway: deposits damped
  EXPECT_GT(bias[1], 1.0);  // cold gateway: deposits boosted
  EXPECT_GT(bias[0], 0.0);
  EXPECT_LE(bias[1], 2.0);  // bounded by 2^strength
  // Non-gateways are never biased.
  EXPECT_EQ(bias[2], 1.0);
  EXPECT_EQ(bias[3], 1.0);
}

TEST(GatewayBalancerTest, BalancedLoadBiasIsOne) {
  GatewayBalancer balancer(4, kMask, {});
  for (int i = 0; i < 20; ++i)
    balancer.observe(std::vector<std::uint64_t>{50, 50, 0, 0});
  // Equal load on every gateway: ratio = 2*mean/(mean+mean) = 1 exactly.
  EXPECT_EQ(balancer.bias()[0], 1.0);
  EXPECT_EQ(balancer.bias()[1], 1.0);
}

TEST(GatewayBalancerTest, StrengthSharpensTheBias) {
  GatewayBalancerConfig gentle;
  gentle.strength = 0.5;
  GatewayBalancerConfig sharp;
  sharp.strength = 2.0;
  GatewayBalancer a(4, kMask, gentle);
  GatewayBalancer b(4, kMask, sharp);
  for (int i = 0; i < 20; ++i) {
    a.observe(std::vector<std::uint64_t>{90, 10, 0, 0});
    b.observe(std::vector<std::uint64_t>{90, 10, 0, 0});
  }
  EXPECT_LT(b.bias()[0], a.bias()[0]);  // hot gateway damped harder
  EXPECT_GT(b.bias()[1], a.bias()[1]);  // cold gateway boosted harder
}

TEST(GatewayBalancerTest, EwmaForgetsOldLoad) {
  GatewayBalancerConfig cfg;
  cfg.smoothing = 0.5;
  GatewayBalancer balancer(4, kMask, cfg);
  for (int i = 0; i < 10; ++i)
    balancer.observe(std::vector<std::uint64_t>{100, 0, 0, 0});
  const double hot_before = balancer.bias()[0];
  for (int i = 0; i < 30; ++i)
    balancer.observe(std::vector<std::uint64_t>{0, 100, 0, 0});
  // The roles flipped; the EWMA must follow.
  EXPECT_GT(balancer.bias()[0], 1.0);
  EXPECT_LT(balancer.bias()[1], 1.0);
  EXPECT_GT(balancer.bias()[0], hot_before);
}

}  // namespace
}  // namespace agentnet
