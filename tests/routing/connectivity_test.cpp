#include "routing/connectivity.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace agentnet {
namespace {

// Line 0-1-2-3 with gateway 0; tables route every node toward 0.
struct LineFixture {
  Graph graph{4};
  RoutingTables tables{4};
  std::vector<bool> is_gateway{true, false, false, false};

  LineFixture() {
    graph.add_undirected_edge(0, 1);
    graph.add_undirected_edge(1, 2);
    graph.add_undirected_edge(2, 3);
    tables.force(1, {0, 0, 1, 0});
    tables.force(2, {1, 0, 2, 0});
    tables.force(3, {2, 0, 3, 0});
  }
};

TEST(ConnectivityTest, FullyRoutedLine) {
  LineFixture f;
  const auto r = measure_connectivity(f.graph, f.tables, f.is_gateway);
  EXPECT_EQ(r.connected, 4u);
  EXPECT_EQ(r.total, 4u);
  EXPECT_DOUBLE_EQ(r.fraction(), 1.0);
}

TEST(ConnectivityTest, GatewayAlwaysConnectedEvenWithoutRoute) {
  Graph g(2);
  RoutingTables t(2);
  const auto r = measure_connectivity(g, t, {true, false});
  EXPECT_EQ(r.connected, 1u);
}

TEST(ConnectivityTest, BrokenLinkInvalidatesDownstream) {
  LineFixture f;
  f.graph.remove_edge(1, 0);  // the hop 1→0 is gone
  const auto r = measure_connectivity(f.graph, f.tables, f.is_gateway);
  // Only the gateway itself remains connected: 2 and 3 route through 1.
  EXPECT_EQ(r.connected, 1u);
}

TEST(ConnectivityTest, MissingEntryDisconnects) {
  LineFixture f;
  f.tables.clear(2);
  const auto flags = valid_route_flags(f.graph, f.tables, f.is_gateway);
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_FALSE(flags[2]);
  EXPECT_FALSE(flags[3]);  // routes through 2
}

TEST(ConnectivityTest, RoutingLoopDetected) {
  Graph g(3);
  g.add_undirected_edge(1, 2);
  RoutingTables t(3);
  t.force(1, {2, 0, 1, 0});
  t.force(2, {1, 0, 1, 0});  // 1 ⇄ 2 loop, never reaches gateway 0
  const auto r = measure_connectivity(g, t, {true, false, false});
  EXPECT_EQ(r.connected, 1u);
}

TEST(ConnectivityTest, SelfLoopRouteDetected) {
  Graph g(2);
  RoutingTables t(2);
  t.force(1, {1, 0, 1, 0});  // routes to itself (no such edge anyway)
  const auto r = measure_connectivity(g, t, {true, false});
  EXPECT_EQ(r.connected, 1u);
}

TEST(ConnectivityTest, HopBudgetCutsLongRoutes) {
  LineFixture f;
  const auto all = measure_connectivity(f.graph, f.tables, f.is_gateway, 3);
  EXPECT_EQ(all.connected, 4u);
  const auto cut = measure_connectivity(f.graph, f.tables, f.is_gateway, 2);
  // Node 3 needs 3 hops; with budget 2 its walk is truncated.
  EXPECT_EQ(cut.connected, 3u);
}

TEST(ConnectivityTest, MemoisationConsistentWithSharedPrefixes) {
  // Star of chains all feeding through node 1 toward gateway 0.
  Graph g(6);
  g.add_undirected_edge(0, 1);
  for (NodeId leaf = 2; leaf < 6; ++leaf) g.add_undirected_edge(1, leaf);
  RoutingTables t(6);
  t.force(1, {0, 0, 1, 0});
  for (NodeId leaf = 2; leaf < 6; ++leaf) t.force(leaf, {1, 0, 2, 0});
  const auto r =
      measure_connectivity(g, t, {true, false, false, false, false, false});
  EXPECT_EQ(r.connected, 6u);
}

TEST(ConnectivityTest, EmptyFractionIsZero) {
  ConnectivityResult r;
  EXPECT_DOUBLE_EQ(r.fraction(), 0.0);
}

TEST(ConnectivityTest, MemoisedWalkMatchesNaiveOnRandomInputs) {
  // Property: the memoised measurement equals an oblivious per-node walk
  // with a visited set, across random graphs and random tables.
  Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t n = 30;
    Graph g(n);
    const int edges = static_cast<int>(rng.uniform_int(20, 120));
    for (int e = 0; e < edges; ++e)
      g.add_edge(static_cast<NodeId>(rng.index(n)),
                 static_cast<NodeId>(rng.index(n)));
    std::vector<bool> is_gateway(n, false);
    for (auto idx : rng.sample_indices(n, 3)) is_gateway[idx] = true;
    RoutingTables tables(n);
    for (NodeId v = 0; v < n; ++v)
      if (rng.bernoulli(0.8))
        tables.force(v, {static_cast<NodeId>(rng.index(n)), 0, 1, 0});

    const auto fast = valid_route_flags(g, tables, is_gateway);
    for (NodeId start = 0; start < n; ++start) {
      // Naive reference walk.
      std::vector<bool> visited(n, false);
      NodeId u = start;
      bool ok = false;
      while (true) {
        if (is_gateway[u]) {
          ok = true;
          break;
        }
        if (visited[u]) break;
        visited[u] = true;
        const RouteEntry& e = tables.entry(u);
        if (!e.valid() || !g.has_edge(u, e.next_hop)) break;
        u = e.next_hop;
      }
      ASSERT_EQ(fast[start], ok)
          << "trial " << trial << " node " << start;
    }
  }
}

TEST(OracleTest, MatchesReachability) {
  Graph g(4);
  g.add_edge(1, 0);  // 1 can send to gateway 0
  g.add_edge(2, 1);  // 2 via 1
  // 3 isolated.
  const auto r = oracle_connectivity(g, {true, false, false, false});
  EXPECT_EQ(r.connected, 3u);
  EXPECT_EQ(r.total, 4u);
}

TEST(OracleTest, BoundsTableConnectivity) {
  LineFixture f;
  const auto table = measure_connectivity(f.graph, f.tables, f.is_gateway);
  const auto oracle = oracle_connectivity(f.graph, f.is_gateway);
  EXPECT_LE(table.connected, oracle.connected);
}

TEST(OracleTest, MultipleGateways) {
  Graph g(4);
  g.add_edge(1, 0);
  g.add_edge(2, 3);
  const auto r = oracle_connectivity(g, {true, false, false, true});
  EXPECT_EQ(r.connected, 4u);
}

}  // namespace
}  // namespace agentnet
