#include "routing/route_metrics.hpp"

#include <gtest/gtest.h>

namespace agentnet {
namespace {

// Two gateways (0 and 4), chain 0-1-2-3-4.
struct TwoGatewayLine {
  Graph graph{5};
  RoutingTables tables{5};
  std::vector<bool> is_gateway{true, false, false, false, true};

  TwoGatewayLine() {
    for (NodeId i = 0; i + 1 < 5; ++i) graph.add_undirected_edge(i, i + 1);
  }
};

TEST(RouteMetricsTest, EmptyTables) {
  TwoGatewayLine w;
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 10);
  EXPECT_EQ(report.entries, 0u);
  EXPECT_EQ(report.valid_entries, 0u);
  EXPECT_DOUBLE_EQ(report.load_imbalance(), 0.0);
}

TEST(RouteMetricsTest, CountsEntriesAndLoad) {
  TwoGatewayLine w;
  w.tables.force(1, {0, 0, 1, 2});  // toward gateway 0
  w.tables.force(2, {1, 0, 2, 4});  // toward gateway 0 via 1
  w.tables.force(3, {4, 4, 1, 6});  // toward gateway 4
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 10);
  EXPECT_EQ(report.entries, 3u);
  EXPECT_EQ(report.valid_entries, 3u);
  EXPECT_EQ(report.gateway_load[0], 2u);
  EXPECT_EQ(report.gateway_load[4], 1u);
  // loads {2,1}: imbalance = 2 / 1.5
  EXPECT_NEAR(report.load_imbalance(), 2.0 / 1.5, 1e-12);
}

TEST(RouteMetricsTest, AttributesToReachedGatewayNotAdvertised) {
  TwoGatewayLine w;
  // Node 3 advertises gateway 0 but its chain 3→4 reaches gateway 4.
  w.tables.force(3, {4, 0, 9, 0});
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 0);
  EXPECT_EQ(report.gateway_load[4], 1u);
  EXPECT_EQ(report.gateway_load[0], 0u);
}

TEST(RouteMetricsTest, BrokenChainCountsEntryButNotValid) {
  TwoGatewayLine w;
  w.tables.force(2, {1, 0, 2, 0});
  w.graph.remove_edge(2, 1);
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 0);
  EXPECT_EQ(report.entries, 1u);
  EXPECT_EQ(report.valid_entries, 0u);
}

TEST(RouteMetricsTest, LoopDoesNotHang) {
  TwoGatewayLine w;
  w.tables.force(1, {2, 0, 1, 0});
  w.tables.force(2, {1, 0, 1, 0});
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 0);
  EXPECT_EQ(report.entries, 2u);
  EXPECT_EQ(report.valid_entries, 0u);
}

TEST(RouteMetricsTest, HopAndAgeStats) {
  TwoGatewayLine w;
  w.tables.force(1, {0, 0, 1, 2});
  w.tables.force(2, {1, 0, 2, 6});
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 10);
  EXPECT_DOUBLE_EQ(report.hops.mean(), 1.5);
  EXPECT_DOUBLE_EQ(report.age.mean(), (8.0 + 4.0) / 2.0);
}

TEST(RouteMetricsTest, PerfectBalanceIsOne) {
  TwoGatewayLine w;
  w.tables.force(1, {0, 0, 1, 0});
  w.tables.force(3, {4, 4, 1, 0});
  const auto report = analyze_tables(w.graph, w.tables, w.is_gateway, 0);
  EXPECT_DOUBLE_EQ(report.load_imbalance(), 1.0);
}

}  // namespace
}  // namespace agentnet
