#include "routing/routing_table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

RouteEntry route(NodeId next_hop, std::uint32_t hops, std::size_t at,
                 NodeId gateway = 9) {
  return RouteEntry{next_hop, gateway, hops, at};
}

TEST(RouteEntryTest, DefaultIsInvalid) {
  EXPECT_FALSE(RouteEntry{}.valid());
  EXPECT_TRUE(route(1, 2, 3).valid());
}

TEST(RoutingTablesTest, StartsEmpty) {
  RoutingTables t(4);
  for (NodeId n = 0; n < 4; ++n) EXPECT_FALSE(t.entry(n).valid());
}

TEST(RoutingTablesTest, FirstOfferAlwaysInstalls) {
  RoutingTables t(2);
  EXPECT_TRUE(t.offer(0, route(1, 5, 0), 0));
  EXPECT_EQ(t.entry(0).next_hop, 1u);
  EXPECT_EQ(t.entry(0).hops, 5u);
}

TEST(RoutingTablesTest, ShorterRouteWins) {
  RoutingTables t(2);
  t.offer(0, route(1, 5, 0), 0);
  EXPECT_TRUE(t.offer(0, route(2, 3, 1), 1));
  EXPECT_EQ(t.entry(0).next_hop, 2u);
}

TEST(RoutingTablesTest, LongerFreshRouteLosesWhileCurrent) {
  RoutingTables t(2, RoutePolicy{30});
  t.offer(0, route(1, 3, 0), 0);
  EXPECT_FALSE(t.offer(0, route(2, 5, 10), 10));
  EXPECT_EQ(t.entry(0).next_hop, 1u);
}

TEST(RoutingTablesTest, EqualHopsFresherRefreshes) {
  RoutingTables t(2);
  t.offer(0, route(1, 3, 0), 0);
  EXPECT_TRUE(t.offer(0, route(2, 3, 7), 7));
  EXPECT_EQ(t.entry(0).next_hop, 2u);
  EXPECT_EQ(t.entry(0).installed_at, 7u);
}

TEST(RoutingTablesTest, StaleEntryLosesToAnything) {
  RoutingTables t(2, RoutePolicy{10});
  t.offer(0, route(1, 2, 0), 0);
  // 15 steps later the 2-hop route is stale; a 9-hop candidate wins.
  EXPECT_TRUE(t.offer(0, route(2, 9, 15), 15));
  EXPECT_EQ(t.entry(0).next_hop, 2u);
}

TEST(RoutingTablesTest, NotStaleJustInsideWindow) {
  RoutingTables t(2, RoutePolicy{10});
  t.offer(0, route(1, 2, 0), 0);
  EXPECT_FALSE(t.offer(0, route(2, 9, 10), 10));
}

TEST(RoutingTablesTest, IsStaleSemantics) {
  RoutingTables t(1, RoutePolicy{10});
  EXPECT_TRUE(t.is_stale(RouteEntry{}, 0));  // invalid counts as stale
  const auto e = route(1, 2, 5);
  EXPECT_FALSE(t.is_stale(e, 15));
  EXPECT_TRUE(t.is_stale(e, 16));
}

TEST(RoutingTablesTest, OfferRejectsInvalidCandidate) {
  RoutingTables t(1);
  EXPECT_THROW(t.offer(0, RouteEntry{}, 0), ConfigError);
}

TEST(RoutingTablesTest, ForceAndClear) {
  RoutingTables t(2);
  t.force(1, route(0, 1, 0));
  EXPECT_TRUE(t.entry(1).valid());
  t.clear(1);
  EXPECT_FALSE(t.entry(1).valid());
}

TEST(RoutingTablesTest, ClearAll) {
  RoutingTables t(3);
  t.force(0, route(1, 1, 0));
  t.force(2, route(1, 1, 0));
  t.clear_all();
  for (NodeId n = 0; n < 3; ++n) EXPECT_FALSE(t.entry(n).valid());
}

TEST(RoutingTablesTest, RejectsZeroFreshnessWindow) {
  EXPECT_THROW(RoutingTables(1, RoutePolicy{0}), ConfigError);
}

}  // namespace
}  // namespace agentnet
