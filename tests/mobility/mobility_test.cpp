#include "mobility/mobility.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

const Aabb kArena{{0.0, 0.0}, {100.0, 100.0}};

TEST(RandomPositionsTest, AllInsideBounds) {
  Rng rng(1);
  const auto pos = random_positions(500, kArena, rng);
  ASSERT_EQ(pos.size(), 500u);
  for (const auto& p : pos) EXPECT_TRUE(kArena.contains(p));
}

TEST(StationaryMobilityTest, NothingMoves) {
  StationaryMobility model;
  std::vector<Vec2> pos{{1.0, 2.0}, {3.0, 4.0}};
  const auto before = pos;
  for (int i = 0; i < 10; ++i) model.step(pos);
  EXPECT_EQ(pos, before);
  EXPECT_TRUE(model.is_stationary(0));
}

TEST(RandomDirectionTest, OnlyMobileNodesMove) {
  Rng rng(2);
  RandomDirectionMobility model(kArena, {true, false}, {1.0, 2.0, 0.0},
                                rng.fork(1));
  std::vector<Vec2> pos{{50.0, 50.0}, {20.0, 20.0}};
  model.step(pos);
  EXPECT_NE(pos[0], Vec2(50.0, 50.0));
  EXPECT_EQ(pos[1], Vec2(20.0, 20.0));
  EXPECT_FALSE(model.is_stationary(0));
  EXPECT_TRUE(model.is_stationary(1));
}

TEST(RandomDirectionTest, StaysInBoundsUnderLongRun) {
  Rng rng(3);
  RandomDirectionMobility model(kArena, std::vector<bool>(20, true),
                                {2.0, 5.0, 0.1}, rng.fork(1));
  auto pos = random_positions(20, kArena, rng);
  for (int t = 0; t < 2000; ++t) {
    model.step(pos);
    for (const auto& p : pos) EXPECT_TRUE(kArena.contains(p));
  }
}

TEST(RandomDirectionTest, SpeedIsPerNodeWithinParams) {
  Rng rng(4);
  RandomDirectionMobility model(kArena, std::vector<bool>(50, true),
                                {1.0, 3.0, 0.0}, rng.fork(1));
  bool varied = false;
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_GE(model.speed(i), 1.0);
    EXPECT_LE(model.speed(i), 3.0);
    if (std::abs(model.speed(i) - model.speed(0)) > 1e-9) varied = true;
  }
  EXPECT_TRUE(varied) << "random velocities should differ across nodes";
}

TEST(RandomDirectionTest, StepDisplacementMatchesSpeed) {
  Rng rng(5);
  RandomDirectionMobility model(kArena, {true}, {2.0, 2.0, 0.0},
                                rng.fork(1));
  std::vector<Vec2> pos{{50.0, 50.0}};
  const Vec2 before = pos[0];
  model.step(pos);
  EXPECT_NEAR(distance(before, pos[0]), 2.0, 1e-9);
}

TEST(RandomDirectionTest, RejectsBadParams) {
  Rng rng(6);
  EXPECT_THROW(RandomDirectionMobility(kArena, {true}, {-1.0, 2.0, 0.0},
                                       rng.fork(1)),
               ConfigError);
  EXPECT_THROW(RandomDirectionMobility(kArena, {true}, {3.0, 2.0, 0.0},
                                       rng.fork(2)),
               ConfigError);
  EXPECT_THROW(RandomDirectionMobility(kArena, {true}, {1.0, 2.0, 1.5},
                                       rng.fork(3)),
               ConfigError);
}

TEST(RandomDirectionTest, PositionCountMismatchThrows) {
  Rng rng(7);
  RandomDirectionMobility model(kArena, {true, true}, {1.0, 1.0, 0.0},
                                rng.fork(1));
  std::vector<Vec2> pos{{1.0, 1.0}};
  EXPECT_THROW(model.step(pos), ConfigError);
}

TEST(RandomWaypointTest, ReachesWaypointsAndKeepsMoving) {
  Rng rng(8);
  RandomWaypointMobility model(kArena, {true}, {5.0, 5.0, 0}, rng.fork(1));
  std::vector<Vec2> pos{{50.0, 50.0}};
  Vec2 prev = pos[0];
  double total = 0.0;
  for (int t = 0; t < 200; ++t) {
    model.step(pos);
    EXPECT_TRUE(kArena.contains(pos[0]));
    total += distance(prev, pos[0]);
    prev = pos[0];
  }
  // Moving at speed 5 for 200 steps with no pauses covers real distance.
  EXPECT_GT(total, 500.0);
}

TEST(RandomWaypointTest, PausesAtWaypoint) {
  Rng rng(9);
  RandomWaypointMobility model(kArena, {true}, {100.0, 100.0, 5},
                               rng.fork(1));
  // Speed 100 in a 100x100 arena: every leg completes in one step, so the
  // node must then sit still for 5 steps.
  std::vector<Vec2> pos{{50.0, 50.0}};
  model.step(pos);  // arrives at first waypoint
  const Vec2 at = pos[0];
  for (int i = 0; i < 5; ++i) {
    model.step(pos);
    EXPECT_EQ(pos[0], at) << "should pause at waypoint, step " << i;
  }
  model.step(pos);
  EXPECT_NE(pos[0], at);
}

TEST(GaussMarkovTest, StaysInBoundsUnderLongRun) {
  Rng rng(20);
  GaussMarkovMobility model(kArena, std::vector<bool>(10, true), {},
                            rng.fork(1));
  auto pos = random_positions(10, kArena, rng);
  for (int t = 0; t < 3000; ++t) {
    model.step(pos);
    for (const auto& p : pos) ASSERT_TRUE(kArena.contains(p));
  }
}

TEST(GaussMarkovTest, OnlyMobileNodesMove) {
  Rng rng(21);
  GaussMarkovMobility model(kArena, {false, true},
                            {2.0, 0.1, 0.1, 0.75, 10.0}, rng.fork(1));
  std::vector<Vec2> pos{{50.0, 50.0}, {60.0, 60.0}};
  model.step(pos);
  EXPECT_EQ(pos[0], Vec2(50.0, 50.0));
  EXPECT_NE(pos[1], Vec2(60.0, 60.0));
  EXPECT_TRUE(model.is_stationary(0));
  EXPECT_FALSE(model.is_stationary(1));
}

TEST(GaussMarkovTest, PathsAreSmoother_ThanRandomDirection) {
  // Temporal correlation: with high alpha, consecutive displacement
  // vectors should mostly point the same way (positive mean dot product).
  // A roomy arena keeps wall steering out of the statistic.
  const Aabb roomy{{0.0, 0.0}, {2000.0, 2000.0}};
  Rng rng(22);
  GaussMarkovMobility model(roomy, {true}, {2.0, 0.2, 0.15, 0.9, 25.0},
                            rng.fork(1));
  std::vector<Vec2> pos{{1000.0, 1000.0}};
  Vec2 prev = pos[0];
  Vec2 prev_step{};
  double dot_sum = 0.0;
  int samples = 0;
  for (int t = 0; t < 500; ++t) {
    model.step(pos);
    const Vec2 step_vec = pos[0] - prev;
    if (t > 0 && prev_step.norm() > 0 && step_vec.norm() > 0) {
      dot_sum += step_vec.normalized().dot(prev_step.normalized());
      ++samples;
    }
    prev_step = step_vec;
    prev = pos[0];
  }
  EXPECT_GT(dot_sum / samples, 0.5);
}

TEST(GaussMarkovTest, SpeedRevertsToMean) {
  const Aabb roomy{{0.0, 0.0}, {2000.0, 2000.0}};
  Rng rng(23);
  const double mean_speed = 3.0;
  GaussMarkovMobility model(roomy, {true},
                            {mean_speed, 0.3, 0.2, 0.8, 25.0}, rng.fork(1));
  std::vector<Vec2> pos{{1000.0, 1000.0}};
  Vec2 prev = pos[0];
  double total = 0.0;
  const int steps = 2000;
  for (int t = 0; t < steps; ++t) {
    model.step(pos);
    total += distance(prev, pos[0]);
    prev = pos[0];
  }
  // Wall steering shortens some steps; allow a generous band around mean.
  EXPECT_NEAR(total / steps, mean_speed, 1.0);
}

TEST(GaussMarkovTest, RejectsBadParams) {
  Rng rng(24);
  EXPECT_THROW(GaussMarkovMobility(kArena, {true},
                                   {-1.0, 0.1, 0.1, 0.5, 10.0}, rng.fork(1)),
               ConfigError);
  EXPECT_THROW(GaussMarkovMobility(kArena, {true},
                                   {1.0, 0.1, 0.1, 1.5, 10.0}, rng.fork(2)),
               ConfigError);
}

TEST(TraceMobilityTest, ReplayMatchesRecording) {
  Rng rng(10);
  RandomDirectionMobility model(kArena, std::vector<bool>(5, true),
                                {1.0, 2.0, 0.1}, rng.fork(1));
  auto initial = random_positions(5, kArena, rng);
  auto live = initial;
  std::vector<std::vector<Vec2>> expected;
  {
    // Record with a copy of the model state by replaying through record().
    RandomDirectionMobility recorder(kArena, std::vector<bool>(5, true),
                                     {1.0, 2.0, 0.1}, Rng(99));
    TraceMobility trace = TraceMobility::record(recorder, initial, 50);
    EXPECT_EQ(trace.frames(), 50u);
    auto replay = initial;
    for (std::size_t t = 0; t < 50; ++t) {
      trace.step(replay);
      EXPECT_EQ(replay, trace.frame(t));
    }
  }
  (void)live;
  (void)expected;
}

TEST(TraceMobilityTest, ResetRestartsPlayback) {
  Rng rng(11);
  RandomDirectionMobility recorder(kArena, {true}, {1.0, 1.0, 0.0},
                                   rng.fork(1));
  TraceMobility trace = TraceMobility::record(recorder, {{50.0, 50.0}}, 10);
  std::vector<Vec2> a{{50.0, 50.0}};
  trace.step(a);
  const Vec2 first = a[0];
  trace.step(a);
  trace.reset();
  std::vector<Vec2> b{{50.0, 50.0}};
  trace.step(b);
  EXPECT_EQ(b[0], first);
}

TEST(TraceMobilityTest, HoldsFinalFramePastEnd) {
  Rng rng(12);
  RandomDirectionMobility recorder(kArena, {true}, {1.0, 1.0, 0.0},
                                   rng.fork(1));
  TraceMobility trace = TraceMobility::record(recorder, {{50.0, 50.0}}, 3);
  std::vector<Vec2> pos{{50.0, 50.0}};
  for (int t = 0; t < 3; ++t) trace.step(pos);
  const Vec2 last = pos[0];
  for (int t = 0; t < 5; ++t) {
    trace.step(pos);
    EXPECT_EQ(pos[0], last);
  }
}

TEST(TraceMobilityTest, PreservesStationaryFlags) {
  Rng rng(13);
  RandomDirectionMobility recorder(kArena, {true, false}, {1.0, 1.0, 0.0},
                                   rng.fork(1));
  TraceMobility trace =
      TraceMobility::record(recorder, {{1.0, 1.0}, {2.0, 2.0}}, 5);
  EXPECT_FALSE(trace.is_stationary(0));
  EXPECT_TRUE(trace.is_stationary(1));
}

}  // namespace
}  // namespace agentnet
