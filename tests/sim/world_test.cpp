#include "sim/world.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/mapping_task.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"
#include "obs/obs.hpp"

namespace agentnet {
namespace {

const Aabb kArena{{0.0, 0.0}, {100.0, 100.0}};

World make_two_node_world(double drain, double min_scale,
                          std::vector<bool> on_battery) {
  BatteryBank batteries(2, on_battery, {1.0, drain});
  return World(kArena, {{0.0, 0.0}, {30.0, 0.0}},
               RadioModel({40.0, 40.0}, RangeScaling{min_scale}),
               std::move(batteries), std::make_unique<StationaryMobility>(),
               LinkPolicy::kDirected);
}

TEST(WorldTest, InitialGraphBuiltAtConstruction) {
  World world = make_two_node_world(0.0, 0.5, {false, false});
  EXPECT_EQ(world.step(), 0u);
  EXPECT_TRUE(world.graph().has_edge(0, 1));
  EXPECT_TRUE(world.graph().has_edge(1, 0));
}

TEST(WorldTest, AdvanceIncrementsStep) {
  World world = make_two_node_world(0.0, 0.5, {false, false});
  world.advance();
  world.advance();
  EXPECT_EQ(world.step(), 2u);
}

TEST(WorldTest, BatteryDecayBreaksLinksOverTime) {
  // Node 0 on battery, drain 0.1/step, scaling floor 0.5: effective range
  // falls from 40 toward 20, crossing the 30-unit gap at fraction 0.5.
  World world = make_two_node_world(0.1, 0.5, {true, false});
  EXPECT_TRUE(world.graph().has_edge(0, 1));
  for (int t = 0; t < 10; ++t) world.advance();
  // fraction 0 → range 20 < 30: link 0→1 gone, 1→0 (mains) remains.
  EXPECT_FALSE(world.graph().has_edge(0, 1));
  EXPECT_TRUE(world.graph().has_edge(1, 0));
}

TEST(WorldTest, EffectiveRangeTracksBattery) {
  World world = make_two_node_world(0.25, 0.5, {true, false});
  EXPECT_DOUBLE_EQ(world.effective_range(0), 40.0);
  world.advance();
  EXPECT_DOUBLE_EQ(world.effective_range(0), 40.0 * (0.5 + 0.5 * 0.75));
  EXPECT_DOUBLE_EQ(world.effective_range(1), 40.0);
}

TEST(WorldTest, MobilityMovesNodesAndRewiresGraph) {
  Rng rng(3);
  BatteryBank batteries(2, {false, false}, {});
  auto mobility = std::make_unique<RandomDirectionMobility>(
      kArena, std::vector<bool>{true, false},
      RandomDirectionMobility::Params{50.0, 50.0, 0.0}, rng.fork(1));
  World world(kArena, {{10.0, 50.0}, {20.0, 50.0}},
              RadioModel({15.0, 15.0}, RangeScaling{1.0}),
              std::move(batteries), std::move(mobility),
              LinkPolicy::kSymmetricAnd);
  EXPECT_TRUE(world.graph().has_edge(0, 1));
  world.advance();  // node 0 jumps 50 units in one step
  EXPECT_FALSE(world.graph().has_edge(0, 1));
  EXPECT_NE(world.positions()[0], Vec2(10.0, 50.0));
  EXPECT_EQ(world.positions()[1], Vec2(20.0, 50.0));
}

TEST(WorldTest, FrozenWorldNeverChanges) {
  const auto net = paper_mapping_network(1);
  World world = World::frozen(net);
  const Graph before = world.graph();
  EXPECT_EQ(before, net.graph)
      << "frozen world must reproduce the generated graph exactly";
  for (int t = 0; t < 5; ++t) world.advance();
  EXPECT_EQ(world.graph(), before);
}

TEST(WorldTest, RejectsMismatchedSizes) {
  BatteryBank batteries(3, std::vector<bool>(3, false), {});
  EXPECT_THROW(World(kArena, {{0.0, 0.0}, {1.0, 1.0}},
                     RadioModel({10.0, 10.0, 10.0}, RangeScaling{1.0}),
                     std::move(batteries),
                     std::make_unique<StationaryMobility>(),
                     LinkPolicy::kDirected),
               ConfigError);
}

TEST(WorldTest, FixedWorldPinsTheGraph) {
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  g.add_edge(2, 3);
  World world = World::fixed(g);
  EXPECT_EQ(world.graph(), g);
  for (int t = 0; t < 10; ++t) world.advance();
  EXPECT_EQ(world.graph(), g) << "advance() must not touch a fixed graph";
  EXPECT_EQ(world.step(), 10u);
}

TEST(WorldTest, FixedWorldRejectsFlapper) {
  Graph g(2);
  g.add_undirected_edge(0, 1);
  World world = World::fixed(g);
  EXPECT_THROW(world.set_link_flapper(LinkFlapper(0.1, 5, 1)), ConfigError);
}

TEST(WorldTest, FixedWorldRunsMappingTask) {
  // A ring: conscientious agent must walk it end to end.
  Graph ring(12);
  for (NodeId i = 0; i < 12; ++i)
    ring.add_undirected_edge(i, static_cast<NodeId>((i + 1) % 12));
  World world = World::fixed(ring);
  MappingTaskConfig cfg;
  cfg.population = 1;
  cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  const auto result = run_mapping_task(world, cfg, Rng(3));
  EXPECT_TRUE(result.finished);
  EXPECT_GE(result.finishing_time, 11u);
}

TEST(WorldTest, StaticWorldAdvanceDoesZeroTopologyWork) {
  // Regression: a pure clock tick on a static world used to run the full
  // double-buffered rebuild every step. Now the empty dirty set short-
  // circuits both upkeep modes: no rebuild, no patch, no epoch movement.
  const GeneratedNetwork net = paper_mapping_network(5);
  for (bool incremental : {false, true}) {
    World world = World::frozen(net);
    world.set_incremental_topology(incremental);
    const std::uint64_t epoch = world.epoch();
    obs::RunObs slot;
    {
      obs::ObsRunScope scope(slot);
      for (int i = 0; i < 20; ++i) world.advance();
    }
    EXPECT_EQ(slot.counters.value(obs::Counter::kTopoNodesDirty), 0u);
    EXPECT_EQ(slot.counters.value(obs::Counter::kTopoFullRebuilds), 0u);
    EXPECT_EQ(world.epoch(), epoch) << "incremental " << incremental;
    EXPECT_EQ(world.graph(), net.graph);
  }
}

TEST(WorldTest, MobileWorldReportsTopologyWorkByMode) {
  // Positive control for the zero-work assertion above: a world with a
  // moving node must report dirty nodes (incremental) or full rebuilds.
  struct Work {
    std::uint64_t dirty, rebuilds;
  };
  const auto run = [](bool incremental) {
    BatteryBank batteries(2, {false, false}, {1.0, 0.0});
    RandomDirectionMobility::Params movement{1.0, 2.0, 0.1};
    auto mobility = std::make_unique<RandomDirectionMobility>(
        kArena, std::vector<bool>{true, false}, movement, Rng(9));
    World world(kArena, {{10.0, 10.0}, {30.0, 10.0}},
                RadioModel({40.0, 40.0}, RangeScaling{1.0}),
                std::move(batteries), std::move(mobility),
                LinkPolicy::kDirected);
    world.set_incremental_topology(incremental);
    obs::RunObs slot;
    {
      obs::ObsRunScope scope(slot);
      for (int i = 0; i < 10; ++i) world.advance();
    }
    return Work{slot.counters.value(obs::Counter::kTopoNodesDirty),
                slot.counters.value(obs::Counter::kTopoFullRebuilds)};
  };
  const Work incr = run(true);
  EXPECT_GE(incr.dirty, 10u);
  EXPECT_EQ(incr.rebuilds, 0u);
  const Work full = run(false);
  EXPECT_EQ(full.dirty, 0u);
  EXPECT_EQ(full.rebuilds, 10u);
}

TEST(WorldTest, ShardedWorldReportsTileCounters) {
  // Third upkeep mode: a sharded world reports dirty nodes and dirty
  // tiles, never full rebuilds — and the one mobile node occupies exactly
  // one tile per step.
  BatteryBank batteries(2, {false, false}, {1.0, 0.0});
  RandomDirectionMobility::Params movement{1.0, 2.0, 0.1};
  auto mobility = std::make_unique<RandomDirectionMobility>(
      kArena, std::vector<bool>{true, false}, movement, Rng(9));
  World world(kArena, {{10.0, 10.0}, {30.0, 10.0}},
              RadioModel({40.0, 40.0}, RangeScaling{1.0}),
              std::move(batteries), std::move(mobility),
              LinkPolicy::kDirected);
  world.set_sharding(true);
  obs::RunObs slot;
  {
    obs::ObsRunScope scope(slot);
    for (int i = 0; i < 10; ++i) world.advance();
  }
  EXPECT_GE(slot.counters.value(obs::Counter::kTopoNodesDirty), 10u);
  EXPECT_EQ(slot.counters.value(obs::Counter::kShardTilesDirty), 10u);
  EXPECT_EQ(slot.counters.value(obs::Counter::kTopoFullRebuilds), 0u);
}

TEST(SeriesRecorderTest, CollectsValues) {
  SeriesRecorder rec;
  rec.record(1.0);
  rec.record(2.0);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_DOUBLE_EQ(rec.values()[1], 2.0);
}

}  // namespace
}  // namespace agentnet
