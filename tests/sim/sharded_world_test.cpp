// Sharded-world equivalence suite (ctest label: perf).
//
// The contract under test (docs/PERFORMANCE.md, "Sharded world"): sharded
// advance() is bit-identical to the flat path — same graphs, same CSR, same
// epoch()/state_epoch(), same fault masks, same checkpoint bytes — across
// link policies, mobility, link weather, fault plans and shard thread
// counts {1, 2, 7}; plus halo-edge goldens for links that cross tile
// boundaries and the env knobs that select the mode.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/routing_task.hpp"
#include "energy/battery.hpp"
#include "fault/fault_injector.hpp"
#include "mobility/mobility.hpp"
#include "net/link_noise.hpp"
#include "obs/scope.hpp"
#include "radio/range_model.hpp"
#include "sim/shard.hpp"
#include "sim/world.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {
namespace {

RoutingScenario churn_scenario(LinkPolicy policy, std::uint64_t seed) {
  RoutingScenarioParams params;
  params.node_count = 45;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {420.0, 420.0}};
  params.trace_steps = 40;
  params.policy = policy;
  return RoutingScenario(params, seed);
}

void expect_lockstep_equal(World& sharded, World& flat, int steps,
                           const char* what) {
  for (int step = 0; step < steps; ++step) {
    ASSERT_EQ(sharded.graph(), flat.graph()) << what << " step " << step;
    ASSERT_EQ(sharded.csr(), flat.csr()) << what << " step " << step;
    ASSERT_EQ(sharded.csr(), CsrView(sharded.graph()))
        << what << " step " << step;
    ASSERT_EQ(sharded.epoch(), flat.epoch()) << what << " step " << step;
    ASSERT_EQ(sharded.state_epoch(), flat.state_epoch())
        << what << " step " << step;
    sharded.advance();
    flat.advance();
  }
}

TEST(ShardedWorldTest, LockstepMatchesFlatAcrossPoliciesWeatherAndThreads) {
  for (LinkPolicy policy : {LinkPolicy::kDirected, LinkPolicy::kSymmetricAnd,
                            LinkPolicy::kSymmetricOr}) {
    for (bool weather : {false, true}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                                  std::size_t{7}}) {
        const RoutingScenario scenario =
            churn_scenario(policy, 11 + static_cast<std::uint64_t>(policy));
        World flat = scenario.make_world();
        World sharded = scenario.make_world();
        flat.set_sharding(false);
        sharded.set_sharding(true);
        sharded.set_shard_threads(threads);
        ASSERT_TRUE(sharded.sharded());
        ASSERT_FALSE(flat.sharded());
        if (weather) {
          flat.set_link_flapper(LinkFlapper(0.15, 3, 0xF1A9));
          sharded.set_link_flapper(LinkFlapper(0.15, 3, 0xF1A9));
        }
        expect_lockstep_equal(sharded, flat, 35, "sharded-vs-flat");
      }
    }
  }
}

TEST(ShardedWorldTest, RangeQuantizationKeepsModesIdentical) {
  ASSERT_EQ(setenv("AGENTNET_TOPO_RANGE_QUANTUM", "7.5", 1), 0);
  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kSymmetricAnd, 37);
  World flat = scenario.make_world();
  World sharded = scenario.make_world();
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_RANGE_QUANTUM"), 0);
  flat.set_sharding(false);
  sharded.set_sharding(true);
  sharded.set_shard_threads(2);
  expect_lockstep_equal(sharded, flat, 30, "quantized");
}

TEST(ShardedWorldTest, FaultMasksAndDropTotalsMatchFlatUnderFaultPlans) {
  FaultPlan plan;
  plan.node_crash_probability = 0.04;
  plan.crash_persistence = 5;
  plan.burst_drop_probability = 0.1;
  plan.burst_persistence = 3;
  plan.blackouts.push_back(Blackout{{210.0, 210.0}, 120.0, 8, 12});
  plan.weather_seed = 0xD00D;

  for (std::size_t threads : {std::size_t{1}, std::size_t{7}}) {
    const RoutingScenario scenario =
        churn_scenario(LinkPolicy::kSymmetricAnd, 31);
    World flat = scenario.make_world();
    World sharded = scenario.make_world();
    flat.set_sharding(false);
    sharded.set_sharding(true);
    sharded.set_shard_threads(threads);
    flat.set_link_flapper(LinkFlapper(0.1, 4, 0xABCD));
    sharded.set_link_flapper(LinkFlapper(0.1, 4, 0xABCD));
    FaultInjector flat_inj(plan, Rng(1));
    FaultInjector sharded_inj(plan, Rng(1));
    obs::RunObs flat_obs, sharded_obs;
    for (int step = 0; step < 35; ++step) {
      {
        obs::ObsRunScope scope(flat_obs);
        const Graph& a = flat_inj.live_graph(flat, flat.step());
        obs::ObsRunScope scope2(sharded_obs);
        const Graph& b = sharded_inj.live_graph(sharded, sharded.step());
        ASSERT_EQ(b, a) << "threads " << threads << " step " << step;
      }
      {
        obs::ObsRunScope scope(flat_obs);
        flat.advance();
      }
      {
        obs::ObsRunScope scope(sharded_obs);
        sharded.advance();
      }
    }
    EXPECT_EQ(sharded_obs.counters.value(obs::Counter::kFaultLinkDrops),
              flat_obs.counters.value(obs::Counter::kFaultLinkDrops));
    // Weather totals must agree too — the sharded path maintains a running
    // per-row drop total instead of recounting, and the totals may not
    // drift by a single link.
    EXPECT_EQ(sharded_obs.counters.value(obs::Counter::kLinkFlaps),
              flat_obs.counters.value(obs::Counter::kLinkFlaps));
    EXPECT_EQ(sharded_obs.counters.value(obs::Counter::kTopoNodesDirty),
              flat_obs.counters.value(obs::Counter::kTopoNodesDirty));
  }
}

TEST(ShardedWorldTest, CheckpointBytesMatchFlatAndResumeBitIdentical) {
  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kSymmetricAnd, 53);
  World flat = scenario.make_world();
  World sharded = scenario.make_world();
  flat.set_sharding(false);
  sharded.set_sharding(true);
  sharded.set_shard_threads(2);
  flat.set_link_flapper(LinkFlapper(0.12, 4, 0xC0DE));
  sharded.set_link_flapper(LinkFlapper(0.12, 4, 0xC0DE));
  for (int step = 0; step < 13; ++step) {
    flat.advance();
    sharded.advance();
  }
  // A sharded world's snapshot is byte-identical to the flat twin's: shard
  // structures are derived state and never serialized.
  snapshot::ByteWriter flat_bytes, sharded_bytes;
  flat.save_state(flat_bytes);
  sharded.save_state(sharded_bytes);
  ASSERT_EQ(sharded_bytes.bytes(), flat_bytes.bytes());

  // Restoring into a sharded world reproduces the run bit for bit — in
  // lockstep with the uninterrupted sharded world AND with a flat restore.
  World resumed_sharded = scenario.make_world();
  resumed_sharded.set_sharding(true);
  resumed_sharded.set_shard_threads(7);
  resumed_sharded.set_link_flapper(LinkFlapper(0.12, 4, 0xC0DE));
  snapshot::ByteReader r1(sharded_bytes.bytes());
  resumed_sharded.load_state(r1);
  World resumed_flat = scenario.make_world();
  resumed_flat.set_sharding(false);
  resumed_flat.set_link_flapper(LinkFlapper(0.12, 4, 0xC0DE));
  snapshot::ByteReader r2(flat_bytes.bytes());
  resumed_flat.load_state(r2);
  ASSERT_EQ(resumed_sharded.graph(), sharded.graph());
  ASSERT_EQ(resumed_sharded.csr(), sharded.csr());
  for (int step = 0; step < 12; ++step) {
    ASSERT_EQ(resumed_sharded.graph(), resumed_flat.graph())
        << "step " << step;
    ASSERT_EQ(resumed_sharded.graph(), sharded.graph()) << "step " << step;
    ASSERT_EQ(resumed_sharded.epoch(), sharded.epoch()) << "step " << step;
    resumed_sharded.advance();
    resumed_flat.advance();
    sharded.advance();
  }
}

TEST(ShardedWorldTest, MidRuntogglesNeverChangeResults) {
  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kDirected, 61);
  World reference = scenario.make_world();
  World toggled = scenario.make_world();
  reference.set_sharding(false);
  toggled.set_sharding(false);
  for (int step = 0; step < 40; ++step) {
    if (step == 10) toggled.set_sharding(true);
    if (step == 20) toggled.set_sharding(false);
    if (step == 30) toggled.set_sharding(true);
    ASSERT_EQ(toggled.graph(), reference.graph()) << "step " << step;
    ASSERT_EQ(toggled.csr(), reference.csr()) << "step " << step;
    ASSERT_EQ(toggled.epoch(), reference.epoch()) << "step " << step;
    toggled.advance();
    reference.advance();
  }
}

// ---------------------------------------------------------------------------
// Halo-edge golden: a mobile node approaches a stationary clean node that
// lives in a *different* tile. The link must appear via halo exchange (the
// clean node's row is patched without the node ever being dirty), the CSR
// must track it, and the shard counters must record exactly the expected
// tile/halo work.

/// Replays an explicit per-step position script (golden-test mobility).
class ScriptedMobility final : public MobilityModel {
 public:
  ScriptedMobility(std::vector<std::vector<Vec2>> frames,
                   std::vector<bool> mobile)
      : frames_(std::move(frames)), mobile_(std::move(mobile)) {}

  void step(std::vector<Vec2>& positions) override {
    if (cursor_ < frames_.size()) positions = frames_[cursor_++];
  }
  bool is_stationary(std::size_t node) const override {
    return !mobile_[node];
  }

 private:
  std::vector<std::vector<Vec2>> frames_;
  std::vector<bool> mobile_;
  std::size_t cursor_ = 0;
};

TEST(ShardedWorldTest, HaloEdgeGoldenAcrossTileBoundary) {
  // Arena 40×10, range 10, tile factor 1 ⇒ tile edge 10 ⇒ 4×1 tiles.
  // Node 0: stationary mains at (5,5) — never maybe-dirty, tile 0.
  // Node 1: scripted, starts at (16,5) in tile 1, walks left 2/step:
  //   x = 14, 12, 10, 8, 6 — the link (distance ≤ 10) appears at x=14 and
  //   node 1 migrates into tile 0 when x reaches 8.
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD", "1", 1), 0);
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD_TILE", "1.0", 1), 0);
  const Aabb bounds{{0.0, 0.0}, {40.0, 10.0}};
  std::vector<Vec2> start{{5.0, 5.0}, {16.0, 5.0}};
  std::vector<std::vector<Vec2>> frames;
  for (double x : {14.0, 12.0, 10.0, 8.0, 6.0})
    frames.push_back({{5.0, 5.0}, {x, 5.0}});
  World world(bounds, start, RadioModel({10.0, 10.0}, RangeScaling{1.0}),
              BatteryBank(2, {false, false}, BatteryParams{}),
              std::make_unique<ScriptedMobility>(frames,
                                                 std::vector<bool>{false,
                                                                   true}),
              LinkPolicy::kSymmetricAnd);
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_SHARD"), 0);
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_SHARD_TILE"), 0);
  ASSERT_TRUE(world.sharded());

  ASSERT_FALSE(world.graph().has_edge(0, 1));  // 11 apart at start
  obs::RunObs run;
  const std::uint64_t epoch0 = world.epoch();
  const std::uint64_t state_epoch0 = world.state_epoch();
  for (int step = 0; step < 5; ++step) {
    obs::ObsRunScope scope(run);
    world.advance();
    EXPECT_TRUE(world.graph().has_edge(0, 1)) << "step " << step;
    EXPECT_TRUE(world.graph().has_edge(1, 0)) << "step " << step;
    EXPECT_TRUE(world.csr().has_edge(0, 1)) << "step " << step;
    EXPECT_EQ(world.csr(), CsrView(world.graph())) << "step " << step;
  }
  // Golden counter values for the scripted walk: node 1 is dirty on all 5
  // steps, always alone in its tile; node 0's row is patched exactly once
  // (the step the link appeared) — one halo row, and the edge set changes
  // only that step.
  EXPECT_EQ(run.counters.value(obs::Counter::kTopoNodesDirty), 5u);
  EXPECT_EQ(run.counters.value(obs::Counter::kShardTilesDirty), 5u);
  EXPECT_EQ(run.counters.value(obs::Counter::kShardHaloRows), 1u);
  EXPECT_EQ(world.epoch(), epoch0 + 1);
  EXPECT_EQ(world.state_epoch(), state_epoch0 + 5);
}

TEST(ShardedWorldTest, EnvKnobsSelectShardingMode) {
  RoutingScenarioParams params;
  params.node_count = 30;
  params.gateway_count = 3;
  params.trace_steps = 10;
  // Explicit on: sharded even far below the auto threshold.
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD", "1", 1), 0);
  EXPECT_TRUE(RoutingScenario(params, 5).make_world().sharded());
  // Explicit off.
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD", "0", 1), 0);
  EXPECT_FALSE(RoutingScenario(params, 5).make_world().sharded());
  // Auto: below the (lowered) threshold off, above it on.
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD", "auto", 1), 0);
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD_MIN_NODES", "31", 1), 0);
  EXPECT_FALSE(RoutingScenario(params, 5).make_world().sharded());
  ASSERT_EQ(setenv("AGENTNET_TOPO_SHARD_MIN_NODES", "30", 1), 0);
  EXPECT_TRUE(RoutingScenario(params, 5).make_world().sharded());
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_SHARD"), 0);
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_SHARD_MIN_NODES"), 0);
}

TEST(ShardedWorldTest, StaticShardedWorldDoesZeroTopologyWork) {
  RoutingScenarioParams params;
  params.node_count = 40;
  params.gateway_count = 4;
  params.mobile_fraction = 0.0;  // nothing moves, nothing drains
  params.trace_steps = 10;
  const RoutingScenario scenario(params, 9);
  World world = scenario.make_world();
  world.set_sharding(true);
  const std::uint64_t epoch = world.epoch();
  const std::uint64_t state_epoch = world.state_epoch();
  obs::RunObs run;
  for (int step = 0; step < 10; ++step) {
    obs::ObsRunScope scope(run);
    world.advance();
  }
  EXPECT_EQ(world.epoch(), epoch);
  EXPECT_EQ(world.state_epoch(), state_epoch);
  EXPECT_EQ(run.counters.value(obs::Counter::kTopoNodesDirty), 0u);
  EXPECT_EQ(run.counters.value(obs::Counter::kShardTilesDirty), 0u);
  EXPECT_EQ(run.counters.value(obs::Counter::kShardHaloRows), 0u);
  EXPECT_EQ(run.counters.value(obs::Counter::kDerivedCacheHits), 10u);
}

TEST(ShardedWorldTest, MemoryBytesCoversLiveStructures) {
  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kSymmetricAnd, 77);
  World world = scenario.make_world();
  world.set_sharding(false);
  const std::size_t flat_bytes = world.memory_bytes();
  EXPECT_GT(flat_bytes, world.node_count() * sizeof(Vec2));
  world.set_sharding(true);
  // Shard tiles add state; the accounting must see it.
  EXPECT_GT(world.memory_bytes(), flat_bytes);
}

}  // namespace
}  // namespace agentnet
