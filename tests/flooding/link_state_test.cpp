#include "flooding/link_state.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/generators.hpp"
#include "net/metrics.hpp"

namespace agentnet {
namespace {

Graph line(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_undirected_edge(i, i + 1);
  return g;
}

TEST(LinkStateTest, RejectsBadConfig) {
  EXPECT_THROW(LinkStateFlooding(3, LinkStateConfig{0, 24, 8}), ConfigError);
}

TEST(LinkStateTest, SelfKnowledgeAfterOneStep) {
  const Graph g = line(4);
  LinkStateFlooding flood(4, {});
  flood.step(g, 0);
  // Each node knows its own adjacency: 6 of the 6 directed edges are
  // covered collectively, but each node only knows its own share.
  EXPECT_GT(flood.database_completeness(0, g), 0.0);
  EXPECT_LT(flood.database_completeness(0, g), 1.0);
}

TEST(LinkStateTest, ConvergesInDiameterSteps) {
  const Graph g = line(6);  // diameter 5
  LinkStateFlooding flood(6, {});
  std::size_t steps = 0;
  for (; steps < 20 && !flood.converged(g); ++steps) flood.step(g, steps);
  EXPECT_TRUE(flood.converged(g));
  EXPECT_LE(steps, 8u) << "flooding must converge in O(diameter) steps";
  EXPECT_DOUBLE_EQ(flood.mean_completeness(g), 1.0);
}

TEST(LinkStateTest, ConvergesOnPaperClassNetwork) {
  TargetEdgeParams params;
  params.geometry.node_count = 80;
  params.target_edges = 560;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 41);
  LinkStateFlooding flood(80, {});
  std::size_t steps = 0;
  for (; steps < 100 && !flood.converged(net.graph); ++steps)
    flood.step(net.graph, steps);
  EXPECT_TRUE(flood.converged(net.graph));
  EXPECT_LE(static_cast<int>(steps), diameter(net.graph) + 3);
}

TEST(LinkStateTest, MessageAndByteCountersGrow) {
  const Graph g = line(5);
  LinkStateFlooding flood(5, {});
  flood.step(g, 0);
  flood.step(g, 1);
  EXPECT_GT(flood.messages_sent(), 0u);
  // Every message carries at least the header.
  EXPECT_GE(flood.bytes_sent(), flood.messages_sent() * 24);
}

TEST(LinkStateTest, QuiescentAfterConvergenceUntilRefresh) {
  const Graph g = line(4);
  LinkStateConfig cfg;
  cfg.refresh_period = 1000;  // effectively off
  LinkStateFlooding flood(4, cfg);
  for (std::size_t t = 0; t < 10; ++t) flood.step(g, t);
  const std::size_t settled = flood.messages_sent();
  for (std::size_t t = 10; t < 30; ++t) flood.step(g, t);
  EXPECT_EQ(flood.messages_sent(), settled)
      << "no topology change, no refresh → no traffic";
}

TEST(LinkStateTest, RefreshGeneratesPeriodicTraffic) {
  const Graph g = line(4);
  LinkStateConfig cfg;
  cfg.refresh_period = 5;
  LinkStateFlooding flood(4, cfg);
  for (std::size_t t = 0; t < 10; ++t) flood.step(g, t);
  const std::size_t at10 = flood.messages_sent();
  for (std::size_t t = 10; t < 20; ++t) flood.step(g, t);
  EXPECT_GT(flood.messages_sent(), at10);
}

TEST(LinkStateTest, TopologyChangePropagates) {
  Graph g = line(5);
  LinkStateFlooding flood(5, {});
  for (std::size_t t = 0; t < 10; ++t) flood.step(g, t);
  ASSERT_TRUE(flood.converged(g));
  // Break the middle of the line; nodes should re-learn.
  g.remove_edge(2, 3);
  g.remove_edge(3, 2);
  for (std::size_t t = 10; t < 30; ++t) flood.step(g, t);
  // The two halves each converge on what they can still hear; node 0's
  // database must not contain the dead 2→3 edge.
  EXPECT_DOUBLE_EQ(flood.database_completeness(0, g), 1.0);
}

TEST(LinkStateTest, DirectedEdgesTravelOnlyForward) {
  // One-way chain 0→1→2: LSAs only flow downstream, so node 2 learns
  // everything while node 0 never hears node 1's advertisement.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  LinkStateFlooding flood(3, {});
  for (std::size_t t = 0; t < 10; ++t) flood.step(g, t);
  EXPECT_DOUBLE_EQ(flood.database_completeness(2, g), 1.0);
  EXPECT_DOUBLE_EQ(flood.database_completeness(1, g), 1.0);
  EXPECT_DOUBLE_EQ(flood.database_completeness(0, g), 0.5)
      << "node 0 knows only its own out-edge";
}

TEST(LinkStateTest, SequenceNumbersSuppressStaleReflood) {
  const Graph g = line(3);
  LinkStateConfig cfg;
  cfg.refresh_period = 1000;
  LinkStateFlooding flood(3, cfg);
  for (std::size_t t = 0; t < 6; ++t) flood.step(g, t);
  const std::size_t settled = flood.messages_sent();
  // On a 3-line with 3 origins, naive endless reflooding would send ~6
  // messages per step forever; counters must have stopped well short.
  EXPECT_LT(settled, 60u);
}

}  // namespace
}  // namespace agentnet
