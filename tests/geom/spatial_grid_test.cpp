#include "geom/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mobility/mobility.hpp"

namespace agentnet {
namespace {

const Aabb kArena{{0.0, 0.0}, {100.0, 100.0}};

TEST(SpatialGridTest, RejectsBadConstruction) {
  EXPECT_THROW(SpatialGrid(kArena, 0.0), ConfigError);
  EXPECT_THROW(SpatialGrid({{0.0, 0.0}, {0.0, 10.0}}, 1.0), ConfigError);
}

TEST(SpatialGridTest, EmptyGridQueriesNothing) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({});
  EXPECT_TRUE(grid.query({50.0, 50.0}, 100.0).empty());
}

TEST(SpatialGridTest, FindsSelf) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{50.0, 50.0}});
  const auto hits = grid.query({50.0, 50.0}, 0.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
}

TEST(SpatialGridTest, RadiusBoundaryInclusive) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{10.0, 10.0}, {13.0, 14.0}});  // distance exactly 5
  EXPECT_EQ(grid.query({10.0, 10.0}, 5.0).size(), 2u);
  EXPECT_EQ(grid.query({10.0, 10.0}, 4.999).size(), 1u);
}

TEST(SpatialGridTest, QueryCrossesCellBoundaries) {
  SpatialGrid grid(kArena, 5.0);
  grid.rebuild({{4.9, 4.9}, {5.1, 5.1}});
  EXPECT_EQ(grid.query({4.9, 4.9}, 1.0).size(), 2u);
}

TEST(SpatialGridTest, MatchesBruteForceOnRandomPoints) {
  Rng rng(123);
  auto points = random_positions(400, kArena, rng);
  SpatialGrid grid(kArena, 12.0);
  grid.rebuild(points);
  for (int trial = 0; trial < 50; ++trial) {
    const Vec2 q{rng.uniform_real(0.0, 100.0), rng.uniform_real(0.0, 100.0)};
    const double radius = rng.uniform_real(0.0, 30.0);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (distance(q, points[i]) <= radius) expected.push_back(i);
    EXPECT_EQ(grid.query(q, radius), expected);
  }
}

TEST(SpatialGridTest, RadiusLargerThanCellSizeWorks) {
  Rng rng(7);
  auto points = random_positions(200, kArena, rng);
  SpatialGrid grid(kArena, 5.0);  // query radius far exceeds the cell size
  grid.rebuild(points);
  const double radius = 40.0;
  const Vec2 q{50.0, 50.0};
  std::vector<std::size_t> expected;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (distance(q, points[i]) <= radius) expected.push_back(i);
  EXPECT_EQ(grid.query(q, radius), expected);
}

TEST(SpatialGridTest, PointsOutsideBoundsClampIntoEdgeCells) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{150.0, 150.0}});  // clamped to the corner cell
  // The stored position is kept verbatim; only the cell is clamped, so a
  // query near the true position must still find it.
  EXPECT_EQ(grid.query({150.0, 150.0}, 1.0).size(), 1u);
}

TEST(SpatialGridTest, RebuildReplacesContents) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{10.0, 10.0}});
  grid.rebuild({{90.0, 90.0}});
  EXPECT_TRUE(grid.query({10.0, 10.0}, 5.0).empty());
  EXPECT_EQ(grid.query({90.0, 90.0}, 5.0).size(), 1u);
  EXPECT_EQ(grid.size(), 1u);
}

TEST(SpatialGridTest, NegativeRadiusFindsNothing) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{50.0, 50.0}});
  EXPECT_TRUE(grid.query({50.0, 50.0}, -1.0).empty());
}

TEST(SpatialGridTest, MoveAcrossCellBoundaryMatchesFreshRebuild) {
  std::vector<Vec2> points{{12.0, 12.0}, {45.0, 45.0}, {47.0, 44.0}};
  SpatialGrid moved(kArena, 10.0);
  moved.rebuild(points);
  // Cross a cell boundary (cell (1,1) -> (8,8)).
  points[0] = {88.0, 88.0};
  EXPECT_TRUE(moved.move(0, points[0]));
  EXPECT_EQ(moved.position(0), points[0]);
  SpatialGrid fresh(kArena, 10.0);
  fresh.rebuild(points);
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(static_cast<std::uint64_t>(trial) + 1);
    const Vec2 q{rng.uniform_real(0.0, 100.0), rng.uniform_real(0.0, 100.0)};
    const double radius = rng.uniform_real(0.0, 60.0);
    EXPECT_EQ(moved.query(q, radius), fresh.query(q, radius))
        << "trial " << trial;
  }
}

TEST(SpatialGridTest, MoveWithinCellReturnsFalseButUpdatesPosition) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{12.0, 12.0}});
  // Same cell (1,1): no bucket surgery, but the stored point must follow —
  // queries resolve against exact positions, not cells.
  EXPECT_FALSE(grid.move(0, {17.0, 18.0}));
  EXPECT_EQ(grid.position(0), (Vec2{17.0, 18.0}));
  EXPECT_TRUE(grid.query({12.0, 12.0}, 1.0).empty());
  EXPECT_EQ(grid.query({17.0, 18.0}, 1.0).size(), 1u);
}

TEST(SpatialGridTest, NoOpMoveIsClean) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{33.0, 66.0}});
  EXPECT_FALSE(grid.move(0, {33.0, 66.0}));
  EXPECT_EQ(grid.position(0), (Vec2{33.0, 66.0}));
  EXPECT_EQ(grid.query({33.0, 66.0}, 0.5).size(), 1u);
}

TEST(SpatialGridTest, ManyRandomMovesMatchFreshRebuild) {
  Rng rng(2024);
  auto points = random_positions(120, kArena, rng);
  SpatialGrid moved(kArena, 8.0);
  moved.rebuild(points);
  for (int round = 0; round < 40; ++round) {
    const std::size_t i = rng.index(points.size());
    points[i] = {rng.uniform_real(0.0, 100.0), rng.uniform_real(0.0, 100.0)};
    moved.move(i, points[i]);
  }
  SpatialGrid fresh(kArena, 8.0);
  fresh.rebuild(points);
  for (int trial = 0; trial < 30; ++trial) {
    const Vec2 q{rng.uniform_real(0.0, 100.0), rng.uniform_real(0.0, 100.0)};
    const double radius = rng.uniform_real(0.0, 25.0);
    EXPECT_EQ(moved.query(q, radius), fresh.query(q, radius))
        << "trial " << trial;
  }
}

TEST(SpatialGridTest, ForEachVisitsEveryMatchOnce) {
  SpatialGrid grid(kArena, 10.0);
  grid.rebuild({{50.0, 50.0}, {51.0, 50.0}, {52.0, 50.0}});
  std::vector<std::size_t> seen;
  grid.for_each_within({51.0, 50.0}, 2.0,
                       [&](std::size_t j) { seen.push_back(j); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

// ---------------------------------------------------------------------------
// Scale hazards: huge arenas and tiny cells must not overflow the cell
// count (kMaxCells coarsening), and non-finite geometry is rejected loudly.

TEST(SpatialGridTest, RejectsNonFiniteGeometry) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(SpatialGrid(kArena, inf), ConfigError);
  EXPECT_THROW(SpatialGrid(kArena, nan), ConfigError);
  EXPECT_THROW(SpatialGrid({{0.0, 0.0}, {inf, 100.0}}, 10.0), ConfigError);
  EXPECT_THROW(SpatialGrid({{nan, 0.0}, {100.0, 100.0}}, 10.0), ConfigError);
  EXPECT_THROW(SpatialGrid(kArena, -1.0), ConfigError);
}

TEST(SpatialGridTest, HugeBoundsCoarsenCellSizeInsteadOfOverflowing) {
  // 1e9 × 1e9 arena with cell size 1 would want 1e18 cells — far beyond
  // any int. Construction must coarsen until cols*rows <= kMaxCells.
  const Aabb huge{{0.0, 0.0}, {1e9, 1e9}};
  SpatialGrid grid(huge, 1.0);
  EXPECT_GT(grid.cell_size(), 1.0);  // was coarsened
  const double cols = std::ceil(1e9 / grid.cell_size());
  EXPECT_LE(cols * cols, static_cast<double>(SpatialGrid::kMaxCells));
  // Queries still work and stay exact on the coarse grid.
  grid.rebuild({{1.0, 1.0}, {5e8, 5e8}, {999999999.0, 1.0}});
  EXPECT_EQ(grid.query({1.0, 1.0}, 10.0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(grid.query({5e8, 5e8}, 1.0), (std::vector<std::size_t>{1}));
  EXPECT_EQ(grid.query({0.0, 0.0}, 2e9).size(), 3u);
}

TEST(SpatialGridTest, ExtremeAspectRatioStaysWithinCap) {
  // A ribbon arena: 1e12 long, 1 tall. The 1-D cell count alone would
  // overflow a 32-bit int without the cap.
  SpatialGrid grid({{0.0, 0.0}, {1e12, 1.0}}, 0.5);
  const double cols = std::ceil(1e12 / grid.cell_size());
  EXPECT_LE(cols, static_cast<double>(SpatialGrid::kMaxCells));
  grid.rebuild({{0.5, 0.5}, {1e12 - 0.5, 0.5}});
  EXPECT_EQ(grid.query({0.0, 0.5}, 1.0), (std::vector<std::size_t>{0}));
  EXPECT_EQ(grid.query({1e12, 0.5}, 1.0), (std::vector<std::size_t>{1}));
}

TEST(SpatialGridTest, CoarsenedGridMatchesBruteForce) {
  // Force heavy coarsening, then verify exactness survives it.
  const Aabb arena{{0.0, 0.0}, {1e8, 1e8}};
  Rng rng(77);
  std::vector<Vec2> points;
  for (int i = 0; i < 200; ++i)
    points.push_back({rng.uniform_real(0.0, 1e8), rng.uniform_real(0.0, 1e8)});
  SpatialGrid grid(arena, 0.001);  // absurdly fine request
  grid.rebuild(points);
  for (int trial = 0; trial < 20; ++trial) {
    const Vec2 q{rng.uniform_real(0.0, 1e8), rng.uniform_real(0.0, 1e8)};
    const double radius = rng.uniform_real(0.0, 3e7);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (distance(q, points[i]) <= radius) expected.push_back(i);
    EXPECT_EQ(grid.query(q, radius), expected);
  }
}

}  // namespace
}  // namespace agentnet
