#include "geom/vec2.hpp"

#include <gtest/gtest.h>

namespace agentnet {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_EQ(2.0 * a, Vec2(2.0, 4.0));
  EXPECT_EQ(a / 2.0, Vec2(0.5, 1.0));
}

TEST(Vec2Test, CompoundAssignment) {
  Vec2 v{1.0, 1.0};
  v += {2.0, 3.0};
  EXPECT_EQ(v, Vec2(3.0, 4.0));
  v -= {1.0, 1.0};
  EXPECT_EQ(v, Vec2(2.0, 3.0));
  v *= 2.0;
  EXPECT_EQ(v, Vec2(4.0, 6.0));
}

TEST(Vec2Test, DotAndNorm) {
  const Vec2 a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.dot({1.0, 2.0}), 11.0);
  EXPECT_DOUBLE_EQ(a.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
}

TEST(Vec2Test, NormalizedUnitLength) {
  const Vec2 v = Vec2{3.0, 4.0}.normalized();
  EXPECT_NEAR(v.norm(), 1.0, 1e-12);
  EXPECT_NEAR(v.x, 0.6, 1e-12);
  EXPECT_NEAR(v.y, 0.8, 1e-12);
}

TEST(Vec2Test, NormalizedZeroStaysZero) {
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Vec2Test, DistanceFunctions) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({1.0, 1.0}, {2.0, 2.0}), 2.0);
}

TEST(AabbTest, ContainsBoundaryInclusive) {
  const Aabb box{{0.0, 0.0}, {10.0, 5.0}};
  EXPECT_TRUE(box.contains({0.0, 0.0}));
  EXPECT_TRUE(box.contains({10.0, 5.0}));
  EXPECT_TRUE(box.contains({5.0, 2.5}));
  EXPECT_FALSE(box.contains({-0.1, 2.0}));
  EXPECT_FALSE(box.contains({5.0, 5.1}));
}

TEST(AabbTest, Dimensions) {
  const Aabb box{{1.0, 2.0}, {4.0, 10.0}};
  EXPECT_DOUBLE_EQ(box.width(), 3.0);
  EXPECT_DOUBLE_EQ(box.height(), 8.0);
}

TEST(AabbTest, ClampPullsOutsidePointsIn) {
  const Aabb box{{0.0, 0.0}, {10.0, 10.0}};
  EXPECT_EQ(box.clamp({-5.0, 5.0}), Vec2(0.0, 5.0));
  EXPECT_EQ(box.clamp({12.0, -3.0}), Vec2(10.0, 0.0));
  EXPECT_EQ(box.clamp({3.0, 4.0}), Vec2(3.0, 4.0));
}

}  // namespace
}  // namespace agentnet
