#include "adv/dv_agent.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

// Line 0(gw)-1-2-3-4, bidirectional.
struct LineWorld {
  Graph graph{5};
  std::vector<bool> is_gateway{true, false, false, false, false};
  LineWorld() {
    for (NodeId i = 0; i + 1 < 5; ++i) graph.add_undirected_edge(i, i + 1);
  }
};

DvAgent make_agent(NodeId start, std::size_t table_size = 40,
                   std::size_t ttl = 60) {
  return DvAgent(0, start, {table_size, ttl}, Rng(1));
}

TEST(DvAgentTest, RejectsBadConfig) {
  EXPECT_THROW(DvAgent(0, 0, {1, 60}, Rng(1)), ConfigError);
  EXPECT_THROW(DvAgent(0, 0, {40, 0}, Rng(1)), ConfigError);
}

TEST(DvAgentTest, GatewayAnchorsDistanceZero) {
  LineWorld w;
  auto agent = make_agent(0);
  agent.arrive(w.graph, w.is_gateway, 5);
  ASSERT_TRUE(agent.table().contains(0));
  EXPECT_EQ(agent.table().at(0).distance, 0u);
  EXPECT_EQ(agent.table().at(0).updated, 5u);
}

TEST(DvAgentTest, RelaxationBuildsDistancesAlongWalk) {
  LineWorld w;
  auto agent = make_agent(0);
  agent.arrive(w.graph, w.is_gateway, 0);
  agent.move_to(1);
  agent.arrive(w.graph, w.is_gateway, 1);  // sees gw at distance 0 → 1
  EXPECT_EQ(agent.table().at(1).distance, 1u);
  agent.move_to(2);
  agent.arrive(w.graph, w.is_gateway, 2);
  EXPECT_EQ(agent.table().at(2).distance, 2u);
}

TEST(DvAgentTest, NoRelaxationWithoutKnownNeighbors) {
  LineWorld w;
  auto agent = make_agent(3);
  agent.arrive(w.graph, w.is_gateway, 0);
  EXPECT_FALSE(agent.table().contains(3));
}

TEST(DvAgentTest, InstallUsesArgminNeighbor) {
  LineWorld w;
  auto agent = make_agent(0);
  agent.arrive(w.graph, w.is_gateway, 0);
  agent.move_to(1);
  agent.arrive(w.graph, w.is_gateway, 1);
  RoutingTables tables(5);
  EXPECT_TRUE(agent.install(w.graph, tables, w.is_gateway, 1));
  EXPECT_EQ(tables.entry(1).next_hop, 0u);
  EXPECT_EQ(tables.entry(1).hops, 1u);
}

TEST(DvAgentTest, NoInstallAtGatewayOrBlind) {
  LineWorld w;
  auto at_gw = make_agent(0);
  at_gw.arrive(w.graph, w.is_gateway, 0);
  RoutingTables tables(5);
  EXPECT_FALSE(at_gw.install(w.graph, tables, w.is_gateway, 0));
  auto blind = make_agent(3);
  blind.arrive(w.graph, w.is_gateway, 0);
  EXPECT_FALSE(blind.install(w.graph, tables, w.is_gateway, 0));
}

TEST(DvAgentTest, EntriesExpire) {
  LineWorld w;
  auto agent = make_agent(0, 40, 5);
  agent.arrive(w.graph, w.is_gateway, 0);
  agent.move_to(2);  // away from the gateway, no refresh
  agent.arrive(w.graph, w.is_gateway, 10);
  EXPECT_FALSE(agent.table().contains(0)) << "gateway entry aged out";
}

TEST(DvAgentTest, TableSizeBounded) {
  // Visit many nodes on a long line with a tiny table.
  Graph g(30);
  for (NodeId i = 0; i + 1 < 30; ++i) g.add_undirected_edge(i, i + 1);
  std::vector<bool> gw(30, false);
  gw[0] = true;
  auto agent = make_agent(0, 4, 1000);
  agent.arrive(g, gw, 0);
  for (NodeId v = 1; v < 20; ++v) {
    agent.move_to(v);
    agent.arrive(g, gw, v);
    EXPECT_LE(agent.table().size(), 4u);
  }
}

TEST(DvAgentTest, StateSizeTracksTable) {
  LineWorld w;
  auto agent = make_agent(0);
  EXPECT_EQ(agent.state_size_bytes(), 64u);
  agent.arrive(w.graph, w.is_gateway, 0);
  EXPECT_EQ(agent.state_size_bytes(), 64u + 16u);
}

TEST(DvAgentTest, DecidePrefersUnknownNeighbors) {
  LineWorld w;
  auto agent = make_agent(1);
  agent.arrive(w.graph, w.is_gateway, 0);  // knows nothing yet (no anchor)
  agent.move_to(0);
  agent.arrive(w.graph, w.is_gateway, 1);  // knows 0
  agent.move_to(1);
  agent.arrive(w.graph, w.is_gateway, 2);  // knows 1 (distance 1)
  // At 1: neighbour 0 known (updated 1), neighbour 2 unknown → pick 2.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(agent.decide(w.graph, 3), 2u);
}

TEST(DvTaskTest, RunsAndConnects) {
  RoutingScenarioParams params;
  params.node_count = 80;
  params.gateway_count = 5;
  params.bounds = {{0.0, 0.0}, {500.0, 500.0}};
  params.node_range = 95.0;
  params.trace_steps = 120;
  const RoutingScenario scenario(params, 51);
  DvRoutingTaskConfig cfg;
  cfg.population = 30;
  cfg.steps = 120;
  cfg.measure_from = 60;
  const auto result = run_dv_routing_task(scenario, cfg, Rng(1));
  ASSERT_EQ(result.connectivity.size(), 120u);
  EXPECT_GT(result.mean_connectivity, 0.2);
  EXPECT_GT(result.migration_bytes, 0u);
}

TEST(DvTaskTest, Deterministic) {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {400.0, 400.0}};
  params.trace_steps = 60;
  const RoutingScenario scenario(params, 52);
  DvRoutingTaskConfig cfg;
  cfg.population = 20;
  cfg.steps = 60;
  cfg.measure_from = 30;
  const auto a = run_dv_routing_task(scenario, cfg, Rng(2));
  const auto b = run_dv_routing_task(scenario, cfg, Rng(2));
  EXPECT_EQ(a.connectivity, b.connectivity);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
}

TEST(DvTaskTest, BiggerTableCostsMoreBytes) {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {400.0, 400.0}};
  params.trace_steps = 60;
  const RoutingScenario scenario(params, 53);
  DvRoutingTaskConfig small_cfg;
  small_cfg.population = 20;
  small_cfg.steps = 60;
  small_cfg.measure_from = 30;
  small_cfg.agent.table_size = 5;
  auto big_cfg = small_cfg;
  big_cfg.agent.table_size = 60;
  const auto small_r = run_dv_routing_task(scenario, small_cfg, Rng(3));
  const auto big_r = run_dv_routing_task(scenario, big_cfg, Rng(3));
  EXPECT_GT(big_r.migration_bytes, small_r.migration_bytes);
}

}  // namespace
}  // namespace agentnet
