#include "traffic/traffic.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

// Line 0(gw)-1-2-3, fully routed toward the gateway.
struct LineWorld {
  Graph graph{4};
  RoutingTables tables{4};
  std::vector<bool> is_gateway{true, false, false, false};

  LineWorld() {
    graph.add_undirected_edge(0, 1);
    graph.add_undirected_edge(1, 2);
    graph.add_undirected_edge(2, 3);
    tables.force(1, {0, 0, 1, 0});
    tables.force(2, {1, 0, 2, 0});
    tables.force(3, {2, 0, 3, 0});
  }
};

TrafficConfig always_generate() {
  TrafficConfig cfg;
  cfg.packets_per_node_per_step = 1.0;
  return cfg;
}

TrafficConfig never_generate() {
  TrafficConfig cfg;
  cfg.packets_per_node_per_step = 0.0;
  return cfg;
}

TEST(TrafficTest, RejectsBadConfig) {
  TrafficConfig bad;
  bad.packets_per_node_per_step = 1.5;
  EXPECT_THROW(TrafficSimulator(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  bad = TrafficConfig{};
  bad.ttl = 0;
  EXPECT_THROW(TrafficSimulator(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  bad = TrafficConfig{};
  bad.service_rate = 0;
  EXPECT_THROW(TrafficSimulator(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  EXPECT_THROW(TrafficSimulator(4, std::vector<bool>(3, false),
                                TrafficConfig{}, Rng(1)),
               ConfigError);
}

TEST(TrafficTest, GeneratesAtNonGatewaysOnly) {
  LineWorld w;
  TrafficSimulator sim(4, w.is_gateway, always_generate(), Rng(1));
  sim.step(w.graph, w.tables, 0);
  EXPECT_EQ(sim.stats().generated, 3u);  // nodes 1,2,3 — not the gateway
}

TEST(TrafficTest, DeliversOverRoutedLine) {
  LineWorld w;
  auto cfg = always_generate();
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(2));
  for (std::size_t t = 0; t < 20; ++t) sim.step(w.graph, w.tables, t);
  sim.finish();
  const auto& s = sim.stats();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_EQ(s.dropped(), 0u);
  EXPECT_EQ(s.generated, s.delivered + s.in_flight);
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 1.0);
}

TEST(TrafficTest, LatencyBoundedByHopDistance) {
  LineWorld w;
  // Nodes sit 1..3 hops from the gateway, one hop per step: every latency
  // lies in [1, horizon] and the one-hop node pins the minimum at 1.
  TrafficSimulator sim(4, w.is_gateway, always_generate(), Rng(3));
  for (std::size_t t = 0; t < 10; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_GE(sim.stats().latency.min(), 1.0);
  EXPECT_LE(sim.stats().latency.max(), 10.0);
}

TEST(TrafficTest, NeverGenerateStaysIdle) {
  LineWorld w;
  TrafficSimulator sim(4, w.is_gateway, never_generate(), Rng(3));
  for (std::size_t t = 0; t < 10; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_EQ(sim.stats().generated, 0u);
  EXPECT_EQ(sim.queued(), 0u);
}

TEST(TrafficTest, NoRouteDropsAfterPatience) {
  LineWorld w;
  w.tables.clear(3);  // node 3 has no route
  auto cfg = always_generate();
  cfg.route_patience = 2;
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(4));
  for (std::size_t t = 0; t < 10; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_GT(sim.stats().dropped_no_route, 0u);
}

TEST(TrafficTest, DeadLinkDropsAfterPatience) {
  LineWorld w;
  w.graph.remove_edge(2, 1);  // route 2→1 points over a missing link
  auto cfg = always_generate();
  cfg.route_patience = 1;
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(5));
  for (std::size_t t = 0; t < 10; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_GT(sim.stats().dropped_link_down, 0u);
}

TEST(TrafficTest, PatienceZeroDropsImmediately) {
  LineWorld w;
  w.tables.clear(1);
  auto cfg = always_generate();
  cfg.route_patience = 0;
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(6));
  sim.step(w.graph, w.tables, 0);
  // Packet at node 1 could not move and patience is 0 → dropped same step.
  EXPECT_EQ(sim.stats().dropped_no_route, 1u);
}

TEST(TrafficTest, TtlExhaustionDrops) {
  // Two nodes routing to each other in a cycle; gateway unreachable.
  Graph g(3);
  g.add_undirected_edge(1, 2);
  RoutingTables t(3);
  t.force(1, {2, 0, 1, 0});
  t.force(2, {1, 0, 1, 0});
  auto cfg = always_generate();
  cfg.ttl = 4;
  cfg.route_patience = 100;  // patience never fires; ttl must
  TrafficSimulator sim(3, {true, false, false}, cfg, Rng(7));
  for (std::size_t step = 0; step < 20; ++step) sim.step(g, t, step);
  EXPECT_GT(sim.stats().dropped_ttl, 0u);
  EXPECT_EQ(sim.stats().delivered, 0u);
}

TEST(TrafficTest, QueueCapacityDrops) {
  LineWorld w;
  auto cfg = always_generate();
  cfg.queue_capacity = 1;
  cfg.service_rate = 1;
  // Node 2 receives node 3's packets plus generates its own: overflow.
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(8));
  for (std::size_t t = 0; t < 20; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_GT(sim.stats().dropped_queue_full, 0u);
}

TEST(TrafficTest, ServiceRateBoundsThroughput) {
  LineWorld w;
  auto slow = always_generate();
  slow.service_rate = 1;
  slow.queue_capacity = 1000;
  auto fast = always_generate();
  fast.service_rate = 8;
  fast.queue_capacity = 1000;
  TrafficSimulator sim_slow(4, w.is_gateway, slow, Rng(9));
  TrafficSimulator sim_fast(4, w.is_gateway, fast, Rng(9));
  for (std::size_t t = 0; t < 30; ++t) {
    sim_slow.step(w.graph, w.tables, t);
    sim_fast.step(w.graph, w.tables, t);
  }
  EXPECT_GT(sim_fast.stats().delivered, sim_slow.stats().delivered);
}

TEST(TrafficTest, ConservationInvariant) {
  LineWorld w;
  auto cfg = always_generate();
  cfg.queue_capacity = 2;
  cfg.service_rate = 1;
  TrafficSimulator sim(4, w.is_gateway, cfg, Rng(10));
  for (std::size_t t = 0; t < 50; ++t) {
    sim.step(w.graph, w.tables, t);
    const auto& s = sim.stats();
    ASSERT_EQ(s.generated, s.delivered + s.dropped() + sim.queued())
        << "packets must be conserved at step " << t;
  }
}

TEST(TrafficTest, DeterministicForSameSeed) {
  LineWorld w;
  TrafficConfig cfg;
  cfg.packets_per_node_per_step = 0.4;
  TrafficSimulator a(4, w.is_gateway, cfg, Rng(11));
  TrafficSimulator b(4, w.is_gateway, cfg, Rng(11));
  for (std::size_t t = 0; t < 50; ++t) {
    a.step(w.graph, w.tables, t);
    b.step(w.graph, w.tables, t);
  }
  EXPECT_EQ(a.stats().generated, b.stats().generated);
  EXPECT_EQ(a.stats().delivered, b.stats().delivered);
}

TEST(TrafficStatsTest, DeliveryRatioEdgeCases) {
  TrafficStats s;
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 0.0);
  s.delivered = 3;
  s.dropped_ttl = 1;
  EXPECT_DOUBLE_EQ(s.delivery_ratio(), 0.75);
}

}  // namespace
}  // namespace agentnet
