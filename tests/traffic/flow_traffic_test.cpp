#include "traffic/flow_traffic.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "experiments/traffic_experiments.hpp"

namespace agentnet {
namespace {

// Line 0(gw)-1-2-3, fully routed toward the gateway.
struct LineWorld {
  Graph graph{4};
  RoutingTables tables{4};
  std::vector<bool> is_gateway{true, false, false, false};

  LineWorld() {
    graph.add_undirected_edge(0, 1);
    graph.add_undirected_edge(1, 2);
    graph.add_undirected_edge(2, 3);
    tables.force(1, {0, 0, 1, 0});
    tables.force(2, {1, 0, 2, 0});
    tables.force(3, {2, 0, 3, 0});
  }
};

FlowWorkloadConfig load_of(double offered) {
  FlowWorkloadConfig cfg;
  cfg.offered_load = offered;
  return cfg;
}

// A small, fast stand-in for the paper scenario used by the closed-loop
// tests below (full fidelity lives in bench/extC_packet_delivery).
RoutingScenario small_scenario() {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.trace_steps = 80;
  return RoutingScenario(params, 99);
}

TrafficTaskConfig small_task(double offered, AntReinforcement mode) {
  TrafficTaskConfig task;
  task.steps = 80;
  task.measure_from = 40;
  task.workload.offered_load = offered;
  task.ants.reinforcement = mode;
  return task;
}

TEST(FlowWorkloadConfigTest, RejectsBadConfig) {
  FlowWorkloadConfig bad;
  bad.offered_load = -0.1;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = {};
  bad.elephant_fraction = 1.5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = {};
  bad.mice_packets = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = {};
  bad.elephant_rate = 0;
  EXPECT_THROW(bad.validate(), ConfigError);

  LinkQueueConfig queue;
  queue.link_capacity = 0;
  EXPECT_THROW(queue.validate(), ConfigError);
  queue = {};
  queue.ttl = 0;
  EXPECT_THROW(queue.validate(), ConfigError);

  // The simulator validates on construction, including the mask size.
  EXPECT_THROW(FlowTrafficSimulator(4, std::vector<bool>(3, false), {}, {},
                                    Rng(1)),
               ConfigError);
}

TEST(FlowWorkloadConfigTest, SessionRateRealizesOfferedLoad) {
  FlowWorkloadConfig cfg;
  cfg.offered_load = 0.5;
  cfg.elephant_fraction = 0.25;
  cfg.mice_packets = 4;
  cfg.elephant_packets = 64;
  // Mean session = 0.25*64 + 0.75*4 = 19 packets; rate * mean == load, so
  // changing the mix never silently changes the offered load.
  EXPECT_DOUBLE_EQ(cfg.mean_session_packets(), 19.0);
  EXPECT_DOUBLE_EQ(cfg.session_rate() * cfg.mean_session_packets(), 0.5);
}

TEST(FlowTrafficTest, ZeroLoadStaysIdleWithUnitHopDelays) {
  LineWorld w;
  FlowTrafficSimulator sim(4, w.is_gateway, load_of(0.0), {}, Rng(1));
  for (std::size_t t = 0; t < 20; ++t) sim.step(w.graph, w.tables, t);
  EXPECT_EQ(sim.stats().generated, 0u);
  EXPECT_EQ(sim.queued(), 0u);
  // Empty queues must export *exactly* 1.0 — this is what makes zero-load
  // delay-mode ant routing bit-identical to hop-count mode.
  for (double d : sim.hop_delays()) EXPECT_EQ(d, 1.0);
}

TEST(FlowTrafficTest, DeliversOverRoutedLine) {
  LineWorld w;
  FlowTrafficSimulator sim(4, w.is_gateway, load_of(1.0), {}, Rng(2));
  for (std::size_t t = 0; t < 60; ++t) sim.step(w.graph, w.tables, t);
  sim.finish();
  const auto& s = sim.stats();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_GT(s.flows_started, 0u);
  EXPECT_EQ(s.generated, s.delivered + s.dropped() + s.in_flight);
}

TEST(FlowTrafficTest, ConservationHoldsEveryStep) {
  LineWorld w;
  LinkQueueConfig queue;
  queue.link_capacity = 1;
  queue.queue_capacity = 4;  // tight queue: forces queue-full drops too
  FlowTrafficSimulator sim(4, w.is_gateway, load_of(2.0), queue, Rng(3));
  for (std::size_t t = 0; t < 80; ++t) {
    sim.step(w.graph, w.tables, t);
    const auto& s = sim.stats();
    ASSERT_EQ(s.generated, s.delivered + s.dropped() + sim.queued())
        << "packets must be conserved at step " << t;
  }
  EXPECT_GT(sim.stats().dropped_queue_full, 0u);
}

TEST(FlowTrafficTest, ConservationHoldsAfterMidRunReset) {
  LineWorld w;
  FlowTrafficSimulator sim(4, w.is_gateway, load_of(1.5), {}, Rng(4));
  for (std::size_t t = 0; t < 10; ++t) sim.step(w.graph, w.tables, t);
  sim.reset_stats();
  // Packets queued at the reset are re-counted into generated, so the
  // invariant holds at every post-reset boundary.
  EXPECT_EQ(sim.stats().generated, sim.queued());
  for (std::size_t t = 10; t < 40; ++t) {
    sim.step(w.graph, w.tables, t);
    const auto& s = sim.stats();
    ASSERT_EQ(s.generated, s.delivered + s.dropped() + sim.queued())
        << "post-reset conservation must hold at step " << t;
  }
}

TEST(FlowTrafficTest, PeerToPeerSessionsDeliver) {
  LineWorld w;
  auto cfg = load_of(1.0);
  cfg.pattern = TrafficPattern::kPeerToPeer;
  FlowTrafficSimulator sim(4, w.is_gateway, cfg, {}, Rng(5));
  for (std::size_t t = 0; t < 60; ++t) sim.step(w.graph, w.tables, t);
  sim.finish();
  const auto& s = sim.stats();
  EXPECT_GT(s.delivered, 0u);
  EXPECT_EQ(s.generated, s.delivered + s.dropped() + s.in_flight);
}

TEST(FlowTrafficTest, QueueBuildupRaisesHopDelay) {
  LineWorld w;
  LinkQueueConfig queue;
  queue.link_capacity = 1;
  queue.queue_capacity = 100;
  FlowTrafficSimulator sim(4, w.is_gateway, load_of(2.0), queue, Rng(6));
  for (std::size_t t = 0; t < 30; ++t) sim.step(w.graph, w.tables, t);
  // Node 1 funnels everything toward the gateway at 1 pkt/step while ~6
  // pkts/step arrive network-wide: its queue, and hence its exported hop
  // delay 1 + queued/capacity, must have grown.
  EXPECT_GT(sim.hop_delays()[1], 1.0);
}

TEST(FlowTrafficStatsTest, LatencyQuantileIsExact) {
  FlowTrafficStats s;
  s.delivered = 10;
  s.latency_histogram = {0, 5, 3, 2};  // 5 pkts at 1 step, 3 at 2, 2 at 3
  EXPECT_EQ(s.latency_quantile(0.5), 1u);
  EXPECT_EQ(s.latency_quantile(0.8), 2u);
  EXPECT_EQ(s.latency_quantile(0.9), 3u);
  EXPECT_EQ(s.latency_quantile(1.0), 3u);
  EXPECT_EQ(s.latency_quantile(0.0), 1u);  // rank clamps to 1
  EXPECT_EQ(FlowTrafficStats{}.latency_quantile(0.99), 0u);
}

TEST(FlowTrafficStatsTest, MergeIsExactAndOrderIndependent) {
  FlowTrafficStats a;
  a.delivered = 2;
  a.latency_sum = 5;
  a.latency_histogram = {0, 1, 1};
  FlowTrafficStats b;
  b.delivered = 1;
  b.dropped_ttl = 3;
  b.latency_sum = 4;
  b.latency_histogram = {0, 0, 0, 0, 1};
  FlowTrafficStats ab = a;
  ab += b;
  FlowTrafficStats ba = b;
  ba += a;
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab.delivered, 3u);
  EXPECT_EQ(ab.dropped(), 3u);
  EXPECT_EQ(ab.latency_histogram.size(), 5u);
  EXPECT_EQ(ab.latency_quantile(1.0), 4u);
}

// At zero offered load every queue is empty, every exported hop delay is
// exactly 1.0, and a backward ant's trip time equals its hop count — so
// delay-mode reinforcement (with or without the balancer, whose bias is
// the exact identity under zero traffic) must reproduce hop-count mode
// bit for bit. This is the golden-equivalence guarantee that lets kDelay
// ship without perturbing any historical result.
TEST(TrafficTaskTest, ZeroLoadDelayModeMatchesHopCountBitForBit) {
  const RoutingScenario scenario = small_scenario();
  const auto hop = run_traffic_task(
      scenario, small_task(0.0, AntReinforcement::kHopCount), Rng(7));
  const auto delay = run_traffic_task(
      scenario, small_task(0.0, AntReinforcement::kDelay), Rng(7));
  auto balanced_task = small_task(0.0, AntReinforcement::kDelay);
  balanced_task.balance_gateways = true;
  const auto balanced = run_traffic_task(scenario, balanced_task, Rng(7));

  for (const auto* other : {&delay, &balanced}) {
    EXPECT_EQ(hop.traffic, other->traffic);
    EXPECT_EQ(hop.mean_connectivity, other->mean_connectivity);
    EXPECT_EQ(hop.ants_launched, other->ants_launched);
    EXPECT_EQ(hop.ants_completed, other->ants_completed);
    EXPECT_EQ(hop.ant_hops, other->ant_hops);
  }
  EXPECT_EQ(hop.traffic.generated, 0u);
}

TEST(TrafficTaskTest, LatencyGrowsWithOfferedLoad) {
  const RoutingScenario scenario = small_scenario();
  const auto light = run_traffic_task(
      scenario, small_task(0.05, AntReinforcement::kDelay), Rng(8));
  const auto heavy = run_traffic_task(
      scenario, small_task(0.8, AntReinforcement::kDelay), Rng(8));
  ASSERT_GT(light.traffic.delivered, 0u);
  ASSERT_GT(heavy.traffic.delivered, 0u);
  // Queueing delay is the whole point of the model: pushing ~16x the load
  // through the same links must cost latency, body and tail alike.
  EXPECT_GT(heavy.traffic.mean_latency(), light.traffic.mean_latency());
  EXPECT_GE(heavy.traffic.latency_quantile(0.95),
            light.traffic.latency_quantile(0.95));
}

TEST(TrafficExperimentTest, BitIdenticalAcrossThreadCounts) {
  const RoutingScenario scenario = small_scenario();
  const auto task = small_task(0.3, AntReinforcement::kDelay);
  const TrafficSummary t1 =
      run_traffic_experiment(scenario, task, 5, 1000, /*threads=*/1);
  for (int threads : {2, 7}) {
    const TrafficSummary tn =
        run_traffic_experiment(scenario, task, 5, 1000, threads);
    EXPECT_EQ(t1.traffic, tn.traffic) << "threads=" << threads;
    EXPECT_EQ(t1.mean_connectivity.mean(), tn.mean_connectivity.mean());
    EXPECT_EQ(t1.delivery_ratio.mean(), tn.delivery_ratio.mean());
    EXPECT_EQ(t1.offered_load.mean(), tn.offered_load.mean());
    EXPECT_EQ(t1.carried_load.mean(), tn.carried_load.mean());
  }
}

}  // namespace
}  // namespace agentnet
