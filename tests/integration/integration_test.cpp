// End-to-end integration tests: the paper's headline qualitative results,
// at reduced scale so they run in CI time. The full-scale reproductions
// live in bench/ (see EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "aco/ant_routing_task.hpp"
#include "adv/dv_agent.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"
#include "flooding/link_state.hpp"

namespace agentnet {
namespace {

// ---- Mapping scenario -----------------------------------------------------

class MappingIntegration : public ::testing::Test {
 protected:
  static const GeneratedNetwork& network() {
    static const GeneratedNetwork net = [] {
      TargetEdgeParams params;
      params.geometry.node_count = 100;
      // Same density regime as the paper network (mean out-degree ≈ 14).
      params.target_edges = 1440;
      params.tolerance = 0.03;
      return generate_target_edge_network(params, 77);
    }();
    return net;
  }

  static double mean_finish(MappingPolicy policy, StigmergyMode mode,
                            int population, int runs = 6) {
    MappingTaskConfig task;
    task.population = population;
    task.agent = {policy, mode};
    task.record_series = false;
    const auto summary = run_mapping_experiment(network(), task, runs, 500);
    EXPECT_EQ(summary.unfinished, 0);
    return summary.finishing_time.mean();
  }
};

TEST_F(MappingIntegration, ConscientiousBeatsRandomSingleAgent) {
  // Paper Fig. 1: conscientious ≈ 2-3x faster than random.
  const double random_t = mean_finish(MappingPolicy::kRandom,
                                      StigmergyMode::kOff, 1);
  const double consc_t = mean_finish(MappingPolicy::kConscientious,
                                     StigmergyMode::kOff, 1);
  EXPECT_LT(consc_t, random_t);
  EXPECT_LT(consc_t * 1.5, random_t) << "expect a clear gap, not a tie";
}

TEST_F(MappingIntegration, StigmergyImprovesBothSingleAgents) {
  // Paper Fig. 2 vs Fig. 1. The random-agent effect is large; the
  // conscientious-agent effect is a few percent, so it gets more runs and
  // a non-inferiority margin to keep the test deterministic-by-seed yet
  // robust to the small sample.
  EXPECT_LT(mean_finish(MappingPolicy::kRandom, StigmergyMode::kFilterFirst,
                        1, 40),
            mean_finish(MappingPolicy::kRandom, StigmergyMode::kOff, 1, 40));
  EXPECT_LT(mean_finish(MappingPolicy::kConscientious,
                        StigmergyMode::kFilterFirst, 1, 24),
            mean_finish(MappingPolicy::kConscientious, StigmergyMode::kOff,
                        1, 24) *
                1.02);
}

TEST_F(MappingIntegration, CooperationGivesLargeSpeedup) {
  // Paper Fig. 3: a team of 15 finishes far faster than a single agent.
  // At 100 nodes the finish is straggler-bound — the mean knowledge curve
  // saturates early, but finishing waits for the last agent's last meeting
  // — so the speedup is far below the paper's 300-node ratio; the
  // full-scale run lives in bench/fig03.
  const double solo = mean_finish(MappingPolicy::kConscientious,
                                  StigmergyMode::kOff, 1);
  const double team = mean_finish(MappingPolicy::kConscientious,
                                  StigmergyMode::kOff, 15);
  EXPECT_LT(team * 1.25, solo);
}

TEST_F(MappingIntegration, StigmergicTeamBeatsPlainTeam) {
  // Paper Fig. 4: ~10% faster at population 15.
  const double plain = mean_finish(MappingPolicy::kConscientious,
                                   StigmergyMode::kOff, 15, 10);
  const double stig = mean_finish(MappingPolicy::kConscientious,
                                  StigmergyMode::kFilterFirst, 15, 10);
  EXPECT_LT(stig, plain);
}

TEST_F(MappingIntegration, StigmergicSuperBeatsConscientiousAtHighPop) {
  // Paper Fig. 6: with stigmergy, super-conscientious wins at all
  // population sizes, including large ones where the plain variant loses.
  const double consc = mean_finish(MappingPolicy::kConscientious,
                                   StigmergyMode::kFilterFirst, 30, 10);
  const double super_c = mean_finish(MappingPolicy::kSuperConscientious,
                                     StigmergyMode::kFilterFirst, 30, 10);
  EXPECT_LE(super_c, consc * 1.05)
      << "stigmergic super-conscientious must not lose at high population";
}

// ---- Routing scenario -------------------------------------------------------

class RoutingIntegration : public ::testing::Test {
 protected:
  static const RoutingScenario& scenario() {
    static const RoutingScenario s = [] {
      RoutingScenarioParams params;
      params.node_count = 120;
      params.gateway_count = 6;
      params.bounds = {{0.0, 0.0}, {700.0, 700.0}};
      params.node_range = 110.0;
      params.trace_steps = 150;
      return RoutingScenario(params, 88);
    }();
    return s;
  }

  static double mean_conn(RoutingPolicy policy, bool communicate,
                          StigmergyMode mode = StigmergyMode::kOff,
                          int population = 40, std::size_t history = 10,
                          int runs = 5) {
    RoutingTaskConfig task;
    task.population = population;
    task.agent.policy = policy;
    task.agent.history_size = history;
    task.agent.communicate = communicate;
    task.agent.stigmergy = mode;
    task.steps = 150;
    task.measure_from = 75;
    const auto summary = run_routing_experiment(scenario(), task, runs, 900);
    return summary.mean_connectivity.mean();
  }
};

TEST_F(RoutingIntegration, OldestNodeBeatsRandomEverywhere) {
  // Paper: "for all parameter setting the oldest-node agent outperforms
  // the random agent".
  for (int pop : {15, 40}) {
    EXPECT_GT(mean_conn(RoutingPolicy::kOldestNode, false,
                        StigmergyMode::kOff, pop),
              mean_conn(RoutingPolicy::kRandom, false, StigmergyMode::kOff,
                        pop))
        << "population " << pop;
  }
}

TEST_F(RoutingIntegration, PopulationMonotonicity) {
  // Paper Fig. 8: more agents → higher connectivity.
  const double lo = mean_conn(RoutingPolicy::kOldestNode, false,
                              StigmergyMode::kOff, 8);
  const double hi = mean_conn(RoutingPolicy::kOldestNode, false,
                              StigmergyMode::kOff, 80);
  EXPECT_GT(hi, lo);
}

TEST_F(RoutingIntegration, HistoryMonotonicity) {
  // Paper Fig. 9: more history → higher connectivity.
  const double lo = mean_conn(RoutingPolicy::kOldestNode, false,
                              StigmergyMode::kOff, 40, 3);
  const double hi = mean_conn(RoutingPolicy::kOldestNode, false,
                              StigmergyMode::kOff, 40, 30);
  EXPECT_GT(hi, lo);
}

TEST_F(RoutingIntegration, VisitingHelpsRandomAgents) {
  // Paper Fig. 10.
  EXPECT_GT(mean_conn(RoutingPolicy::kRandom, true),
            mean_conn(RoutingPolicy::kRandom, false));
}

TEST_F(RoutingIntegration, VisitingHurtsOldestNodeAgents) {
  // Paper Fig. 11: meetings make oldest-node agents identical → chasing.
  EXPECT_LT(mean_conn(RoutingPolicy::kOldestNode, true),
            mean_conn(RoutingPolicy::kOldestNode, false));
}

TEST_F(RoutingIntegration, StigmergyRescuesOldestNodeWithVisiting) {
  // Paper's future work (our extension A): footprints disperse the
  // identical agents again.
  EXPECT_GT(mean_conn(RoutingPolicy::kOldestNode, true,
                      StigmergyMode::kFilterFirst),
            mean_conn(RoutingPolicy::kOldestNode, true, StigmergyMode::kOff));
}

// ---- Baseline systems (extF / extG / extH shapes at small scale) -----------

TEST_F(RoutingIntegration, BaselinesAchieveComparableConnectivity) {
  const double agents = mean_conn(RoutingPolicy::kOldestNode, false);
  AntRoutingTaskConfig ant_cfg;
  ant_cfg.steps = 150;
  ant_cfg.measure_from = 75;
  double ants = 0.0;
  DvRoutingTaskConfig dv_cfg;
  dv_cfg.population = 40;
  dv_cfg.steps = 150;
  dv_cfg.measure_from = 75;
  double dv = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    ants += run_ant_routing_task(scenario(), ant_cfg, Rng(900 + s))
                .mean_connectivity /
            3.0;
    dv += run_dv_routing_task(scenario(), dv_cfg, Rng(900 + s))
              .mean_connectivity /
          3.0;
  }
  // All three systems must be in the same league; historically ants and DV
  // modestly beat the paper's minimal walkers.
  EXPECT_GT(ants, agents * 0.8);
  EXPECT_GT(dv, agents * 0.8);
  EXPECT_LT(ants, 1.0);
  EXPECT_LT(dv, 1.0);
}

TEST_F(MappingIntegration, FloodingConvergesFasterButAgentsCostFewerBytes) {
  // extG's shape: flooding wins wall-clock by a wide margin; the agents'
  // migration traffic is not orders of magnitude worse.
  LinkStateFlooding flood(network().graph.node_count(), {});
  std::size_t flood_steps = 0;
  while (flood_steps < 500 && !flood.converged(network().graph)) {
    flood.step(network().graph, flood_steps);
    ++flood_steps;
  }
  ASSERT_TRUE(flood.converged(network().graph));

  MappingTaskConfig task;
  task.population = 15;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  task.record_series = false;
  World world = World::frozen(network());
  const auto agents = run_mapping_task(world, task, Rng(77));
  ASSERT_TRUE(agents.finished);

  EXPECT_LT(flood_steps * 3, agents.finishing_time)
      << "flooding should win time by at least 3x";
  EXPECT_LT(agents.migration_bytes, flood.bytes_sent() * 10)
      << "agents must stay within an order of magnitude in bytes";
}

}  // namespace
}  // namespace agentnet
