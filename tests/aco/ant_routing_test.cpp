#include "aco/ant_routing.hpp"
#include "aco/ant_routing_task.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "routing/connectivity.hpp"

namespace agentnet {
namespace {

// Line 0(gw)-1-2-3-4, bidirectional.
struct LineWorld {
  Graph graph{5};
  std::vector<bool> is_gateway{true, false, false, false, false};
  LineWorld() {
    for (NodeId i = 0; i + 1 < 5; ++i) graph.add_undirected_edge(i, i + 1);
  }
};

AntRoutingConfig eager() {
  AntRoutingConfig cfg;
  cfg.launch_probability = 1.0;
  return cfg;
}

TEST(AntRoutingTest, RejectsBadConfig) {
  AntRoutingConfig bad;
  bad.launch_probability = 2.0;
  EXPECT_THROW(AntRoutingSystem(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  bad = AntRoutingConfig{};
  bad.evaporation = 1.0;
  EXPECT_THROW(AntRoutingSystem(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  bad = AntRoutingConfig{};
  bad.exploration = 0.0;
  EXPECT_THROW(AntRoutingSystem(4, std::vector<bool>(4, false), bad, Rng(1)),
               ConfigError);
  EXPECT_THROW(AntRoutingSystem(4, std::vector<bool>(3, false),
                                AntRoutingConfig{}, Rng(1)),
               ConfigError);
}

TEST(AntRoutingTest, PheromoneStartsEmpty) {
  LineWorld w;
  AntRoutingSystem system(5, w.is_gateway, eager(), Rng(1));
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = 0; v < 5; ++v)
      EXPECT_DOUBLE_EQ(system.pheromone(u, v), 0.0);
  EXPECT_FALSE(system.snapshot_tables(0).entry(1).valid());
}

TEST(AntRoutingTest, ConvergesToGatewayRoutesOnLine) {
  LineWorld w;
  AntRoutingSystem system(5, w.is_gateway, eager(), Rng(2));
  for (std::size_t t = 0; t < 200; ++t) system.step(w.graph, t);
  // Every node's strongest pheromone must point toward the gateway.
  EXPECT_GT(system.pheromone(1, 0), system.pheromone(1, 2));
  EXPECT_GT(system.pheromone(2, 1), system.pheromone(2, 3));
  EXPECT_GT(system.pheromone(3, 2), system.pheromone(3, 4));
  const RoutingTables tables = system.snapshot_tables(200);
  const auto conn = measure_connectivity(w.graph, tables, w.is_gateway);
  EXPECT_EQ(conn.connected, 5u);
}

TEST(AntRoutingTest, AntsCompleteRoundTrips) {
  LineWorld w;
  AntRoutingSystem system(5, w.is_gateway, eager(), Rng(3));
  for (std::size_t t = 0; t < 100; ++t) system.step(w.graph, t);
  EXPECT_GT(system.ants_launched(), 0u);
  EXPECT_GT(system.ants_completed(), 0u);
  EXPECT_LE(system.ants_completed(), system.ants_launched());
  EXPECT_GT(system.ant_hops(), system.ants_completed());
  EXPECT_GT(system.control_bytes(), system.ant_hops() * 16);
}

TEST(AntRoutingTest, EvaporationFadesStaleRoutes) {
  LineWorld w;
  auto cfg = eager();
  cfg.evaporation = 0.2;
  AntRoutingSystem system(5, w.is_gateway, cfg, Rng(4));
  for (std::size_t t = 0; t < 100; ++t) system.step(w.graph, t);
  const double before = system.pheromone(1, 0);
  ASSERT_GT(before, 0.0);
  // Cut node 1 off entirely; no reinforcement can reach it, so its
  // pheromone must decay toward zero.
  Graph cut(5);
  cut.add_undirected_edge(2, 3);
  cut.add_undirected_edge(3, 4);
  auto quiet = cfg;
  (void)quiet;
  for (std::size_t t = 100; t < 300; ++t) system.step(cut, t);
  EXPECT_LT(system.pheromone(1, 0), before * 0.01);
}

TEST(AntRoutingTest, DeadEndAntsDie) {
  // Star with no gateway anywhere: every ant eventually dies, none complete.
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(0, 2);
  g.add_undirected_edge(0, 3);
  AntRoutingSystem system(4, std::vector<bool>(4, false), eager(), Rng(5));
  for (std::size_t t = 0; t < 100; ++t) system.step(g, t);
  EXPECT_EQ(system.ants_completed(), 0u);
  // Loop avoidance kills ants fast; the population must not grow without
  // bound.
  EXPECT_LT(system.active_ants(), 4096u);
}

TEST(AntRoutingTest, TtlBoundsForwardWalks) {
  LineWorld w;
  auto cfg = eager();
  cfg.ant_ttl = 1;  // only the gateway's direct neighbour can ever succeed
  AntRoutingSystem system(5, w.is_gateway, cfg, Rng(6));
  for (std::size_t t = 0; t < 100; ++t) system.step(w.graph, t);
  EXPECT_GT(system.pheromone(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(system.pheromone(3, 2), 0.0);
}

TEST(AntRoutingTest, MaxAntsCapsPopulation) {
  LineWorld w;
  auto cfg = eager();
  cfg.max_ants = 3;
  AntRoutingSystem system(5, w.is_gateway, cfg, Rng(7));
  for (std::size_t t = 0; t < 50; ++t) {
    system.step(w.graph, t);
    EXPECT_LE(system.active_ants(), 3u);
  }
}

TEST(AntRoutingTest, DeterministicForSameSeed) {
  LineWorld w;
  AntRoutingSystem a(5, w.is_gateway, eager(), Rng(8));
  AntRoutingSystem b(5, w.is_gateway, eager(), Rng(8));
  for (std::size_t t = 0; t < 100; ++t) {
    a.step(w.graph, t);
    b.step(w.graph, t);
  }
  EXPECT_EQ(a.ant_hops(), b.ant_hops());
  for (NodeId u = 0; u < 5; ++u)
    for (NodeId v = 0; v < 5; ++v)
      EXPECT_DOUBLE_EQ(a.pheromone(u, v), b.pheromone(u, v));
}

TEST(AntRoutingTest, GatewaysDoNotLaunch) {
  Graph g(2);
  g.add_undirected_edge(0, 1);
  AntRoutingSystem system(2, {true, true}, eager(), Rng(9));
  for (std::size_t t = 0; t < 20; ++t) system.step(g, t);
  EXPECT_EQ(system.ants_launched(), 0u);
}

TEST(AntRoutingTaskTest, RunsOnScenarioAndConnects) {
  RoutingScenarioParams params;
  params.node_count = 80;
  params.gateway_count = 5;
  params.bounds = {{0.0, 0.0}, {500.0, 500.0}};
  params.node_range = 95.0;
  params.trace_steps = 120;
  const RoutingScenario scenario(params, 31);
  AntRoutingTaskConfig cfg;
  cfg.steps = 120;
  cfg.measure_from = 60;
  const auto result = run_ant_routing_task(scenario, cfg, Rng(1));
  ASSERT_EQ(result.connectivity.size(), 120u);
  EXPECT_GT(result.mean_connectivity, 0.2);
  EXPECT_GT(result.ants_completed, 0u);
  EXPECT_GT(result.control_bytes, 0u);
}

TEST(AntRoutingTaskTest, Deterministic) {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {400.0, 400.0}};
  params.trace_steps = 60;
  const RoutingScenario scenario(params, 32);
  AntRoutingTaskConfig cfg;
  cfg.steps = 60;
  cfg.measure_from = 30;
  const auto a = run_ant_routing_task(scenario, cfg, Rng(2));
  const auto b = run_ant_routing_task(scenario, cfg, Rng(2));
  EXPECT_EQ(a.connectivity, b.connectivity);
  EXPECT_EQ(a.control_bytes, b.control_bytes);
}

}  // namespace
}  // namespace agentnet
