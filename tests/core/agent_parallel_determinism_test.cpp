// Acceptance suite for the intra-run agent engine (ISSUE 10): for every
// task family — mapping, routing (+traffic), ACO, DV, flow traffic — and
// under the full chaos fault plan, AGENTNET_AGENT_THREADS must change
// wall-clock only. Results, counter totals (minus bookkeeping), the full
// trace event sequence and checkpoint payload bytes are compared exactly
// across threads {1, 2, 7}: the serial path, an even split and a worker
// count that does not divide the typical work size. threads = 1 must also
// keep the engine fully inert (zero parallel dispatches).
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "aco/ant_routing_task.hpp"
#include "adv/dv_agent.hpp"
#include "core/mapping_task.hpp"
#include "core/routing_task.hpp"
#include "experiments/traffic_experiments.hpp"
#include "net/generators.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {
namespace {

GeneratedNetwork tiny_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 260;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 3);
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

/// Everything the plan can throw at a run at once: topology weather,
/// transit loss, corrupted exchanges and both resilience policies.
FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.agent_loss_probability = 0.03;
  plan.gateway_respawn_probability = 0.1;
  plan.node_crash_probability = 0.03;
  plan.crash_persistence = 8;
  plan.burst_drop_probability = 0.02;
  plan.burst_persistence = 4;
  plan.exchange_failure_probability = 0.15;
  plan.watchdog_ttl = 25;
  plan.knowledge_ttl = 40;
  return plan;
}

/// Per-run telemetry captured alongside a task result. Bookkeeping
/// counters (checkpoint_*, agent_parallel_batches) are wall-clock-only by
/// contract and zeroed before comparison; `batches` keeps the raw value so
/// tests can assert the engine actually dispatched (or stayed inert).
struct Observed {
  obs::MetricsSnapshot counters{};
  std::vector<obs::TraceEvent> events;
  std::uint64_t batches = 0;
};

template <typename Fn>
auto observe(Observed& out, Fn&& fn) {
  obs::RunObs slot;
  slot.trace.enable();
  auto result = [&] {
    obs::ObsRunScope scope(slot);
    return fn();
  }();
  out.counters = obs::snapshot(slot.counters);
  out.batches = out.counters.value(obs::Counter::kAgentParallelBatches);
  for (std::size_t i = 0; i < obs::kCounterCount; ++i)
    if (obs::is_bookkeeping_counter(static_cast<obs::Counter>(i)))
      out.counters.values[i] = 0;
  out.events = slot.trace.events();
  return result;
}

void expect_identical(const Observed& test, const Observed& reference) {
  for (std::size_t i = 0; i < obs::kCounterCount; ++i)
    EXPECT_EQ(test.counters.values[i], reference.counters.values[i])
        << "counter " << obs::counter_name(static_cast<obs::Counter>(i));
  ASSERT_EQ(test.events.size(), reference.events.size());
  for (std::size_t i = 0; i < test.events.size(); ++i)
    ASSERT_TRUE(test.events[i] == reference.events[i])
        << "trace diverges at event " << i;
}

const std::size_t kThreadSweep[] = {2, 7};

TEST(AgentParallelDeterminismTest, MappingBitIdenticalUnderChaos) {
  const auto net = tiny_network();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    MappingTaskConfig task;
    task.population = 6;
    task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    task.advance_world = true;  // topology weather needs a moving clock
    task.max_steps = 300;
    task.faults = chaos_plan();
    task.faults.gateway_respawn_probability = 0.0;  // mapping: no gateways
    task.agent_parallel.threads = threads;
    return observe(obs_out, [&] {
      World world = World::frozen(net);
      return run_mapping_task(world, task, Rng(11));
    });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  EXPECT_EQ(serial_obs.batches, 0u) << "threads=1 must not dispatch";
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u) << "engine never engaged";
    EXPECT_EQ(parallel.finished, serial.finished);
    EXPECT_EQ(parallel.finishing_time, serial.finishing_time);
    EXPECT_EQ(parallel.mean_knowledge, serial.mean_knowledge);
    EXPECT_EQ(parallel.min_knowledge, serial.min_knowledge);
    EXPECT_EQ(parallel.migration_bytes, serial.migration_bytes);
    EXPECT_EQ(parallel.agents_lost, serial.agents_lost);
    EXPECT_EQ(parallel.agents_respawned, serial.agents_respawned);
    EXPECT_EQ(parallel.final_population, serial.final_population);
    expect_identical(obs, serial_obs);
  }
}

void expect_identical(const RoutingTaskResult& test,
                      const RoutingTaskResult& reference) {
  EXPECT_EQ(test.connectivity, reference.connectivity);
  EXPECT_EQ(test.oracle, reference.oracle);
  EXPECT_EQ(test.mean_connectivity, reference.mean_connectivity);
  EXPECT_EQ(test.stddev_connectivity, reference.stddev_connectivity);
  EXPECT_EQ(test.migration_bytes, reference.migration_bytes);
  EXPECT_EQ(test.agents_lost, reference.agents_lost);
  EXPECT_EQ(test.agents_respawned, reference.agents_respawned);
  EXPECT_EQ(test.final_population, reference.final_population);
  ASSERT_EQ(test.traffic_stats.has_value(),
            reference.traffic_stats.has_value());
  if (test.traffic_stats) {
    EXPECT_EQ(test.traffic_stats->generated,
              reference.traffic_stats->generated);
    EXPECT_EQ(test.traffic_stats->delivered,
              reference.traffic_stats->delivered);
    EXPECT_EQ(test.traffic_stats->dropped_no_route,
              reference.traffic_stats->dropped_no_route);
    EXPECT_EQ(test.traffic_stats->dropped_link_down,
              reference.traffic_stats->dropped_link_down);
    EXPECT_EQ(test.traffic_stats->dropped_ttl,
              reference.traffic_stats->dropped_ttl);
    EXPECT_EQ(test.traffic_stats->dropped_queue_full,
              reference.traffic_stats->dropped_queue_full);
    EXPECT_EQ(test.traffic_stats->latency.count(),
              reference.traffic_stats->latency.count());
    EXPECT_EQ(test.traffic_stats->latency.mean(),
              reference.traffic_stats->latency.mean());
  }
}

RoutingTaskConfig routing_chaos_config(std::size_t threads,
                                       StigmergyMode stigmergy) {
  RoutingTaskConfig task;
  task.population = 15;
  task.agent.communicate = true;
  task.agent.stigmergy = stigmergy;
  task.steps = 60;
  task.measure_from = 30;
  task.record_oracle = true;
  task.traffic = TrafficConfig{};
  task.faults = chaos_plan();
  task.agent_parallel.threads = threads;
  return task;
}

TEST(AgentParallelDeterminismTest, RoutingBitIdenticalUnderChaos) {
  const auto scenario = tiny_scenario();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    const auto task = routing_chaos_config(threads, StigmergyMode::kOff);
    return observe(obs_out,
                   [&] { return run_routing_task(scenario, task, Rng(23)); });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  EXPECT_EQ(serial_obs.batches, 0u);
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u);
    expect_identical(parallel, serial);
    expect_identical(obs, serial_obs);
  }
}

TEST(AgentParallelDeterminismTest, StigmergicRoutingStaysIdentical) {
  // Footprint-guided decide reads marks other agents wrote this step, so
  // the engine must fall back to the serial decide loop — and still match
  // the threads=1 run bit for bit.
  const auto scenario = tiny_scenario();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    const auto task =
        routing_chaos_config(threads, StigmergyMode::kFilterFirst);
    return observe(obs_out,
                   [&] { return run_routing_task(scenario, task, Rng(29)); });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u);  // arrive/exchange/measure still fan out
    expect_identical(parallel, serial);
    expect_identical(obs, serial_obs);
  }
}

TEST(AgentParallelDeterminismTest, AntRoutingBitIdenticalUnderChaos) {
  const auto scenario = tiny_scenario();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    AntRoutingTaskConfig task;
    task.steps = 60;
    task.measure_from = 30;
    task.faults = chaos_plan();
    task.faults.exchange_failure_probability = 0.0;  // ants never meet
    task.faults.watchdog_ttl = 0;
    task.faults.knowledge_ttl = 0;
    task.agent_parallel.threads = threads;
    return observe(obs_out, [&] {
      return run_ant_routing_task(scenario, task, Rng(31));
    });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  EXPECT_EQ(serial_obs.batches, 0u);
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u);
    EXPECT_EQ(parallel.connectivity, serial.connectivity);
    EXPECT_EQ(parallel.mean_connectivity, serial.mean_connectivity);
    EXPECT_EQ(parallel.stddev_connectivity, serial.stddev_connectivity);
    EXPECT_EQ(parallel.ant_hops, serial.ant_hops);
    EXPECT_EQ(parallel.control_bytes, serial.control_bytes);
    EXPECT_EQ(parallel.ants_launched, serial.ants_launched);
    EXPECT_EQ(parallel.ants_completed, serial.ants_completed);
    expect_identical(obs, serial_obs);
  }
}

TEST(AgentParallelDeterminismTest, DvRoutingBitIdenticalUnderChaos) {
  const auto scenario = tiny_scenario();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    DvRoutingTaskConfig task;
    task.population = 20;
    task.steps = 60;
    task.measure_from = 30;
    task.faults = chaos_plan();
    task.faults.gateway_respawn_probability = 0.0;  // DV: no respawn path
    task.faults.exchange_failure_probability = 0.0;
    task.faults.watchdog_ttl = 0;
    task.faults.knowledge_ttl = 0;
    task.agent_parallel.threads = threads;
    return observe(obs_out, [&] {
      return run_dv_routing_task(scenario, task, Rng(37));
    });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  EXPECT_EQ(serial_obs.batches, 0u);
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u);
    EXPECT_EQ(parallel.connectivity, serial.connectivity);
    EXPECT_EQ(parallel.mean_connectivity, serial.mean_connectivity);
    EXPECT_EQ(parallel.stddev_connectivity, serial.stddev_connectivity);
    EXPECT_EQ(parallel.migration_bytes, serial.migration_bytes);
    EXPECT_EQ(parallel.agents_lost, serial.agents_lost);
    EXPECT_EQ(parallel.final_population, serial.final_population);
    expect_identical(obs, serial_obs);
  }
}

TEST(AgentParallelDeterminismTest, FlowTrafficBitIdenticalUnderChaos) {
  const auto scenario = tiny_scenario();
  const auto run_at = [&](std::size_t threads, Observed& obs_out) {
    TrafficTaskConfig task;
    task.steps = 60;
    task.measure_from = 30;
    task.balance_gateways = true;
    task.workload.offered_load = 0.4;
    task.faults = chaos_plan();
    task.faults.gateway_respawn_probability = 0.0;
    task.faults.exchange_failure_probability = 0.0;
    task.faults.watchdog_ttl = 0;
    task.faults.knowledge_ttl = 0;
    task.agent_parallel.threads = threads;
    return observe(obs_out,
                   [&] { return run_traffic_task(scenario, task, Rng(41)); });
  };
  Observed serial_obs;
  const auto serial = run_at(1, serial_obs);
  EXPECT_EQ(serial_obs.batches, 0u);
  for (const std::size_t threads : kThreadSweep) {
    SCOPED_TRACE(threads);
    Observed obs;
    const auto parallel = run_at(threads, obs);
    EXPECT_GT(obs.batches, 0u);
    EXPECT_EQ(parallel.traffic.generated, serial.traffic.generated);
    EXPECT_EQ(parallel.traffic.delivered, serial.traffic.delivered);
    EXPECT_EQ(parallel.traffic.dropped(), serial.traffic.dropped());
    EXPECT_EQ(parallel.traffic.in_flight, serial.traffic.in_flight);
    EXPECT_EQ(parallel.traffic.latency_sum, serial.traffic.latency_sum);
    EXPECT_EQ(parallel.traffic.latency_histogram,
              serial.traffic.latency_histogram);
    EXPECT_EQ(parallel.mean_connectivity, serial.mean_connectivity);
    EXPECT_EQ(parallel.offered_load, serial.offered_load);
    EXPECT_EQ(parallel.carried_load, serial.carried_load);
    EXPECT_EQ(parallel.ants_launched, serial.ants_launched);
    EXPECT_EQ(parallel.ants_completed, serial.ants_completed);
    EXPECT_EQ(parallel.ant_hops, serial.ant_hops);
    expect_identical(obs, serial_obs);
  }
}

TEST(AgentParallelDeterminismTest, CheckpointBytesIdenticalAcrossThreads) {
  // The checkpoint payload serializes the entire evolving run state —
  // world clock, tables, agents, caches, telemetry. Byte-equal payloads at
  // every autosave step are the strongest single probe that the engine
  // never perturbed anything.
  const auto scenario = tiny_scenario();
  const auto checkpoint_at = [&](std::size_t threads,
                                 const std::string& path) {
    const snapshot::ExperimentIdentity identity{
        "routing", 1, 23, scenario.node_count(), 60};
    snapshot::ExperimentCheckpointer saver(identity, path, 20, "");
    auto task = routing_chaos_config(threads, StigmergyMode::kOff);
    snapshot::RunCheckpointPort port = saver.port(0);
    task.checkpoint = &port;
    obs::RunObs slot;
    slot.trace.enable();
    obs::ObsRunScope scope(slot);
    run_routing_task(scenario, task, Rng(23));
  };
  const std::string serial_path =
      ::testing::TempDir() + "/agent_par_serial.ck";
  const std::string parallel_path =
      ::testing::TempDir() + "/agent_par_parallel.ck";
  checkpoint_at(1, serial_path);
  checkpoint_at(2, parallel_path);
  const auto serial = snapshot::load_checkpoint(serial_path);
  const auto parallel = snapshot::load_checkpoint(parallel_path);
  ASSERT_EQ(serial.runs.size(), 1u);
  ASSERT_EQ(parallel.runs.size(), 1u);
  EXPECT_EQ(parallel.runs.at(0).step, serial.runs.at(0).step);
  EXPECT_TRUE(parallel.runs.at(0).payload == serial.runs.at(0).payload)
      << "checkpoint payload bytes diverge";
}

}  // namespace
}  // namespace agentnet
