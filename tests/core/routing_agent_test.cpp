#include "core/routing_agent.hpp"

#include <gtest/gtest.h>

#include <set>

namespace agentnet {
namespace {

// Line 0-1-2-3-4 (bidirectional), gateway at node 0.
Graph line_graph() {
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_undirected_edge(i, i + 1);
  return g;
}

const std::vector<bool> kGateway0{true, false, false, false, false};

RoutingAgent make_agent(RoutingPolicy policy, std::size_t history = 10,
                        NodeId start = 0, std::uint64_t seed = 1) {
  RoutingAgentConfig cfg;
  cfg.policy = policy;
  cfg.history_size = history;
  return RoutingAgent(0, start, cfg, Rng(seed));
}

TEST(RoutingAgentTest, ArriveAtGatewayRefreshesHint) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 3);
  EXPECT_TRUE(agent.hint().valid());
  EXPECT_EQ(agent.hint().gateway, 0u);
  EXPECT_EQ(agent.hint().hops, 0u);
  EXPECT_EQ(agent.hint().updated, 3u);
}

TEST(RoutingAgentTest, ArriveAtOrdinaryNodeKeepsHintInvalid) {
  auto agent = make_agent(RoutingPolicy::kRandom, 10, 2);
  agent.arrive(kGateway0, 0);
  EXPECT_FALSE(agent.hint().valid());
}

TEST(RoutingAgentTest, HintGrowsWithMoves) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);
  EXPECT_EQ(agent.hint().hops, 1u);
  EXPECT_EQ(agent.hint().next_hop, 0u);
  agent.move_to(2);
  EXPECT_EQ(agent.hint().hops, 2u);
  EXPECT_EQ(agent.hint().next_hop, 1u);
}

TEST(RoutingAgentTest, WaitingInPlaceDoesNotGrowHint) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);
  agent.move_to(1);  // stays
  EXPECT_EQ(agent.hint().hops, 1u);
}

TEST(RoutingAgentTest, HintExpiresPastHistorySize) {
  auto agent = make_agent(RoutingPolicy::kRandom, 2);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);
  agent.move_to(2);
  EXPECT_TRUE(agent.hint().valid());
  agent.move_to(3);  // hops would be 3 > history 2
  EXPECT_FALSE(agent.hint().valid());
}

TEST(RoutingAgentTest, InstallWritesReversePath) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);
  RoutingTables tables(5);
  EXPECT_TRUE(agent.install(tables, kGateway0, 1));
  const auto& e = tables.entry(1);
  EXPECT_EQ(e.next_hop, 0u);
  EXPECT_EQ(e.gateway, 0u);
  EXPECT_EQ(e.hops, 1u);
  EXPECT_EQ(e.installed_at, 1u);
}

TEST(RoutingAgentTest, NoInstallWithoutHint) {
  auto agent = make_agent(RoutingPolicy::kRandom, 10, 2);
  RoutingTables tables(5);
  EXPECT_FALSE(agent.install(tables, kGateway0, 0));
  EXPECT_FALSE(tables.entry(2).valid());
}

TEST(RoutingAgentTest, NoInstallAtGateway) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 0);
  RoutingTables tables(5);
  EXPECT_FALSE(agent.install(tables, kGateway0, 0));
}

TEST(RoutingAgentTest, HistoryRemembersVisits) {
  auto agent = make_agent(RoutingPolicy::kOldestNode, 10, 2);
  agent.arrive(kGateway0, 4);
  ASSERT_TRUE(agent.history().contains(2));
  EXPECT_EQ(agent.history().at(2), 4u);
}

TEST(RoutingAgentTest, HistoryEvictsOldestWhenFull) {
  auto agent = make_agent(RoutingPolicy::kOldestNode, 2, 0);
  agent.arrive(kGateway0, 0);  // history {0}
  agent.move_to(1);
  agent.arrive(kGateway0, 1);  // {0,1}
  agent.move_to(2);
  agent.arrive(kGateway0, 2);  // {1,2} — 0 evicted
  EXPECT_FALSE(agent.history().contains(0));
  EXPECT_TRUE(agent.history().contains(1));
  EXPECT_TRUE(agent.history().contains(2));
}

TEST(RoutingAgentTest, OldestNodePrefersNeverVisited) {
  const Graph g = line_graph();
  StigmergyBoard board(5);
  auto agent = make_agent(RoutingPolicy::kOldestNode, 10, 1);
  agent.arrive(kGateway0, 0);   // visited 1
  agent.move_to(0);
  agent.arrive(kGateway0, 1);   // visited 0
  agent.move_to(1);
  agent.arrive(kGateway0, 2);
  // At node 1, neighbours are 0 (visited t=1) and 2 (never): must pick 2.
  for (int i = 0; i < 20; ++i) EXPECT_EQ(agent.decide(g, board, 3), 2u);
}

TEST(RoutingAgentTest, OldestNodePicksOldestAmongVisited) {
  const Graph g = line_graph();
  StigmergyBoard board(5);
  auto agent = make_agent(RoutingPolicy::kOldestNode, 10, 1);
  // Visit 0 at t=0 and 2 at t=5, stand at 1.
  agent.move_to(0);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);
  agent.arrive(kGateway0, 1);
  agent.move_to(2);
  agent.arrive(kGateway0, 5);
  agent.move_to(1);
  agent.arrive(kGateway0, 6);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(agent.decide(g, board, 7), 0u);
}

TEST(RoutingAgentTest, ForgettingMakesNodeAttractiveAgain) {
  const Graph g = line_graph();
  StigmergyBoard board(5);
  auto agent = make_agent(RoutingPolicy::kOldestNode, 1, 1);
  // History of size 1: visiting 2 evicts 0.
  agent.move_to(0);
  agent.arrive(kGateway0, 0);
  agent.move_to(2);
  agent.arrive(kGateway0, 1);  // history {2}
  agent.move_to(1);
  agent.arrive(kGateway0, 2);  // history {1}
  // At 1: neighbour 0 forgotten (never in history now), 2 remembered? also
  // evicted. Both forgotten → either acceptable; just ensure no crash and a
  // neighbour is returned.
  const NodeId target = agent.decide(g, board, 3);
  EXPECT_TRUE(target == 0u || target == 2u);
}

TEST(RoutingAgentTest, RandomPolicyCoversNeighbors) {
  const Graph g = line_graph();
  StigmergyBoard board(5);
  auto agent = make_agent(RoutingPolicy::kRandom, 10, 1);
  std::set<NodeId> seen;
  for (int i = 0; i < 100; ++i) seen.insert(agent.decide(g, board, 0));
  EXPECT_EQ(seen, (std::set<NodeId>{0, 2}));
}

TEST(RoutingAgentTest, IsolatedNodeWaits) {
  Graph g(5);  // no edges
  StigmergyBoard board(5);
  auto agent = make_agent(RoutingPolicy::kOldestNode, 10, 3);
  EXPECT_EQ(agent.decide(g, board, 0), 3u);
}

TEST(RoutingAgentTest, HintBetterOrdering) {
  using Hint = RoutingAgent::RouteHint;
  const Hint invalid{};
  const Hint short_old{0, 2, 1, 5};
  const Hint long_fresh{0, 7, 1, 9};
  const Hint short_fresh{0, 2, 1, 9};
  EXPECT_TRUE(RoutingAgent::hint_better(short_old, invalid));
  EXPECT_FALSE(RoutingAgent::hint_better(invalid, short_old));
  EXPECT_TRUE(RoutingAgent::hint_better(short_old, long_fresh));
  EXPECT_TRUE(RoutingAgent::hint_better(short_fresh, short_old));
  EXPECT_FALSE(RoutingAgent::hint_better(invalid, invalid));
}

TEST(RoutingAgentTest, AdoptTakesBetterHintOnly) {
  auto agent = make_agent(RoutingPolicy::kRandom);
  agent.arrive(kGateway0, 0);
  agent.move_to(1);  // hint hops=1
  RoutingAgent::RouteHint worse{0, 5, 2, 0};
  agent.adopt(worse, {});
  EXPECT_EQ(agent.hint().hops, 1u);
  RoutingAgent::RouteHint better{0, 0, kInvalidNode, 9};
  agent.adopt(better, {});
  EXPECT_EQ(agent.hint().hops, 0u);
}

TEST(RoutingAgentTest, AdoptMergesHistoriesWithMax) {
  auto agent = make_agent(RoutingPolicy::kOldestNode, 10, 1);
  agent.arrive(kGateway0, 5);  // knows 1@5
  FlatMap<NodeId, std::size_t> peer{{1, 2}, {3, 7}};
  agent.adopt(RoutingAgent::RouteHint{}, peer);
  EXPECT_EQ(agent.history().at(1), 5u) << "max of own and peer time";
  EXPECT_EQ(agent.history().at(3), 7u);
}

TEST(RoutingAgentTest, AdoptRespectsHistoryBound) {
  auto agent = make_agent(RoutingPolicy::kOldestNode, 2, 1);
  agent.arrive(kGateway0, 10);  // knows 1@10
  FlatMap<NodeId, std::size_t> peer{{2, 8}, {3, 9}, {4, 1}};
  agent.adopt(RoutingAgent::RouteHint{}, peer);
  EXPECT_EQ(agent.history().size(), 2u);
  // The freshest two survive: 1@10 and 3@9.
  EXPECT_TRUE(agent.history().contains(1));
  EXPECT_TRUE(agent.history().contains(3));
}

TEST(RoutingAgentTest, StigmergicDecisionAvoidsFootprints) {
  const Graph g = line_graph();
  StigmergyBoard board(5);
  RoutingAgentConfig cfg;
  cfg.policy = RoutingPolicy::kRandom;
  cfg.stigmergy = StigmergyMode::kFilterFirst;
  RoutingAgent agent(0, 1, cfg, Rng(1));
  board.stamp(1, 0, 0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(agent.decide(g, board, 0), 2u);
}

TEST(RoutingAgentTest, RejectsZeroHistory) {
  RoutingAgentConfig cfg;
  cfg.history_size = 0;
  EXPECT_THROW(RoutingAgent(0, 0, cfg, Rng(1)), ConfigError);
}

TEST(RoutingAgentTest, ToStringNames) {
  EXPECT_STREQ(to_string(RoutingPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(RoutingPolicy::kOldestNode), "oldest-node");
}

}  // namespace
}  // namespace agentnet
