// Design-matrix property suites: every combination of agent design knobs
// must satisfy the task invariants. These parameterized sweeps are the
// regression net under the figure benches — if a future change breaks one
// corner of the design space, the matrix points at the exact combination.
#include <gtest/gtest.h>

#include <tuple>

#include "core/mapping_task.hpp"
#include "core/routing_task.hpp"
#include "net/generators.hpp"

namespace agentnet {
namespace {

// ---- Mapping matrix ---------------------------------------------------------

using MappingCombo = std::tuple<MappingPolicy, StigmergyMode, int>;

class MappingMatrixTest : public ::testing::TestWithParam<MappingCombo> {
 protected:
  static const GeneratedNetwork& network() {
    static const GeneratedNetwork net = [] {
      TargetEdgeParams params;
      params.geometry.node_count = 50;
      params.target_edges = 320;
      params.tolerance = 0.05;
      return generate_target_edge_network(params, 99);
    }();
    return net;
  }

  static MappingTaskConfig config(const MappingCombo& combo) {
    MappingTaskConfig cfg;
    cfg.agent.policy = std::get<0>(combo);
    cfg.agent.stigmergy = std::get<1>(combo);
    cfg.population = std::get<2>(combo);
    cfg.max_steps = 200000;
    return cfg;
  }
};

TEST_P(MappingMatrixTest, FinishesWithPerfectTeamKnowledge) {
  World world = World::frozen(network());
  const auto result = run_mapping_task(world, config(GetParam()), Rng(1));
  ASSERT_TRUE(result.finished);
  EXPECT_DOUBLE_EQ(result.min_knowledge.back(), 1.0);
  EXPECT_DOUBLE_EQ(result.mean_knowledge.back(), 1.0);
}

TEST_P(MappingMatrixTest, KnowledgeMonotoneAndBounded) {
  World world = World::frozen(network());
  const auto result = run_mapping_task(world, config(GetParam()), Rng(2));
  for (std::size_t t = 0; t < result.mean_knowledge.size(); ++t) {
    ASSERT_GE(result.mean_knowledge[t], 0.0);
    ASSERT_LE(result.mean_knowledge[t], 1.0 + 1e-12);
    ASSERT_LE(result.min_knowledge[t], result.mean_knowledge[t] + 1e-12);
    if (t > 0) {
      ASSERT_GE(result.mean_knowledge[t],
                result.mean_knowledge[t - 1] - 1e-12)
          << "static network: knowledge can never shrink";
    }
  }
}

TEST_P(MappingMatrixTest, DeterministicInSeed) {
  World w1 = World::frozen(network());
  World w2 = World::frozen(network());
  const auto a = run_mapping_task(w1, config(GetParam()), Rng(3));
  const auto b = run_mapping_task(w2, config(GetParam()), Rng(3));
  EXPECT_EQ(a.finishing_time, b.finishing_time);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, MappingMatrixTest,
    ::testing::Combine(
        ::testing::Values(MappingPolicy::kRandom,
                          MappingPolicy::kConscientious,
                          MappingPolicy::kSuperConscientious),
        ::testing::Values(StigmergyMode::kOff, StigmergyMode::kFilterFirst,
                          StigmergyMode::kTieBreak),
        ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<MappingCombo>& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) == StigmergyMode::kOff ? "_plain"
              : std::get<1>(info.param) == StigmergyMode::kFilterFirst
                  ? "_filter"
                  : "_tiebreak";
      name += "_pop" + std::to_string(std::get<2>(info.param));
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

// ---- Routing matrix ---------------------------------------------------------

using RoutingCombo = std::tuple<RoutingPolicy, bool, StigmergyMode>;

class RoutingMatrixTest : public ::testing::TestWithParam<RoutingCombo> {
 protected:
  static const RoutingScenario& scenario() {
    static const RoutingScenario s = [] {
      RoutingScenarioParams params;
      params.node_count = 70;
      params.gateway_count = 5;
      params.bounds = {{0.0, 0.0}, {450.0, 450.0}};
      params.node_range = 95.0;
      params.trace_steps = 100;
      return RoutingScenario(params, 77);
    }();
    return s;
  }

  static RoutingTaskConfig config(const RoutingCombo& combo) {
    RoutingTaskConfig cfg;
    cfg.population = 25;
    cfg.agent.policy = std::get<0>(combo);
    cfg.agent.communicate = std::get<1>(combo);
    cfg.agent.stigmergy = std::get<2>(combo);
    cfg.steps = 100;
    cfg.measure_from = 50;
    cfg.record_oracle = true;
    return cfg;
  }
};

TEST_P(RoutingMatrixTest, ConnectivityBoundedAndNontrivial) {
  const auto result = run_routing_task(scenario(), config(GetParam()),
                                       Rng(4));
  for (std::size_t t = 0; t < result.connectivity.size(); ++t) {
    ASSERT_GE(result.connectivity[t], 0.0);
    ASSERT_LE(result.connectivity[t], result.oracle[t] + 1e-12)
        << "no design may beat the physical oracle (step " << t << ")";
  }
  EXPECT_GT(result.mean_connectivity, 0.1)
      << "every design must achieve some routing";
}

TEST_P(RoutingMatrixTest, DeterministicInSeed) {
  const auto a = run_routing_task(scenario(), config(GetParam()), Rng(5));
  const auto b = run_routing_task(scenario(), config(GetParam()), Rng(5));
  EXPECT_EQ(a.connectivity, b.connectivity);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
}

TEST_P(RoutingMatrixTest, MigrationBytesPositive) {
  const auto result = run_routing_task(scenario(), config(GetParam()),
                                       Rng(6));
  EXPECT_GT(result.migration_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Designs, RoutingMatrixTest,
    ::testing::Combine(::testing::Values(RoutingPolicy::kRandom,
                                         RoutingPolicy::kOldestNode),
                       ::testing::Bool(),
                       ::testing::Values(StigmergyMode::kOff,
                                         StigmergyMode::kFilterFirst)),
    [](const ::testing::TestParamInfo<RoutingCombo>& info) {
      std::string name = to_string(std::get<0>(info.param));
      name += std::get<1>(info.param) ? "_visiting" : "_solo";
      name += std::get<2>(info.param) == StigmergyMode::kOff ? "_plain"
                                                             : "_stig";
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

}  // namespace
}  // namespace agentnet
