// Cross-cutting behavioural tests of the knowledge/meeting machinery that
// sit above single classes but below full integration: gossip spread,
// second-hand transitivity through a running task, and the lockstep
// mechanism (identical knowledge ⇒ identical moves) that powers the
// paper's negative results.
#include <gtest/gtest.h>

#include "core/mapping_task.hpp"
#include "net/generators.hpp"

namespace agentnet {
namespace {

// A ring makes meetings easy to stage: agents placed on the same node stay
// co-located exactly as long as they keep choosing the same neighbour.
Graph ring(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i < n; ++i)
    g.add_undirected_edge(i, static_cast<NodeId>((i + 1) % n));
  return g;
}

TEST(KnowledgeDynamicsTest, LockstepOfIdenticalSuperAgents) {
  // Two super-conscientious agents with identical knowledge at the same
  // node must move identically, step after step (the Fig 5 mechanism).
  const Graph g = ring(16);
  StigmergyBoard board(16);
  MappingAgent a(0, 5, 16, {MappingPolicy::kSuperConscientious,
                            StigmergyMode::kOff},
                 Rng(1));
  MappingAgent b(1, 5, 16, {MappingPolicy::kSuperConscientious,
                            StigmergyMode::kOff},
                 Rng(999));  // different private randomness must not matter
  for (std::size_t t = 0; t < 40; ++t) {
    a.sense(g, t);
    b.sense(g, t);
    a.learn_from(b);
    b.learn_from(a);
    const NodeId ta = a.decide(g, board, t);
    const NodeId tb = b.decide(g, board, t);
    ASSERT_EQ(ta, tb) << "identical deciders diverged at step " << t;
    a.move_to(ta);
    b.move_to(tb);
  }
}

TEST(KnowledgeDynamicsTest, StigmergyBreaksTheLockstep) {
  // Same setup, but the first mover stamps its exit: the second must take
  // a different door (the Fig 6 / extA mechanism).
  const Graph g = ring(16);
  StigmergyBoard board(16);
  MappingAgent a(0, 5, 16, {MappingPolicy::kSuperConscientious,
                            StigmergyMode::kFilterFirst},
                 Rng(1));
  MappingAgent b(1, 5, 16, {MappingPolicy::kSuperConscientious,
                            StigmergyMode::kFilterFirst},
                 Rng(2));
  a.sense(g, 0);
  b.sense(g, 0);
  a.learn_from(b);
  b.learn_from(a);
  const NodeId ta = a.decide(g, board, 0);
  board.stamp(a.location(), ta, 0);
  const NodeId tb = b.decide(g, board, 0);
  EXPECT_NE(ta, tb) << "the footprint must disperse the pair";
}

TEST(KnowledgeDynamicsTest, GossipReachesEveryoneThroughChains) {
  // Three agents in a line of meetings: a meets b, then b meets c — c must
  // end up with a's first-hand knowledge without ever meeting a.
  const Graph g = ring(10);
  MappingAgent a(0, 0, 10, {}, Rng(1));
  MappingAgent b(1, 0, 10, {}, Rng(2));
  MappingAgent c(2, 0, 10, {}, Rng(3));
  a.sense(g, 0);  // a learns ring edges at node 0
  b.learn_from(a);
  c.learn_from(b);
  EXPECT_TRUE(c.knowledge().knows_edge(0, 1));
  EXPECT_TRUE(c.knowledge().knows_edge(0, 9));
  EXPECT_FALSE(c.knowledge().knows_edge_first_hand(0, 1));
}

TEST(KnowledgeDynamicsTest, TaskExchangeIsSimultaneous) {
  // In the task's pooled exchange, an agent must receive the knowledge its
  // peers had BEFORE the exchange, not knowledge that itself arrived this
  // step from a third agent transitively... which pooled union does give.
  // What must NOT happen is order dependence: permuting agent ids (same
  // seeds otherwise) yields the same finishing time distribution. We test
  // the weaker, checkable property: two runs with identical configs give
  // identical results even though decide order is shuffled per step.
  TargetEdgeParams params;
  params.geometry.node_count = 40;
  params.target_edges = 240;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 61);
  MappingTaskConfig cfg;
  cfg.population = 6;
  cfg.agent = {MappingPolicy::kSuperConscientious,
               StigmergyMode::kFilterFirst};
  World w1 = World::frozen(net);
  World w2 = World::frozen(net);
  const auto r1 = run_mapping_task(w1, cfg, Rng(9));
  const auto r2 = run_mapping_task(w2, cfg, Rng(9));
  EXPECT_EQ(r1.finishing_time, r2.finishing_time);
  EXPECT_EQ(r1.mean_knowledge, r2.mean_knowledge);
}

TEST(KnowledgeDynamicsTest, CommunicationOffIsolatesKnowledge) {
  TargetEdgeParams params;
  params.geometry.node_count = 30;
  params.target_edges = 170;
  params.tolerance = 0.06;
  const auto net = generate_target_edge_network(params, 62);
  World world = World::frozen(net);
  MappingTaskConfig cfg;
  cfg.population = 4;
  cfg.communication = false;
  cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  cfg.max_steps = 40;  // stop early, well before anyone finishes
  const auto result = run_mapping_task(world, cfg, Rng(10));
  // Without communication min < mean strictly at the cutoff: agents cannot
  // have converged to identical knowledge by luck in 40 steps.
  ASSERT_FALSE(result.finished);
  EXPECT_LT(result.min_knowledge.back(), result.mean_knowledge.back());
}

}  // namespace
}  // namespace agentnet
