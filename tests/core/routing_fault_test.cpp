// Direct tests for failure injection in the routing task: the legacy
// loss/respawn knobs, their bit-exact compatibility with the unified
// FaultPlan, the fault counters, and determinism across thread counts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/routing_task.hpp"
#include "experiments/routing_experiments.hpp"
#include "obs/obs.hpp"

namespace agentnet {
namespace {

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

RoutingTaskConfig lossy_task() {
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 60;
  task.measure_from = 30;
  task.agent_loss_probability = 0.05;
  task.gateway_respawn_probability = 0.3;
  return task;
}

TEST(RoutingFaultTest, LossAndRespawnCountersIncrement) {
  const auto scenario = tiny_scenario();
  obs::RunObs slot;
  RoutingTaskResult result;
  {
    obs::ObsRunScope scope(slot);
    result = run_routing_task(scenario, lossy_task(), Rng(3));
  }
  EXPECT_GT(result.agents_lost, 0u);
  EXPECT_GT(result.agents_respawned, 0u);
  EXPECT_EQ(slot.counters.value(obs::Counter::kAgentsLost),
            result.agents_lost);
  EXPECT_EQ(slot.counters.value(obs::Counter::kAgentsRespawned),
            result.agents_respawned);
  EXPECT_GE(result.final_population, 1u);
}

TEST(RoutingFaultTest, LossWithoutRespawnShrinksThePopulation) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task = lossy_task();
  task.gateway_respawn_probability = 0.0;
  const auto result = run_routing_task(scenario, task, Rng(3));
  EXPECT_GT(result.agents_lost, 0u);
  EXPECT_EQ(result.agents_respawned, 0u);
  EXPECT_EQ(result.final_population,
            static_cast<std::size_t>(task.population) - result.agents_lost);
}

TEST(RoutingFaultTest, RespawnedAgentsUseTheHomogeneousTemplate) {
  // A respawned agent inherits the roster template of the slot it refills.
  // With a homogeneous non-communicating population and respawns on, the
  // run must behave exactly like a homogeneous team — in particular no
  // stigmergy stamps can ever appear.
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task = lossy_task();
  task.agent.stigmergy = StigmergyMode::kOff;
  obs::RunObs slot;
  {
    obs::ObsRunScope scope(slot);
    const auto result = run_routing_task(scenario, task, Rng(5));
    EXPECT_GT(result.agents_respawned, 0u);
  }
  EXPECT_EQ(slot.counters.value(obs::Counter::kStigmergyStamps), 0u);
}

TEST(RoutingFaultTest, LegacyKnobsAndFaultPlanAreBitIdentical) {
  // The compatibility contract: pre-FaultPlan configurations must produce
  // the exact results they always did, and the same settings expressed
  // through the plan must match them bit for bit.
  const auto scenario = tiny_scenario();
  const RoutingTaskConfig legacy = lossy_task();
  RoutingTaskConfig plan_based;
  plan_based.population = legacy.population;
  plan_based.steps = legacy.steps;
  plan_based.measure_from = legacy.measure_from;
  plan_based.faults.agent_loss_probability = legacy.agent_loss_probability;
  plan_based.faults.gateway_respawn_probability =
      legacy.gateway_respawn_probability;
  const auto a = run_routing_task(scenario, legacy, Rng(9));
  const auto b = run_routing_task(scenario, plan_based, Rng(9));
  ASSERT_EQ(a.connectivity.size(), b.connectivity.size());
  for (std::size_t t = 0; t < a.connectivity.size(); ++t)
    ASSERT_EQ(a.connectivity[t], b.connectivity[t]) << "step " << t;
  EXPECT_EQ(a.mean_connectivity, b.mean_connectivity);
  EXPECT_EQ(a.agents_lost, b.agents_lost);
  EXPECT_EQ(a.agents_respawned, b.agents_respawned);
  EXPECT_EQ(a.migration_bytes, b.migration_bytes);
}

TEST(RoutingFaultTest, LegacyKnobsOverrideThePlan) {
  // When both are set, the legacy fields win (they are the older API and
  // callers setting them expect their historical meaning).
  const auto scenario = tiny_scenario();
  RoutingTaskConfig both = lossy_task();
  both.faults.agent_loss_probability = 0.9;  // overridden by 0.05
  const auto a = run_routing_task(scenario, lossy_task(), Rng(9));
  const auto b = run_routing_task(scenario, both, Rng(9));
  EXPECT_EQ(a.agents_lost, b.agents_lost);
  EXPECT_EQ(a.mean_connectivity, b.mean_connectivity);
}

TEST(RoutingFaultTest, LossyRunsBitIdenticalAcrossThreadCounts) {
  const auto scenario = tiny_scenario();
  const auto serial = run_routing_experiment(scenario, lossy_task(), 5, 70, 1);
  for (int threads : {2, 7}) {
    SCOPED_TRACE(threads);
    const auto parallel =
        run_routing_experiment(scenario, lossy_task(), 5, 70, threads);
    ASSERT_EQ(parallel.mean_connectivity.count(),
              serial.mean_connectivity.count());
    EXPECT_EQ(parallel.mean_connectivity.mean(),
              serial.mean_connectivity.mean());
    EXPECT_EQ(parallel.mean_connectivity.variance(),
              serial.mean_connectivity.variance());
  }
}

TEST(RoutingFaultTest, RouteAgingClearsCrashedNextHops) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 60;
  task.measure_from = 30;
  task.faults.node_crash_probability = 0.08;
  task.faults.crash_persistence = 6;
  obs::RunObs with_aging_slot;
  {
    obs::ObsRunScope scope(with_aging_slot);
    run_routing_task(scenario, task, Rng(13));
  }
  EXPECT_GT(with_aging_slot.counters.value(obs::Counter::kRoutesAged), 0u);
  EXPECT_GT(with_aging_slot.counters.value(obs::Counter::kNodeCrashes), 0u);

  task.faults.age_crashed_routes = false;
  obs::RunObs without_slot;
  {
    obs::ObsRunScope scope(without_slot);
    run_routing_task(scenario, task, Rng(13));
  }
  EXPECT_EQ(without_slot.counters.value(obs::Counter::kRoutesAged), 0u);
}

TEST(RoutingFaultTest, ExchangeCorruptionCountsMeetings) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task;
  task.population = 25;
  task.steps = 60;
  task.measure_from = 30;
  task.agent.communicate = true;
  task.faults.exchange_failure_probability = 0.5;
  obs::RunObs slot;
  {
    obs::ObsRunScope scope(slot);
    run_routing_task(scenario, task, Rng(21));
  }
  EXPECT_GT(slot.counters.value(obs::Counter::kExchangesCorrupted), 0u);
  EXPECT_GT(slot.counters.value(obs::Counter::kAgentMeetings), 0u);
}

}  // namespace
}  // namespace agentnet
