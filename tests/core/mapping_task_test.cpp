#include "core/mapping_task.hpp"

#include <gtest/gtest.h>

#include "net/generators.hpp"

namespace agentnet {
namespace {

GeneratedNetwork small_network(std::uint64_t seed = 5) {
  TargetEdgeParams params;
  params.geometry.node_count = 60;
  params.target_edges = 320;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, seed);
}

MappingTaskConfig config(MappingPolicy policy, StigmergyMode mode,
                         int population) {
  MappingTaskConfig cfg;
  cfg.population = population;
  cfg.agent = {policy, mode};
  cfg.max_steps = 100000;
  return cfg;
}

TEST(MappingTaskTest, SingleConscientiousFinishes) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 1),
      Rng(1));
  ASSERT_TRUE(result.finished);
  EXPECT_GT(result.finishing_time, net.graph.node_count())
      << "cannot map faster than visiting every node";
  EXPECT_EQ(result.truth_edges, net.graph.edge_count());
}

TEST(MappingTaskTest, SingleRandomFinishes) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kRandom, StigmergyMode::kOff, 1), Rng(1));
  EXPECT_TRUE(result.finished);
}

TEST(MappingTaskTest, KnowledgeSeriesMonotoneOnStaticNetwork) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3),
      Rng(2));
  ASSERT_TRUE(result.finished);
  ASSERT_FALSE(result.mean_knowledge.empty());
  for (std::size_t t = 1; t < result.mean_knowledge.size(); ++t) {
    EXPECT_GE(result.mean_knowledge[t], result.mean_knowledge[t - 1] - 1e-12);
    EXPECT_GE(result.min_knowledge[t], result.min_knowledge[t - 1] - 1e-12);
  }
  EXPECT_DOUBLE_EQ(result.mean_knowledge.back(), 1.0);
  EXPECT_DOUBLE_EQ(result.min_knowledge.back(), 1.0);
}

TEST(MappingTaskTest, SeriesLengthMatchesFinishingTime) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 5),
      Rng(3));
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.mean_knowledge.size(), result.finishing_time + 1);
}

TEST(MappingTaskTest, MinKnowledgeNeverExceedsMean) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kRandom, StigmergyMode::kOff, 5), Rng(4));
  for (std::size_t t = 0; t < result.mean_knowledge.size(); ++t)
    EXPECT_LE(result.min_knowledge[t], result.mean_knowledge[t] + 1e-12);
}

TEST(MappingTaskTest, CooperationHelps) {
  const auto net = small_network();
  World w1 = World::frozen(net);
  const auto solo = run_mapping_task(
      w1, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 1),
      Rng(5));
  World w2 = World::frozen(net);
  const auto team = run_mapping_task(
      w2, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 10),
      Rng(5));
  ASSERT_TRUE(solo.finished);
  ASSERT_TRUE(team.finished);
  EXPECT_LT(team.finishing_time, solo.finishing_time);
}

TEST(MappingTaskTest, CommunicationOffSlowsTeams) {
  const auto net = small_network();
  auto with = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 8);
  auto without = with;
  without.communication = false;
  // Average over a few seeds; a single run can go either way.
  double sum_with = 0.0, sum_without = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    World w1 = World::frozen(net);
    World w2 = World::frozen(net);
    const auto a = run_mapping_task(w1, with, Rng(100 + s));
    const auto b = run_mapping_task(w2, without, Rng(100 + s));
    ASSERT_TRUE(a.finished && b.finished);
    sum_with += static_cast<double>(a.finishing_time);
    sum_without += static_cast<double>(b.finishing_time);
  }
  EXPECT_LT(sum_with, sum_without);
}

TEST(MappingTaskTest, DeterministicForSameSeed) {
  const auto net = small_network();
  World w1 = World::frozen(net);
  World w2 = World::frozen(net);
  const auto cfg =
      config(MappingPolicy::kSuperConscientious, StigmergyMode::kFilterFirst,
             7);
  const auto a = run_mapping_task(w1, cfg, Rng(42));
  const auto b = run_mapping_task(w2, cfg, Rng(42));
  EXPECT_EQ(a.finishing_time, b.finishing_time);
  EXPECT_EQ(a.mean_knowledge, b.mean_knowledge);
}

TEST(MappingTaskTest, DifferentSeedsUsuallyDiffer) {
  const auto net = small_network();
  World w1 = World::frozen(net);
  World w2 = World::frozen(net);
  const auto cfg =
      config(MappingPolicy::kRandom, StigmergyMode::kOff, 1);
  const auto a = run_mapping_task(w1, cfg, Rng(1));
  const auto b = run_mapping_task(w2, cfg, Rng(2));
  EXPECT_NE(a.finishing_time, b.finishing_time);
}

TEST(MappingTaskTest, StigmergyHelpsSingleRandomAgent) {
  const auto net = small_network();
  double plain = 0.0, stig = 0.0;
  for (std::uint64_t s = 0; s < 8; ++s) {
    World w1 = World::frozen(net);
    World w2 = World::frozen(net);
    const auto a = run_mapping_task(
        w1, config(MappingPolicy::kRandom, StigmergyMode::kOff, 1),
        Rng(200 + s));
    const auto b = run_mapping_task(
        w2, config(MappingPolicy::kRandom, StigmergyMode::kFilterFirst, 1),
        Rng(200 + s));
    ASSERT_TRUE(a.finished && b.finished);
    plain += static_cast<double>(a.finishing_time);
    stig += static_cast<double>(b.finishing_time);
  }
  EXPECT_LT(stig, plain);
}

TEST(MappingTaskTest, RecordSeriesOffLeavesSeriesEmpty) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 1);
  cfg.record_series = false;
  const auto result = run_mapping_task(world, cfg, Rng(6));
  EXPECT_TRUE(result.finished);
  EXPECT_TRUE(result.mean_knowledge.empty());
}

TEST(MappingTaskTest, MaxStepsAbortsUnfinished) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kRandom, StigmergyMode::kOff, 1);
  cfg.max_steps = 5;  // far too few
  const auto result = run_mapping_task(world, cfg, Rng(7));
  EXPECT_FALSE(result.finished);
  EXPECT_EQ(result.mean_knowledge.size(), 6u);  // steps 0..5 recorded
}

TEST(MappingTaskTest, MigrationBytesAccumulate) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3),
      Rng(21));
  ASSERT_TRUE(result.finished);
  // Every move ships at least the 64-byte stub; 3 agents move nearly every
  // step of the run.
  EXPECT_GE(result.migration_bytes,
            64u * result.finishing_time);
  EXPECT_GT(result.migration_bytes, 0u);
}

TEST(MappingTaskTest, StigmergyCostsNoExtraMigrationBytes) {
  // Same seed, same policy: footprints live on nodes, so the stigmergic
  // agent's serialized size — hence bytes for the steps both runs share —
  // must not carry any footprint payload. We verify the accounting uses
  // only knowledge size: a fresh agent's size is the 64-byte stub.
  MappingAgent agent(0, 0, 10, {}, Rng(1));
  EXPECT_EQ(agent.state_size_bytes(), 64u);
}

TEST(MappingTaskTest, RandomnessDialStillFinishes) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kSuperConscientious, StigmergyMode::kOff,
                    10);
  cfg.agent.randomness = 0.2;
  const auto result = run_mapping_task(world, cfg, Rng(22));
  EXPECT_TRUE(result.finished);
}

TEST(MappingTaskTest, RandomnessHelpsCrowdedSuperConscientious) {
  const auto net = small_network();
  auto plain = config(MappingPolicy::kSuperConscientious, StigmergyMode::kOff,
                      20);
  plain.record_series = false;
  auto jittered = plain;
  jittered.agent.randomness = 0.2;
  double plain_sum = 0.0, jit_sum = 0.0;
  for (std::uint64_t s = 0; s < 6; ++s) {
    World w1 = World::frozen(net);
    World w2 = World::frozen(net);
    plain_sum += static_cast<double>(
        run_mapping_task(w1, plain, Rng(300 + s)).finishing_time);
    jit_sum += static_cast<double>(
        run_mapping_task(w2, jittered, Rng(300 + s)).finishing_time);
  }
  EXPECT_LT(jit_sum, plain_sum);
}

TEST(MappingTaskTest, HeterogeneousTeamRuns) {
  const auto net = small_network();
  World world = World::frozen(net);
  MappingTaskConfig cfg;
  cfg.team = {
      {MappingPolicy::kRandom, StigmergyMode::kOff},
      {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst},
      {MappingPolicy::kSuperConscientious, StigmergyMode::kOff},
      {MappingPolicy::kConscientious, StigmergyMode::kOff},
  };
  const auto result = run_mapping_task(world, cfg, Rng(41));
  EXPECT_TRUE(result.finished);
}

TEST(MappingTaskTest, RosterOverridesPopulation) {
  const auto net = small_network();
  // population says 1, roster says 6: the roster must win — a 6-agent team
  // with communication finishes far faster than any single agent.
  MappingTaskConfig solo_cfg;
  solo_cfg.population = 1;
  solo_cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  MappingTaskConfig roster_cfg = solo_cfg;
  roster_cfg.team.assign(6, solo_cfg.agent);
  double solo = 0.0, roster = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    World w1 = World::frozen(net);
    World w2 = World::frozen(net);
    solo += static_cast<double>(
        run_mapping_task(w1, solo_cfg, Rng(500 + s)).finishing_time);
    roster += static_cast<double>(
        run_mapping_task(w2, roster_cfg, Rng(500 + s)).finishing_time);
  }
  EXPECT_LT(roster, solo);
}

TEST(MappingTaskTest, MonitorCollectsTheMap) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 8);
  cfg.monitor_node = 0;
  const auto result = run_mapping_task(world, cfg, Rng(31));
  ASSERT_TRUE(result.finished);
  EXPECT_TRUE(result.monitor_finished)
      << "agents criss-cross a strongly connected net; the monitor must "
         "eventually hear everything";
  EXPECT_LE(result.monitor_finishing_time, result.finishing_time);
  EXPECT_DOUBLE_EQ(result.monitor_completeness, 1.0);
}

TEST(MappingTaskTest, MonitorUnsetReportsNothing) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world, config(MappingPolicy::kConscientious, StigmergyMode::kOff, 4),
      Rng(32));
  EXPECT_FALSE(result.monitor_finished);
  EXPECT_DOUBLE_EQ(result.monitor_completeness, 0.0);
}

TEST(MappingTaskTest, MonitorNodeValidated) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kRandom, StigmergyMode::kOff, 2);
  cfg.monitor_node = static_cast<NodeId>(net.graph.node_count() + 5);
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingTaskTest, InRangeMeetingsSpeedTeamsUp) {
  const auto net = small_network();
  auto near_cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff,
                         10);
  near_cfg.record_series = false;
  auto far_cfg = near_cfg;
  far_cfg.comm_radius = 1;
  double near_sum = 0.0, far_sum = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    World w1 = World::frozen(net);
    World w2 = World::frozen(net);
    near_sum += static_cast<double>(
        run_mapping_task(w1, near_cfg, Rng(400 + s)).finishing_time);
    far_sum += static_cast<double>(
        run_mapping_task(w2, far_cfg, Rng(400 + s)).finishing_time);
  }
  EXPECT_LT(far_sum, near_sum)
      << "more meeting opportunity must not slow the team";
}

TEST(MappingTaskTest, CommRadiusValidated) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3);
  cfg.comm_radius = 2;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingAgentConfigTest, RejectsBadRandomness) {
  EXPECT_THROW(MappingAgent(0, 0, 4,
                            {MappingPolicy::kRandom, StigmergyMode::kOff,
                             1.5},
                            Rng(1)),
               ConfigError);
}

// Config-bounds validation: garbage configurations must fail loudly, not
// silently misbehave (mirrors the routing task's discipline).
TEST(MappingTaskTest, RejectsNonPositivePopulation) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 0);
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
  cfg.population = -3;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingTaskTest, RejectsOutOfRangeRandomness) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3);
  cfg.agent.randomness = 1.5;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
  cfg.agent.randomness = -0.1;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingTaskTest, RejectsBadTeamMemberRandomness) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3);
  cfg.team = {{MappingPolicy::kRandom, StigmergyMode::kOff, 0.5},
              {MappingPolicy::kRandom, StigmergyMode::kOff, 2.0}};
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingTaskTest, RejectsZeroStigmergyCapacity) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3);
  cfg.stigmergy_capacity = 0;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

TEST(MappingTaskTest, RejectsInvalidFaultPlan) {
  const auto net = small_network();
  World world = World::frozen(net);
  auto cfg = config(MappingPolicy::kConscientious, StigmergyMode::kOff, 3);
  cfg.faults.agent_loss_probability = 1.5;
  EXPECT_THROW(run_mapping_task(world, cfg, Rng(1)), ConfigError);
}

// Population sweep property: finishing time is non-increasing (in
// aggregate) as the team grows.
class PopulationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PopulationSweepTest, TeamsFinish) {
  const auto net = small_network();
  World world = World::frozen(net);
  const auto result = run_mapping_task(
      world,
      config(MappingPolicy::kConscientious, StigmergyMode::kOff, GetParam()),
      Rng(11));
  EXPECT_TRUE(result.finished);
}

INSTANTIATE_TEST_SUITE_P(Teams, PopulationSweepTest,
                         ::testing::Values(1, 2, 5, 10, 20));

}  // namespace
}  // namespace agentnet
