#include "core/map_knowledge.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

TEST(MapKnowledgeTest, StartsEmpty) {
  MapKnowledge k(5);
  EXPECT_EQ(k.known_edge_count(), 0u);
  EXPECT_EQ(k.first_hand_edge_count(), 0u);
  for (NodeId v = 0; v < 5; ++v)
    EXPECT_EQ(k.last_visit_first_hand(v), kNeverVisited);
}

TEST(MapKnowledgeTest, ObserveRecordsEdgesAndVisit) {
  MapKnowledge k(5);
  const std::vector<NodeId> out{1, 3};
  k.observe_node(0, out, 7);
  EXPECT_TRUE(k.knows_edge(0, 1));
  EXPECT_TRUE(k.knows_edge_first_hand(0, 3));
  EXPECT_FALSE(k.knows_edge(1, 0));
  EXPECT_EQ(k.known_edge_count(), 2u);
  EXPECT_EQ(k.last_visit_first_hand(0), 7);
  EXPECT_EQ(k.last_visit_any(0), 7);
}

TEST(MapKnowledgeTest, RepeatObservationDoesNotDoubleCount) {
  MapKnowledge k(4);
  const std::vector<NodeId> out{1};
  k.observe_node(0, out, 1);
  k.observe_node(0, out, 5);
  EXPECT_EQ(k.known_edge_count(), 1u);
  EXPECT_EQ(k.last_visit_first_hand(0), 5);
}

TEST(MapKnowledgeTest, LearnFromKeepsHandsSeparate) {
  MapKnowledge a(4), b(4);
  const std::vector<NodeId> out_b{2};
  b.observe_node(1, out_b, 3);
  a.learn_from(b);
  EXPECT_TRUE(a.knows_edge(1, 2));
  EXPECT_FALSE(a.knows_edge_first_hand(1, 2))
      << "peer knowledge must land in the second-hand store";
  EXPECT_EQ(a.first_hand_edge_count(), 0u);
  EXPECT_EQ(a.known_edge_count(), 1u);
}

TEST(MapKnowledgeTest, LearnFromPropagatesVisitTimes) {
  MapKnowledge a(4), b(4);
  const std::vector<NodeId> none{};
  b.observe_node(2, none, 9);
  a.learn_from(b);
  EXPECT_EQ(a.last_visit_any(2), 9);
  EXPECT_EQ(a.last_visit_first_hand(2), kNeverVisited);
}

TEST(MapKnowledgeTest, LearnFromTakesMaxVisitTime) {
  MapKnowledge a(4), b(4);
  const std::vector<NodeId> none{};
  a.observe_node(2, none, 10);
  b.observe_node(2, none, 4);
  a.learn_from(b);
  EXPECT_EQ(a.last_visit_any(2), 10);
}

TEST(MapKnowledgeTest, TransitiveSecondHandSpreads) {
  // a learns from b who learned from c: c's edge reaches a.
  MapKnowledge a(4), b(4), c(4);
  const std::vector<NodeId> out{0};
  c.observe_node(3, out, 1);
  b.learn_from(c);
  a.learn_from(b);
  EXPECT_TRUE(a.knows_edge(3, 0));
}

TEST(MapKnowledgeTest, LearnUnionMatchesLearnFrom) {
  MapKnowledge a1(4), a2(4), b(4);
  const std::vector<NodeId> out{1, 2};
  b.observe_node(0, out, 6);
  a1.learn_from(b);
  a2.learn_union(b.combined_edges(), b.any_visits());
  EXPECT_EQ(a1.known_edge_count(), a2.known_edge_count());
  EXPECT_EQ(a1.last_visit_any(0), a2.last_visit_any(0));
}

TEST(MapKnowledgeTest, CompletenessFraction) {
  MapKnowledge k(4);
  const std::vector<NodeId> out{1, 2};
  k.observe_node(0, out, 0);
  EXPECT_DOUBLE_EQ(k.completeness(4), 0.5);
  EXPECT_DOUBLE_EQ(k.completeness(0), 1.0);
}

TEST(MapKnowledgeTest, KnownEdgeCountInIgnoresVanishedEdges) {
  MapKnowledge k(3);
  const std::vector<NodeId> out{1, 2};
  k.observe_node(0, out, 0);
  Graph truth(3);
  truth.add_edge(0, 1);  // 0→2 no longer exists
  EXPECT_EQ(k.known_edge_count_in(truth), 1u);
  EXPECT_EQ(k.known_edge_count(), 2u);
}

TEST(MapKnowledgeTest, SerializedSizeTracksContents) {
  MapKnowledge k(6);
  EXPECT_EQ(k.serialized_size_bytes(), 0u);
  const std::vector<NodeId> out{1, 2, 3};
  k.observe_node(0, out, 5);
  // 3 edges x 8 bytes + 1 visited node x 12 bytes.
  EXPECT_EQ(k.serialized_size_bytes(), 3u * 8 + 12);
  // Second-hand knowledge counts too (the agent carries it when moving).
  MapKnowledge peer(6);
  const std::vector<NodeId> peer_out{0};
  peer.observe_node(4, peer_out, 1);
  k.learn_from(peer);
  EXPECT_EQ(k.serialized_size_bytes(), 4u * 8 + 2 * 12);
}

TEST(MapKnowledgeTest, SizeMismatchThrows) {
  MapKnowledge a(3), b(4);
  EXPECT_THROW(a.learn_from(b), ConfigError);
}

TEST(MapKnowledgeTest, RejectsZeroNodes) {
  EXPECT_THROW(MapKnowledge(0), ConfigError);
}

// Stale-knowledge expiry (resilience policy): hearsay survives the epoch
// rotation that closes its epoch and drops at the next one, so its
// effective age is in [ttl, 2*ttl). First-hand observations never expire.
TEST(MapKnowledgeExpiryTest, HearsayExpiresAfterTwoRotations) {
  MapKnowledge k(5);
  MapKnowledge peer(5);
  const std::vector<NodeId> peer_out{4};
  peer.observe_node(3, peer_out, 2);
  k.expire_second_hand(0, 10);  // first call activates the epoch clock
  k.learn_from(peer);           // hearsay learned inside epoch [0, 10)
  const std::vector<NodeId> own_out{1};
  k.observe_node(0, own_out, 1);  // first-hand
  EXPECT_EQ(k.known_edge_count(), 2u);
  k.expire_second_hand(9, 10);  // same epoch: nothing happens
  EXPECT_EQ(k.known_edge_count(), 2u);
  k.expire_second_hand(10, 10);  // rotation 1: hearsay still fresh enough
  EXPECT_EQ(k.known_edge_count(), 2u);
  k.expire_second_hand(20, 10);  // rotation 2: hearsay aged out
  EXPECT_EQ(k.known_edge_count(), 1u);
  EXPECT_EQ(k.first_hand_edge_count(), 1u)
      << "first-hand knowledge never expires";
}

TEST(MapKnowledgeExpiryTest, RefreshedHearsayStaysAlive) {
  MapKnowledge k(5);
  MapKnowledge peer(5);
  const std::vector<NodeId> peer_out{4};
  peer.observe_node(3, peer_out, 2);
  k.expire_second_hand(0, 10);
  k.learn_from(peer);
  k.expire_second_hand(10, 10);  // rotation 1
  k.learn_from(peer);            // re-heard in the new epoch
  k.expire_second_hand(20, 10);  // rotation 2: refreshed copy survives
  EXPECT_EQ(k.known_edge_count(), 1u);
  k.expire_second_hand(40, 10);  // no refresh since: gone
  EXPECT_EQ(k.known_edge_count(), 0u);
}

TEST(MapKnowledgeExpiryTest, ZeroTtlDisablesExpiry) {
  MapKnowledge k(5);
  MapKnowledge peer(5);
  const std::vector<NodeId> peer_out{4};
  peer.observe_node(3, peer_out, 2);
  k.learn_from(peer);
  k.expire_second_hand(1000, 0);
  EXPECT_EQ(k.known_edge_count(), 1u) << "ttl 0 must be a no-op";
}

}  // namespace
}  // namespace agentnet
