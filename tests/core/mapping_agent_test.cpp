#include "core/mapping_agent.hpp"

#include <gtest/gtest.h>

#include <set>

namespace agentnet {
namespace {

// 0 ↔ {1,2,3} star plus a 1↔2 chord, all bidirectional.
Graph star_graph() {
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(0, 2);
  g.add_undirected_edge(0, 3);
  g.add_undirected_edge(1, 2);
  return g;
}

MappingAgent make_agent(MappingPolicy policy, StigmergyMode mode,
                        NodeId start = 0, std::uint64_t seed = 1) {
  return MappingAgent(0, start, 4, {policy, mode}, Rng(seed));
}

TEST(MappingAgentTest, SenseLearnsOutEdges) {
  const Graph g = star_graph();
  auto agent = make_agent(MappingPolicy::kRandom, StigmergyMode::kOff);
  agent.sense(g, 0);
  EXPECT_TRUE(agent.knowledge().knows_edge(0, 1));
  EXPECT_TRUE(agent.knowledge().knows_edge(0, 2));
  EXPECT_TRUE(agent.knowledge().knows_edge(0, 3));
  EXPECT_EQ(agent.knowledge().known_edge_count(), 3u);
}

TEST(MappingAgentTest, RandomPolicyCoversAllNeighbors) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto agent = make_agent(MappingPolicy::kRandom, StigmergyMode::kOff);
  std::set<NodeId> chosen;
  for (int i = 0; i < 200; ++i) chosen.insert(agent.decide(g, board, 0));
  EXPECT_EQ(chosen, (std::set<NodeId>{1, 2, 3}));
}

TEST(MappingAgentTest, DeadEndAgentWaits) {
  Graph g(2);  // node 0 has no out-edges
  StigmergyBoard board(2);
  auto agent = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff);
  EXPECT_EQ(agent.decide(g, board, 0), 0u);
}

TEST(MappingAgentTest, ConscientiousPrefersUnvisited) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto agent =
      make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff);
  agent.sense(g, 0);
  // Walk 0 → 1 → 2 → back to 0: neighbours 1 and 2 become visited.
  agent.move_to(1);
  agent.sense(g, 1);
  agent.move_to(2);
  agent.sense(g, 2);
  agent.move_to(0);
  // Node 3 is the only never-visited neighbour of 0.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.decide(g, board, 3), 3u);
}

TEST(MappingAgentTest, ConscientiousPicksLeastRecentlyVisited) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto agent =
      make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff);
  // Visit all neighbours at different times: 1@t1, 2@t2, 3@t3.
  agent.sense(g, 0);
  for (NodeId v : {1u, 2u, 3u}) {
    agent.move_to(v);
    agent.sense(g, v);
    agent.move_to(0);
  }
  // All visited; least recent is 1.
  EXPECT_EQ(agent.decide(g, board, 10), 1u);
}

TEST(MappingAgentTest, ConscientiousIgnoresSecondHandVisits) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto a = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff, 0,
                      1);
  auto b = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff, 1,
                      2);
  a.sense(g, 0);
  b.sense(g, 0);  // b pretends to be at 0? use b's own start
  // b visits nodes 1..3 first-hand; a learns it second-hand.
  for (NodeId v : {1u, 2u, 3u}) {
    b.move_to(v);
    b.sense(g, v);
  }
  a.learn_from(b);
  // Conscientious a still treats 1..3 as unvisited (first-hand view), so
  // its decision is a shared-hash pick over the full 3-way tie — stable
  // across calls with the same (node, step, tie set). A super-conscientious
  // agent would have no tie and would pick 3 (see the next test).
  const NodeId first = a.decide(g, board, 5);
  EXPECT_TRUE(first == 1u || first == 2u || first == 3u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.decide(g, board, 5), first);
}

TEST(MappingAgentTest, SuperConscientiousUsesSecondHandVisits) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto a = make_agent(MappingPolicy::kSuperConscientious, StigmergyMode::kOff,
                      0, 1);
  auto b = make_agent(MappingPolicy::kSuperConscientious, StigmergyMode::kOff,
                      1, 2);
  a.sense(g, 0);
  // b visits 1 and 2 first-hand; 3 stays unvisited by anyone.
  b.sense(g, 1);
  b.move_to(2);
  b.sense(g, 2);
  a.learn_from(b);
  // a should now prefer 3 (never visited by either agent).
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.decide(g, board, 5), 3u);
}

TEST(MappingAgentTest, StigmergyFilterAvoidsMarkedTargets) {
  const Graph g = star_graph();
  StigmergyBoard board(4, 0, 4);
  board.stamp(0, 1, 0);
  board.stamp(0, 2, 0);
  auto agent = make_agent(MappingPolicy::kRandom, StigmergyMode::kFilterFirst);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.decide(g, board, 0), 3u);
}

TEST(MappingAgentTest, StigmergyAllMarkedFallsBackToAll) {
  const Graph g = star_graph();
  StigmergyBoard board(4, 0, 4);
  for (NodeId v : {1u, 2u, 3u}) board.stamp(0, v, 0);
  auto agent = make_agent(MappingPolicy::kRandom, StigmergyMode::kFilterFirst);
  std::set<NodeId> chosen;
  for (int i = 0; i < 200; ++i) chosen.insert(agent.decide(g, board, 0));
  EXPECT_EQ(chosen.size(), 3u) << "must not deadlock when all are marked";
}

TEST(MappingAgentTest, TieBreakModeOnlySplitsTies) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto agent =
      make_agent(MappingPolicy::kConscientious, StigmergyMode::kTieBreak);
  // Visit node 3 so nodes 1,2 tie as never-visited; mark 1.
  agent.sense(g, 0);
  agent.move_to(3);
  agent.sense(g, 3);
  agent.move_to(0);
  board.stamp(0, 1, 4);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.decide(g, board, 5), 2u);
}

TEST(MappingAgentTest, TieBreakDoesNotOverrideKey) {
  const Graph g = star_graph();
  StigmergyBoard board(4, 0, 4);
  auto agent =
      make_agent(MappingPolicy::kConscientious, StigmergyMode::kTieBreak);
  agent.sense(g, 0);
  agent.move_to(1);
  agent.sense(g, 1);
  agent.move_to(0);
  // 2 and 3 unvisited; mark both. 1 is visited and unmarked. In tie-break
  // mode the key still wins: agent must go to 2 or 3, not 1.
  board.stamp(0, 2, 2);
  board.stamp(0, 3, 2);
  for (int i = 0; i < 50; ++i) EXPECT_NE(agent.decide(g, board, 3), 1u);
}

TEST(MappingAgentTest, FilterFirstCanOverrideKey) {
  const Graph g = star_graph();
  StigmergyBoard board(4, 0, 4);
  auto agent =
      make_agent(MappingPolicy::kConscientious, StigmergyMode::kFilterFirst);
  agent.sense(g, 0);
  agent.move_to(1);
  agent.sense(g, 1);
  agent.move_to(0);
  // 2 and 3 unvisited but marked; 1 visited and unmarked → filter-first
  // sends the agent through the unmarked door even though it was visited.
  board.stamp(0, 2, 2);
  board.stamp(0, 3, 2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(agent.decide(g, board, 3), 1u);
}

TEST(MappingAgentTest, StateSizeGrowsWithKnowledge) {
  const Graph g = star_graph();
  auto agent = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff);
  const std::size_t empty = agent.state_size_bytes();
  EXPECT_EQ(empty, 64u);
  agent.sense(g, 0);
  EXPECT_GT(agent.state_size_bytes(), empty);
}

TEST(MappingAgentTest, FullRandomnessBehavesLikeRandomPolicy) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  MappingAgent agent(0, 0, 4,
                     {MappingPolicy::kConscientious, StigmergyMode::kOff,
                      1.0},
                     Rng(5));
  // With randomness 1.0 every decision is a uniform neighbour draw, so all
  // three neighbours must appear even though the policy would be
  // deterministic.
  std::set<NodeId> chosen;
  for (int i = 0; i < 200; ++i) chosen.insert(agent.decide(g, board, 0));
  EXPECT_EQ(chosen.size(), 3u);
}

TEST(MappingAgentTest, ZeroRandomnessConsumesNoExtraEntropy) {
  const Graph g = star_graph();
  StigmergyBoard board(4);
  auto a = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff, 0,
                      9);
  auto b = make_agent(MappingPolicy::kConscientious, StigmergyMode::kOff, 0,
                      9);
  a.sense(g, 0);
  b.sense(g, 0);
  for (int i = 0; i < 20; ++i)
    ASSERT_EQ(a.decide(g, board, i), b.decide(g, board, i));
}

TEST(MappingAgentTest, ToStringNames) {
  EXPECT_STREQ(to_string(MappingPolicy::kRandom), "random");
  EXPECT_STREQ(to_string(MappingPolicy::kConscientious), "conscientious");
  EXPECT_STREQ(to_string(MappingPolicy::kSuperConscientious),
               "super-conscientious");
}

}  // namespace
}  // namespace agentnet
