// colocated_groups() is the load-bearing input of the group-parallel
// exchange phase (common/agent_parallel.hpp): the engine relies on groups
// being disjoint (so distinct groups can pool concurrently) and on the
// (venue, member) ordering being a pure function of the roster (so the
// serial commit pass replays fault draws, counters and trace events in the
// historical order).
#include "core/colocation.hpp"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/graph.hpp"

namespace agentnet {
namespace {

struct StubAgent {
  NodeId where = 0;
  NodeId location() const { return where; }
};

std::vector<StubAgent> roster(std::initializer_list<NodeId> locations) {
  std::vector<StubAgent> agents;
  for (NodeId v : locations) agents.push_back({v});
  return agents;
}

TEST(ColocationTest, EmptyRosterHasNoGroups) {
  EXPECT_TRUE(colocated_groups(std::vector<StubAgent>{}).empty());
}

TEST(ColocationTest, SingletonsAreFiltered) {
  // Everyone alone on their node: nobody to meet.
  const auto agents = roster({4, 9, 1, 7});
  EXPECT_TRUE(colocated_groups(agents).empty());
}

TEST(ColocationTest, GroupsOrderedByVenueMembersByIndex) {
  // Node 2 hosts agents {1, 4}, node 7 hosts {0, 3, 5}; agent 2 is alone.
  const auto agents = roster({7, 2, 11, 7, 2, 7});
  const auto groups = colocated_groups(agents);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(groups[1], (std::vector<std::size_t>{0, 3, 5}));
}

TEST(ColocationTest, GroupsAreDisjointAndCoverAllMeetings) {
  // Random rosters: every agent index appears in at most one group, member
  // lists are strictly increasing, venues strictly increase across groups,
  // and an index is grouped iff its location is shared.
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<StubAgent> agents(1 + rng.index(40));
    for (auto& agent : agents)
      agent.where = static_cast<NodeId>(rng.index(12));
    std::vector<std::size_t> occupancy(12, 0);
    for (const auto& agent : agents) ++occupancy[agent.where];

    const auto groups = colocated_groups(agents);
    std::vector<char> grouped(agents.size(), 0);
    NodeId previous_venue = 0;
    bool first_group = true;
    for (const auto& group : groups) {
      ASSERT_GE(group.size(), 2u);
      const NodeId venue = agents[group.front()].location();
      if (!first_group) EXPECT_GT(venue, previous_venue);
      previous_venue = venue;
      first_group = false;
      for (std::size_t k = 0; k < group.size(); ++k) {
        EXPECT_EQ(agents[group[k]].location(), venue);
        if (k > 0) EXPECT_GT(group[k], group[k - 1]);
        EXPECT_FALSE(grouped[group[k]]) << "index in two groups";
        grouped[group[k]] = 1;
      }
    }
    for (std::size_t i = 0; i < agents.size(); ++i)
      EXPECT_EQ(grouped[i] != 0, occupancy[agents[i].where] >= 2)
          << "agent " << i;
  }
}

TEST(ColocationTest, OrderIndependentOfRosterPermutation) {
  // Same multiset of locations, different index assignment: the venue
  // order is identical and each group holds the permuted indices.
  const auto agents = roster({5, 3, 5, 3, 8, 8, 8});
  const auto swapped = roster({3, 5, 3, 5, 8, 8, 8});
  const auto a = colocated_groups(agents);
  const auto b = colocated_groups(swapped);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t g = 0; g < a.size(); ++g)
    EXPECT_EQ(agents[a[g].front()].location(),
              swapped[b[g].front()].location());
  EXPECT_EQ(b[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(b[1], (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(b[2], (std::vector<std::size_t>{4, 5, 6}));
}

}  // namespace
}  // namespace agentnet
