#include "core/routing_task.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/metrics.hpp"

namespace agentnet {
namespace {

RoutingScenarioParams small_params() {
  RoutingScenarioParams p;
  p.node_count = 80;
  p.gateway_count = 5;
  p.bounds = {{0.0, 0.0}, {500.0, 500.0}};
  p.node_range = 95.0;
  p.trace_steps = 120;
  return p;
}

RoutingTaskConfig small_task(RoutingPolicy policy, int population = 30) {
  RoutingTaskConfig cfg;
  cfg.population = population;
  cfg.agent.policy = policy;
  cfg.agent.history_size = 10;
  cfg.steps = 120;
  cfg.measure_from = 60;
  return cfg;
}

TEST(RoutingScenarioTest, MasksRespectParameters) {
  const RoutingScenario scenario(small_params(), 1);
  std::size_t gateways = 0, mobile = 0;
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    if (scenario.is_gateway()[i]) {
      ++gateways;
      EXPECT_FALSE(scenario.mobile()[i]) << "gateways are stationary";
    }
    if (scenario.mobile()[i]) ++mobile;
  }
  EXPECT_EQ(gateways, 5u);
  EXPECT_EQ(mobile, 40u);  // half of 80
}

TEST(RoutingScenarioTest, WorldsAreReproducible) {
  const RoutingScenario scenario(small_params(), 2);
  World a = scenario.make_world();
  World b = scenario.make_world();
  EXPECT_EQ(a.graph(), b.graph());
  for (int t = 0; t < 20; ++t) {
    a.advance();
    b.advance();
    ASSERT_EQ(a.positions(), b.positions()) << "step " << t;
    ASSERT_EQ(a.graph(), b.graph()) << "step " << t;
  }
}

TEST(RoutingScenarioTest, TopologyActuallyChanges) {
  const RoutingScenario scenario(small_params(), 3);
  World world = scenario.make_world();
  const Graph initial = world.graph();
  for (int t = 0; t < 60; ++t) world.advance();
  EXPECT_NE(world.graph(), initial) << "a MANET must rewire over time";
}

TEST(RoutingScenarioTest, GatewaysKeepFullRange) {
  const auto params = small_params();
  const RoutingScenario scenario(params, 4);
  World world = scenario.make_world();
  for (int t = 0; t < 100; ++t) world.advance();
  for (std::size_t i = 0; i < scenario.node_count(); ++i) {
    if (scenario.is_gateway()[i]) {
      EXPECT_GE(world.effective_range(static_cast<NodeId>(i)),
                params.node_range * params.gateway_range_boost *
                    (1.0 - params.range_spread) - 1e-9);
    }
  }
}

TEST(RoutingScenarioTest, RejectsBadConfig) {
  auto p = small_params();
  p.gateway_count = p.node_count;
  EXPECT_THROW(RoutingScenario(p, 1), ConfigError);
  p = small_params();
  p.mobile_fraction = 1.5;
  EXPECT_THROW(RoutingScenario(p, 1), ConfigError);
  p = small_params();
  p.mobile_fraction = 1.0;  // leaves no stationary slot for 5 gateways
  EXPECT_THROW(RoutingScenario(p, 1), ConfigError);
}

TEST(RoutingTaskTest, ProducesFullConnectivityTrace) {
  const RoutingScenario scenario(small_params(), 5);
  const auto result = run_routing_task(
      scenario, small_task(RoutingPolicy::kOldestNode), Rng(1));
  ASSERT_EQ(result.connectivity.size(), 120u);
  for (double c : result.connectivity) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(RoutingTaskTest, ConnectivityRisesFromColdStart) {
  const RoutingScenario scenario(small_params(), 6);
  const auto result = run_routing_task(
      scenario, small_task(RoutingPolicy::kOldestNode, 40), Rng(2));
  const double early = result.connectivity[0];
  EXPECT_GT(result.mean_connectivity, early)
      << "network starts unrouted and converges upward";
  EXPECT_GT(result.mean_connectivity, 0.2);
}

TEST(RoutingTaskTest, AgentsBoundedByOracle) {
  const RoutingScenario scenario(small_params(), 7);
  auto cfg = small_task(RoutingPolicy::kOldestNode, 40);
  cfg.record_oracle = true;
  const auto result = run_routing_task(scenario, cfg, Rng(3));
  ASSERT_EQ(result.oracle.size(), result.connectivity.size());
  for (std::size_t t = 0; t < result.connectivity.size(); ++t)
    EXPECT_LE(result.connectivity[t], result.oracle[t] + 1e-12)
        << "step " << t;
}

TEST(RoutingTaskTest, DeterministicForSameSeed) {
  const RoutingScenario scenario(small_params(), 8);
  const auto cfg = small_task(RoutingPolicy::kOldestNode);
  const auto a = run_routing_task(scenario, cfg, Rng(4));
  const auto b = run_routing_task(scenario, cfg, Rng(4));
  EXPECT_EQ(a.connectivity, b.connectivity);
}

TEST(RoutingTaskTest, MorePopulationHigherConnectivity) {
  const RoutingScenario scenario(small_params(), 9);
  double few = 0.0, many = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    few += run_routing_task(scenario, small_task(RoutingPolicy::kOldestNode, 4),
                            Rng(10 + s))
               .mean_connectivity;
    many += run_routing_task(
                scenario, small_task(RoutingPolicy::kOldestNode, 60),
                Rng(10 + s))
                .mean_connectivity;
  }
  EXPECT_GT(many, few);
}

TEST(RoutingTaskTest, OldestNodeBeatsRandom) {
  const RoutingScenario scenario(small_params(), 10);
  double random_sum = 0.0, oldest_sum = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    random_sum += run_routing_task(
                      scenario, small_task(RoutingPolicy::kRandom, 20),
                      Rng(20 + s))
                      .mean_connectivity;
    oldest_sum += run_routing_task(
                      scenario, small_task(RoutingPolicy::kOldestNode, 20),
                      Rng(20 + s))
                      .mean_connectivity;
  }
  EXPECT_GT(oldest_sum, random_sum);
}

TEST(RoutingTaskTest, LongerHistoryHigherConnectivity) {
  const RoutingScenario scenario(small_params(), 11);
  auto short_cfg = small_task(RoutingPolicy::kOldestNode, 25);
  short_cfg.agent.history_size = 3;
  auto long_cfg = small_task(RoutingPolicy::kOldestNode, 25);
  long_cfg.agent.history_size = 25;
  double short_sum = 0.0, long_sum = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    short_sum += run_routing_task(scenario, short_cfg, Rng(30 + s))
                     .mean_connectivity;
    long_sum += run_routing_task(scenario, long_cfg, Rng(30 + s))
                    .mean_connectivity;
  }
  EXPECT_GT(long_sum, short_sum);
}

TEST(RoutingTaskTest, CommunicationHelpsRandomAgents) {
  const RoutingScenario scenario(small_params(), 12);
  auto base = small_task(RoutingPolicy::kRandom, 25);
  auto talk = base;
  talk.agent.communicate = true;
  double base_sum = 0.0, talk_sum = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    base_sum += run_routing_task(scenario, base, Rng(40 + s))
                    .mean_connectivity;
    talk_sum += run_routing_task(scenario, talk, Rng(40 + s))
                    .mean_connectivity;
  }
  EXPECT_GT(talk_sum, base_sum);
}

TEST(RoutingTaskTest, TrafficStatsPresentWhenRequested) {
  const RoutingScenario scenario(small_params(), 14);
  auto cfg = small_task(RoutingPolicy::kOldestNode, 40);
  cfg.traffic = TrafficConfig{};
  const auto result = run_routing_task(scenario, cfg, Rng(5));
  ASSERT_TRUE(result.traffic_stats.has_value());
  const TrafficStats& ts = *result.traffic_stats;
  EXPECT_GT(ts.generated, 0u);
  EXPECT_GT(ts.delivered, 0u);
  EXPECT_EQ(ts.generated, ts.delivered + ts.dropped() + ts.in_flight);
  EXPECT_GT(ts.delivery_ratio(), 0.1);
}

TEST(RoutingTaskTest, NoTrafficStatsByDefault) {
  const RoutingScenario scenario(small_params(), 15);
  const auto result =
      run_routing_task(scenario, small_task(RoutingPolicy::kRandom), Rng(6));
  EXPECT_FALSE(result.traffic_stats.has_value());
}

TEST(RoutingTaskTest, DeliveryTracksConnectivity) {
  const RoutingScenario scenario(small_params(), 16);
  auto good = small_task(RoutingPolicy::kOldestNode, 50);
  good.traffic = TrafficConfig{};
  auto poor = small_task(RoutingPolicy::kOldestNode, 5);
  poor.traffic = TrafficConfig{};
  double good_ratio = 0.0, poor_ratio = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    good_ratio +=
        run_routing_task(scenario, good, Rng(60 + s)).traffic_stats->delivery_ratio();
    poor_ratio +=
        run_routing_task(scenario, poor, Rng(60 + s)).traffic_stats->delivery_ratio();
  }
  EXPECT_GT(good_ratio, poor_ratio);
}

TEST(RoutingTaskTest, MigrationBytesScaleWithHistory) {
  const RoutingScenario scenario(small_params(), 17);
  auto small_hist = small_task(RoutingPolicy::kOldestNode, 30);
  small_hist.agent.history_size = 2;
  auto big_hist = small_task(RoutingPolicy::kOldestNode, 30);
  big_hist.agent.history_size = 40;
  const auto a = run_routing_task(scenario, small_hist, Rng(7));
  const auto b = run_routing_task(scenario, big_hist, Rng(7));
  EXPECT_GT(a.migration_bytes, 0u);
  EXPECT_GT(b.migration_bytes, a.migration_bytes)
      << "bigger carried history must cost more bytes per hop";
}

TEST(RoutingTaskTest, HeterogeneousRosterRuns) {
  const RoutingScenario scenario(small_params(), 25);
  RoutingTaskConfig cfg;
  cfg.steps = 120;
  cfg.measure_from = 60;
  RoutingAgentConfig oldest;
  oldest.policy = RoutingPolicy::kOldestNode;
  RoutingAgentConfig chatty = oldest;
  chatty.communicate = true;
  RoutingAgentConfig walker;
  walker.policy = RoutingPolicy::kRandom;
  cfg.team = {oldest, oldest, chatty, chatty, walker, walker, walker,
              oldest, chatty, walker};
  const auto result = run_routing_task(scenario, cfg, Rng(12));
  EXPECT_EQ(result.final_population, 10u);
  EXPECT_GT(result.mean_connectivity, 0.1);
}

TEST(RoutingTaskTest, LonelyCommunicatorChangesNothing) {
  // A single communicating agent has nobody to talk to: results must be
  // identical to the same roster with communication off.
  const RoutingScenario scenario(small_params(), 26);
  RoutingTaskConfig silent;
  silent.steps = 100;
  silent.measure_from = 50;
  silent.team.assign(8, RoutingAgentConfig{});
  auto one_talker = silent;
  one_talker.team[3].communicate = true;
  const auto a = run_routing_task(scenario, silent, Rng(13));
  const auto b = run_routing_task(scenario, one_talker, Rng(13));
  EXPECT_EQ(a.connectivity, b.connectivity);
}

TEST(RoutingTaskTest, NoFaultsByDefault) {
  const RoutingScenario scenario(small_params(), 18);
  const auto result =
      run_routing_task(scenario, small_task(RoutingPolicy::kOldestNode),
                       Rng(8));
  EXPECT_EQ(result.agents_lost, 0u);
  EXPECT_EQ(result.agents_respawned, 0u);
  EXPECT_EQ(result.final_population, 30u);
}

TEST(RoutingTaskTest, AgentLossShrinksPopulation) {
  const RoutingScenario scenario(small_params(), 19);
  auto cfg = small_task(RoutingPolicy::kOldestNode, 30);
  cfg.agent_loss_probability = 0.02;
  const auto result = run_routing_task(scenario, cfg, Rng(9));
  EXPECT_GT(result.agents_lost, 0u);
  EXPECT_LT(result.final_population, 30u);
  EXPECT_EQ(result.final_population + result.agents_lost, 30u);
}

TEST(RoutingTaskTest, TotalLossDegradesButDoesNotCrash) {
  const RoutingScenario scenario(small_params(), 20);
  auto cfg = small_task(RoutingPolicy::kOldestNode, 10);
  cfg.agent_loss_probability = 0.5;  // brutal: everyone dies early
  const auto result = run_routing_task(scenario, cfg, Rng(10));
  EXPECT_EQ(result.final_population, 0u);
  ASSERT_EQ(result.connectivity.size(), 120u);
  // With no agents and a 30-step freshness window, late connectivity must
  // collapse to (at most) the bare gateways.
  EXPECT_LT(result.connectivity.back(), 0.2);
}

TEST(RoutingTaskTest, LossDegradesConnectivityMonotonically) {
  const RoutingScenario scenario(small_params(), 21);
  double healthy = 0.0, lossy = 0.0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    auto cfg = small_task(RoutingPolicy::kOldestNode, 30);
    healthy += run_routing_task(scenario, cfg, Rng(70 + s)).mean_connectivity;
    cfg.agent_loss_probability = 0.05;
    lossy += run_routing_task(scenario, cfg, Rng(70 + s)).mean_connectivity;
  }
  EXPECT_GT(healthy, lossy);
}

TEST(RoutingTaskTest, RespawnRecoversFromLoss) {
  const RoutingScenario scenario(small_params(), 22);
  auto lossy = small_task(RoutingPolicy::kOldestNode, 30);
  lossy.agent_loss_probability = 0.05;
  auto healed = lossy;
  healed.gateway_respawn_probability = 0.5;
  double lossy_sum = 0.0, healed_sum = 0.0;
  std::size_t healed_final = 0;
  for (std::uint64_t s = 0; s < 3; ++s) {
    lossy_sum += run_routing_task(scenario, lossy, Rng(80 + s))
                     .mean_connectivity;
    const auto r = run_routing_task(scenario, healed, Rng(80 + s));
    healed_sum += r.mean_connectivity;
    healed_final = r.final_population;
    EXPECT_GT(r.agents_respawned, 0u);
  }
  EXPECT_GT(healed_sum, lossy_sum);
  EXPECT_GT(healed_final, 10u) << "respawn should hold population up";
}

TEST(RoutingTaskTest, PopulationNeverExceedsTarget) {
  const RoutingScenario scenario(small_params(), 23);
  auto cfg = small_task(RoutingPolicy::kOldestNode, 20);
  cfg.agent_loss_probability = 0.01;
  cfg.gateway_respawn_probability = 1.0;  // eager respawn
  const auto result = run_routing_task(scenario, cfg, Rng(11));
  EXPECT_LE(result.final_population, 20u);
}

TEST(RoutingTaskTest, RejectsBadFaultProbabilities) {
  const RoutingScenario scenario(small_params(), 24);
  auto cfg = small_task(RoutingPolicy::kRandom);
  cfg.agent_loss_probability = 1.5;
  EXPECT_THROW(run_routing_task(scenario, cfg, Rng(1)), ConfigError);
  cfg = small_task(RoutingPolicy::kRandom);
  cfg.gateway_respawn_probability = -0.1;
  EXPECT_THROW(run_routing_task(scenario, cfg, Rng(1)), ConfigError);
}

TEST(RoutingTaskTest, RejectsBadMeasureWindow) {
  const RoutingScenario scenario(small_params(), 13);
  auto cfg = small_task(RoutingPolicy::kRandom);
  cfg.measure_from = cfg.steps;
  EXPECT_THROW(run_routing_task(scenario, cfg, Rng(1)), ConfigError);
}

}  // namespace
}  // namespace agentnet
