#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

namespace agentnet {
namespace {

const std::vector<NodeId> kNeighbors{3, 5, 8, 11};

std::int64_t zero_key(NodeId) { return 0; }

TEST(SelectionTest, EmptyNeighborsGivesInvalid) {
  StigmergyBoard board(16);
  Rng rng(1);
  EXPECT_EQ(select_target(std::span<const NodeId>{}, zero_key,
                          StigmergyMode::kOff, board, 0, 0, rng),
            kInvalidNode);
}

TEST(SelectionTest, SingleNeighborAlwaysChosen) {
  StigmergyBoard board(16);
  Rng rng(2);
  const std::vector<NodeId> one{7};
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(select_target(std::span<const NodeId>(one), zero_key,
                            StigmergyMode::kOff, board, 0, 0, rng),
              7u);
}

TEST(SelectionTest, MinimiserWinsRegardlessOfOrder) {
  StigmergyBoard board(16);
  Rng rng(3);
  auto key = [](NodeId v) {
    return v == 8 ? std::int64_t{-5} : static_cast<std::int64_t>(v);
  };
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(select_target(std::span<const NodeId>(kNeighbors), key,
                            StigmergyMode::kOff, board, 0, 0, rng),
              8u);
}

TEST(SelectionTest, RandomTieBreakCoversAllMinimisers) {
  StigmergyBoard board(16);
  Rng rng(4);
  std::set<NodeId> seen;
  for (int i = 0; i < 300; ++i)
    seen.insert(select_target(std::span<const NodeId>(kNeighbors), zero_key,
                              StigmergyMode::kOff, board, 0, 0, rng,
                              TieBreak::kRandom));
  EXPECT_EQ(seen.size(), kNeighbors.size());
}

TEST(SelectionTest, RandomTieBreakIsRoughlyUniform) {
  StigmergyBoard board(16);
  Rng rng(5);
  std::map<NodeId, int> counts;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i)
    ++counts[select_target(std::span<const NodeId>(kNeighbors), zero_key,
                           StigmergyMode::kOff, board, 0, 0, rng,
                           TieBreak::kRandom)];
  for (NodeId v : kNeighbors) {
    EXPECT_GT(counts[v], trials / 4 - 300);
    EXPECT_LT(counts[v], trials / 4 + 300);
  }
}

TEST(SelectionTest, SharedHashIdenticalContextIdenticalPick) {
  StigmergyBoard board(16);
  Rng rng_a(6), rng_b(777);  // different private randomness must not matter
  const NodeId a = select_target(std::span<const NodeId>(kNeighbors),
                                 zero_key, StigmergyMode::kOff, board, 2, 9,
                                 rng_a, TieBreak::kSharedHash);
  const NodeId b = select_target(std::span<const NodeId>(kNeighbors),
                                 zero_key, StigmergyMode::kOff, board, 2, 9,
                                 rng_b, TieBreak::kSharedHash);
  EXPECT_EQ(a, b);
}

TEST(SelectionTest, SharedHashVariesAcrossSteps) {
  StigmergyBoard board(16);
  Rng rng(7);
  std::set<NodeId> seen;
  for (std::size_t now = 0; now < 50; ++now)
    seen.insert(select_target(std::span<const NodeId>(kNeighbors), zero_key,
                              StigmergyMode::kOff, board, 2, now, rng,
                              TieBreak::kSharedHash));
  EXPECT_GT(seen.size(), 2u) << "the pick must not be pinned to one node";
}

TEST(SelectionTest, SharedHashVariesAcrossNodes) {
  StigmergyBoard board(64);
  Rng rng(8);
  std::set<NodeId> seen;
  for (NodeId at = 0; at < 50; ++at)
    seen.insert(select_target(std::span<const NodeId>(kNeighbors), zero_key,
                              StigmergyMode::kOff, board, at, 3, rng,
                              TieBreak::kSharedHash));
  EXPECT_GT(seen.size(), 2u);
}

TEST(SelectionTest, SharedHashSensitiveToKeyContext) {
  // Same tie set, different non-minimal key elsewhere: the picks should
  // decorrelate (this is what keeps merely-similar agents from herding).
  StigmergyBoard board(16);
  Rng rng(9);
  int agree = 0;
  for (std::size_t now = 0; now < 200; ++now) {
    auto key1 = [](NodeId v) {
      return static_cast<std::int64_t>(v == 11 ? 50 : 0);
    };
    auto key2 = [](NodeId v) {
      return static_cast<std::int64_t>(v == 11 ? 60 : 0);
    };
    const NodeId a = select_target(std::span<const NodeId>(kNeighbors), key1,
                                   StigmergyMode::kOff, board, 2, now, rng,
                                   TieBreak::kSharedHash);
    const NodeId b = select_target(std::span<const NodeId>(kNeighbors), key2,
                                   StigmergyMode::kOff, board, 2, now, rng,
                                   TieBreak::kSharedHash);
    if (a == b) ++agree;
  }
  // Tie sets are {3,5,8}: blind chance agreement is ~1/3 of 200 ≈ 67.
  EXPECT_LT(agree, 140);
  EXPECT_GT(agree, 20);
}

TEST(SelectionTest, SharedHashRoughlyUniformOverNodesAndSteps) {
  StigmergyBoard board(16);
  Rng rng(10);
  std::map<NodeId, int> counts;
  const int trials = 8000;
  for (int i = 0; i < trials; ++i)
    ++counts[select_target(std::span<const NodeId>(kNeighbors), zero_key,
                           StigmergyMode::kOff, board, 2,
                           static_cast<std::size_t>(i), rng,
                           TieBreak::kSharedHash)];
  for (NodeId v : kNeighbors) {
    EXPECT_GT(counts[v], trials / 4 - 300);
    EXPECT_LT(counts[v], trials / 4 + 300);
  }
}

TEST(SelectionTest, FilterFirstPrefersUnmarked) {
  StigmergyBoard board(16, 0, 4);
  board.stamp(2, 3, 0);
  board.stamp(2, 5, 0);
  board.stamp(2, 8, 0);
  Rng rng(11);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(select_target(std::span<const NodeId>(kNeighbors), zero_key,
                            StigmergyMode::kFilterFirst, board, 2, 0, rng),
              11u);
}

TEST(SelectionTest, FilterFirstFallsBackWhenAllMarked) {
  StigmergyBoard board(16, 0, 4);
  for (NodeId v : kNeighbors) board.stamp(2, v, 0);
  Rng rng(12);
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(select_target(std::span<const NodeId>(kNeighbors), zero_key,
                              StigmergyMode::kFilterFirst, board, 2, 0, rng));
  EXPECT_EQ(seen.size(), kNeighbors.size());
}

TEST(SelectionTest, TieBreakModeOnlyAffectsTies) {
  StigmergyBoard board(16, 0, 4);
  board.stamp(2, 8, 0);  // mark the unique minimiser
  auto key = [](NodeId v) { return static_cast<std::int64_t>(v == 8 ? -1 : 0); };
  Rng rng(13);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(select_target(std::span<const NodeId>(kNeighbors), key,
                            StigmergyMode::kTieBreak, board, 2, 0, rng),
              8u)
        << "unique minimiser wins even when marked";
}

TEST(SelectionTest, ExpiredFootprintsIgnored) {
  StigmergyBoard board(16, 5, 4);
  board.stamp(2, 11, 0);
  Rng rng(14);
  bool saw_11 = false;
  for (int i = 0; i < 100; ++i)
    saw_11 |= select_target(std::span<const NodeId>(kNeighbors), zero_key,
                            StigmergyMode::kFilterFirst, board, 2, 100,
                            rng) == 11u;
  EXPECT_TRUE(saw_11) << "footprint expired at t=5, must not bias t=100";
}

}  // namespace
}  // namespace agentnet
