#include "core/stigmergy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

TEST(StigmergyTest, UnmarkedByDefault) {
  StigmergyBoard board(4);
  EXPECT_FALSE(board.marked(0, 1, 0));
  EXPECT_EQ(board.footprint_count(0, 0), 0u);
}

TEST(StigmergyTest, StampAndQuery) {
  StigmergyBoard board(4);
  board.stamp(0, 2, 5);
  EXPECT_TRUE(board.marked(0, 2, 5));
  EXPECT_FALSE(board.marked(0, 1, 5));
  EXPECT_FALSE(board.marked(2, 0, 5)) << "footprints are per origin node";
  EXPECT_EQ(board.footprint_count(0, 5), 1u);
}

TEST(StigmergyTest, NoExpiryWhenHorizonZero) {
  StigmergyBoard board(4, 0);
  board.stamp(0, 1, 0);
  EXPECT_TRUE(board.marked(0, 1, 1000000));
}

TEST(StigmergyTest, HorizonExpiresFootprints) {
  StigmergyBoard board(4, 10);
  board.stamp(0, 1, 0);
  EXPECT_TRUE(board.marked(0, 1, 10));
  EXPECT_FALSE(board.marked(0, 1, 11));
  EXPECT_EQ(board.footprint_count(0, 11), 0u);
}

TEST(StigmergyTest, RestampRefreshes) {
  StigmergyBoard board(4, 10);
  board.stamp(0, 1, 0);
  board.stamp(0, 1, 8);
  EXPECT_TRUE(board.marked(0, 1, 15));
  EXPECT_EQ(board.footprint_count(0, 15), 1u) << "same target, one slot";
}

TEST(StigmergyTest, DefaultCapacityKeepsOnlyLatestFootprint) {
  StigmergyBoard board(5);  // capacity 1: the paper's "last path" rule
  board.stamp(0, 1, 0);
  board.stamp(0, 2, 1);
  EXPECT_FALSE(board.marked(0, 1, 1));
  EXPECT_TRUE(board.marked(0, 2, 1));
  EXPECT_EQ(board.footprint_count(0, 1), 1u);
}

TEST(StigmergyTest, MultipleTargetsCoexist) {
  StigmergyBoard board(5, 0, 8);
  board.stamp(0, 1, 0);
  board.stamp(0, 2, 1);
  board.stamp(0, 3, 2);
  EXPECT_TRUE(board.marked(0, 1, 2));
  EXPECT_TRUE(board.marked(0, 2, 2));
  EXPECT_TRUE(board.marked(0, 3, 2));
  EXPECT_EQ(board.footprint_count(0, 2), 3u);
}

TEST(StigmergyTest, CapacityEvictsOldest) {
  StigmergyBoard board(10, 0, 2);
  board.stamp(0, 1, 0);
  board.stamp(0, 2, 1);
  board.stamp(0, 3, 2);  // evicts footprint for 1
  EXPECT_FALSE(board.marked(0, 1, 2));
  EXPECT_TRUE(board.marked(0, 2, 2));
  EXPECT_TRUE(board.marked(0, 3, 2));
}

TEST(StigmergyTest, ExpiredSlotReusedBeforeEviction) {
  StigmergyBoard board(10, 5, 2);
  board.stamp(0, 1, 0);
  board.stamp(0, 2, 7);  // footprint for 1 expired at t=6
  board.stamp(0, 3, 8);  // should reuse 1's slot, keeping 2
  EXPECT_TRUE(board.marked(0, 2, 8));
  EXPECT_TRUE(board.marked(0, 3, 8));
}

TEST(StigmergyTest, ClearRemovesEverything) {
  StigmergyBoard board(4);
  board.stamp(0, 1, 0);
  board.stamp(2, 3, 0);
  board.clear();
  EXPECT_FALSE(board.marked(0, 1, 0));
  EXPECT_FALSE(board.marked(2, 3, 0));
}

TEST(StigmergyTest, RejectsZeroCapacity) {
  EXPECT_THROW(StigmergyBoard(4, 0, 0), ConfigError);
}

}  // namespace
}  // namespace agentnet
