#include "io/scenario_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace agentnet {
namespace {

RoutingScenarioParams small_params() {
  RoutingScenarioParams p;
  p.node_count = 40;
  p.gateway_count = 4;
  p.bounds = {{0.0, 0.0}, {300.0, 300.0}};
  p.trace_steps = 50;
  return p;
}

TEST(ScenarioIoTest, RoundTripPreservesStructure) {
  const RoutingScenario original(small_params(), 5);
  std::stringstream buffer;
  save_scenario(original, buffer);
  const RoutingScenario loaded = load_scenario(buffer);
  EXPECT_EQ(loaded.node_count(), original.node_count());
  EXPECT_EQ(loaded.is_gateway(), original.is_gateway());
  EXPECT_EQ(loaded.mobile(), original.mobile());
  EXPECT_EQ(loaded.initial_positions(), original.initial_positions());
  EXPECT_EQ(loaded.base_ranges(), original.base_ranges());
  EXPECT_EQ(loaded.trace().frames(), original.trace().frames());
}

TEST(ScenarioIoTest, LoadedWorldReplaysIdentically) {
  const RoutingScenario original(small_params(), 6);
  std::stringstream buffer;
  save_scenario(original, buffer);
  const RoutingScenario loaded = load_scenario(buffer);
  World a = original.make_world();
  World b = loaded.make_world();
  EXPECT_EQ(a.graph(), b.graph());
  for (int t = 0; t < 50; ++t) {
    a.advance();
    b.advance();
    ASSERT_EQ(a.positions(), b.positions()) << "step " << t;
    ASSERT_EQ(a.graph(), b.graph()) << "step " << t;
  }
}

TEST(ScenarioIoTest, LoadedTaskResultsMatch) {
  const RoutingScenario original(small_params(), 7);
  std::stringstream buffer;
  save_scenario(original, buffer);
  const RoutingScenario loaded = load_scenario(buffer);
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 50;
  task.measure_from = 25;
  const auto a = run_routing_task(original, task, Rng(9));
  const auto b = run_routing_task(loaded, task, Rng(9));
  EXPECT_EQ(a.connectivity, b.connectivity);
}

TEST(ScenarioIoTest, PlacementSurvivesRoundTrip) {
  auto params = small_params();
  params.gateway_placement = GatewayPlacement::kSpread;
  const RoutingScenario original(params, 8);
  std::stringstream buffer;
  save_scenario(original, buffer);
  const RoutingScenario loaded = load_scenario(buffer);
  EXPECT_EQ(loaded.params().gateway_placement, GatewayPlacement::kSpread);
  EXPECT_EQ(loaded.is_gateway(), original.is_gateway());
}

TEST(ScenarioIoTest, RejectsBadMagic) {
  std::stringstream bad("not-a-scenario 1\n");
  EXPECT_THROW(load_scenario(bad), ConfigError);
}

TEST(ScenarioIoTest, RejectsTruncated) {
  const RoutingScenario original(small_params(), 9);
  std::stringstream buffer;
  save_scenario(original, buffer);
  const std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() * 2 / 3));
  EXPECT_THROW(load_scenario(truncated), ConfigError);
}

TEST(ScenarioIoTest, RejectsSectionOutOfOrder) {
  std::stringstream bad(
      "agentnet-scenario 1\n"
      "bounds 0 0 1 1\n");  // params section missing
  EXPECT_THROW(load_scenario(bad), ConfigError);
}

TEST(ScenarioIoTest, FileRoundTrip) {
  const RoutingScenario original(small_params(), 10);
  const std::string path = ::testing::TempDir() + "/agentnet_scenario.txt";
  save_scenario_file(original, path);
  const RoutingScenario loaded = load_scenario_file(path);
  EXPECT_EQ(loaded.is_gateway(), original.is_gateway());
}

TEST(GatewayPlacementTest, SpreadCoversArenaBetterThanRandom) {
  auto params = small_params();
  params.node_count = 200;
  params.gateway_count = 9;
  auto coverage_radius = [&](GatewayPlacement placement) {
    params.gateway_placement = placement;
    const RoutingScenario s(params, 11);
    // Max over nodes of the distance to the nearest gateway.
    double worst = 0.0;
    for (std::size_t i = 0; i < s.node_count(); ++i) {
      double best = 1e18;
      for (std::size_t g = 0; g < s.node_count(); ++g)
        if (s.is_gateway()[g])
          best = std::min(best, distance(s.initial_positions()[i],
                                         s.initial_positions()[g]));
      worst = std::max(worst, best);
    }
    return worst;
  };
  EXPECT_LT(coverage_radius(GatewayPlacement::kSpread),
            coverage_radius(GatewayPlacement::kRandom));
}

TEST(GatewayPlacementTest, PerimeterGatewaysHugTheBoundary) {
  auto params = small_params();
  params.node_count = 200;
  params.gateway_count = 8;
  params.gateway_placement = GatewayPlacement::kPerimeter;
  const RoutingScenario s(params, 12);
  const Vec2 centre = (params.bounds.lo + params.bounds.hi) * 0.5;
  const double half = params.bounds.width() * 0.5;
  for (std::size_t g = 0; g < s.node_count(); ++g) {
    if (!s.is_gateway()[g]) continue;
    const Vec2 p = s.initial_positions()[g];
    const double edge_distance =
        std::min(std::min(p.x - params.bounds.lo.x,
                          params.bounds.hi.x - p.x),
                 std::min(p.y - params.bounds.lo.y,
                          params.bounds.hi.y - p.y));
    EXPECT_LT(edge_distance, half * 0.8)
        << "perimeter gateway sits suspiciously close to the centre";
    (void)centre;
  }
}

TEST(GatewayPlacementTest, AllStrategiesProduceExactCount) {
  auto params = small_params();
  for (auto placement :
       {GatewayPlacement::kRandom, GatewayPlacement::kSpread,
        GatewayPlacement::kPerimeter}) {
    params.gateway_placement = placement;
    const RoutingScenario s(params, 13);
    std::size_t count = 0;
    for (bool g : s.is_gateway())
      if (g) ++count;
    EXPECT_EQ(count, params.gateway_count) << to_string(placement);
  }
}

TEST(GatewayPlacementTest, ToStringNames) {
  EXPECT_STREQ(to_string(GatewayPlacement::kRandom), "random");
  EXPECT_STREQ(to_string(GatewayPlacement::kSpread), "spread");
  EXPECT_STREQ(to_string(GatewayPlacement::kPerimeter), "perimeter");
}

}  // namespace
}  // namespace agentnet
