#include "io/network_io.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace agentnet {
namespace {

GeneratedNetwork sample_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 40;
  params.target_edges = 240;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 5);
}

TEST(NetworkIoTest, RoundTripPreservesEverything) {
  const auto net = sample_network();
  std::stringstream buffer;
  save_network(net, buffer);
  const auto loaded = load_network(buffer);
  EXPECT_EQ(loaded.graph, net.graph);
  EXPECT_EQ(loaded.positions, net.positions);
  EXPECT_EQ(loaded.base_ranges, net.base_ranges);
  EXPECT_EQ(loaded.policy, net.policy);
  EXPECT_EQ(loaded.bounds.lo, net.bounds.lo);
  EXPECT_EQ(loaded.bounds.hi, net.bounds.hi);
}

TEST(NetworkIoTest, RoundTripAllPolicies) {
  for (LinkPolicy policy : {LinkPolicy::kDirected, LinkPolicy::kSymmetricAnd,
                            LinkPolicy::kSymmetricOr}) {
    GeneratedNetwork net;
    net.bounds = {{0.0, 0.0}, {10.0, 10.0}};
    net.policy = policy;
    net.positions = {{1.0, 1.0}, {2.0, 2.0}};
    net.base_ranges = {3.0, 4.0};
    net.graph = Graph(2);
    net.graph.add_edge(0, 1);
    std::stringstream buffer;
    save_network(net, buffer);
    EXPECT_EQ(load_network(buffer).policy, policy);
  }
}

TEST(NetworkIoTest, CommentsAndBlankLinesIgnored) {
  const auto net = sample_network();
  std::stringstream buffer;
  save_network(net, buffer);
  std::string text = "# produced by test\n\n" + buffer.str();
  std::stringstream annotated(text);
  EXPECT_EQ(load_network(annotated).graph, net.graph);
}

TEST(NetworkIoTest, RejectsBadMagic) {
  std::stringstream bad("something-else 1\n");
  EXPECT_THROW(load_network(bad), ConfigError);
}

TEST(NetworkIoTest, RejectsWrongVersion) {
  std::stringstream bad("agentnet-network 9\n");
  EXPECT_THROW(load_network(bad), ConfigError);
}

TEST(NetworkIoTest, RejectsTruncatedFile) {
  const auto net = sample_network();
  std::stringstream buffer;
  save_network(net, buffer);
  std::string text = buffer.str();
  std::stringstream truncated(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_network(truncated), ConfigError);
}

TEST(NetworkIoTest, RejectsEdgeOutOfRange) {
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 2\n"
      "1 1 5\n"
      "2 2 5\n"
      "edges 1\n"
      "0 7\n");
  EXPECT_THROW(load_network(bad), ConfigError);
}

TEST(NetworkIoTest, RejectsDuplicateEdge) {
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 2\n"
      "1 1 5\n"
      "2 2 5\n"
      "edges 2\n"
      "0 1\n"
      "0 1\n");
  EXPECT_THROW(load_network(bad), ConfigError);
}

TEST(NetworkIoTest, RejectsNonPositiveRange) {
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 1\n"
      "1 1 0\n"
      "edges 0\n");
  EXPECT_THROW(load_network(bad), ConfigError);
}

TEST(NetworkIoTest, RejectsGiantNodeCount) {
  // A corrupted count line must be rejected before any allocation happens.
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 999999999999\n");
  try {
    load_network(bad);
    FAIL() << "giant node count accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible node count"),
              std::string::npos)
        << e.what();
  }
}

TEST(NetworkIoTest, RejectsGiantEdgeCount) {
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 2\n"
      "1 1 5\n"
      "2 2 5\n"
      "edges 888888888888\n");
  try {
    load_network(bad);
    FAIL() << "giant edge count accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible edge count"),
              std::string::npos)
        << e.what();
  }
}

TEST(NetworkIoTest, ErrorsNameTheOffendingLine) {
  // Bad node record on (1-based) line 6: the message must say so.
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 2\n"
      "1 1 5\n"
      "2 2 not-a-number\n");
  try {
    load_network(bad);
    FAIL() << "malformed node record accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 6"), std::string::npos)
        << e.what();
  }
}

TEST(NetworkIoTest, TruncationNamesLastLineAndExpectedSection) {
  // Stream ends after the second of three promised node records.
  std::stringstream truncated(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 3\n"
      "1 1 5\n"
      "2 2 5\n");
  try {
    load_network(truncated);
    FAIL() << "truncated file accepted";
  } catch (const ConfigError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("truncated after line 6"), std::string::npos) << what;
    EXPECT_NE(what.find("node record"), std::string::npos) << what;
  }
}

TEST(NetworkIoTest, OutOfRangeEdgeNamesTheLine) {
  std::stringstream bad(
      "agentnet-network 1\n"
      "bounds 0 0 10 10\n"
      "policy directed\n"
      "nodes 2\n"
      "1 1 5\n"
      "2 2 5\n"
      "edges 1\n"
      "0 7\n");
  try {
    load_network(bad);
    FAIL() << "out-of-range edge accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 8"), std::string::npos)
        << e.what();
  }
}

TEST(NetworkIoTest, SaveFileLeavesNoTempOnSuccess) {
  const auto net = sample_network();
  const std::string path = ::testing::TempDir() + "/agentnet_net_atomic.txt";
  save_network_file(net, path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open()) << "temp file left behind after commit";
  EXPECT_EQ(load_network_file(path).graph, net.graph);
}

TEST(NetworkIoTest, FileRoundTrip) {
  const auto net = sample_network();
  const std::string path = ::testing::TempDir() + "/agentnet_net_test.txt";
  save_network_file(net, path);
  EXPECT_EQ(load_network_file(path).graph, net.graph);
}

TEST(NetworkIoTest, MissingFileThrows) {
  EXPECT_THROW(load_network_file("/nonexistent/definitely/missing.txt"),
               ConfigError);
}

TEST(DotTest, ContainsNodesAndEdges) {
  GeneratedNetwork net;
  net.bounds = {{0.0, 0.0}, {10.0, 10.0}};
  net.positions = {{1.0, 1.0}, {2.0, 2.0}, {3.0, 3.0}};
  net.base_ranges = {1.0, 1.0, 1.0};
  net.graph = Graph(3);
  net.graph.add_undirected_edge(0, 1);
  net.graph.add_edge(0, 2);  // one-way
  const std::string dot = to_dot(net);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1 [dir=none];"), std::string::npos);
  EXPECT_EQ(dot.find("n1 -> n0"), std::string::npos)
      << "mutual pair must collapse to one edge";
  EXPECT_NE(dot.find("n0 -> n2;"), std::string::npos);
}

TEST(DotTest, HighlightsMarked) {
  GeneratedNetwork net;
  net.bounds = {{0.0, 0.0}, {10.0, 10.0}};
  net.positions = {{1.0, 1.0}, {2.0, 2.0}};
  net.base_ranges = {1.0, 1.0};
  net.graph = Graph(2);
  DotOptions options;
  options.highlights = {1};
  const std::string dot = to_dot(net, options);
  EXPECT_NE(dot.find("fillcolor=gold"), std::string::npos);
  EXPECT_THROW(
      to_dot(net, DotOptions{.collapse_mutual = true,
                             .position_scale = 1.0,
                             .highlights = {9}}),
      ConfigError);
}

TEST(DotTest, NoCollapseEmitsBothArcs) {
  GeneratedNetwork net;
  net.bounds = {{0.0, 0.0}, {10.0, 10.0}};
  net.positions = {{1.0, 1.0}, {2.0, 2.0}};
  net.base_ranges = {1.0, 1.0};
  net.graph = Graph(2);
  net.graph.add_undirected_edge(0, 1);
  DotOptions options;
  options.collapse_mutual = false;
  const std::string dot = to_dot(net, options);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -> n0;"), std::string::npos);
}

TEST(SeriesCsvTest, EqualLengthSeries) {
  std::ostringstream os;
  write_series_csv(os, {"a", "b"}, {{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(os.str(), "step,a,b\n0,1,3\n1,2,4\n");
}

TEST(SeriesCsvTest, RaggedSeriesLeaveBlanks) {
  std::ostringstream os;
  write_series_csv(os, {"a", "b"}, {{1.0}, {3.0, 4.0}});
  EXPECT_EQ(os.str(), "step,a,b\n0,1,3\n1,,4\n");
}

TEST(SeriesCsvTest, NameCountMismatchThrows) {
  std::ostringstream os;
  EXPECT_THROW(write_series_csv(os, {"a"}, {{1.0}, {2.0}}), ConfigError);
}

TEST(RunRecorderTest, CountsFramesAndRows) {
  RunRecorder rec;
  rec.frame(0, {{1.0, 2.0}, {3.0, 4.0}}, {1});
  rec.frame(1, {{1.0, 2.0}, {3.5, 4.0}}, {0});
  EXPECT_EQ(rec.frames(), 2u);
  std::ostringstream os;
  rec.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("step,kind,id,x,y"), std::string::npos);
  EXPECT_NE(csv.find("0,agent,0,3,4"), std::string::npos)
      << "agent rides node 1 at frame 0";
  EXPECT_NE(csv.find("1,agent,0,1,2"), std::string::npos);
}

TEST(RunRecorderTest, RejectsBadAgentLocation) {
  RunRecorder rec;
  EXPECT_THROW(rec.frame(0, {{1.0, 2.0}}, {5}), ConfigError);
}

}  // namespace
}  // namespace agentnet
