#include "radio/range_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace agentnet {
namespace {

TEST(RangeHelpersTest, FixedRangesUniform) {
  const auto r = fixed_ranges(5, 30.0);
  ASSERT_EQ(r.size(), 5u);
  for (double x : r) EXPECT_DOUBLE_EQ(x, 30.0);
}

TEST(RangeHelpersTest, FixedRejectsNonPositive) {
  EXPECT_THROW(fixed_ranges(3, 0.0), ConfigError);
}

TEST(RangeHelpersTest, HeterogeneousWithinBounds) {
  Rng rng(1);
  const auto r = heterogeneous_ranges(1000, 10.0, 20.0, rng);
  double lo = 1e9, hi = 0.0;
  for (double x : r) {
    EXPECT_GE(x, 10.0);
    EXPECT_LE(x, 20.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  // The draw should actually spread across the interval.
  EXPECT_LT(lo, 11.0);
  EXPECT_GT(hi, 19.0);
}

TEST(RangeHelpersTest, HeterogeneousRejectsBadBounds) {
  Rng rng(1);
  EXPECT_THROW(heterogeneous_ranges(3, 0.0, 10.0, rng), ConfigError);
  EXPECT_THROW(heterogeneous_ranges(3, 10.0, 5.0, rng), ConfigError);
}

TEST(RangeScalingTest, FullChargeGivesBaseRange) {
  RangeScaling s{0.3};
  EXPECT_DOUBLE_EQ(s.apply(100.0, 1.0), 100.0);
}

TEST(RangeScalingTest, EmptyChargeGivesFloor) {
  RangeScaling s{0.3};
  EXPECT_DOUBLE_EQ(s.apply(100.0, 0.0), 30.0);
}

TEST(RangeScalingTest, LinearInBetween) {
  RangeScaling s{0.5};
  EXPECT_DOUBLE_EQ(s.apply(100.0, 0.5), 75.0);
}

TEST(RangeScalingTest, ClampsFractionOutsideUnitInterval) {
  RangeScaling s{0.4};
  EXPECT_DOUBLE_EQ(s.apply(10.0, -2.0), 4.0);
  EXPECT_DOUBLE_EQ(s.apply(10.0, 3.0), 10.0);
}

TEST(RadioModelTest, EffectiveRangeCombinesScaling) {
  RadioModel radio({100.0, 50.0}, RangeScaling{0.5});
  EXPECT_DOUBLE_EQ(radio.effective_range(0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(radio.effective_range(0, 0.0), 50.0);
  EXPECT_DOUBLE_EQ(radio.effective_range(1, 0.5), 37.5);
}

TEST(RadioModelTest, MaxBaseRange) {
  RadioModel radio({10.0, 99.0, 45.0}, RangeScaling{1.0});
  EXPECT_DOUBLE_EQ(radio.max_base_range(), 99.0);
  EXPECT_EQ(radio.size(), 3u);
}

TEST(RadioModelTest, RejectsInvalidConstruction) {
  EXPECT_THROW(RadioModel({}, RangeScaling{0.5}), ConfigError);
  EXPECT_THROW(RadioModel({10.0, -1.0}, RangeScaling{0.5}), ConfigError);
  EXPECT_THROW(RadioModel({10.0}, RangeScaling{0.0}), ConfigError);
  EXPECT_THROW(RadioModel({10.0}, RangeScaling{1.5}), ConfigError);
}

}  // namespace
}  // namespace agentnet
