// Regression suite for the parallel replication engine: experiment
// summaries must be bit-identical at every thread count, and the mergeable
// accumulators must agree with their single-pass references.
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel_for.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"

namespace agentnet {
namespace {

GeneratedNetwork tiny_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 260;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 3);
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

void expect_identical(const RunningStats& a, const RunningStats& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.empty()) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_identical(const SeriesAccumulator& a, const SeriesAccumulator& b) {
  ASSERT_EQ(a.length(), b.length());
  ASSERT_EQ(a.runs(), b.runs());
  for (std::size_t i = 0; i < a.length(); ++i)
    expect_identical(a.at(i), b.at(i));
}

// The paper protocol's guarantee: AGENTNET_THREADS only changes wall-clock,
// never a single bit of any table. {1, 2, 7} covers the serial path, an
// even split and a worker count that does not divide the run count.
TEST(ParallelDeterminismTest, MappingBitIdenticalAcrossThreadCounts) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 4;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  const auto serial = run_mapping_experiment(net, task, 9, 42, /*threads=*/1);
  for (int threads : {2, 7}) {
    SCOPED_TRACE(threads);
    const auto parallel = run_mapping_experiment(net, task, 9, 42, threads);
    EXPECT_EQ(parallel.runs, serial.runs);
    EXPECT_EQ(parallel.unfinished, serial.unfinished);
    expect_identical(parallel.finishing_time, serial.finishing_time);
    expect_identical(parallel.knowledge, serial.knowledge);
  }
}

TEST(ParallelDeterminismTest, RoutingBitIdenticalAcrossThreadCounts) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 60;
  task.measure_from = 30;
  task.record_oracle = true;
  const auto serial =
      run_routing_experiment(scenario, task, 5, 70, /*threads=*/1);
  for (int threads : {2, 7}) {
    SCOPED_TRACE(threads);
    const auto parallel = run_routing_experiment(scenario, task, 5, 70, threads);
    EXPECT_EQ(parallel.runs, serial.runs);
    expect_identical(parallel.mean_connectivity, serial.mean_connectivity);
    expect_identical(parallel.window_stddev, serial.window_stddev);
    expect_identical(parallel.connectivity, serial.connectivity);
    expect_identical(parallel.oracle, serial.oracle);
  }
}

TEST(ParallelDeterminismTest, ThreadsEnvKnobDrivesDefaultPath) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 3;
  task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
  const auto serial = run_mapping_experiment(net, task, 6, 7, /*threads=*/1);
  ASSERT_EQ(setenv("AGENTNET_THREADS", "7", 1), 0);
  const auto via_env = run_mapping_experiment(net, task, 6, 7);
  unsetenv("AGENTNET_THREADS");
  expect_identical(via_env.finishing_time, serial.finishing_time);
  expect_identical(via_env.knowledge, serial.knowledge);
}

TEST(ParallelForTest, RunsEveryIndexExactlyOnce) {
  std::vector<int> hits(1000, 0);
  ThreadPool pool(5);
  parallel_for(pool, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1);
}

TEST(ParallelForTest, PropagatesWorkerExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(parallel_for(pool, 100,
                            [](std::size_t i) {
                              if (i == 57) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, SerialFallbackWithoutPool) {
  std::vector<int> hits(17, 0);
  parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; },
               /*threads=*/1);
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(RunningStatsMergeTest, MatchesSinglePassReference) {
  Rng rng(99);
  std::vector<double> values(257);
  for (auto& v : values) v = rng.normal(5.0, 3.0);

  RunningStats reference;
  for (double v : values) reference.add(v);

  RunningStats parts[3];
  for (std::size_t i = 0; i < values.size(); ++i)
    parts[i % 3].add(values[i]);
  RunningStats merged;
  for (const auto& part : parts) merged.merge(part);

  EXPECT_EQ(merged.count(), reference.count());
  EXPECT_NEAR(merged.mean(), reference.mean(), 1e-12);
  EXPECT_NEAR(merged.variance(), reference.variance(), 1e-10);
  EXPECT_EQ(merged.min(), reference.min());
  EXPECT_EQ(merged.max(), reference.max());
}

TEST(RunningStatsMergeTest, EmptySidesAreIdentity) {
  RunningStats stats;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.variance(), stats.variance());
}

TEST(SeriesAccumulatorMergeTest, EqualLengthMatchesSinglePass) {
  const std::vector<std::vector<double>> series = {
      {1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}, {2.0, 2.0, 2.0}};
  SeriesAccumulator reference;
  for (const auto& s : series) reference.add(s);

  SeriesAccumulator left, right;
  left.add(series[0]);
  left.add(series[1]);
  right.add(series[2]);
  right.add(series[3]);
  left.merge(right);

  ASSERT_EQ(left.length(), reference.length());
  ASSERT_EQ(left.runs(), reference.runs());
  for (std::size_t i = 0; i < left.length(); ++i) {
    EXPECT_NEAR(left.at(i).mean(), reference.at(i).mean(), 1e-12);
    EXPECT_NEAR(left.at(i).variance(), reference.at(i).variance(), 1e-12);
  }
}

TEST(SeriesAccumulatorMergeTest, PaddedTailMatchesSerialPadding) {
  // The mapping harness pads a finished run's series with its final value;
  // merging accumulators of different lengths must agree with that.
  std::vector<double> long_run = {0.1, 0.4, 0.8, 0.9, 1.0};
  std::vector<double> short_run = {0.2, 0.7, 1.0};

  SeriesAccumulator reference;
  reference.add(long_run);
  std::vector<double> padded = short_run;
  padded.resize(long_run.size(), short_run.back());
  reference.add(padded);

  SeriesAccumulator merged, shorter;
  merged.add(long_run);
  shorter.add(short_run);
  merged.merge(shorter);

  ASSERT_EQ(merged.length(), reference.length());
  ASSERT_EQ(merged.runs(), reference.runs());
  for (std::size_t i = 0; i < merged.length(); ++i) {
    EXPECT_NEAR(merged.at(i).mean(), reference.at(i).mean(), 1e-12);
    EXPECT_NEAR(merged.at(i).variance(), reference.at(i).variance(), 1e-12);
    EXPECT_EQ(merged.at(i).min(), reference.at(i).min());
    EXPECT_EQ(merged.at(i).max(), reference.at(i).max());
  }

  // Symmetric case: the longer accumulator arrives second.
  SeriesAccumulator other;
  other.add(short_run);
  other.merge([&] {
    SeriesAccumulator longer;
    longer.add(long_run);
    return longer;
  }());
  ASSERT_EQ(other.length(), reference.length());
  for (std::size_t i = 0; i < other.length(); ++i)
    EXPECT_NEAR(other.at(i).mean(), reference.at(i).mean(), 1e-12);
}

TEST(SeriesAccumulatorMergeTest, MergeIntoEmptyCopies) {
  SeriesAccumulator filled;
  filled.add({1.0, 2.0});
  SeriesAccumulator empty;
  empty.merge(filled);
  ASSERT_EQ(empty.length(), 2u);
  EXPECT_EQ(empty.runs(), 1u);
  EXPECT_DOUBLE_EQ(empty.at(1).mean(), 2.0);
}

}  // namespace
}  // namespace agentnet
