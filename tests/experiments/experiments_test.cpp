#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"

#include <gtest/gtest.h>

#include "experiments/paper.hpp"

namespace agentnet {
namespace {

GeneratedNetwork tiny_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 260;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 3);
}

TEST(MappingExperimentTest, AggregatesRuns) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 4;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  const auto summary = run_mapping_experiment(net, task, 5, 100);
  EXPECT_EQ(summary.runs, 5);
  EXPECT_EQ(summary.unfinished, 0);
  EXPECT_EQ(summary.finishing_time.count(), 5u);
  EXPECT_GT(summary.finishing_time.mean(), 0.0);
  EXPECT_EQ(summary.knowledge.runs(), 5u);
}

TEST(MappingExperimentTest, SeriesPaddedToCommonLength) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 2;
  task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
  const auto summary = run_mapping_experiment(net, task, 4, 200);
  // Each padded series ends at 1.0, so the final mean must be 1.0.
  const auto mean = summary.knowledge.mean();
  ASSERT_FALSE(mean.empty());
  EXPECT_DOUBLE_EQ(mean.back(), 1.0);
}

TEST(MappingExperimentTest, DeterministicAcrossCalls) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 3;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};
  const auto a = run_mapping_experiment(net, task, 3, 7);
  const auto b = run_mapping_experiment(net, task, 3, 7);
  EXPECT_DOUBLE_EQ(a.finishing_time.mean(), b.finishing_time.mean());
}

TEST(MappingExperimentTest, UnfinishedRunsCounted) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 1;
  task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
  task.max_steps = 3;
  const auto summary = run_mapping_experiment(net, task, 3, 7);
  EXPECT_EQ(summary.unfinished, 3);
  EXPECT_EQ(summary.finishing_time.count(), 0u);
}

TEST(MappingExperimentTest, RejectsZeroRuns) {
  const auto net = tiny_network();
  EXPECT_THROW(run_mapping_experiment(net, {}, 0, 1), ConfigError);
}

TEST(SamplePointsTest, ShortSeriesKeptWhole) {
  const auto pts = series_sample_points(5, 10);
  ASSERT_EQ(pts.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(pts[i], i);
}

TEST(SamplePointsTest, LongSeriesDecimatedKeepsEnds) {
  const auto pts = series_sample_points(1000, 11);
  ASSERT_GE(pts.size(), 2u);
  EXPECT_EQ(pts.front(), 0u);
  EXPECT_EQ(pts.back(), 999u);
  EXPECT_LE(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) EXPECT_GT(pts[i], pts[i - 1]);
}

TEST(SamplePointsTest, EmptySeries) {
  EXPECT_TRUE(series_sample_points(0, 5).empty());
}

TEST(RoutingExperimentTest, AggregatesRuns) {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {400.0, 400.0}};
  params.trace_steps = 80;
  const RoutingScenario scenario(params, 9);
  RoutingTaskConfig task;
  task.population = 20;
  task.steps = 80;
  task.measure_from = 40;
  task.record_oracle = true;
  const auto summary = run_routing_experiment(scenario, task, 4, 50);
  EXPECT_EQ(summary.runs, 4);
  EXPECT_EQ(summary.mean_connectivity.count(), 4u);
  EXPECT_EQ(summary.connectivity.runs(), 4u);
  EXPECT_EQ(summary.connectivity.length(), 80u);
  EXPECT_EQ(summary.oracle.runs(), 4u);
  // Mean connectivity bounded by mean oracle at every step.
  const auto conn = summary.connectivity.mean();
  const auto oracle = summary.oracle.mean();
  for (std::size_t t = 0; t < conn.size(); ++t)
    EXPECT_LE(conn[t], oracle[t] + 1e-12);
}

TEST(RoutingExperimentTest, StabilityStatsPopulated) {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  const RoutingScenario scenario(params, 17);
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 60;
  task.measure_from = 30;
  const auto summary = run_routing_experiment(scenario, task, 3, 70);
  EXPECT_EQ(summary.window_stddev.count(), 3u);
  EXPECT_GT(summary.window_stddev.mean(), 0.0)
      << "a mobile network's connectivity must fluctuate";
}

TEST(RoutingExperimentTest, OracleEmptyWhenNotRequested) {
  RoutingScenarioParams params;
  params.node_count = 40;
  params.gateway_count = 3;
  params.bounds = {{0.0, 0.0}, {300.0, 300.0}};
  params.trace_steps = 40;
  const RoutingScenario scenario(params, 18);
  RoutingTaskConfig task;
  task.population = 10;
  task.steps = 40;
  task.measure_from = 20;
  const auto summary = run_routing_experiment(scenario, task, 2, 71);
  EXPECT_EQ(summary.oracle.runs(), 0u);
}

TEST(MappingExperimentTest, DifferentSeedBasesDiffer) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 1;
  task.agent = {MappingPolicy::kRandom, StigmergyMode::kOff};
  task.record_series = false;
  const auto a = run_mapping_experiment(net, task, 4, 100);
  const auto b = run_mapping_experiment(net, task, 4, 900);
  EXPECT_NE(a.finishing_time.mean(), b.finishing_time.mean());
}

TEST(PaperConstantsTest, SaneValues) {
  EXPECT_EQ(paper::kPaperRuns, 40);
  EXPECT_EQ(paper::kRoutingSteps, 300u);
  EXPECT_EQ(paper::kRoutingMeasureFrom, 150u);
  EXPECT_LT(paper::kRoutingMeasureFrom, paper::kRoutingSteps);
}

}  // namespace
}  // namespace agentnet
