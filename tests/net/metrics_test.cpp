#include "net/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "net/generators.hpp"

namespace agentnet {
namespace {

Graph paper_mapping_network_for_metrics_test() {
  return paper_mapping_network(2010).graph;
}

Graph chain(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle(std::size_t n) {
  Graph g = chain(n);
  g.add_edge(static_cast<NodeId>(n - 1), 0);
  return g;
}

TEST(BfsTest, ChainDistances) {
  const Graph g = chain(5);
  const auto d = bfs_distances(g, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
}

TEST(BfsTest, UnreachableIsMinusOne) {
  const Graph g = chain(3);
  const auto d = bfs_distances(g, 2);  // edges point forward only
  EXPECT_EQ(d[2], 0);
  EXPECT_EQ(d[0], -1);
  EXPECT_EQ(d[1], -1);
}

TEST(BfsTest, ShortestPathChosen) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 3);
  g.add_edge(0, 3);  // shortcut
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[3], 1);
}

TEST(ReachabilityTest, CountsSelf) {
  Graph g(3);
  EXPECT_EQ(reachable_count(g, 1), 1u);
}

TEST(StrongConnectivityTest, CycleIsStrong) {
  EXPECT_TRUE(is_strongly_connected(cycle(6)));
}

TEST(StrongConnectivityTest, ChainIsNotStrongButWeak) {
  const Graph g = chain(4);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_TRUE(is_weakly_connected(g));
}

TEST(StrongConnectivityTest, DisconnectedIsNeither) {
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(2, 3);
  EXPECT_FALSE(is_strongly_connected(g));
  EXPECT_FALSE(is_weakly_connected(g));
}

TEST(StrongConnectivityTest, EmptyAndSingleton) {
  EXPECT_TRUE(is_strongly_connected(Graph{}));
  EXPECT_TRUE(is_strongly_connected(Graph(1)));
  EXPECT_TRUE(is_weakly_connected(Graph(1)));
}

TEST(SccTest, TwoComponentsOfAChainOfCycles) {
  // Nodes 0-2 form a cycle, 3-5 form a cycle, one edge 2→3 between them.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  g.add_edge(2, 3);
  const auto comp = strongly_connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_EQ(comp[4], comp[5]);
  EXPECT_NE(comp[0], comp[3]);
  const std::set<int> ids(comp.begin(), comp.end());
  EXPECT_EQ(ids.size(), 2u);
}

TEST(SccTest, SingletonsWithoutCycles) {
  const Graph g = chain(4);
  const auto comp = strongly_connected_components(g);
  const std::set<int> ids(comp.begin(), comp.end());
  EXPECT_EQ(ids.size(), 4u);
}

TEST(SccTest, AgreesWithIsStronglyConnectedOnRandomGraphs) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g(20);
    const int edges = static_cast<int>(rng.uniform_int(10, 80));
    for (int e = 0; e < edges; ++e)
      g.add_edge(static_cast<NodeId>(rng.index(20)),
                 static_cast<NodeId>(rng.index(20)));
    const auto comp = strongly_connected_components(g);
    const bool one_comp =
        std::all_of(comp.begin(), comp.end(), [&](int c) { return c == comp[0]; });
    EXPECT_EQ(one_comp, is_strongly_connected(g));
  }
}

TEST(DiameterTest, CycleDiameter) {
  EXPECT_EQ(diameter(cycle(5)), 4);  // directed cycle: worst pair is n-1
}

TEST(DiameterTest, UnreachablePairGivesMinusOne) {
  EXPECT_EQ(diameter(chain(3)), -1);
}

TEST(DegreeStatsTest, CountsAndSymmetry) {
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_edge(2, 3);
  const auto s = degree_stats(g);
  EXPECT_EQ(s.min_out, 0u);  // node 3 has no out-edges
  EXPECT_EQ(s.max_out, 1u);
  EXPECT_DOUBLE_EQ(s.mean_out, 3.0 / 4.0);
  EXPECT_NEAR(s.symmetry, 2.0 / 3.0, 1e-12);
}

TEST(ClusteringTest, TriangleIsFullyClustered) {
  Graph g(3);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  g.add_undirected_edge(0, 2);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g), 1.0);
}

TEST(ClusteringTest, TreeHasNone) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(chain(6)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(Graph(3)), 0.0);
}

TEST(ClusteringTest, KnownSmallGraph) {
  // Triangle 0-1-2 plus pendant 3 on node 0: centre 0 has neighbours
  // {1,2,3} → 3 pairs, 1 closed; centres 1,2 have 1 closed pair each.
  Graph g(4);
  g.add_undirected_edge(0, 1);
  g.add_undirected_edge(1, 2);
  g.add_undirected_edge(0, 2);
  g.add_undirected_edge(0, 3);
  EXPECT_NEAR(clustering_coefficient(g), 3.0 / 5.0, 1e-12);
}

TEST(ClusteringTest, GeometricClustersMoreThanRandom) {
  const auto geo = paper_mapping_network_for_metrics_test();
  const Graph er = erdos_renyi_digraph(300, 4328, 3);
  EXPECT_GT(clustering_coefficient(geo), 3.0 * clustering_coefficient(er))
      << "radio graphs are locally dense; ER graphs are not";
}

TEST(HopHistogramTest, ChainCounts) {
  const auto hist = hop_histogram(chain(4), 0);
  ASSERT_EQ(hist.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(hist[i], 1u);
}

TEST(HopHistogramTest, ExcludesUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);  // 2 unreachable
  const auto hist = hop_histogram(g, 0);
  std::size_t total = 0;
  for (auto c : hist) total += c;
  EXPECT_EQ(total, 2u);
}

TEST(MeanShortestPathTest, CycleValue) {
  // Directed 4-cycle: distances 1,2,3 from each node → mean 2.
  EXPECT_DOUBLE_EQ(mean_shortest_path(cycle(4)), 2.0);
}

TEST(MeanShortestPathTest, NoPairsGivesMinusOne) {
  EXPECT_DOUBLE_EQ(mean_shortest_path(Graph(3)), -1.0);
}

TEST(ReversedTest, EdgesFlip) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const Graph r = reversed(g);
  EXPECT_TRUE(r.has_edge(1, 0));
  EXPECT_TRUE(r.has_edge(2, 1));
  EXPECT_EQ(r.edge_count(), 2u);
  EXPECT_FALSE(r.has_edge(0, 1));
}

TEST(ReversedTest, DoubleReversalIsIdentity) {
  Rng rng(66);
  Graph g(15);
  for (int e = 0; e < 40; ++e)
    g.add_edge(static_cast<NodeId>(rng.index(15)),
               static_cast<NodeId>(rng.index(15)));
  EXPECT_EQ(reversed(reversed(g)), g);
}

}  // namespace
}  // namespace agentnet
