#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mobility/mobility.hpp"
#include "net/metrics.hpp"

namespace agentnet {
namespace {

const Aabb kArena{{0.0, 0.0}, {100.0, 100.0}};

TEST(TopologyTest, DirectedAsymmetricRanges) {
  // Node 0 has a long range, node 1 a short one; only 0→1 exists.
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kDirected);
  const Graph g =
      builder.build({{0.0, 0.0}, {30.0, 0.0}}, {40.0, 10.0});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
}

TEST(TopologyTest, SymmetricAndNeedsMutualReach) {
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kSymmetricAnd);
  const Graph g =
      builder.build({{0.0, 0.0}, {30.0, 0.0}}, {40.0, 10.0});
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  const Graph g2 =
      builder.build({{0.0, 0.0}, {30.0, 0.0}}, {40.0, 35.0});
  EXPECT_TRUE(g2.has_edge(0, 1));
  EXPECT_TRUE(g2.has_edge(1, 0));
}

TEST(TopologyTest, SymmetricOrNeedsOneDirection) {
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kSymmetricOr);
  const Graph g =
      builder.build({{0.0, 0.0}, {30.0, 0.0}}, {40.0, 10.0});
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
}

// The symmetry property, parameterized over policy.
class SymmetryTest : public ::testing::TestWithParam<LinkPolicy> {};

TEST_P(SymmetryTest, GraphIsSymmetric) {
  Rng rng(6);
  const auto positions = random_positions(150, kArena, rng);
  std::vector<double> ranges(150);
  for (auto& r : ranges) r = rng.uniform_real(5.0, 20.0);
  TopologyBuilder builder(kArena, 20.0, GetParam());
  const Graph g = builder.build(positions, ranges);
  EXPECT_DOUBLE_EQ(degree_stats(g).symmetry, 1.0);
}

INSTANTIATE_TEST_SUITE_P(SymmetricPolicies, SymmetryTest,
                         ::testing::Values(LinkPolicy::kSymmetricAnd,
                                           LinkPolicy::kSymmetricOr));

TEST(TopologyTest, MatchesBruteForceDirected) {
  Rng rng(7);
  const auto positions = random_positions(120, kArena, rng);
  std::vector<double> ranges(120);
  for (auto& r : ranges) r = rng.uniform_real(5.0, 25.0);
  TopologyBuilder builder(kArena, 25.0, LinkPolicy::kDirected);
  const Graph g = builder.build(positions, ranges);
  for (NodeId u = 0; u < 120; ++u) {
    for (NodeId v = 0; v < 120; ++v) {
      if (u == v) continue;
      const bool expected =
          distance(positions[u], positions[v]) <= ranges[u];
      EXPECT_EQ(g.has_edge(u, v), expected)
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(TopologyTest, NoSelfLoops) {
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kDirected);
  const Graph g = builder.build({{10.0, 10.0}}, {50.0});
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(TopologyTest, RangeBoundaryInclusive) {
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kDirected);
  const Graph g = builder.build({{0.0, 0.0}, {10.0, 0.0}}, {10.0, 5.0});
  EXPECT_TRUE(g.has_edge(0, 1));
}

TEST(TopologyTest, RejectsSizeMismatch) {
  TopologyBuilder builder(kArena, 50.0, LinkPolicy::kDirected);
  EXPECT_THROW(builder.build({{0.0, 0.0}}, {10.0, 20.0}), ConfigError);
}

TEST(TopologyTest, RejectsRangeAboveDeclaredMax) {
  TopologyBuilder builder(kArena, 10.0, LinkPolicy::kDirected);
  EXPECT_THROW(builder.build({{0.0, 0.0}}, {20.0}), ConfigError);
}

TEST(TopologyTest, RebuildReflectsMovement) {
  TopologyBuilder builder(kArena, 15.0, LinkPolicy::kDirected);
  const Graph before =
      builder.build({{0.0, 0.0}, {10.0, 0.0}}, {15.0, 15.0});
  EXPECT_TRUE(before.has_edge(0, 1));
  const Graph after =
      builder.build({{0.0, 0.0}, {50.0, 0.0}}, {15.0, 15.0});
  EXPECT_FALSE(after.has_edge(0, 1));
}

}  // namespace
}  // namespace agentnet
