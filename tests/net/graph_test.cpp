#include "net/graph.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace agentnet {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_TRUE(g.edges().empty());
}

TEST(GraphTest, AddEdgeDirectedOnly) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, DuplicateEdgeRejected) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(GraphTest, SelfLoopRejected) {
  Graph g(2);
  EXPECT_FALSE(g.add_edge(1, 1));
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(GraphTest, UndirectedAddsBoth) {
  Graph g(2);
  g.add_undirected_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphTest, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
}

TEST(GraphTest, NeighborsSortedAscending) {
  Graph g(5);
  g.add_edge(0, 4);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  const auto n = g.out_neighbors(0);
  ASSERT_EQ(n.size(), 3u);
  EXPECT_EQ(n[0], 1u);
  EXPECT_EQ(n[1], 3u);
  EXPECT_EQ(n[2], 4u);
}

TEST(GraphTest, Degrees) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 1);
  g.add_edge(3, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 1u);
  EXPECT_EQ(g.in_degree(1), 3u);
  EXPECT_EQ(g.in_degree(3), 0u);
}

TEST(GraphTest, EdgesLexicographic) {
  Graph g(3);
  g.add_edge(2, 0);
  g.add_edge(0, 2);
  g.add_edge(0, 1);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 2}));
  EXPECT_EQ(edges[2], (Edge{2, 0}));
}

TEST(GraphTest, ClearEdgesKeepsNodes) {
  Graph g(3);
  g.add_edge(0, 1);
  g.clear_edges();
  EXPECT_EQ(g.node_count(), 3u);
  EXPECT_EQ(g.edge_count(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(GraphTest, EqualityComparesStructure) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  EXPECT_NE(a, b);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
}

TEST(GraphTest, FuzzAgainstAdjacencyMatrixModel) {
  // Model-based fuzz: mirror every operation into a dumb adjacency matrix
  // and compare all observable behaviour.
  Rng rng(101);
  const std::size_t n = 24;
  Graph g(n);
  std::vector<std::vector<bool>> model(n, std::vector<bool>(n, false));
  for (int op = 0; op < 8000; ++op) {
    const NodeId u = static_cast<NodeId>(rng.index(n));
    const NodeId v = static_cast<NodeId>(rng.index(n));
    const int action = static_cast<int>(rng.index(3));
    if (action == 0) {
      const bool expect_new = u != v && !model[u][v];
      ASSERT_EQ(g.add_edge(u, v), expect_new);
      if (u != v) model[u][v] = true;
    } else if (action == 1) {
      const bool expect_removed = model[u][v];
      ASSERT_EQ(g.remove_edge(u, v), expect_removed);
      model[u][v] = false;
    } else {
      ASSERT_EQ(g.has_edge(u, v), model[u][v]);
    }
  }
  // Final full sweep: neighbours, degrees, edge list.
  std::size_t model_edges = 0;
  for (NodeId u = 0; u < n; ++u) {
    std::vector<NodeId> expected;
    for (NodeId v = 0; v < n; ++v)
      if (model[u][v]) {
        expected.push_back(v);
        ++model_edges;
      }
    const auto actual = g.out_neighbors(u);
    ASSERT_TRUE(std::equal(actual.begin(), actual.end(), expected.begin(),
                           expected.end()))
        << "node " << u;
  }
  EXPECT_EQ(g.edge_count(), model_edges);
}

TEST(GraphTest, EdgeCountConsistentUnderRandomChurn) {
  Rng rng(77);
  Graph g(30);
  std::size_t expected = 0;
  for (int op = 0; op < 5000; ++op) {
    const NodeId u = static_cast<NodeId>(rng.index(30));
    const NodeId v = static_cast<NodeId>(rng.index(30));
    if (rng.bernoulli(0.6)) {
      if (g.add_edge(u, v)) ++expected;
    } else {
      if (g.remove_edge(u, v)) --expected;
    }
    ASSERT_EQ(g.edge_count(), expected);
  }
  EXPECT_EQ(g.edges().size(), expected);
}

}  // namespace
}  // namespace agentnet
