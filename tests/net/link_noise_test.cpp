#include "net/link_noise.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/mapping_task.hpp"
#include "net/generators.hpp"
#include "sim/world.hpp"

namespace agentnet {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  return g;
}

TEST(LinkFlapperTest, RejectsBadConfig) {
  EXPECT_THROW(LinkFlapper(1.0, 5, 1), ConfigError);
  EXPECT_THROW(LinkFlapper(-0.1, 5, 1), ConfigError);
  EXPECT_THROW(LinkFlapper(0.1, 0, 1), ConfigError);
}

TEST(LinkFlapperTest, ZeroProbabilityNeverDrops) {
  const LinkFlapper flapper(0.0, 5, 1);
  Graph g = complete_graph(10);
  const std::size_t before = g.edge_count();
  flapper.apply(g, 123);
  EXPECT_EQ(g.edge_count(), before);
}

TEST(LinkFlapperTest, DropRateMatchesProbability) {
  const LinkFlapper flapper(0.2, 1, 7);
  std::size_t down = 0, total = 0;
  for (NodeId u = 0; u < 60; ++u)
    for (NodeId v = 0; v < 60; ++v) {
      if (u == v) continue;
      for (std::size_t step = 0; step < 5; ++step) {
        ++total;
        if (flapper.down(u, v, step)) ++down;
      }
    }
  const double rate = static_cast<double>(down) / static_cast<double>(total);
  EXPECT_NEAR(rate, 0.2, 0.01);
}

TEST(LinkFlapperTest, OutagesPersistForWholeWindows) {
  const LinkFlapper flapper(0.3, 10, 3);
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v = 0; v < 20; ++v) {
      if (u == v) continue;
      const bool at0 = flapper.down(u, v, 0);
      for (std::size_t step = 1; step < 10; ++step)
        ASSERT_EQ(flapper.down(u, v, step), at0)
            << "weather must hold within a window";
    }
}

TEST(LinkFlapperTest, WeatherChangesAcrossWindows) {
  const LinkFlapper flapper(0.3, 10, 3);
  int changed = 0;
  for (NodeId u = 0; u < 30; ++u)
    for (NodeId v = 0; v < 30; ++v) {
      if (u == v) continue;
      if (flapper.down(u, v, 0) != flapper.down(u, v, 10)) ++changed;
    }
  EXPECT_GT(changed, 50) << "new window, new weather";
}

TEST(LinkFlapperTest, DeterministicInSeed) {
  const LinkFlapper a(0.25, 4, 11);
  const LinkFlapper b(0.25, 4, 11);
  const LinkFlapper c(0.25, 4, 12);
  int same_ab = 0, same_ac = 0, total = 0;
  for (NodeId u = 0; u < 20; ++u)
    for (NodeId v = 0; v < 20; ++v) {
      if (u == v) continue;
      ++total;
      if (a.down(u, v, 3) == b.down(u, v, 3)) ++same_ab;
      if (a.down(u, v, 3) == c.down(u, v, 3)) ++same_ac;
    }
  EXPECT_EQ(same_ab, total);
  EXPECT_LT(same_ac, total);
}

TEST(LinkFlapperTest, DirectionalIndependence) {
  // u→v and v→u are distinct links and flap independently.
  const LinkFlapper flapper(0.4, 1, 5);
  int asymmetric = 0;
  for (NodeId u = 0; u < 40; ++u)
    for (NodeId v = static_cast<NodeId>(u + 1); v < 40; ++v)
      if (flapper.down(u, v, 0) != flapper.down(v, u, 0)) ++asymmetric;
  EXPECT_GT(asymmetric, 100);
}

TEST(LinkFlapperTest, ApplyMatchesPerEdgeDownExactly) {
  // apply() is defined as the edge-wise filter of down(): the two views of
  // the weather must agree on every edge of a real generated graph, so a
  // task that masks with down() and a world that masks with apply() see
  // the same topology.
  TargetEdgeParams params;
  params.geometry.node_count = 60;
  params.target_edges = 420;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 31);
  const LinkFlapper flapper(0.25, 5, 13);
  for (std::size_t step : {0u, 4u, 5u, 23u}) {
    Graph applied = net.graph;
    flapper.apply(applied, step);
    for (NodeId u = 0; u < net.graph.node_count(); ++u)
      for (NodeId v : net.graph.out_neighbors(u))
        ASSERT_EQ(applied.has_edge(u, v), !flapper.down(u, v, step))
            << u << "->" << v << " at step " << step;
  }
}

TEST(LinkFlapperTest, OutageWindowsAreWholeMultiplesOfPersistence) {
  // Track one link over many steps: every maximal outage (and uptime) run
  // must start and end on a window boundary, i.e. its length is a whole
  // multiple of the persistence.
  const LinkFlapper flapper(0.4, 7, 3);
  for (NodeId u = 0; u < 12; ++u)
    for (NodeId v = 0; v < 12; ++v) {
      if (u == v) continue;
      bool state = flapper.down(u, v, 0);
      std::size_t run_start = 0;
      for (std::size_t step = 1; step < 140; ++step) {
        const bool now = flapper.down(u, v, step);
        if (now != state) {
          ASSERT_EQ((step - run_start) % 7, 0u)
              << "state flip mid-window on " << u << "->" << v;
          state = now;
          run_start = step;
        }
      }
    }
}

TEST(FlappingWorldTest, GraphShrinksAndRecovers) {
  TargetEdgeParams params;
  params.geometry.node_count = 60;
  params.target_edges = 420;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 21);
  World world = World::frozen(net);
  const std::size_t full = world.graph().edge_count();
  world.set_link_flapper(LinkFlapper(0.2, 5, 3));
  const std::size_t flapped = world.graph().edge_count();
  EXPECT_LT(flapped, full);
  EXPECT_GT(flapped, full / 2);
  world.set_link_flapper(std::nullopt);
  EXPECT_EQ(world.graph().edge_count(), full);
}

TEST(FlappingWorldTest, MappingStillFinishesAgainstFullTruth) {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 340;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 22);
  World world = World::frozen(net);
  world.set_link_flapper(LinkFlapper(0.1, 5, 9));
  MappingTaskConfig cfg;
  cfg.population = 6;
  cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  cfg.advance_world = true;  // weather must change
  cfg.truth_edges_override = net.graph.edge_count();
  cfg.max_steps = 100000;
  const auto result = run_mapping_task(world, cfg, Rng(5));
  EXPECT_TRUE(result.finished)
      << "every link is up most of the time; persistence 5 means an agent "
         "revisiting later sees it";
  EXPECT_EQ(result.truth_edges, net.graph.edge_count());
}

TEST(FlappingWorldTest, FlappingSlowsMappingDown) {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 340;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 23);
  auto run_with = [&](double q, std::uint64_t seed) {
    World world = World::frozen(net);
    if (q > 0.0) world.set_link_flapper(LinkFlapper(q, 5, 17));
    MappingTaskConfig cfg;
    cfg.population = 6;
    cfg.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
    cfg.advance_world = true;
    cfg.truth_edges_override = net.graph.edge_count();
    cfg.record_series = false;
    return static_cast<double>(
        run_mapping_task(world, cfg, Rng(seed)).finishing_time);
  };
  double calm = 0.0, stormy = 0.0;
  for (std::uint64_t s = 0; s < 4; ++s) {
    calm += run_with(0.0, 600 + s);
    stormy += run_with(0.25, 600 + s);
  }
  EXPECT_GT(stormy, calm);
}

}  // namespace
}  // namespace agentnet
