#include "net/generators.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "net/metrics.hpp"

namespace agentnet {
namespace {

TEST(RandomGeometricTest, BasicShape) {
  Rng rng(1);
  GeometricNetworkParams params;
  params.node_count = 100;
  const auto net = random_geometric_network(params, 120.0, rng);
  EXPECT_EQ(net.positions.size(), 100u);
  EXPECT_EQ(net.base_ranges.size(), 100u);
  EXPECT_EQ(net.graph.node_count(), 100u);
  for (const auto& p : net.positions) EXPECT_TRUE(params.bounds.contains(p));
  for (double r : net.base_ranges) {
    EXPECT_GE(r, 120.0 * params.min_range_factor - 1e-9);
    EXPECT_LE(r, 120.0 + 1e-9);
  }
}

TEST(RandomGeometricTest, LargerMultiplierMoreEdges) {
  GeometricNetworkParams params;
  params.node_count = 100;
  Rng rng_a(2), rng_b(2);  // identical draws
  const auto sparse = random_geometric_network(params, 80.0, rng_a);
  const auto dense = random_geometric_network(params, 160.0, rng_b);
  EXPECT_GT(dense.graph.edge_count(), sparse.graph.edge_count());
}

TEST(RandomGeometricTest, RejectsBadParams) {
  Rng rng(3);
  GeometricNetworkParams params;
  params.node_count = 1;
  EXPECT_THROW(random_geometric_network(params, 10.0, rng), ConfigError);
  params.node_count = 10;
  EXPECT_THROW(random_geometric_network(params, 0.0, rng), ConfigError);
  params.min_range_factor = 0.0;
  EXPECT_THROW(random_geometric_network(params, 10.0, rng), ConfigError);
}

TEST(TargetEdgeTest, HitsTargetWithinTolerance) {
  TargetEdgeParams params;
  params.geometry.node_count = 120;
  params.target_edges = 700;
  params.tolerance = 0.05;
  const auto net = generate_target_edge_network(params, 99);
  const double err =
      std::abs(static_cast<double>(net.graph.edge_count()) - 700.0) / 700.0;
  EXPECT_LE(err, 0.05);
  EXPECT_TRUE(is_strongly_connected(net.graph));
}

TEST(TargetEdgeTest, DeterministicInSeed) {
  TargetEdgeParams params;
  params.geometry.node_count = 80;
  params.target_edges = 400;
  params.tolerance = 0.05;
  const auto a = generate_target_edge_network(params, 7);
  const auto b = generate_target_edge_network(params, 7);
  EXPECT_EQ(a.graph, b.graph);
  EXPECT_EQ(a.positions, b.positions);
  EXPECT_EQ(a.base_ranges, b.base_ranges);
}

TEST(TargetEdgeTest, DifferentSeedsDifferentNetworks) {
  TargetEdgeParams params;
  params.geometry.node_count = 80;
  params.target_edges = 400;
  params.tolerance = 0.05;
  const auto a = generate_target_edge_network(params, 7);
  const auto b = generate_target_edge_network(params, 8);
  EXPECT_NE(a.positions, b.positions);
}

TEST(TargetEdgeTest, ImpossibleTargetThrows) {
  TargetEdgeParams params;
  params.geometry.node_count = 10;
  params.target_edges = 10 * 9 + 50;  // more than the complete digraph
  params.max_attempts = 3;
  EXPECT_THROW(generate_target_edge_network(params, 1), ConfigError);
}

TEST(ErdosRenyiTest, ExactArcCountAndConnectivity) {
  const Graph g = erdos_renyi_digraph(60, 420, 5);
  EXPECT_EQ(g.node_count(), 60u);
  EXPECT_EQ(g.edge_count(), 420u);
  EXPECT_TRUE(is_strongly_connected(g));
}

TEST(ErdosRenyiTest, DeterministicInSeed) {
  EXPECT_EQ(erdos_renyi_digraph(40, 240, 9), erdos_renyi_digraph(40, 240, 9));
  EXPECT_NE(erdos_renyi_digraph(40, 240, 9),
            erdos_renyi_digraph(40, 240, 10));
}

TEST(ErdosRenyiTest, TooSparseThrows) {
  // 40 nodes with 42 arcs has essentially no strongly connected draws.
  EXPECT_THROW(erdos_renyi_digraph(40, 42, 1, 4), ConfigError);
  EXPECT_THROW(erdos_renyi_digraph(5, 100, 1), ConfigError);
}

TEST(PreferentialAttachmentTest, ShapeAndConnectivity) {
  const Graph g = preferential_attachment_graph(80, 3, 7);
  EXPECT_EQ(g.node_count(), 80u);
  EXPECT_TRUE(is_strongly_connected(g));
  // All edges mutual.
  EXPECT_DOUBLE_EQ(degree_stats(g).symmetry, 1.0);
  // m edges per newcomer: total undirected ≈ seed clique + (n-m-1)m.
  const std::size_t expected_undirected = 3 * (3 + 1) / 2 + (80 - 4) * 3;
  EXPECT_EQ(g.edge_count(), 2 * expected_undirected);
}

TEST(PreferentialAttachmentTest, ProducesHubs) {
  const Graph g = preferential_attachment_graph(300, 2, 11);
  const auto stats = degree_stats(g);
  // Scale-free-ish: the max degree should dwarf the mean.
  EXPECT_GT(static_cast<double>(stats.max_out), 4.0 * stats.mean_out);
}

TEST(PreferentialAttachmentTest, RejectsBadParams) {
  EXPECT_THROW(preferential_attachment_graph(5, 0, 1), ConfigError);
  EXPECT_THROW(preferential_attachment_graph(3, 3, 1), ConfigError);
}

TEST(PaperNetworkTest, MatchesPaperParameters) {
  const auto net = paper_mapping_network(2010);
  EXPECT_EQ(net.graph.node_count(), 300u);
  // 2164 bidirectional links ⇒ 4328 directed arcs (see generators.cpp).
  const double err =
      std::abs(static_cast<double>(net.graph.edge_count()) - 4328.0) / 4328.0;
  EXPECT_LE(err, 0.02) << "edges=" << net.graph.edge_count();
  EXPECT_TRUE(is_strongly_connected(net.graph));
  EXPECT_EQ(net.policy, LinkPolicy::kDirected);
}

TEST(PaperNetworkTest, HasAsymmetricLinks) {
  const auto net = paper_mapping_network(2010);
  const auto stats = degree_stats(net.graph);
  EXPECT_LT(stats.symmetry, 1.0)
      << "heterogeneous ranges must produce one-way links";
  EXPECT_GT(stats.symmetry, 0.3);
}

}  // namespace
}  // namespace agentnet
