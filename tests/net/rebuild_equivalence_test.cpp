// Equivalence suite for the zero-allocation hot paths (ctest label: perf).
//
// Three layers of protection for the "not a single output bit changes"
// contract (docs/ARCHITECTURE.md):
//   1. TopologyBuilder::build / build_into vs a naive O(n²) reference
//      builder, across all three LinkPolicy values, mobility steps and
//      link weather.
//   2. CsrView vs the Graph it froze (neighbour order, BFS, connectivity).
//   3. Golden end-to-end values captured from the pre-refactor build for
//      every system whose tables moved from std::map to FlatMap (routing
//      with communication, ACO, DV, link-state flooding) and for the
//      grid-accelerated radius-1 mapping meetings under fault injection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>

#include "aco/ant_routing_task.hpp"
#include "fault/fault_injector.hpp"
#include "adv/dv_agent.hpp"
#include "common/flat_map.hpp"
#include "core/mapping_task.hpp"
#include "core/routing_task.hpp"
#include "flooding/link_state.hpp"
#include "net/generators.hpp"
#include "net/link_noise.hpp"
#include "net/metrics.hpp"
#include "net/topology.hpp"
#include "routing/connectivity.hpp"
#include "sim/world.hpp"

namespace agentnet {
namespace {

// ---------------------------------------------------------------------------
// Layer 1: builder equivalence against a naive O(n²) reference.

Graph naive_build(const std::vector<Vec2>& positions,
                  const std::vector<double>& ranges, LinkPolicy policy) {
  Graph graph(positions.size());
  for (std::size_t u = 0; u < positions.size(); ++u) {
    for (std::size_t v = 0; v < positions.size(); ++v) {
      if (u == v) continue;
      const double d2 = distance2(positions[u], positions[v]);
      const double ru2 = ranges[u] * ranges[u];
      const double rv2 = ranges[v] * ranges[v];
      bool link = false;
      switch (policy) {
        case LinkPolicy::kDirected:
          link = d2 <= ru2;
          break;
        case LinkPolicy::kSymmetricAnd:
          link = d2 <= ru2 && d2 <= rv2;
          break;
        case LinkPolicy::kSymmetricOr:
          link = d2 <= ru2 || d2 <= rv2;
          break;
      }
      if (link)
        graph.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    }
  }
  return graph;
}

TEST(RebuildEquivalenceTest, BuildIntoMatchesNaiveAcrossPoliciesAndSteps) {
  const Aabb bounds{{0.0, 0.0}, {10.0, 10.0}};
  const double max_range = 2.5;
  for (LinkPolicy policy : {LinkPolicy::kDirected, LinkPolicy::kSymmetricAnd,
                            LinkPolicy::kSymmetricOr}) {
    TopologyBuilder builder(bounds, max_range, policy);
    Graph reused;  // deliberately shared across steps to exercise recycling
    Rng rng(42);
    for (int step = 0; step < 8; ++step) {
      // Node count varies too, so reset() must both grow and shrink.
      const std::size_t n = 20 + static_cast<std::size_t>(step % 3) * 17;
      std::vector<Vec2> positions(n);
      std::vector<double> ranges(n);
      for (std::size_t i = 0; i < n; ++i) {
        positions[i] = {rng.uniform_real(0.0, 10.0),
                        rng.uniform_real(0.0, 10.0)};
        ranges[i] = rng.uniform_real(0.3, max_range);
      }
      const Graph expected = naive_build(positions, ranges, policy);
      const Graph built = builder.build(positions, ranges);
      builder.build_into(reused, positions, ranges);
      EXPECT_EQ(built, expected) << "policy " << static_cast<int>(policy)
                                 << " step " << step;
      EXPECT_EQ(reused, expected) << "policy " << static_cast<int>(policy)
                                  << " step " << step;
    }
  }
}

TEST(RebuildEquivalenceTest, WorldRebuildMatchesNaiveUnderMobilityAndWeather) {
  RoutingScenarioParams params;
  params.node_count = 40;
  params.gateway_count = 3;
  params.trace_steps = 30;
  const RoutingScenario scenario(params, 7);
  World world = scenario.make_world();
  world.set_link_flapper(LinkFlapper(0.2, 4, 0xBEEF));
  const LinkFlapper reference_weather(0.2, 4, 0xBEEF);
  for (int step = 0; step < 25; ++step) {
    std::vector<double> ranges(world.node_count());
    for (NodeId v = 0; v < world.node_count(); ++v)
      ranges[v] = world.effective_range(v);
    Graph expected =
        naive_build(world.positions(), ranges, world.link_policy());
    reference_weather.apply(expected, world.step());
    EXPECT_EQ(world.graph(), expected) << "step " << step;
    EXPECT_EQ(CsrView(world.graph()), world.csr()) << "step " << step;
    world.advance();
  }
}

// ---------------------------------------------------------------------------
// Layer 2: CsrView freezes exactly the Graph's adjacency.

TEST(CsrEquivalenceTest, SnapshotMatchesGraphAndRecyclesStorage) {
  const GeneratedNetwork net =
      paper_mapping_network(11);
  CsrView csr;
  csr.rebuild_from(net.graph);
  ASSERT_EQ(csr.node_count(), net.graph.node_count());
  ASSERT_EQ(csr.edge_count(), net.graph.edge_count());
  for (NodeId u = 0; u < net.graph.node_count(); ++u) {
    const auto a = net.graph.out_neighbors(u);
    const auto b = csr.out_neighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "node " << u;
    for (NodeId v = 0; v < net.graph.node_count(); ++v)
      ASSERT_EQ(csr.has_edge(u, v), net.graph.has_edge(u, v));
  }
  // BFS over either representation is identical.
  EXPECT_EQ(bfs_distances(csr, 0), bfs_distances(net.graph, 0));
  // Refreezing from a smaller graph reuses the arrays and drops the rest.
  Graph small(3);
  small.add_edge(0, 2);
  csr.rebuild_from(small);
  EXPECT_EQ(csr.node_count(), 3u);
  EXPECT_EQ(csr.edge_count(), 1u);
  EXPECT_TRUE(csr.has_edge(0, 2));
}

TEST(CsrEquivalenceTest, ConnectivityWalksMatchGraphWalks) {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.trace_steps = 10;
  const RoutingScenario scenario(params, 3);
  World world = scenario.make_world();
  RoutingTables tables(world.node_count());
  // Point every node at its first out-neighbour (valid or not — the walk
  // logic decides) to exercise loop and dead-end paths as well.
  for (NodeId v = 0; v < world.node_count(); ++v) {
    const auto nbrs = world.graph().out_neighbors(v);
    if (nbrs.empty()) continue;
    RouteEntry entry;
    entry.next_hop = nbrs.front();
    entry.gateway = 0;
    entry.hops = 1;
    entry.installed_at = 0;
    tables.force(v, entry);
  }
  for (std::size_t max_hops : {std::size_t{0}, std::size_t{3}}) {
    const auto from_graph = valid_route_flags(
        world.graph(), tables, scenario.is_gateway(), max_hops);
    const auto from_csr = valid_route_flags(
        world.csr(), tables, scenario.is_gateway(), max_hops);
    EXPECT_EQ(from_graph, from_csr) << "max_hops " << max_hops;
  }
}

TEST(CsrEquivalenceTest, TransposeMatchesPerEdgeReversal) {
  const GeneratedNetwork net =
      paper_mapping_network(23);
  Graph expected(net.graph.node_count());
  for (const Edge& e : net.graph.edges()) expected.add_edge(e.to, e.from);
  Graph rev;
  net.graph.transposed_into(rev);
  EXPECT_EQ(rev, expected);
  EXPECT_EQ(reversed(net.graph), expected);
  // in_degrees agrees with the per-node scan.
  const auto degs = net.graph.in_degrees();
  for (NodeId v = 0; v < net.graph.node_count(); ++v)
    ASSERT_EQ(degs[v], net.graph.in_degree(v)) << "node " << v;
}

// ---------------------------------------------------------------------------
// FlatMap mirrors std::map operation by operation.

TEST(FlatMapEquivalenceTest, MirrorsStdMapUnderRandomOperations) {
  FlatMap<NodeId, double> flat;
  std::map<NodeId, double> ref;
  Rng rng(99);
  for (int op = 0; op < 2000; ++op) {
    const NodeId key = static_cast<NodeId>(rng.index(40));
    switch (rng.index(5)) {
      case 0:
        flat[key] += 1.5;
        ref[key] += 1.5;
        break;
      case 1:
        flat.emplace(key, 2.0);
        ref.emplace(key, 2.0);
        break;
      case 2:
        flat.insert_or_assign(key, 3.25);
        ref[key] = 3.25;
        break;
      case 3:
        EXPECT_EQ(flat.erase(key), ref.erase(key));
        break;
      case 4: {
        // Erase-while-iterating, the evaporation pattern.
        auto fit = flat.begin();
        auto rit = ref.begin();
        while (fit != flat.end() && rit != ref.end()) {
          if (fit->first % 3 == 0) {
            fit = flat.erase(fit);
            rit = ref.erase(rit);
          } else {
            ++fit;
            ++rit;
          }
        }
        break;
      }
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Identical contents in identical (ascending) order.
  auto rit = ref.begin();
  for (const auto& [k, v] : flat) {
    ASSERT_NE(rit, ref.end());
    EXPECT_EQ(k, rit->first);
    EXPECT_EQ(v, rit->second);
    ++rit;
  }
  EXPECT_EQ(rit, ref.end());
}

// ---------------------------------------------------------------------------
// Layer 3: golden end-to-end values captured from the pre-refactor build
// (same configs, same seeds). A single changed bit anywhere in the agent
// loops, tables, builder or measurement shifts these.

RoutingScenario golden_scenario() {
  RoutingScenarioParams params;
  params.node_count = 60;
  params.gateway_count = 4;
  params.trace_steps = 120;
  return RoutingScenario(params, 2024);
}

TEST(GoldenEquivalenceTest, RoutingWithCommunication) {
  RoutingTaskConfig config;
  config.population = 30;
  config.agent.communicate = true;
  config.steps = 120;
  config.measure_from = 60;
  const auto r = run_routing_task(golden_scenario(), config, Rng(7));
  EXPECT_EQ(r.mean_connectivity, 0.23138888888888887);
  EXPECT_EQ(r.stddev_connectivity, 0.018938811838341008);
  EXPECT_EQ(r.migration_bytes, 454920u);
}

TEST(GoldenEquivalenceTest, AntRouting) {
  AntRoutingTaskConfig config;
  config.steps = 120;
  config.measure_from = 60;
  const auto r = run_ant_routing_task(golden_scenario(), config, Rng(7));
  EXPECT_EQ(r.mean_connectivity, 0.22361111111111112);
  EXPECT_EQ(r.stddev_connectivity, 0.019478044684546947);
  EXPECT_EQ(r.ant_hops, 2910u);
  EXPECT_EQ(r.control_bytes, 121048u);
  EXPECT_EQ(r.ants_launched, 1349u);
  EXPECT_EQ(r.ants_completed, 222u);
}

TEST(GoldenEquivalenceTest, DvRouting) {
  DvRoutingTaskConfig config;
  config.population = 30;
  config.steps = 120;
  config.measure_from = 60;
  const auto r = run_dv_routing_task(golden_scenario(), config, Rng(7));
  EXPECT_EQ(r.mean_connectivity, 0.2344444444444444);
  EXPECT_EQ(r.stddev_connectivity, 0.018119364288232284);
  EXPECT_EQ(r.migration_bytes, 332208u);
}

TEST(GoldenEquivalenceTest, LinkStateFlooding) {
  World world = golden_scenario().make_world();
  LinkStateConfig config;
  config.lsa_loss_probability = 0.1;
  LinkStateFlooding flood(world.node_count(), config);
  for (std::size_t t = 0; t < 80; ++t) {
    flood.step(world.graph(), t);
    world.advance();
  }
  EXPECT_EQ(flood.messages_sent(), 2858u);
  EXPECT_EQ(flood.bytes_sent(), 128168u);
  EXPECT_EQ(flood.mean_completeness(world.graph()), 0.13233333333333328);
}

// ---------------------------------------------------------------------------
// Incremental topology maintenance: the dirty-set patch path must agree
// with the full per-step rebuild bit for bit — across link policies, link
// weather, fault plans and range quantization — and epoch() must move
// exactly when the edge set does.

RoutingScenario churn_scenario(LinkPolicy policy, std::uint64_t seed) {
  RoutingScenarioParams params;
  params.node_count = 45;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {420.0, 420.0}};
  params.trace_steps = 40;
  params.policy = policy;
  return RoutingScenario(params, seed);
}

TEST(IncrementalEquivalenceTest, LockstepMatchesFullAcrossPoliciesAndWeather) {
  for (LinkPolicy policy : {LinkPolicy::kDirected, LinkPolicy::kSymmetricAnd,
                            LinkPolicy::kSymmetricOr}) {
    for (bool weather : {false, true}) {
      const RoutingScenario scenario =
          churn_scenario(policy, 11 + static_cast<std::uint64_t>(policy));
      World full = scenario.make_world();
      World incr = scenario.make_world();
      World shard = scenario.make_world();
      full.set_incremental_topology(false);
      incr.set_incremental_topology(true);
      shard.set_sharding(true);  // third upkeep mode, same contract
      if (weather) {
        full.set_link_flapper(LinkFlapper(0.15, 3, 0xF1A9));
        incr.set_link_flapper(LinkFlapper(0.15, 3, 0xF1A9));
        shard.set_link_flapper(LinkFlapper(0.15, 3, 0xF1A9));
      }
      for (int step = 0; step < 35; ++step) {
        ASSERT_EQ(incr.graph(), full.graph())
            << "policy " << static_cast<int>(policy) << " weather "
            << weather << " step " << step;
        ASSERT_EQ(incr.csr(), full.csr());
        ASSERT_EQ(incr.csr(), CsrView(incr.graph()));
        ASSERT_EQ(incr.epoch(), full.epoch());
        ASSERT_EQ(shard.graph(), full.graph())
            << "sharded, policy " << static_cast<int>(policy) << " weather "
            << weather << " step " << step;
        ASSERT_EQ(shard.csr(), full.csr());
        ASSERT_EQ(shard.epoch(), full.epoch());
        full.advance();
        incr.advance();
        shard.advance();
      }
    }
  }
}

TEST(IncrementalEquivalenceTest, EpochMovesExactlyWithEdgeSet) {
  for (bool incremental : {false, true}) {
    const RoutingScenario scenario =
        churn_scenario(LinkPolicy::kSymmetricAnd, 29);
    World world = scenario.make_world();
    world.set_incremental_topology(incremental);
    bool epoch_held = false, epoch_moved = false;
    for (int step = 0; step < 40; ++step) {
      const Graph before = world.graph();
      const std::uint64_t epoch = world.epoch();
      world.advance();
      const bool changed = !(world.graph() == before);
      ASSERT_EQ(world.epoch() != epoch, changed)
          << "incremental " << incremental << " step " << step;
      (changed ? epoch_moved : epoch_held) = true;
    }
    // The scenario must exercise both directions of the iff.
    EXPECT_TRUE(epoch_moved);
    EXPECT_TRUE(epoch_held);
  }
}

TEST(IncrementalEquivalenceTest, FaultMasksMatchFullRecomputeUnderFaultPlans) {
  FaultPlan plan;
  plan.node_crash_probability = 0.04;
  plan.crash_persistence = 5;
  plan.burst_drop_probability = 0.1;
  plan.burst_persistence = 3;
  plan.blackouts.push_back(Blackout{{210.0, 210.0}, 120.0, 8, 12});
  plan.weather_seed = 0xD00D;

  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kSymmetricAnd, 31);
  World full = scenario.make_world();
  World incr = scenario.make_world();
  full.set_incremental_topology(false);
  incr.set_incremental_topology(true);
  // The full side uses the Graph overload (recomputes every new step); the
  // incremental side uses the World overload with the cross-step cache.
  FaultInjector full_inj(plan, Rng(1));
  FaultInjector incr_inj(plan, Rng(1));
  obs::RunObs full_obs, incr_obs;
  for (int step = 0; step < 35; ++step) {
    {
      obs::ObsRunScope scope(full_obs);
      const Graph& a =
          full_inj.live_graph(full.graph(), full.positions(), full.step());
      obs::ObsRunScope scope2(incr_obs);
      const Graph& b = incr_inj.live_graph(incr, incr.step());
      ASSERT_EQ(b, a) << "step " << step;
    }
    full.advance();
    incr.advance();
  }
  // Cross-step cache hits re-emit the cached drop total, so the per-run
  // counter footers agree with the recompute-every-step path. (A half-
  // mobile world changes epoch every step, so no hits are expected here —
  // the static-world test below covers the hit path.)
  EXPECT_EQ(incr_obs.counters.value(obs::Counter::kFaultLinkDrops),
            full_obs.counters.value(obs::Counter::kFaultLinkDrops));
}

TEST(IncrementalEquivalenceTest, FaultMaskCrossStepCacheHitsOnStaticWorld) {
  // On a static world the graph epoch never moves, so the World-overload
  // mask is recomputed only when a crash or burst window flips; all other
  // steps must be cache hits with identical masks and drop totals.
  FaultPlan plan;
  plan.node_crash_probability = 0.05;
  plan.crash_persistence = 5;
  plan.burst_drop_probability = 0.1;
  plan.burst_persistence = 3;
  plan.weather_seed = 0xD00D;

  RoutingScenarioParams params;
  params.node_count = 45;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {420.0, 420.0}};
  params.mobile_fraction = 0.0;  // nothing moves, nothing drains
  params.trace_steps = 40;
  const RoutingScenario scenario(params, 31);
  World ref = scenario.make_world();
  World cached = scenario.make_world();
  FaultInjector ref_inj(plan, Rng(1));
  FaultInjector cached_inj(plan, Rng(1));
  obs::RunObs ref_obs, cached_obs;
  for (int step = 0; step < 35; ++step) {
    {
      obs::ObsRunScope scope(ref_obs);
      const Graph& a =
          ref_inj.live_graph(ref.graph(), ref.positions(), ref.step());
      obs::ObsRunScope scope2(cached_obs);
      const Graph& b = cached_inj.live_graph(cached, cached.step());
      ASSERT_EQ(b, a) << "step " << step;
    }
    ref.advance();
    cached.advance();
  }
  EXPECT_EQ(cached_obs.counters.value(obs::Counter::kFaultLinkDrops),
            ref_obs.counters.value(obs::Counter::kFaultLinkDrops));
  EXPECT_GT(cached_obs.counters.value(obs::Counter::kDerivedCacheHits), 0u);
}

TEST(IncrementalEquivalenceTest, RangeQuantizationKeepsModesIdentical) {
  ASSERT_EQ(setenv("AGENTNET_TOPO_RANGE_QUANTUM", "7.5", 1), 0);
  const RoutingScenario scenario =
      churn_scenario(LinkPolicy::kSymmetricAnd, 37);
  World full = scenario.make_world();
  World incr = scenario.make_world();
  ASSERT_EQ(unsetenv("AGENTNET_TOPO_RANGE_QUANTUM"), 0);
  full.set_incremental_topology(false);
  incr.set_incremental_topology(true);
  for (int step = 0; step < 30; ++step) {
    ASSERT_EQ(incr.graph(), full.graph()) << "step " << step;
    ASSERT_EQ(incr.epoch(), full.epoch()) << "step " << step;
    full.advance();
    incr.advance();
  }
}

TEST(GoldenEquivalenceTest, MappingRadius1MeetingsUnderFaults) {
  TargetEdgeParams params;
  params.geometry.node_count = 60;
  params.target_edges = 300;
  const GeneratedNetwork net = generate_target_edge_network(params, 99);
  World world = World::frozen(net);
  MappingTaskConfig config;
  config.population = 6;
  config.comm_radius = 1;
  config.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  config.max_steps = 4000;
  config.record_series = false;
  config.faults.exchange_failure_probability = 0.2;
  config.faults.agent_loss_probability = 0.002;
  config.faults.watchdog_ttl = 80;
  const auto r = run_mapping_task(world, config, Rng(5));
  EXPECT_TRUE(r.finished);
  EXPECT_EQ(r.finishing_time, 40u);
  EXPECT_EQ(r.migration_bytes, 402460u);
  EXPECT_EQ(r.agents_lost, 0u);
  EXPECT_EQ(r.agents_respawned, 0u);
  EXPECT_EQ(r.final_population, 6u);
}

}  // namespace
}  // namespace agentnet
