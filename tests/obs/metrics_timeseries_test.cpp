// Time-series telemetry tests: the determinism contract (metrics JSONL
// byte-identical at every thread count), windowed-histogram merge-order
// independence, decimation, the strict line parser round-trip, and the run
// manifest round-trip.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "experiments/routing_experiments.hpp"
#include "experiments/traffic_experiments.hpp"
#include "obs/obs.hpp"
#include "traffic/flow_traffic.hpp"

namespace agentnet {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

RoutingTaskConfig faulty_routing_task() {
  RoutingTaskConfig task;
  task.population = 12;
  task.steps = 50;
  task.measure_from = 25;
  task.faults.node_crash_probability = 0.05;
  task.faults.crash_persistence = 5;
  return task;
}

TEST(GaugeRegistryTest, NamesAreStable) {
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kLiveFraction), "live_fraction");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kBatteryAlive), "battery_alive");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kConnectivity), "connectivity");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kOracleConnectivity),
               "oracle_connectivity");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kKnowledge), "knowledge");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kQueueDepth), "queue_depth");
  EXPECT_STREQ(obs::gauge_name(obs::Gauge::kPheromoneEntropy),
               "pheromone_entropy");
}

TEST(HistogramQuantileTest, RankStatisticAndMergeOrderIndependence) {
  // histogram[v] = count of samples with value v.
  const std::vector<std::uint64_t> a{0, 3, 0, 2, 0, 1};  // 3×1, 2×3, 1×5
  EXPECT_EQ(obs::histogram_quantile(a, 0.0), 1u);
  EXPECT_EQ(obs::histogram_quantile(a, 0.5), 1u);
  EXPECT_EQ(obs::histogram_quantile(a, 0.75), 3u);
  EXPECT_EQ(obs::histogram_quantile(a, 1.0), 5u);
  EXPECT_EQ(obs::histogram_quantile(std::vector<std::uint64_t>{}, 0.5), 0u);

  // Element-wise sums commute: any merge order of per-run histograms gives
  // the same quantiles.
  const std::vector<std::uint64_t> b{5, 0, 1, 0, 0, 0, 4};
  std::vector<std::uint64_t> ab(7, 0), ba(7, 0);
  for (std::size_t v = 0; v < 7; ++v) {
    const std::uint64_t from_a = v < a.size() ? a[v] : 0;
    ab[v] = from_a + b[v];
    ba[v] = b[v] + from_a;
  }
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99})
    EXPECT_EQ(obs::histogram_quantile(ab, q), obs::histogram_quantile(ba, q));

  // And it is the exact statistic FlowTrafficStats reads off its own
  // full-run histogram.
  FlowTrafficStats stats;
  stats.latency_histogram = a;
  stats.delivered = 6;
  for (const double q : {0.0, 0.25, 0.5, 0.75, 0.95, 1.0})
    EXPECT_EQ(stats.latency_quantile(q), obs::histogram_quantile(a, q));
}

TEST(MetricsBufferTest, DecimatesAndAggregatesDeltasAcrossTheWindow) {
  obs::MetricsBuffer buffer;
  obs::CounterSlot counters;
  buffer.enable(7);
  EXPECT_TRUE(buffer.want(0));
  EXPECT_FALSE(buffer.want(1));
  EXPECT_TRUE(buffer.want(14));
  for (std::uint64_t t = 0; t < 15; ++t) {
    counters.add(obs::Counter::kAgentHops, 1);  // one hop per step
    if (buffer.want(t)) {
      buffer.gauge(t, obs::Gauge::kConnectivity,
                   static_cast<double>(t) / 10.0);
      buffer.tick(t, counters);
    }
  }
  ASSERT_EQ(buffer.rows().size(), 3u);
  EXPECT_EQ(buffer.rows()[0].step, 0u);
  EXPECT_EQ(buffer.rows()[1].step, 7u);
  EXPECT_EQ(buffer.rows()[2].step, 14u);
  const auto hops = static_cast<std::size_t>(obs::Counter::kAgentHops);
  // Window deltas cover every step since the previous tick, sampled or not.
  EXPECT_EQ(buffer.rows()[0].deltas[hops], 1u);
  EXPECT_EQ(buffer.rows()[1].deltas[hops], 7u);
  EXPECT_EQ(buffer.rows()[2].deltas[hops], 7u);
  const auto conn = static_cast<std::size_t>(obs::Gauge::kConnectivity);
  EXPECT_TRUE(buffer.rows()[1].has_gauge[conn]);
  EXPECT_DOUBLE_EQ(buffer.rows()[1].gauges[conn], 0.7);

  // Unsampled / disabled buffers ignore everything.
  obs::MetricsBuffer off;
  off.gauge(0, obs::Gauge::kConnectivity, 1.0);
  off.tick(0, counters);
  EXPECT_TRUE(off.rows().empty());
}

TEST(MetricsBufferTest, LatencyWindowsDiffAndSurviveResets) {
  obs::MetricsBuffer buffer;
  buffer.enable(1);
  std::vector<std::uint64_t> histogram{0, 2, 0};  // 2 packets of latency 1
  buffer.sample_latency(0, histogram);
  histogram = {0, 2, 3};  // +3 packets of latency 2
  buffer.sample_latency(1, histogram);
  // reset_stats() shrank a bucket: the current histogram IS the window.
  histogram = {1, 0, 0};
  buffer.sample_latency(2, histogram);
  ASSERT_EQ(buffer.rows().size(), 3u);
  EXPECT_TRUE(buffer.rows()[0].has_latency);
  EXPECT_EQ(buffer.rows()[0].lat_count, 2u);
  EXPECT_EQ(buffer.rows()[0].lat_p50, 1u);
  EXPECT_EQ(buffer.rows()[1].lat_count, 3u);
  EXPECT_EQ(buffer.rows()[1].lat_p50, 2u);
  EXPECT_EQ(buffer.rows()[2].lat_count, 1u);
  EXPECT_EQ(buffer.rows()[2].lat_p50, 0u);
}

TEST(MetricsLineTest, RoundTripsExactly) {
  obs::MetricsRow row;
  row.step = 42;
  const auto conn = static_cast<std::size_t>(obs::Gauge::kConnectivity);
  row.has_gauge[conn] = true;
  row.gauges[conn] = 0.1 + 0.2;  // not exactly representable; bits must hold
  row.deltas[static_cast<std::size_t>(obs::Counter::kAgentHops)] = 17;
  row.has_latency = true;
  row.lat_count = 5;
  row.lat_p50 = 3;
  row.lat_p95 = 9;
  row.lat_p99 = 9;
  const std::string line = obs::serialize_metrics_line(2, row);
  const auto parsed = obs::parse_metrics_line(line);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->is_group);
  EXPECT_EQ(parsed->run, 2);
  EXPECT_EQ(parsed->row, row);
  EXPECT_EQ(obs::serialize_metrics_line(parsed->run, parsed->row), line);

  const std::string group = obs::serialize_metrics_group(4, 7);
  const auto parsed_group = obs::parse_metrics_line(group);
  ASSERT_TRUE(parsed_group.has_value());
  EXPECT_TRUE(parsed_group->is_group);
  EXPECT_EQ(parsed_group->runs, 4u);
  EXPECT_EQ(parsed_group->every, 7u);
}

TEST(MetricsLineTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_metrics_line("", &error).has_value());
  EXPECT_FALSE(obs::parse_metrics_line("{\"step\":1}", &error).has_value());
  EXPECT_FALSE(
      obs::parse_metrics_line("{\"run\":0,\"step\":1,\"bogus\":2}", &error)
          .has_value());
  EXPECT_FALSE(
      obs::parse_metrics_line("{\"run\":0,\"step\":oops}", &error)
          .has_value());
  EXPECT_FALSE(
      obs::parse_metrics_line("{\"run\":0,\"step\":1} trailing", &error)
          .has_value());
}

TEST(ManifestTest, RoundTripsThroughJsonAndDisk) {
  ::setenv("AGENTNET_MANIFEST_TEST_KNOB", "on", 1);
  obs::RunManifest manifest = obs::make_manifest(2010, 5, 3);
  ::unsetenv("AGENTNET_MANIFEST_TEST_KNOB");
  EXPECT_EQ(manifest.obs_level, AGENTNET_OBS_LEVEL);
  EXPECT_EQ(manifest.seed, 2010u);
  EXPECT_EQ(manifest.runs, 5);
  EXPECT_EQ(manifest.threads, 3);
  EXPECT_FALSE(manifest.library_version.empty());
  bool saw_knob = false;
  for (const auto& [name, value] : manifest.env)
    if (name == "AGENTNET_MANIFEST_TEST_KNOB") saw_knob = value == "on";
  EXPECT_TRUE(saw_knob);

  manifest.metrics_every = 7;
  manifest.trace_path = "a.trace.jsonl";
  manifest.metrics_path = "a.metrics.jsonl";
  const std::string json = obs::manifest_json(manifest);
  const auto parsed = obs::parse_manifest_json(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, manifest);

  const std::string path = temp_path("manifest_roundtrip.json");
  obs::write_manifest(path, manifest);
  const auto reread = obs::parse_manifest_json(read_file(path));
  ASSERT_TRUE(reread.has_value());
  EXPECT_EQ(*reread, manifest);

  std::string error;
  EXPECT_FALSE(obs::parse_manifest_json("{\"nope\":1}", &error).has_value());
  EXPECT_FALSE(obs::parse_manifest_json(json + "x", &error).has_value());
}

TEST(ManifestTest, ParserRejectsMalformedInput) {
  // Each corruption mode must fail with a diagnostic, never crash or
  // silently produce a half-filled manifest.
  const char* bad_inputs[] = {
      "",                                      // empty
      "not json at all",                       // no object
      "{",                                     // unterminated object
      "{\"seed\": }",                          // missing value
      "{\"seed\": 1 \"runs\": 2}",             // missing comma
      "{\"seed\": \"text\"}",                  // string where int expected
      "{\"build_type\": 3}",                   // int where string expected
      "{\"build_type\": \"rel",                // unterminated string
      "{\"build_type\": \"a\\q\"}",            // unknown escape
      "{\"env\": {\"A\": 1}}",                 // non-string env value
      "{\"env\": {\"A\"}}",                    // env entry without value
  };
  for (const char* input : bad_inputs) {
    std::string error;
    EXPECT_FALSE(obs::parse_manifest_json(input, &error).has_value())
        << "accepted: " << input;
    EXPECT_FALSE(error.empty()) << "no diagnostic for: " << input;
  }
}

TEST(ManifestTest, TruncatedOnDiskManifestFailsToParse) {
  obs::RunManifest manifest = obs::make_manifest(7, 2, 1);
  const std::string path = temp_path("manifest_truncated.json");
  obs::write_manifest(path, manifest);
  std::string text = read_file(path);
  ASSERT_GT(text.size(), 10u);
  std::string error;
  EXPECT_FALSE(
      obs::parse_manifest_json(text.substr(0, text.size() / 2), &error)
          .has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ManifestTest, WriteManifestLeavesNoTempFile) {
  const std::string path = temp_path("manifest_atomic.json");
  obs::write_manifest(path, obs::make_manifest(1, 1, 1));
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open()) << "temp file left behind after commit";
  EXPECT_TRUE(obs::parse_manifest_json(read_file(path)).has_value());
}

#if AGENTNET_OBS_LEVEL >= 1

TEST(MetricsDeterminismTest, StreamIsByteIdenticalAcrossThreadCounts) {
  const RoutingScenario scenario = tiny_scenario();
  const RoutingTaskConfig task = faulty_routing_task();
  // Distinct paths per thread count: write_metrics truncates a path once
  // per process and appends afterwards.
  std::vector<std::string> streams;
  for (const int threads : {1, 2, 7}) {
    obs::RunObs sink;
    obs::ObsConfig config;
    config.metrics_path =
        temp_path("metrics_t" + std::to_string(threads) + ".jsonl");
    config.sink = &sink;
    run_routing_experiment(scenario, task, 4, 99, threads, config);
    streams.push_back(read_file(*config.metrics_path));
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]);
  EXPECT_EQ(streams[0], streams[2]);

  // The fault-injected stream carries the degradation inputs: per-step
  // connectivity and the injector's live-node fraction.
  std::istringstream is(streams[0]);
  std::string line;
  std::size_t rows = 0;
  bool saw_connectivity = false, saw_live = false, saw_battery = false;
  const auto conn = static_cast<std::size_t>(obs::Gauge::kConnectivity);
  const auto live = static_cast<std::size_t>(obs::Gauge::kLiveFraction);
  const auto battery = static_cast<std::size_t>(obs::Gauge::kBatteryAlive);
  while (std::getline(is, line)) {
    const auto record = obs::parse_metrics_line(line);
    ASSERT_TRUE(record.has_value()) << line;
    if (record->is_group) continue;
    ++rows;
    saw_connectivity = saw_connectivity || record->row.has_gauge[conn];
    saw_live = saw_live || record->row.has_gauge[live];
    saw_battery = saw_battery || record->row.has_gauge[battery];
  }
  EXPECT_EQ(rows, 4u * task.steps);  // every step sampled, 4 runs
  EXPECT_TRUE(saw_connectivity);
  EXPECT_TRUE(saw_live);
  EXPECT_TRUE(saw_battery);
}

TEST(MetricsDeterminismTest, DecimatedRowsMatchTheDenseStream) {
  const RoutingScenario scenario = tiny_scenario();
  const RoutingTaskConfig task = faulty_routing_task();
  std::vector<std::vector<obs::MetricsRecord>> by_every;
  for (const std::uint64_t every : {std::uint64_t{1}, std::uint64_t{7}}) {
    obs::RunObs sink;
    obs::ObsConfig config;
    config.metrics_path =
        temp_path("metrics_every" + std::to_string(every) + ".jsonl");
    config.metrics_every = every;
    config.sink = &sink;
    run_routing_experiment(scenario, task, 2, 99, 1, config);
    std::istringstream is(read_file(*config.metrics_path));
    std::string line;
    std::vector<obs::MetricsRecord> records;
    while (std::getline(is, line)) {
      const auto record = obs::parse_metrics_line(line);
      ASSERT_TRUE(record.has_value()) << line;
      records.push_back(*record);
    }
    by_every.push_back(std::move(records));
  }
  const auto& dense = by_every[0];
  const auto& sparse = by_every[1];
  ASSERT_EQ(dense.front().every, 1u);
  ASSERT_EQ(sparse.front().every, 7u);

  // Each decimated row repeats the dense gauge values of its step, and its
  // deltas aggregate the dense deltas over the window it closes.
  for (const obs::MetricsRecord& record : sparse) {
    if (record.is_group) continue;
    EXPECT_EQ(record.row.step % 7, 0u);
    std::array<std::uint64_t, obs::kCounterCount> window{};
    const obs::MetricsRecord* match = nullptr;
    for (const obs::MetricsRecord& d : dense) {
      if (d.is_group || d.run != record.run) continue;
      if (d.row.step > record.row.step) continue;
      if (d.row.step + 7 > record.row.step) {
        for (std::size_t i = 0; i < obs::kCounterCount; ++i)
          window[i] += d.row.deltas[i];
      }
      if (d.row.step == record.row.step) match = &d;
    }
    ASSERT_NE(match, nullptr);
    EXPECT_EQ(record.row.gauges, match->row.gauges);
    EXPECT_EQ(record.row.has_gauge, match->row.has_gauge);
    EXPECT_EQ(record.row.deltas, window);
  }
}

TEST(MetricsDeterminismTest, TrafficStreamCarriesQueueAndLatencyWindows) {
  const RoutingScenario scenario = tiny_scenario();
  TrafficTaskConfig task;
  task.steps = 60;
  task.measure_from = 20;
  task.workload.offered_load = 0.5;
  obs::RunObs sink;
  obs::ObsConfig config;
  config.metrics_path = temp_path("metrics_traffic.jsonl");
  config.sink = &sink;
  run_traffic_experiment(scenario, task, 2, 99, 1, config);
  std::istringstream is(read_file(*config.metrics_path));
  std::string line;
  bool saw_queue = false, saw_entropy = false, saw_latency = false;
  const auto queue = static_cast<std::size_t>(obs::Gauge::kQueueDepth);
  const auto entropy =
      static_cast<std::size_t>(obs::Gauge::kPheromoneEntropy);
  while (std::getline(is, line)) {
    const auto record = obs::parse_metrics_line(line);
    ASSERT_TRUE(record.has_value()) << line;
    if (record->is_group) continue;
    saw_queue = saw_queue || record->row.has_gauge[queue];
    saw_entropy = saw_entropy || record->row.has_gauge[entropy];
    saw_latency =
        saw_latency || (record->row.has_latency && record->row.lat_count > 0);
  }
  EXPECT_TRUE(saw_queue);
  EXPECT_TRUE(saw_entropy);
  EXPECT_TRUE(saw_latency);
}

TEST(MetricsDeterminismTest, HarnessWritesTheManifest) {
  const RoutingScenario scenario = tiny_scenario();
  const RoutingTaskConfig task = faulty_routing_task();
  obs::RunObs sink;
  obs::ObsConfig config;
  config.metrics_path = temp_path("metrics_manifested.jsonl");
  config.metrics_every = 5;
  config.manifest_path = temp_path("metrics_manifested.manifest.json");
  config.sink = &sink;
  run_routing_experiment(scenario, task, 3, 77, 2, config);
  const auto manifest = obs::parse_manifest_json(read_file(*config.manifest_path));
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->obs_level, AGENTNET_OBS_LEVEL);
  EXPECT_EQ(manifest->seed, 77u);
  EXPECT_EQ(manifest->runs, 3);
  EXPECT_EQ(manifest->threads, 2);
  EXPECT_EQ(manifest->metrics_every, 5u);
  EXPECT_EQ(manifest->metrics_path, *config.metrics_path);
  EXPECT_TRUE(manifest->trace_path.empty());
}

#endif  // AGENTNET_OBS_LEVEL >= 1

}  // namespace
}  // namespace agentnet
