// Telemetry subsystem tests: the determinism contract (counters and event
// streams bit-identical at every thread count), the JSONL round-trip, and
// the scope/merge plumbing.
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "energy/battery.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"
#include "obs/obs.hpp"

namespace agentnet {
namespace {

GeneratedNetwork tiny_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 50;
  params.target_edges = 260;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 3);
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

RoutingTaskConfig tiny_routing_task() {
  RoutingTaskConfig task;
  task.population = 12;
  task.steps = 50;
  task.measure_from = 25;
  return task;
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(ObsScopeTest, CountsLandInTheInstalledSlotAndNestingRestores) {
  obs::RunObs outer, inner;
  {
    obs::ObsRunScope outer_scope(outer);
    obs::count(obs::Counter::kAgentHops);
    {
      obs::ObsRunScope inner_scope(inner);
      obs::count(obs::Counter::kAgentHops, 5);
    }
    obs::count(obs::Counter::kAgentHops);
  }
  EXPECT_EQ(outer.counters.value(obs::Counter::kAgentHops), 2u);
  EXPECT_EQ(inner.counters.value(obs::Counter::kAgentHops), 5u);
}

TEST(ObsScopeTest, MergeAddsCountersAndPhases) {
  obs::RunObs a, b;
  a.counters.add(obs::Counter::kAgentHops, 3);
  a.phases.add(obs::Phase::kStep, 100, 2);
  b.counters.add(obs::Counter::kAgentHops, 4);
  b.counters.add(obs::Counter::kLinkFlaps, 1);
  b.phases.add(obs::Phase::kStep, 50, 1);
  obs::merge_into(a, b);
  EXPECT_EQ(a.counters.value(obs::Counter::kAgentHops), 7u);
  EXPECT_EQ(a.counters.value(obs::Counter::kLinkFlaps), 1u);
  EXPECT_EQ(a.phases.ns(obs::Phase::kStep), 150u);
  EXPECT_EQ(a.phases.calls(obs::Phase::kStep), 3u);
}

TEST(ObsScopeTest, TraceEventsIgnoredWhenDisabled) {
  obs::RunObs slot;
  obs::ObsRunScope scope(slot);
  obs::emit(obs::TraceEventKind::kMove, 3, 1, 0, 2);
  EXPECT_TRUE(slot.trace.events().empty());
  slot.trace.enable();
  obs::emit(obs::TraceEventKind::kMove, 3, 1, 0, 2);
  ASSERT_EQ(slot.trace.events().size(), 1u);
  EXPECT_EQ(slot.trace.events()[0].step, 3u);
}

TEST(ObsMetricsTest, BatteryDepletionCountsOnce) {
  obs::RunObs slot;
  obs::ObsRunScope scope(slot);
  BatteryParams params;
  params.capacity = 1.0;
  params.drain_per_step = 0.4;
  BatteryBank bank(2, {true, false}, params);
  for (int i = 0; i < 10; ++i) bank.step();
  // Node 0 dies exactly once (at step 3); node 1 is mains powered.
  EXPECT_EQ(slot.counters.value(obs::Counter::kBatteryDeaths), 1u);
  ASSERT_EQ(slot.trace.events().size(), 0u);  // tracing off by default
}

// Counters must obey the same contract as result tables: totals are
// bit-identical at every AGENTNET_THREADS setting because each run counts
// into its own slot and slots merge in run-index order.
TEST(ObsDeterminismTest, MappingCountersIdenticalAcrossThreadCounts) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 4;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};

  obs::RunObs serial;
  ObsConfig config;
  config.sink = &serial;
  run_mapping_experiment(net, task, 9, 42, /*threads=*/1, config);
  const auto reference = obs::snapshot(serial.counters);
  EXPECT_GT(reference.value(obs::Counter::kAgentHops), 0u);
  EXPECT_GT(reference.value(obs::Counter::kAgentMeetings), 0u);
  EXPECT_GT(reference.value(obs::Counter::kKnowledgeMerges), 0u);
  EXPECT_GT(reference.value(obs::Counter::kStigmergyStamps), 0u);

  for (int threads : {2, 7}) {
    SCOPED_TRACE(threads);
    obs::RunObs sink;
    ObsConfig parallel;
    parallel.sink = &sink;
    run_mapping_experiment(net, task, 9, 42, threads, parallel);
    EXPECT_EQ(obs::snapshot(sink.counters), reference);
  }
}

TEST(ObsDeterminismTest, RoutingCountersIdenticalAcrossThreadCounts) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task = tiny_routing_task();
  task.agent_loss_probability = 0.05;
  task.gateway_respawn_probability = 0.5;

  obs::RunObs serial;
  ObsConfig config;
  config.sink = &serial;
  run_routing_experiment(scenario, task, 5, 70, /*threads=*/1, config);
  const auto reference = obs::snapshot(serial.counters);
  EXPECT_GT(reference.value(obs::Counter::kAgentHops), 0u);
  EXPECT_GT(reference.value(obs::Counter::kRouteTableUpdates), 0u);
  EXPECT_GT(reference.value(obs::Counter::kAgentsLost), 0u);
  EXPECT_GT(reference.value(obs::Counter::kAgentsRespawned), 0u);

  for (int threads : {2, 7}) {
    SCOPED_TRACE(threads);
    obs::RunObs sink;
    ObsConfig parallel;
    parallel.sink = &sink;
    run_routing_experiment(scenario, task, 5, 70, threads, parallel);
    EXPECT_EQ(obs::snapshot(sink.counters), reference);
  }
}

TEST(ObsDeterminismTest, PhaseTimersFireForEveryStage) {
  const auto scenario = tiny_scenario();
  obs::RunObs sink;
  ObsConfig config;
  config.sink = &sink;
  run_routing_experiment(scenario, tiny_routing_task(), 2, 7, 1, config);
  const auto phases = obs::snapshot(sink.phases);
  for (obs::Phase phase :
       {obs::Phase::kSetup, obs::Phase::kSense, obs::Phase::kDecide,
        obs::Phase::kMove, obs::Phase::kMeasure, obs::Phase::kWorldAdvance,
        obs::Phase::kStep, obs::Phase::kMerge, obs::Phase::kSummarize}) {
    SCOPED_TRACE(obs::phase_name(phase));
    EXPECT_GT(phases.at(phase).calls, 0u);
  }
}

// The tracer's own contract: event streams carry only simulation
// quantities, so a traced experiment produces byte-identical files no
// matter how its replications were scheduled.
TEST(ObsTraceTest, TraceFilesByteIdenticalAcrossThreadCounts) {
  const auto scenario = tiny_scenario();
  const RoutingTaskConfig task = tiny_routing_task();

  const std::string serial_path = temp_path("obs_trace_serial.jsonl");
  ObsConfig serial;
  serial.trace_path = serial_path;
  obs::RunObs sink;
  serial.sink = &sink;
  run_routing_experiment(scenario, task, 5, 70, /*threads=*/1, serial);
  const std::string reference = read_file(serial_path);
  EXPECT_FALSE(reference.empty());

  const std::string parallel_path = temp_path("obs_trace_parallel.jsonl");
  ObsConfig parallel;
  parallel.trace_path = parallel_path;
  parallel.sink = &sink;
  run_routing_experiment(scenario, task, 5, 70, /*threads=*/7, parallel);
  EXPECT_EQ(read_file(parallel_path), reference);
}

TEST(ObsTraceTest, EveryLineOfARealTraceRoundTrips) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 4;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kFilterFirst};

  const std::string path = temp_path("obs_trace_roundtrip.jsonl");
  ObsConfig config;
  config.trace_path = path;
  obs::RunObs sink;
  config.sink = &sink;
  run_mapping_experiment(net, task, 3, 42, 1, config);

  std::ifstream is(path);
  ASSERT_TRUE(is.is_open());
  std::string line;
  std::size_t lines = 0, groups = 0;
  while (std::getline(is, line)) {
    ++lines;
    std::string error;
    const auto record = obs::parse_trace_line(line, &error);
    ASSERT_TRUE(record.has_value()) << error << " in: " << line;
    EXPECT_EQ(obs::serialize_trace_line(record->run, record->event), line);
    if (record->event.kind == obs::TraceEventKind::kRunGroup) {
      ++groups;
      EXPECT_EQ(record->event.a, 3);  // runs in this group
    }
  }
  EXPECT_GT(lines, 3u);
  EXPECT_EQ(groups, 1u);
}

TEST(ObsTraceTest, SecondExperimentAppendsAnotherRunGroup) {
  const auto net = tiny_network();
  MappingTaskConfig task;
  task.population = 3;
  const std::string path = temp_path("obs_trace_append.jsonl");
  obs::RunObs sink;
  ObsConfig config;
  config.trace_path = path;
  config.sink = &sink;
  run_mapping_experiment(net, task, 2, 1, 1, config);
  run_mapping_experiment(net, task, 2, 1, 1, config);
  std::ifstream is(path);
  std::string line;
  std::size_t groups = 0;
  while (std::getline(is, line)) {
    const auto record = obs::parse_trace_line(line);
    ASSERT_TRUE(record.has_value());
    if (record->event.kind == obs::TraceEventKind::kRunGroup) ++groups;
  }
  EXPECT_EQ(groups, 2u);
}

TEST(ObsTraceTest, ChromeFormatEmitsValidInstantEvents) {
  obs::TraceEvent event;
  event.kind = obs::TraceEventKind::kMove;
  event.step = 12;
  event.agent = 3;
  event.a = 7;
  event.b = 9;
  const std::string line = obs::serialize_chrome_line(2, event);
  EXPECT_NE(line.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(line.find("\"ts\":12"), std::string::npos);
  EXPECT_NE(line.find("\"pid\":2"), std::string::npos);
  EXPECT_NE(line.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(line.find("\"from\":7"), std::string::npos);
  EXPECT_NE(line.find("\"to\":9"), std::string::npos);
}

TEST(ObsTraceTest, ParserRejectsMalformedLines) {
  for (const char* bad : {
           "",                                   // not an object
           "{\"step\":3}",                       // missing ev
           "{\"ev\":\"warp\",\"step\":3}",       // unknown kind
           "{\"ev\":\"move\",\"bogus\":1}",      // unknown field
           "{\"ev\":\"move\",\"step\":}",        // missing value
           "{\"ev\":\"move\",\"step\":3} tail",  // trailing garbage
       }) {
    SCOPED_TRACE(bad);
    std::string error;
    EXPECT_FALSE(obs::parse_trace_line(bad, &error).has_value());
    EXPECT_FALSE(error.empty());
  }
}

TEST(ObsConfigTest, FromEnvReadsTracePathAndFormat) {
  ASSERT_EQ(setenv("AGENTNET_TRACE", "/tmp/t.jsonl", 1), 0);
  ASSERT_EQ(setenv("AGENTNET_TRACE_FORMAT", "chrome", 1), 0);
  const ObsConfig config = ObsConfig::from_env();
  ASSERT_TRUE(config.trace_path.has_value());
  EXPECT_EQ(*config.trace_path, "/tmp/t.jsonl");
  EXPECT_EQ(config.trace_format, obs::TraceFormat::kChrome);

  ASSERT_EQ(setenv("AGENTNET_TRACE_FORMAT", "xml", 1), 0);
  EXPECT_THROW(ObsConfig::from_env(), ConfigError);
  unsetenv("AGENTNET_TRACE");
  unsetenv("AGENTNET_TRACE_FORMAT");
  EXPECT_FALSE(ObsConfig::from_env().trace_path.has_value());
}

TEST(ObsNamesTest, EveryCounterAndPhaseHasAStableName) {
  for (std::size_t i = 0; i < obs::kCounterCount; ++i)
    EXPECT_STRNE(obs::counter_name(static_cast<obs::Counter>(i)), "?");
  for (std::size_t i = 0; i < obs::kPhaseCount; ++i)
    EXPECT_STRNE(obs::phase_name(static_cast<obs::Phase>(i)), "?");
  for (std::size_t i = 0;
       i < static_cast<std::size_t>(obs::TraceEventKind::kCount); ++i)
    EXPECT_STRNE(obs::trace_event_name(static_cast<obs::TraceEventKind>(i)),
                 "?");
}

}  // namespace
}  // namespace agentnet
