// Resume determinism (docs/ROBUSTNESS.md): run k steps, checkpoint,
// restore, continue — the final artefacts (trace JSONL, metrics JSONL)
// must be byte-identical to the uninterrupted run, at any thread count,
// for every task family, under fault injection. Checkpoint bookkeeping is
// outside the deterministic surface: checkpoint_* trace events are
// filtered before comparison (the documented `grep -v checkpoint_`
// contract) and checkpoint counters are already excluded from metrics
// deltas and counter footers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "aco/ant_routing_task.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"
#include "experiments/traffic_experiments.hpp"
#include "net/generators.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  EXPECT_TRUE(is.is_open()) << path;
  std::ostringstream out;
  out << is.rdbuf();
  return out.str();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

/// Drops checkpoint_saved / checkpoint_restored lines — the only trace
/// difference a checkpointing or resumed run is allowed to have.
std::string without_checkpoint_lines(const std::string& text) {
  std::istringstream is(text);
  std::string out, line;
  while (std::getline(is, line))
    if (line.find("checkpoint_") == std::string::npos) out += line + "\n";
  return out;
}

class EnvGuard {
 public:
  EnvGuard(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }
  EnvGuard(const EnvGuard&) = delete;
  EnvGuard& operator=(const EnvGuard&) = delete;

 private:
  const char* name_;
};

struct Artefacts {
  std::string trace;
  std::string metrics;
};

/// Runs `experiment` with trace + metrics wired to fresh files named by
/// `tag` and returns their contents (trace filtered of checkpoint events).
template <typename Fn>
Artefacts run_leg(const std::string& tag, const Fn& experiment) {
  obs::ObsConfig config;
  config.trace_path = temp_path(tag + ".trace.jsonl");
  config.metrics_path = temp_path(tag + ".metrics.jsonl");
  experiment(config);
  return {without_checkpoint_lines(read_file(*config.trace_path)),
          read_file(*config.metrics_path)};
}

FaultPlan chaos_plan() {
  FaultPlan plan;
  plan.node_crash_probability = 0.04;
  plan.crash_persistence = 5;
  plan.burst_drop_probability = 0.05;
  plan.agent_loss_probability = 0.02;
  plan.gateway_respawn_probability = 0.05;
  plan.watchdog_ttl = 20;
  return plan;
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 70;
  return RoutingScenario(params, 17);
}

#if AGENTNET_OBS_LEVEL >= 1

TEST(SnapshotResumeTest, RoutingResumeByteIdenticalAtEveryThreadCount) {
  const RoutingScenario scenario = tiny_scenario();
  RoutingTaskConfig task;
  task.population = 12;
  task.steps = 60;
  task.measure_from = 30;
  task.faults = chaos_plan();
  const int runs = 3;
  const std::uint64_t seed = 4242;
  const auto leg = [&](const std::string& tag, int threads) {
    return run_leg(tag, [&](const obs::ObsConfig& config) {
      run_routing_experiment(scenario, task, runs, seed, threads, config);
    });
  };

  const Artefacts base = leg("rt_base", 1);
  const std::string ck = temp_path("rt.snap");
  {
    EnvGuard save("AGENTNET_CHECKPOINT", ck);
    EnvGuard every("AGENTNET_CHECKPOINT_EVERY", "20");
    const Artefacts saving = leg("rt_save", 2);
    EXPECT_EQ(saving.trace, base.trace)
        << "checkpointing must not perturb the run";
    EXPECT_EQ(saving.metrics, base.metrics);
  }
  std::ifstream snap(ck);
  ASSERT_TRUE(snap.is_open()) << "autosave produced no checkpoint";
  for (const int threads : {1, 2, 7}) {
    EnvGuard resume("AGENTNET_RESUME", ck);
    const Artefacts resumed =
        leg("rt_resume_t" + std::to_string(threads), threads);
    EXPECT_EQ(resumed.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(resumed.metrics, base.metrics) << "threads=" << threads;
  }
}

TEST(SnapshotResumeTest, MappingResumeByteIdentical) {
  TargetEdgeParams params;
  params.geometry.node_count = 40;
  params.target_edges = 240;
  params.tolerance = 0.05;
  const GeneratedNetwork network = generate_target_edge_network(params, 5);
  MappingTaskConfig task;
  task.population = 8;
  task.max_steps = 120;
  task.faults = chaos_plan();
  const int runs = 2;
  const std::uint64_t seed = 99;
  const auto leg = [&](const std::string& tag, int threads) {
    return run_leg(tag, [&](const obs::ObsConfig& config) {
      run_mapping_experiment(network, task, runs, seed, threads, config);
    });
  };

  const Artefacts base = leg("mp_base", 1);
  const std::string ck = temp_path("mp.snap");
  {
    EnvGuard save("AGENTNET_CHECKPOINT", ck);
    EnvGuard every("AGENTNET_CHECKPOINT_EVERY", "40");
    const Artefacts saving = leg("mp_save", 2);
    EXPECT_EQ(saving.trace, base.trace);
    EXPECT_EQ(saving.metrics, base.metrics);
  }
  for (const int threads : {1, 2, 7}) {
    EnvGuard resume("AGENTNET_RESUME", ck);
    const Artefacts resumed =
        leg("mp_resume_t" + std::to_string(threads), threads);
    EXPECT_EQ(resumed.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(resumed.metrics, base.metrics) << "threads=" << threads;
  }
}

TEST(SnapshotResumeTest, TrafficResumeByteIdentical) {
  const RoutingScenario scenario = tiny_scenario();
  TrafficTaskConfig task;
  task.steps = 60;
  task.measure_from = 30;
  task.faults = chaos_plan();
  const int runs = 2;
  const std::uint64_t seed = 7;
  const auto leg = [&](const std::string& tag, int threads) {
    return run_leg(tag, [&](const obs::ObsConfig& config) {
      run_traffic_experiment(scenario, task, runs, seed, threads, config);
    });
  };

  const Artefacts base = leg("tf_base", 1);
  const std::string ck = temp_path("tf.snap");
  {
    EnvGuard save("AGENTNET_CHECKPOINT", ck);
    EnvGuard every("AGENTNET_CHECKPOINT_EVERY", "20");
    const Artefacts saving = leg("tf_save", 2);
    EXPECT_EQ(saving.trace, base.trace);
    EXPECT_EQ(saving.metrics, base.metrics);
  }
  for (const int threads : {1, 2, 7}) {
    EnvGuard resume("AGENTNET_RESUME", ck);
    const Artefacts resumed =
        leg("tf_resume_t" + std::to_string(threads), threads);
    EXPECT_EQ(resumed.trace, base.trace) << "threads=" << threads;
    EXPECT_EQ(resumed.metrics, base.metrics) << "threads=" << threads;
  }
}

TEST(SnapshotResumeTest, AntColonyResumeByteIdentical) {
  // The ant-colony harness (agentnet_cli run_aco) is a serial loop with
  // per-run ports; mirror that wiring here with an explicit checkpointer.
  const RoutingScenario scenario = tiny_scenario();
  AntRoutingTaskConfig task;
  task.steps = 60;
  task.measure_from = 30;
  task.faults = chaos_plan();
  const int runs = 2;
  const std::uint64_t seed = 31;
  const snapshot::ExperimentIdentity identity{
      "aco", static_cast<std::uint64_t>(runs), seed, scenario.node_count(),
      task.steps};

  const auto leg = [&](const std::string& tag,
                       snapshot::ExperimentCheckpointer* checkpointer) {
    return run_leg(tag, [&](const obs::ObsConfig& config) {
      std::vector<obs::RunObs> slots(static_cast<std::size_t>(runs));
      obs::enable_slots(slots, config);
      for (int r = 0; r < runs; ++r) {
        obs::ObsRunScope scope(slots[static_cast<std::size_t>(r)]);
        AntRoutingTaskConfig run_config = task;
        snapshot::RunCheckpointPort port;
        if (checkpointer) {
          port = checkpointer->port(static_cast<std::uint64_t>(r));
          run_config.checkpoint = &port;
        }
        run_ant_routing_task(scenario, run_config,
                             Rng(seed + static_cast<std::uint64_t>(r)));
      }
      obs::merge_and_write(slots, config, seed, runs, 1);
    });
  };

  const Artefacts base = leg("aco_base", nullptr);
  const std::string ck = temp_path("aco.snap");
  snapshot::ExperimentCheckpointer saver(identity, ck, 20, "");
  const Artefacts saving = leg("aco_save", &saver);
  EXPECT_EQ(saving.trace, base.trace);
  EXPECT_EQ(saving.metrics, base.metrics);
  snapshot::ExperimentCheckpointer resumer(identity, "", 20, ck);
  const Artefacts resumed = leg("aco_resume", &resumer);
  EXPECT_EQ(resumed.trace, base.trace);
  EXPECT_EQ(resumed.metrics, base.metrics);
}

TEST(SnapshotResumeTest, ResumeFromEarlierCheckpointAlsoIdentical) {
  // Any valid record is a correct restart point, not just the latest:
  // checkpoint at step 20 (period 20, budget 45 → last full save at 40),
  // then resume from the on-disk file mid-history.
  const RoutingScenario scenario = tiny_scenario();
  RoutingTaskConfig task;
  task.population = 10;
  task.steps = 45;
  task.measure_from = 20;
  const int runs = 2;
  const std::uint64_t seed = 555;
  const auto leg = [&](const std::string& tag, int threads) {
    return run_leg(tag, [&](const obs::ObsConfig& config) {
      run_routing_experiment(scenario, task, runs, seed, threads, config);
    });
  };

  const Artefacts base = leg("early_base", 1);
  const std::string ck = temp_path("early.snap");
  {
    // Save only at step 20: with the budget at 45 the file's final state
    // is a mid-run record well before the finish line.
    EnvGuard save("AGENTNET_CHECKPOINT", ck);
    EnvGuard every("AGENTNET_CHECKPOINT_EVERY", "40");
    leg("early_save", 1);
  }
  const snapshot::Checkpoint on_disk = snapshot::load_checkpoint(ck);
  ASSERT_EQ(on_disk.runs.size(), static_cast<std::size_t>(runs));
  for (const auto& [run, record] : on_disk.runs)
    EXPECT_EQ(record.step, 40u) << "run " << run;
  {
    EnvGuard resume("AGENTNET_RESUME", ck);
    const Artefacts resumed = leg("early_resume", 2);
    EXPECT_EQ(resumed.trace, base.trace);
    EXPECT_EQ(resumed.metrics, base.metrics);
  }
}

#endif  // AGENTNET_OBS_LEVEL >= 1

}  // namespace
}  // namespace agentnet
