// Checkpoint container format: byte-stream round-trips, corruption
// rejection (CRC, truncation, bad magic, wrong version, giant counts) and
// the temp-then-rename atomicity contract (docs/ROBUSTNESS.md).
#include "snapshot/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet::snapshot {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::uint8_t> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.is_open()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                   std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os.is_open()) << path;
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

enum class Fruit : std::uint8_t { kApple, kBanana, kCherry };

TEST(ByteStreamTest, RoundTripsEveryScalarType) {
  ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.size(77);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str("hello snapshot");
  w.blob({1, 2, 3});
  w.pod_vec(std::vector<std::uint32_t>{5, 6, 7});
  w.pod_vec(std::vector<double>{1.5, -2.5});
  w.scalar(Fruit::kCherry);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.size(), 77u);
  EXPECT_EQ(r.f64(), 3.141592653589793);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello snapshot");
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  std::vector<std::uint32_t> ints;
  r.pod_vec(ints);
  EXPECT_EQ(ints, (std::vector<std::uint32_t>{5, 6, 7}));
  std::vector<double> doubles;
  r.pod_vec(doubles);
  EXPECT_EQ(doubles, (std::vector<double>{1.5, -2.5}));
  EXPECT_EQ(r.scalar<Fruit>(), Fruit::kCherry);
  EXPECT_TRUE(r.done());
}

TEST(ByteStreamTest, TruncatedReadNamesTheOffset) {
  ByteWriter w;
  w.u32(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 7u);
  try {
    r.u64();
    FAIL() << "read past the end succeeded";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("at byte 4"), std::string::npos)
        << e.what();
  }
}

TEST(ByteStreamTest, GiantCountRejectedBeforeAllocation) {
  ByteWriter w;
  w.size(static_cast<std::size_t>(1) << 60);  // absurd element count
  ByteReader r(w.bytes());
  EXPECT_THROW(r.counted(8), ConfigError);
  ByteReader r2(w.bytes());
  std::vector<std::uint64_t> v;
  EXPECT_THROW(r2.pod_vec(v), ConfigError);
}

TEST(ByteStreamTest, ScalarRangeCheckCatchesNarrowingCorruption) {
  ByteWriter w;
  w.u64(0x1'0000'0000ull);  // does not fit a 32-bit NodeId
  ByteReader r(w.bytes());
  EXPECT_THROW(r.scalar<std::uint32_t>(), ConfigError);
}

TEST(ByteStreamTest, BadBooleanRejected) {
  ByteWriter w;
  w.u8(2);
  ByteReader r(w.bytes());
  EXPECT_THROW(r.boolean(), ConfigError);
}

Checkpoint sample_checkpoint() {
  Checkpoint ck;
  ck.identity = {"routing", 3, 2010, 120, 300};
  for (std::uint64_t run = 0; run < 3; ++run) {
    RunRecord record;
    record.step = 100 + run;
    ByteWriter w;
    w.u64(run * 17);
    w.str("payload-" + std::to_string(run));
    record.payload = w.take();
    ck.runs[run] = std::move(record);
  }
  return ck;
}

TEST(CheckpointFileTest, RoundTripsIdentityAndRunRecords) {
  const Checkpoint ck = sample_checkpoint();
  const std::string path = temp_path("roundtrip.snap");
  save_checkpoint(ck, path);
  const Checkpoint loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.identity, ck.identity);
  ASSERT_EQ(loaded.runs.size(), ck.runs.size());
  for (const auto& [run, record] : ck.runs) {
    const auto it = loaded.runs.find(run);
    ASSERT_NE(it, loaded.runs.end());
    EXPECT_EQ(it->second.step, record.step);
    EXPECT_EQ(it->second.payload, record.payload);
  }
}

TEST(CheckpointFileTest, SaveLeavesNoTempFile) {
  const std::string path = temp_path("atomic.snap");
  save_checkpoint(sample_checkpoint(), path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open()) << "temp file left behind after save";
}

TEST(CheckpointFileTest, MissingFileRejected) {
  EXPECT_THROW(load_checkpoint(temp_path("never_written.snap")), ConfigError);
}

TEST(CheckpointFileTest, BadMagicRejected) {
  const std::string path = temp_path("badmagic.snap");
  std::vector<std::uint8_t> junk(64, 0x5A);
  write_bytes(path, junk);
  try {
    load_checkpoint(path);
    FAIL() << "bad magic accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFileTest, WrongVersionRejected) {
  const std::string path = temp_path("badversion.snap");
  save_checkpoint(sample_checkpoint(), path);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  bytes[8] = 0xFF;  // version field follows the 8-byte magic
  write_bytes(path, bytes);
  try {
    load_checkpoint(path);
    FAIL() << "wrong version accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointFileTest, EveryTruncationPointRejected) {
  const std::string path = temp_path("trunc.snap");
  save_checkpoint(sample_checkpoint(), path);
  const std::vector<std::uint8_t> bytes = read_bytes(path);
  // Chop the file at a spread of lengths (including mid-header and
  // mid-chunk): none may load, none may crash.
  for (std::size_t len = 0; len < bytes.size();
       len += 1 + bytes.size() / 23) {
    const std::string cut = temp_path("trunc_cut.snap");
    write_bytes(cut, {bytes.begin(), bytes.begin() + len});
    EXPECT_THROW(load_checkpoint(cut), ConfigError) << "length " << len;
  }
}

TEST(CheckpointFileTest, EveryFlippedByteRejectedOrHarmless) {
  const std::string path = temp_path("flip.snap");
  save_checkpoint(sample_checkpoint(), path);
  const std::vector<std::uint8_t> bytes = read_bytes(path);
  // Flip one byte at a stride of positions. Each flip must either be
  // caught (ConfigError — the expected case: every payload byte is under
  // a CRC) or at least never invoke UB / crash.
  std::size_t rejected = 0, flips = 0;
  for (std::size_t pos = 0; pos < bytes.size();
       pos += 1 + bytes.size() / 53) {
    std::vector<std::uint8_t> mutated = bytes;
    mutated[pos] ^= 0xFF;
    const std::string cut = temp_path("flip_cut.snap");
    write_bytes(cut, mutated);
    ++flips;
    try {
      (void)load_checkpoint(cut);
    } catch (const ConfigError&) {
      ++rejected;
    }
  }
  // The container has no slack bytes: every single-byte flip lands in the
  // magic, the version, a length, a CRC or CRC-covered payload.
  EXPECT_EQ(rejected, flips);
}

TEST(CheckpointFileTest, DuplicateRunChunkRejected) {
  // Hand-assemble a file whose run chunk appears twice: parsing must
  // reject the duplicate key instead of silently keeping either record.
  const std::string path = temp_path("dup.snap");
  Checkpoint ck = sample_checkpoint();
  save_checkpoint(ck, path);
  std::vector<std::uint8_t> bytes = read_bytes(path);
  // Locate the first run chunk: header is magic(8) + version(4) +
  // chunk_count(4); each chunk is id(4) + len(8) + crc(4) + payload.
  ByteReader r(bytes.data(), bytes.size());
  r.raw(8);
  (void)r.u32();
  const std::size_t count_pos = r.position();
  const std::uint32_t chunk_count = r.u32();
  ASSERT_GE(chunk_count, 2u);
  // Skip the identity chunk, then capture the first run chunk's extent.
  (void)r.u32();
  const std::size_t id_len = r.size();
  (void)r.u32();
  r.raw(id_len);
  const std::size_t run_chunk_begin = r.position();
  (void)r.u32();
  const std::size_t run_len = r.size();
  (void)r.u32();
  r.raw(run_len);
  const std::size_t run_chunk_end = r.position();
  // Append a copy of that chunk and bump the chunk count.
  std::vector<std::uint8_t> dup(bytes.begin() + run_chunk_begin,
                                bytes.begin() + run_chunk_end);
  bytes.insert(bytes.end(), dup.begin(), dup.end());
  const std::uint32_t new_count = chunk_count + 1;
  for (int i = 0; i < 4; ++i)
    bytes[count_pos + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(new_count >> (8 * i));
  write_bytes(path, bytes);
  try {
    load_checkpoint(path);
    FAIL() << "duplicate run chunk accepted";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(CheckpointerTest, IdentityMismatchRejectedAtConstruction) {
  const std::string path = temp_path("identity.snap");
  save_checkpoint(sample_checkpoint(), path);
  const ExperimentIdentity right{"routing", 3, 2010, 120, 300};
  // Matching identity constructs fine.
  EXPECT_NO_THROW(ExperimentCheckpointer(right, "", 50, path));
  // Any drifted field — kind, runs, seed base, scale, step budget — fails.
  for (const ExperimentIdentity& wrong :
       {ExperimentIdentity{"mapping", 3, 2010, 120, 300},
        ExperimentIdentity{"routing", 4, 2010, 120, 300},
        ExperimentIdentity{"routing", 3, 2011, 120, 300},
        ExperimentIdentity{"routing", 3, 2010, 121, 300},
        ExperimentIdentity{"routing", 3, 2010, 120, 301}}) {
    EXPECT_THROW(ExperimentCheckpointer(wrong, "", 50, path), ConfigError);
  }
}

TEST(CheckpointerTest, SaveDueHonoursPeriodAndResumePoint) {
  const std::string path = temp_path("savedue.snap");
  ExperimentCheckpointer saver({"routing", 1, 7, 10, 100}, path, 25, "");
  RunCheckpointPort port = saver.port(0);
  EXPECT_FALSE(port.resuming());
  EXPECT_FALSE(port.save_due(0)) << "step 0 is the initial state";
  EXPECT_FALSE(port.save_due(24));
  EXPECT_TRUE(port.save_due(25));
  EXPECT_TRUE(port.save_due(50));
  port.save(25, [](ByteWriter& w) { w.u64(99); });
  // Resume from that file: the resumed step must not immediately re-save.
  ExperimentCheckpointer resumer({"routing", 1, 7, 10, 100}, path, 25, path);
  RunCheckpointPort rport = resumer.port(0);
  ASSERT_TRUE(rport.resuming());
  std::uint64_t restored = 0;
  EXPECT_EQ(rport.restore([&](ByteReader& r) { restored = r.u64(); }), 25u);
  EXPECT_EQ(restored, 99u);
  EXPECT_FALSE(rport.save_due(25)) << "that state is already on disk";
  EXPECT_TRUE(rport.save_due(50));
}

}  // namespace
}  // namespace agentnet::snapshot
