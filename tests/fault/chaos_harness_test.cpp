// The graceful-degradation harness (ROADMAP: robustness): sweep fault
// intensity over the mapping and routing tasks and assert the three
// contracts every chaos run must honour —
//
//   1. determinism: summaries are bit-identical at every AGENTNET_THREADS
//      (the fault subsystem must not break the parallel-replication
//      guarantee);
//   2. no wedging: no exception or abort at any intensity, including ones
//      far past realistic (the simulation degrades, it does not die);
//   3. graceful degradation: coverage / connectivity fall monotonically as
//      intensity rises, and intensity 0 reproduces the fault-free baseline
//      bit for bit.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "experiments/mapping_experiments.hpp"
#include "experiments/routing_experiments.hpp"
#include "fault/fault_plan.hpp"

namespace agentnet {
namespace {

GeneratedNetwork tiny_network() {
  TargetEdgeParams params;
  params.geometry.node_count = 40;
  params.target_edges = 220;
  params.tolerance = 0.05;
  return generate_target_edge_network(params, 3);
}

RoutingScenario tiny_scenario() {
  RoutingScenarioParams params;
  params.node_count = 50;
  params.gateway_count = 4;
  params.bounds = {{0.0, 0.0}, {350.0, 350.0}};
  params.trace_steps = 60;
  return RoutingScenario(params, 17);
}

/// The swept plan: every injection class live at base rates, resilience
/// policies on whenever faults are. plan_at(0) is the inert plan by the
/// scaled() contract, so the sweep's zero point IS the baseline.
FaultPlan mapping_plan_at(double intensity) {
  FaultPlan base;
  base.agent_loss_probability = 0.004;
  base.node_crash_probability = 0.01;
  base.crash_persistence = 8;
  base.burst_drop_probability = 0.02;
  base.burst_persistence = 4;
  base.exchange_failure_probability = 0.05;
  FaultPlan plan = base.scaled(intensity);
  if (intensity > 0.0) {
    plan.watchdog_ttl = 80;
    plan.knowledge_ttl = 120;
  }
  return plan;
}

FaultPlan routing_plan_at(double intensity) {
  FaultPlan base;
  base.agent_loss_probability = 0.01;
  base.gateway_respawn_probability = 0.3;
  base.node_crash_probability = 0.02;
  base.crash_persistence = 6;
  base.burst_drop_probability = 0.03;
  base.burst_persistence = 3;
  base.exchange_failure_probability = 0.05;
  base.blackouts.push_back({{175.0, 175.0}, 60.0, 20, 15});
  FaultPlan plan = base.scaled(intensity);
  if (intensity > 0.0) plan.watchdog_ttl = 25;
  return plan;
}

MappingTaskConfig mapping_task_at(double intensity) {
  MappingTaskConfig task;
  task.population = 5;
  task.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  task.max_steps = 2500;  // chaos runs may never finish; bound them
  task.faults = mapping_plan_at(intensity);
  return task;
}

RoutingTaskConfig routing_task_at(double intensity) {
  RoutingTaskConfig task;
  task.population = 15;
  task.steps = 60;
  task.measure_from = 30;
  task.faults = routing_plan_at(intensity);
  return task;
}

void expect_identical(const RunningStats& a, const RunningStats& b) {
  ASSERT_EQ(a.count(), b.count());
  if (a.empty()) return;
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
  EXPECT_EQ(a.min(), b.min());
  EXPECT_EQ(a.max(), b.max());
}

void expect_identical(const SeriesAccumulator& a, const SeriesAccumulator& b) {
  ASSERT_EQ(a.length(), b.length());
  ASSERT_EQ(a.runs(), b.runs());
  for (std::size_t i = 0; i < a.length(); ++i)
    expect_identical(a.at(i), b.at(i));
}

// --- Contract 1: thread-count invariance under faults -----------------

TEST(ChaosHarnessTest, MappingBitIdenticalAcrossThreadCountsAtAnyIntensity) {
  const auto net = tiny_network();
  for (double intensity : {0.0, 1.0, 4.0}) {
    SCOPED_TRACE(intensity);
    const auto task = mapping_task_at(intensity);
    const auto serial = run_mapping_experiment(net, task, 6, 42, 1);
    for (int threads : {2, 7}) {
      SCOPED_TRACE(threads);
      const auto parallel = run_mapping_experiment(net, task, 6, 42, threads);
      EXPECT_EQ(parallel.runs, serial.runs);
      EXPECT_EQ(parallel.unfinished, serial.unfinished);
      expect_identical(parallel.finishing_time, serial.finishing_time);
      expect_identical(parallel.knowledge, serial.knowledge);
    }
  }
}

TEST(ChaosHarnessTest, RoutingBitIdenticalAcrossThreadCountsAtAnyIntensity) {
  const auto scenario = tiny_scenario();
  for (double intensity : {0.0, 1.0, 4.0}) {
    SCOPED_TRACE(intensity);
    const auto task = routing_task_at(intensity);
    const auto serial = run_routing_experiment(scenario, task, 5, 70, 1);
    for (int threads : {2, 7}) {
      SCOPED_TRACE(threads);
      const auto parallel =
          run_routing_experiment(scenario, task, 5, 70, threads);
      EXPECT_EQ(parallel.runs, serial.runs);
      expect_identical(parallel.mean_connectivity, serial.mean_connectivity);
      expect_identical(parallel.window_stddev, serial.window_stddev);
      expect_identical(parallel.connectivity, serial.connectivity);
    }
  }
}

// --- Contract 2: the simulation degrades, it does not die -------------

TEST(ChaosHarnessTest, ExtremeIntensityNeverThrows) {
  const auto net = tiny_network();
  const auto scenario = tiny_scenario();
  for (double intensity : {8.0, 40.0}) {
    SCOPED_TRACE(intensity);
    MappingTaskConfig mapping = mapping_task_at(intensity);
    mapping.max_steps = 400;
    EXPECT_NO_THROW({
      World world = World::frozen(net);
      const auto result = run_mapping_task(world, mapping, Rng(11));
      EXPECT_FALSE(result.finished)
          << "a storm this violent cannot complete the map";
    });
    RoutingTaskConfig routing = routing_task_at(intensity);
    routing.traffic = TrafficConfig{};
    EXPECT_NO_THROW({
      const auto result = run_routing_task(scenario, routing, Rng(11));
      EXPECT_EQ(result.connectivity.size(), routing.steps);
    });
  }
}

// --- Contract 3a: intensity 0 IS the baseline, bit for bit ------------

TEST(ChaosHarnessTest, ZeroIntensityReproducesTheBaselineExactly) {
  const auto net = tiny_network();
  MappingTaskConfig plain;
  plain.population = 5;
  plain.agent = {MappingPolicy::kConscientious, StigmergyMode::kOff};
  plain.max_steps = 2500;
  const auto base_map = run_mapping_experiment(net, plain, 4, 42, 1);
  const auto zero_map =
      run_mapping_experiment(net, mapping_task_at(0.0), 4, 42, 1);
  EXPECT_EQ(zero_map.unfinished, base_map.unfinished);
  expect_identical(zero_map.finishing_time, base_map.finishing_time);
  expect_identical(zero_map.knowledge, base_map.knowledge);

  const auto scenario = tiny_scenario();
  RoutingTaskConfig plain_route;
  plain_route.population = 15;
  plain_route.steps = 60;
  plain_route.measure_from = 30;
  const auto base_route =
      run_routing_experiment(scenario, plain_route, 4, 70, 1);
  const auto zero_route =
      run_routing_experiment(scenario, routing_task_at(0.0), 4, 70, 1);
  expect_identical(zero_route.mean_connectivity, base_route.mean_connectivity);
  expect_identical(zero_route.connectivity, base_route.connectivity);
}

// --- Contract 3b: monotone degradation --------------------------------

TEST(ChaosHarnessTest, MappingCoverageDegradesMonotonically) {
  const auto net = tiny_network();
  auto coverage_at = [&](double intensity) {
    const auto summary =
        run_mapping_experiment(net, mapping_task_at(intensity), 4, 42, 1);
    return summary.knowledge.mean().back();
  };
  const double calm = coverage_at(0.0);
  const double low = coverage_at(1.0);
  const double high = coverage_at(4.0);
  EXPECT_DOUBLE_EQ(calm, 1.0) << "fault-free teams finish the map";
  EXPECT_GE(calm, low);
  EXPECT_GE(low, high);
  EXPECT_GT(high, 0.0) << "even under heavy faults agents learn something";
}

TEST(ChaosHarnessTest, RoutingConnectivityDegradesMonotonically) {
  const auto scenario = tiny_scenario();
  auto connectivity_at = [&](double intensity) {
    const auto summary = run_routing_experiment(
        scenario, routing_task_at(intensity), 4, 70, 1);
    return summary.mean_connectivity.mean();
  };
  const double calm = connectivity_at(0.0);
  const double low = connectivity_at(1.0);
  const double high = connectivity_at(4.0);
  EXPECT_GE(calm, low);
  EXPECT_GE(low, high);
  EXPECT_GT(calm, high)
      << "a 4x storm must visibly hurt gateway connectivity";
}

TEST(ChaosHarnessTest, TrafficDeliveryDegradesUnderFaults) {
  const auto scenario = tiny_scenario();
  auto delivery_at = [&](double intensity) {
    RoutingTaskConfig task = routing_task_at(intensity);
    task.traffic = TrafficConfig{};
    double delivered = 0.0;
    for (std::uint64_t s = 0; s < 3; ++s) {
      const auto result = run_routing_task(scenario, task, Rng(70 + s));
      delivered += result.traffic_stats->delivery_ratio();
    }
    return delivered / 3.0;
  };
  EXPECT_GE(delivery_at(0.0), delivery_at(4.0))
      << "packet delivery cannot improve when the network is on fire";
}

// --- Resilience policies visibly engage -------------------------------

TEST(ChaosHarnessTest, WatchdogKeepsFaultedTeamsAlive) {
  const auto net = tiny_network();
  MappingTaskConfig task = mapping_task_at(2.0);
  // A storm heavy enough (and a TTL short enough) that agents die and are
  // replaced well before any team could finish the map.
  task.faults.agent_loss_probability = 0.05;
  task.faults.watchdog_ttl = 25;
  task.max_steps = 1500;
  World world = World::frozen(net);
  const auto result = run_mapping_task(world, task, Rng(5));
  EXPECT_GT(result.agents_lost, 0u) << "the storm must actually bite";
  EXPECT_GT(result.agents_respawned, 0u) << "the watchdog must engage";
  EXPECT_GE(result.final_population, 1u)
      << "respawns keep the team from going extinct";

  MappingTaskConfig no_dog = task;
  no_dog.faults.watchdog_ttl = 0;
  World world2 = World::frozen(net);
  const auto undefended = run_mapping_task(world2, no_dog, Rng(5));
  EXPECT_EQ(undefended.agents_respawned, 0u);
  EXPECT_LE(undefended.final_population, result.final_population)
      << "without the watchdog, losses are permanent";
}

TEST(ChaosHarnessTest, RoutingWatchdogRespawnsAtLiveGateways) {
  const auto scenario = tiny_scenario();
  RoutingTaskConfig task = routing_task_at(2.0);
  const auto result = run_routing_task(scenario, task, Rng(7));
  EXPECT_GT(result.agents_lost, 0u);
  EXPECT_GT(result.agents_respawned, 0u);
  EXPECT_GE(result.final_population, 1u);
}

}  // namespace
}  // namespace agentnet
