// Unit tests for the declarative fault model: plan validation, intensity
// scaling, the environment parser, and the injector's hash-gated weather
// (crash windows, blackouts, burst outages layered on LinkFlapper).
#include "fault/fault_plan.hpp"

#include <cstdlib>
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "net/graph.hpp"
#include "net/link_noise.hpp"

namespace agentnet {
namespace {

Graph complete_graph(std::size_t n) {
  Graph g(n);
  for (NodeId u = 0; u < n; ++u)
    for (NodeId v = 0; v < n; ++v)
      if (u != v) g.add_edge(u, v);
  return g;
}

std::vector<Vec2> grid_positions(std::size_t n, double spacing) {
  std::vector<Vec2> positions(n);
  const std::size_t side = 10;
  for (std::size_t i = 0; i < n; ++i)
    positions[i] = {static_cast<double>(i % side) * spacing,
                    static_cast<double>(i / side) * spacing};
  return positions;
}

TEST(FaultPlanTest, DefaultPlanIsInert) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.any());
  EXPECT_FALSE(plan.topology_faults());
  EXPECT_NO_THROW(plan.validate());
  EXPECT_EQ(plan, FaultPlan{});
}

TEST(FaultPlanTest, AnyDetectsEveryKnob) {
  auto expect_any = [](auto set) {
    FaultPlan plan;
    set(plan);
    EXPECT_TRUE(plan.any());
  };
  expect_any([](FaultPlan& p) { p.agent_loss_probability = 0.1; });
  expect_any([](FaultPlan& p) { p.gateway_respawn_probability = 0.1; });
  expect_any([](FaultPlan& p) { p.node_crash_probability = 0.1; });
  expect_any([](FaultPlan& p) { p.burst_drop_probability = 0.1; });
  expect_any([](FaultPlan& p) { p.exchange_failure_probability = 0.1; });
  expect_any([](FaultPlan& p) { p.blackouts.push_back({{0, 0}, 1, 0, 5}); });
  expect_any([](FaultPlan& p) { p.watchdog_ttl = 5; });
  expect_any([](FaultPlan& p) { p.knowledge_ttl = 5; });
}

TEST(FaultPlanTest, ValidateRejectsOutOfRange) {
  auto bad = [](auto set) {
    FaultPlan plan;
    set(plan);
    EXPECT_THROW(plan.validate(), ConfigError);
  };
  bad([](FaultPlan& p) { p.agent_loss_probability = -0.1; });
  bad([](FaultPlan& p) { p.agent_loss_probability = 1.1; });
  bad([](FaultPlan& p) { p.gateway_respawn_probability = 2.0; });
  bad([](FaultPlan& p) { p.exchange_failure_probability = -1.0; });
  // Crash / burst probability 1.0 would down everything forever.
  bad([](FaultPlan& p) { p.node_crash_probability = 1.0; });
  bad([](FaultPlan& p) { p.burst_drop_probability = 1.0; });
  bad([](FaultPlan& p) {
    p.node_crash_probability = 0.1;
    p.crash_persistence = 0;
  });
  bad([](FaultPlan& p) {
    p.burst_drop_probability = 0.1;
    p.burst_persistence = 0;
  });
  bad([](FaultPlan& p) { p.blackouts.push_back({{0, 0}, -1.0, 0, 5}); });
}

TEST(FaultPlanTest, ScaledZeroIsTheInertPlan) {
  FaultPlan plan;
  plan.agent_loss_probability = 0.3;
  plan.node_crash_probability = 0.2;
  plan.blackouts.push_back({{5, 5}, 3, 10, 20});
  plan.watchdog_ttl = 40;
  EXPECT_EQ(plan.scaled(0.0), FaultPlan{})
      << "the zero point of a degradation sweep must reproduce the "
         "fault-free baseline exactly";
}

TEST(FaultPlanTest, ScaledMultipliesAndClamps) {
  FaultPlan plan;
  plan.agent_loss_probability = 0.4;
  plan.node_crash_probability = 0.3;
  const FaultPlan half = plan.scaled(0.5);
  EXPECT_DOUBLE_EQ(half.agent_loss_probability, 0.2);
  EXPECT_DOUBLE_EQ(half.node_crash_probability, 0.15);
  const FaultPlan huge = plan.scaled(10.0);
  EXPECT_DOUBLE_EQ(huge.agent_loss_probability, 1.0);
  EXPECT_LT(huge.node_crash_probability, 1.0)
      << "crash probability must stay in [0,1) — 1.0 kills every node";
  EXPECT_NO_THROW(huge.validate());
}

TEST(FaultPlanTest, BlackoutWindowAndDisc) {
  const Blackout b{{10.0, 10.0}, 5.0, 20, 10};
  EXPECT_FALSE(b.active(19));
  EXPECT_TRUE(b.active(20));
  EXPECT_TRUE(b.active(29));
  EXPECT_FALSE(b.active(30));
  EXPECT_TRUE(b.covers({10.0, 10.0}));
  EXPECT_TRUE(b.covers({13.0, 14.0}));  // exactly on the rim
  EXPECT_FALSE(b.covers({16.0, 10.0}));
}

TEST(FaultPlanTest, ParseBlackouts) {
  const auto zones = parse_blackouts("100:200:50:10:30;0:0:5:0:1");
  ASSERT_EQ(zones.size(), 2u);
  EXPECT_DOUBLE_EQ(zones[0].center.x, 100.0);
  EXPECT_DOUBLE_EQ(zones[0].center.y, 200.0);
  EXPECT_DOUBLE_EQ(zones[0].radius, 50.0);
  EXPECT_EQ(zones[0].start, 10u);
  EXPECT_EQ(zones[0].duration, 30u);
  EXPECT_EQ(zones[1].duration, 1u);
  EXPECT_TRUE(parse_blackouts("").empty());
  EXPECT_THROW(parse_blackouts("1:2:3:4"), ConfigError);
  EXPECT_THROW(parse_blackouts("a:b:c:d:e"), ConfigError);
  EXPECT_THROW(parse_blackouts("1:2:3:4:5:6"), ConfigError);
}

TEST(FaultPlanTest, FromEnvReadsTheFullTable) {
  setenv("AGENTNET_FAULT_AGENT_LOSS", "0.05", 1);
  setenv("AGENTNET_FAULT_RESPAWN", "0.2", 1);
  setenv("AGENTNET_FAULT_NODE_CRASH", "0.01", 1);
  setenv("AGENTNET_FAULT_CRASH_PERSISTENCE", "25", 1);
  setenv("AGENTNET_FAULT_BURST_DROP", "0.02", 1);
  setenv("AGENTNET_FAULT_BURST_PERSISTENCE", "3", 1);
  setenv("AGENTNET_FAULT_EXCHANGE", "0.1", 1);
  setenv("AGENTNET_FAULT_BLACKOUTS", "500:500:100:50:60", 1);
  setenv("AGENTNET_FAULT_SEED", "99", 1);
  setenv("AGENTNET_FAULT_WATCHDOG_TTL", "40", 1);
  setenv("AGENTNET_FAULT_KNOWLEDGE_TTL", "80", 1);
  setenv("AGENTNET_FAULT_ROUTE_AGING", "false", 1);
  const FaultPlan plan = FaultPlan::from_env();
  unsetenv("AGENTNET_FAULT_AGENT_LOSS");
  unsetenv("AGENTNET_FAULT_RESPAWN");
  unsetenv("AGENTNET_FAULT_NODE_CRASH");
  unsetenv("AGENTNET_FAULT_CRASH_PERSISTENCE");
  unsetenv("AGENTNET_FAULT_BURST_DROP");
  unsetenv("AGENTNET_FAULT_BURST_PERSISTENCE");
  unsetenv("AGENTNET_FAULT_EXCHANGE");
  unsetenv("AGENTNET_FAULT_BLACKOUTS");
  unsetenv("AGENTNET_FAULT_SEED");
  unsetenv("AGENTNET_FAULT_WATCHDOG_TTL");
  unsetenv("AGENTNET_FAULT_KNOWLEDGE_TTL");
  unsetenv("AGENTNET_FAULT_ROUTE_AGING");
  EXPECT_DOUBLE_EQ(plan.agent_loss_probability, 0.05);
  EXPECT_DOUBLE_EQ(plan.gateway_respawn_probability, 0.2);
  EXPECT_DOUBLE_EQ(plan.node_crash_probability, 0.01);
  EXPECT_EQ(plan.crash_persistence, 25u);
  EXPECT_DOUBLE_EQ(plan.burst_drop_probability, 0.02);
  EXPECT_EQ(plan.burst_persistence, 3u);
  EXPECT_DOUBLE_EQ(plan.exchange_failure_probability, 0.1);
  ASSERT_EQ(plan.blackouts.size(), 1u);
  EXPECT_EQ(plan.blackouts[0].start, 50u);
  EXPECT_EQ(plan.weather_seed, 99u);
  EXPECT_EQ(plan.watchdog_ttl, 40u);
  EXPECT_EQ(plan.knowledge_ttl, 80u);
  EXPECT_FALSE(plan.age_crashed_routes);
  EXPECT_EQ(FaultPlan::from_env(), FaultPlan{})
      << "an empty environment must yield the inert plan";
}

TEST(FaultInjectorTest, InertPlanReturnsTheGraphItself) {
  const Graph g = complete_graph(10);
  FaultInjector injector(FaultPlan{}, Rng(1).fork(0xFA11));
  const Graph& live = injector.live_graph(g, {}, 0);
  EXPECT_EQ(&live, &g) << "no topology faults: no copy, no mask";
  EXPECT_FALSE(injector.down(3));
}

TEST(FaultInjectorTest, CrashWindowsHoldForWholePersistence) {
  FaultPlan plan;
  plan.node_crash_probability = 0.3;
  plan.crash_persistence = 10;
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  for (NodeId v = 0; v < 50; ++v) {
    const bool at0 = injector.node_crashed(v, 0);
    for (std::size_t step = 1; step < 10; ++step)
      ASSERT_EQ(injector.node_crashed(v, step), at0)
          << "crash state must hold within a window";
  }
  int changed = 0;
  for (NodeId v = 0; v < 200; ++v)
    if (injector.node_crashed(v, 0) != injector.node_crashed(v, 10))
      ++changed;
  EXPECT_GT(changed, 20) << "new window, new crash draw";
}

TEST(FaultInjectorTest, CrashRateMatchesProbability) {
  FaultPlan plan;
  plan.node_crash_probability = 0.2;
  plan.crash_persistence = 1;
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  std::size_t crashed = 0, total = 0;
  for (NodeId v = 0; v < 500; ++v)
    for (std::size_t step = 0; step < 20; ++step) {
      ++total;
      if (injector.node_crashed(v, step)) ++crashed;
    }
  EXPECT_NEAR(static_cast<double>(crashed) / static_cast<double>(total), 0.2,
              0.01);
}

TEST(FaultInjectorTest, CrashedNodesLoseAllEdges) {
  const Graph g = complete_graph(30);
  FaultPlan plan;
  plan.node_crash_probability = 0.25;
  plan.crash_persistence = 5;
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  const Graph& live = injector.live_graph(g, {}, 7);
  for (NodeId u = 0; u < 30; ++u)
    for (NodeId v = 0; v < 30; ++v) {
      if (u == v) continue;
      const bool expect_up =
          !injector.node_crashed(u, 7) && !injector.node_crashed(v, 7);
      ASSERT_EQ(live.has_edge(u, v), expect_up) << u << "->" << v;
      ASSERT_EQ(injector.down(u), injector.node_crashed(u, 7));
    }
}

TEST(FaultInjectorTest, BlackoutPartitionsTheDisc) {
  const Graph g = complete_graph(100);
  const auto positions = grid_positions(100, 10.0);
  FaultPlan plan;
  plan.blackouts.push_back({{0.0, 0.0}, 25.0, 5, 10});
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  // Before the window: everything up.
  EXPECT_EQ(injector.live_graph(g, positions, 4).edge_count(),
            g.edge_count());
  // Inside: every node within 25 of the origin is cut off.
  const Graph& live = injector.live_graph(g, positions, 5);
  for (NodeId v = 0; v < 100; ++v) {
    const bool in_disc = plan.blackouts[0].covers(positions[v]);
    EXPECT_EQ(injector.down(v), in_disc);
    EXPECT_EQ(live.out_neighbors(v).empty(), in_disc);
  }
  // After: full recovery.
  EXPECT_EQ(injector.live_graph(g, positions, 15).edge_count(),
            g.edge_count());
}

TEST(FaultInjectorTest, BlackoutsNeedPositions) {
  const Graph g = complete_graph(10);
  FaultPlan plan;
  plan.blackouts.push_back({{0.0, 0.0}, 1e9, 0, 100});
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  EXPECT_EQ(injector.live_graph(g, {}, 0).edge_count(), g.edge_count())
      << "worlds without geometry ignore blackouts";
}

TEST(FaultInjectorTest, BurstOutagesMatchAnEquivalentFlapper) {
  const Graph g = complete_graph(25);
  FaultPlan plan;
  plan.burst_drop_probability = 0.3;
  plan.burst_persistence = 4;
  plan.weather_seed = 77;
  FaultInjector injector(plan, Rng(1).fork(0xFA11));
  // The injector's burst layer is a LinkFlapper seeded weather_seed^0xB125.
  const LinkFlapper reference(0.3, 4, 77 ^ 0xB125ULL);
  for (std::size_t step : {0u, 3u, 4u, 11u}) {
    const Graph& live = injector.live_graph(g, {}, step);
    for (NodeId u = 0; u < 25; ++u)
      for (NodeId v = 0; v < 25; ++v) {
        if (u == v) continue;
        ASSERT_EQ(live.has_edge(u, v), !reference.down(u, v, step))
            << u << "->" << v << " at step " << step;
      }
  }
}

TEST(FaultInjectorTest, EventDrawsAreSequentialAndSeedDeterministic) {
  FaultPlan plan;
  plan.agent_loss_probability = 0.5;
  plan.exchange_failure_probability = 0.5;
  FaultInjector a(plan, Rng(9).fork(0xFA11));
  FaultInjector b(plan, Rng(9).fork(0xFA11));
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.lose_in_transit(), b.lose_in_transit());
    ASSERT_EQ(a.corrupt_exchange(), b.corrupt_exchange());
    ASSERT_EQ(a.pick(17), b.pick(17));
  }
}

TEST(AgentWatchdogTest, ExpiresOnlyAfterTtlSinceLastBeat) {
  AgentWatchdog watchdog(10, 3);
  EXPECT_TRUE(watchdog.enabled());
  EXPECT_EQ(watchdog.slots(), 3u);
  EXPECT_FALSE(watchdog.expired(0, 10));
  EXPECT_TRUE(watchdog.expired(0, 11));
  watchdog.beat(0, 11);
  EXPECT_FALSE(watchdog.expired(0, 21));
  EXPECT_TRUE(watchdog.expired(0, 22));
  EXPECT_TRUE(watchdog.expired(1, 22)) << "slots age independently";
}

TEST(AgentWatchdogTest, DisabledWatchdogNeverExpires) {
  AgentWatchdog watchdog(0, 2);
  EXPECT_FALSE(watchdog.enabled());
  EXPECT_FALSE(watchdog.expired(0, 1000000));
}

}  // namespace
}  // namespace agentnet
