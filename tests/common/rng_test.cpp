#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace agentnet {
namespace {

TEST(SplitMix64Test, KnownSequenceFromZeroSeed) {
  // Reference values for splitmix64 with state starting at 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[i]);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(RngTest, UniformBoundOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIsApproximatelyUniform) {
  Rng rng(13);
  std::array<int, 10> counts{};
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) ++counts[rng.uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, samples / 10 - 600);
    EXPECT_LT(c, samples / 10 + 600);
  }
}

TEST(RngTest, UniformIntInclusiveEndpoints) {
  Rng rng(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRealMeanIsCentered) {
  Rng rng(23);
  double sum = 0.0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i) sum += rng.uniform_real(10.0, 20.0);
  EXPECT_NEAR(sum / samples, 15.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(29);
  int hits = 0;
  const int samples = 100000;
  for (int i = 0; i < samples; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / samples, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerateProbabilities) {
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(37);
  double sum = 0.0, sum2 = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    const double x = rng.normal(5.0, 2.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / samples;
  const double var = sum2 / samples - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(41);
  double sum = 0.0;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / samples, 2.0, 0.05);
}

TEST(RngTest, PoissonZeroMeanDrawsNothing) {
  Rng a(5), b(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.poisson(0.0), 0u);
  // A zero-rate draw must consume no randomness, so downstream draws stay
  // aligned with an Rng that never saw the call.
  EXPECT_EQ(a(), b());
}

TEST(RngTest, PoissonMomentsMatchSmallMean) {
  Rng rng(43);
  const int samples = 50000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < samples; ++i) {
    const double x = static_cast<double>(rng.poisson(3.0));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / samples;
  EXPECT_NEAR(mean, 3.0, 0.05);
  // For Poisson, variance == mean.
  EXPECT_NEAR(sum2 / samples - mean * mean, 3.0, 0.15);
}

TEST(RngTest, PoissonMeanMatchesLargeChunkedMean) {
  // Means above the chunk size exercise the chunked Knuth path (a sum of
  // independent Poissons is Poisson in the summed mean).
  Rng rng(47);
  const int samples = 20000;
  double sum = 0.0;
  for (int i = 0; i < samples; ++i)
    sum += static_cast<double>(rng.poisson(40.0));
  EXPECT_NEAR(sum / samples, 40.0, 0.3);
}

TEST(RngTest, PoissonDeterministicForSameSeed) {
  Rng a(53), b(53);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(a.poisson(1.7), b.poisson(1.7));
}

TEST(RngTest, ForkStreamsAreIndependent) {
  Rng parent(43);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ShuffleVisitsManyOrders) {
  Rng rng(53);
  std::set<std::vector<int>> orders;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int> v{1, 2, 3, 4};
    rng.shuffle(std::span<int>(v));
    orders.insert(v);
  }
  // 4! = 24 permutations; 200 trials should see most of them.
  EXPECT_GT(orders.size(), 20u);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(59);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.sample_indices(50, 12);
    ASSERT_EQ(sample.size(), 12u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 12u);
    for (auto idx : sample) EXPECT_LT(idx, 50u);
  }
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(61);
  auto sample = rng.sample_indices(8, 8);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, SampleIndicesZero) {
  Rng rng(67);
  EXPECT_TRUE(rng.sample_indices(5, 0).empty());
}

TEST(RngTest, PickReturnsContainedElement) {
  Rng rng(71);
  const std::vector<int> items{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int v = rng.pick(std::span<const int>(items));
    EXPECT_TRUE(v == 10 || v == 20 || v == 30);
  }
}

}  // namespace
}  // namespace agentnet
