#include <cstdlib>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/log.hpp"

namespace agentnet {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsWarn) {
  // The library must not chatter by default.
  LogLevelGuard guard;
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LogTest, SetAndGetRoundTrip) {
  LogLevelGuard guard;
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    set_log_level(level);
    EXPECT_EQ(log_level(), level);
  }
}

TEST(LogTest, StreamingMacroCompilesAndRuns) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // Must be safe to call with arbitrary streamed types even when disabled.
  AGENTNET_DEBUG() << "value " << 42 << " and " << 3.14;
  AGENTNET_INFO() << "info";
  AGENTNET_WARN() << "warn";
  AGENTNET_ERROR() << "error";
}

TEST(LogTest, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("4"), LogLevel::kOff);
  EXPECT_THROW(parse_log_level("verbose"), ConfigError);
  EXPECT_THROW(parse_log_level("5"), ConfigError);
  EXPECT_THROW(parse_log_level(""), ConfigError);
}

TEST(LogTest, EnvLogLevelReadsVariable) {
  ASSERT_EQ(setenv("AGENTNET_LOG_LEVEL", "debug", 1), 0);
  EXPECT_EQ(env_log_level(LogLevel::kWarn), LogLevel::kDebug);
  ASSERT_EQ(setenv("AGENTNET_LOG_LEVEL", "nonsense", 1), 0);
  EXPECT_THROW(env_log_level(LogLevel::kWarn), ConfigError);
  unsetenv("AGENTNET_LOG_LEVEL");
  EXPECT_EQ(env_log_level(LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogTest, OffSuppressesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  // log_message must be a no-op (nothing observable to assert beyond "does
  // not crash"; the behaviour contract is covered by code review of the
  // level check, this guards the call path).
  log_message(LogLevel::kError, "should be suppressed");
}

TEST(ErrorTest, HierarchyIsCatchable) {
  EXPECT_THROW(throw ConfigError("x"), Error);
  EXPECT_THROW(throw StateError("y"), Error);
  EXPECT_THROW(throw Error("z"), std::runtime_error);
}

TEST(ErrorTest, WhatCarriesMessage) {
  const ConfigError e("knob out of range");
  EXPECT_STREQ(e.what(), "knob out of range");
}

TEST(ErrorTest, RequireMacroThrowsWithContext) {
  try {
    AGENTNET_REQUIRE(1 == 2, "one is not two");
    FAIL() << "must have thrown";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not two"),
              std::string::npos);
  }
}

TEST(ErrorTest, RequirePassesSilently) {
  EXPECT_NO_THROW(AGENTNET_REQUIRE(2 + 2 == 4, "arithmetic works"));
}

TEST(ErrorTest, AssertDeath) {
  // AGENTNET_ASSERT aborts: verify through a death test.
  EXPECT_DEATH({ AGENTNET_ASSERT(false); }, "assertion failed");
  EXPECT_DEATH({ AGENTNET_ASSERT_MSG(false, "with context"); },
               "with context");
}

}  // namespace
}  // namespace agentnet
