#include "common/compare.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace agentnet {
namespace {

RunningStats sample(Rng& rng, double mean, double sd, int n) {
  RunningStats s;
  for (int i = 0; i < n; ++i) s.add(rng.normal(mean, sd));
  return s;
}

TEST(NormalCdfTest, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-3);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-3);
  EXPECT_NEAR(normal_cdf(5.0), 1.0, 1e-6);
}

TEST(CompareTest, RejectsTinySamples) {
  RunningStats a, b;
  a.add(1.0);
  b.add(2.0);
  b.add(3.0);
  EXPECT_THROW(compare_samples(a, b), ConfigError);
}

TEST(CompareTest, ClearlySeparatedSamplesAreSignificant) {
  Rng rng(1);
  const auto a = sample(rng, 10.0, 1.0, 30);
  const auto b = sample(rng, 13.0, 1.0, 30);
  const auto cmp = compare_samples(a, b);
  EXPECT_LT(cmp.difference, 0.0 + -2.0);  // mean_a - mean_b ≈ -3
  EXPECT_TRUE(cmp.significant());
  EXPECT_LT(cmp.p_value, 1e-6);
  EXPECT_LT(cmp.effect_size, -2.0);
}

TEST(CompareTest, IdenticalDistributionsUsuallyNotSignificant) {
  Rng rng(2);
  int significant = 0;
  for (int trial = 0; trial < 100; ++trial) {
    const auto a = sample(rng, 5.0, 2.0, 25);
    const auto b = sample(rng, 5.0, 2.0, 25);
    if (compare_samples(a, b).significant()) ++significant;
  }
  // 5% nominal false-positive rate; allow generous slack.
  EXPECT_LT(significant, 15);
}

TEST(CompareTest, SymmetryOfDirection) {
  Rng rng(3);
  const auto a = sample(rng, 1.0, 0.5, 20);
  const auto b = sample(rng, 2.0, 0.5, 20);
  const auto ab = compare_samples(a, b);
  const auto ba = compare_samples(b, a);
  EXPECT_NEAR(ab.difference, -ba.difference, 1e-12);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.effect_size, -ba.effect_size, 1e-12);
}

TEST(CompareTest, DegenerateZeroVariance) {
  RunningStats a, b;
  for (int i = 0; i < 5; ++i) {
    a.add(4.0);
    b.add(4.0);
  }
  const auto same = compare_samples(a, b);
  EXPECT_DOUBLE_EQ(same.p_value, 1.0);
  RunningStats c;
  for (int i = 0; i < 5; ++i) c.add(9.0);
  const auto diff = compare_samples(a, c);
  EXPECT_DOUBLE_EQ(diff.p_value, 0.0);
  EXPECT_TRUE(diff.significant());
}

TEST(CompareTest, WelchHandlesUnequalVariances) {
  Rng rng(4);
  const auto tight = sample(rng, 10.0, 0.1, 40);
  const auto loose = sample(rng, 10.0, 5.0, 10);
  const auto cmp = compare_samples(tight, loose);
  // df should be pulled toward the small/noisy sample, far below n-2.
  EXPECT_LT(cmp.degrees_of_freedom, 12.0);
  EXPECT_GT(cmp.degrees_of_freedom, 5.0);
}

TEST(CompareTest, PowerGrowsWithSampleSize) {
  Rng rng(5);
  const auto a_small = sample(rng, 10.0, 2.0, 6);
  const auto b_small = sample(rng, 11.0, 2.0, 6);
  const auto a_big = sample(rng, 10.0, 2.0, 200);
  const auto b_big = sample(rng, 11.0, 2.0, 200);
  EXPECT_LT(compare_samples(a_big, b_big).p_value,
            compare_samples(a_small, b_small).p_value);
}

}  // namespace
}  // namespace agentnet
