#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace agentnet {
namespace {

TEST(RunningStatsTest, EmptyState) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSmallSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 → 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsConcatenation) {
  Rng rng(1);
  RunningStats left, right, all;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 1.5);
    left.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(-1.0, 0.5);
    right.add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptyIsNoop) {
  RunningStats s, empty;
  s.add(1.0);
  s.add(2.0);
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(ConfidenceTest, ZeroForTinySamples) {
  RunningStats s;
  EXPECT_EQ(confidence_halfwidth(s), 0.0);
  s.add(1.0);
  EXPECT_EQ(confidence_halfwidth(s), 0.0);
}

TEST(ConfidenceTest, KnownTwoSampleValue) {
  RunningStats s;
  s.add(0.0);
  s.add(2.0);
  // mean 1, sd sqrt(2), se 1; df=1 → t95 = 12.706.
  EXPECT_NEAR(confidence_halfwidth(s, 0.95), 12.706, 1e-9);
  EXPECT_NEAR(confidence_halfwidth(s, 0.90), 6.314, 1e-9);
  EXPECT_NEAR(confidence_halfwidth(s, 0.99), 63.657, 1e-9);
}

TEST(ConfidenceTest, ShrinksWithSampleSize) {
  Rng rng(2);
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(rng.normal());
  for (int i = 0; i < 1000; ++i) large.add(rng.normal());
  EXPECT_LT(confidence_halfwidth(large), confidence_halfwidth(small));
}

TEST(QuantileTest, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, LinearInterpolation) {
  // Sorted: 10, 20, 30, 40. q=0.25 → position 0.75 → 17.5.
  EXPECT_DOUBLE_EQ(quantile({40.0, 10.0, 30.0, 20.0}, 0.25), 17.5);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.3), 7.0);
}

TEST(QuantileTest, RejectsEmptyAndBadQ) {
  EXPECT_THROW(quantile({}, 0.5), ConfigError);
  EXPECT_THROW(quantile({1.0}, -0.1), ConfigError);
  EXPECT_THROW(quantile({1.0}, 1.1), ConfigError);
}

TEST(SeriesAccumulatorTest, MeanOfTwoSeries) {
  SeriesAccumulator acc;
  acc.add({1.0, 2.0, 3.0});
  acc.add({3.0, 4.0, 5.0});
  EXPECT_EQ(acc.runs(), 2u);
  EXPECT_EQ(acc.length(), 3u);
  const auto mean = acc.mean();
  EXPECT_DOUBLE_EQ(mean[0], 2.0);
  EXPECT_DOUBLE_EQ(mean[1], 3.0);
  EXPECT_DOUBLE_EQ(mean[2], 4.0);
}

TEST(SeriesAccumulatorTest, MinMaxEnvelope) {
  SeriesAccumulator acc;
  acc.add({1.0, 5.0});
  acc.add({2.0, 3.0});
  EXPECT_DOUBLE_EQ(acc.min()[0], 1.0);
  EXPECT_DOUBLE_EQ(acc.max()[0], 2.0);
  EXPECT_DOUBLE_EQ(acc.min()[1], 3.0);
  EXPECT_DOUBLE_EQ(acc.max()[1], 5.0);
}

TEST(SeriesAccumulatorTest, RejectsLengthMismatch) {
  SeriesAccumulator acc;
  acc.add({1.0, 2.0});
  EXPECT_THROW(acc.add({1.0}), ConfigError);
}

TEST(SeriesAccumulatorTest, PerStepStatsAccessible) {
  SeriesAccumulator acc;
  acc.add({1.0});
  acc.add({3.0});
  EXPECT_EQ(acc.at(0).count(), 2u);
  EXPECT_DOUBLE_EQ(acc.at(0).mean(), 2.0);
}

}  // namespace
}  // namespace agentnet
