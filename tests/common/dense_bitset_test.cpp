#include "common/dense_bitset.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace agentnet {
namespace {

TEST(DenseBitsetTest, StartsClear) {
  DenseBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DenseBitsetTest, SetAndTest) {
  DenseBitset b(100);
  EXPECT_TRUE(b.set(0));
  EXPECT_TRUE(b.set(63));
  EXPECT_TRUE(b.set(64));
  EXPECT_TRUE(b.set(99));
  EXPECT_EQ(b.count(), 4u);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
}

TEST(DenseBitsetTest, DoubleSetReturnsFalse) {
  DenseBitset b(10);
  EXPECT_TRUE(b.set(5));
  EXPECT_FALSE(b.set(5));
  EXPECT_EQ(b.count(), 1u);
}

TEST(DenseBitsetTest, ResetClearsAndAdjustsCount) {
  DenseBitset b(10);
  b.set(3);
  b.set(7);
  b.reset(3);
  EXPECT_FALSE(b.test(3));
  EXPECT_EQ(b.count(), 1u);
  b.reset(3);  // idempotent
  EXPECT_EQ(b.count(), 1u);
}

TEST(DenseBitsetTest, MergeCountsNewBits) {
  DenseBitset a(200), b(200);
  a.set(1);
  a.set(100);
  b.set(100);
  b.set(150);
  EXPECT_EQ(a.merge(b), 1u);  // only 150 is new
  EXPECT_EQ(a.count(), 3u);
  EXPECT_TRUE(a.test(150));
}

TEST(DenseBitsetTest, MergeSizeMismatchThrows) {
  DenseBitset a(10), b(11);
  EXPECT_THROW(a.merge(b), ConfigError);
}

TEST(DenseBitsetTest, IntersectionCount) {
  DenseBitset a(300), b(300);
  for (std::size_t i = 0; i < 300; i += 3) a.set(i);
  for (std::size_t i = 0; i < 300; i += 5) b.set(i);
  // multiples of 15 under 300: 0,15,...,285 → 20 values.
  EXPECT_EQ(a.intersection_count(b), 20u);
}

TEST(DenseBitsetTest, ClearResets) {
  DenseBitset b(64);
  for (std::size_t i = 0; i < 64; ++i) b.set(i);
  b.clear();
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 64; ++i) EXPECT_FALSE(b.test(i));
}

TEST(DenseBitsetTest, CountTracksRandomOperations) {
  Rng rng(9);
  DenseBitset b(512);
  std::vector<bool> model(512, false);
  for (int op = 0; op < 5000; ++op) {
    const std::size_t i = rng.index(512);
    if (rng.bernoulli(0.6)) {
      b.set(i);
      model[i] = true;
    } else {
      b.reset(i);
      model[i] = false;
    }
  }
  std::size_t expected = 0;
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(b.test(i), model[i]);
    if (model[i]) ++expected;
  }
  EXPECT_EQ(b.count(), expected);
}

TEST(DenseBitsetTest, EqualityComparesContents) {
  DenseBitset a(20), b(20);
  EXPECT_EQ(a, b);
  a.set(3);
  EXPECT_NE(a, b);
  b.set(3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace agentnet
