#include "common/options.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace agentnet {
namespace {

TEST(OptionsTest, ParsesKeyValuePairs) {
  auto opts = Options::parse({"nodes=300", "policy=random"});
  EXPECT_EQ(opts.get_int("nodes", 0), 300);
  EXPECT_EQ(opts.get_string("policy", ""), "random");
}

TEST(OptionsTest, ArgvOverloadSkipsProgramName) {
  const char* argv[] = {"prog", "runs=4"};
  auto opts = Options::parse(2, argv);
  EXPECT_EQ(opts.get_int("runs", 0), 4);
}

TEST(OptionsTest, FallbacksWhenAbsent) {
  auto opts = Options::parse({});
  EXPECT_EQ(opts.get_int("nodes", 42), 42);
  EXPECT_EQ(opts.get_string("policy", "x"), "x");
  EXPECT_DOUBLE_EQ(opts.get_double("p", 0.5), 0.5);
  EXPECT_TRUE(opts.get_bool("flag", true));
}

TEST(OptionsTest, BareTokenIsTrueFlag) {
  auto opts = Options::parse({"verbose"});
  EXPECT_TRUE(opts.get_bool("verbose", false));
}

TEST(OptionsTest, BoolFormsAccepted) {
  auto opts = Options::parse({"a=YES", "b=off", "c=1", "d=False"});
  EXPECT_TRUE(opts.get_bool("a", false));
  EXPECT_FALSE(opts.get_bool("b", true));
  EXPECT_TRUE(opts.get_bool("c", false));
  EXPECT_FALSE(opts.get_bool("d", true));
}

TEST(OptionsTest, EmptyValueAllowed) {
  auto opts = Options::parse({"csv="});
  EXPECT_EQ(opts.get_string("csv", "x"), "");
}

TEST(OptionsTest, HasDoesNotMarkQueried) {
  auto opts = Options::parse({"nodes=10"});
  EXPECT_TRUE(opts.has("nodes"));
  EXPECT_EQ(opts.unrecognized().size(), 1u);
}

TEST(OptionsTest, RejectsBadNumbers) {
  auto opts = Options::parse({"n=12x", "d=zz", "b=maybe"});
  EXPECT_THROW(opts.get_int("n", 0), ConfigError);
  EXPECT_THROW(opts.get_double("d", 0.0), ConfigError);
  EXPECT_THROW(opts.get_bool("b", false), ConfigError);
}

TEST(OptionsTest, RejectsDuplicateKey) {
  EXPECT_THROW(Options::parse({"a=1", "a=2"}), ConfigError);
}

TEST(OptionsTest, RejectsEmptyKey) {
  EXPECT_THROW(Options::parse({"=v"}), ConfigError);
}

TEST(OptionsTest, UnrecognizedListsOnlyUnqueried) {
  auto opts = Options::parse({"a=1", "b=2", "c=3"});
  opts.get_int("a", 0);
  opts.get_int("c", 0);
  const auto stray = opts.unrecognized();
  ASSERT_EQ(stray.size(), 1u);
  EXPECT_EQ(stray[0], "b");
}

TEST(OptionsTest, FinishThrowsOnStrayKeys) {
  auto opts = Options::parse({"tyop=1"});
  EXPECT_THROW(opts.finish(), ConfigError);
}

TEST(OptionsTest, FinishPassesWhenAllQueried) {
  auto opts = Options::parse({"a=1"});
  opts.get_int("a", 0);
  EXPECT_NO_THROW(opts.finish());
}

}  // namespace
}  // namespace agentnet
