#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "common/error.hpp"

namespace agentnet {
namespace {

TEST(TableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(Table({}), ConfigError);
}

TEST(TableTest, RejectsWrongRowWidth) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("x")}), ConfigError);
}

TEST(TableTest, StoresCells) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("beta"), std::int64_t{7}});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(std::get<std::string>(t.at(0, 0)), "alpha");
  EXPECT_DOUBLE_EQ(std::get<double>(t.at(0, 1)), 1.5);
  EXPECT_EQ(std::get<std::int64_t>(t.at(1, 1)), 7);
}

TEST(TableTest, PrettyPrintAlignsColumns) {
  Table t({"x", "longheader"});
  t.add_row({std::int64_t{1}, std::int64_t{2}});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("longheader"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // One header line, one rule line, one data line.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TableTest, DoublePrecisionRespected) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({3.14159});
  EXPECT_NE(t.to_string().find("3.1"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.14"), std::string::npos);
}

TEST(TableTest, CsvBasic) {
  Table t({"a", "b"});
  t.add_row({std::string("x"), std::int64_t{2}});
  EXPECT_EQ(t.to_csv(), "a,b\nx,2\n");
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({std::string("he said \"hi\", twice")});
  EXPECT_EQ(t.to_csv(), "a\n\"he said \"\"hi\"\", twice\"\n");
}

TEST(TableTest, CsvEscapesNewlines) {
  Table t({"a"});
  t.add_row({std::string("two\nlines")});
  EXPECT_EQ(t.to_csv(), "a\n\"two\nlines\"\n");
}

TEST(TableTest, PrecisionBoundsEnforced) {
  Table t({"a"});
  EXPECT_THROW(t.set_precision(-1), ConfigError);
  EXPECT_THROW(t.set_precision(13), ConfigError);
}

}  // namespace
}  // namespace agentnet
