#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/error.hpp"

namespace agentnet {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const auto& n : names_) ::unsetenv(n.c_str());
  }
  std::vector<std::string> names_;
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  ::unsetenv("AGENTNET_TEST_UNSET");
  EXPECT_FALSE(env_string("AGENTNET_TEST_UNSET").has_value());
}

TEST_F(EnvTest, StringEmptyIsNullopt) {
  set("AGENTNET_TEST_EMPTY", "");
  EXPECT_FALSE(env_string("AGENTNET_TEST_EMPTY").has_value());
}

TEST_F(EnvTest, StringRoundTrip) {
  set("AGENTNET_TEST_STR", "hello");
  EXPECT_EQ(env_string("AGENTNET_TEST_STR").value(), "hello");
}

TEST_F(EnvTest, IntFallback) {
  ::unsetenv("AGENTNET_TEST_INT");
  EXPECT_EQ(env_int("AGENTNET_TEST_INT", 42), 42);
}

TEST_F(EnvTest, IntParses) {
  set("AGENTNET_TEST_INT", "-17");
  EXPECT_EQ(env_int("AGENTNET_TEST_INT", 0), -17);
}

TEST_F(EnvTest, IntRejectsGarbage) {
  set("AGENTNET_TEST_INT", "12abc");
  EXPECT_THROW(env_int("AGENTNET_TEST_INT", 0), ConfigError);
}

TEST_F(EnvTest, DoubleParses) {
  set("AGENTNET_TEST_DBL", "2.5");
  EXPECT_DOUBLE_EQ(env_double("AGENTNET_TEST_DBL", 0.0), 2.5);
}

TEST_F(EnvTest, DoubleRejectsGarbage) {
  set("AGENTNET_TEST_DBL", "x");
  EXPECT_THROW(env_double("AGENTNET_TEST_DBL", 0.0), ConfigError);
}

TEST_F(EnvTest, BoolTruthyForms) {
  for (const char* v : {"1", "true", "YES", "On"}) {
    set("AGENTNET_TEST_BOOL", v);
    EXPECT_TRUE(env_bool("AGENTNET_TEST_BOOL", false)) << v;
  }
}

TEST_F(EnvTest, BoolFalsyForms) {
  for (const char* v : {"0", "false", "NO", "Off"}) {
    set("AGENTNET_TEST_BOOL", v);
    EXPECT_FALSE(env_bool("AGENTNET_TEST_BOOL", true)) << v;
  }
}

TEST_F(EnvTest, BoolRejectsGarbage) {
  set("AGENTNET_TEST_BOOL", "maybe");
  EXPECT_THROW(env_bool("AGENTNET_TEST_BOOL", false), ConfigError);
}

TEST_F(EnvTest, BenchRunsDefault) {
  ::unsetenv("AGENTNET_RUNS");
  EXPECT_EQ(bench_runs(10), 10);
}

TEST_F(EnvTest, BenchRunsOverride) {
  set("AGENTNET_RUNS", "40");
  EXPECT_EQ(bench_runs(10), 40);
}

TEST_F(EnvTest, BenchRunsRejectsOutOfRange) {
  set("AGENTNET_RUNS", "0");
  EXPECT_THROW(bench_runs(10), ConfigError);
}

TEST_F(EnvTest, BenchFullDefaultsOff) {
  ::unsetenv("AGENTNET_FULL");
  EXPECT_FALSE(bench_full());
}

}  // namespace
}  // namespace agentnet
