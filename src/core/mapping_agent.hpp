// Mapping agents (section II of the paper): mobile programs that wander an
// unknown network and cooperatively build its map.
#pragma once

#include "common/rng.hpp"
#include "core/map_knowledge.hpp"
#include "core/selection.hpp"
#include "core/stigmergy.hpp"
#include "net/graph.hpp"

namespace agentnet {

enum class MappingPolicy {
  kRandom,             ///< Uniform random out-neighbour each step.
  kConscientious,      ///< Least-recently-visited by first-hand knowledge.
  kSuperConscientious  ///< Least-recently-visited by both hands.
};

struct MappingAgentConfig {
  MappingPolicy policy = MappingPolicy::kConscientious;
  StigmergyMode stigmergy = StigmergyMode::kOff;
  /// Minar et al.'s dispersal fix: with this probability the agent ignores
  /// its policy for one step and moves to a uniformly random neighbour
  /// ("N. Minar et al. add randomness to the decision that the
  /// super-conscientious agents make in order to disperse their agents").
  /// The extD bench compares this fix against the paper's stigmergy.
  double randomness = 0.0;
};

const char* to_string(MappingPolicy policy);

class MappingAgent {
 public:
  MappingAgent(int id, NodeId start, std::size_t node_count,
               MappingAgentConfig config, Rng rng);

  int id() const { return id_; }
  NodeId location() const { return location_; }
  const MappingAgentConfig& config() const { return config_; }
  const MapKnowledge& knowledge() const { return knowledge_; }
  bool stigmergic() const {
    return config_.stigmergy != StigmergyMode::kOff;
  }

  /// Phase 1: learn all out-edges of the current node (first-hand).
  void sense(const Graph& graph, std::size_t now);

  /// Phase 2: direct communication — absorb a co-located group's pooled
  /// knowledge into the second-hand store.
  void learn_union(const DenseBitset& edges,
                   std::span<const std::int64_t> visits);

  /// Resilience policy: forget hearsay older than `ttl` steps (epoch
  /// rotation; see MapKnowledge::expire_second_hand).
  void expire_second_hand(std::size_t now, std::size_t ttl) {
    knowledge_.expire_second_hand(now, ttl);
  }

  /// Phase 3: choose the next node. Returns the current location when the
  /// node has no out-neighbours (the agent waits).
  NodeId decide(const Graph& graph, const StigmergyBoard& board,
                std::size_t now);

  /// Phase 4 + move. Stamps nothing by itself — the task stamps footprints
  /// so decision order and board writes stay in one place.
  void move_to(NodeId target);

  /// Serialized agent size if it migrated now: its knowledge plus a fixed
  /// 64-byte code/descriptor stub. Tasks meter migration traffic with this.
  std::size_t state_size_bytes() const {
    return 64 + knowledge_.serialized_size_bytes();
  }

  /// Test hook: direct peer-to-peer learning.
  void learn_from(const MappingAgent& peer) {
    knowledge_.learn_from(peer.knowledge_);
  }

  /// Checkpoint support: id, location, knowledge and RNG; the config is
  /// reconstructed from the task config on resume.
  void save_state(snapshot::ByteWriter& w) const {
    w.scalar(id_);
    w.scalar(location_);
    knowledge_.save_state(w);
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    id_ = r.scalar<int>();
    location_ = r.scalar<NodeId>();
    knowledge_.load_state(r);
    rng_.load_state(r);
  }

 private:
  int id_;
  NodeId location_;
  MappingAgentConfig config_;
  MapKnowledge knowledge_;
  Rng rng_;
};

}  // namespace agentnet
