#include "core/stigmergy.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

StigmergyBoard::StigmergyBoard(std::size_t node_count, std::size_t horizon,
                               std::size_t capacity_per_node)
    : boards_(node_count), horizon_(horizon), capacity_(capacity_per_node) {
  AGENTNET_REQUIRE(capacity_per_node > 0,
                   "stigmergy capacity per node must be > 0");
}

void StigmergyBoard::stamp(NodeId at, NodeId target, std::size_t now) {
  AGENTNET_ASSERT(at < boards_.size());
  AGENTNET_COUNT(kStigmergyStamps);
  AGENTNET_OBS_EVENT(kStamp, now, -1, static_cast<std::int64_t>(at),
                     static_cast<std::int64_t>(target));
  auto& board = boards_[at];
  // Refresh an existing footprint for the same target.
  for (auto& fp : board) {
    if (fp.target == target) {
      fp.step = now;
      return;
    }
  }
  // Reuse an expired slot, else evict the oldest when at capacity.
  for (auto& fp : board) {
    if (expired(fp, now)) {
      fp = {target, now};
      return;
    }
  }
  if (board.size() < capacity_) {
    board.push_back({target, now});
    return;
  }
  auto oldest = std::min_element(
      board.begin(), board.end(),
      [](const Footprint& a, const Footprint& b) { return a.step < b.step; });
  *oldest = {target, now};
}

bool StigmergyBoard::marked(NodeId at, NodeId target, std::size_t now) const {
  AGENTNET_ASSERT(at < boards_.size());
  for (const auto& fp : boards_[at])
    if (fp.target == target && !expired(fp, now)) return true;
  return false;
}

std::size_t StigmergyBoard::footprint_count(NodeId at, std::size_t now) const {
  AGENTNET_ASSERT(at < boards_.size());
  return static_cast<std::size_t>(
      std::count_if(boards_[at].begin(), boards_[at].end(),
                    [&](const Footprint& fp) { return !expired(fp, now); }));
}

void StigmergyBoard::clear() {
  for (auto& b : boards_) b.clear();
}

}  // namespace agentnet
