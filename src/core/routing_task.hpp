// The dynamic-routing scenario and task (paper §III).
//
// Scenario: 250 nodes in an arena, 12 stationary high-capability gateways,
// half the nodes mobile with per-node random velocities, mobile nodes on
// battery (radio range decays), links requiring mutual reach. The node
// placement and the full movement script are generated once per scenario
// seed and replayed identically across parameter settings, matching the
// paper's "all of our experiments are conducted with the same initial node
// placement and node movements".
//
// Task: agents wander, maintain routing tables; performance is the average
// fraction of nodes holding a valid gateway route over the converged window
// (steps 150–300 in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/agent_parallel.hpp"
#include "common/rng.hpp"
#include "core/routing_agent.hpp"
#include "core/stigmergy.hpp"
#include "fault/fault_plan.hpp"
#include "routing/connectivity.hpp"
#include "routing/routing_table.hpp"
#include "sim/world.hpp"
#include "traffic/traffic.hpp"

namespace agentnet {

namespace snapshot {
class RunCheckpointPort;
}

/// Where the stationary, high-capability gateways sit.
enum class GatewayPlacement {
  kRandom,  ///< Uniformly among the nodes (the default assumption).
  kSpread,  ///< Nearest nodes to the cells of a √k x √k grid — planned
            ///< deployment with even coverage.
  kPerimeter  ///< Nearest nodes to evenly spaced points on the arena
              ///< boundary — uplinks at the edge of the incident area.
};

const char* to_string(GatewayPlacement placement);

struct RoutingScenarioParams {
  std::size_t node_count = 250;
  std::size_t gateway_count = 12;
  GatewayPlacement gateway_placement = GatewayPlacement::kRandom;
  /// Fraction of all nodes that move (gateways never do).
  double mobile_fraction = 0.5;
  Aabb bounds{{0.0, 0.0}, {1000.0, 1000.0}};
  /// Ordinary-node base range, uniformly spread ±range_spread.
  double node_range = 110.0;
  double range_spread = 0.15;
  /// Gateways are "high capability": base range multiplier.
  double gateway_range_boost = 1.5;
  RandomDirectionMobility::Params movement{0.5, 3.0, 0.05};
  /// Mobile nodes are battery powered; range decays with charge. The drain
  /// is mild (≈30% charge lost over the 300-step run) so the system still
  /// converges to a quasi-stationary mean, as the paper reports, while the
  /// degradation is visible in the oracle trace.
  BatteryParams battery{1.0, 0.001};
  RangeScaling scaling{0.6};
  LinkPolicy policy = LinkPolicy::kSymmetricAnd;
  /// Length of the recorded movement script.
  std::size_t trace_steps = 300;
};

/// A fully materialised scenario: layout, masks and the movement script.
/// Immutable; make_world() stamps out fresh, identical worlds from it.
class RoutingScenario {
 public:
  RoutingScenario(RoutingScenarioParams params, std::uint64_t seed);

  /// Reassembles a scenario from serialized parts (see io/scenario_io.hpp).
  /// Validates sizes and masks.
  RoutingScenario(RoutingScenarioParams params,
                  std::vector<Vec2> initial_positions,
                  std::vector<double> base_ranges,
                  std::vector<bool> is_gateway, std::vector<bool> mobile,
                  TraceMobility trace);

  const RoutingScenarioParams& params() const { return params_; }
  const std::vector<bool>& is_gateway() const { return is_gateway_; }
  const std::vector<bool>& mobile() const { return mobile_; }
  std::size_t node_count() const { return params_.node_count; }
  const std::vector<Vec2>& initial_positions() const {
    return initial_positions_;
  }
  const std::vector<double>& base_ranges() const { return base_ranges_; }
  const TraceMobility& trace() const { return trace_; }

  /// A fresh world at step 0 replaying the recorded movement script.
  World make_world() const;

 private:
  void validate() const;
  RoutingScenarioParams params_;
  std::vector<Vec2> initial_positions_;
  std::vector<double> base_ranges_;
  std::vector<bool> is_gateway_;
  std::vector<bool> mobile_;
  TraceMobility trace_;
};

struct RoutingTaskConfig {
  int population = 100;
  RoutingAgentConfig agent;
  /// Heterogeneous team support: when non-empty, this roster overrides
  /// `population`/`agent` and each entry becomes one agent. Note that the
  /// meeting exchange (Phase 3) runs for a group when *any* member
  /// communicates; per-agent `communicate` only controls who shares.
  std::vector<RoutingAgentConfig> team;
  std::size_t steps = 300;
  /// Converged-window start for the mean-connectivity aggregate.
  std::size_t measure_from = 150;
  RoutePolicy route_policy{30};
  /// Footprints expire quickly — the network is mobile and old marks lie.
  std::size_t stigmergy_horizon = 20;
  /// Footprints retained per node; 1 is the paper's "last path" rule.
  std::size_t stigmergy_capacity = 1;
  /// Also record the any-path oracle upper bound per step.
  bool record_oracle = false;
  /// When set, packet traffic is injected over the converged window
  /// (steps ≥ measure_from) and its delivery statistics reported.
  std::optional<TrafficConfig> traffic;
  /// The unified fault model: crash windows, blackouts, burst outages,
  /// transit loss, exchange corruption and the resilience policies (see
  /// fault/fault_plan.hpp and docs/ROBUSTNESS.md).
  FaultPlan faults;
  /// Compatibility: the pre-FaultPlan failure knobs. When > 0 they
  /// override the corresponding plan fields and produce bit-identical
  /// results to the original implementation. Prefer `faults`.
  double agent_loss_probability = 0.0;
  double gateway_respawn_probability = 0.0;
  /// Intra-run agent parallelism (AGENTNET_AGENT_THREADS): arrive, group
  /// exchanges, per-root connectivity walks and — for non-stigmergic
  /// teams — decide fan over the shared agent pool. Bit-identical at
  /// every thread count; threads = 1 (the default) is the exact serial
  /// path.
  AgentParallelConfig agent_parallel = AgentParallelConfig::from_env();
  /// Checkpoint/restore handle for this run (nullptr = disabled). Owned by
  /// the caller; see snapshot/snapshot.hpp and docs/ROBUSTNESS.md.
  snapshot::RunCheckpointPort* checkpoint = nullptr;
};

struct RoutingTaskResult {
  /// Fraction of nodes with a valid gateway route, per step.
  std::vector<double> connectivity;
  /// Oracle upper bound per step (empty unless requested).
  std::vector<double> oracle;
  /// Mean / stddev of connectivity over [measure_from, steps).
  double mean_connectivity = 0.0;
  double stddev_connectivity = 0.0;
  /// Present when the task injected traffic.
  std::optional<TrafficStats> traffic_stats;
  /// Total migration traffic: Σ over actual moves of the moving agent's
  /// serialized size (the paper's overhead measure).
  std::size_t migration_bytes = 0;
  /// Failure-injection bookkeeping.
  std::size_t agents_lost = 0;
  std::size_t agents_respawned = 0;
  /// Population still alive when the run ended.
  std::size_t final_population = 0;
};

RoutingTaskResult run_routing_task(const RoutingScenario& scenario,
                                   const RoutingTaskConfig& config, Rng rng);

}  // namespace agentnet
