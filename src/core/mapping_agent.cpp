#include "core/mapping_agent.hpp"

namespace agentnet {

const char* to_string(MappingPolicy policy) {
  switch (policy) {
    case MappingPolicy::kRandom:
      return "random";
    case MappingPolicy::kConscientious:
      return "conscientious";
    case MappingPolicy::kSuperConscientious:
      return "super-conscientious";
  }
  return "?";
}

MappingAgent::MappingAgent(int id, NodeId start, std::size_t node_count,
                           MappingAgentConfig config, Rng rng)
    : id_(id),
      location_(start),
      config_(config),
      knowledge_(node_count),
      rng_(rng) {
  AGENTNET_REQUIRE(start < node_count, "agent start node out of range");
  AGENTNET_REQUIRE(config.randomness >= 0.0 && config.randomness <= 1.0,
                   "randomness must be a probability");
}

void MappingAgent::sense(const Graph& graph, std::size_t now) {
  knowledge_.observe_node(location_, graph.out_neighbors(location_), now);
}

void MappingAgent::learn_union(const DenseBitset& edges,
                               std::span<const std::int64_t> visits) {
  knowledge_.learn_union(edges, visits);
}

NodeId MappingAgent::decide(const Graph& graph, const StigmergyBoard& board,
                            std::size_t now) {
  const auto neighbors = graph.out_neighbors(location_);
  if (neighbors.empty()) return location_;
  if (config_.randomness > 0.0 && rng_.bernoulli(config_.randomness))
    return neighbors[rng_.index(neighbors.size())];
  switch (config_.policy) {
    case MappingPolicy::kRandom:
      return select_target(
          neighbors, [](NodeId) { return std::int64_t{0}; },
          config_.stigmergy, board, location_, now, rng_);
    case MappingPolicy::kConscientious:
      return select_target(
          neighbors,
          [&](NodeId v) { return knowledge_.last_visit_first_hand(v); },
          config_.stigmergy, board, location_, now, rng_,
          TieBreak::kSharedHash);
    case MappingPolicy::kSuperConscientious:
      return select_target(
          neighbors, [&](NodeId v) { return knowledge_.last_visit_any(v); },
          config_.stigmergy, board, location_, now, rng_,
          TieBreak::kSharedHash);
  }
  return location_;
}

void MappingAgent::move_to(NodeId target) {
  AGENTNET_ASSERT(target < knowledge_.node_count());
  location_ = target;
}

}  // namespace agentnet
