// An agent's model of the network topology, split into first-hand knowledge
// (edges the agent observed itself, nodes it visited) and second-hand
// knowledge (learned from peers during direct communication) — the paper
// keeps the two stores separate because movement policies differ in which
// they may consult: conscientious agents use first-hand only,
// super-conscientious agents use both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/dense_bitset.hpp"
#include "core/selection.hpp"
#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

class MapKnowledge {
 public:
  explicit MapKnowledge(std::size_t node_count);

  std::size_t node_count() const { return node_count_; }

  /// First-hand observation: the agent stands on `node` at time `now` and
  /// sees all of its out-edges.
  void observe_node(NodeId node, std::span<const NodeId> out_neighbors,
                    std::size_t now);

  /// Direct communication: absorbs everything `peer` knows (both hands)
  /// into this agent's *second-hand* store.
  void learn_from(const MapKnowledge& peer);

  /// Bulk variant of learn_from used for co-located groups: absorbs a
  /// pooled edge set and pooled visit times (see MappingTask). `edges` must
  /// be node_count² bits; `visits` node_count entries.
  void learn_union(const DenseBitset& edges,
                   std::span<const std::int64_t> visits);

  /// Resilience policy (fault subsystem): forgets second-hand knowledge
  /// older than `ttl` steps. Implemented as epoch rotation — hearsay
  /// survives the rotation that closes the epoch it was learned in and
  /// drops at the next one, so its effective age at expiry is in
  /// [ttl, 2·ttl). First-hand observations never expire. Call once per
  /// step with the current time; `ttl` 0 is a no-op, and the first call
  /// lazily allocates the epoch bookkeeping (fault-free agents pay no
  /// memory for this).
  void expire_second_hand(std::size_t now, std::size_t ttl);

  /// The agent's full (first ∪ second hand) edge set; used to pool group
  /// knowledge without exposing internals for mutation.
  const DenseBitset& combined_edges() const { return combined_; }
  /// Last-visit times over both hands, indexed by node.
  std::span<const std::int64_t> any_visits() const { return any_visit_; }

  bool knows_edge_first_hand(NodeId u, NodeId v) const;
  /// Either hand.
  bool knows_edge(NodeId u, NodeId v) const;

  std::size_t first_hand_edge_count() const { return first_hand_.count(); }
  /// Size of (first ∪ second) hand edge sets — the agent's full map.
  std::size_t known_edge_count() const { return combined_.count(); }

  /// |known ∩ truth| — for dynamic topologies where stale knowledge may
  /// reference edges that no longer exist.
  std::size_t known_edge_count_in(const Graph& truth) const;
  /// CSR variant — identical count over the frozen snapshot.
  std::size_t known_edge_count_in(const CsrView& truth) const;

  std::int64_t last_visit_first_hand(NodeId node) const;
  /// Includes visit times learned from peers (what super-conscientious
  /// movement consults).
  std::int64_t last_visit_any(NodeId node) const;
  bool visited_first_hand(NodeId node) const {
    return last_visit_first_hand(node) != kNeverVisited;
  }

  /// Fraction of `truth_edge_count` edges known; truth must be the count of
  /// the graph the observations came from.
  double completeness(std::size_t truth_edge_count) const;

  /// Serialized size of this knowledge store if the agent migrated now:
  /// 8 bytes per known edge plus 12 per node with a known visit time. The
  /// paper cares about agent overhead ("due to cost of trans[portation an]
  /// agent should be small in size"); tasks meter migration traffic with
  /// this.
  std::size_t serialized_size_bytes() const;

  /// Checkpoint support: both hands, the combined set, visit times and the
  /// expiry-epoch bookkeeping.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(node_count_);
    first_hand_.save_state(w);
    second_hand_.save_state(w);
    combined_.save_state(w);
    w.pod_vec(first_hand_visit_);
    w.pod_vec(any_visit_);
    w.boolean(expiry_enabled_);
    w.size(last_rotation_);
    second_recent_.save_state(w);
    w.pod_vec(learned_visit_prev_);
    w.pod_vec(learned_visit_recent_);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.size();
    AGENTNET_REQUIRE(n == node_count_,
                     "snapshot: map knowledge node count mismatch");
    first_hand_.load_state(r);
    second_hand_.load_state(r);
    combined_.load_state(r);
    r.pod_vec(first_hand_visit_);
    r.pod_vec(any_visit_);
    expiry_enabled_ = r.boolean();
    last_rotation_ = r.size();
    second_recent_.load_state(r);
    r.pod_vec(learned_visit_prev_);
    r.pod_vec(learned_visit_recent_);
  }

 private:
  std::size_t bit_index(NodeId u, NodeId v) const {
    AGENTNET_ASSERT(u < node_count_ && v < node_count_);
    return static_cast<std::size_t>(u) * node_count_ + v;
  }

  std::size_t node_count_;
  DenseBitset first_hand_;
  DenseBitset second_hand_;
  DenseBitset combined_;  // first ∪ second, maintained incrementally
  std::vector<std::int64_t> first_hand_visit_;
  std::vector<std::int64_t> any_visit_;
  // Expiry epoch bookkeeping, allocated on the first expire_second_hand
  // call: hearsay learned in the current epoch, and learned-visit times
  // split by epoch so any_visit_ can be rebuilt at rotation.
  bool expiry_enabled_ = false;
  std::size_t last_rotation_ = 0;
  DenseBitset second_recent_;
  std::vector<std::int64_t> learned_visit_prev_;
  std::vector<std::int64_t> learned_visit_recent_;
};

}  // namespace agentnet
