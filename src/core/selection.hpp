// Shared movement-selection rule for all agent types.
//
// Every policy in the paper reduces to "pick uniformly among the neighbours
// minimising some key", with stigmergy demoting footprinted targets:
//   random:              key ≡ 0 (all tie)
//   conscientious:       key = last first-hand visit time (never = -∞)
//   super-conscientious: key = last visit time over both hands
//   oldest-node:         key = last visit in bounded history (forgot = -∞)
//
// Stigmergy precedence is configurable:
//   kFilterFirst — unmarked neighbours are preferred before the key is
//     applied (the paper's description: the agent "did not use its last
//     path; it chose instead another one").
//   kTieBreak — the key is applied first; footprints only split ties.
// The ablation bench (extB) compares the two.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "core/stigmergy.hpp"
#include "net/graph.hpp"
#include "obs/obs.hpp"

namespace agentnet {

enum class StigmergyMode { kOff, kFilterFirst, kTieBreak };

/// Selection-key sentinel for "never visited / forgotten": smaller than any
/// simulation step, so unexplored neighbours always win a minimisation.
inline constexpr std::int64_t kNeverVisited = -1;

/// How ties among equally-preferred targets are resolved.
///
/// Knowledge-driven agents (conscientious, super-conscientious,
/// oldest-node) are deterministic programs: two agents holding identical
/// knowledge at the same node make the *same* choice — the paper's
/// explanation for both the Fig. 5 crossover and the Fig. 11 visiting
/// penalty ("chances are that the next target node that they choose will
/// be identical due to their using the same information"). kSharedHash
/// models this faithfully: the pick is a pseudo-random function of
/// (node, step, tie set), so it is unbiased across the network yet
/// identical for identical deciders. Random-walk agents use genuinely
/// independent per-agent randomness (kRandom) — that is their definition.
enum class TieBreak {
  kSharedHash,  ///< Deterministic in (node, step, tie set); unbiased.
  kRandom       ///< Uniform over the minimisers, per-agent randomness.
};

namespace detail {
inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace detail

/// Picks a movement target among `neighbors` (minimisers of `key`, with
/// footprint demotion per `mode`, ties per `tie_break`). Returns
/// kInvalidNode when `neighbors` is empty. `key` maps NodeId → int64
/// (lower = preferred).
template <typename KeyFn>
NodeId select_target(std::span<const NodeId> neighbors, KeyFn&& key,
                     StigmergyMode mode, const StigmergyBoard& board,
                     NodeId at, std::size_t now, Rng& rng,
                     TieBreak tie_break = TieBreak::kRandom) {
  if (neighbors.empty()) return kInvalidNode;

  // Small scratch buffers; neighbour lists are short (mean degree < 10).
  std::vector<NodeId> pool(neighbors.begin(), neighbors.end());

  if (mode == StigmergyMode::kFilterFirst) {
    std::vector<NodeId> unmarked;
    unmarked.reserve(pool.size());
    for (NodeId v : pool)
      if (!board.marked(at, v, now)) unmarked.push_back(v);
    if (!unmarked.empty()) {
      if (unmarked.size() < pool.size()) AGENTNET_COUNT(kStigmergyAvoidances);
      pool = std::move(unmarked);
    }
  }

  std::vector<NodeId> best;
  std::int64_t best_key = 0;
  // The shared-hash tie-break folds the FULL decision context — every
  // candidate and its key — into the hash. Two agents therefore pick the
  // same target only when their decision-relevant knowledge is identical
  // (the paper's chasing mechanism); agents that merely share a tie set
  // while disagreeing elsewhere stay decorrelated.
  std::uint64_t context_hash = 0x9e3779b97f4a7c15ULL;
  context_hash = detail::mix64(context_hash ^ at);
  for (NodeId v : pool) {
    const std::int64_t k = key(v);
    context_hash = detail::mix64(context_hash ^ v);
    context_hash = detail::mix64(context_hash ^ static_cast<std::uint64_t>(k));
    if (best.empty() || k < best_key) {
      best_key = k;
      best.clear();
      best.push_back(v);
    } else if (k == best_key) {
      best.push_back(v);
    }
  }

  if (mode == StigmergyMode::kTieBreak && best.size() > 1) {
    std::vector<NodeId> unmarked;
    unmarked.reserve(best.size());
    for (NodeId v : best)
      if (!board.marked(at, v, now)) unmarked.push_back(v);
    if (!unmarked.empty()) {
      if (unmarked.size() < best.size()) AGENTNET_COUNT(kStigmergyAvoidances);
      best = std::move(unmarked);
    }
  }

  if (tie_break == TieBreak::kSharedHash) {
    const std::uint64_t h = detail::mix64(context_hash ^ now);
    const auto idx = static_cast<std::size_t>(
        (static_cast<__uint128_t>(h) * best.size()) >> 64);
    return best[idx];
  }
  return best[rng.index(best.size())];
}

}  // namespace agentnet
