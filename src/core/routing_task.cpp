#include "core/routing_task.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

#include "common/stats.hpp"
#include "core/colocation.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

const char* to_string(GatewayPlacement placement) {
  switch (placement) {
    case GatewayPlacement::kRandom:
      return "random";
    case GatewayPlacement::kSpread:
      return "spread";
    case GatewayPlacement::kPerimeter:
      return "perimeter";
  }
  return "?";
}

namespace {

/// Marks the node nearest each anchor as a gateway (skipping nodes already
/// chosen), so placement strategies reduce to choosing anchor points.
std::vector<bool> gateways_near_anchors(const std::vector<Vec2>& positions,
                                        const std::vector<Vec2>& anchors) {
  std::vector<bool> mask(positions.size(), false);
  for (const Vec2& anchor : anchors) {
    std::size_t best = positions.size();
    double best_d2 = 0.0;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (mask[i]) continue;
      const double d2 = distance2(anchor, positions[i]);
      if (best == positions.size() || d2 < best_d2) {
        best = i;
        best_d2 = d2;
      }
    }
    AGENTNET_ASSERT(best < positions.size());
    mask[best] = true;
  }
  return mask;
}

std::vector<bool> place_gateways(const RoutingScenarioParams& params,
                                 const std::vector<Vec2>& positions,
                                 Rng& rng) {
  const std::size_t n = positions.size();
  const std::size_t k = params.gateway_count;
  switch (params.gateway_placement) {
    case GatewayPlacement::kRandom: {
      std::vector<bool> mask(n, false);
      for (std::size_t idx : rng.sample_indices(n, k)) mask[idx] = true;
      return mask;
    }
    case GatewayPlacement::kSpread: {
      // Anchors at the centres of the first k cells of the tightest grid
      // that holds them (row-major).
      const auto cols = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(k))));
      const std::size_t rows = (k + cols - 1) / cols;
      std::vector<Vec2> anchors;
      for (std::size_t g = 0; g < k; ++g) {
        const std::size_t cx = g % cols;
        const std::size_t cy = g / cols;
        anchors.push_back(
            {params.bounds.lo.x +
                 (static_cast<double>(cx) + 0.5) * params.bounds.width() /
                     static_cast<double>(cols),
             params.bounds.lo.y +
                 (static_cast<double>(cy) + 0.5) * params.bounds.height() /
                     static_cast<double>(rows)});
      }
      return gateways_near_anchors(positions, anchors);
    }
    case GatewayPlacement::kPerimeter: {
      // Evenly spaced points along the boundary rectangle.
      const double perimeter =
          2.0 * (params.bounds.width() + params.bounds.height());
      std::vector<Vec2> anchors;
      for (std::size_t g = 0; g < k; ++g) {
        double s = perimeter * static_cast<double>(g) /
                   static_cast<double>(k);
        Vec2 p = params.bounds.lo;
        if (s < params.bounds.width()) {
          p = {params.bounds.lo.x + s, params.bounds.lo.y};
        } else if ((s -= params.bounds.width()) < params.bounds.height()) {
          p = {params.bounds.hi.x, params.bounds.lo.y + s};
        } else if ((s -= params.bounds.height()) < params.bounds.width()) {
          p = {params.bounds.hi.x - s, params.bounds.hi.y};
        } else {
          s -= params.bounds.width();
          p = {params.bounds.lo.x, params.bounds.hi.y - s};
        }
        anchors.push_back(p);
      }
      return gateways_near_anchors(positions, anchors);
    }
  }
  AGENTNET_ASSERT_MSG(false, "unknown gateway placement");
  return {};
}

}  // namespace

RoutingScenario::RoutingScenario(RoutingScenarioParams params,
                                 std::uint64_t seed)
    : params_(params) {
  AGENTNET_REQUIRE(params.node_count >= 2, "need at least two nodes");
  AGENTNET_REQUIRE(params.gateway_count >= 1 &&
                       params.gateway_count < params.node_count,
                   "gateway count must be in [1, node_count)");
  AGENTNET_REQUIRE(params.mobile_fraction >= 0.0 &&
                       params.mobile_fraction <= 1.0,
                   "mobile fraction must be in [0,1]");
  const std::size_t n = params.node_count;
  Rng rng(seed);

  initial_positions_ = random_positions(n, params.bounds, rng);

  // Gateways per the placement strategy; mobile nodes a random subset of
  // the rest.
  is_gateway_ = place_gateways(params, initial_positions_, rng);
  std::vector<std::size_t> ordinary;
  for (std::size_t i = 0; i < n; ++i)
    if (!is_gateway_[i]) ordinary.push_back(i);
  const auto mobile_count = static_cast<std::size_t>(
      params.mobile_fraction * static_cast<double>(n) + 0.5);
  AGENTNET_REQUIRE(mobile_count <= ordinary.size(),
                   "mobile fraction leaves too few stationary slots for "
                   "gateways");
  mobile_.assign(n, false);
  for (std::size_t k : rng.sample_indices(ordinary.size(), mobile_count))
    mobile_[ordinary[k]] = true;

  base_ranges_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double spread = rng.uniform_real(1.0 - params.range_spread,
                                           1.0 + params.range_spread);
    base_ranges_[i] = params.node_range * spread *
                      (is_gateway_[i] ? params.gateway_range_boost : 1.0);
  }

  RandomDirectionMobility recorder(params.bounds, mobile_, params.movement,
                                   rng.fork(0xD0));
  trace_ = TraceMobility::record(recorder, initial_positions_,
                                 params.trace_steps);
  validate();
}

RoutingScenario::RoutingScenario(RoutingScenarioParams params,
                                 std::vector<Vec2> initial_positions,
                                 std::vector<double> base_ranges,
                                 std::vector<bool> is_gateway,
                                 std::vector<bool> mobile,
                                 TraceMobility trace)
    : params_(params),
      initial_positions_(std::move(initial_positions)),
      base_ranges_(std::move(base_ranges)),
      is_gateway_(std::move(is_gateway)),
      mobile_(std::move(mobile)),
      trace_(std::move(trace)) {
  validate();
}

void RoutingScenario::validate() const {
  const std::size_t n = params_.node_count;
  AGENTNET_REQUIRE(initial_positions_.size() == n &&
                       base_ranges_.size() == n &&
                       is_gateway_.size() == n && mobile_.size() == n,
                   "scenario part sizes must match node_count");
  std::size_t gateways = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_gateway_[i]) {
      ++gateways;
      AGENTNET_REQUIRE(!mobile_[i], "gateways must be stationary");
    }
    AGENTNET_REQUIRE(base_ranges_[i] > 0.0, "ranges must be positive");
  }
  AGENTNET_REQUIRE(gateways == params_.gateway_count,
                   "gateway mask does not match gateway_count");
}

World RoutingScenario::make_world() const {
  auto playback = std::make_unique<TraceMobility>(trace_);
  playback->reset();
  // Mobile nodes run on battery; stationary nodes (gateways included) are
  // mains powered.
  BatteryBank batteries(params_.node_count, mobile_, params_.battery);
  return World(params_.bounds, initial_positions_,
               RadioModel(base_ranges_, params_.scaling),
               std::move(batteries), std::move(playback), params_.policy);
}

namespace {

/// One planned meeting: the serial plan pass fixes membership, venue and
/// the corruption draw (group-order RNG); pooling and adoption then run
/// group-parallel and the commit pass replays counters/events in group
/// order.
struct MeetingPlan {
  std::vector<std::size_t> talkers;
  NodeId venue = 0;
  bool corrupted = false;
};

}  // namespace

RoutingTaskResult run_routing_task(const RoutingScenario& scenario,
                                   const RoutingTaskConfig& config, Rng rng) {
  AGENTNET_REQUIRE(config.population >= 1, "population must be >= 1");
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  const std::size_t n = world.node_count();
  const auto& is_gateway = scenario.is_gateway();

  RoutingTables tables(n, config.route_policy);
  StigmergyBoard board(n, config.stigmergy_horizon,
                       config.stigmergy_capacity);

  const std::vector<RoutingAgentConfig> roster =
      config.team.empty()
          ? std::vector<RoutingAgentConfig>(
                static_cast<std::size_t>(config.population), config.agent)
          : config.team;
  std::vector<RoutingAgent> agents;
  agents.reserve(roster.size());
  for (std::size_t a = 0; a < roster.size(); ++a) {
    const NodeId start = static_cast<NodeId>(rng.index(n));
    agents.emplace_back(static_cast<int>(a), start, roster[a],
                        rng.fork(static_cast<std::uint64_t>(a) + 1));
    AGENTNET_OBS_EVENT(kSpawn, 0, static_cast<std::int64_t>(a),
                       static_cast<std::int64_t>(start));
  }
  const bool any_communicates = [&] {
    for (const auto& cfg : roster)
      if (cfg.communicate) return true;
    return false;
  }();

  AGENTNET_REQUIRE(config.agent_loss_probability >= 0.0 &&
                       config.agent_loss_probability <= 1.0,
                   "agent loss probability must be in [0,1]");
  AGENTNET_REQUIRE(config.gateway_respawn_probability >= 0.0 &&
                       config.gateway_respawn_probability <= 1.0,
                   "respawn probability must be in [0,1]");
  // Compatibility: the pre-FaultPlan knobs fold into the plan (and win
  // when set). They feed the same forked stream in the same per-step draw
  // order as the original implementation, so legacy configurations get
  // bit-identical results through the unified path.
  FaultPlan plan = config.faults;
  if (config.agent_loss_probability > 0.0)
    plan.agent_loss_probability = config.agent_loss_probability;
  if (config.gateway_respawn_probability > 0.0)
    plan.gateway_respawn_probability = config.gateway_respawn_probability;
  plan.validate();

  RoutingTaskResult result;
  result.connectivity.reserve(config.steps);
  std::vector<std::size_t> decide_order;
  // Meeting-exchange scratch, reused across meetings and steps (the
  // parallel exchange path builds per-worker scratch instead).
  FlatMap<NodeId, std::size_t> pooled;
  // The intra-run agent engine. Recovery paths can change the live mix of
  // configs (watchdog uses the roster, gateway respawn the homogeneous
  // template), so the stigmergy gate for the decide phase checks the live
  // team each step.
  const AgentParallel par(config.agent_parallel);
  std::vector<MeetingPlan> meetings;

  std::optional<TrafficSimulator> traffic;
  if (config.traffic)
    traffic.emplace(n, is_gateway, *config.traffic, rng.fork(0x7AFF1C));

  // The fault stream is forked here unconditionally (it predates the
  // FaultPlan), which is what keeps fault-free configurations on their
  // exact historical sequences.
  FaultInjector injector(plan, rng.fork(0xFA11));
  // Epoch-keyed measurement caches: when neither the edge set (world epoch)
  // nor the tables changed since the last step, the walk is skipped and the
  // stored result re-emitted bit-identically.
  ConnectivityCache conn_cache;
  OracleConnectivityCache oracle_cache;
  AgentWatchdog watchdog(plan.watchdog_ttl, roster.size());
  // Roster slot of each live agent (parallel to `agents`); every recovery
  // path fills a vacant slot, so occupancy stays a bijection.
  std::vector<std::size_t> slot_of(agents.size());
  std::iota(slot_of.begin(), slot_of.end(), 0);
  const auto compact_agents = [&](const std::vector<char>& dead) {
    std::size_t write = 0;
    for (std::size_t idx = 0; idx < agents.size(); ++idx)
      if (!dead[idx]) {
        if (write != idx) {
          agents[write] = std::move(agents[idx]);
          slot_of[write] = slot_of[idx];
        }
        ++write;
      }
    agents.erase(agents.begin() + static_cast<std::ptrdiff_t>(write),
                 agents.end());
    slot_of.resize(write);
  };
  std::vector<NodeId> gateway_nodes;
  for (NodeId v = 0; v < n; ++v)
    if (is_gateway[v]) gateway_nodes.push_back(v);
  // Respawned replacements use the homogeneous template (config.agent);
  // the population target is the initial team size.
  const std::size_t target_population = roster.size();
  int next_agent_id = static_cast<int>(target_population);

  // Checkpoint/restore: everything the loop evolves, in a fixed order.
  // Config-derived data (scenario, roster, gateway masks) is rebuilt by the
  // setup above and not carried; each agent's config IS carried because a
  // live agent's template depends on its recovery history, not its slot.
  const auto save_run = [&](snapshot::ByteWriter& w) {
    rng.save_state(w);
    world.save_state(w);
    tables.save_state(w);
    board.save_state(w);
    injector.save_state(w);
    conn_cache.save_state(w);
    oracle_cache.save_state(w);
    watchdog.save_state(w);
    w.pod_vec(slot_of);
    w.scalar(next_agent_id);
    w.size(agents.size());
    for (const RoutingAgent& agent : agents) {
      const RoutingAgentConfig& ac = agent.config();
      w.scalar(ac.policy);
      w.size(ac.history_size);
      w.boolean(ac.communicate);
      w.scalar(ac.stigmergy);
      agent.save_state(w);
    }
    w.boolean(traffic.has_value());
    if (traffic) traffic->save_state(w);
    w.pod_vec(result.connectivity);
    w.pod_vec(result.oracle);
    w.size(result.migration_bytes);
    w.size(result.agents_lost);
    w.size(result.agents_respawned);
  };
  const auto load_run = [&](snapshot::ByteReader& r) {
    rng.load_state(r);
    world.load_state(r);
    tables.load_state(r);
    board.load_state(r);
    injector.load_state(r);
    conn_cache.load_state(r);
    oracle_cache.load_state(r);
    watchdog.load_state(r);
    r.pod_vec(slot_of);
    next_agent_id = r.scalar<int>();
    const std::size_t live = r.counted(8);
    agents.clear();
    agents.reserve(live);
    for (std::size_t i = 0; i < live; ++i) {
      RoutingAgentConfig ac;
      ac.policy = r.scalar<RoutingPolicy>();
      AGENTNET_REQUIRE(ac.policy <= RoutingPolicy::kOldestNode,
                       "snapshot: bad routing policy");
      ac.history_size = r.size();
      ac.communicate = r.boolean();
      ac.stigmergy = r.scalar<StigmergyMode>();
      AGENTNET_REQUIRE(ac.stigmergy <= StigmergyMode::kTieBreak,
                       "snapshot: bad stigmergy mode");
      agents.emplace_back(0, NodeId{0}, ac, Rng(0));
      agents.back().load_state(r);
    }
    AGENTNET_REQUIRE(slot_of.size() == agents.size(),
                     "snapshot: roster slot map size mismatch");
    AGENTNET_REQUIRE(r.boolean() == traffic.has_value(),
                     "snapshot: traffic configuration mismatch");
    if (traffic) traffic->load_state(r);
    r.pod_vec(result.connectivity);
    r.pod_vec(result.oracle);
    result.migration_bytes = r.size();
    result.agents_lost = r.size();
    result.agents_respawned = r.size();
  };

  setup_phase.stop();
  std::size_t resume_at = 0;
  if (config.checkpoint && config.checkpoint->resuming())
    resume_at = config.checkpoint->restore(load_run);
  for (std::size_t t = resume_at; t < config.steps; ++t) {
    if (config.checkpoint && config.checkpoint->save_due(t))
      config.checkpoint->save(t, save_run);
    AGENTNET_OBS_PHASE(kStep);
    // Refresh the topology-fault mask for this step. Without topology
    // faults this returns immediately; with them it is cached, so the
    // decide phase below reuses the same mask.
    injector.live_graph(world, world.step());

    // Phase 0a: watchdog recovery — roster slots silent for more than the
    // TTL are declared dead; any agent still occupying one is scrapped
    // (it is wedged or stranded) and a replacement launches at a live
    // gateway. Skipped entirely when the watchdog is off.
    if (watchdog.enabled()) {
      constexpr std::size_t kNoAgent = static_cast<std::size_t>(-1);
      std::vector<std::size_t> slot_agent(roster.size(), kNoAgent);
      for (std::size_t i = 0; i < agents.size(); ++i)
        slot_agent[slot_of[i]] = i;
      std::vector<std::size_t> dead_slots;
      std::vector<char> scrapped(agents.size(), 0);
      bool any_scrapped = false;
      for (std::size_t slot = 0; slot < roster.size(); ++slot) {
        if (!watchdog.expired(slot, t)) continue;
        dead_slots.push_back(slot);
        const std::size_t idx = slot_agent[slot];
        if (idx != kNoAgent) {
          scrapped[idx] = 1;
          any_scrapped = true;
          ++result.agents_lost;
          AGENTNET_COUNT(kAgentsLost);
          AGENTNET_OBS_EVENT(kLost, t, agents[idx].id());
        }
      }
      if (any_scrapped) compact_agents(scrapped);
      if (!dead_slots.empty()) {
        std::vector<NodeId> live_gateways;
        for (NodeId gw : gateway_nodes)
          if (!injector.down(gw)) live_gateways.push_back(gw);
        for (std::size_t slot : dead_slots) {
          if (live_gateways.empty()) break;  // every gateway down: retry
          const NodeId at =
              live_gateways[injector.pick(live_gateways.size())];
          agents.emplace_back(
              next_agent_id, at, roster[slot],
              rng.fork(static_cast<std::uint64_t>(next_agent_id) + 1));
          slot_of.push_back(slot);
          watchdog.beat(slot, t);
          AGENTNET_COUNT(kWatchdogRespawns);
          AGENTNET_OBS_EVENT(kWatchdogRespawn, t, next_agent_id,
                             static_cast<std::int64_t>(at));
          ++next_agent_id;
          ++result.agents_respawned;
        }
      }
    }

    // Phase 0b: recovery — gateways (the nodes wired to the outside world)
    // launch replacement agents while the team is under strength. A
    // crashed gateway launches nothing.
    if (plan.gateway_respawn_probability > 0.0) {
      for (NodeId gw : gateway_nodes) {
        if (agents.size() >= target_population) break;
        if (injector.down(gw)) continue;
        if (injector.respawn_due()) {
          std::vector<char> occupied(roster.size(), 0);
          for (std::size_t s : slot_of) occupied[s] = 1;
          std::size_t vacant = 0;
          while (vacant < roster.size() && occupied[vacant]) ++vacant;
          AGENTNET_ASSERT(vacant < roster.size());
          agents.emplace_back(
              next_agent_id, gw, config.agent,
              rng.fork(static_cast<std::uint64_t>(next_agent_id) + 1));
          slot_of.push_back(vacant);
          watchdog.beat(vacant, t);
          AGENTNET_COUNT(kAgentsRespawned);
          AGENTNET_OBS_EVENT(kRespawn, t, next_agent_id,
                             static_cast<std::int64_t>(gw));
          ++next_agent_id;
          ++result.agents_respawned;
        }
      }
    }

    // Phase 1: arrival bookkeeping (history + gateway hint refresh).
    // Per-agent state only — the engine fans it across the pool.
    {
      AGENTNET_OBS_PHASE(kSense);
      par.for_each(agents.size(),
                   [&](std::size_t i) { agents[i].arrive(is_gateway, t); });
    }

    // Phase 2: decide on the live graph. Paper order: the movement decision
    // precedes the meeting exchange. Stigmergic agents stamp immediately so
    // later deciders this step disperse away from them.
    std::vector<NodeId> targets(agents.size());
    {
      AGENTNET_OBS_PHASE(kDecide);
      // The fault-masked view of this step's topology (cached above); a
      // crashed node has no out-links, so agents on it hold position.
      const Graph& live = injector.live_graph(world, world.step());
      decide_order.resize(agents.size());
      std::iota(decide_order.begin(), decide_order.end(), 0);
      rng.shuffle(std::span<std::size_t>(decide_order));
      // Non-stigmergic teams never read the board, so decisions depend
      // only on the frozen live graph and each agent's own forked RNG
      // stream — the engine fans them per agent (the shuffle above still
      // consumes the same run-RNG draws). Stigmergic teams keep the exact
      // serial order: same-step footprints are the dispersion mechanism.
      const bool any_stigmergic =
          std::any_of(agents.begin(), agents.end(),
                      [](const RoutingAgent& a) { return a.stigmergic(); });
      if (par.active() && !any_stigmergic) {
        par.for_each(agents.size(), [&](std::size_t i) {
          targets[i] = agents[i].decide(live, board, t);
        });
      } else {
        for (std::size_t idx : decide_order) {
          RoutingAgent& agent = agents[idx];
          const NodeId target = agent.decide(live, board, t);
          targets[idx] = target;
          if (agent.stigmergic() && target != agent.location())
            board.stamp(agent.location(), target, t);
        }
      }
    }

    // Phase 3: meetings — co-located *communicating* agents adopt the
    // group's best route and merge histories. Pool first (snapshot
    // semantics), then apply. Non-communicating agents in the group
    // neither share nor learn.
    if (any_communicates && agents.size() > 1) {
      AGENTNET_OBS_PHASE(kExchange);
      // Plan pass (serial): membership, venue, the crashed-host check and
      // the per-meeting corruption draw, in group order — the exact RNG
      // sequence of the historical single-pass loop (pooling draws
      // nothing).
      meetings.clear();
      {
        obs::ScopedPhase plan_phase(obs::Phase::kExchangePlan);
        for (const auto& group : colocated_groups(agents)) {
          MeetingPlan meeting;
          for (std::size_t idx : group)
            if (agents[idx].config().communicate)
              meeting.talkers.push_back(idx);
          if (meeting.talkers.size() < 2) continue;
          // A crashed host carries no meeting; a corrupted exchange is
          // drawn per meeting — the payload is discarded, nobody learns.
          meeting.venue = agents[meeting.talkers[0]].location();
          if (injector.down(meeting.venue)) continue;
          meeting.corrupted = plan.exchange_failure_probability > 0.0 &&
                              injector.corrupt_exchange();
          meetings.push_back(std::move(meeting));
        }
      }
      // Pool + adopt (group-parallel): meetings are disjoint, so each can
      // pick its best hint, pool histories and distribute to its own
      // members concurrently — per-worker scratch, no events, no RNG.
      const auto pool_meeting = [&](const MeetingPlan& meeting,
                                    FlatMap<NodeId, std::size_t>& scratch) {
        RoutingAgent::RouteHint best;  // invalid
        for (std::size_t idx : meeting.talkers)
          if (RoutingAgent::hint_better(agents[idx].hint(), best))
            best = agents[idx].hint();
        // Pool histories (max last-visit per node) before anyone mutates.
        scratch.clear();
        for (std::size_t idx : meeting.talkers) {
          for (const auto& [node, step] : agents[idx].history()) {
            auto it = scratch.find(node);
            if (it == scratch.end())
              scratch.emplace(node, step);
            else
              it->second = std::max(it->second, step);
          }
        }
        for (std::size_t idx : meeting.talkers)
          agents[idx].adopt(best, scratch);
      };
      if (par.active() && meetings.size() > 1) {
        par.for_each_scratch(
            meetings.size(), [] { return FlatMap<NodeId, std::size_t>(); },
            [&](std::size_t m, FlatMap<NodeId, std::size_t>& scratch) {
              if (!meetings[m].corrupted) pool_meeting(meetings[m], scratch);
            });
      } else {
        for (const MeetingPlan& meeting : meetings)
          if (!meeting.corrupted) pool_meeting(meeting, pooled);
      }
      // Commit pass (serial): counters and trace events replayed in group
      // order — the same per-meeting sequence the single-pass loop
      // emitted, so traces stay byte-identical at any thread count.
      {
        obs::ScopedPhase commit_phase(obs::Phase::kCommit);
        for (const MeetingPlan& meeting : meetings) {
          if (meeting.corrupted) {
            AGENTNET_COUNT(kExchangesCorrupted);
            AGENTNET_OBS_EVENT(
                kExchangeCorrupted, t, -1,
                static_cast<std::int64_t>(meeting.venue),
                static_cast<std::int64_t>(meeting.talkers.size()));
            continue;
          }
          AGENTNET_COUNT(kAgentMeetings);
          AGENTNET_OBS_EVENT(kMeet, t, -1,
                             static_cast<std::int64_t>(meeting.venue),
                             static_cast<std::int64_t>(meeting.talkers.size()));
          for (std::size_t idx : meeting.talkers) {
            AGENTNET_COUNT(kKnowledgeMerges);
            AGENTNET_OBS_EVENT(
                kMerge, t, agents[idx].id(),
                static_cast<std::int64_t>(agents[idx].location()));
          }
        }
      }
    }

    // Phase 4: move (the decision's link is still live — the world has not
    // advanced) and update the routing table of the node now occupied.
    // With failure injection, a migrating agent can be lost in transit —
    // it neither arrives nor installs, and its state is gone.
    std::vector<char> lost(agents.size(), 0);
    bool any_lost = false;
    {
      AGENTNET_OBS_PHASE(kMove);
      for (std::size_t idx = 0; idx < agents.size(); ++idx) {
        if (targets[idx] != agents[idx].location()) {
          if (plan.agent_loss_probability > 0.0 &&
              injector.lose_in_transit()) {
            lost[idx] = 1;
            any_lost = true;
            ++result.agents_lost;
            AGENTNET_COUNT(kAgentsLost);
            AGENTNET_OBS_EVENT(kLost, t, agents[idx].id());
            continue;
          }
          result.migration_bytes += agents[idx].state_size_bytes();
          watchdog.beat(slot_of[idx], t);
          AGENTNET_COUNT(kAgentHops);
          AGENTNET_OBS_EVENT(
              kMove, t, agents[idx].id(),
              static_cast<std::int64_t>(agents[idx].location()),
              static_cast<std::int64_t>(targets[idx]));
        }
        agents[idx].move_to(targets[idx]);
        // A crashed host accepts no route installs.
        if (!injector.down(agents[idx].location()) &&
            agents[idx].install(tables, is_gateway, t)) {
          AGENTNET_OBS_EVENT(
              kRouteUpdate, t, agents[idx].id(),
              static_cast<std::int64_t>(agents[idx].location()));
        }
      }
    }
    if (any_lost) compact_agents(lost);

    // Environment advances; connectivity is measured on the new topology,
    // so freshly installed routes immediately face link churn.
    world.advance();
    {
      AGENTNET_OBS_PHASE(kMeasure);
      const Graph& measured = injector.live_graph(world, world.step());
      // Resilience: age out routing entries whose next hop is currently
      // crashed — they cannot validate anyway, and clearing frees the
      // table slot for fresh offers instead of waiting out the freshness
      // window.
      if (plan.age_crashed_routes && plan.topology_faults()) {
        for (NodeId v = 0; v < n; ++v) {
          const RouteEntry& entry = tables.entry(v);
          if (entry.valid() && injector.down(entry.next_hop)) {
            tables.clear(v);
            AGENTNET_COUNT(kRoutesAged);
          }
        }
      }
      // Without topology faults `measured` IS world.graph(), so the frozen
      // CSR snapshot measures the same topology — bit-identically, since
      // neighbour order matches — over two flat arrays.
      result.connectivity.push_back(
          plan.topology_faults()
              ? measure_connectivity(measured, tables, is_gateway, 0, par)
                    .fraction()
              : conn_cache.measure(world, tables, is_gateway, 0, par)
                    .fraction());
      AGENTNET_OBS_GAUGE(kConnectivity, t, result.connectivity.back());
      if (config.record_oracle) {
        result.oracle.push_back(
            oracle_cache
                .measure(plan.topology_faults() ? kNoCacheEpoch
                                                : world.epoch(),
                         measured, is_gateway)
                .fraction());
        AGENTNET_OBS_GAUGE(kOracleConnectivity, t, result.oracle.back());
      }
      if (AGENTNET_OBS_METRICS_WANT(t) && plan.topology_faults())
        AGENTNET_OBS_GAUGE(kLiveFraction, t, injector.live_fraction(n));
      // Traffic flows over the converged window only, so delivery measures
      // the steady state rather than the cold start.
      if (traffic && t >= config.measure_from)
        traffic->step(measured, tables, t);
    }
    AGENTNET_OBS_METRICS_TICK(t);
  }
  if (traffic) {
    traffic->finish();
    result.traffic_stats = traffic->stats();
  }

  AGENTNET_OBS_PHASE(kSummarize);
  result.final_population = agents.size();
  RunningStats window;
  for (std::size_t t = config.measure_from; t < config.steps; ++t)
    window.add(result.connectivity[t]);
  result.mean_connectivity = window.mean();
  result.stddev_connectivity = window.stddev();
  return result;
}

}  // namespace agentnet
