#include "core/mapping_task.hpp"

#include <algorithm>
#include <numeric>
#include <optional>

#include "common/agent_parallel.hpp"
#include "common/dense_bitset.hpp"
#include "core/colocation.hpp"
#include "geom/spatial_grid.hpp"
#include "common/log.hpp"
#include "fault/fault_injector.hpp"
#include "fault/watchdog.hpp"
#include "obs/obs.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

namespace {

/// Union-find for radius-1 meetings: agents on the same node or on nodes
/// joined by a link (either direction carries the exchange) share a group,
/// transitively.
class AgentUnion {
 public:
  explicit AgentUnion(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Reused per-step storage for in_range_groups' geometric prefilter.
struct MeetingScratch {
  std::optional<SpatialGrid> grid;
  std::vector<Vec2> positions;       ///< Agent positions, index = agent idx.
  std::vector<std::size_t> nearby;   ///< Grid query output, ascending.
};

/// Per-worker pooling scratch for group-parallel exchanges (one per chunk
/// when the agent engine is active; the serial path reuses one instance).
struct ExchangeScratch {
  DenseBitset edges;
  std::vector<std::int64_t> visits;
};

/// One planned meeting: the serial plan pass fixes membership, venue and
/// the corruption draw (group-order RNG); pooling then runs group-parallel
/// and the commit pass replays counters/events in group order.
struct MeetingPlan {
  std::vector<std::size_t> talkers;
  NodeId venue = 0;
  bool corrupted = false;
};

std::vector<std::vector<std::size_t>> in_range_groups(
    const std::vector<MappingAgent>& agents, const Graph& graph,
    const World& world, MeetingScratch& scratch) {
  // CAUTION: the output group order depends on the exact unite(i, j) call
  // sequence (it decides which index ends up as each set's root), and the
  // exchange phase draws fault RNG per group in that order — so any
  // candidate filter must preserve the naive (i ascending, j > i ascending)
  // pair order exactly. The grid query returns ascending indices, and on
  // geometric worlds every relation-satisfying pair is within
  // max_base_range (effective ranges never exceed it, and fault masks only
  // remove edges), so the prefilter drops only pairs the naive loop would
  // have skipped anyway.
  AgentUnion uf(agents.size());
  if (world.geometric() && !agents.empty()) {
    const double radius = world.radio().max_base_range();
    if (!scratch.grid) scratch.grid.emplace(world.bounds(), radius);
    scratch.positions.resize(agents.size());
    for (std::size_t i = 0; i < agents.size(); ++i)
      scratch.positions[i] = world.positions()[agents[i].location()];
    scratch.grid->rebuild(scratch.positions);
    for (std::size_t i = 0; i < agents.size(); ++i) {
      const NodeId a = agents[i].location();
      scratch.grid->query(scratch.positions[i], radius, scratch.nearby);
      for (std::size_t j : scratch.nearby) {
        if (j <= i) continue;
        const NodeId b = agents[j].location();
        if (a == b || graph.has_edge(a, b) || graph.has_edge(b, a))
          uf.unite(i, j);
      }
    }
  } else {
    // fixed() worlds pin an abstract graph over synthetic geometry; no
    // distance bound relates edges to positions, so check every pair.
    for (std::size_t i = 0; i < agents.size(); ++i) {
      for (std::size_t j = i + 1; j < agents.size(); ++j) {
        const NodeId a = agents[i].location();
        const NodeId b = agents[j].location();
        if (a == b || graph.has_edge(a, b) || graph.has_edge(b, a))
          uf.unite(i, j);
      }
    }
  }
  std::vector<std::vector<std::size_t>> by_root(agents.size());
  for (std::size_t i = 0; i < agents.size(); ++i)
    by_root[uf.find(i)].push_back(i);
  std::vector<std::vector<std::size_t>> groups;
  for (auto& g : by_root)
    if (g.size() >= 2) groups.push_back(std::move(g));
  return groups;
}

}  // namespace

MappingTaskResult run_mapping_task(World& world,
                                   const MappingTaskConfig& config, Rng rng) {
  // Config-bounds validation, mirroring the routing task's discipline:
  // garbage is rejected up front instead of silently misbehaving.
  AGENTNET_REQUIRE(config.population >= 1, "population must be >= 1");
  AGENTNET_REQUIRE(config.agent.randomness >= 0.0 &&
                       config.agent.randomness <= 1.0,
                   "agent randomness must be in [0,1]");
  for (const MappingAgentConfig& member : config.team)
    AGENTNET_REQUIRE(member.randomness >= 0.0 && member.randomness <= 1.0,
                     "team member randomness must be in [0,1]");
  AGENTNET_REQUIRE(config.comm_radius <= 1, "comm_radius must be 0 or 1");
  AGENTNET_REQUIRE(config.stigmergy_capacity >= 1,
                   "stigmergy capacity must be >= 1");
  const FaultPlan& plan = config.faults;
  plan.validate();
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  const std::size_t n = world.node_count();
  MappingTaskResult result;
  result.truth_edges = config.truth_edges_override
                           ? *config.truth_edges_override
                           : world.graph().edge_count();
  AGENTNET_REQUIRE(result.truth_edges > 0, "mapping an edgeless network");

  const std::vector<MappingAgentConfig> roster =
      config.team.empty()
          ? std::vector<MappingAgentConfig>(
                static_cast<std::size_t>(config.population), config.agent)
          : config.team;
  std::vector<MappingAgent> agents;
  agents.reserve(roster.size());
  for (std::size_t a = 0; a < roster.size(); ++a) {
    const NodeId start = static_cast<NodeId>(rng.index(n));
    agents.emplace_back(static_cast<int>(a), start, n, roster[a],
                        rng.fork(static_cast<std::uint64_t>(a) + 1));
    AGENTNET_OBS_EVENT(kSpawn, 0, static_cast<std::int64_t>(a),
                       static_cast<std::int64_t>(start));
  }

  StigmergyBoard board(n, config.stigmergy_horizon,
                       config.stigmergy_capacity);
  // The intra-run agent engine. Every recovery path draws its config from
  // `roster`, so whether any agent is stigmergic is a run constant — the
  // decide phase needs it: stigmergic agents must see footprints stamped
  // earlier in the same step, which forces the serial decide order.
  const AgentParallel par(config.agent_parallel);
  const bool stigmergic_roster =
      std::any_of(roster.begin(), roster.end(),
                  [](const MappingAgentConfig& member) {
                    return member.stigmergy != StigmergyMode::kOff;
                  });
  ExchangeScratch pooled{DenseBitset(n * n),
                         std::vector<std::int64_t>(n)};
  std::vector<MeetingPlan> meetings;
  std::vector<double> fractions;
  // The monitoring entity's collected map (completeness is tracked against
  // the step-0 truth; pair it with advance_world only for rough readings).
  DenseBitset monitor_map(config.monitor_node ? n * n : 0);
  if (config.monitor_node)
    AGENTNET_REQUIRE(*config.monitor_node < n,
                     "monitor node out of range");
  std::vector<std::size_t> decide_order(agents.size());
  std::iota(decide_order.begin(), decide_order.end(), 0);
  MeetingScratch meeting_scratch;

  // The fault injector exists only when the plan does something: an inert
  // plan must not even fork the fault stream, because the fork advances
  // the parent RNG and would perturb every fault-free sequence downstream.
  std::optional<FaultInjector> injector;
  if (plan.any()) {
    Rng fault_stream = rng.fork(0xFA11);
    injector.emplace(plan, fault_stream);
  }
  AgentWatchdog watchdog(plan.watchdog_ttl, roster.size());
  // Roster slot of each live agent (parallel to `agents`).
  std::vector<std::size_t> slot_of(agents.size());
  std::iota(slot_of.begin(), slot_of.end(), 0);
  int next_agent_id = static_cast<int>(roster.size());
  const auto compact_agents = [&](const std::vector<char>& dead) {
    std::size_t write = 0;
    for (std::size_t idx = 0; idx < agents.size(); ++idx)
      if (!dead[idx]) {
        if (write != idx) {
          agents[write] = std::move(agents[idx]);
          slot_of[write] = slot_of[idx];
        }
        ++write;
      }
    agents.erase(agents.begin() + static_cast<std::ptrdiff_t>(write),
                 agents.end());
    slot_of.resize(write);
  };

  // Knowledge is measured against the step-0 truth; with advance_world the
  // per-step truth is used instead (stale knowledge stops counting).
  const auto knowledge_fraction = [&](const MappingAgent& agent) {
    // With an explicit truth override (flapping-link worlds) the agent is
    // graded against the underlying full topology: every edge exists and
    // is eventually observable, so plain completeness applies.
    if (!config.advance_world || config.truth_edges_override)
      return agent.knowledge().completeness(result.truth_edges);
    // The CSR snapshot of world.graph() — same edges, flat iteration.
    const CsrView& truth = world.csr();
    if (truth.edge_count() == 0) return 1.0;
    return static_cast<double>(
               agent.knowledge().known_edge_count_in(truth)) /
           static_cast<double>(truth.edge_count());
  };

  // Checkpoint/restore. Mapping agents are reconstructed from the roster
  // (every recovery path uses roster[slot], so slot_of determines each
  // agent's config); the decide-order permutation is carried because it is
  // persistent — reshuffled in place, not rebuilt per step.
  const auto save_run = [&](snapshot::ByteWriter& w) {
    rng.save_state(w);
    world.save_state(w);
    board.save_state(w);
    w.boolean(injector.has_value());
    if (injector) injector->save_state(w);
    watchdog.save_state(w);
    w.pod_vec(slot_of);
    w.scalar(next_agent_id);
    w.pod_vec(decide_order);
    w.size(agents.size());
    for (const MappingAgent& agent : agents) agent.save_state(w);
    monitor_map.save_state(w);
    w.f64(result.monitor_completeness);
    w.boolean(result.monitor_finished);
    w.size(result.monitor_finishing_time);
    w.pod_vec(result.mean_knowledge);
    w.pod_vec(result.min_knowledge);
    w.size(result.migration_bytes);
    w.size(result.agents_lost);
    w.size(result.agents_respawned);
  };
  const auto load_run = [&](snapshot::ByteReader& r) {
    rng.load_state(r);
    world.load_state(r);
    board.load_state(r);
    AGENTNET_REQUIRE(r.boolean() == injector.has_value(),
                     "snapshot: fault plan mismatch");
    if (injector) injector->load_state(r);
    watchdog.load_state(r);
    r.pod_vec(slot_of);
    next_agent_id = r.scalar<int>();
    r.pod_vec(decide_order);
    const std::size_t live = r.counted(8);
    AGENTNET_REQUIRE(live == slot_of.size(),
                     "snapshot: roster slot map size mismatch");
    agents.clear();
    agents.reserve(live);
    for (std::size_t i = 0; i < live; ++i) {
      AGENTNET_REQUIRE(slot_of[i] < roster.size(),
                       "snapshot: roster slot out of range");
      agents.emplace_back(0, NodeId{0}, n, roster[slot_of[i]], Rng(0));
      agents.back().load_state(r);
    }
    monitor_map.load_state(r);
    result.monitor_completeness = r.f64();
    result.monitor_finished = r.boolean();
    result.monitor_finishing_time = r.size();
    r.pod_vec(result.mean_knowledge);
    r.pod_vec(result.min_knowledge);
    result.migration_bytes = r.size();
    result.agents_lost = r.size();
    result.agents_respawned = r.size();
  };

  setup_phase.stop();
  std::size_t resume_at = 0;
  if (config.checkpoint && config.checkpoint->resuming())
    resume_at = config.checkpoint->restore(load_run);
  for (std::size_t t = resume_at; t <= config.max_steps; ++t) {
    if (config.checkpoint && config.checkpoint->save_due(t))
      config.checkpoint->save(t, save_run);
    AGENTNET_OBS_PHASE(kStep);
    // The fault-masked view of this step's topology. Frozen mapping worlds
    // never advance their own clock, so the weather keys on the task step.
    const Graph& live =
        injector ? injector->live_graph(world, t) : world.graph();

    // Phase 0: watchdog recovery — roster slots silent for more than the
    // TTL are declared dead; any agent still occupying one is scrapped
    // (wedged or stranded) and a fresh replacement starts over on a
    // random live node.
    if (injector && watchdog.enabled()) {
      constexpr std::size_t kNoAgent = static_cast<std::size_t>(-1);
      std::vector<std::size_t> slot_agent(roster.size(), kNoAgent);
      for (std::size_t i = 0; i < agents.size(); ++i)
        slot_agent[slot_of[i]] = i;
      std::vector<std::size_t> dead_slots;
      std::vector<char> scrapped(agents.size(), 0);
      bool any_scrapped = false;
      for (std::size_t slot = 0; slot < roster.size(); ++slot) {
        if (!watchdog.expired(slot, t)) continue;
        dead_slots.push_back(slot);
        const std::size_t idx = slot_agent[slot];
        if (idx != kNoAgent) {
          scrapped[idx] = 1;
          any_scrapped = true;
          ++result.agents_lost;
          AGENTNET_COUNT(kAgentsLost);
          AGENTNET_OBS_EVENT(kLost, t, agents[idx].id());
        }
      }
      if (any_scrapped) compact_agents(scrapped);
      if (!dead_slots.empty()) {
        std::vector<NodeId> live_nodes;
        for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
          if (!injector->down(v)) live_nodes.push_back(v);
        for (std::size_t slot : dead_slots) {
          if (live_nodes.empty()) break;  // total blackout: retry later
          const NodeId at = live_nodes[injector->pick(live_nodes.size())];
          agents.emplace_back(
              next_agent_id, at, n, roster[slot],
              rng.fork(static_cast<std::uint64_t>(next_agent_id) + 1));
          slot_of.push_back(slot);
          watchdog.beat(slot, t);
          ++result.agents_respawned;
          AGENTNET_COUNT(kWatchdogRespawns);
          AGENTNET_OBS_EVENT(kWatchdogRespawn, t, next_agent_id,
                             static_cast<std::int64_t>(at));
          ++next_agent_id;
        }
      }
    }

    // Phase 1: every agent learns the out-edges of its node. Agents on a
    // crashed node are suspended: they sense nothing this step. Sensing
    // reads the frozen live graph and writes only the agent's own map, so
    // the engine fans it per agent (down() is a const read of the mask
    // live_graph() refreshed above).
    {
      AGENTNET_OBS_PHASE(kSense);
      par.for_each(agents.size(), [&](std::size_t i) {
        MappingAgent& agent = agents[i];
        if (injector && injector->down(agent.location())) return;
        agent.sense(live, t);
      });
    }

    // Phase 2: direct communication within co-located (or, with
    // comm_radius 1, in-range) groups. Pool first, then distribute, so
    // exchange is simultaneous (order-free).
    if (config.communication && agents.size() > 1) {
      AGENTNET_OBS_PHASE(kExchange);
      AGENTNET_REQUIRE(config.comm_radius <= 1,
                       "comm_radius must be 0 or 1");
      const auto groups =
          config.comm_radius == 0
              ? colocated_groups(agents)
              : in_range_groups(agents, live, world, meeting_scratch);
      // Plan pass (serial): membership, venue and the per-meeting
      // corruption draw, in group order — the exact RNG sequence of the
      // historical single-pass loop, which drew nothing while pooling.
      meetings.clear();
      {
        obs::ScopedPhase plan_phase(obs::Phase::kExchangePlan);
        for (const auto& group : groups) {
          // Members stranded on crashed nodes cannot take part; a
          // corrupted exchange (drawn once per meeting) discards the
          // whole payload.
          MeetingPlan meeting;
          if (injector && plan.topology_faults()) {
            for (std::size_t idx : group)
              if (!injector->down(agents[idx].location()))
                meeting.talkers.push_back(idx);
          } else {
            meeting.talkers.assign(group.begin(), group.end());
          }
          if (meeting.talkers.size() < 2) continue;
          meeting.venue = agents[meeting.talkers[0]].location();
          meeting.corrupted = injector &&
                              plan.exchange_failure_probability > 0.0 &&
                              injector->corrupt_exchange();
          meetings.push_back(std::move(meeting));
        }
      }
      // Pooling (group-parallel): meetings are disjoint, so each can pool
      // and distribute into its own members concurrently — per-worker
      // scratch, no events, no RNG.
      const auto pool_meeting = [&](const MeetingPlan& meeting,
                                    ExchangeScratch& scratch) {
        scratch.edges.clear();
        std::fill(scratch.visits.begin(), scratch.visits.end(),
                  kNeverVisited);
        for (std::size_t idx : meeting.talkers) {
          const MapKnowledge& k = agents[idx].knowledge();
          scratch.edges.merge(k.combined_edges());
          const auto visits = k.any_visits();
          for (std::size_t i = 0; i < n; ++i)
            scratch.visits[i] = std::max(scratch.visits[i], visits[i]);
        }
        for (std::size_t idx : meeting.talkers)
          agents[idx].learn_union(scratch.edges, scratch.visits);
      };
      if (par.active() && meetings.size() > 1) {
        par.for_each_scratch(
            meetings.size(),
            [n] {
              return ExchangeScratch{DenseBitset(n * n),
                                     std::vector<std::int64_t>(n)};
            },
            [&](std::size_t m, ExchangeScratch& scratch) {
              if (!meetings[m].corrupted) pool_meeting(meetings[m], scratch);
            });
      } else {
        for (const MeetingPlan& meeting : meetings)
          if (!meeting.corrupted) pool_meeting(meeting, pooled);
      }
      // Commit pass (serial): counters and trace events replayed in group
      // order — the same per-meeting sequence the single-pass loop
      // emitted, so traces stay byte-identical at any thread count.
      {
        obs::ScopedPhase commit_phase(obs::Phase::kCommit);
        for (const MeetingPlan& meeting : meetings) {
          if (meeting.corrupted) {
            AGENTNET_COUNT(kExchangesCorrupted);
            AGENTNET_OBS_EVENT(
                kExchangeCorrupted, t, -1,
                static_cast<std::int64_t>(meeting.venue),
                static_cast<std::int64_t>(meeting.talkers.size()));
            continue;
          }
          AGENTNET_COUNT(kAgentMeetings);
          AGENTNET_OBS_EVENT(kMeet, t, -1,
                             static_cast<std::int64_t>(meeting.venue),
                             static_cast<std::int64_t>(meeting.talkers.size()));
          for (std::size_t idx : meeting.talkers) {
            AGENTNET_COUNT(kKnowledgeMerges);
            AGENTNET_OBS_EVENT(
                kMerge, t, static_cast<std::int64_t>(idx),
                static_cast<std::int64_t>(agents[idx].location()));
          }
        }
      }
    }

    // Resilience: hearsay expires after the configured TTL — a crashed
    // region's links eventually stop being "known" second-hand and must be
    // re-observed or re-learned.
    if (plan.knowledge_ttl > 0)
      par.for_each(agents.size(), [&](std::size_t i) {
        agents[i].expire_second_hand(t, plan.knowledge_ttl);
      });

    // Monitor upload: every agent standing on the monitoring entity's node
    // hands over its full map (nothing uploads while the monitor is down).
    if (config.monitor_node &&
        !(injector && injector->down(*config.monitor_node))) {
      for (const auto& agent : agents)
        if (agent.location() == *config.monitor_node)
          monitor_map.merge(agent.knowledge().combined_edges());
      result.monitor_completeness =
          static_cast<double>(monitor_map.count()) /
          static_cast<double>(result.truth_edges);
      if (!result.monitor_finished &&
          monitor_map.count() >= result.truth_edges) {
        result.monitor_finished = true;
        result.monitor_finishing_time = t;
      }
    }

    // Measurement + finishing check (knowledge is final for this step).
    {
      AGENTNET_OBS_PHASE(kMeasure);
      double min_fraction = 1.0;
      double sum_fraction = 0.0;
      // Per-agent fractions land in index slots and reduce in index order,
      // so the floating-point sum is bitwise the serial loop's. The lazy
      // CSR refreeze is forced up front — workers must only read it (the
      // serial path lets the first knowledge_fraction call freeze it, so
      // an extinct team never triggers a refreeze either way).
      if (par.active() && !agents.empty() && config.advance_world &&
          !config.truth_edges_override)
        world.csr();
      fractions.resize(agents.size());
      par.for_each(agents.size(), [&](std::size_t i) {
        fractions[i] = knowledge_fraction(agents[i]);
      });
      for (double f : fractions) {
        min_fraction = std::min(min_fraction, f);
        sum_fraction += f;
      }
      // An extinct team (every agent lost, watchdog off) knows nothing
      // and can never finish; record zeros rather than divide by zero.
      if (config.record_series) {
        result.mean_knowledge.push_back(
            agents.empty()
                ? 0.0
                : sum_fraction / static_cast<double>(agents.size()));
        result.min_knowledge.push_back(agents.empty() ? 0.0 : min_fraction);
      }
      AGENTNET_OBS_GAUGE(
          kKnowledge, t,
          agents.empty() ? 0.0
                         : sum_fraction / static_cast<double>(agents.size()));
      if (AGENTNET_OBS_METRICS_WANT(t) && injector && plan.topology_faults())
        AGENTNET_OBS_GAUGE(kLiveFraction, t,
                           injector->live_fraction(world.node_count()));
      if (!agents.empty() && min_fraction >= 1.0) {
        result.finished = true;
        result.finishing_time = t;
        result.final_population = agents.size();
        AGENTNET_OBS_EVENT(kFinish, t);
        return result;
      }
    }

    // Phase 3+4: decide, stamp, move. Stigmergic agents decide in a fresh
    // random order each step and see footprints stamped earlier in the same
    // step — this is what disperses co-located identical-knowledge agents
    // (see DESIGN.md). Non-stigmergic agents ignore the board entirely, so
    // the ordering does not affect them.
    std::vector<NodeId> targets(agents.size());
    {
      AGENTNET_OBS_PHASE(kDecide);
      // The permutation is persistent and reshuffled in place; it is only
      // rebuilt when faults changed the population (rebuilding every step
      // would perturb the fault-free shuffle sequence).
      if (decide_order.size() != agents.size()) {
        decide_order.resize(agents.size());
        std::iota(decide_order.begin(), decide_order.end(), 0);
      }
      rng.shuffle(std::span<std::size_t>(decide_order));
      // Non-stigmergic teams never read the board, so their decisions are
      // independent given the frozen live graph and each agent's own
      // forked RNG stream: the engine fans them per agent (iteration
      // order is then irrelevant — the shuffle above still consumes the
      // same run-RNG draws, keeping fault-free sequences unperturbed).
      // Stigmergic teams keep the exact serial decide order: same-step
      // footprint visibility is the dispersion mechanism.
      if (par.active() && !stigmergic_roster) {
        par.for_each(agents.size(), [&](std::size_t i) {
          targets[i] = agents[i].decide(live, board, t);
        });
      } else {
        for (std::size_t idx : decide_order) {
          MappingAgent& agent = agents[idx];
          const NodeId target = agent.decide(live, board, t);
          targets[idx] = target;
          if (agent.stigmergic() && target != agent.location())
            board.stamp(agent.location(), target, t);
        }
      }
    }
    {
      AGENTNET_OBS_PHASE(kMove);
      std::vector<char> lost(agents.size(), 0);
      bool any_lost = false;
      for (std::size_t idx = 0; idx < agents.size(); ++idx) {
        if (targets[idx] != agents[idx].location()) {
          // Failure injection: a migrating agent can be lost on any hop —
          // it never arrives, and its carried map is gone.
          if (injector && plan.agent_loss_probability > 0.0 &&
              injector->lose_in_transit()) {
            lost[idx] = 1;
            any_lost = true;
            ++result.agents_lost;
            AGENTNET_COUNT(kAgentsLost);
            AGENTNET_OBS_EVENT(kLost, t, agents[idx].id());
            continue;
          }
          result.migration_bytes += agents[idx].state_size_bytes();
          watchdog.beat(slot_of[idx], t);
          AGENTNET_COUNT(kAgentHops);
          AGENTNET_OBS_EVENT(
              kMove, t, static_cast<std::int64_t>(agents[idx].id()),
              static_cast<std::int64_t>(agents[idx].location()),
              static_cast<std::int64_t>(targets[idx]));
        }
        agents[idx].move_to(targets[idx]);
      }
      if (any_lost) compact_agents(lost);
    }

    if (config.advance_world) world.advance();
    AGENTNET_OBS_METRICS_TICK(t);
  }

  AGENTNET_INFO() << "mapping task hit max_steps=" << config.max_steps
                  << " without finishing";
  result.final_population = agents.size();
  return result;
}

}  // namespace agentnet
