// The network-mapping task (paper §II): a team of agents steps through the
// four phases — sense, exchange, decide (+footprint), move — until every
// agent holds a perfect map. "Finishing time [is] the simulation time step
// where all agents have a perfect knowledge about the network topology",
// i.e. team efficiency, not individual efficiency.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/agent_parallel.hpp"
#include "common/rng.hpp"
#include "core/mapping_agent.hpp"
#include "core/stigmergy.hpp"
#include "fault/fault_plan.hpp"
#include "sim/world.hpp"

namespace agentnet {

namespace snapshot {
class RunCheckpointPort;
}

struct MappingTaskConfig {
  int population = 1;
  MappingAgentConfig agent;
  /// Heterogeneous team support (Minar et al. studied agent *diversity* —
  /// "the efficient division of labor in the absence of centralized
  /// control"): when non-empty, this roster overrides `population`/`agent`
  /// and each entry becomes one agent.
  std::vector<MappingAgentConfig> team;
  /// Direct communication between co-located agents (always on in the
  /// paper's multi-agent runs; irrelevant for population 1).
  bool communication = true;
  /// Meeting reach in hops: 0 = the paper's rule (exchange only when
  /// agents land on the same node); 1 = agents on adjacent nodes also
  /// exchange, relaying transitively through chains of in-range agents
  /// (they sit on radios — a link between their hosts carries data without
  /// a migration). The extJ bench measures how much the cooperation result
  /// depends on this meeting opportunity.
  std::size_t comm_radius = 0;
  /// Footprint expiry in steps; 0 = footprints never expire (the mapping
  /// network is static, so stale footprints are still informative).
  std::size_t stigmergy_horizon = 0;
  /// Footprints retained per node; 1 is the paper's "last path" rule.
  std::size_t stigmergy_capacity = 1;
  /// Abort threshold for non-finishing configurations.
  std::size_t max_steps = 200000;
  /// Record per-step knowledge series (costs memory on long runs).
  bool record_series = true;
  /// Advance the world each step (battery-degraded mapping variant). The
  /// paper's mapping figures use a frozen world.
  bool advance_world = false;
  /// Truth override for flapping-link worlds: completeness and finishing
  /// are measured against this many edges (the underlying full topology)
  /// instead of the step-0 snapshot, which may have links down. Requires
  /// advance_world so the weather actually changes.
  std::optional<std::size_t> truth_edges_override;
  /// The paper's "network monitoring entity": a designated node that
  /// collects the map from every agent that lands on it. When set, the
  /// result additionally reports when the monitor first held the full
  /// topology — the "deliver the map to an operator" completion criterion,
  /// as opposed to the paper's "every agent knows everything".
  std::optional<NodeId> monitor_node;
  /// The unified fault model: crash windows, blackouts, burst outages,
  /// in-transit agent loss, exchange corruption and the resilience
  /// policies (watchdog respawn, knowledge expiry). An inert plan keeps
  /// the task on exactly its historical fault-free path — it draws nothing
  /// extra from the run RNG. See fault/fault_plan.hpp, docs/ROBUSTNESS.md.
  FaultPlan faults;
  /// Intra-run agent parallelism (AGENTNET_AGENT_THREADS): sense, group
  /// exchanges, measurement and — for non-stigmergic teams — decide fan
  /// over the shared agent pool. Bit-identical at every thread count;
  /// threads = 1 (the default) is the exact serial path.
  AgentParallelConfig agent_parallel = AgentParallelConfig::from_env();
  /// Checkpoint/restore handle for this run (nullptr = disabled). Owned by
  /// the caller; see snapshot/snapshot.hpp and docs/ROBUSTNESS.md.
  snapshot::RunCheckpointPort* checkpoint = nullptr;
};

struct MappingTaskResult {
  bool finished = false;
  /// Step at which all agents reached a perfect map (valid iff finished).
  std::size_t finishing_time = 0;
  std::size_t truth_edges = 0;
  /// Mean over agents of the fraction of truth edges known, per step.
  std::vector<double> mean_knowledge;
  /// Worst agent's fraction per step (this hitting 1.0 defines finishing).
  std::vector<double> min_knowledge;
  /// Total migration traffic: Σ over actual moves of the moving agent's
  /// serialized size (the paper's overhead measure).
  std::size_t migration_bytes = 0;
  /// Failure-injection bookkeeping (zero on fault-free runs).
  std::size_t agents_lost = 0;
  std::size_t agents_respawned = 0;
  /// Population still alive when the task ended.
  std::size_t final_population = 0;
  /// Monitor bookkeeping (meaningful only when a monitor node was set).
  bool monitor_finished = false;
  std::size_t monitor_finishing_time = 0;
  /// Monitor's map completeness when the task ended.
  double monitor_completeness = 0.0;
};

/// Runs one mapping task on `world`. Agent starting nodes and all movement
/// tie-breaks derive from `rng`; the world itself is treated as given.
MappingTaskResult run_mapping_task(World& world, const MappingTaskConfig& config,
                                   Rng rng);

}  // namespace agentnet
