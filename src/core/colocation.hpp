// Co-location grouping shared by the task loops.
//
// Meetings happen between agents standing on the same node. The grouping
// is the load-bearing input of the group-parallel exchange phase
// (common/agent_parallel.hpp): groups are disjoint by construction —
// every agent index appears in at most one group — so distinct groups can
// pool and merge concurrently, while the group *order* (ascending venue
// node id) fixes the serial order fault draws, counters and trace events
// replay in. Within a group, members stay in ascending agent-index order
// (the sort key is (location, index), so tie order never depends on the
// sort implementation). Meeting outcomes are member-order independent —
// pooling is a commutative max/merge — so pinning the tie order only
// fixes the per-member event sequence.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace agentnet {

/// Groups agent indices by location; returns only groups of two or more
/// (singletons have nobody to meet). Groups are ordered by venue node id;
/// members by ascending agent index.
template <typename Agent>
std::vector<std::vector<std::size_t>> colocated_groups(
    const std::vector<Agent>& agents) {
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::size_t> order(agents.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto la = agents[a].location();
    const auto lb = agents[b].location();
    return la < lb || (la == lb && a < b);
  });
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i + 1;
    while (j < order.size() &&
           agents[order[j]].location() == agents[order[i]].location())
      ++j;
    if (j - i >= 2)
      groups.emplace_back(order.begin() + i, order.begin() + j);
    i = j;
  }
  return groups;
}

}  // namespace agentnet
