// Stigmergy board: node-local footprints.
//
// The paper's contribution is an *inverse* ant trail — "every agent leaves
// behind his footprint on the current node. Agents imprint their next target
// node in the current node ... so that subsequent agents avoid following
// [the] previous one." A footprint therefore lives on the node the agent is
// leaving and names the neighbour it moved to; decision rules *demote*
// footprinted targets instead of seeking them out.
//
// The board is environment state (it belongs to the task, not to any agent)
// and costs O(1) to stamp and O(footprints-per-node) to query, which is what
// the paper means by "negligible overhead".
#pragma once

#include <cstddef>
#include <vector>

#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

class StigmergyBoard {
 public:
  /// `horizon`: footprints older than this many steps are ignored (and
  /// reclaimed); 0 means footprints never expire. `capacity_per_node`
  /// bounds memory per node; the oldest footprint is evicted first. The
  /// default of 1 is the paper's rule — a node holds the single most
  /// recent footprint ("the agent did not use its *last* path"), so only
  /// the immediately preceding choice is avoided, not the whole history.
  explicit StigmergyBoard(std::size_t node_count, std::size_t horizon = 0,
                          std::size_t capacity_per_node = 1);

  std::size_t node_count() const { return boards_.size(); }
  std::size_t horizon() const { return horizon_; }

  /// Records "an agent left `at` toward `target` at time `now`".
  void stamp(NodeId at, NodeId target, std::size_t now);

  /// True when some unexpired footprint at `at` points to `target`.
  bool marked(NodeId at, NodeId target, std::size_t now) const;

  /// Unexpired footprints currently stored at `at`.
  std::size_t footprint_count(NodeId at, std::size_t now) const;

  void clear();

  /// Checkpoint support: every node's footprint list, in stored order
  /// (eviction order matters — the oldest footprint goes first).
  void save_state(snapshot::ByteWriter& w) const {
    w.size(boards_.size());
    for (const auto& board : boards_) {
      w.size(board.size());
      for (const Footprint& fp : board) {
        w.scalar(fp.target);
        w.size(fp.step);
      }
    }
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(8);
    AGENTNET_REQUIRE(n == boards_.size(),
                     "snapshot: stigmergy board count mismatch");
    for (auto& board : boards_) {
      const std::size_t m = r.counted(16);
      board.resize(m);
      for (Footprint& fp : board) {
        fp.target = r.scalar<NodeId>();
        fp.step = r.size();
      }
    }
  }

 private:
  struct Footprint {
    NodeId target = kInvalidNode;
    std::size_t step = 0;
  };

  bool expired(const Footprint& fp, std::size_t now) const {
    return horizon_ != 0 && now > fp.step + horizon_;
  }

  std::vector<std::vector<Footprint>> boards_;
  std::size_t horizon_;
  std::size_t capacity_;
};

}  // namespace agentnet
