// Routing agents (paper §III): mobile programs that keep per-node routing
// tables pointing toward gateways in a mobile ad hoc network.
//
// An agent carries (a) a bounded history of recently visited nodes — its
// working memory, used by the oldest-node policy and merged wholesale during
// meetings — and (b) a "route hint": the reverse of its walk back to the
// last gateway it passed through. The hint grows one hop per move and
// expires when it exceeds the history size (the agent can no longer
// remember the path). Landing on a node, the agent offers the hint to that
// node's routing table.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "core/selection.hpp"
#include "core/stigmergy.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"

namespace agentnet {

enum class RoutingPolicy {
  kRandom,     ///< Uniform random reachable neighbour.
  kOldestNode  ///< Neighbour last visited longest ago / never / forgotten.
};

const char* to_string(RoutingPolicy policy);

struct RoutingAgentConfig {
  RoutingPolicy policy = RoutingPolicy::kOldestNode;
  /// Bounded memory: number of (node, last-visit) entries remembered, and
  /// the maximum length of a carried reverse route.
  std::size_t history_size = 10;
  /// Direct communication: meeting agents adopt the group's best route
  /// hint and merge visit histories (becoming identical — the mechanism
  /// behind the paper's Fig. 11 negative result).
  bool communicate = false;
  /// Paper's future work: footprint-based dispersion for routing agents.
  StigmergyMode stigmergy = StigmergyMode::kOff;
};

class RoutingAgent {
 public:
  /// The carried reverse route toward the last gateway seen.
  struct RouteHint {
    NodeId gateway = kInvalidNode;
    std::uint32_t hops = 0;        ///< Current node → gateway, in hops.
    NodeId next_hop = kInvalidNode;  ///< First hop from the current node.
    std::size_t updated = 0;       ///< Step of last refresh (gateway visit).
    bool valid() const { return gateway != kInvalidNode; }
  };

  RoutingAgent(int id, NodeId start, RoutingAgentConfig config, Rng rng);

  int id() const { return id_; }
  NodeId location() const { return location_; }
  const RoutingAgentConfig& config() const { return config_; }
  const RouteHint& hint() const { return hint_; }
  bool stigmergic() const {
    return config_.stigmergy != StigmergyMode::kOff;
  }
  /// Bounded visit history (node → last visit step), oldest evicted first.
  /// Flat sorted table; iterates in ascending node order like the std::map
  /// it replaced (the bit-identical invariant, docs/ARCHITECTURE.md).
  const FlatMap<NodeId, std::size_t>& history() const { return history_; }

  /// Records arrival at the current location: history update plus hint
  /// refresh when standing on a gateway.
  void arrive(const std::vector<bool>& is_gateway, std::size_t now);

  /// Chooses the next node from the live graph (see RoutingPolicy).
  NodeId decide(const Graph& graph, const StigmergyBoard& board,
                std::size_t now);

  /// Meeting exchange, receive side: adopt `best` if it beats the carried
  /// hint, and absorb `peer_history` (keeping the freshest entries, bounded
  /// by history_size).
  void adopt(const RouteHint& best,
             const FlatMap<NodeId, std::size_t>& peer_history);

  /// Moves to `target` (a current neighbour or the same node), extending
  /// the carried hint by one hop or expiring it past the memory bound.
  void move_to(NodeId target);

  /// Offers the carried hint to the routing table of the current node.
  /// Returns true when a route was installed.
  bool install(RoutingTables& tables, const std::vector<bool>& is_gateway,
               std::size_t now);

  /// True when `a` beats `b` as a meeting's best hint (fewer hops, then
  /// fresher, then lower gateway id for determinism).
  static bool hint_better(const RouteHint& a, const RouteHint& b);

  /// Serialized agent size if it migrated now: 12 bytes per history entry,
  /// 16 for the route hint, plus a fixed 64-byte code/descriptor stub —
  /// the paper's overhead yardstick (history size is THE knob).
  std::size_t state_size_bytes() const {
    return 64 + 12 * history_.size() + (hint_.valid() ? 16 : 0);
  }

  /// Checkpoint support: id, location, history, hint and RNG. The config
  /// is not carried — a restored roster is rebuilt from the task config.
  void save_state(snapshot::ByteWriter& w) const {
    w.scalar(id_);
    w.scalar(location_);
    history_.save_state(
        w, [](snapshot::ByteWriter& out, std::size_t v) { out.size(v); });
    w.scalar(hint_.gateway);
    w.scalar(hint_.hops);
    w.scalar(hint_.next_hop);
    w.size(hint_.updated);
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    id_ = r.scalar<int>();
    location_ = r.scalar<NodeId>();
    history_.load_state(
        r, [](snapshot::ByteReader& in, std::size_t& v) { v = in.size(); });
    hint_.gateway = r.scalar<NodeId>();
    hint_.hops = r.scalar<std::uint32_t>();
    hint_.next_hop = r.scalar<NodeId>();
    hint_.updated = r.size();
    rng_.load_state(r);
  }

 private:
  void remember_visit(NodeId node, std::size_t now);
  void trim_history();

  int id_;
  NodeId location_;
  RoutingAgentConfig config_;
  FlatMap<NodeId, std::size_t> history_;
  RouteHint hint_;
  Rng rng_;
};

}  // namespace agentnet
