#include "core/routing_agent.hpp"

#include <algorithm>

namespace agentnet {

const char* to_string(RoutingPolicy policy) {
  switch (policy) {
    case RoutingPolicy::kRandom:
      return "random";
    case RoutingPolicy::kOldestNode:
      return "oldest-node";
  }
  return "?";
}

RoutingAgent::RoutingAgent(int id, NodeId start, RoutingAgentConfig config,
                           Rng rng)
    : id_(id), location_(start), config_(config), rng_(rng) {
  AGENTNET_REQUIRE(config.history_size >= 1, "history size must be >= 1");
}

void RoutingAgent::remember_visit(NodeId node, std::size_t now) {
  history_[node] = now;
  trim_history();
}

void RoutingAgent::trim_history() {
  while (history_.size() > config_.history_size) {
    // Evict the oldest entry; ties broken by lowest node id, which sorted
    // iteration order makes deterministic.
    auto oldest = history_.begin();
    for (auto it = std::next(history_.begin()); it != history_.end(); ++it)
      if (it->second < oldest->second) oldest = it;
    history_.erase(oldest);
  }
}

void RoutingAgent::arrive(const std::vector<bool>& is_gateway,
                          std::size_t now) {
  AGENTNET_ASSERT(location_ < is_gateway.size());
  remember_visit(location_, now);
  if (is_gateway[location_]) {
    // Standing on a gateway: the reverse route is trivial and fresh.
    hint_ = RouteHint{location_, 0, kInvalidNode, now};
  }
}

NodeId RoutingAgent::decide(const Graph& graph, const StigmergyBoard& board,
                            std::size_t now) {
  const auto neighbors = graph.out_neighbors(location_);
  if (neighbors.empty()) return location_;
  switch (config_.policy) {
    case RoutingPolicy::kRandom:
      return select_target(
          neighbors, [](NodeId) { return std::int64_t{0}; },
          config_.stigmergy, board, location_, now, rng_);
    case RoutingPolicy::kOldestNode:
      return select_target(
          neighbors,
          [&](NodeId v) {
            const auto it = history_.find(v);
            // Never visited or forgotten → most attractive.
            return it == history_.end()
                       ? kNeverVisited
                       : static_cast<std::int64_t>(it->second);
          },
          config_.stigmergy, board, location_, now, rng_,
          TieBreak::kSharedHash);
  }
  return location_;
}

bool RoutingAgent::hint_better(const RouteHint& a, const RouteHint& b) {
  if (a.valid() != b.valid()) return a.valid();
  if (!a.valid()) return false;
  if (a.hops != b.hops) return a.hops < b.hops;
  if (a.updated != b.updated) return a.updated > b.updated;
  return a.gateway < b.gateway;
}

void RoutingAgent::adopt(const RouteHint& best,
                         const FlatMap<NodeId, std::size_t>& peer_history) {
  if (hint_better(best, hint_)) hint_ = best;
  for (const auto& [node, step] : peer_history) {
    auto it = history_.find(node);
    if (it == history_.end())
      history_.emplace(node, step);
    else
      it->second = std::max(it->second, step);
  }
  trim_history();
}

void RoutingAgent::move_to(NodeId target) {
  if (target == location_) return;  // waited in place; hint unchanged
  const NodeId prev = location_;
  location_ = target;
  if (!hint_.valid()) return;
  // The walk got one hop longer; the reverse route now starts through the
  // node just left. Past the memory bound the agent forgets the path.
  hint_.hops += 1;
  hint_.next_hop = prev;
  if (hint_.hops > config_.history_size) hint_ = RouteHint{};
}

bool RoutingAgent::install(RoutingTables& tables,
                           const std::vector<bool>& is_gateway,
                           std::size_t now) {
  AGENTNET_ASSERT(location_ < is_gateway.size());
  if (is_gateway[location_]) return false;  // gateways need no route
  if (!hint_.valid() || hint_.next_hop == kInvalidNode) return false;
  RouteEntry entry;
  entry.next_hop = hint_.next_hop;
  entry.gateway = hint_.gateway;
  entry.hops = hint_.hops;
  entry.installed_at = now;
  return tables.offer(location_, entry, now);
}

}  // namespace agentnet
