#include "core/map_knowledge.hpp"

#include <algorithm>

namespace agentnet {

MapKnowledge::MapKnowledge(std::size_t node_count)
    : node_count_(node_count),
      first_hand_(node_count * node_count),
      second_hand_(node_count * node_count),
      combined_(node_count * node_count),
      first_hand_visit_(node_count, kNeverVisited),
      any_visit_(node_count, kNeverVisited) {
  AGENTNET_REQUIRE(node_count > 0, "knowledge needs >= 1 node");
}

void MapKnowledge::observe_node(NodeId node,
                                std::span<const NodeId> out_neighbors,
                                std::size_t now) {
  AGENTNET_ASSERT(node < node_count_);
  const auto t = static_cast<std::int64_t>(now);
  first_hand_visit_[node] = std::max(first_hand_visit_[node], t);
  any_visit_[node] = std::max(any_visit_[node], t);
  for (NodeId v : out_neighbors) {
    const std::size_t bit = bit_index(node, v);
    first_hand_.set(bit);
    combined_.set(bit);
  }
}

void MapKnowledge::learn_from(const MapKnowledge& peer) {
  AGENTNET_REQUIRE(peer.node_count_ == node_count_,
                   "knowledge node-count mismatch");
  second_hand_.merge(peer.combined_);
  combined_.merge(peer.combined_);
  for (std::size_t i = 0; i < node_count_; ++i)
    any_visit_[i] = std::max(any_visit_[i], peer.any_visit_[i]);
  if (expiry_enabled_) {
    second_recent_.merge(peer.combined_);
    for (std::size_t i = 0; i < node_count_; ++i)
      learned_visit_recent_[i] =
          std::max(learned_visit_recent_[i], peer.any_visit_[i]);
  }
}

void MapKnowledge::learn_union(const DenseBitset& edges,
                               std::span<const std::int64_t> visits) {
  AGENTNET_REQUIRE(edges.size() == node_count_ * node_count_,
                   "pooled edge bitset size mismatch");
  AGENTNET_REQUIRE(visits.size() == node_count_,
                   "pooled visit vector size mismatch");
  second_hand_.merge(edges);
  combined_.merge(edges);
  for (std::size_t i = 0; i < node_count_; ++i)
    any_visit_[i] = std::max(any_visit_[i], visits[i]);
  if (expiry_enabled_) {
    second_recent_.merge(edges);
    for (std::size_t i = 0; i < node_count_; ++i)
      learned_visit_recent_[i] =
          std::max(learned_visit_recent_[i], visits[i]);
  }
}

void MapKnowledge::expire_second_hand(std::size_t now, std::size_t ttl) {
  if (ttl == 0) return;
  if (!expiry_enabled_) {
    // Lazy activation: hearsay absorbed before this point belongs to an
    // epoch that is already ending, so it ages out at the first rotation.
    expiry_enabled_ = true;
    last_rotation_ = now;
    second_recent_ = DenseBitset(node_count_ * node_count_);
    learned_visit_prev_.assign(node_count_, kNeverVisited);
    learned_visit_recent_.assign(node_count_, kNeverVisited);
    return;
  }
  if (now < last_rotation_ + ttl) return;
  // Epoch rotation: the closing epoch's hearsay becomes the surviving
  // second-hand store; everything older is forgotten.
  second_hand_ = second_recent_;
  second_recent_.clear();
  combined_ = first_hand_;
  combined_.merge(second_hand_);
  learned_visit_prev_ = learned_visit_recent_;
  std::fill(learned_visit_recent_.begin(), learned_visit_recent_.end(),
            kNeverVisited);
  for (std::size_t i = 0; i < node_count_; ++i)
    any_visit_[i] = std::max(first_hand_visit_[i], learned_visit_prev_[i]);
  last_rotation_ = now;
}

bool MapKnowledge::knows_edge_first_hand(NodeId u, NodeId v) const {
  return first_hand_.test(bit_index(u, v));
}

bool MapKnowledge::knows_edge(NodeId u, NodeId v) const {
  return combined_.test(bit_index(u, v));
}

namespace {

template <class AnyGraph>
std::size_t known_in(const MapKnowledge& k, const AnyGraph& truth) {
  AGENTNET_REQUIRE(truth.node_count() == k.node_count(),
                   "truth graph node-count mismatch");
  std::size_t n = 0;
  for (NodeId u = 0; u < k.node_count(); ++u)
    for (NodeId v : truth.out_neighbors(u))
      if (k.knows_edge(u, v)) ++n;
  return n;
}

}  // namespace

std::size_t MapKnowledge::known_edge_count_in(const Graph& truth) const {
  return known_in(*this, truth);
}

std::size_t MapKnowledge::known_edge_count_in(const CsrView& truth) const {
  return known_in(*this, truth);
}

std::int64_t MapKnowledge::last_visit_first_hand(NodeId node) const {
  AGENTNET_ASSERT(node < node_count_);
  return first_hand_visit_[node];
}

std::int64_t MapKnowledge::last_visit_any(NodeId node) const {
  AGENTNET_ASSERT(node < node_count_);
  return any_visit_[node];
}

std::size_t MapKnowledge::serialized_size_bytes() const {
  std::size_t visited = 0;
  for (std::int64_t t : any_visit_)
    if (t != kNeverVisited) ++visited;
  return 8 * combined_.count() + 12 * visited;
}

double MapKnowledge::completeness(std::size_t truth_edge_count) const {
  if (truth_edge_count == 0) return 1.0;
  return static_cast<double>(known_edge_count()) /
         static_cast<double>(truth_edge_count);
}

}  // namespace agentnet
