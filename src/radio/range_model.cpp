#include "radio/range_model.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace agentnet {

std::vector<double> fixed_ranges(std::size_t node_count, double range) {
  AGENTNET_REQUIRE(range > 0.0, "radio range must be > 0");
  return std::vector<double>(node_count, range);
}

std::vector<double> heterogeneous_ranges(std::size_t node_count,
                                         double min_range, double max_range,
                                         Rng& rng) {
  AGENTNET_REQUIRE(min_range > 0.0 && max_range >= min_range,
                   "need 0 < min_range <= max_range");
  std::vector<double> out(node_count);
  for (auto& r : out) r = rng.uniform_real(min_range, max_range);
  return out;
}

RadioModel::RadioModel(std::vector<double> base_ranges, RangeScaling scaling)
    : base_ranges_(std::move(base_ranges)), scaling_(scaling) {
  AGENTNET_REQUIRE(!base_ranges_.empty(), "radio model needs >= 1 node");
  AGENTNET_REQUIRE(scaling.min_scale > 0.0 && scaling.min_scale <= 1.0,
                   "range scaling floor must be in (0, 1]");
  for (double r : base_ranges_) {
    AGENTNET_REQUIRE(r > 0.0, "base ranges must be > 0");
    max_base_range_ = std::max(max_base_range_, r);
  }
}

double RadioModel::base_range(std::size_t node) const {
  AGENTNET_ASSERT(node < base_ranges_.size());
  return base_ranges_[node];
}

double RadioModel::effective_range(std::size_t node,
                                   double battery_fraction) const {
  return scaling_.apply(base_range(node), battery_fraction);
}

}  // namespace agentnet
