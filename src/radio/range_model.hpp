// Radio range models.
//
// The paper replaces Minar's idealised symmetric fixed-range radios with a
// realistic model: per-node heterogeneous ranges (so a link A→B can exist
// without B→A, making the topology a *directed* graph) and battery-driven
// range decay. The directed link predicate is:
//
//   edge u→v exists  ⇔  distance(u, v) <= effective_range(u)
//
// where effective_range scales the node's base range by its battery state.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace agentnet {

/// All nodes share one radio range (Minar et al.'s assumption; produces a
/// symmetric topology when batteries are off).
std::vector<double> fixed_ranges(std::size_t node_count, double range);

/// Per-node range drawn uniformly from [min_range, max_range] — the
/// asymmetry source in the paper's environment.
std::vector<double> heterogeneous_ranges(std::size_t node_count,
                                         double min_range, double max_range,
                                         Rng& rng);

/// Linear battery→range scaling with a floor: at full charge the node
/// radiates its base range, at empty charge `min_scale` of it. min_scale>0
/// keeps depleted nodes reachable at short distances, mirroring the paper's
/// networks which degrade but do not partition into dust.
struct RangeScaling {
  double min_scale = 0.3;

  double apply(double base_range, double battery_fraction) const {
    if (battery_fraction < 0.0) battery_fraction = 0.0;
    if (battery_fraction > 1.0) battery_fraction = 1.0;
    return base_range * (min_scale + (1.0 - min_scale) * battery_fraction);
  }
};

/// Per-node radio state: base range plus the scaling law. Effective range
/// is a pure function of (node, battery fraction), recomputed on demand so
/// the topology builder always sees current values.
class RadioModel {
 public:
  RadioModel(std::vector<double> base_ranges, RangeScaling scaling);

  std::size_t size() const { return base_ranges_.size(); }
  double base_range(std::size_t node) const;
  double effective_range(std::size_t node, double battery_fraction) const;
  /// Largest possible effective range over all nodes (spatial-grid sizing).
  double max_base_range() const { return max_base_range_; }
  const RangeScaling& scaling() const { return scaling_; }

 private:
  std::vector<double> base_ranges_;
  RangeScaling scaling_;
  double max_base_range_ = 0.0;
};

}  // namespace agentnet
