#include "mobility/mobility.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace agentnet {

namespace {
Vec2 random_heading(Rng& rng) {
  const double theta = rng.uniform_real(0.0, 2.0 * std::numbers::pi);
  return {std::cos(theta), std::sin(theta)};
}

// Wraps an angle difference into (-pi, pi] so AR(1) heading updates steer
// the short way around instead of jumping at the wrap.
double wrap_angle(double a) {
  while (a > std::numbers::pi) a -= 2.0 * std::numbers::pi;
  while (a <= -std::numbers::pi) a += 2.0 * std::numbers::pi;
  return a;
}

// Reflects `p` into `bounds`, flipping the matching heading component.
// Handles a single overshoot per axis, which per-step speeds guarantee.
void bounce(Aabb bounds, Vec2& p, Vec2& heading) {
  if (p.x < bounds.lo.x) {
    p.x = 2.0 * bounds.lo.x - p.x;
    heading.x = -heading.x;
  } else if (p.x > bounds.hi.x) {
    p.x = 2.0 * bounds.hi.x - p.x;
    heading.x = -heading.x;
  }
  if (p.y < bounds.lo.y) {
    p.y = 2.0 * bounds.lo.y - p.y;
    heading.y = -heading.y;
  } else if (p.y > bounds.hi.y) {
    p.y = 2.0 * bounds.hi.y - p.y;
    heading.y = -heading.y;
  }
  p = bounds.clamp(p);  // in case the reflection itself overshot
}
}  // namespace

RandomDirectionMobility::RandomDirectionMobility(Aabb bounds,
                                                 std::vector<bool> mobile,
                                                 Params params, Rng rng)
    : bounds_(bounds),
      mobile_(std::move(mobile)),
      params_(params),
      rng_(rng) {
  AGENTNET_REQUIRE(params.min_speed >= 0.0 &&
                       params.max_speed >= params.min_speed,
                   "need 0 <= min_speed <= max_speed");
  AGENTNET_REQUIRE(
      params.turn_probability >= 0.0 && params.turn_probability <= 1.0,
      "turn probability must be in [0,1]");
  speeds_.resize(mobile_.size(), 0.0);
  headings_.resize(mobile_.size());
  for (std::size_t i = 0; i < mobile_.size(); ++i) {
    if (!mobile_[i]) continue;
    speeds_[i] = rng_.uniform_real(params_.min_speed, params_.max_speed);
    headings_[i] = random_heading(rng_);
  }
}

void RandomDirectionMobility::step(std::vector<Vec2>& positions) {
  AGENTNET_REQUIRE(positions.size() == mobile_.size(),
                   "position count does not match mobility mask");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!mobile_[i]) continue;
    if (rng_.bernoulli(params_.turn_probability))
      headings_[i] = random_heading(rng_);
    Vec2 p = positions[i] + headings_[i] * speeds_[i];
    bounce(bounds_, p, headings_[i]);
    positions[i] = p;
  }
}

bool RandomDirectionMobility::is_stationary(std::size_t node) const {
  AGENTNET_ASSERT(node < mobile_.size());
  return !mobile_[node];
}

double RandomDirectionMobility::speed(std::size_t node) const {
  AGENTNET_ASSERT(node < speeds_.size());
  return speeds_[node];
}

RandomWaypointMobility::RandomWaypointMobility(Aabb bounds,
                                               std::vector<bool> mobile,
                                               Params params, Rng rng)
    : bounds_(bounds),
      mobile_(std::move(mobile)),
      params_(params),
      rng_(rng) {
  AGENTNET_REQUIRE(params.min_speed >= 0.0 &&
                       params.max_speed >= params.min_speed,
                   "need 0 <= min_speed <= max_speed");
  AGENTNET_REQUIRE(params.pause_steps >= 0, "pause_steps must be >= 0");
  legs_.resize(mobile_.size());
}

void RandomWaypointMobility::step(std::vector<Vec2>& positions) {
  AGENTNET_REQUIRE(positions.size() == mobile_.size(),
                   "position count does not match mobility mask");
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!mobile_[i]) continue;
    Leg& leg = legs_[i];
    if (!leg.active) {
      if (leg.pause_left > 0) {
        --leg.pause_left;
        continue;
      }
      leg.target = {rng_.uniform_real(bounds_.lo.x, bounds_.hi.x),
                    rng_.uniform_real(bounds_.lo.y, bounds_.hi.y)};
      leg.speed = rng_.uniform_real(params_.min_speed, params_.max_speed);
      leg.active = true;
    }
    const Vec2 delta = leg.target - positions[i];
    const double dist = delta.norm();
    if (dist <= leg.speed) {
      positions[i] = leg.target;
      leg.active = false;
      leg.pause_left = params_.pause_steps;
    } else {
      positions[i] += delta * (leg.speed / dist);
    }
  }
}

bool RandomWaypointMobility::is_stationary(std::size_t node) const {
  AGENTNET_ASSERT(node < mobile_.size());
  return !mobile_[node];
}

GaussMarkovMobility::GaussMarkovMobility(Aabb bounds,
                                         std::vector<bool> mobile,
                                         Params params, Rng rng)
    : bounds_(bounds),
      mobile_(std::move(mobile)),
      params_(params),
      rng_(rng) {
  AGENTNET_REQUIRE(params.mean_speed >= 0.0, "mean speed must be >= 0");
  AGENTNET_REQUIRE(params.speed_stddev >= 0.0, "speed stddev must be >= 0");
  AGENTNET_REQUIRE(params.heading_stddev >= 0.0,
                   "heading stddev must be >= 0");
  AGENTNET_REQUIRE(params.alpha >= 0.0 && params.alpha <= 1.0,
                   "alpha must be in [0,1]");
  AGENTNET_REQUIRE(params.wall_margin >= 0.0, "wall margin must be >= 0");
  speeds_.resize(mobile_.size(), 0.0);
  headings_.resize(mobile_.size(), 0.0);
  for (std::size_t i = 0; i < mobile_.size(); ++i) {
    if (!mobile_[i]) continue;
    speeds_[i] = params_.mean_speed;
    headings_[i] = rng_.uniform_real(0.0, 2.0 * std::numbers::pi);
  }
}

void GaussMarkovMobility::step(std::vector<Vec2>& positions) {
  AGENTNET_REQUIRE(positions.size() == mobile_.size(),
                   "position count does not match mobility mask");
  const double a = params_.alpha;
  const double var_scale = std::sqrt(1.0 - a * a);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    if (!mobile_[i]) continue;
    // Mean heading reverts to the current heading unless a wall is near,
    // in which case it points back toward the arena centre.
    double mean_heading = headings_[i];
    const Vec2 p = positions[i];
    const bool near_wall = p.x < bounds_.lo.x + params_.wall_margin ||
                           p.x > bounds_.hi.x - params_.wall_margin ||
                           p.y < bounds_.lo.y + params_.wall_margin ||
                           p.y > bounds_.hi.y - params_.wall_margin;
    if (near_wall) {
      const Vec2 centre = (bounds_.lo + bounds_.hi) * 0.5;
      mean_heading = std::atan2(centre.y - p.y, centre.x - p.x);
    }
    speeds_[i] = a * speeds_[i] + (1.0 - a) * params_.mean_speed +
                 var_scale * rng_.normal(0.0, params_.speed_stddev);
    if (speeds_[i] < 0.0) speeds_[i] = 0.0;
    headings_[i] = wrap_angle(
        headings_[i] + (1.0 - a) * wrap_angle(mean_heading - headings_[i]) +
        var_scale * rng_.normal(0.0, params_.heading_stddev));
    Vec2 next = p + Vec2{std::cos(headings_[i]), std::sin(headings_[i])} *
                        speeds_[i];
    positions[i] = bounds_.clamp(next);
  }
}

bool GaussMarkovMobility::is_stationary(std::size_t node) const {
  AGENTNET_ASSERT(node < mobile_.size());
  return !mobile_[node];
}

TraceMobility TraceMobility::record(MobilityModel& model,
                                    std::vector<Vec2> initial,
                                    std::size_t steps) {
  TraceMobility trace;
  trace.initial_ = initial;
  trace.stationary_.resize(initial.size());
  for (std::size_t i = 0; i < initial.size(); ++i)
    trace.stationary_[i] = model.is_stationary(i);
  std::vector<Vec2> positions = std::move(initial);
  trace.frames_.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    model.step(positions);
    trace.frames_.push_back(positions);
  }
  return trace;
}

void TraceMobility::step(std::vector<Vec2>& positions) {
  AGENTNET_REQUIRE(positions.size() == initial_.size(),
                   "position count does not match recorded trace");
  if (frames_.empty()) return;
  const std::size_t idx = std::min(cursor_, frames_.size() - 1);
  positions = frames_[idx];
  if (cursor_ < frames_.size()) ++cursor_;
}

bool TraceMobility::is_stationary(std::size_t node) const {
  AGENTNET_ASSERT(node < stationary_.size());
  return stationary_[node];
}

const std::vector<Vec2>& TraceMobility::frame(std::size_t i) const {
  AGENTNET_ASSERT(i < frames_.size());
  return frames_[i];
}

std::vector<Vec2> random_positions(std::size_t node_count, Aabb bounds,
                                   Rng& rng) {
  std::vector<Vec2> out(node_count);
  for (auto& p : out)
    p = {rng.uniform_real(bounds.lo.x, bounds.hi.x),
         rng.uniform_real(bounds.lo.y, bounds.hi.y)};
  return out;
}

}  // namespace agentnet
