// Node mobility models.
//
// The dynamic-routing scenario fixes roughly half the nodes (gateways are
// always stationary) and moves the rest with *random* per-node velocities
// (the paper's change vs. Kramer et al.'s constant velocity). The paper
// also runs every parameter setting against "the same configuration and
// movement path of nodes" — TraceMobility records one model's output once
// and replays it identically across settings.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "geom/vec2.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// Advances node positions one simulation step at a time. Models own all
/// per-node kinematic state; positions are the shared truth they mutate.
class MobilityModel {
 public:
  virtual ~MobilityModel() = default;

  /// Moves nodes one step. `positions` has one entry per node and is
  /// updated in place; implementations must keep positions inside the
  /// arena they were constructed with.
  virtual void step(std::vector<Vec2>& positions) = 0;

  /// True if the model will never move `node`.
  virtual bool is_stationary(std::size_t node) const = 0;

  /// Checkpoint support: per-node kinematic state and the model's RNG.
  /// Config-derived members (bounds, mobile mask, params) are not carried —
  /// the model is constructed normally before load_state overwrites the
  /// evolving state. Stateless models keep the no-op default.
  virtual void save_state(snapshot::ByteWriter&) const {}
  virtual void load_state(snapshot::ByteReader&) {}
};

/// Nothing moves (the network-mapping scenario).
class StationaryMobility final : public MobilityModel {
 public:
  void step(std::vector<Vec2>&) override {}
  bool is_stationary(std::size_t) const override { return true; }
};

/// Random-direction model with wall bounce. Each mobile node gets a speed
/// drawn uniformly from [min_speed, max_speed] (per-node random velocity)
/// and a random heading; headings re-randomise on wall contact and with a
/// small per-step turn probability so paths are not billiard-regular.
class RandomDirectionMobility final : public MobilityModel {
 public:
  struct Params {
    double min_speed = 0.5;
    double max_speed = 2.0;
    double turn_probability = 0.05;  ///< Chance per step of a new heading.
  };

  /// `mobile[i]` selects which nodes move; the rest are pinned.
  RandomDirectionMobility(Aabb bounds, std::vector<bool> mobile,
                          Params params, Rng rng);

  void step(std::vector<Vec2>& positions) override;
  bool is_stationary(std::size_t node) const override;
  double speed(std::size_t node) const;

  void save_state(snapshot::ByteWriter& w) const override {
    w.pod_vec(speeds_);
    w.size(headings_.size());
    for (const Vec2& h : headings_) {
      w.f64(h.x);
      w.f64(h.y);
    }
    rng_.save_state(w);
    w.boolean(initialised_);
  }
  void load_state(snapshot::ByteReader& r) override {
    r.pod_vec(speeds_);
    const std::size_t n = r.counted(16);
    headings_.resize(n);
    for (Vec2& h : headings_) {
      h.x = r.f64();
      h.y = r.f64();
    }
    rng_.load_state(r);
    initialised_ = r.boolean();
  }

 private:
  Aabb bounds_;
  std::vector<bool> mobile_;
  std::vector<double> speeds_;
  std::vector<Vec2> headings_;  // unit vectors
  Params params_;
  Rng rng_;
  bool initialised_ = false;
};

/// Random-waypoint model: move toward a waypoint at a per-leg speed drawn
/// from [min_speed, max_speed], pause, pick a new waypoint.
class RandomWaypointMobility final : public MobilityModel {
 public:
  struct Params {
    double min_speed = 0.5;
    double max_speed = 2.0;
    int pause_steps = 3;
  };

  RandomWaypointMobility(Aabb bounds, std::vector<bool> mobile, Params params,
                         Rng rng);

  void step(std::vector<Vec2>& positions) override;
  bool is_stationary(std::size_t node) const override;

  void save_state(snapshot::ByteWriter& w) const override {
    w.size(legs_.size());
    for (const Leg& leg : legs_) {
      w.f64(leg.target.x);
      w.f64(leg.target.y);
      w.f64(leg.speed);
      w.scalar(leg.pause_left);
      w.boolean(leg.active);
    }
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) override {
    const std::size_t n = r.counted(3 * 8 + 8 + 1);
    legs_.resize(n);
    for (Leg& leg : legs_) {
      leg.target.x = r.f64();
      leg.target.y = r.f64();
      leg.speed = r.f64();
      leg.pause_left = r.scalar<int>();
      leg.active = r.boolean();
    }
    rng_.load_state(r);
  }

 private:
  struct Leg {
    Vec2 target{};
    double speed = 0.0;
    int pause_left = 0;
    bool active = false;
  };

  Aabb bounds_;
  std::vector<bool> mobile_;
  std::vector<Leg> legs_;
  Params params_;
  Rng rng_;
};

/// Gauss–Markov model: speed and heading evolve as mean-reverting AR(1)
/// processes, producing smooth, temporally correlated paths — a common
/// MANET evaluation model that avoids random-waypoint's sharp turns.
/// Near an arena wall the mean heading is steered back toward the centre.
class GaussMarkovMobility final : public MobilityModel {
 public:
  struct Params {
    double mean_speed = 1.5;
    double speed_stddev = 0.5;
    double heading_stddev = 0.4;  ///< Radians.
    double alpha = 0.75;          ///< Memory level in [0, 1].
    /// Distance from a wall at which the mean heading turns inward.
    double wall_margin = 25.0;
  };

  GaussMarkovMobility(Aabb bounds, std::vector<bool> mobile, Params params,
                      Rng rng);

  void step(std::vector<Vec2>& positions) override;
  bool is_stationary(std::size_t node) const override;

  void save_state(snapshot::ByteWriter& w) const override {
    w.pod_vec(speeds_);
    w.pod_vec(headings_);
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) override {
    r.pod_vec(speeds_);
    r.pod_vec(headings_);
    rng_.load_state(r);
  }

 private:
  Aabb bounds_;
  std::vector<bool> mobile_;
  std::vector<double> speeds_;
  std::vector<double> headings_;  // radians
  Params params_;
  Rng rng_;
};

/// Replays a pre-recorded movement script. Construct via `record`, which
/// runs `model` for `steps` steps from `initial` and stores every frame;
/// replaying past the end holds the final frame (the network freezes).
class TraceMobility final : public MobilityModel {
 public:
  /// Default-constructs an empty trace (zero nodes, zero frames); assign
  /// the result of record() before use.
  TraceMobility() = default;

  static TraceMobility record(MobilityModel& model, std::vector<Vec2> initial,
                              std::size_t steps);

  /// Restarts playback from frame zero (fresh run, same movements).
  void reset() { cursor_ = 0; }

  void step(std::vector<Vec2>& positions) override;
  bool is_stationary(std::size_t node) const override;

  std::size_t frames() const { return frames_.size(); }
  const std::vector<Vec2>& frame(std::size_t i) const;
  const std::vector<Vec2>& initial() const { return initial_; }

  /// Only the playback cursor — the recorded frames are reconstructed from
  /// config (same model, same seed) before load_state runs.
  void save_state(snapshot::ByteWriter& w) const override {
    w.size(cursor_);
  }
  void load_state(snapshot::ByteReader& r) override { cursor_ = r.size(); }

 private:
  std::vector<Vec2> initial_;
  std::vector<std::vector<Vec2>> frames_;  // frames_[t] = positions after t+1 steps
  std::vector<bool> stationary_;
  std::size_t cursor_ = 0;
};

/// Uniform random node placement inside `bounds`.
std::vector<Vec2> random_positions(std::size_t node_count, Aabb bounds,
                                   Rng& rng);

}  // namespace agentnet
