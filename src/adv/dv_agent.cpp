#include "adv/dv_agent.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "fault/fault_injector.hpp"
#include "obs/obs.hpp"
#include "routing/connectivity.hpp"
#include "snapshot/snapshot.hpp"

namespace agentnet {

DvAgent::DvAgent(int id, NodeId start, DvAgentConfig config, Rng rng)
    : id_(id), location_(start), config_(config), rng_(rng) {
  AGENTNET_REQUIRE(config.table_size >= 2, "table size must be >= 2");
  AGENTNET_REQUIRE(config.entry_ttl >= 1, "entry ttl must be >= 1");
}

void DvAgent::trim(std::size_t now) {
  // Drop expired entries first, then evict least-recently-updated.
  for (auto it = table_.begin(); it != table_.end();) {
    if (now > it->second.updated + config_.entry_ttl)
      it = table_.erase(it);
    else
      ++it;
  }
  while (table_.size() > config_.table_size) {
    auto oldest = table_.begin();
    for (auto it = std::next(table_.begin()); it != table_.end(); ++it)
      if (it->second.updated < oldest->second.updated) oldest = it;
    table_.erase(oldest);
  }
}

void DvAgent::arrive(const Graph& graph, const std::vector<bool>& is_gateway,
                     std::size_t now) {
  AGENTNET_ASSERT(location_ < is_gateway.size());
  if (is_gateway[location_]) {
    table_[location_] = {0, now};
  } else {
    // Bellman-Ford relaxation against live neighbours the agent knows.
    std::uint32_t best = kInvalidDistance;
    for (NodeId w : graph.out_neighbors(location_)) {
      const auto it = table_.find(w);
      if (it == table_.end()) continue;
      best = std::min(best, it->second.distance + 1);
    }
    if (best != kInvalidDistance) {
      auto it = table_.find(location_);
      // Accept improvements outright; equal-or-worse refreshes only rewrite
      // the estimate (mobility makes old better values untrustworthy).
      if (it == table_.end() || best <= it->second.distance ||
          now > it->second.updated + config_.entry_ttl / 2) {
        table_[location_] = {best, now};
        AGENTNET_COUNT(kDvRelaxations);
      } else {
        it->second.updated = now;
      }
    }
  }
  trim(now);
}

NodeId DvAgent::decide(const Graph& graph, std::size_t now) {
  const auto neighbors = graph.out_neighbors(location_);
  if (neighbors.empty()) return location_;
  // Least-recently-refreshed neighbour (unknown first) via the shared
  // selection rule — the DV analogue of oldest-node. The board is a dummy:
  // with StigmergyMode::kOff it is never consulted.
  static const StigmergyBoard kNoBoard(1);
  return select_target(
      neighbors,
      [&](NodeId v) {
        const auto it = table_.find(v);
        return it == table_.end()
                   ? kNeverVisited
                   : static_cast<std::int64_t>(it->second.updated);
      },
      StigmergyMode::kOff, kNoBoard, location_, now, rng_,
      TieBreak::kSharedHash);
}

void DvAgent::move_to(NodeId target) { location_ = target; }

bool DvAgent::install(const Graph& graph, RoutingTables& tables,
                      const std::vector<bool>& is_gateway, std::size_t now) {
  if (is_gateway[location_]) return false;
  NodeId best_hop = kInvalidNode;
  std::uint32_t best_dist = kInvalidDistance;
  for (NodeId w : graph.out_neighbors(location_)) {
    const auto it = table_.find(w);
    if (it == table_.end()) continue;
    if (it->second.distance < best_dist) {
      best_dist = it->second.distance;
      best_hop = w;
    }
  }
  if (best_hop == kInvalidNode) return false;
  RouteEntry entry;
  entry.next_hop = best_hop;
  entry.gateway = kInvalidNode;  // DV routes toward the nearest gateway
  entry.hops = best_dist + 1;
  entry.installed_at = now;
  return tables.offer(location_, entry, now);
}

DvRoutingTaskResult run_dv_routing_task(const RoutingScenario& scenario,
                                        const DvRoutingTaskConfig& config,
                                        Rng rng) {
  AGENTNET_REQUIRE(config.population >= 1, "population must be >= 1");
  AGENTNET_REQUIRE(config.measure_from < config.steps,
                   "measure_from must precede steps");
  const FaultPlan& plan = config.faults;
  plan.validate();
  obs::ScopedPhase setup_phase(obs::Phase::kSetup);
  World world = scenario.make_world();
  const std::size_t n = world.node_count();
  const auto& is_gateway = scenario.is_gateway();
  RoutingTables tables(n, config.route_policy);

  std::vector<DvAgent> agents;
  agents.reserve(static_cast<std::size_t>(config.population));
  for (int a = 0; a < config.population; ++a)
    agents.emplace_back(a, static_cast<NodeId>(rng.index(n)), config.agent,
                        rng.fork(static_cast<std::uint64_t>(a) + 1));

  // Fork only when faults are live so an inert plan keeps the fault-free
  // baseline on exactly its historical RNG sequence.
  std::optional<FaultInjector> injector;
  if (plan.any()) {
    Rng fault_stream = rng.fork(0xFA11);
    injector.emplace(plan, fault_stream);
  }

  // Intra-run parallelism: each DV agent owns its table and RNG, so arrive
  // and decide fan over the agent engine. Inactive (the default) = exact
  // serial loops.
  const AgentParallel par(config.agent_parallel);

  DvRoutingTaskResult result;
  result.connectivity.reserve(config.steps);
  // Keyed on (world epoch, table contents): skips the walk when neither
  // the edge set nor the tables changed since the last measurement.
  ConnectivityCache conn_cache;

  // Checkpoint/restore: agents are homogeneous (config.agent, no respawn
  // path), so only their evolving state is carried. The run RNG is not —
  // nothing draws from the local after setup.
  const auto save_run = [&](snapshot::ByteWriter& w) {
    world.save_state(w);
    tables.save_state(w);
    w.boolean(injector.has_value());
    if (injector) injector->save_state(w);
    w.size(agents.size());
    for (const DvAgent& agent : agents) agent.save_state(w);
    conn_cache.save_state(w);
    w.pod_vec(result.connectivity);
    w.size(result.migration_bytes);
    w.size(result.agents_lost);
  };
  const auto load_run = [&](snapshot::ByteReader& r) {
    world.load_state(r);
    tables.load_state(r);
    AGENTNET_REQUIRE(r.boolean() == injector.has_value(),
                     "snapshot: fault plan mismatch");
    if (injector) injector->load_state(r);
    const std::size_t live = r.counted(8);
    AGENTNET_REQUIRE(live <= static_cast<std::size_t>(config.population),
                     "snapshot: population exceeds configuration");
    agents.clear();
    agents.reserve(live);
    for (std::size_t i = 0; i < live; ++i) {
      agents.emplace_back(0, NodeId{0}, config.agent, Rng(0));
      agents.back().load_state(r);
    }
    conn_cache.load_state(r);
    r.pod_vec(result.connectivity);
    result.migration_bytes = r.size();
    result.agents_lost = r.size();
  };

  setup_phase.stop();
  std::size_t resume_at = 0;
  if (config.checkpoint && config.checkpoint->resuming())
    resume_at = config.checkpoint->restore(load_run);
  for (std::size_t t = resume_at; t < config.steps; ++t) {
    if (config.checkpoint && config.checkpoint->save_due(t))
      config.checkpoint->save(t, save_run);
    AGENTNET_OBS_PHASE(kStep);
    const Graph& live =
        injector ? injector->live_graph(world, world.step()) : world.graph();
    {
      AGENTNET_OBS_PHASE(kSense);
      par.for_each(agents.size(), [&](std::size_t i) {
        agents[i].arrive(live, is_gateway, t);
      });
    }
    std::vector<NodeId> targets(agents.size());
    {
      AGENTNET_OBS_PHASE(kDecide);
      par.for_each(agents.size(), [&](std::size_t i) {
        targets[i] = agents[i].decide(live, t);
      });
    }
    {
      AGENTNET_OBS_PHASE(kMove);
      std::vector<char> lost;
      bool any_lost = false;
      for (std::size_t i = 0; i < agents.size(); ++i) {
        if (targets[i] != agents[i].location()) {
          if (injector && plan.agent_loss_probability > 0.0 &&
              injector->lose_in_transit()) {
            if (lost.empty()) lost.assign(agents.size(), 0);
            lost[i] = 1;
            any_lost = true;
            ++result.agents_lost;
            AGENTNET_COUNT(kAgentsLost);
            continue;
          }
          result.migration_bytes += agents[i].state_size_bytes();
          AGENTNET_COUNT(kAgentHops);
        }
        agents[i].move_to(targets[i]);
        agents[i].install(live, tables, is_gateway, t);
      }
      if (any_lost) {
        std::size_t keep = 0;
        for (std::size_t i = 0; i < agents.size(); ++i)
          if (!lost[i]) {
            if (keep != i) agents[keep] = std::move(agents[i]);
            ++keep;
          }
        agents.erase(agents.begin() + static_cast<std::ptrdiff_t>(keep),
                     agents.end());
      }
    }
    world.advance();
    AGENTNET_OBS_PHASE(kMeasure);
    if (injector && plan.topology_faults()) {
      const Graph& measured = injector->live_graph(world, world.step());
      result.connectivity.push_back(
          measure_connectivity(measured, tables, is_gateway, 0, par)
              .fraction());
    } else {
      // Fault-free topology: walk the frozen CSR snapshot (bit-identical
      // to walking world.graph()).
      result.connectivity.push_back(
          conn_cache.measure(world, tables, is_gateway, 0, par).fraction());
    }
  }
  result.final_population = agents.size();
  AGENTNET_OBS_PHASE(kSummarize);
  RunningStats window;
  for (std::size_t t = config.measure_from; t < config.steps; ++t)
    window.add(result.connectivity[t]);
  result.mean_connectivity = window.mean();
  result.stddev_connectivity = window.stddev();
  return result;
}

}  // namespace agentnet
