// Distance-vector-carrying agents — the heavyweight related-work design
// (after Amin & Mikler's agent-based distance vector routing [11] and
// Choudhury et al.'s MARP [10], which the paper credits with "about 4
// times more overhead than ours").
//
// Where the paper's oldest-node agent carries only a bounded visit history
// and a single reverse-path hint, a DV agent carries a table of estimated
// gateway distances for every node it knows about, performs Bellman-Ford
// relaxation at each node it lands on, and installs the argmin-neighbour
// route. It buys shorter routes and faster spread of distance information
// at a multiple of the migration bytes — bench extH measures whether the
// trade is worth it, reproducing the paper's overhead argument.
#pragma once

#include <cstdint>
#include <vector>

#include "common/agent_parallel.hpp"
#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "core/routing_task.hpp"
#include "core/selection.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// Sentinel for "no known distance".
inline constexpr std::uint32_t kInvalidDistance = 0xffffffffu;

struct DvAgentConfig {
  /// Carried distance-table capacity (entries); the overhead knob.
  std::size_t table_size = 40;
  /// Entries older than this many steps are dropped — stale distances are
  /// poison in a mobile network.
  std::size_t entry_ttl = 60;
};

class DvAgent {
 public:
  struct DvEntry {
    std::uint32_t distance = 0;  ///< Estimated hops to the nearest gateway.
    std::size_t updated = 0;     ///< Step of last refresh.
  };

  DvAgent(int id, NodeId start, DvAgentConfig config, Rng rng);

  NodeId location() const { return location_; }
  /// Flat sorted table; iterates in ascending node order like the std::map
  /// it replaced, so trims and installs stay bit-identical.
  const FlatMap<NodeId, DvEntry>& table() const { return table_; }
  const DvAgentConfig& config() const { return config_; }

  /// Arrival processing: age out stale entries, set the gateway anchor,
  /// Bellman-Ford relax this node against its live neighbours.
  void arrive(const Graph& graph, const std::vector<bool>& is_gateway,
              std::size_t now);

  /// Movement: toward the least-recently-refreshed neighbour (unknown
  /// first) — the DV analogue of oldest-node, so movement quality is
  /// comparable and the overhead difference is the carried table.
  NodeId decide(const Graph& graph, std::size_t now);

  void move_to(NodeId target);

  /// Installs the argmin-neighbour route at the current node. Returns true
  /// when a route was offered and accepted.
  bool install(const Graph& graph, RoutingTables& tables,
               const std::vector<bool>& is_gateway, std::size_t now);

  /// Serialized size: 16 bytes per table entry + the 64-byte stub. For the
  /// default table_size this is ~4x the paper agent's history-10 size —
  /// matching the related-work overhead ratio the paper quotes.
  std::size_t state_size_bytes() const {
    return 64 + 16 * table_.size();
  }

  /// Checkpoint support: id, location, carried table and RNG; config is
  /// rebuilt from the task config.
  void save_state(snapshot::ByteWriter& w) const {
    w.scalar(id_);
    w.scalar(location_);
    table_.save_state(w, [](snapshot::ByteWriter& out, const DvEntry& e) {
      out.scalar(e.distance);
      out.size(e.updated);
    });
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    id_ = r.scalar<int>();
    location_ = r.scalar<NodeId>();
    table_.load_state(r, [](snapshot::ByteReader& in, DvEntry& e) {
      e.distance = in.scalar<std::uint32_t>();
      e.updated = in.size();
    });
    rng_.load_state(r);
  }

 private:
  void trim(std::size_t now);

  int id_;
  NodeId location_;
  DvAgentConfig config_;
  FlatMap<NodeId, DvEntry> table_;
  Rng rng_;
};

struct DvRoutingTaskConfig {
  int population = 100;
  DvAgentConfig agent{};
  std::size_t steps = 300;
  std::size_t measure_from = 150;
  RoutePolicy route_policy{30};
  /// The unified fault model (fault/fault_plan.hpp): topology faults mask
  /// the graph agents walk and the measurement sees; agent_loss_probability
  /// kills migrating DV agents in transit.
  FaultPlan faults;
  /// Intra-run agent parallelism (AGENTNET_AGENT_THREADS): arrive
  /// (relaxation), decide and the per-root connectivity walks fan over the
  /// shared agent pool — each DV agent owns its table and RNG, so the
  /// phases are embarrassingly parallel. Move/install stay serial (shared
  /// tables, fault draws). Bit-identical at every thread count; threads =
  /// 1 (the default) is the exact serial path.
  AgentParallelConfig agent_parallel = AgentParallelConfig::from_env();
  /// Checkpoint/restore handle for this run (nullptr = disabled). Owned by
  /// the caller; see snapshot/snapshot.hpp and docs/ROBUSTNESS.md.
  snapshot::RunCheckpointPort* checkpoint = nullptr;
};

struct DvRoutingTaskResult {
  std::vector<double> connectivity;
  double mean_connectivity = 0.0;
  double stddev_connectivity = 0.0;
  std::size_t migration_bytes = 0;
  /// Failure-injection bookkeeping (zero on fault-free runs).
  std::size_t agents_lost = 0;
  std::size_t final_population = 0;
};

/// Same loop shape and measurement protocol as run_routing_task.
DvRoutingTaskResult run_dv_routing_task(const RoutingScenario& scenario,
                                        const DvRoutingTaskConfig& config,
                                        Rng rng);

}  // namespace agentnet
