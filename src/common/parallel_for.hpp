// Static index-chunked parallel dispatch over a ThreadPool.
//
// The experiment harness's determinism contract (docs/ARCHITECTURE.md,
// "Determinism & parallelism") only needs indices to be *executed* in any
// order and *combined* in index order; this header provides the execution
// half. fn(i) must be safe to call concurrently for distinct i — in
// practice, each index writes its own pre-allocated slot.
#pragma once

#include <algorithm>
#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"

namespace agentnet {

/// Runs fn(i) for every i in [0, n), splitting the range into one
/// contiguous, statically assigned chunk per pool worker. Blocks until all
/// chunks finish, then rethrows the first failing chunk's exception (in
/// chunk order).
template <typename Fn>
void parallel_for(ThreadPool& pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(pool.size(), n);
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;
  std::vector<std::future<void>> done;
  done.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t end = begin + base + (c < extra ? 1 : 0);
    done.push_back(pool.submit([&fn, begin, end] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    }));
    begin = end;
  }
  // Wait for everything first so fn stays alive, then surface failures.
  for (auto& f : done) f.wait();
  for (auto& f : done) f.get();
}

/// Convenience form: resolves the worker count (0 → AGENTNET_THREADS /
/// hardware_concurrency) and builds a transient pool. When one worker
/// suffices this is the *exact* serial loop `for (i) fn(i)` — no pool, no
/// threads — so `AGENTNET_THREADS=1` reproduces pre-pool behaviour.
template <typename Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t threads = 0) {
  std::size_t want = threads == 0 ? ThreadPool::default_threads() : threads;
  want = std::min(want, n);
  if (want <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(want);
  parallel_for(pool, n, std::forward<Fn>(fn));
}

}  // namespace agentnet
