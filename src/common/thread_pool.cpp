#include "common/thread_pool.hpp"

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet {

std::size_t ThreadPool::default_threads() {
  const int configured = bench_threads();
  if (configured > 0) return static_cast<std::size_t>(configured);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_threads();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> done = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    AGENTNET_REQUIRE(!stop_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(wrapped));
  }
  cv_.notify_one();
  return done;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions land in the submitter's future
  }
}

}  // namespace agentnet
