#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet {

namespace {

// Lazy so the environment is consulted exactly once, on first logging use
// — examples and benches pick up AGENTNET_LOG_LEVEL with no code edits.
std::atomic<LogLevel>& level_ref() {
  static std::atomic<LogLevel> level{env_log_level(LogLevel::kWarn)};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { level_ref().store(level); }

LogLevel log_level() { return level_ref().load(); }

LogLevel parse_log_level(const std::string& text) {
  std::string lower;
  lower.reserve(text.size());
  for (char c : text)
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  if (lower == "debug" || lower == "0") return LogLevel::kDebug;
  if (lower == "info" || lower == "1") return LogLevel::kInfo;
  if (lower == "warn" || lower == "2") return LogLevel::kWarn;
  if (lower == "error" || lower == "3") return LogLevel::kError;
  if (lower == "off" || lower == "4") return LogLevel::kOff;
  throw ConfigError("log level must be debug|info|warn|error|off or 0-4, got " +
                    text);
}

LogLevel env_log_level(LogLevel fallback) {
  const auto text = env_string("AGENTNET_LOG_LEVEL");
  return text ? parse_log_level(*text) : fallback;
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level() || level == LogLevel::kOff) return;
  std::fprintf(stderr, "[agentnet %s] %s\n", level_name(level),
               message.c_str());
}

}  // namespace agentnet
