// Deterministic intra-run agent parallelism (AGENTNET_AGENT_THREADS).
//
// AgentParallel fans the per-step agent phases — sense, decide,
// group-disjoint exchanges, per-root measurement walks, per-node traffic
// service — over a single process-shared worker pool. It is the intra-run
// counterpart of the per-run engine (common/parallel_for.hpp) and obeys
// the same contract (docs/ARCHITECTURE.md, "Determinism & parallelism"):
//
//   * threads <= 1 (the default) runs the *exact* serial loop on the
//     caller's thread — no pool, no wrappers — so `AGENTNET_AGENT_THREADS`
//     unset reproduces pre-engine behaviour bit for bit.
//   * Parallel bodies follow a two-phase read/commit step: fn(i) reads
//     frozen pre-step state (CsrView, stigmergy stamps, pheromone rows)
//     and writes index i's pre-allocated slot; the caller commits slots in
//     index order afterwards. No shared RNG draws and no trace events
//     inside fn — task loops pre-draw fault decisions and replay events
//     serially, so every output byte is identical at any thread count.
//   * Worker chunks run under the caller's RunObs slot (ObsRunScope), so
//     relaxed-atomic counter bumps land in the right replication no matter
//     which pool thread executes them.
//
// All runs share one agent pool (sized on first use): nested parallelism
// — AGENTNET_THREADS runs × AGENTNET_AGENT_THREADS agent batches — queues
// into the same fixed set of workers instead of multiplying thread counts.
#pragma once

#include <algorithm>
#include <cstddef>
#include <future>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "obs/obs_level.hpp"
#include "obs/scope.hpp"

namespace agentnet {

struct AgentParallelConfig {
  /// Worker threads for intra-run agent phases. 1 = the exact serial
  /// path; 0 = one per hardware thread.
  std::size_t threads = 1;

  /// Reads AGENTNET_AGENT_THREADS: unset/empty → 1 (serial), 0 → one per
  /// hardware thread. Mirrors ObsConfig::from_env so task configs embed
  /// it and the environment drives every harness without CLI changes.
  static AgentParallelConfig from_env();
};

namespace detail {
/// The process-shared agent pool, created on first use with `threads`
/// workers (later callers reuse it whatever they ask for).
ThreadPool& agent_pool(std::size_t threads);
/// 0 → hardware concurrency; anything else unchanged.
std::size_t resolve_agent_threads(std::size_t threads);
}  // namespace detail

class AgentParallel {
 public:
  /// Inactive engine: every for_each is the plain serial loop.
  AgentParallel() = default;
  explicit AgentParallel(const AgentParallelConfig& config)
      : threads_(detail::resolve_agent_threads(config.threads)) {
    if (threads_ > 1) pool_ = &detail::agent_pool(threads_);
  }

  std::size_t threads() const { return threads_; }
  /// False selects the exact serial loop in the for_each variants.
  bool active() const { return pool_ != nullptr; }

  /// Runs fn(i) for every i in [0, n). fn must be safe to call
  /// concurrently for distinct i — each index writes only its own slot.
  template <typename Fn>
  void for_each(std::size_t n, Fn&& fn) const {
    if (!active() || n < 2) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    dispatch(n, [&fn](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }

  /// Like for_each, but hands fn(i, scratch) a worker-local scratch built
  /// by make() — one per chunk, reused across the chunk's indices — for
  /// bodies that need heavy temporaries (pooled bitsets, BFS state).
  /// fn must reset whatever it reads: results may depend on scratch
  /// *capacity* reuse but never on scratch contents from a previous index.
  template <typename Make, typename Fn>
  void for_each_scratch(std::size_t n, Make&& make, Fn&& fn) const {
    if (!active() || n < 2) {
      auto scratch = make();
      for (std::size_t i = 0; i < n; ++i) fn(i, scratch);
      return;
    }
    dispatch(n, [&make, &fn](std::size_t begin, std::size_t end) {
      auto scratch = make();
      for (std::size_t i = begin; i < end; ++i) fn(i, scratch);
    });
  }

 private:
  /// Static contiguous chunking (same shape as parallel_for), each chunk
  /// running under the dispatching thread's RunObs slot. Blocks until all
  /// chunks finish, then rethrows the first failure in chunk order.
  template <typename Body>
  void dispatch(std::size_t n, Body&& body) const {
#if AGENTNET_OBS_LEVEL >= 1
    obs::count(obs::Counter::kAgentParallelBatches);
    obs::RunObs& slot = obs::current_obs();
#endif
    const std::size_t chunks = std::min(threads_, n);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::vector<std::future<void>> done;
    done.reserve(chunks);
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t end = begin + base + (c < extra ? 1 : 0);
      done.push_back(pool_->submit([&body, begin, end
#if AGENTNET_OBS_LEVEL >= 1
                                    ,
                                    &slot
#endif
      ] {
#if AGENTNET_OBS_LEVEL >= 1
        obs::ObsRunScope scope(slot);
#endif
        body(begin, end);
      }));
      begin = end;
    }
    for (auto& f : done) f.wait();
    for (auto& f : done) f.get();
  }

  ThreadPool* pool_ = nullptr;
  std::size_t threads_ = 1;
};

}  // namespace agentnet
