// Principled A-vs-B comparison of run samples: Welch's t-test and effect
// size. The paper draws "X outperforms Y" conclusions from 40-run means;
// this gives the benches (and downstream users) a way to say it with a
// p-value instead of eyeballing two numbers.
#pragma once

#include "common/stats.hpp"

namespace agentnet {

struct Comparison {
  double mean_a = 0.0;
  double mean_b = 0.0;
  double difference = 0.0;        ///< mean_a − mean_b.
  double t_statistic = 0.0;       ///< Welch's t.
  double degrees_of_freedom = 0;  ///< Welch–Satterthwaite.
  /// Two-sided p-value for H0: means equal (normal approximation of the
  /// t distribution, adequate at the df the harness produces).
  double p_value = 1.0;
  /// Cohen's d with pooled standard deviation.
  double effect_size = 0.0;

  /// Convention used by the benches: significant at 5%.
  bool significant() const { return p_value < 0.05; }
};

/// Welch's unequal-variance t-test between two independent samples. Both
/// samples need >= 2 observations and nonzero combined variance; with zero
/// variance the comparison degenerates (p = 0 if means differ, else 1).
Comparison compare_samples(const RunningStats& a, const RunningStats& b);

/// Standard normal CDF (used for the p-value; exposed for tests).
double normal_cdf(double z);

}  // namespace agentnet
