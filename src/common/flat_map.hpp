// Sorted-vector map for the per-step hot paths.
//
// The agent systems keep small per-node / per-agent tables (visit history,
// pheromone rows, distance vectors, LSA databases) that used to be
// std::map<NodeId, …>: one heap node per entry and pointer-chasing on every
// per-step scan. FlatMap stores the entries in one contiguous vector sorted
// by key: lookups are binary search, inserts shift the tail, and iteration
// is a linear walk over cache lines.
//
// CONTRACT (docs/ARCHITECTURE.md, "bit-identical iteration order"): every
// operation matches std::map semantics exactly — ascending-key iteration,
// insert-if-absent emplace, erase returning the successor — so replacing a
// std::map with a FlatMap cannot change a single output bit.
#pragma once

#include <algorithm>
#include <initializer_list>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

template <class Key, class Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  FlatMap() = default;
  FlatMap(std::initializer_list<value_type> init) {
    for (const auto& kv : init) insert_or_assign(kv.first, kv.second);
  }

  iterator begin() { return entries_.begin(); }
  iterator end() { return entries_.end(); }
  const_iterator begin() const { return entries_.begin(); }
  const_iterator end() const { return entries_.end(); }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  iterator find(const Key& key) {
    auto it = lower_bound(key);
    return it != end() && it->first == key ? it : end();
  }
  const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return it != end() && it->first == key ? it : end();
  }

  bool contains(const Key& key) const { return find(key) != end(); }

  const Value& at(const Key& key) const {
    auto it = find(key);
    AGENTNET_REQUIRE(it != end(), "FlatMap::at: key not present");
    return it->second;
  }

  /// std::map semantics: default-constructs the value on a miss.
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == end() || it->first != key)
      it = entries_.insert(it, value_type{key, Value{}});
    return it->second;
  }

  /// Inserts only when absent (std::map::emplace for a (key, value) pair).
  std::pair<iterator, bool> emplace(const Key& key, Value value) {
    auto it = lower_bound(key);
    if (it != end() && it->first == key) return {it, false};
    it = entries_.insert(it, value_type{key, std::move(value)});
    return {it, true};
  }

  std::pair<iterator, bool> insert_or_assign(const Key& key, Value value) {
    auto it = lower_bound(key);
    if (it != end() && it->first == key) {
      it->second = std::move(value);
      return {it, false};
    }
    it = entries_.insert(it, value_type{key, std::move(value)});
    return {it, true};
  }

  /// Erases the entry at `pos`; returns the iterator past it (std::map's
  /// erase-while-iterating pattern carries over unchanged).
  iterator erase(iterator pos) { return entries_.erase(pos); }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == end()) return 0;
    entries_.erase(it);
    return 1;
  }

  friend bool operator==(const FlatMap&, const FlatMap&) = default;

  /// Checkpoint support. Keys (integral) go through scalar(); the caller
  /// supplies the value codec. load_state enforces strictly-ascending key
  /// order so a tampered stream cannot break the binary-search invariant.
  template <class WriteValueFn>
  void save_state(snapshot::ByteWriter& w, WriteValueFn&& write_value) const {
    w.size(entries_.size());
    for (const auto& [key, value] : entries_) {
      w.scalar(key);
      write_value(w, value);
    }
  }
  template <class ReadValueFn>
  void load_state(snapshot::ByteReader& r, ReadValueFn&& read_value) {
    const std::size_t n = r.counted(8);
    entries_.clear();
    entries_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Key key = r.template scalar<Key>();
      AGENTNET_REQUIRE(entries_.empty() || entries_.back().first < key,
                       "snapshot: FlatMap keys not strictly ascending");
      Value value{};
      read_value(r, value);
      entries_.emplace_back(std::move(key), std::move(value));
    }
  }

 private:
  std::vector<value_type> entries_;
};

}  // namespace agentnet
