// Environment-variable configuration used by benches and examples.
//
// The figure benches default to quick settings so `for b in build/bench/*`
// stays fast; AGENTNET_RUNS / AGENTNET_FULL select paper-fidelity sweeps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace agentnet {

/// Raw lookup; nullopt when the variable is unset or empty.
std::optional<std::string> env_string(const std::string& name);

/// Integer lookup; throws ConfigError when set but unparseable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Double lookup; throws ConfigError when set but unparseable.
double env_double(const std::string& name, double fallback);

/// Boolean lookup: 1/true/yes/on (case-insensitive) → true; 0/false/no/off
/// → false; throws ConfigError otherwise.
bool env_bool(const std::string& name, bool fallback);

/// Number of independent runs to average (AGENTNET_RUNS, default given by
/// caller; the paper uses 40).
int bench_runs(int fallback);

/// Whether to run full paper-scale sweeps (AGENTNET_FULL, default false).
bool bench_full();

/// Worker threads for multi-run experiments (AGENTNET_THREADS). 0 / unset
/// means "one per hardware thread"; 1 selects the exact serial path.
/// Results are bit-identical at every setting (see docs/ARCHITECTURE.md).
int bench_threads();

}  // namespace agentnet
