// Fixed-size dense bitset with popcount and bulk union — the representation
// behind agents' edge-knowledge stores (n² bits for an n-node network is a
// few KiB at agentnet's scales, and whole-knowledge merges become a short
// run of OR instructions).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(std::size_t bit_count)
      : bit_count_(bit_count), words_((bit_count + 63) / 64, 0) {}

  std::size_t size() const { return bit_count_; }

  bool test(std::size_t i) const {
    AGENTNET_ASSERT(i < bit_count_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  /// Sets bit i; returns true when the bit was previously clear.
  bool set(std::size_t i) {
    AGENTNET_ASSERT(i < bit_count_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) return false;
    w |= mask;
    ++count_;
    return true;
  }

  void reset(std::size_t i) {
    AGENTNET_ASSERT(i < bit_count_);
    const std::uint64_t mask = std::uint64_t{1} << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    if (w & mask) {
      w &= ~mask;
      --count_;
    }
  }

  /// Number of set bits (tracked incrementally; O(1)).
  std::size_t count() const { return count_; }

  /// this |= other. Sizes must match. Returns bits newly set.
  std::size_t merge(const DenseBitset& other) {
    AGENTNET_REQUIRE(bit_count_ == other.bit_count_,
                     "bitset size mismatch in merge");
    std::size_t added = 0;
    for (std::size_t k = 0; k < words_.size(); ++k) {
      const std::uint64_t before = words_[k];
      const std::uint64_t after = before | other.words_[k];
      if (after != before) {
        added += static_cast<std::size_t>(std::popcount(after ^ before));
        words_[k] = after;
      }
    }
    count_ += added;
    return added;
  }

  /// Number of bits set in (this ∩ other).
  std::size_t intersection_count(const DenseBitset& other) const {
    AGENTNET_REQUIRE(bit_count_ == other.bit_count_,
                     "bitset size mismatch in intersection");
    std::size_t n = 0;
    for (std::size_t k = 0; k < words_.size(); ++k)
      n += static_cast<std::size_t>(
          std::popcount(words_[k] & other.words_[k]));
    return n;
  }

  void clear() {
    for (auto& w : words_) w = 0;
    count_ = 0;
  }

  friend bool operator==(const DenseBitset&, const DenseBitset&) = default;

  /// Checkpoint support. load_state recomputes the popcount rather than
  /// trusting the stream, so a corrupted word can never desync count().
  void save_state(snapshot::ByteWriter& w) const {
    w.size(bit_count_);
    w.pod_vec(words_);
  }
  void load_state(snapshot::ByteReader& r) {
    bit_count_ = r.size();
    r.pod_vec(words_);
    AGENTNET_REQUIRE(words_.size() == (bit_count_ + 63) / 64,
                     "snapshot: bitset word count mismatch");
    count_ = 0;
    for (std::uint64_t w64 : words_)
      count_ += static_cast<std::size_t>(std::popcount(w64));
  }

 private:
  std::size_t bit_count_ = 0;
  std::vector<std::uint64_t> words_;
  std::size_t count_ = 0;
};

}  // namespace agentnet
