// Column-oriented result tables: aligned text for terminals and CSV for
// downstream plotting. Every bench binary reports through this so figure
// output is uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace agentnet {

/// A simple rectangular table. Cells are strings, doubles or integers;
/// numeric cells are formatted with a per-table precision.
class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers);

  /// Number of fractional digits used for double cells (default 3).
  void set_precision(int digits);

  Table& add_row(std::vector<Cell> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }
  const Cell& at(std::size_t row, std::size_t col) const;

  /// Pretty-prints with aligned columns and a header rule.
  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  void write_csv(std::ostream& os) const;
  std::string to_string() const;
  std::string to_csv() const;

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace agentnet
