#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace agentnet {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AGENTNET_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::set_precision(int digits) {
  AGENTNET_REQUIRE(digits >= 0 && digits <= 12, "table precision 0..12");
  precision_ = digits;
}

Table& Table::add_row(std::vector<Cell> cells) {
  AGENTNET_REQUIRE(cells.size() == headers_.size(),
                   "row width does not match header count");
  rows_.push_back(std::move(cells));
  return *this;
}

const Table::Cell& Table::at(std::size_t row, std::size_t col) const {
  AGENTNET_ASSERT(row < rows_.size() && col < headers_.size());
  return rows_[row][col];
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> formatted;
  formatted.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells[c] = format_cell(row[c]);
      widths[c] = std::max(widths[c], cells[c].size());
    }
    formatted.push_back(std::move(cells));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    os << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& cells : formatted) emit(cells);
}

namespace {
std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char ch : s) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}
}  // namespace

void Table::write_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << csv_escape(headers_[c]) << (c + 1 == headers_.size() ? "\n" : ",");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << csv_escape(format_cell(row[c]))
         << (c + 1 == row.size() ? "\n" : ",");
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

}  // namespace agentnet
