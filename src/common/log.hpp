// Minimal leveled logging to stderr. Simulations are deterministic and
// quiet by default; set level to Debug for per-step traces in examples,
// or export AGENTNET_LOG_LEVEL=debug to do the same without code edits.
// Lines carry no timestamps by design: the same run logs byte-identical
// output every time, so logs can be diffed like any other artifact.
#pragma once

#include <sstream>
#include <string>

namespace agentnet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Initialised from
/// AGENTNET_LOG_LEVEL on first use, defaulting to kWarn so library users
/// see problems but not chatter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Parses "debug" | "info" | "warn" | "error" | "off" (case-insensitive)
/// or a numeric level 0–4; throws ConfigError on anything else.
LogLevel parse_log_level(const std::string& text);

/// The level AGENTNET_LOG_LEVEL selects, or `fallback` when unset.
LogLevel env_log_level(LogLevel fallback);

/// Emits one line "<LEVEL> <message>" to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace agentnet

#define AGENTNET_LOG(level) ::agentnet::detail::LogLine(level)
#define AGENTNET_DEBUG() AGENTNET_LOG(::agentnet::LogLevel::kDebug)
#define AGENTNET_INFO() AGENTNET_LOG(::agentnet::LogLevel::kInfo)
#define AGENTNET_WARN() AGENTNET_LOG(::agentnet::LogLevel::kWarn)
#define AGENTNET_ERROR() AGENTNET_LOG(::agentnet::LogLevel::kError)
