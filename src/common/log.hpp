// Minimal leveled logging to stderr. Simulations are deterministic and
// quiet by default; set level to Debug for per-step traces in examples.
#pragma once

#include <sstream>
#include <string>

namespace agentnet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see problems but not chatter.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line "<LEVEL> <message>" to stderr if enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace agentnet

#define AGENTNET_LOG(level) ::agentnet::detail::LogLine(level)
#define AGENTNET_DEBUG() AGENTNET_LOG(::agentnet::LogLevel::kDebug)
#define AGENTNET_INFO() AGENTNET_LOG(::agentnet::LogLevel::kInfo)
#define AGENTNET_WARN() AGENTNET_LOG(::agentnet::LogLevel::kWarn)
#define AGENTNET_ERROR() AGENTNET_LOG(::agentnet::LogLevel::kError)
