// Fixed-size worker pool for fanning independent work across cores.
//
// The experiment harness uses it to run replications in parallel: each run
// is a pure function of (config, seed), so the only coordination needed is
// handing out indices and joining at the end (see parallel_for.hpp). Sized
// by AGENTNET_THREADS (common/env.hpp); `AGENTNET_THREADS=1` means callers
// take the plain serial path and no pool is built at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace agentnet {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 → default_threads(). Workers live until
  /// destruction, which drains the queue and joins.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task. The returned future's get() rethrows any exception
  /// the task threw, so failures on worker threads are never lost.
  std::future<void> submit(std::function<void()> task);

  /// AGENTNET_THREADS when set (≥ 1), else hardware_concurrency (≥ 1).
  static std::size_t default_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace agentnet
