// key=value command-line options for the examples and the experiment CLI.
//
//   Options opts = Options::parse(argc, argv);
//   auto nodes = opts.get_int("nodes", 250);
//   auto policy = opts.get_string("policy", "oldest");
//   opts.finish();   // throws on unrecognised keys (typo guard)
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace agentnet {

class Options {
 public:
  /// Parses argv[1..] as key=value tokens. A bare token (no '=') is
  /// treated as a boolean flag set to true. Throws ConfigError on an
  /// empty key or a repeated key.
  static Options parse(int argc, const char* const* argv);
  /// Convenience for tests.
  static Options parse(const std::vector<std::string>& args);

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key, std::string fallback);
  std::int64_t get_int(const std::string& key, std::int64_t fallback);
  double get_double(const std::string& key, double fallback);
  bool get_bool(const std::string& key, bool fallback);

  /// Keys that were supplied but never queried (usually typos).
  std::vector<std::string> unrecognized() const;
  /// Throws ConfigError listing unrecognised keys, if any.
  void finish() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> queried_;
};

}  // namespace agentnet
