#include "common/compare.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace agentnet {

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

Comparison compare_samples(const RunningStats& a, const RunningStats& b) {
  AGENTNET_REQUIRE(a.count() >= 2 && b.count() >= 2,
                   "need >= 2 observations per sample");
  Comparison cmp;
  cmp.mean_a = a.mean();
  cmp.mean_b = b.mean();
  cmp.difference = a.mean() - b.mean();

  const double na = static_cast<double>(a.count());
  const double nb = static_cast<double>(b.count());
  const double va = a.variance() / na;
  const double vb = b.variance() / nb;
  const double pooled_sd = std::sqrt(
      ((na - 1.0) * a.variance() + (nb - 1.0) * b.variance()) /
      (na + nb - 2.0));
  cmp.effect_size = pooled_sd > 0.0 ? cmp.difference / pooled_sd : 0.0;

  if (va + vb <= 0.0) {
    // Degenerate: identical constants or a genuinely deterministic pair.
    cmp.t_statistic = cmp.difference == 0.0 ? 0.0
                      : cmp.difference > 0.0
                          ? std::numeric_limits<double>::infinity()
                          : -std::numeric_limits<double>::infinity();
    cmp.degrees_of_freedom = na + nb - 2.0;
    cmp.p_value = cmp.difference == 0.0 ? 1.0 : 0.0;
    return cmp;
  }

  cmp.t_statistic = cmp.difference / std::sqrt(va + vb);
  cmp.degrees_of_freedom =
      (va + vb) * (va + vb) /
      (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
  // Normal approximation; conservative enough at df >= ~10 (the harness
  // runs 6-40 repetitions per setting).
  cmp.p_value = 2.0 * (1.0 - normal_cdf(std::abs(cmp.t_statistic)));
  return cmp;
}

}  // namespace agentnet
