#include "common/env.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace agentnet {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    std::int64_t out = std::stoll(*v, &pos);
    AGENTNET_REQUIRE(pos == v->size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("environment variable " + name +
                      " is not an integer: " + *v);
  }
}

double env_double(const std::string& name, double fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    double out = std::stod(*v, &pos);
    AGENTNET_REQUIRE(pos == v->size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("environment variable " + name +
                      " is not a number: " + *v);
  }
}

bool env_bool(const std::string& name, bool fallback) {
  auto v = env_string(name);
  if (!v) return fallback;
  std::string s = *v;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw ConfigError("environment variable " + name +
                    " is not a boolean: " + *v);
}

int bench_runs(int fallback) {
  auto runs = env_int("AGENTNET_RUNS", fallback);
  AGENTNET_REQUIRE(runs >= 1 && runs <= 10000, "AGENTNET_RUNS out of range");
  return static_cast<int>(runs);
}

bool bench_full() { return env_bool("AGENTNET_FULL", false); }

int bench_threads() {
  auto threads = env_int("AGENTNET_THREADS", 0);
  AGENTNET_REQUIRE(threads >= 0 && threads <= 1024,
                   "AGENTNET_THREADS out of range");
  return static_cast<int>(threads);
}

}  // namespace agentnet
