// Streaming statistics, quantiles, confidence intervals and time series.
//
// Used by the experiment harness to aggregate the paper's protocol:
// "averaged over a set of 40 different runs of the same parameter set".
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// Welford streaming accumulator: count / mean / variance / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const;
  double min() const;
  double max() const;

  /// Checkpoint support: the exact accumulator bits, so a restored stream
  /// of add() calls produces bit-identical statistics.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(count_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
  }
  void load_state(snapshot::ByteReader& r) {
    count_ = r.size();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
  }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Half-width of a two-sided confidence interval on the mean of `stats`
/// using Student's t (table-interpolated). level in {0.90, 0.95, 0.99}.
double confidence_halfwidth(const RunningStats& stats, double level = 0.95);

/// Quantile of a sample (linear interpolation, q in [0,1]). Copies and
/// sorts; fine for the sample sizes agentnet deals in.
double quantile(std::vector<double> samples, double q);

/// Element-wise accumulator for equal-length time series: feed one series
/// per run, read back per-step mean / stddev / min / max. Series shorter
/// than the longest seen are an error (experiments produce fixed lengths).
class SeriesAccumulator {
 public:
  SeriesAccumulator() = default;
  explicit SeriesAccumulator(std::size_t length) : cells_(length) {}

  void add(const std::vector<double>& series);

  /// Folds another accumulator in, per step. Accumulators of different
  /// lengths combine with padded-tail semantics: the shorter side behaves
  /// as if every series it saw had been extended with its final value (the
  /// same padding the mapping harness applies to finished runs), i.e. its
  /// last cell stands in for the missing tail cells.
  void merge(const SeriesAccumulator& other);

  std::size_t length() const { return cells_.size(); }
  std::size_t runs() const { return runs_; }
  std::vector<double> mean() const;
  std::vector<double> stddev() const;
  std::vector<double> min() const;
  std::vector<double> max() const;
  const RunningStats& at(std::size_t step) const;

 private:
  std::vector<RunningStats> cells_;
  std::size_t runs_ = 0;
};

}  // namespace agentnet
