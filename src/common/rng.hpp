// Deterministic, cross-platform random number generation.
//
// The standard library's distribution objects are not guaranteed to produce
// the same sequences across implementations, so agentnet ships its own
// generator (xoshiro256++) and distribution helpers. Every simulation run is
// a pure function of (config, seed); see DESIGN.md §4 "Determinism".
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// SplitMix64 — used to expand a single 64-bit seed into generator state and
/// to derive independent child seeds (seed + stream id).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
    // All-zero state is the one invalid state; SplitMix64 cannot emit four
    // zeros in a row from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Derives an independent generator for a named sub-stream. Used to give
  /// each agent / subsystem its own stream so adding one consumer does not
  /// perturb another's sequence.
  Rng fork(std::uint64_t stream) {
    SplitMix64 sm((*this)() ^ (stream * 0x9e3779b97f4a7c15ULL + 1));
    return Rng(sm.next());
  }

  /// Uniform integer in [0, bound) via Lemire's method. bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) { return uniform01() < p; }

  /// Standard normal via the polar (Marsaglia) method; deterministic.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);

  /// Poisson-distributed count with the given mean (>= 0). Used for
  /// session arrivals in the traffic workload generator; deterministic
  /// (Knuth's product method, chunked so large means stay exact).
  std::uint64_t poisson(double mean);

  /// Uniformly chosen index into a non-empty container of size n.
  std::size_t index(std::size_t n) {
    AGENTNET_ASSERT(n > 0);
    return static_cast<std::size_t>(uniform(n));
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    AGENTNET_ASSERT(!items.empty());
    return items[index(items.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Checkpoint support: the full generator state — the four state words
  /// plus the polar method's cached spare — so a restored stream continues
  /// the exact sequence it was saved mid-way through.
  void save_state(snapshot::ByteWriter& w) const {
    for (std::uint64_t word : s_) w.u64(word);
    w.boolean(have_spare_normal_);
    w.f64(spare_normal_);
  }
  void load_state(snapshot::ByteReader& r) {
    for (std::uint64_t& word : s_) word = r.u64();
    have_spare_normal_ = r.boolean();
    spare_normal_ = r.f64();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace agentnet
