#include "common/rng.hpp"

#include <cmath>

namespace agentnet {

std::uint64_t Rng::uniform(std::uint64_t bound) {
  AGENTNET_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  AGENTNET_ASSERT(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::exponential(double rate) {
  AGENTNET_ASSERT(rate > 0.0);
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

std::uint64_t Rng::poisson(double mean) {
  AGENTNET_ASSERT(mean >= 0.0);
  // Sum of independent Poisson draws is Poisson with the summed mean, so
  // chunking keeps exp(-mean) away from underflow at large means while
  // staying exactly the target distribution.
  std::uint64_t total = 0;
  while (mean > 0.0) {
    const double chunk = mean > 16.0 ? 16.0 : mean;
    mean -= chunk;
    const double limit = std::exp(-chunk);
    double product = uniform01();
    while (product > limit) {
      ++total;
      product *= uniform01();
    }
  }
  return total;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  AGENTNET_ASSERT(k <= n);
  // Floyd's algorithm would avoid the O(n) fill, but n is small everywhere
  // agentnet uses this (node counts in the hundreds); keep it simple.
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace agentnet
