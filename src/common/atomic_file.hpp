// Crash-safe file writes: stream into `<path>.tmp`, then atomically rename
// over the target on commit(). A crash (or an exception) mid-write leaves
// the previous file intact and at worst a stale `.tmp` beside it — never a
// torn artefact at the target path. commit() also flushes and checks the
// stream, so disk-full / permission errors fail with a ConfigError naming
// the path instead of silently truncating output.
#pragma once

#include <cstdio>
#include <fstream>
#include <ios>
#include <string>

#include "common/error.hpp"

namespace agentnet {

class AtomicFileWriter {
 public:
  explicit AtomicFileWriter(std::string path,
                            std::ios::openmode mode = std::ios::out)
      : path_(std::move(path)), tmp_(path_ + ".tmp") {
    os_.open(tmp_, mode | std::ios::trunc);
    AGENTNET_REQUIRE(os_.is_open(), "cannot open for writing: " + tmp_);
  }

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  ~AtomicFileWriter() {
    // Abandoned (an exception unwound before commit): drop the partial
    // temp file so it cannot be mistaken for a finished artefact.
    if (!committed_) {
      os_.close();
      std::remove(tmp_.c_str());
    }
  }

  std::ostream& stream() { return os_; }
  const std::string& path() const { return path_; }

  /// Flushes, verifies the stream, closes, and renames the temp file over
  /// the target. Throws ConfigError (leaving the old target untouched) on
  /// any failure.
  void commit() {
    os_.flush();
    AGENTNET_REQUIRE(os_.good(), "write failed (disk full?): " + tmp_);
    os_.close();
    AGENTNET_REQUIRE(!os_.fail(), "close failed: " + tmp_);
    AGENTNET_REQUIRE(std::rename(tmp_.c_str(), path_.c_str()) == 0,
                     "cannot rename " + tmp_ + " to " + path_);
    committed_ = true;
  }

 private:
  std::string path_;
  std::string tmp_;
  std::ofstream os_;
  bool committed_ = false;
};

}  // namespace agentnet
