#include "common/options.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace agentnet {

Options Options::parse(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  return parse(args);
}

Options Options::parse(const std::vector<std::string>& args) {
  Options options;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    std::string key = eq == std::string::npos ? arg : arg.substr(0, eq);
    std::string value = eq == std::string::npos ? "true" : arg.substr(eq + 1);
    AGENTNET_REQUIRE(!key.empty(), "empty option key in: " + arg);
    AGENTNET_REQUIRE(!options.values_.contains(key),
                     "option given twice: " + key);
    options.values_.emplace(std::move(key), std::move(value));
  }
  return options;
}

bool Options::has(const std::string& key) const {
  return values_.contains(key);
}

std::string Options::get_string(const std::string& key,
                                std::string fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(it->second, &pos);
    AGENTNET_REQUIRE(pos == it->second.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("option " + key + " is not an integer: " + it->second);
  }
}

double Options::get_double(const std::string& key, double fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t pos = 0;
    const double out = std::stod(it->second, &pos);
    AGENTNET_REQUIRE(pos == it->second.size(), "trailing characters");
    return out;
  } catch (const std::exception&) {
    throw ConfigError("option " + key + " is not a number: " + it->second);
  }
}

bool Options::get_bool(const std::string& key, bool fallback) {
  queried_.insert(key);
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string s = it->second;
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (s == "1" || s == "true" || s == "yes" || s == "on") return true;
  if (s == "0" || s == "false" || s == "no" || s == "off") return false;
  throw ConfigError("option " + key + " is not a boolean: " + it->second);
}

std::vector<std::string> Options::unrecognized() const {
  std::vector<std::string> out;
  for (const auto& [key, value] : values_)
    if (!queried_.contains(key)) out.push_back(key);
  return out;
}

void Options::finish() const {
  const auto stray = unrecognized();
  if (stray.empty()) return;
  std::string message = "unrecognised option(s):";
  for (const auto& key : stray) message += " " + key;
  throw ConfigError(message);
}

}  // namespace agentnet
