// Error types and invariant-checking macros used across agentnet.
//
// Policy (see DESIGN.md): configuration and usage errors throw exceptions
// derived from agentnet::Error; internal invariant violations abort through
// AGENTNET_ASSERT so they are never silently swallowed in release builds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace agentnet {

/// Base class for all exceptions thrown by agentnet.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a caller-supplied configuration value is out of range or
/// inconsistent (e.g. more gateways than nodes).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Thrown when an operation is attempted on an object in the wrong state
/// (e.g. querying results of an experiment that has not run).
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "agentnet assertion failed: %s\n  at %s:%d\n  %s\n",
               expr, file, line, msg ? msg : "");
  std::abort();
}
}  // namespace detail

}  // namespace agentnet

/// Internal invariant check; active in all build types. Use for conditions
/// that indicate a bug in agentnet itself, not bad caller input.
#define AGENTNET_ASSERT(expr)                                              \
  do {                                                                     \
    if (!(expr))                                                           \
      ::agentnet::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define AGENTNET_ASSERT_MSG(expr, msg)                                 \
  do {                                                                 \
    if (!(expr))                                                       \
      ::agentnet::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Caller-input validation: throws ConfigError with the given message.
#define AGENTNET_REQUIRE(expr, msg)             \
  do {                                          \
    if (!(expr)) throw ::agentnet::ConfigError( \
        std::string("requirement failed: ") + (msg)); \
  } while (0)
