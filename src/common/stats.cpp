#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace agentnet {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::mean() const {
  AGENTNET_ASSERT(count_ > 0);
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const {
  if (count_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::min() const {
  AGENTNET_ASSERT(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  AGENTNET_ASSERT(count_ > 0);
  return max_;
}

namespace {

// Two-sided Student-t critical values by degrees of freedom; rows are df
// 1..30, then the normal limit. Enough accuracy for reporting error bars.
struct TRow {
  double t90, t95, t99;
};

constexpr TRow kTTable[] = {
    {6.314, 12.706, 63.657}, {2.920, 4.303, 9.925},  {2.353, 3.182, 5.841},
    {2.132, 2.776, 4.604},   {2.015, 2.571, 4.032},  {1.943, 2.447, 3.707},
    {1.895, 2.365, 3.499},   {1.860, 2.306, 3.355},  {1.833, 2.262, 3.250},
    {1.812, 2.228, 3.169},   {1.796, 2.201, 3.106},  {1.782, 2.179, 3.055},
    {1.771, 2.160, 3.012},   {1.761, 2.145, 2.977},  {1.753, 2.131, 2.947},
    {1.746, 2.120, 2.921},   {1.740, 2.110, 2.898},  {1.734, 2.101, 2.878},
    {1.729, 2.093, 2.861},   {1.725, 2.086, 2.845},  {1.721, 2.080, 2.831},
    {1.717, 2.074, 2.819},   {1.714, 2.069, 2.807},  {1.711, 2.064, 2.797},
    {1.708, 2.060, 2.787},   {1.706, 2.056, 2.779},  {1.703, 2.052, 2.771},
    {1.701, 2.048, 2.763},   {1.699, 2.045, 2.756},  {1.697, 2.042, 2.750},
};
constexpr TRow kTNormal = {1.645, 1.960, 2.576};

double t_critical(std::size_t df, double level) {
  const TRow& row = (df == 0)   ? kTNormal
                    : (df <= 30) ? kTTable[df - 1]
                                 : kTNormal;
  if (level <= 0.90) return row.t90;
  if (level <= 0.95) return row.t95;
  return row.t99;
}

}  // namespace

double confidence_halfwidth(const RunningStats& stats, double level) {
  if (stats.count() < 2) return 0.0;
  return t_critical(stats.count() - 1, level) * stats.stderr_mean();
}

double quantile(std::vector<double> samples, double q) {
  AGENTNET_REQUIRE(!samples.empty(), "quantile of empty sample");
  AGENTNET_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double pos = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void SeriesAccumulator::add(const std::vector<double>& series) {
  if (cells_.empty()) cells_.resize(series.size());
  AGENTNET_REQUIRE(series.size() == cells_.size(),
                   "series length mismatch in SeriesAccumulator");
  for (std::size_t i = 0; i < series.size(); ++i) cells_[i].add(series[i]);
  ++runs_;
}

void SeriesAccumulator::merge(const SeriesAccumulator& other) {
  if (other.runs_ == 0) return;
  if (runs_ == 0 && cells_.empty()) {
    *this = other;
    return;
  }
  AGENTNET_REQUIRE(!cells_.empty() && !other.cells_.empty(),
                   "cannot merge a zero-length SeriesAccumulator");
  if (cells_.size() < other.cells_.size()) {
    // Padded tail: cell L-1 already aggregates each run's final value, so
    // replicating it is exactly what adding the padded series would do.
    cells_.resize(other.cells_.size(), cells_.back());
  }
  for (std::size_t i = 0; i < other.cells_.size(); ++i)
    cells_[i].merge(other.cells_[i]);
  for (std::size_t i = other.cells_.size(); i < cells_.size(); ++i)
    cells_[i].merge(other.cells_.back());
  runs_ += other.runs_;
}

std::vector<double> SeriesAccumulator::mean() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].mean();
  return out;
}

std::vector<double> SeriesAccumulator::stddev() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].stddev();
  return out;
}

std::vector<double> SeriesAccumulator::min() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].min();
  return out;
}

std::vector<double> SeriesAccumulator::max() const {
  std::vector<double> out(cells_.size());
  for (std::size_t i = 0; i < cells_.size(); ++i) out[i] = cells_[i].max();
  return out;
}

const RunningStats& SeriesAccumulator::at(std::size_t step) const {
  AGENTNET_ASSERT(step < cells_.size());
  return cells_[step];
}

}  // namespace agentnet
