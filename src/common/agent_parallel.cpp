#include "common/agent_parallel.hpp"

#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet {

namespace detail {

std::size_t resolve_agent_threads(std::size_t threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& agent_pool(std::size_t threads) {
  // One pool per process, sized by the first activation: runs × agent
  // batches queue into the same workers (no oversubscription by nesting).
  static ThreadPool pool(resolve_agent_threads(threads));
  return pool;
}

}  // namespace detail

AgentParallelConfig AgentParallelConfig::from_env() {
  AgentParallelConfig config;
  const std::int64_t raw = env_int("AGENTNET_AGENT_THREADS", 1);
  if (raw < 0)
    throw ConfigError("AGENTNET_AGENT_THREADS must be >= 0");
  config.threads = detail::resolve_agent_threads(
      static_cast<std::size_t>(raw));
  return config;
}

}  // namespace agentnet
