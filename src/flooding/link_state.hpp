// Link-state flooding baseline for network mapping.
//
// The paper's intro contrasts mobile agents with "current systems [where]
// routing maps are usually generated in a centralized ... manner". The
// conventional decentralised mechanism is link-state flooding: every node
// runs a protocol, periodically originates a link-state advertisement (LSA)
// describing its own out-edges, and re-floods every newer LSA it hears.
// This module implements that — so bench extG can quantify exactly what
// the mobile-agent architecture trades away (convergence speed, message
// cost) for its "nodes run no programs" property.
//
// Timing model matches the agent tasks: one hop per step. An LSA sent on a
// link this step is processed by the receiver next step.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.hpp"
#include "net/graph.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

struct LinkStateConfig {
  /// A node re-originates its LSA every `refresh_period` steps even if its
  /// adjacency did not change (routers do this to age out stale state).
  std::size_t refresh_period = 30;
  /// LSA header bytes (origin, sequence, checksum…).
  std::size_t lsa_header_bytes = 24;
  /// Bytes per advertised neighbour entry.
  std::size_t lsa_entry_bytes = 8;
  /// Failure injection: each transmitted LSA copy is dropped with this
  /// probability before it reaches the receiver. Decided by a pure hash of
  /// (loss_seed, sender, receiver, origin, sequence) — the same counted-RNG
  /// discipline as LinkFlapper — so runs stay deterministic and
  /// thread-count-invariant. 0 disables the draw entirely.
  double lsa_loss_probability = 0.0;
  std::uint64_t loss_seed = 0xF100DULL;
};

class LinkStateFlooding {
 public:
  LinkStateFlooding(std::size_t node_count, LinkStateConfig config);

  /// One protocol step on the current topology: sense own adjacency,
  /// originate if changed/expired, deliver last step's transmissions,
  /// re-flood news.
  void step(const Graph& graph, std::size_t now);

  /// Fraction of the current truth edge set present in `node`'s database.
  double database_completeness(NodeId node, const Graph& truth) const;
  /// Mean completeness over all nodes.
  double mean_completeness(const Graph& truth) const;
  /// First step at which every node's database covered the full (static)
  /// truth; use converged() after stepping.
  bool converged(const Graph& truth) const;

  std::size_t messages_sent() const { return messages_; }
  std::size_t bytes_sent() const { return bytes_; }

  /// Checkpoint support: every node's LSA database, origination clocks,
  /// the in-flight transmissions and the traffic totals.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(databases_.size());
    for (const auto& db : databases_)
      db.save_state(w, [](snapshot::ByteWriter& out, const Lsa& lsa) {
        out.scalar(lsa.origin);
        out.u64(lsa.sequence);
        out.pod_vec(lsa.neighbors);
      });
    w.pod_vec(own_sequence_);
    w.pod_vec(last_origination_);
    w.size(in_flight_.size());
    for (const auto& [dest, lsa] : in_flight_) {
      w.scalar(dest);
      w.scalar(lsa.origin);
      w.u64(lsa.sequence);
      w.pod_vec(lsa.neighbors);
    }
    w.size(messages_);
    w.size(bytes_);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.size();
    AGENTNET_REQUIRE(n == databases_.size(),
                     "snapshot: LSA database count mismatch");
    for (auto& db : databases_)
      db.load_state(r, [](snapshot::ByteReader& in, Lsa& lsa) {
        lsa.origin = in.scalar<NodeId>();
        lsa.sequence = in.u64();
        in.pod_vec(lsa.neighbors);
      });
    r.pod_vec(own_sequence_);
    r.pod_vec(last_origination_);
    const std::size_t flights = r.counted(8);
    in_flight_.resize(flights);
    for (auto& [dest, lsa] : in_flight_) {
      dest = r.scalar<NodeId>();
      lsa.origin = r.scalar<NodeId>();
      lsa.sequence = r.u64();
      r.pod_vec(lsa.neighbors);
    }
    messages_ = r.size();
    bytes_ = r.size();
  }

 private:
  struct Lsa {
    NodeId origin = kInvalidNode;
    std::uint64_t sequence = 0;
    std::vector<NodeId> neighbors;
  };

  std::size_t lsa_bytes(const Lsa& lsa) const {
    return config_.lsa_header_bytes +
           config_.lsa_entry_bytes * lsa.neighbors.size();
  }

  /// Pure-hash transmission-loss draw (stateless; see LinkStateConfig).
  bool lsa_dropped(NodeId from, NodeId to, const Lsa& lsa) const;

  LinkStateConfig config_;
  /// databases_[v][origin] = freshest LSA v has heard from origin. Flat
  /// sorted tables; same ascending-origin iteration as the std::map they
  /// replaced, so completeness sums stay bit-identical.
  std::vector<FlatMap<NodeId, Lsa>> databases_;
  std::vector<std::uint64_t> own_sequence_;
  std::vector<std::size_t> last_origination_;
  /// Transmissions in flight: (destination, LSA), delivered next step.
  std::vector<std::pair<NodeId, Lsa>> in_flight_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace agentnet
