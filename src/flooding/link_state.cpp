#include "flooding/link_state.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

namespace {

// Same finalizer as net/link_noise.cpp: stateless, order-independent.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

LinkStateFlooding::LinkStateFlooding(std::size_t node_count,
                                     LinkStateConfig config)
    : config_(config),
      databases_(node_count),
      own_sequence_(node_count, 0),
      last_origination_(node_count, 0) {
  AGENTNET_REQUIRE(config.refresh_period >= 1,
                   "refresh period must be >= 1");
  AGENTNET_REQUIRE(config.lsa_loss_probability >= 0.0 &&
                       config.lsa_loss_probability <= 1.0,
                   "lsa loss probability must be in [0,1]");
}

bool LinkStateFlooding::lsa_dropped(NodeId from, NodeId to,
                                    const Lsa& lsa) const {
  if (config_.lsa_loss_probability <= 0.0) return false;
  std::uint64_t h = config_.loss_seed ^ 0x15adead1e77e55ULL;
  h = mix64(h ^ (static_cast<std::uint64_t>(from) << 32 | to));
  h = mix64(h ^ lsa.origin);
  h = mix64(h ^ lsa.sequence);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < config_.lsa_loss_probability;
}

void LinkStateFlooding::step(const Graph& graph, std::size_t now) {
  AGENTNET_OBS_PHASE(kStep);
  AGENTNET_REQUIRE(graph.node_count() == databases_.size(),
                   "graph size does not match flooding state");
  const std::size_t n = databases_.size();

  // Phase 1: deliver last step's transmissions and collect the news each
  // node will re-flood this step.
  std::vector<std::vector<Lsa>> fresh_news(n);
  for (auto& [dest, lsa] : in_flight_) {
    auto& db = databases_[dest];
    auto it = db.find(lsa.origin);
    if (it != db.end() && it->second.sequence >= lsa.sequence)
      continue;  // already have this or newer: flood stops here
    db[lsa.origin] = lsa;
    fresh_news[dest].push_back(std::move(lsa));
  }
  in_flight_.clear();

  // Phase 2: origination — each node senses its own out-edges and issues a
  // new LSA when they changed or its refresh timer expired.
  for (NodeId v = 0; v < n; ++v) {
    const auto neighbors = graph.out_neighbors(v);
    const auto& db = databases_[v];
    const auto self = db.find(v);
    const bool changed =
        self == db.end() ||
        !std::equal(self->second.neighbors.begin(),
                    self->second.neighbors.end(), neighbors.begin(),
                    neighbors.end());
    const bool expired =
        now >= last_origination_[v] + config_.refresh_period;
    if (changed || expired || own_sequence_[v] == 0) {
      Lsa lsa;
      lsa.origin = v;
      lsa.sequence = ++own_sequence_[v];
      lsa.neighbors.assign(neighbors.begin(), neighbors.end());
      databases_[v][v] = lsa;
      fresh_news[v].push_back(std::move(lsa));
      last_origination_[v] = now;
    }
  }

  // Phase 3: flooding — every piece of news a node learned or originated
  // this step goes out on all of its current links.
  for (NodeId v = 0; v < n; ++v) {
    if (fresh_news[v].empty()) continue;
    const auto neighbors = graph.out_neighbors(v);
    for (const Lsa& lsa : fresh_news[v]) {
      for (NodeId w : neighbors) {
        ++messages_;
        AGENTNET_COUNT(kLsaMessages);
        bytes_ += lsa_bytes(lsa);
        // The sender paid for the transmission either way; a dropped copy
        // simply never enters the receiver's inbox.
        if (lsa_dropped(v, w, lsa)) {
          AGENTNET_COUNT(kLsaDropped);
          continue;
        }
        in_flight_.push_back({w, lsa});
      }
    }
  }
}

double LinkStateFlooding::database_completeness(NodeId node,
                                                const Graph& truth) const {
  AGENTNET_ASSERT(node < databases_.size());
  if (truth.edge_count() == 0) return 1.0;
  std::size_t known = 0;
  for (const auto& [origin, lsa] : databases_[node]) {
    for (NodeId nbr : lsa.neighbors)
      if (truth.has_edge(origin, nbr)) ++known;
  }
  return static_cast<double>(known) /
         static_cast<double>(truth.edge_count());
}

double LinkStateFlooding::mean_completeness(const Graph& truth) const {
  double sum = 0.0;
  for (NodeId v = 0; v < databases_.size(); ++v)
    sum += database_completeness(v, truth);
  return sum / static_cast<double>(databases_.size());
}

bool LinkStateFlooding::converged(const Graph& truth) const {
  for (NodeId v = 0; v < databases_.size(); ++v)
    if (database_completeness(v, truth) < 1.0) return false;
  return true;
}

}  // namespace agentnet
