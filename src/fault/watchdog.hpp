// The generalized agent watchdog (resilience half of the fault subsystem).
//
// Tasks track one heartbeat per roster slot — a successful migration beats
// the slot — and a slot silent for more than `ttl` steps is declared dead:
// whatever agent still nominally occupies it is scrapped and a fresh
// replacement launched. This generalizes routing's gateway-respawn recovery
// (which only refills a counted deficit) to mapping teams and to agents
// that are alive but wedged (e.g. stranded on a node a blackout cut off).
//
// The watchdog itself holds no RNG: placement draws come from the
// injector's event stream, so the whole recovery path stays on the one
// deterministic sequence.
#pragma once

#include <cstddef>
#include <vector>

#include "snapshot/bytes.hpp"

namespace agentnet {

class AgentWatchdog {
 public:
  /// `ttl` 0 disables; `slots` is the roster size. All slots start with a
  /// heartbeat at step 0 (spawning counts as a sign of life).
  AgentWatchdog(std::size_t ttl, std::size_t slots)
      : ttl_(ttl), last_beat_(slots, 0) {}

  bool enabled() const { return ttl_ > 0; }
  std::size_t slots() const { return last_beat_.size(); }

  /// Records a sign of life for `slot` at step `now`.
  void beat(std::size_t slot, std::size_t now) { last_beat_[slot] = now; }

  /// True when `slot` has been silent for more than ttl steps.
  bool expired(std::size_t slot, std::size_t now) const {
    return ttl_ > 0 && now > last_beat_[slot] + ttl_;
  }

  /// Checkpoint support: per-slot heartbeat times (ttl is config-derived).
  void save_state(snapshot::ByteWriter& w) const { w.pod_vec(last_beat_); }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t slots = last_beat_.size();
    r.pod_vec(last_beat_);
    AGENTNET_REQUIRE(last_beat_.size() == slots,
                     "snapshot: watchdog slot count mismatch");
  }

 private:
  std::size_t ttl_;
  std::vector<std::size_t> last_beat_;
};

}  // namespace agentnet
