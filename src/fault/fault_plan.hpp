// The unified fault model (ROADMAP: robustness): one declarative plan for
// every failure the simulator can inject, plus the resilience policies that
// keep a faulted run degrading instead of wedging.
//
// A FaultPlan is data, not state. Topology faults (node crash windows,
// regional blackouts, burst link outages) are pure hashes of
// (entity, step / persistence, weather_seed) — the same counted-RNG
// discipline as net/LinkFlapper — so the weather is identical at every
// thread count and needs no carried state. Event faults (in-transit agent
// loss, gateway respawn, corrupted exchanges) are drawn sequentially from
// one forked stream by the task loop (see fault_injector.hpp), in a fixed
// per-step order, so a run remains a pure function of (config, seed).
//
// Plans compose from config structs or from AGENTNET_FAULT_* environment
// variables (see docs/ROBUSTNESS.md for the full table); experiments take a
// trailing FaultConfig the same way they take an ObsConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec2.hpp"

namespace agentnet {

/// A regional outage: every link touching a node inside the disc is down
/// for the window [start, start + duration). Blackouts partition the
/// network — the paper's incident-area story (sensors die in a burning
/// region) — and need node geometry; worlds without positions ignore them.
struct Blackout {
  Vec2 center{};
  double radius = 0.0;
  std::size_t start = 0;
  std::size_t duration = 0;

  bool active(std::size_t step) const {
    return step >= start && step - start < duration;
  }
  bool covers(const Vec2& p) const {
    return distance2(p, center) <= radius * radius;
  }
  friend bool operator==(const Blackout& x, const Blackout& y) {
    return x.center.x == y.center.x && x.center.y == y.center.y &&
           x.radius == y.radius && x.start == y.start &&
           x.duration == y.duration;
  }
};

struct FaultPlan {
  // --- Injection ---------------------------------------------------------
  /// Probability that a migrating agent is lost on any hop (mapping and
  /// routing alike). Subsumes RoutingTaskConfig::agent_loss_probability.
  double agent_loss_probability = 0.0;
  /// Gateway recovery: each step, every gateway relaunches one fresh agent
  /// with this probability while the team is under strength. Subsumes
  /// RoutingTaskConfig::gateway_respawn_probability.
  double gateway_respawn_probability = 0.0;
  /// Fraction of nodes crashed in any weather window: a crashed node's
  /// links are all down and agents standing on it are suspended. Outages
  /// last whole multiples of `crash_persistence` steps.
  double node_crash_probability = 0.0;
  std::size_t crash_persistence = 10;
  /// Burst link outages layered on top of the world's LinkFlapper: an
  /// independent flapper with its own (typically shorter) persistence.
  double burst_drop_probability = 0.0;
  std::size_t burst_persistence = 5;
  /// Probability that a meeting's knowledge exchange fails outright (the
  /// payload is corrupted and discarded; nobody learns anything).
  double exchange_failure_probability = 0.0;
  /// Regional outages (see Blackout).
  std::vector<Blackout> blackouts;
  /// Seed for the hash-gated topology faults; independent of the run seed
  /// so the same weather can be replayed under different agent behaviour.
  std::uint64_t weather_seed = 0xFA17DULL;

  // --- Resilience --------------------------------------------------------
  /// Agent watchdog TTL in steps; 0 disables. A roster slot whose agent
  /// has not migrated for more than `watchdog_ttl` steps is declared dead:
  /// the stuck agent (if any survives) is scrapped and a fresh replacement
  /// is launched (mapping: on a random live node; routing: at a live
  /// gateway).
  std::size_t watchdog_ttl = 0;
  /// Second-hand knowledge expiry in steps; 0 disables. Hearsay in
  /// MapKnowledge stores expires after between ttl and 2·ttl steps (epoch
  /// rotation); first-hand observations never expire.
  std::size_t knowledge_ttl = 0;
  /// Routing-table aging: clear entries whose next hop is currently
  /// crashed (they would fail validation anyway; aging frees the slot for
  /// fresh offers instead of waiting out the freshness window).
  bool age_crashed_routes = true;

  /// True when the plan injects or polices anything at all — a false here
  /// guarantees the task takes exactly its fault-free code path (and, for
  /// mapping, draws nothing from the run RNG).
  bool any() const {
    return agent_loss_probability > 0.0 ||
           gateway_respawn_probability > 0.0 ||
           exchange_failure_probability > 0.0 || topology_faults() ||
           watchdog_ttl > 0 || knowledge_ttl > 0;
  }

  /// True when the plan changes the live graph (crash / burst / blackout).
  bool topology_faults() const {
    return node_crash_probability > 0.0 || burst_drop_probability > 0.0 ||
           !blackouts.empty();
  }

  /// Throws ConfigError on out-of-range probabilities or zero persistence.
  void validate() const;

  /// The plan with every probability multiplied by `intensity` (clamped to
  /// its valid range). intensity 0 returns a default (inert) plan —
  /// blackouts and resilience policies included — so a degradation sweep's
  /// zero point reproduces the fault-free baseline exactly.
  FaultPlan scaled(double intensity) const;

  /// Reads AGENTNET_FAULT_* (see docs/ROBUSTNESS.md): _AGENT_LOSS,
  /// _RESPAWN, _NODE_CRASH, _CRASH_PERSISTENCE, _BURST_DROP,
  /// _BURST_PERSISTENCE, _EXCHANGE, _BLACKOUTS ("x:y:r:start:duration"
  /// specs joined by ';'), _SEED, _WATCHDOG_TTL, _KNOWLEDGE_TTL,
  /// _ROUTE_AGING. Unset variables keep the defaults above, so an empty
  /// environment yields an inert plan.
  static FaultPlan from_env();

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// The experiments' trailing-parameter alias, mirroring ObsConfig.
using FaultConfig = FaultPlan;

/// Parses the AGENTNET_FAULT_BLACKOUTS syntax: one "x:y:radius:start:
/// duration" spec per blackout, joined by ';'. Throws ConfigError on
/// malformed specs.
std::vector<Blackout> parse_blackouts(const std::string& spec);

}  // namespace agentnet
