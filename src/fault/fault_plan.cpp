#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet {

void FaultPlan::validate() const {
  AGENTNET_REQUIRE(agent_loss_probability >= 0.0 &&
                       agent_loss_probability <= 1.0,
                   "agent loss probability must be in [0,1]");
  AGENTNET_REQUIRE(gateway_respawn_probability >= 0.0 &&
                       gateway_respawn_probability <= 1.0,
                   "respawn probability must be in [0,1]");
  AGENTNET_REQUIRE(exchange_failure_probability >= 0.0 &&
                       exchange_failure_probability <= 1.0,
                   "exchange failure probability must be in [0,1]");
  // Window-hashed faults mirror LinkFlapper's [0,1) domain: probability 1
  // would crash everything forever, which is not a simulation.
  AGENTNET_REQUIRE(node_crash_probability >= 0.0 &&
                       node_crash_probability < 1.0,
                   "node crash probability must be in [0,1)");
  AGENTNET_REQUIRE(burst_drop_probability >= 0.0 &&
                       burst_drop_probability < 1.0,
                   "burst drop probability must be in [0,1)");
  AGENTNET_REQUIRE(crash_persistence >= 1,
                   "crash persistence must be >= 1");
  AGENTNET_REQUIRE(burst_persistence >= 1,
                   "burst persistence must be >= 1");
  for (const Blackout& zone : blackouts)
    AGENTNET_REQUIRE(zone.radius >= 0.0,
                     "blackout radius must be non-negative");
}

FaultPlan FaultPlan::scaled(double intensity) const {
  AGENTNET_REQUIRE(intensity >= 0.0, "fault intensity must be >= 0");
  if (intensity == 0.0) return FaultPlan{};
  FaultPlan out = *this;
  const auto closed = [&](double p) {
    return std::min(1.0, p * intensity);
  };
  const auto open = [&](double p) {
    return std::min(0.99, p * intensity);
  };
  out.agent_loss_probability = closed(agent_loss_probability);
  out.gateway_respawn_probability = closed(gateway_respawn_probability);
  out.exchange_failure_probability = closed(exchange_failure_probability);
  out.node_crash_probability = open(node_crash_probability);
  out.burst_drop_probability = open(burst_drop_probability);
  return out;
}

std::vector<Blackout> parse_blackouts(const std::string& spec) {
  std::vector<Blackout> zones;
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(';', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    double fields[5];
    std::size_t pos = 0;
    for (int f = 0; f < 5; ++f) {
      if (f > 0) {
        AGENTNET_REQUIRE(pos < item.size() && item[pos] == ':',
                         "blackout spec needs x:y:radius:start:duration: " +
                             item);
        ++pos;
      }
      std::size_t used = 0;
      try {
        fields[f] = std::stod(item.substr(pos), &used);
      } catch (const std::exception&) {
        throw ConfigError("bad number in blackout spec: " + item);
      }
      AGENTNET_REQUIRE(used > 0, "bad number in blackout spec: " + item);
      pos += used;
    }
    AGENTNET_REQUIRE(pos == item.size(),
                     "trailing characters in blackout spec: " + item);
    AGENTNET_REQUIRE(fields[3] >= 0.0 && fields[4] >= 0.0,
                     "blackout start/duration must be non-negative: " + item);
    Blackout zone;
    zone.center = {fields[0], fields[1]};
    zone.radius = fields[2];
    zone.start = static_cast<std::size_t>(fields[3]);
    zone.duration = static_cast<std::size_t>(fields[4]);
    zones.push_back(zone);
  }
  return zones;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan plan;
  plan.agent_loss_probability =
      env_double("AGENTNET_FAULT_AGENT_LOSS", plan.agent_loss_probability);
  plan.gateway_respawn_probability =
      env_double("AGENTNET_FAULT_RESPAWN", plan.gateway_respawn_probability);
  plan.node_crash_probability =
      env_double("AGENTNET_FAULT_NODE_CRASH", plan.node_crash_probability);
  plan.crash_persistence = static_cast<std::size_t>(
      env_int("AGENTNET_FAULT_CRASH_PERSISTENCE",
              static_cast<std::int64_t>(plan.crash_persistence)));
  plan.burst_drop_probability =
      env_double("AGENTNET_FAULT_BURST_DROP", plan.burst_drop_probability);
  plan.burst_persistence = static_cast<std::size_t>(
      env_int("AGENTNET_FAULT_BURST_PERSISTENCE",
              static_cast<std::int64_t>(plan.burst_persistence)));
  plan.exchange_failure_probability = env_double(
      "AGENTNET_FAULT_EXCHANGE", plan.exchange_failure_probability);
  if (const auto spec = env_string("AGENTNET_FAULT_BLACKOUTS"))
    plan.blackouts = parse_blackouts(*spec);
  plan.weather_seed = static_cast<std::uint64_t>(env_int(
      "AGENTNET_FAULT_SEED", static_cast<std::int64_t>(plan.weather_seed)));
  plan.watchdog_ttl = static_cast<std::size_t>(
      env_int("AGENTNET_FAULT_WATCHDOG_TTL",
              static_cast<std::int64_t>(plan.watchdog_ttl)));
  plan.knowledge_ttl = static_cast<std::size_t>(
      env_int("AGENTNET_FAULT_KNOWLEDGE_TTL",
              static_cast<std::int64_t>(plan.knowledge_ttl)));
  plan.age_crashed_routes =
      env_bool("AGENTNET_FAULT_ROUTE_AGING", plan.age_crashed_routes);
  plan.validate();
  return plan;
}

}  // namespace agentnet
