#include "fault/fault_injector.hpp"

#include <utility>

#include "obs/obs.hpp"
#include "sim/world.hpp"

namespace agentnet {

namespace {

std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan, Rng event_rng)
    : plan_(std::move(plan)), rng_(event_rng) {
  plan_.validate();
  if (plan_.burst_drop_probability > 0.0)
    burst_.emplace(plan_.burst_drop_probability, plan_.burst_persistence,
                   plan_.weather_seed ^ 0xB125ULL);
}

bool FaultInjector::node_crashed(NodeId node, std::size_t step) const {
  if (plan_.node_crash_probability <= 0.0) return false;
  const std::uint64_t window = step / plan_.crash_persistence;
  std::uint64_t h = plan_.weather_seed ^ 0xc4a5ed9e3779b97fULL;
  h = mix64(h ^ node);
  h = mix64(h ^ window);
  const double u01 = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u01 < plan_.node_crash_probability;
}

std::uint64_t FaultInjector::crash_window(std::size_t step) const {
  return plan_.node_crash_probability > 0.0 ? step / plan_.crash_persistence
                                            : 0;
}

std::uint64_t FaultInjector::burst_window(std::size_t step) const {
  return burst_ ? step / plan_.burst_persistence : 0;
}

const Graph& FaultInjector::recompute_mask(const Graph& graph,
                                           const std::vector<Vec2>& positions,
                                           std::size_t step) {
  const std::size_t n = graph.node_count();
  down_scratch_.assign(n, 0);
  std::vector<char>& down = down_scratch_;
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
    if (node_crashed(v, step)) down[v] = 1;

  // Blackouts need geometry; a world without per-node positions (fixed
  // abstract graphs) ignores them.
  zones_scratch_.assign(plan_.blackouts.size(), 0);
  std::vector<char>& zones_active = zones_scratch_;
  if (positions.size() == n) {
    for (std::size_t z = 0; z < plan_.blackouts.size(); ++z) {
      const Blackout& zone = plan_.blackouts[z];
      if (!zone.active(step)) continue;
      zones_active[z] = 1;
      std::int64_t covered = 0;
      for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
        if (zone.covers(positions[v])) {
          down[v] = 1;
          ++covered;
        }
      if (z >= blackout_active_.size() || !blackout_active_[z]) {
        AGENTNET_COUNT(kBlackoutStarts);
        AGENTNET_OBS_EVENT(kBlackoutStart, step, -1,
                           static_cast<std::int64_t>(z), covered);
      }
    }
  }
  for (std::size_t z = 0; z < blackout_active_.size(); ++z)
    if (blackout_active_[z] && !zones_active[z])
      AGENTNET_OBS_EVENT(kBlackoutEnd, step, -1,
                         static_cast<std::int64_t>(z));

  // Down/up transitions against the previous mask (all-up before the first
  // call, so initially crashed nodes report a crash at the first step).
  for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
    const bool was_down = v < down_.size() && down_[v] != 0;
    if (down[v] && !was_down) {
      AGENTNET_COUNT(kNodeCrashes);
      AGENTNET_OBS_EVENT(kNodeCrash, step, -1, static_cast<std::int64_t>(v));
    } else if (!down[v] && was_down) {
      AGENTNET_OBS_EVENT(kNodeRecover, step, -1,
                         static_cast<std::int64_t>(v));
    }
  }

  // Filter-copy into recycled storage: per-node gather + append-only
  // assign, no per-call Graph allocation and no per-edge insertion sort.
  masked_.reset(n);
  for (NodeId u = 0; u < static_cast<NodeId>(n); ++u) {
    if (down[u]) continue;
    row_scratch_.clear();
    for (NodeId v : graph.out_neighbors(u)) {
      if (down[v]) continue;
      if (burst_ && burst_->down(u, v, step)) continue;
      row_scratch_.push_back(v);
    }
    masked_.assign_out_edges(u, row_scratch_);
  }
  mask_drops_ = graph.edge_count() - masked_.edge_count();
  AGENTNET_COUNT_N(kFaultLinkDrops, mask_drops_);

  std::swap(down_, down_scratch_);
  std::swap(blackout_active_, zones_scratch_);
  have_mask_ = true;
  mask_step_ = step;
  return masked_;
}

void FaultInjector::save_state(snapshot::ByteWriter& w) const {
  rng_.save_state(w);
  w.boolean(have_mask_);
  if (!have_mask_) return;
  w.size(mask_step_);
  masked_.save_state(w);
  w.pod_vec(down_);
  w.pod_vec(blackout_active_);
  w.size(mask_drops_);
  w.boolean(have_world_mask_);
  w.u64(mask_epoch_);
  w.u64(mask_state_epoch_);
  w.u64(mask_crash_window_);
  w.u64(mask_burst_window_);
}

void FaultInjector::load_state(snapshot::ByteReader& r) {
  rng_.load_state(r);
  have_mask_ = r.boolean();
  if (!have_mask_) {
    have_world_mask_ = false;
    return;
  }
  mask_step_ = r.size();
  masked_.load_state(r);
  r.pod_vec(down_);
  r.pod_vec(blackout_active_);
  mask_drops_ = r.size();
  have_world_mask_ = r.boolean();
  mask_epoch_ = r.u64();
  mask_state_epoch_ = r.u64();
  mask_crash_window_ = r.u64();
  mask_burst_window_ = r.u64();
}

const Graph& FaultInjector::live_graph(const Graph& graph,
                                       const std::vector<Vec2>& positions,
                                       std::size_t step) {
  if (!plan_.topology_faults()) return graph;
  if (have_mask_ && mask_step_ == step) return masked_;
  have_world_mask_ = false;  // direct calls carry no epoch keys
  return recompute_mask(graph, positions, step);
}

const Graph& FaultInjector::live_graph(const World& world, std::size_t step) {
  if (!plan_.topology_faults()) return world.graph();
  if (have_mask_ && mask_step_ == step) return masked_;

  // Cross-step reuse: the mask is a pure function of (graph, positions,
  // fault windows). The world's epochs version the first two; the windows
  // are compared directly. Any zone's schedule flipping forces a
  // recompute, which is also what emits the transition events — so the
  // cached path skips only steps that would have emitted nothing.
  if (have_mask_ && have_world_mask_ &&
      world.epoch() == mask_epoch_ &&
      crash_window(step) == mask_crash_window_ &&
      burst_window(step) == mask_burst_window_) {
    bool zones_same = true;
    bool any_active = false;
    for (std::size_t z = 0; z < plan_.blackouts.size(); ++z) {
      const bool active = plan_.blackouts[z].active(step);
      any_active |= active;
      if (active != (z < blackout_active_.size() &&
                     blackout_active_[z] != 0)) {
        zones_same = false;
        break;
      }
    }
    // While a blackout is active its coverage follows node positions.
    if (zones_same && (!any_active || world.state_epoch() == mask_state_epoch_)) {
      AGENTNET_COUNT_N(kFaultLinkDrops, mask_drops_);
      AGENTNET_COUNT(kDerivedCacheHits);
      mask_step_ = step;
      return masked_;
    }
  }

  const Graph& out = recompute_mask(world.graph(), world.positions(), step);
  have_world_mask_ = true;
  mask_epoch_ = world.epoch();
  mask_state_epoch_ = world.state_epoch();
  mask_crash_window_ = crash_window(step);
  mask_burst_window_ = burst_window(step);
  return out;
}

}  // namespace agentnet
