// The runtime side of a FaultPlan: one injector per task run.
//
// Two kinds of faults, two disciplines:
//
//  * Topology faults (node crashes, blackouts, burst link outages) are
//    pure hashes of (entity, step window, weather_seed) — no state, no
//    draws. live_graph() materialises the faulted view of the world's
//    graph for the current step and caches it; when the plan has no
//    topology faults it returns the caller's graph by reference, so the
//    fault-free path is allocation-free and bit-identical to a build
//    without this subsystem.
//
//  * Event faults (in-transit loss, gateway respawn, exchange corruption,
//    watchdog placement) are sequential draws from one forked stream. The
//    task loop draws them in a fixed per-step order and only when the
//    corresponding probability is enabled, which keeps legacy
//    configurations (routing's old loss/respawn knobs) on the exact same
//    random sequence they had before FaultPlan existed.
//
// Transition events (kNodeCrash / kNodeRecover / kBlackoutStart /
// kBlackoutEnd) and counters are emitted from live_graph() when a window
// boundary flips state, charging whatever RunObs slot is installed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "geom/vec2.hpp"
#include "net/graph.hpp"
#include "net/link_noise.hpp"

namespace agentnet {

class World;

class FaultInjector {
 public:
  /// `event_rng` is the task's fault stream (by convention
  /// rng.fork(0xFA11)); it is consumed only by the event draws below.
  FaultInjector(FaultPlan plan, Rng event_rng);

  const FaultPlan& plan() const { return plan_; }

  // --- Sequential event draws (call only when the probability is > 0,
  // --- so disabled faults consume nothing from the stream) -------------
  bool lose_in_transit() {
    return rng_.bernoulli(plan_.agent_loss_probability);
  }
  bool respawn_due() {
    return rng_.bernoulli(plan_.gateway_respawn_probability);
  }
  bool corrupt_exchange() {
    return rng_.bernoulli(plan_.exchange_failure_probability);
  }
  /// Uniform index draw from the event stream (watchdog placement).
  std::size_t pick(std::size_t n) { return rng_.index(n); }

  // --- Stateless weather -----------------------------------------------
  /// True when `node` is crashed during `step` (hash-gated window, whole
  /// multiples of crash_persistence — the LinkFlapper discipline).
  bool node_crashed(NodeId node, std::size_t step) const;

  /// The fault-masked view of `graph` at `step`: edges at crashed or
  /// blacked-out nodes and burst-dropped links are removed. Returns
  /// `graph` itself when the plan has no topology faults. `positions` must
  /// have one entry per node for blackouts to apply (worlds without
  /// geometry ignore them). The result is cached per step; callers must
  /// pass the graph that is current at `step`.
  const Graph& live_graph(const Graph& graph,
                          const std::vector<Vec2>& positions,
                          std::size_t step);

  /// Convenience overload reading graph and positions from a World; `step`
  /// is still explicit because frozen mapping worlds never advance their
  /// own clock. This overload also caches the mask *across* steps: it is
  /// recomputed only when a fault window flipped (crash / burst /
  /// blackout schedule) or the world reports a new graph epoch or — while
  /// some blackout is active — a new state epoch (coverage follows node
  /// positions). On a cross-step hit the cached per-step kFaultLinkDrops
  /// total is re-emitted, so counter footers are identical to the
  /// recompute-every-step path.
  const Graph& live_graph(const World& world, std::size_t step);

  /// True when `node` was down in the most recent live_graph() mask.
  /// Always false before the first call or without topology faults.
  bool down(NodeId node) const {
    return node < down_.size() && down_[node] != 0;
  }

  /// Checkpoint support: the event stream's RNG plus the complete mask
  /// state — masked graph, down/blackout flags, cross-step cache keys.
  /// The mask is carried verbatim (not recomputed) because the cached
  /// live_graph() path re-emits its stored drop totals and compares cache
  /// keys captured at the *previous* recompute; a freshly primed mask
  /// would hit or miss that cache differently than the uninterrupted run.
  void save_state(snapshot::ByteWriter& w) const;
  void load_state(snapshot::ByteReader& r);

  /// Fraction of the first `n` nodes not down in the most recent
  /// live_graph() mask; 1.0 before the first call or without topology
  /// faults. The time-series kLiveFraction gauge.
  double live_fraction(std::size_t n) const {
    if (n == 0 || down_.empty()) return 1.0;
    std::size_t downs = 0;
    for (std::size_t v = 0; v < n && v < down_.size(); ++v)
      downs += down_[v] != 0;
    return 1.0 - static_cast<double>(downs) / static_cast<double>(n);
  }

 private:
  /// Recomputes the mask and transition bookkeeping for `step`.
  const Graph& recompute_mask(const Graph& graph,
                              const std::vector<Vec2>& positions,
                              std::size_t step);
  std::uint64_t crash_window(std::size_t step) const;
  std::uint64_t burst_window(std::size_t step) const;

  FaultPlan plan_;
  Rng rng_;
  std::optional<LinkFlapper> burst_;
  Graph masked_;
  std::vector<char> down_;
  std::vector<char> blackout_active_;
  bool have_mask_ = false;
  std::size_t mask_step_ = 0;
  // Cross-step cache keys (valid only for the World overload) and scratch.
  bool have_world_mask_ = false;
  std::uint64_t mask_epoch_ = 0;
  std::uint64_t mask_state_epoch_ = 0;
  std::uint64_t mask_crash_window_ = 0;
  std::uint64_t mask_burst_window_ = 0;
  std::size_t mask_drops_ = 0;  ///< Edges dropped by the cached mask.
  std::vector<char> down_scratch_;
  std::vector<char> zones_scratch_;
  std::vector<NodeId> row_scratch_;
};

}  // namespace agentnet
