#include "obs/trace.hpp"

#include <cctype>
#include <fstream>
#include <iterator>
#include <mutex>
#include <set>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace agentnet::obs {

namespace {

/// Field names for (agent, a, b) per kind; nullptr = field unused.
struct KindFields {
  const char* agent;
  const char* a;
  const char* b;
};

constexpr KindFields kKindFields[] = {
    /* spawn     */ {"agent", "node", nullptr},
    /* move      */ {"agent", "from", "to"},
    /* meet      */ {nullptr, "node", "size"},
    /* merge     */ {"agent", "node", nullptr},
    /* stamp     */ {nullptr, "node", "target"},
    /* route     */ {"agent", "node", "hops"},
    /* lost      */ {"agent", nullptr, nullptr},
    /* respawn   */ {"agent", "node", nullptr},
    /* death     */ {nullptr, "node", nullptr},
    /* crash     */ {nullptr, "node", nullptr},
    /* recover   */ {nullptr, "node", nullptr},
    /* bo_start  */ {nullptr, "blackout", "nodes"},
    /* bo_end    */ {nullptr, "blackout", nullptr},
    /* corrupt   */ {nullptr, "node", "size"},
    /* watchdog  */ {"agent", "node", nullptr},
    /* flow_start*/ {nullptr, "src", "dst"},
    /* flow_end  */ {nullptr, "src", "packets"},
    /* pkt_drop  */ {nullptr, "node", "count"},
    // Checkpoint events are fieldless (step only): checkpoint contents
    // vary with thread timing, so the record must not describe them.
    /* ckpt_save */ {nullptr, nullptr, nullptr},
    /* ckpt_rest */ {nullptr, nullptr, nullptr},
    /* finish    */ {nullptr, nullptr, nullptr},
    /* run_group */ {nullptr, "runs", nullptr},
};
static_assert(std::size(kKindFields) ==
                  static_cast<std::size_t>(TraceEventKind::kCount),
              "kKindFields must cover every TraceEventKind enumerator");

// Indexed by TraceEventKind; the static_assert makes adding an enumerator
// without a name (or vice versa) a compile error, not a "?" at runtime.
constexpr const char* kTraceEventNames[] = {
    "spawn",
    "move",
    "meet",
    "merge",
    "stamp",
    "route",
    "lost",
    "respawn",
    "death",
    "node_crash",
    "node_recover",
    "blackout_start",
    "blackout_end",
    "exchange_corrupted",
    "watchdog_respawn",
    "flow_start",
    "flow_end",
    "packet_drop",
    "checkpoint_saved",
    "checkpoint_restored",
    "finish",
    "run_group",
};
static_assert(std::size(kTraceEventNames) ==
                  static_cast<std::size_t>(TraceEventKind::kCount),
              "kTraceEventNames must name every TraceEventKind enumerator");

const KindFields& fields_of(TraceEventKind kind) {
  return kKindFields[static_cast<std::size_t>(kind)];
}

void append_field(std::string& out, const char* name, std::int64_t value) {
  out += ",\"";
  out += name;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

const char* trace_event_name(TraceEventKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < static_cast<std::size_t>(TraceEventKind::kCount)
             ? kTraceEventNames[i]
             : "?";
}

std::string serialize_trace_line(std::int64_t run, const TraceEvent& event) {
  std::string out = "{";
  if (run >= 0) {
    out += "\"run\":";
    out += std::to_string(run);
    out += ",";
  }
  out += "\"ev\":\"";
  out += trace_event_name(event.kind);
  out += "\"";
  if (event.kind != TraceEventKind::kRunGroup)
    append_field(out, "step", static_cast<std::int64_t>(event.step));
  const KindFields& fields = fields_of(event.kind);
  if (fields.agent && event.agent >= 0)
    append_field(out, fields.agent, event.agent);
  if (fields.a && event.a >= 0) append_field(out, fields.a, event.a);
  if (fields.b && event.b >= 0) append_field(out, fields.b, event.b);
  out += "}";
  return out;
}

std::string serialize_chrome_line(std::int64_t run, const TraceEvent& event) {
  // Instant event on the (pid = run, tid = agent) track; ts is the
  // simulation step interpreted as microseconds — deterministic, not
  // wall-clock.
  std::string out = "{\"name\":\"";
  out += trace_event_name(event.kind);
  out += "\",\"cat\":\"agentnet\",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
  out += std::to_string(event.step);
  out += ",\"pid\":";
  out += std::to_string(run >= 0 ? run : 0);
  out += ",\"tid\":";
  out += std::to_string(event.agent >= 0 ? event.agent : 0);
  out += ",\"args\":{";
  const KindFields& fields = fields_of(event.kind);
  bool first = true;
  const auto arg = [&](const char* name, std::int64_t value) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
  };
  if (fields.a && event.a >= 0) arg(fields.a, event.a);
  if (fields.b && event.b >= 0) arg(fields.b, event.b);
  out += "}}";
  return out;
}

namespace {

/// Tokenizes a flat {"key":value,...} object of integer / string values.
bool parse_flat_object(
    const std::string& line,
    std::vector<std::pair<std::string, std::string>>& pairs,
    std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      if (i >= line.size() || line[i] != '"')
        return fail("expected '\"' starting a key");
      const std::size_t key_start = ++i;
      while (i < line.size() && line[i] != '"') ++i;
      if (i >= line.size()) return fail("unterminated key");
      std::string key = line.substr(key_start, i - key_start);
      ++i;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        const std::size_t value_start = ++i;
        while (i < line.size() && line[i] != '"') ++i;
        if (i >= line.size()) return fail("unterminated string value");
        value = line.substr(value_start, i - value_start);
        ++i;
      } else {
        const std::size_t value_start = i;
        if (i < line.size() && line[i] == '-') ++i;
        while (i < line.size() &&
               std::isdigit(static_cast<unsigned char>(line[i])))
          ++i;
        if (i == value_start) return fail("expected integer or string value");
        value = line.substr(value_start, i - value_start);
      }
      pairs.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != line.size()) return fail("trailing characters after '}'");
  return true;
}

}  // namespace

std::optional<TraceRecord> parse_trace_line(const std::string& line,
                                            std::string* error) {
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!parse_flat_object(line, pairs, error)) return std::nullopt;
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };

  TraceRecord record;
  bool have_kind = false;
  for (const auto& [key, value] : pairs) {
    if (key == "ev") {
      for (std::size_t k = 0;
           k < static_cast<std::size_t>(TraceEventKind::kCount); ++k) {
        if (value == trace_event_name(static_cast<TraceEventKind>(k))) {
          record.event.kind = static_cast<TraceEventKind>(k);
          have_kind = true;
          break;
        }
      }
      if (!have_kind) return fail("unknown event kind: " + value);
    }
  }
  if (!have_kind) return fail("missing \"ev\" field");

  const KindFields& fields = fields_of(record.event.kind);
  for (const auto& [key, value] : pairs) {
    if (key == "ev") continue;
    std::int64_t parsed = 0;
    try {
      std::size_t pos = 0;
      parsed = std::stoll(value, &pos);
      if (pos != value.size()) throw std::invalid_argument(value);
    } catch (const std::exception&) {
      return fail("field " + key + " is not an integer: " + value);
    }
    if (key == "run")
      record.run = parsed;
    else if (key == "step" && record.event.kind != TraceEventKind::kRunGroup)
      record.event.step = static_cast<std::uint64_t>(parsed);
    else if (fields.agent && key == fields.agent)
      record.event.agent = parsed;
    else if (fields.a && key == fields.a)
      record.event.a = parsed;
    else if (fields.b && key == fields.b)
      record.event.b = parsed;
    else
      return fail("unknown field \"" + key + "\" for event " +
                  trace_event_name(record.event.kind));
  }
  return record;
}

void write_trace(const std::string& path, TraceFormat format,
                 std::span<const TraceBuffer* const> buffers) {
  // First write to a path in this process truncates; later writes append.
  // Serialized so concurrent experiments cannot interleave run groups.
  static std::mutex mutex;
  static std::set<std::string>* opened = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  const bool first = opened->insert(path).second;

  const auto emit = [&](std::ostream& os) {
    if (format == TraceFormat::kJsonl) {
      TraceEvent marker;
      marker.kind = TraceEventKind::kRunGroup;
      marker.a = static_cast<std::int64_t>(buffers.size());
      os << serialize_trace_line(-1, marker) << "\n";
      for (std::size_t run = 0; run < buffers.size(); ++run)
        for (const TraceEvent& event : buffers[run]->events())
          os << serialize_trace_line(static_cast<std::int64_t>(run), event)
             << "\n";
    } else {
      // Trace Event JSON array format; the spec allows the closing ']' to
      // be absent, which is what makes appending run groups legal.
      if (first) os << "[\n";
      for (std::size_t run = 0; run < buffers.size(); ++run)
        for (const TraceEvent& event : buffers[run]->events())
          os << serialize_chrome_line(static_cast<std::int64_t>(run), event)
             << ",\n";
    }
  };

  if (first) {
    // A crash mid-write must not leave a torn trace at the target path.
    AtomicFileWriter file(path);
    emit(file.stream());
    file.commit();
  } else {
    // Appends cannot rename-over (that would drop the earlier groups);
    // they stay in place but still fail loudly on short writes.
    std::ofstream os(path, std::ios::app);
    AGENTNET_REQUIRE(os.is_open(), "cannot write trace file " + path);
    emit(os);
    os.flush();
    AGENTNET_REQUIRE(os.good(), "error while writing trace file " + path);
  }
}

}  // namespace agentnet::obs
