// Umbrella header for the telemetry subsystem: include this one from
// instrumented code and use the AGENTNET_COUNT / AGENTNET_OBS_PHASE /
// AGENTNET_OBS_EVENT macros. At AGENTNET_OBS_LEVEL 0 every macro expands
// to nothing and the instrumentation costs zero instructions; at the
// default level 1 a counter bump is one relaxed atomic increment on a
// thread-private slot.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>

#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "obs/obs_level.hpp"
#include "obs/phase.hpp"
#include "obs/scope.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace agentnet::obs {

/// Observability knobs an experiment harness honours for one experiment.
struct ObsConfig {
  /// When set, every run's trace buffer is enabled and the streams are
  /// appended to this path after the runs complete.
  std::optional<std::string> trace_path;
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// When set, every run's metrics buffer is enabled and the time-series
  /// JSONL is appended to this path after the runs complete.
  std::optional<std::string> metrics_path;
  /// Decimation: sample steps ≡ 0 (mod metrics_every); must be >= 1.
  std::uint64_t metrics_every = 1;
  /// When set, a run manifest (seed, env snapshot, build type, obs level,
  /// thread count) is written to this path after the runs complete.
  std::optional<std::string> manifest_path;
  /// Where merged counters/phases land; nullptr = the caller's current
  /// slot (usually the ambient one).
  RunObs* sink = nullptr;

  /// Reads AGENTNET_TRACE (path), AGENTNET_TRACE_FORMAT
  /// ("jsonl" | "chrome"), AGENTNET_METRICS (path),
  /// AGENTNET_METRICS_EVERY (integer >= 1) and AGENTNET_MANIFEST (path).
  /// At AGENTNET_OBS_LEVEL 0 everything stays off regardless of the
  /// environment.
  static ObsConfig from_env();
};

/// Enables per-run trace/metrics buffers on `slots` per `config` — the
/// step every experiment harness runs before dispatching replications.
void enable_slots(std::span<RunObs> slots, const ObsConfig& config);

/// The harness epilogue: merges `slots` into the configured sink in
/// run-index order (bit-identical at every thread count), then writes the
/// trace stream, the metrics stream and the run manifest when their paths
/// are configured.
void merge_and_write(std::span<RunObs> slots, const ObsConfig& config,
                     std::uint64_t run_seed_base, int runs, int threads);

/// CSV-footer epilogue for the CLI: counter totals (write_counter_footer),
/// per-phase wall-clock rows (`# phase_<name>_ms=`), and the telemetry
/// artefact paths configured in `config`.
void write_run_footer(std::ostream& os, const RunObs& obs,
                      const ObsConfig& config);

}  // namespace agentnet::obs

namespace agentnet {
using obs::ObsConfig;
}  // namespace agentnet

#if AGENTNET_OBS_LEVEL >= 1

#define AGENTNET_COUNT(counter) \
  ::agentnet::obs::count(::agentnet::obs::Counter::counter)
#define AGENTNET_COUNT_N(counter, n) \
  ::agentnet::obs::count(::agentnet::obs::Counter::counter, (n))

#define AGENTNET_OBS_CONCAT_IMPL(a, b) a##b
#define AGENTNET_OBS_CONCAT(a, b) AGENTNET_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope and charges it to `phase` (a Phase enumerator
/// name, e.g. AGENTNET_OBS_PHASE(kSense)). Use a named ScopedPhase when an
/// explicit early stop() is needed.
#define AGENTNET_OBS_PHASE(phase)                              \
  ::agentnet::obs::ScopedPhase AGENTNET_OBS_CONCAT(            \
      agentnet_obs_phase_, __LINE__)(::agentnet::obs::Phase::phase)

/// Emits a trace event when the current run is being traced:
/// AGENTNET_OBS_EVENT(kind, step[, agent[, a[, b]]]).
#define AGENTNET_OBS_EVENT(kind, ...) \
  ::agentnet::obs::emit(::agentnet::obs::TraceEventKind::kind, __VA_ARGS__)

/// True when the current run samples metrics at `step` — guard gauge
/// computations the simulation does not already pay for. Constant false
/// at AGENTNET_OBS_LEVEL 0, so guarded blocks dead-strip.
#define AGENTNET_OBS_METRICS_WANT(step) ::agentnet::obs::metrics_want(step)

/// Records one gauge sample: AGENTNET_OBS_GAUGE(kConnectivity, t, value).
/// Self-guarding (no-op when the step is not sampled).
#define AGENTNET_OBS_GAUGE(gauge, step, value) \
  ::agentnet::obs::gauge_sample(::agentnet::obs::Gauge::gauge, (step), (value))

/// Closes the metrics row for `step` with the counter deltas since the
/// previous tick. Call once as the last statement of each step loop body.
#define AGENTNET_OBS_METRICS_TICK(step) ::agentnet::obs::metrics_tick(step)

/// Snapshots the windowed latency percentiles from an integer histogram:
/// AGENTNET_OBS_LATENCY_WINDOW(t, stats.latency_histogram).
#define AGENTNET_OBS_LATENCY_WINDOW(step, histogram) \
  ::agentnet::obs::latency_window((step), (histogram))

#else  // AGENTNET_OBS_LEVEL == 0

#define AGENTNET_COUNT(counter) ((void)0)
#define AGENTNET_COUNT_N(counter, n) ((void)0)
#define AGENTNET_OBS_PHASE(phase) ((void)0)
#define AGENTNET_OBS_EVENT(kind, ...) ((void)0)
#define AGENTNET_OBS_METRICS_WANT(step) false
#define AGENTNET_OBS_GAUGE(gauge, step, value) ((void)0)
#define AGENTNET_OBS_METRICS_TICK(step) ((void)0)
#define AGENTNET_OBS_LATENCY_WINDOW(step, histogram) ((void)0)

#endif
