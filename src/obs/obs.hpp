// Umbrella header for the telemetry subsystem: include this one from
// instrumented code and use the AGENTNET_COUNT / AGENTNET_OBS_PHASE /
// AGENTNET_OBS_EVENT macros. At AGENTNET_OBS_LEVEL 0 every macro expands
// to nothing and the instrumentation costs zero instructions; at the
// default level 1 a counter bump is one relaxed atomic increment on a
// thread-private slot.
#pragma once

#include <optional>
#include <string>

#include "obs/metrics.hpp"
#include "obs/obs_level.hpp"
#include "obs/phase.hpp"
#include "obs/scope.hpp"
#include "obs/trace.hpp"

namespace agentnet::obs {

/// Observability knobs an experiment harness honours for one experiment.
struct ObsConfig {
  /// When set, every run's trace buffer is enabled and the streams are
  /// appended to this path after the runs complete.
  std::optional<std::string> trace_path;
  TraceFormat trace_format = TraceFormat::kJsonl;
  /// Where merged counters/phases land; nullptr = the caller's current
  /// slot (usually the ambient one).
  RunObs* sink = nullptr;

  /// Reads AGENTNET_TRACE (path) and AGENTNET_TRACE_FORMAT
  /// ("jsonl" | "chrome"). At AGENTNET_OBS_LEVEL 0 tracing stays off
  /// regardless of the environment.
  static ObsConfig from_env();
};

}  // namespace agentnet::obs

namespace agentnet {
using obs::ObsConfig;
}  // namespace agentnet

#if AGENTNET_OBS_LEVEL >= 1

#define AGENTNET_COUNT(counter) \
  ::agentnet::obs::count(::agentnet::obs::Counter::counter)
#define AGENTNET_COUNT_N(counter, n) \
  ::agentnet::obs::count(::agentnet::obs::Counter::counter, (n))

#define AGENTNET_OBS_CONCAT_IMPL(a, b) a##b
#define AGENTNET_OBS_CONCAT(a, b) AGENTNET_OBS_CONCAT_IMPL(a, b)

/// Times the enclosing scope and charges it to `phase` (a Phase enumerator
/// name, e.g. AGENTNET_OBS_PHASE(kSense)). Use a named ScopedPhase when an
/// explicit early stop() is needed.
#define AGENTNET_OBS_PHASE(phase)                              \
  ::agentnet::obs::ScopedPhase AGENTNET_OBS_CONCAT(            \
      agentnet_obs_phase_, __LINE__)(::agentnet::obs::Phase::phase)

/// Emits a trace event when the current run is being traced:
/// AGENTNET_OBS_EVENT(kind, step[, agent[, a[, b]]]).
#define AGENTNET_OBS_EVENT(kind, ...) \
  ::agentnet::obs::emit(::agentnet::obs::TraceEventKind::kind, __VA_ARGS__)

#else  // AGENTNET_OBS_LEVEL == 0

#define AGENTNET_COUNT(counter) ((void)0)
#define AGENTNET_COUNT_N(counter, n) ((void)0)
#define AGENTNET_OBS_PHASE(phase) ((void)0)
#define AGENTNET_OBS_EVENT(kind, ...) ((void)0)

#endif
