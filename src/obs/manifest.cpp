#include "obs/manifest.hpp"

#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>

#include "common/atomic_file.hpp"
#include "common/env.hpp"
#include "common/error.hpp"

#ifndef AGENTNET_VERSION
#define AGENTNET_VERSION "0.0.0"
#endif

#ifndef AGENTNET_BUILD_TYPE
#define AGENTNET_BUILD_TYPE ""
#endif

extern char** environ;

namespace agentnet::obs {

namespace {

void append_escaped(std::string& out, const std::string& value) {
  out += '"';
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += c;
    }
  }
  out += '"';
}

}  // namespace

RunManifest make_manifest(std::uint64_t seed, int runs, int threads) {
  RunManifest manifest;
  manifest.library_version = AGENTNET_VERSION;
#ifdef NDEBUG
  manifest.build_type = "release";
#else
  manifest.build_type = "debug";
#endif
  manifest.cmake_build_type = AGENTNET_BUILD_TYPE;
  manifest.obs_level = AGENTNET_OBS_LEVEL;
  manifest.seed = seed;
  manifest.runs = runs;
  manifest.threads = threads == 0 ? bench_threads() : threads;
  for (char** entry = environ; entry != nullptr && *entry != nullptr;
       ++entry) {
    const std::string var(*entry);
    if (var.rfind("AGENTNET_", 0) != 0) continue;
    const std::size_t eq = var.find('=');
    if (eq == std::string::npos) continue;
    manifest.env.emplace_back(var.substr(0, eq), var.substr(eq + 1));
  }
  std::sort(manifest.env.begin(), manifest.env.end());
  return manifest;
}

std::string manifest_json(const RunManifest& manifest) {
  std::string out = "{\n";
  const auto string_field = [&](const char* key, const std::string& value,
                                bool comma = true) {
    out += "  \"";
    out += key;
    out += "\": ";
    append_escaped(out, value);
    if (comma) out += ',';
    out += '\n';
  };
  const auto int_field = [&](const char* key, std::int64_t value) {
    out += "  \"";
    out += key;
    out += "\": ";
    out += std::to_string(value);
    out += ",\n";
  };
  string_field("library_version", manifest.library_version);
  string_field("build_type", manifest.build_type);
  string_field("cmake_build_type", manifest.cmake_build_type);
  int_field("obs_level", manifest.obs_level);
  int_field("seed", static_cast<std::int64_t>(manifest.seed));
  int_field("runs", manifest.runs);
  int_field("threads", manifest.threads);
  int_field("metrics_every", static_cast<std::int64_t>(manifest.metrics_every));
  string_field("trace_path", manifest.trace_path);
  string_field("metrics_path", manifest.metrics_path);
  out += "  \"env\": {";
  bool first = true;
  for (const auto& [name, value] : manifest.env) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_escaped(out, name);
    out += ": ";
    append_escaped(out, value);
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

namespace {

/// Minimal scanner for manifest_json() output: one top-level object of
/// string / integer fields plus one nested "env" object of strings.
class ManifestScanner {
 public:
  ManifestScanner(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool fail(const std::string& message) {
    if (error_) *error_ = message;
    return false;
  }

  void skip_ws() {
    while (i_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[i_])))
      ++i_;
  }

  bool expect(char c) {
    skip_ws();
    if (i_ >= text_.size() || text_[i_] != c)
      return fail(std::string("expected '") + c + "'");
    ++i_;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return i_ < text_.size() && text_[i_] == c;
  }

  bool string(std::string& out) {
    skip_ws();
    if (i_ >= text_.size() || text_[i_] != '"')
      return fail("expected '\"'");
    ++i_;
    out.clear();
    while (i_ < text_.size() && text_[i_] != '"') {
      char c = text_[i_];
      if (c == '\\') {
        ++i_;
        if (i_ >= text_.size()) return fail("dangling escape");
        switch (text_[i_]) {
          case '"':
            c = '"';
            break;
          case '\\':
            c = '\\';
            break;
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case 'r':
            c = '\r';
            break;
          default:
            return fail("unknown escape");
        }
      }
      out += c;
      ++i_;
    }
    if (i_ >= text_.size()) return fail("unterminated string");
    ++i_;
    return true;
  }

  bool integer(std::int64_t& out) {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < text_.size() && text_[i_] == '-') ++i_;
    while (i_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i_])))
      ++i_;
    const char* begin = text_.data() + start;
    const char* end = text_.data() + i_;
    const auto result = std::from_chars(begin, end, out);
    if (result.ec != std::errc() || result.ptr != end || begin == end)
      return fail("expected integer");
    return true;
  }

  bool at_end() {
    skip_ws();
    return i_ == text_.size();
  }

 private:
  const std::string& text_;
  std::string* error_;
  std::size_t i_ = 0;
};

}  // namespace

std::optional<RunManifest> parse_manifest_json(const std::string& text,
                                               std::string* error) {
  ManifestScanner scan(text, error);
  RunManifest manifest;
  manifest.obs_level = 0;
  if (!scan.expect('{')) return std::nullopt;
  bool first = true;
  while (!scan.peek_is('}')) {
    if (!first && !scan.expect(',')) return std::nullopt;
    first = false;
    std::string key;
    if (!scan.string(key) || !scan.expect(':')) return std::nullopt;
    if (key == "library_version") {
      if (!scan.string(manifest.library_version)) return std::nullopt;
    } else if (key == "build_type") {
      if (!scan.string(manifest.build_type)) return std::nullopt;
    } else if (key == "cmake_build_type") {
      if (!scan.string(manifest.cmake_build_type)) return std::nullopt;
    } else if (key == "trace_path") {
      if (!scan.string(manifest.trace_path)) return std::nullopt;
    } else if (key == "metrics_path") {
      if (!scan.string(manifest.metrics_path)) return std::nullopt;
    } else if (key == "obs_level" || key == "seed" || key == "runs" ||
               key == "threads" || key == "metrics_every") {
      std::int64_t value = 0;
      if (!scan.integer(value)) return std::nullopt;
      if (key == "obs_level")
        manifest.obs_level = static_cast<int>(value);
      else if (key == "seed")
        manifest.seed = static_cast<std::uint64_t>(value);
      else if (key == "runs")
        manifest.runs = static_cast<int>(value);
      else if (key == "threads")
        manifest.threads = static_cast<int>(value);
      else
        manifest.metrics_every = static_cast<std::uint64_t>(value);
    } else if (key == "env") {
      if (!scan.expect('{')) return std::nullopt;
      bool env_first = true;
      while (!scan.peek_is('}')) {
        if (!env_first && !scan.expect(',')) return std::nullopt;
        env_first = false;
        std::string name, value;
        if (!scan.string(name) || !scan.expect(':') || !scan.string(value))
          return std::nullopt;
        manifest.env.emplace_back(std::move(name), std::move(value));
      }
      if (!scan.expect('}')) return std::nullopt;
    } else {
      scan.fail("unknown manifest field \"" + key + "\"");
      return std::nullopt;
    }
  }
  if (!scan.expect('}')) return std::nullopt;
  if (!scan.at_end()) {
    scan.fail("trailing characters after manifest object");
    return std::nullopt;
  }
  return manifest;
}

void write_manifest(const std::string& path, const RunManifest& manifest) {
  // Temp-then-rename: a crash mid-write never leaves a torn manifest.
  AtomicFileWriter file(path);
  file.stream() << manifest_json(manifest);
  file.commit();
}

void write_env_manifest(std::uint64_t seed, int runs, int threads) {
#if AGENTNET_OBS_LEVEL >= 1
  if (const auto path = env_string("AGENTNET_MANIFEST");
      path && !path->empty())
    write_manifest(*path, make_manifest(seed, runs, threads));
#else
  (void)seed;
  (void)runs;
  (void)threads;
#endif
}

}  // namespace agentnet::obs
