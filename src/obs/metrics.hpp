// Named simulation counters.
//
// Every counter is part of one fixed registry (the enum below) so a slot is
// a flat array — incrementing is a single relaxed atomic add, and merging
// two slots is element-wise integer addition, which is exact and
// order-independent. The experiment harness gives each replication its own
// slot and merges them in run-index order, so totals are bit-identical at
// every AGENTNET_THREADS setting (see docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "obs/obs_level.hpp"

namespace agentnet::obs {

enum class Counter : std::size_t {
  kAgentHops,            ///< Agent migrations over a link (all agent kinds).
  kAgentMeetings,        ///< Meeting groups that exchanged state.
  kKnowledgeMerges,      ///< Per-agent merges of pooled meeting state.
  kStigmergyStamps,      ///< Footprints written to a stigmergy board.
  kStigmergyAvoidances,  ///< Decisions where footprints demoted a neighbour.
  kRouteTableUpdates,    ///< Accepted route offers (RoutingTables::offer).
  kBatteryDeaths,        ///< Batteries newly drained to zero.
  kLinkFlaps,            ///< Links removed by link weather (LinkFlapper).
  kAgentsLost,           ///< Agents lost in transit (failure injection).
  kAgentsRespawned,      ///< Replacement agents launched by gateways.
  kNodeCrashes,          ///< Nodes newly down (crash window or blackout).
  kBlackoutStarts,       ///< Regional blackouts becoming active.
  kExchangesCorrupted,   ///< Meeting exchanges lost to corruption.
  kFaultLinkDrops,       ///< Edges masked out by the fault injector.
  kRoutesAged,           ///< Route entries cleared (crashed next hop).
  kWatchdogRespawns,     ///< Replacements launched by the agent watchdog.
  kAntsLaunched,         ///< Forward ants launched (ACO baseline).
  kAntHops,              ///< Ant hops, forward + backward (ACO baseline).
  kLsaMessages,          ///< LSA transmissions (flooding baseline).
  kLsaDropped,           ///< LSAs lost in transit (failure injection).
  kDvRelaxations,        ///< Accepted Bellman-Ford relaxations (DV agents).
  kTopoNodesDirty,       ///< Nodes patched by an incremental topology update.
  kTopoFullRebuilds,     ///< Full (non-incremental) topology rebuilds.
  kDerivedCacheHits,     ///< Epoch-keyed derived-state cache hits.
  kShardTilesDirty,      ///< Tiles holding ≥1 dirty node (sharded advance).
  kShardHaloRows,        ///< Clean rows patched by halo exchange (sharded).
  kFlowsStarted,         ///< Traffic sessions opened by the flow generator.
  kFlowsCompleted,       ///< Traffic sessions that emitted their last packet.
  kPacketsGenerated,     ///< Data packets injected (counted arrivals).
  kPacketsDelivered,     ///< Data packets that reached their sink.
  kPacketsDropped,       ///< Data packets dropped (any reason).
  kAgentParallelBatches,  ///< Intra-run parallel agent dispatches.
  kCheckpointSaved,      ///< Checkpoints written (snapshot autosave).
  kCheckpointRestored,   ///< Runs resumed from a checkpoint.
  kCount
};

/// True for the checkpoint bookkeeping counters. They describe the
/// recovery machinery, not the simulation, and a resumed run legitimately
/// differs from an uninterrupted one here (one extra restore) — so they
/// are excluded from the deterministic output surface: CSV counter footers
/// skip them and MetricsBuffer::tick zeroes their deltas.
constexpr bool is_checkpoint_counter(Counter counter) {
  return counter == Counter::kCheckpointSaved ||
         counter == Counter::kCheckpointRestored;
}

/// True for counters describing the *machinery* rather than the
/// simulation: checkpoint bookkeeping plus the intra-run parallel
/// dispatch count (which legitimately differs between
/// AGENTNET_AGENT_THREADS settings while every simulation quantity stays
/// bit-identical). Excluded from the deterministic output surface: CSV
/// counter footers skip them and MetricsBuffer::tick zeroes their deltas.
constexpr bool is_bookkeeping_counter(Counter counter) {
  return is_checkpoint_counter(counter) ||
         counter == Counter::kAgentParallelBatches;
}

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);

/// Stable snake_case name, used in reports and CSV footers.
const char* counter_name(Counter counter);

/// One shard of every counter. Relaxed atomics make the shared ambient slot
/// safe under concurrency; per-run slots are single-writer anyway.
class CounterSlot {
 public:
  void add(Counter counter, std::uint64_t n = 1) {
    values_[static_cast<std::size_t>(counter)].fetch_add(
        n, std::memory_order_relaxed);
  }
  std::uint64_t value(Counter counter) const {
    return values_[static_cast<std::size_t>(counter)].load(
        std::memory_order_relaxed);
  }
  /// Overwrites one counter — checkpoint restore only; per-run slots are
  /// single-writer so the relaxed store cannot race a live increment.
  void set(Counter counter, std::uint64_t n) {
    values_[static_cast<std::size_t>(counter)].store(
        n, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kCounterCount> values_{};
};

/// Plain-integer copy of a slot; comparable and mergeable.
struct MetricsSnapshot {
  std::array<std::uint64_t, kCounterCount> values{};

  std::uint64_t value(Counter counter) const {
    return values[static_cast<std::size_t>(counter)];
  }
  MetricsSnapshot& operator+=(const MetricsSnapshot& other) {
    for (std::size_t i = 0; i < kCounterCount; ++i)
      values[i] += other.values[i];
    return *this;
  }
  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

MetricsSnapshot snapshot(const CounterSlot& slot);

/// Writes one `# name=value` comment line per nonzero counter — appended to
/// CSV exports so cache/telemetry totals (topo_nodes_dirty,
/// derived_cache_hits, ...) ride along with the data they explain.
void write_counter_footer(std::ostream& os, const CounterSlot& slot);

}  // namespace agentnet::obs
