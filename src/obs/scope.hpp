// The per-run observability context and its thread-local installation.
//
// A RunObs bundles one replication's counter shard, phase accumulator and
// trace buffer. The experiment harness creates one per run, installs it on
// the executing worker with an ObsRunScope for the duration of the run,
// and merges the shards in run-index order afterwards — which is why
// counters and event streams are bit-identical at every thread count.
//
// When no scope is installed, increments land in a process-wide ambient
// slot (relaxed atomics, so that is safe from any thread); tracing is off
// in the ambient slot.
#pragma once

#include <chrono>
#include <span>

#include "obs/metrics.hpp"
#include "obs/obs_level.hpp"
#include "obs/phase.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace agentnet::obs {

struct RunObs {
  CounterSlot counters;
  PhaseAccumulator phases;
  TraceBuffer trace;
  MetricsBuffer metrics;
};

namespace detail {
/// Process-wide fallback slot (tracing disabled).
RunObs& ambient_obs();

inline RunObs*& tls_obs() {
  thread_local RunObs* slot = nullptr;
  return slot;
}
}  // namespace detail

/// The slot increments on this thread currently land in.
inline RunObs& current_obs() {
  RunObs* slot = detail::tls_obs();
  return slot ? *slot : detail::ambient_obs();
}

/// Installs `obs` as this thread's slot for the scope's lifetime; nests.
class ObsRunScope {
 public:
  explicit ObsRunScope(RunObs& obs) : prev_(detail::tls_obs()) {
    detail::tls_obs() = &obs;
  }
  ~ObsRunScope() { detail::tls_obs() = prev_; }
  ObsRunScope(const ObsRunScope&) = delete;
  ObsRunScope& operator=(const ObsRunScope&) = delete;

 private:
  RunObs* prev_;
};

inline void count(Counter counter, std::uint64_t n = 1) {
  current_obs().counters.add(counter, n);
}

/// True when the current slot samples time-series metrics at `step` —
/// the guard task loops use before computing gauge values the simulation
/// does not already pay for.
inline bool metrics_want(std::uint64_t step) {
  return current_obs().metrics.want(step);
}

inline void gauge_sample(Gauge gauge, std::uint64_t step, double value) {
  current_obs().metrics.gauge(step, gauge, value);
}

/// Closes the current slot's metrics row for `step` with the counter
/// deltas accumulated since the previous tick.
inline void metrics_tick(std::uint64_t step) {
  RunObs& obs = current_obs();
  obs.metrics.tick(step, obs.counters);
}

inline void latency_window(std::uint64_t step,
                           std::span<const std::uint64_t> histogram) {
  current_obs().metrics.sample_latency(step, histogram);
}

inline void emit(TraceEventKind kind, std::uint64_t step,
                 std::int64_t agent = -1, std::int64_t a = -1,
                 std::int64_t b = -1) {
  TraceBuffer& trace = current_obs().trace;
  if (!trace.enabled()) return;
  trace.append(TraceEvent{kind, step, agent, a, b});
}

/// RAII phase timer charging the *current* slot at destruction (or at an
/// early stop()). A no-op shell at AGENTNET_OBS_LEVEL 0.
class ScopedPhase {
 public:
#if AGENTNET_OBS_LEVEL >= 1
  explicit ScopedPhase(Phase phase)
      : phase_(phase), start_(std::chrono::steady_clock::now()) {}
  ~ScopedPhase() { stop(); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  void stop() {
    if (done_) return;
    done_ = true;
    const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_);
    current_obs().phases.add(phase_,
                             static_cast<std::uint64_t>(elapsed.count()));
  }

 private:
  Phase phase_;
  std::chrono::steady_clock::time_point start_;
  bool done_ = false;
#else
  explicit ScopedPhase(Phase) {}
  void stop() {}
#endif
};

/// Adds src's counters and phase timings into dst (exact integer sums;
/// order-independent, but the harness still merges in run-index order).
/// Trace and metrics buffers are not merged — they are written per run.
void merge_into(RunObs& dst, const RunObs& src);

}  // namespace agentnet::obs
