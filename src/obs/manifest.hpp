// Run manifests: the provenance record attached to every telemetry
// artefact (CSV, trace, metrics stream, bench JSON).
//
// A result file without its context — which seed, which AGENTNET_* knobs,
// which build type, whether the telemetry layer was even compiled in — is
// unreproducible and, for benchmarks, incomparable. The manifest is a
// small JSON document the experiment harness (and the bench binaries, via
// AGENTNET_MANIFEST) writes next to the data: deterministic field order,
// no wall-clock timestamps, so two runs of the same configuration produce
// byte-identical manifests and tools/bench_gate can diff them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs_level.hpp"

namespace agentnet::obs {

struct RunManifest {
  std::string library_version;  ///< AGENTNET_VERSION (CMake project version).
  std::string build_type;       ///< "release" (NDEBUG) or "debug".
  /// Exact CMake flavor (AGENTNET_BUILD_TYPE, e.g. "Release" or
  /// "RelWithDebInfo"); distinguishes flavors NDEBUG lumps together, so
  /// tools/bench_gate can key baselines per flavor.
  std::string cmake_build_type;
  int obs_level = AGENTNET_OBS_LEVEL;
  std::uint64_t seed = 0;       ///< Run-seed base of the experiment.
  int runs = 0;                 ///< Replications in the experiment.
  int threads = 0;              ///< Resolved worker count (AGENTNET_THREADS).
  std::uint64_t metrics_every = 1;
  std::string trace_path;       ///< Empty = no trace written.
  std::string metrics_path;     ///< Empty = no metrics written.
  /// Snapshot of every AGENTNET_* environment variable, sorted by name.
  std::vector<std::pair<std::string, std::string>> env;

  friend bool operator==(const RunManifest&, const RunManifest&) = default;
};

/// Builds a manifest for the current process: library version, build type,
/// obs level, the given experiment shape, and the sorted AGENTNET_* env
/// snapshot. `threads` 0 is resolved through bench_threads().
RunManifest make_manifest(std::uint64_t seed, int runs, int threads);

/// Deterministic pretty-printed JSON (stable key order, no timestamps).
std::string manifest_json(const RunManifest& manifest);

/// Parses manifest_json() output back; nullopt (with `*error` filled when
/// given) on malformed input or unknown keys. Round-trips exactly.
std::optional<RunManifest> parse_manifest_json(const std::string& text,
                                               std::string* error = nullptr);

/// Writes manifest_json(manifest) to `path` (truncating).
void write_manifest(const std::string& path, const RunManifest& manifest);

/// Bench-binary hook: when AGENTNET_MANIFEST names a path, writes a
/// manifest there (no-op otherwise, and at AGENTNET_OBS_LEVEL 0).
void write_env_manifest(std::uint64_t seed = 0, int runs = 0,
                        int threads = 0);

}  // namespace agentnet::obs
