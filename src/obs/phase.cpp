#include "obs/phase.hpp"

namespace agentnet::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kSetup:
      return "setup";
    case Phase::kSense:
      return "sense";
    case Phase::kExchange:
      return "exchange";
    case Phase::kDecide:
      return "decide";
    case Phase::kMove:
      return "move";
    case Phase::kMeasure:
      return "measure";
    case Phase::kWorldAdvance:
      return "world_advance";
    case Phase::kStep:
      return "step";
    case Phase::kMerge:
      return "merge";
    case Phase::kSummarize:
      return "summarize";
    case Phase::kCount:
      break;
  }
  return "?";
}

PhaseSnapshot snapshot(const PhaseAccumulator& accumulator) {
  PhaseSnapshot out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    out.entries[i].calls = accumulator.calls(phase);
    out.entries[i].ns = accumulator.ns(phase);
  }
  return out;
}

}  // namespace agentnet::obs
