#include "obs/phase.hpp"

#include <iterator>

namespace agentnet::obs {

namespace {

// Indexed by Phase; the static_assert makes adding an enumerator without
// a name (or vice versa) a compile error, not a "?" at runtime.
constexpr const char* kPhaseNames[] = {
    "setup",
    "sense",
    "exchange",
    "exchange_plan",
    "decide",
    "move",
    "commit",
    "measure",
    "world_advance",
    "step",
    "merge",
    "summarize",
};
static_assert(std::size(kPhaseNames) == kPhaseCount,
              "kPhaseNames must name every Phase enumerator");

}  // namespace

const char* phase_name(Phase phase) {
  const auto i = static_cast<std::size_t>(phase);
  return i < kPhaseCount ? kPhaseNames[i] : "?";
}

PhaseSnapshot snapshot(const PhaseAccumulator& accumulator) {
  PhaseSnapshot out;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    out.entries[i].calls = accumulator.calls(phase);
    out.entries[i].ns = accumulator.ns(phase);
  }
  return out;
}

}  // namespace agentnet::obs
