// Compile-time observability level.
//
//   0 — every AGENTNET_COUNT / AGENTNET_OBS_PHASE / AGENTNET_OBS_EVENT
//       expands to nothing: no atomics, no clock reads, no branches.
//   1 — (default) counters, phase timers and the event tracer are compiled
//       in. A counter costs one relaxed increment; an event costs a
//       thread-local load and a branch unless tracing is enabled.
//
// Set globally with -DAGENTNET_OBS_LEVEL=<n> (the CMake cache variable of
// the same name does this for the whole build). See docs/OBSERVABILITY.md.
#pragma once

#ifndef AGENTNET_OBS_LEVEL
#define AGENTNET_OBS_LEVEL 1
#endif
