#include "obs/metrics.hpp"

#include <ostream>

namespace agentnet::obs {

const char* counter_name(Counter counter) {
  switch (counter) {
    case Counter::kAgentHops:
      return "agent_hops";
    case Counter::kAgentMeetings:
      return "agent_meetings";
    case Counter::kKnowledgeMerges:
      return "knowledge_merges";
    case Counter::kStigmergyStamps:
      return "stigmergy_stamps";
    case Counter::kStigmergyAvoidances:
      return "stigmergy_avoidances";
    case Counter::kRouteTableUpdates:
      return "route_table_updates";
    case Counter::kBatteryDeaths:
      return "battery_deaths";
    case Counter::kLinkFlaps:
      return "link_flaps";
    case Counter::kAgentsLost:
      return "agents_lost";
    case Counter::kAgentsRespawned:
      return "agents_respawned";
    case Counter::kNodeCrashes:
      return "node_crashes";
    case Counter::kBlackoutStarts:
      return "blackout_starts";
    case Counter::kExchangesCorrupted:
      return "exchanges_corrupted";
    case Counter::kFaultLinkDrops:
      return "fault_link_drops";
    case Counter::kRoutesAged:
      return "routes_aged";
    case Counter::kWatchdogRespawns:
      return "watchdog_respawns";
    case Counter::kAntsLaunched:
      return "ants_launched";
    case Counter::kAntHops:
      return "ant_hops";
    case Counter::kLsaMessages:
      return "lsa_messages";
    case Counter::kLsaDropped:
      return "lsa_dropped";
    case Counter::kDvRelaxations:
      return "dv_relaxations";
    case Counter::kTopoNodesDirty:
      return "topo_nodes_dirty";
    case Counter::kTopoFullRebuilds:
      return "topo_full_rebuilds";
    case Counter::kDerivedCacheHits:
      return "derived_cache_hits";
    case Counter::kFlowsStarted:
      return "flows_started";
    case Counter::kFlowsCompleted:
      return "flows_completed";
    case Counter::kPacketsGenerated:
      return "packets_generated";
    case Counter::kPacketsDelivered:
      return "packets_delivered";
    case Counter::kPacketsDropped:
      return "packets_dropped";
    case Counter::kCount:
      break;
  }
  return "?";
}

MetricsSnapshot snapshot(const CounterSlot& slot) {
  MetricsSnapshot out;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    out.values[i] = slot.value(static_cast<Counter>(i));
  return out;
}

void write_counter_footer(std::ostream& os, const CounterSlot& slot) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto counter = static_cast<Counter>(i);
    const std::uint64_t value = slot.value(counter);
    if (value != 0)
      os << "# " << counter_name(counter) << '=' << value << '\n';
  }
}

}  // namespace agentnet::obs
