#include "obs/metrics.hpp"

#include <iterator>
#include <ostream>

namespace agentnet::obs {

namespace {

// Indexed by Counter; the static_assert makes adding an enumerator
// without a name (or vice versa) a compile error, not a "?" at runtime.
constexpr const char* kCounterNames[] = {
    "agent_hops",
    "agent_meetings",
    "knowledge_merges",
    "stigmergy_stamps",
    "stigmergy_avoidances",
    "route_table_updates",
    "battery_deaths",
    "link_flaps",
    "agents_lost",
    "agents_respawned",
    "node_crashes",
    "blackout_starts",
    "exchanges_corrupted",
    "fault_link_drops",
    "routes_aged",
    "watchdog_respawns",
    "ants_launched",
    "ant_hops",
    "lsa_messages",
    "lsa_dropped",
    "dv_relaxations",
    "topo_nodes_dirty",
    "topo_full_rebuilds",
    "derived_cache_hits",
    "shard_tiles_dirty",
    "shard_halo_rows",
    "flows_started",
    "flows_completed",
    "packets_generated",
    "packets_delivered",
    "packets_dropped",
    "agent_parallel_batches",
    "checkpoint_saved",
    "checkpoint_restored",
};
static_assert(std::size(kCounterNames) == kCounterCount,
              "kCounterNames must name every Counter enumerator");

}  // namespace

const char* counter_name(Counter counter) {
  const auto i = static_cast<std::size_t>(counter);
  return i < kCounterCount ? kCounterNames[i] : "?";
}

MetricsSnapshot snapshot(const CounterSlot& slot) {
  MetricsSnapshot out;
  for (std::size_t i = 0; i < kCounterCount; ++i)
    out.values[i] = slot.value(static_cast<Counter>(i));
  return out;
}

void write_counter_footer(std::ostream& os, const CounterSlot& slot) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto counter = static_cast<Counter>(i);
    // Machinery bookkeeping is excluded: a resumed run must produce this
    // footer byte-identically to the uninterrupted run it continues, and a
    // parallel-agent run byte-identically to the serial one.
    if (is_bookkeeping_counter(counter)) continue;
    const std::uint64_t value = slot.value(counter);
    if (value != 0)
      os << "# " << counter_name(counter) << '=' << value << '\n';
  }
}

}  // namespace agentnet::obs
