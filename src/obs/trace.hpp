// Structured event tracing for agent lifecycles.
//
// Every record carries only *simulation* quantities (run id, step, agent
// id, node ids) — never wall-clock — so a traced run's event stream is as
// deterministic as the run itself: identical at every AGENTNET_THREADS
// setting. Events are buffered per replication and written in run-index
// order, so parallel replications never interleave in the output.
//
// Two on-disk formats (see docs/OBSERVABILITY.md):
//   jsonl  — one JSON object per line; the canonical, parse-backable form.
//   chrome — Trace Event instants loadable in chrome://tracing / Perfetto
//            (ts = simulation step in "microseconds", pid = run,
//            tid = agent).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/obs_level.hpp"

namespace agentnet::obs {

enum class TraceEventKind : std::uint8_t {
  kSpawn,         ///< Agent placed on its start node.
  kMove,          ///< Agent migrated over a link.
  kMeet,          ///< A meeting group exchanged state.
  kMerge,         ///< One agent merged the pooled meeting state.
  kStamp,         ///< Stigmergy footprint written.
  kRouteUpdate,   ///< Agent installed a route at its node.
  kLost,          ///< Agent lost in transit (failure injection).
  kRespawn,       ///< Gateway launched a replacement agent.
  kBatteryDeath,  ///< A node's battery drained to zero.
  kNodeCrash,     ///< A node went down (crash window or blackout).
  kNodeRecover,   ///< A down node came back up.
  kBlackoutStart,  ///< A regional blackout became active.
  kBlackoutEnd,    ///< A regional blackout ended.
  kExchangeCorrupted,  ///< A meeting's knowledge exchange was corrupted.
  kWatchdogRespawn,    ///< The watchdog replaced a silent roster slot.
  kFlowStart,     ///< Traffic session opened (src, dst).
  kFlowEnd,       ///< Traffic session emitted its last packet.
  kPacketDrop,    ///< Data packets dropped at a node (count per step).
  kCheckpointSaved,     ///< Run state checkpointed at this step.
  kCheckpointRestored,  ///< Run resumed from a checkpoint at this step.
  kFinish,        ///< Mapping task finished (all maps perfect).
  kRunGroup,      ///< File marker: one experiment's group of runs follows.
  kCount
};

const char* trace_event_name(TraceEventKind kind);

/// One event. `agent`, `a` and `b` are kind-specific (see the field-name
/// table in trace.cpp); negative means "not applicable" and the field is
/// omitted from the serialized record.
struct TraceEvent {
  TraceEventKind kind{};
  std::uint64_t step = 0;
  std::int64_t agent = -1;
  std::int64_t a = -1;
  std::int64_t b = -1;
  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Per-replication event buffer: single writer, appended in program order.
class TraceBuffer {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }
  void append(const TraceEvent& event) {
    if (enabled_) events_.push_back(event);
  }
  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

enum class TraceFormat { kJsonl, kChrome };

/// Canonical JSONL form; `run` < 0 omits the run field (kRunGroup markers).
std::string serialize_trace_line(std::int64_t run, const TraceEvent& event);

/// Chrome Trace Event form (one array element, no trailing comma).
std::string serialize_chrome_line(std::int64_t run, const TraceEvent& event);

/// A parsed JSONL record.
struct TraceRecord {
  std::int64_t run = -1;
  TraceEvent event;
};

/// Strict parse of one JSONL line; nullopt (with `*error` filled when
/// given) on malformed input, unknown event kinds or unknown fields.
/// Round-trips: serialize_trace_line(r.run, r.event) reproduces the line.
std::optional<TraceRecord> parse_trace_line(const std::string& line,
                                            std::string* error = nullptr);

/// Appends one experiment's buffers to `path` in run-index order (buffer i
/// is run i), preceded by a kRunGroup marker in jsonl form. The first
/// write to a path in this process truncates it; later writes append, so a
/// bench binary running many experiments yields one file of run groups.
void write_trace(const std::string& path, TraceFormat format,
                 std::span<const TraceBuffer* const> buffers);

}  // namespace agentnet::obs
