#include "obs/scope.hpp"

namespace agentnet::obs {

namespace detail {
RunObs& ambient_obs() {
  static RunObs* ambient = new RunObs();  // leaked: outlives every thread
  return *ambient;
}
}  // namespace detail

void merge_into(RunObs& dst, const RunObs& src) {
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    const auto counter = static_cast<Counter>(i);
    if (const std::uint64_t v = src.counters.value(counter))
      dst.counters.add(counter, v);
  }
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto phase = static_cast<Phase>(i);
    if (const std::uint64_t calls = src.phases.calls(phase))
      dst.phases.add(phase, src.phases.ns(phase), calls);
  }
}

}  // namespace agentnet::obs
