// Deterministic per-step time-series metrics.
//
// Counters (metrics.hpp) answer "how much, in total"; the paper's claims
// are *trajectories* — connectivity discovered over time, routing quality
// recovering after churn — so this layer records per-step samples:
//
//   * gauges     — instantaneous doubles (live-node fraction, connectivity,
//                  queue depth, pheromone entropy), sampled by the task
//                  loops at steps where step % metrics_every == 0;
//   * deltas     — counter increments since the previous sampled step
//                  (windowed rates, not cumulative totals);
//   * latency    — p50/p95/p99 of the flow data plane's exact integer
//                  latency histogram over the same window, via the same
//                  rank statistic FlowTrafficStats::latency_quantile uses.
//
// The determinism contract matches tracing (trace.hpp): every sample is a
// pure simulation quantity, each replication records into its own
// MetricsBuffer (the RunObs slot), and write_metrics() emits buffers in
// run-index order — so the JSONL stream is bit-identical at every
// AGENTNET_THREADS setting. At AGENTNET_OBS_LEVEL 0 the sampler macros in
// obs.hpp compile to nothing and the layer costs zero instructions.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/obs_level.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet::obs {

/// The fixed gauge registry: like Counter, one enum so a row is a flat
/// array and serialization order never depends on sampling order.
enum class Gauge : std::size_t {
  kLiveFraction,       ///< Fraction of nodes up in the fault injector's mask.
  kBatteryAlive,       ///< Fraction of nodes with battery charge remaining.
  kConnectivity,       ///< Fraction of nodes holding a validating route.
  kOracleConnectivity, ///< BFS upper bound on the same step's topology.
  kKnowledge,          ///< Mean map-completeness across mapping agents.
  kQueueDepth,         ///< Data packets queued anywhere in the network.
  kPheromoneEntropy,   ///< Mean normalized entropy of pheromone rows (ACO).
  kCount
};

inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(Gauge::kCount);

/// Stable snake_case name, used as the JSONL key.
const char* gauge_name(Gauge gauge);

/// One sampled step of one run. Gauges carry presence flags (a routing run
/// never records knowledge); deltas default to zero and zero deltas are
/// omitted from the serialized form.
struct MetricsRow {
  std::uint64_t step = 0;
  std::array<double, kGaugeCount> gauges{};
  std::array<bool, kGaugeCount> has_gauge{};
  /// Counter increments since the previous sampled row of this run.
  std::array<std::uint64_t, kCounterCount> deltas{};
  bool has_latency = false;
  std::uint64_t lat_count = 0;  ///< Packets delivered inside the window.
  std::uint64_t lat_p50 = 0;
  std::uint64_t lat_p95 = 0;
  std::uint64_t lat_p99 = 0;
  friend bool operator==(const MetricsRow&, const MetricsRow&) = default;
};

/// Exact q-quantile (q in [0,1]) of an integer histogram where
/// histogram[v] counts samples of value v: the smallest v whose cumulative
/// count reaches ceil(q * total). 0 on an empty histogram. Element-wise
/// histogram addition commutes, so the statistic is independent of merge
/// order — the same rank rule FlowTrafficStats::latency_quantile applies
/// to the full-run histogram (docs/TRAFFIC.md).
std::uint64_t histogram_quantile(std::span<const std::uint64_t> histogram,
                                 double q);

/// One replication's time-series shard: single writer, rows appended in
/// increasing step order. Disabled (the default) every sampler is a no-op,
/// so the ambient slot never accumulates rows.
class MetricsBuffer {
 public:
  /// Turns sampling on; `every` >= 1 decimates to steps ≡ 0 (mod every).
  void enable(std::uint64_t every) {
    enabled_ = true;
    every_ = every == 0 ? 1 : every;
  }
  bool enabled() const { return enabled_; }
  std::uint64_t every() const { return every_; }

  /// True when `step` should be sampled — the cheap guard task loops use
  /// before computing gauges the simulation does not already pay for.
  bool want(std::uint64_t step) const {
    return enabled_ && step % every_ == 0;
  }

  /// Records one gauge sample at `step` (callers check want() first).
  void gauge(std::uint64_t step, Gauge gauge, double value);

  /// Closes the row for `step`: charges the counter increments since the
  /// previous tick to it. Called once at the end of each sampled step, so
  /// the window covers every step since the last sample, sampled or not.
  void tick(std::uint64_t step, const CounterSlot& counters);

  /// Snapshots the latency histogram's window since the previous sample:
  /// per-window packet count and p50/p95/p99 of the window's distribution.
  /// A bucket that shrank means the stats were reset (measure_from), in
  /// which case the current histogram is the window.
  void sample_latency(std::uint64_t step,
                      std::span<const std::uint64_t> histogram);

  const std::vector<MetricsRow>& rows() const { return rows_; }
  void clear();

  /// Checkpoint support: serializes / restores the sampling state (rows,
  /// last-counter snapshot, latency window baseline) so a resumed run's
  /// JSONL stream is byte-identical to the uninterrupted run's. The
  /// enabled/every configuration is not carried — it comes from the
  /// environment, which must match across save and resume.
  void save_state(snapshot::ByteWriter& w) const;
  void load_state(snapshot::ByteReader& r);

 private:
  MetricsRow& row_for(std::uint64_t step);

  bool enabled_ = false;
  std::uint64_t every_ = 1;
  std::vector<MetricsRow> rows_;
  MetricsSnapshot last_counters_;
  std::vector<std::uint64_t> last_latency_;
  std::vector<std::uint64_t> window_;  ///< Scratch for sample_latency.
};

/// One JSONL line: {"run":r,"step":s,<gauges>,<"d_"-prefixed deltas>,
/// <lat_* fields>}. Doubles use std::to_chars shortest round-trip form, so
/// serialization is locale-independent and parse_metrics_line reproduces
/// the exact bits.
std::string serialize_metrics_line(std::int64_t run, const MetricsRow& row);

/// A group header: {"group":"metrics","runs":N,"every":E}. One precedes
/// each experiment's rows, mirroring the trace run_group marker.
std::string serialize_metrics_group(std::uint64_t runs, std::uint64_t every);

/// A parsed JSONL record: either a group header or one run's row.
struct MetricsRecord {
  bool is_group = false;
  std::uint64_t runs = 0;   ///< Group only.
  std::uint64_t every = 0;  ///< Group only.
  std::int64_t run = -1;    ///< Row only.
  MetricsRow row;           ///< Row only.
};

/// Strict parse of one metrics JSONL line; nullopt (with `*error` filled
/// when given) on malformed input or unknown keys. Round-trips exactly.
std::optional<MetricsRecord> parse_metrics_line(const std::string& line,
                                                std::string* error = nullptr);

/// Appends one experiment's buffers to `path` in run-index order (buffer i
/// is run i), preceded by a group header. Same per-process semantics as
/// write_trace: the first write truncates, later experiments append.
void write_metrics(const std::string& path,
                   std::span<const MetricsBuffer* const> buffers);

}  // namespace agentnet::obs
