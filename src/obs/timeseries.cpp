#include "obs/timeseries.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <mutex>
#include <set>
#include <utility>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace agentnet::obs {

namespace {

constexpr const char* kGaugeNames[] = {
    "live_fraction",      // kLiveFraction
    "battery_alive",      // kBatteryAlive
    "connectivity",       // kConnectivity
    "oracle_connectivity",// kOracleConnectivity
    "knowledge",          // kKnowledge
    "queue_depth",        // kQueueDepth
    "pheromone_entropy",  // kPheromoneEntropy
};
static_assert(std::size(kGaugeNames) == kGaugeCount,
              "every Gauge enumerator needs a name in kGaugeNames");

/// std::to_chars shortest round-trip form: re-parsing yields the same
/// double bit-for-bit, and the output is locale-independent.
void append_double(std::string& out, double value) {
  char buf[32];
  const auto result = std::to_chars(buf, buf + sizeof buf, value);
  AGENTNET_ASSERT(result.ec == std::errc());
  out.append(buf, result.ptr);
}

void append_u64(std::string& out, const char* key, std::uint64_t value) {
  out += ",\"";
  out += key;
  out += "\":";
  out += std::to_string(value);
}

}  // namespace

const char* gauge_name(Gauge gauge) {
  const auto i = static_cast<std::size_t>(gauge);
  return i < kGaugeCount ? kGaugeNames[i] : "?";
}

std::uint64_t histogram_quantile(std::span<const std::uint64_t> histogram,
                                 double q) {
  AGENTNET_ASSERT(q >= 0.0 && q <= 1.0);
  std::uint64_t total = 0;
  for (const std::uint64_t count : histogram) total += count;
  if (total == 0) return 0;
  auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  rank = std::clamp<std::uint64_t>(rank, 1, total);
  std::uint64_t cumulative = 0;
  for (std::size_t value = 0; value < histogram.size(); ++value) {
    cumulative += histogram[value];
    if (cumulative >= rank) return value;
  }
  return histogram.size() - 1;
}

MetricsRow& MetricsBuffer::row_for(std::uint64_t step) {
  if (!rows_.empty() && rows_.back().step == step) return rows_.back();
  AGENTNET_ASSERT_MSG(rows_.empty() || rows_.back().step < step,
                      "metrics rows must be appended in step order");
  rows_.emplace_back();
  rows_.back().step = step;
  return rows_.back();
}

void MetricsBuffer::gauge(std::uint64_t step, Gauge gauge, double value) {
  if (!want(step)) return;
  MetricsRow& row = row_for(step);
  const auto i = static_cast<std::size_t>(gauge);
  row.gauges[i] = value;
  row.has_gauge[i] = true;
}

void MetricsBuffer::tick(std::uint64_t step, const CounterSlot& counters) {
  if (!want(step)) return;
  MetricsRow& row = row_for(step);
  const MetricsSnapshot now = snapshot(counters);
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    // Machinery bookkeeping stays out of the stream: a resumed run's rows
    // must be byte-identical to the uninterrupted run's, and a
    // parallel-agent run's to the serial run's.
    if (is_bookkeeping_counter(static_cast<Counter>(i))) continue;
    row.deltas[i] += now.values[i] - last_counters_.values[i];
  }
  last_counters_ = now;
}

void MetricsBuffer::sample_latency(std::uint64_t step,
                                   std::span<const std::uint64_t> histogram) {
  if (!want(step)) return;
  MetricsRow& row = row_for(step);
  // A shrunk bucket means the data plane's stats were reset (measure_from),
  // so the current histogram is itself the window.
  bool reset = histogram.size() < last_latency_.size();
  if (!reset) {
    for (std::size_t i = 0; i < last_latency_.size(); ++i)
      if (histogram[i] < last_latency_[i]) {
        reset = true;
        break;
      }
  }
  window_.assign(histogram.begin(), histogram.end());
  if (!reset)
    for (std::size_t i = 0; i < last_latency_.size(); ++i)
      window_[i] -= last_latency_[i];
  std::uint64_t count = 0;
  for (const std::uint64_t c : window_) count += c;
  row.has_latency = true;
  row.lat_count = count;
  row.lat_p50 = count == 0 ? 0 : histogram_quantile(window_, 0.50);
  row.lat_p95 = count == 0 ? 0 : histogram_quantile(window_, 0.95);
  row.lat_p99 = count == 0 ? 0 : histogram_quantile(window_, 0.99);
  last_latency_.assign(histogram.begin(), histogram.end());
}

void MetricsBuffer::clear() {
  rows_.clear();
  last_counters_ = MetricsSnapshot{};
  last_latency_.clear();
}

void MetricsBuffer::save_state(snapshot::ByteWriter& w) const {
  w.size(rows_.size());
  for (const MetricsRow& row : rows_) {
    w.u64(row.step);
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      w.boolean(row.has_gauge[i]);
      w.f64(row.gauges[i]);
    }
    for (std::size_t i = 0; i < kCounterCount; ++i) w.u64(row.deltas[i]);
    w.boolean(row.has_latency);
    w.u64(row.lat_count);
    w.u64(row.lat_p50);
    w.u64(row.lat_p95);
    w.u64(row.lat_p99);
  }
  for (std::size_t i = 0; i < kCounterCount; ++i)
    w.u64(last_counters_.values[i]);
  w.pod_vec(last_latency_);
}

void MetricsBuffer::load_state(snapshot::ByteReader& r) {
  const std::size_t n = r.counted(8);
  rows_.clear();
  rows_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    MetricsRow row;
    row.step = r.u64();
    for (std::size_t i = 0; i < kGaugeCount; ++i) {
      row.has_gauge[i] = r.boolean();
      row.gauges[i] = r.f64();
    }
    for (std::size_t i = 0; i < kCounterCount; ++i) row.deltas[i] = r.u64();
    row.has_latency = r.boolean();
    row.lat_count = r.u64();
    row.lat_p50 = r.u64();
    row.lat_p95 = r.u64();
    row.lat_p99 = r.u64();
    rows_.push_back(row);
  }
  for (std::size_t i = 0; i < kCounterCount; ++i)
    last_counters_.values[i] = r.u64();
  r.pod_vec(last_latency_);
}

std::string serialize_metrics_line(std::int64_t run, const MetricsRow& row) {
  std::string out = "{\"run\":";
  out += std::to_string(run);
  out += ",\"step\":";
  out += std::to_string(row.step);
  for (std::size_t i = 0; i < kGaugeCount; ++i) {
    if (!row.has_gauge[i]) continue;
    out += ",\"";
    out += kGaugeNames[i];
    out += "\":";
    append_double(out, row.gauges[i]);
  }
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    if (row.deltas[i] == 0) continue;
    out += ",\"d_";
    out += counter_name(static_cast<Counter>(i));
    out += "\":";
    out += std::to_string(row.deltas[i]);
  }
  if (row.has_latency) {
    append_u64(out, "lat_n", row.lat_count);
    append_u64(out, "lat_p50", row.lat_p50);
    append_u64(out, "lat_p95", row.lat_p95);
    append_u64(out, "lat_p99", row.lat_p99);
  }
  out += "}";
  return out;
}

std::string serialize_metrics_group(std::uint64_t runs, std::uint64_t every) {
  std::string out = "{\"group\":\"metrics\",\"runs\":";
  out += std::to_string(runs);
  out += ",\"every\":";
  out += std::to_string(every);
  out += "}";
  return out;
}

namespace {

/// Tokenizes a flat {"key":value,...} object whose values are numbers
/// (integer or double) or strings. The trace parser's sibling; this one
/// admits the double syntax std::to_chars emits.
bool tokenize_metrics_object(
    const std::string& line,
    std::vector<std::pair<std::string, std::string>>& pairs,
    std::vector<bool>& is_string, std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return false;
  };
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      if (i >= line.size() || line[i] != '"')
        return fail("expected '\"' starting a key");
      const std::size_t key_start = ++i;
      while (i < line.size() && line[i] != '"') ++i;
      if (i >= line.size()) return fail("unterminated key");
      std::string key = line.substr(key_start, i - key_start);
      ++i;
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      std::string value;
      bool quoted = false;
      if (i < line.size() && line[i] == '"') {
        quoted = true;
        const std::size_t value_start = ++i;
        while (i < line.size() && line[i] != '"') ++i;
        if (i >= line.size()) return fail("unterminated string value");
        value = line.substr(value_start, i - value_start);
        ++i;
      } else {
        const std::size_t value_start = i;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) ||
                line[i] == '-' || line[i] == '+' || line[i] == '.' ||
                line[i] == 'e' || line[i] == 'E'))
          ++i;
        if (i == value_start) return fail("expected number or string value");
        value = line.substr(value_start, i - value_start);
      }
      pairs.emplace_back(std::move(key), std::move(value));
      is_string.push_back(quoted);
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != line.size()) return fail("trailing characters after '}'");
  return true;
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc() && result.ptr == end;
}

bool parse_i64(const std::string& value, std::int64_t& out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc() && result.ptr == end;
}

bool parse_double(const std::string& value, double& out) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  const auto result = std::from_chars(begin, end, out);
  return result.ec == std::errc() && result.ptr == end;
}

}  // namespace

std::optional<MetricsRecord> parse_metrics_line(const std::string& line,
                                                std::string* error) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::vector<bool> is_string;
  if (!tokenize_metrics_object(line, pairs, is_string, error))
    return std::nullopt;
  const auto fail = [&](const std::string& message) {
    if (error) *error = message;
    return std::nullopt;
  };

  MetricsRecord record;
  for (const auto& [key, value] : pairs)
    if (key == "group") {
      if (value != "metrics")
        return fail("unknown group kind: " + value);
      record.is_group = true;
    }

  if (record.is_group) {
    bool have_runs = false, have_every = false;
    for (const auto& [key, value] : pairs) {
      if (key == "group") continue;
      if (key == "runs") {
        if (!parse_u64(value, record.runs))
          return fail("runs is not an integer: " + value);
        have_runs = true;
      } else if (key == "every") {
        if (!parse_u64(value, record.every))
          return fail("every is not an integer: " + value);
        have_every = true;
      } else {
        return fail("unknown group field \"" + key + "\"");
      }
    }
    if (!have_runs || !have_every)
      return fail("group header needs runs and every");
    return record;
  }

  bool have_run = false, have_step = false;
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    const auto& [key, value] = pairs[p];
    if (is_string[p]) return fail("unexpected string value for " + key);
    if (key == "run") {
      if (!parse_i64(value, record.run) || record.run < 0)
        return fail("run is not a non-negative integer: " + value);
      have_run = true;
      continue;
    }
    if (key == "step") {
      if (!parse_u64(value, record.row.step))
        return fail("step is not an integer: " + value);
      have_step = true;
      continue;
    }
    if (key == "lat_n" || key == "lat_p50" || key == "lat_p95" ||
        key == "lat_p99") {
      std::uint64_t parsed = 0;
      if (!parse_u64(value, parsed))
        return fail("field " + key + " is not an integer: " + value);
      record.row.has_latency = true;
      if (key == "lat_n")
        record.row.lat_count = parsed;
      else if (key == "lat_p50")
        record.row.lat_p50 = parsed;
      else if (key == "lat_p95")
        record.row.lat_p95 = parsed;
      else
        record.row.lat_p99 = parsed;
      continue;
    }
    if (key.starts_with("d_")) {
      const std::string name = key.substr(2);
      bool matched = false;
      for (std::size_t i = 0; i < kCounterCount; ++i)
        if (name == counter_name(static_cast<Counter>(i))) {
          if (!parse_u64(value, record.row.deltas[i]))
            return fail("field " + key + " is not an integer: " + value);
          matched = true;
          break;
        }
      if (!matched) return fail("unknown counter delta \"" + key + "\"");
      continue;
    }
    bool matched = false;
    for (std::size_t i = 0; i < kGaugeCount; ++i)
      if (key == kGaugeNames[i]) {
        if (!parse_double(value, record.row.gauges[i]))
          return fail("gauge " + key + " is not a number: " + value);
        record.row.has_gauge[i] = true;
        matched = true;
        break;
      }
    if (!matched) return fail("unknown field \"" + key + "\"");
  }
  if (!have_run || !have_step) return fail("row needs run and step fields");
  return record;
}

void write_metrics(const std::string& path,
                   std::span<const MetricsBuffer* const> buffers) {
  // Same per-process semantics as write_trace: the first write to a path
  // truncates; later experiments append further groups. Serialized so
  // concurrent experiments cannot interleave.
  static std::mutex mutex;
  static std::set<std::string>* opened = new std::set<std::string>();
  std::lock_guard<std::mutex> lock(mutex);
  const bool first = opened->insert(path).second;

  const auto emit = [&](std::ostream& os) {
    const std::uint64_t every = buffers.empty() ? 1 : buffers[0]->every();
    os << serialize_metrics_group(buffers.size(), every) << "\n";
    for (std::size_t run = 0; run < buffers.size(); ++run)
      for (const MetricsRow& row : buffers[run]->rows())
        os << serialize_metrics_line(static_cast<std::int64_t>(run), row)
           << "\n";
  };

  if (first) {
    // A crash mid-write must not leave a torn file at the target path.
    AtomicFileWriter file(path);
    emit(file.stream());
    file.commit();
  } else {
    // Appends cannot rename-over (that would drop the earlier groups);
    // they stay in place but still fail loudly on short writes.
    std::ofstream os(path, std::ios::app);
    AGENTNET_REQUIRE(os.is_open(), "cannot write metrics file " + path);
    emit(os);
    os.flush();
    AGENTNET_REQUIRE(os.good(), "error while writing metrics file " + path);
  }
}

}  // namespace agentnet::obs
