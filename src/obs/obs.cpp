#include "obs/obs.hpp"

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet::obs {

ObsConfig ObsConfig::from_env() {
  ObsConfig config;
#if AGENTNET_OBS_LEVEL >= 1
  if (auto path = env_string("AGENTNET_TRACE"); path && !path->empty()) {
    config.trace_path = std::move(*path);
    if (auto format = env_string("AGENTNET_TRACE_FORMAT")) {
      if (*format == "jsonl")
        config.trace_format = TraceFormat::kJsonl;
      else if (*format == "chrome")
        config.trace_format = TraceFormat::kChrome;
      else
        throw ConfigError("AGENTNET_TRACE_FORMAT must be jsonl or chrome, got " +
                          *format);
    }
  }
#endif
  return config;
}

}  // namespace agentnet::obs
