#include "obs/obs.hpp"

#include <iomanip>
#include <ostream>
#include <vector>

#include "common/env.hpp"
#include "common/error.hpp"

namespace agentnet::obs {

ObsConfig ObsConfig::from_env() {
  ObsConfig config;
#if AGENTNET_OBS_LEVEL >= 1
  if (auto path = env_string("AGENTNET_TRACE"); path && !path->empty()) {
    config.trace_path = std::move(*path);
    if (auto format = env_string("AGENTNET_TRACE_FORMAT")) {
      if (*format == "jsonl")
        config.trace_format = TraceFormat::kJsonl;
      else if (*format == "chrome")
        config.trace_format = TraceFormat::kChrome;
      else
        throw ConfigError("AGENTNET_TRACE_FORMAT must be jsonl or chrome, got " +
                          *format);
    }
  }
  if (auto path = env_string("AGENTNET_METRICS"); path && !path->empty()) {
    config.metrics_path = std::move(*path);
    const std::int64_t every = env_int("AGENTNET_METRICS_EVERY", 1);
    if (every < 1)
      throw ConfigError("AGENTNET_METRICS_EVERY must be >= 1, got " +
                        std::to_string(every));
    config.metrics_every = static_cast<std::uint64_t>(every);
  }
  if (auto path = env_string("AGENTNET_MANIFEST"); path && !path->empty())
    config.manifest_path = std::move(*path);
#endif
  return config;
}

void enable_slots(std::span<RunObs> slots, const ObsConfig& config) {
  for (RunObs& slot : slots) {
    if (config.trace_path) slot.trace.enable();
    if (config.metrics_path) slot.metrics.enable(config.metrics_every);
  }
}

void merge_and_write(std::span<RunObs> slots, const ObsConfig& config,
                     std::uint64_t run_seed_base, int runs, int threads) {
  RunObs& dest = config.sink ? *config.sink : current_obs();
  {
    ObsRunScope merge_scope(dest);
    AGENTNET_OBS_PHASE(kMerge);
    for (const RunObs& slot : slots) merge_into(dest, slot);
    if (config.trace_path) {
      std::vector<const TraceBuffer*> traces;
      traces.reserve(slots.size());
      for (const RunObs& slot : slots) traces.push_back(&slot.trace);
      write_trace(*config.trace_path, config.trace_format, traces);
    }
    if (config.metrics_path) {
      std::vector<const MetricsBuffer*> buffers;
      buffers.reserve(slots.size());
      for (const RunObs& slot : slots) buffers.push_back(&slot.metrics);
      write_metrics(*config.metrics_path, buffers);
    }
  }
  if (config.manifest_path) {
    RunManifest manifest = make_manifest(run_seed_base, runs, threads);
    manifest.metrics_every = config.metrics_every;
    if (config.trace_path) manifest.trace_path = *config.trace_path;
    if (config.metrics_path) manifest.metrics_path = *config.metrics_path;
    write_manifest(*config.manifest_path, manifest);
  }
}

void write_run_footer(std::ostream& os, const RunObs& obs,
                      const ObsConfig& config) {
  write_counter_footer(os, obs.counters);
  const PhaseSnapshot phases = snapshot(obs.phases);
  const auto flags = os.flags();
  const auto precision = os.precision();
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseSnapshot::Entry& entry = phases.entries[i];
    if (entry.calls == 0 && entry.ns == 0) continue;
    os << "# phase_" << phase_name(static_cast<Phase>(i)) << "_ms="
       << std::fixed << std::setprecision(3)
       << static_cast<double>(entry.ns) / 1e6 << '\n';
  }
  os.flags(flags);
  os.precision(precision);
  if (config.trace_path) os << "# trace_path=" << *config.trace_path << '\n';
  if (config.metrics_path)
    os << "# metrics_path=" << *config.metrics_path << '\n';
  if (config.manifest_path)
    os << "# manifest_path=" << *config.manifest_path << '\n';
}

}  // namespace agentnet::obs
