// Phase timing: where does a run's wall-clock go?
//
// A phase is one of the fixed stages every task loop decomposes into
// (sense / exchange / decide / move / measure / world-advance) plus the
// harness stages around it (setup / step / merge / summarize). Timings are
// wall-clock and therefore *not* part of the determinism contract — they
// never feed back into a simulation, and they are reported out-of-band
// (stderr, CSV `#` footers) so result tables stay byte-stable.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

#include "obs/obs_level.hpp"

namespace agentnet::obs {

enum class Phase : std::size_t {
  kSetup,         ///< Scenario / team construction before the step loop.
  kSense,         ///< Agents observing their node (arrival bookkeeping).
  kExchange,      ///< Meetings: pooling and distributing shared state.
  kExchangePlan,  ///< Exchange sub-phase: serial meeting planning
                  ///< (talker filters, fault draws, meeting events).
  kDecide,        ///< Movement decisions (incl. stigmergy queries).
  kMove,          ///< Migration + per-node installs.
  kCommit,        ///< Two-phase step sub-phase: index-order commit /
                  ///< replay of per-slot results (parallel agent engine).
  kMeasure,       ///< Connectivity / knowledge measurement.
  kWorldAdvance,  ///< Mobility, battery drain, link rebuild (World::advance).
  kStep,          ///< Whole-step granularity for baselines (aco/flooding).
  kMerge,         ///< Combining replication results in run-index order.
  kSummarize,     ///< Final statistics over the recorded series.
  kCount
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Stable snake_case name, used in reports and CSV footers.
const char* phase_name(Phase phase);

/// Accumulated nanoseconds and call counts per phase. Same sharding story
/// as CounterSlot: relaxed atomics, exact integer merges.
class PhaseAccumulator {
 public:
  void add(Phase phase, std::uint64_t ns, std::uint64_t calls = 1) {
    const auto i = static_cast<std::size_t>(phase);
    ns_[i].fetch_add(ns, std::memory_order_relaxed);
    calls_[i].fetch_add(calls, std::memory_order_relaxed);
  }
  std::uint64_t ns(Phase phase) const {
    return ns_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t calls(Phase phase) const {
    return calls_[static_cast<std::size_t>(phase)].load(
        std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kPhaseCount> ns_{};
  std::array<std::atomic<std::uint64_t>, kPhaseCount> calls_{};
};

/// Plain copy of an accumulator; comparable and mergeable.
struct PhaseSnapshot {
  struct Entry {
    std::uint64_t calls = 0;
    std::uint64_t ns = 0;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::array<Entry, kPhaseCount> entries{};

  const Entry& at(Phase phase) const {
    return entries[static_cast<std::size_t>(phase)];
  }
  PhaseSnapshot& operator+=(const PhaseSnapshot& other) {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      entries[i].calls += other.entries[i].calls;
      entries[i].ns += other.entries[i].ns;
    }
    return *this;
  }
  friend bool operator==(const PhaseSnapshot&,
                         const PhaseSnapshot&) = default;
};

PhaseSnapshot snapshot(const PhaseAccumulator& accumulator);

}  // namespace agentnet::obs
