// Flow-based heavy-traffic data plane with per-link queueing delay.
//
// The legacy TrafficSimulator (traffic.hpp) injects independent Bernoulli
// packets — fine as a delivery probe, useless as a *load* model: real
// traffic arrives in sessions (a sensor burst, a bulk transfer), and links
// have finite capacity, so delay grows with queue occupancy. This module
// supplies both halves of the AntNet story (see docs/TRAFFIC.md):
//
//   * A workload generator: Poisson session arrivals per node, each session
//     a CBR packet train, drawn from an elephant–mice mix, addressed either
//     uplink (any gateway sinks it) or peer-to-peer. Arrivals are *counted*
//     — a queue entry is a batch {origin, dst, count, created_at, hops} —
//     so millions of packets cost thousands of batch moves.
//   * A forwarding plane with per-link capacity: each node's out-link
//     serves `link_capacity` packets per step; the excess queues, and the
//     per-hop delay 1 + queued/capacity is exported to the ants so the ACO
//     layer can reinforce by measured trip time instead of hop count.
//
// Everything is deterministic given the constructor Rng and the sequence of
// (graph, tables) steps: forwarding draws no randomness, latency is an
// exact integer histogram (mergeable across runs in run-index order, hence
// bit-identical percentiles at every AGENTNET_THREADS setting).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/agent_parallel.hpp"
#include "common/rng.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

/// Who a session talks to. Uplink sessions sink at whichever gateway the
/// tables reach; peer-to-peer sessions name a node (delivered on reaching
/// it directly, or on reaching any gateway, which relays over the backhaul).
enum class TrafficPattern {
  kUplink,      ///< All sessions gateway-bound.
  kPeerToPeer,  ///< All sessions node-to-node.
  kMixed,       ///< p2p_fraction of sessions are peer-to-peer.
};

/// Workload shape. The primary knob is `offered_load` (mean packets per
/// non-gateway node per step); the Poisson session-arrival rate is derived
/// from it and the mean session size, so changing the mix does not silently
/// change the load.
struct FlowWorkloadConfig {
  double offered_load = 0.1;        ///< Mean packets / node / step.
  double elephant_fraction = 0.1;   ///< P(session is an elephant).
  std::uint32_t mice_packets = 4;   ///< Mouse session size; 1 pkt / step.
  std::uint32_t elephant_packets = 64;  ///< Elephant session size.
  std::uint32_t elephant_rate = 4;  ///< Elephant emission, packets / step.
  TrafficPattern pattern = TrafficPattern::kUplink;
  double p2p_fraction = 0.2;        ///< Used only by kMixed.

  /// Mean packets per session under the current mix.
  double mean_session_packets() const;
  /// Poisson arrival rate (sessions / node / step) realizing offered_load.
  double session_rate() const;

  /// Reads AGENTNET_TRAFFIC_LOAD, _ELEPHANT_FRACTION, _MICE_PACKETS,
  /// _ELEPHANT_PACKETS, _ELEPHANT_RATE, _PATTERN (uplink|p2p|mixed) and
  /// _P2P_FRACTION over these defaults (table in docs/TRAFFIC.md).
  static FlowWorkloadConfig from_env();
  void validate() const;
};

/// Forwarding-plane capacities. Each node has one out-route at a time, so
/// per-node service *is* per-link service.
struct LinkQueueConfig {
  std::size_t link_capacity = 4;    ///< Packets served / node / step.
  /// Per-node queue limit, in packets. Deep enough (64 service-steps) that
  /// congestion shows up as queueing delay rather than being censored into
  /// queue-full drops — shallow queues hide the latency tail by discarding
  /// exactly the packets that would have populated it (docs/TRAFFIC.md).
  std::size_t queue_capacity = 256;
  std::uint32_t ttl = 64;           ///< Hop budget per packet.
  std::size_t route_patience = 10;  ///< Steps a packet waits for a route.

  /// Reads AGENTNET_TRAFFIC_LINK_CAPACITY, _QUEUE_CAPACITY, _TTL and
  /// _PATIENCE over these defaults.
  static LinkQueueConfig from_env();
  void validate() const;
};

/// Counters plus an exact integer latency histogram. Conservation holds at
/// every step boundary: generated == delivered + dropped() + queued packets.
struct FlowTrafficStats {
  std::uint64_t flows_started = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_no_route = 0;   ///< Patience exhausted, no route.
  std::uint64_t dropped_link_down = 0;  ///< Next hop not a live link.
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_queue_full = 0;
  std::uint64_t in_flight = 0;  ///< Still queued when measurement ended.
  std::uint64_t latency_sum = 0;
  /// latency_histogram[d] = packets delivered with latency d steps.
  std::vector<std::uint64_t> latency_histogram;

  std::uint64_t dropped() const {
    return dropped_no_route + dropped_link_down + dropped_ttl +
           dropped_queue_full;
  }
  /// Delivered / generated — the headline carried/offered ratio.
  double delivery_ratio() const {
    return generated == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(generated);
  }
  double mean_latency() const {
    return delivered == 0 ? 0.0
                          : static_cast<double>(latency_sum) /
                                static_cast<double>(delivered);
  }
  /// Exact q-quantile of the integer latency distribution (q in [0,1]);
  /// 0 when nothing was delivered. Independent of merge order.
  std::uint64_t latency_quantile(double q) const;

  /// Element-wise sum; used by the experiment harness's run-order merge.
  FlowTrafficStats& operator+=(const FlowTrafficStats& other);
  friend bool operator==(const FlowTrafficStats&,
                         const FlowTrafficStats&) = default;

  /// Checkpoint support.
  void save_state(snapshot::ByteWriter& w) const {
    w.u64(flows_started);
    w.u64(flows_completed);
    w.u64(generated);
    w.u64(delivered);
    w.u64(dropped_no_route);
    w.u64(dropped_link_down);
    w.u64(dropped_ttl);
    w.u64(dropped_queue_full);
    w.u64(in_flight);
    w.u64(latency_sum);
    w.pod_vec(latency_histogram);
  }
  void load_state(snapshot::ByteReader& r) {
    flows_started = r.u64();
    flows_completed = r.u64();
    generated = r.u64();
    delivered = r.u64();
    dropped_no_route = r.u64();
    dropped_link_down = r.u64();
    dropped_ttl = r.u64();
    dropped_queue_full = r.u64();
    in_flight = r.u64();
    latency_sum = r.u64();
    r.pod_vec(latency_histogram);
  }
};

/// The flow-based data plane. One instance per replication; single writer.
class FlowTrafficSimulator {
 public:
  FlowTrafficSimulator(std::size_t node_count, std::vector<bool> is_gateway,
                       FlowWorkloadConfig workload, LinkQueueConfig queue,
                       Rng rng);

  /// One step: open new sessions (Poisson), emit each active session's CBR
  /// batch, then serve every node's queue up to link_capacity packets, one
  /// hop per step over `graph` per `tables`. Refreshes hop_delays() and
  /// gateway_deliveries() for the control plane.
  void step(const Graph& graph, const RoutingTables& tables, std::size_t now);

  const FlowTrafficStats& stats() const { return stats_; }
  const FlowWorkloadConfig& workload() const { return workload_; }
  const LinkQueueConfig& queue_config() const { return queue_; }

  /// Packets currently queued anywhere in the network.
  std::uint64_t queued() const { return total_queued_; }

  /// Per-node hop delay from the *current* queue occupancy:
  /// 1 + queued(v) / link_capacity. Exactly 1.0 on an empty queue, which is
  /// what makes zero-load delay-mode ant routing bit-identical to hop mode.
  const std::vector<double>& hop_delays() const { return hop_delays_; }

  /// Packets delivered per gateway during the most recent step (zeros for
  /// non-gateways). Input to the gateway load balancer.
  const std::vector<std::uint64_t>& gateway_deliveries() const {
    return gateway_deliveries_;
  }

  /// Intra-run parallelism: per-node queue service fans over the agent
  /// engine (queues are disjoint per node; forwarded batches and drop
  /// records land in per-node slots replayed serially in node order, so
  /// stats, events and queue contents are bit-identical). Session opening
  /// and emission stay serial — they share the workload RNG. Inactive
  /// engine (the default) is the exact serial path.
  void set_parallel(const AgentParallel& par) { par_ = par; }

  /// Restarts measurement (e.g. at measure_from after warm-up): zeroes the
  /// stats, then counts packets still queued back into `generated` and
  /// active sessions into `flows_started`, so the conservation invariant
  /// holds from the first post-reset step.
  void reset_stats();

  /// Marks measurement end: queued packets are tallied as in_flight.
  void finish() { stats_.in_flight = total_queued_; }

  /// Checkpoint support: batch queues, per-node occupancy, hop delays,
  /// last-step gateway deliveries, active sessions, stats and RNG.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(queues_.size());
    for (const auto& q : queues_) {
      w.size(q.size());
      for (const PacketBatch& b : q) {
        w.scalar(b.origin);
        w.scalar(b.dst);
        w.u64(b.count);
        w.size(b.created_at);
        w.scalar(b.hops);
        w.scalar(b.waited);
      }
    }
    w.pod_vec(queued_packets_);
    w.u64(total_queued_);
    w.pod_vec(hop_delays_);
    w.pod_vec(gateway_deliveries_);
    w.size(sessions_.size());
    for (const Session& s : sessions_) {
      w.scalar(s.origin);
      w.scalar(s.dst);
      w.u64(s.remaining);
      w.scalar(s.rate);
      w.u64(s.total);
    }
    stats_.save_state(w);
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(8);
    AGENTNET_REQUIRE(n == queues_.size(),
                     "snapshot: flow traffic queue count mismatch");
    for (auto& q : queues_) {
      const std::size_t m = r.counted(4 + 4 + 8 + 8 + 4 + 4);
      q.resize(m);
      for (PacketBatch& b : q) {
        b.origin = r.scalar<NodeId>();
        b.dst = r.scalar<NodeId>();
        b.count = r.u64();
        b.created_at = r.size();
        b.hops = r.scalar<std::uint32_t>();
        b.waited = r.scalar<std::uint32_t>();
      }
    }
    r.pod_vec(queued_packets_);
    AGENTNET_REQUIRE(queued_packets_.size() == n,
                     "snapshot: flow traffic occupancy size mismatch");
    total_queued_ = r.u64();
    r.pod_vec(hop_delays_);
    AGENTNET_REQUIRE(hop_delays_.size() == n,
                     "snapshot: flow traffic hop-delay size mismatch");
    r.pod_vec(gateway_deliveries_);
    AGENTNET_REQUIRE(gateway_deliveries_.size() == n,
                     "snapshot: flow traffic delivery size mismatch");
    sessions_.resize(r.counted(4 + 4 + 8 + 4 + 8));
    for (Session& s : sessions_) {
      s.origin = r.scalar<NodeId>();
      s.dst = r.scalar<NodeId>();
      s.remaining = r.u64();
      s.rate = r.scalar<std::uint32_t>();
      s.total = r.u64();
    }
    stats_.load_state(r);
    rng_.load_state(r);
  }

 private:
  /// A counted packet train sharing origin, destination and creation step.
  struct PacketBatch {
    NodeId origin = kInvalidNode;
    NodeId dst = kInvalidNode;  ///< kInvalidNode = uplink (any gateway).
    std::uint64_t count = 0;
    std::size_t created_at = 0;
    std::uint32_t hops = 0;
    std::uint32_t waited = 0;
  };

  /// A CBR session still emitting packets.
  struct Session {
    NodeId origin = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint64_t remaining = 0;
    std::uint32_t rate = 1;  ///< Packets emitted per step.
    std::uint64_t total = 0;
  };

  /// One node's serve outcome, recorded instead of applied so the serve
  /// pass can run in parallel: forwarded batches, ordered drop records and
  /// the number of packets that left the node's queue. Committed serially
  /// in node order — the exact sequence the serial loop produced.
  struct ServeSlot {
    struct DropRecord {
      std::uint64_t* bucket = nullptr;  ///< Stats bucket to charge.
      std::uint64_t count = 0;
    };
    std::vector<std::pair<NodeId, PacketBatch>> incoming;
    std::vector<DropRecord> drops;
    std::uint64_t dequeued = 0;
    void clear() {
      incoming.clear();
      drops.clear();
      dequeued = 0;
    }
  };

  void serve_node(NodeId v, const Graph& graph, const RoutingTables& tables,
                  std::vector<PacketBatch>& stuck, ServeSlot& slot);
  void open_sessions(std::size_t now);
  void emit_session_batches(std::size_t now);
  void enqueue(NodeId node, PacketBatch batch, std::size_t now);
  void deliver(NodeId node, const PacketBatch& batch, std::size_t now);
  void drop(NodeId node, std::uint64_t count, std::uint64_t* bucket,
            std::size_t now);
  void refresh_hop_delays();

  FlowWorkloadConfig workload_;
  LinkQueueConfig queue_;
  std::vector<bool> is_gateway_;
  std::vector<NodeId> non_gateways_;  ///< Source / p2p-destination pool.
  std::vector<std::deque<PacketBatch>> queues_;
  std::vector<std::uint64_t> queued_packets_;  ///< Per-node, in packets.
  std::uint64_t total_queued_ = 0;
  std::vector<double> hop_delays_;
  std::vector<std::uint64_t> gateway_deliveries_;
  std::vector<Session> sessions_;
  FlowTrafficStats stats_;
  Rng rng_;
  AgentParallel par_;  ///< Inactive by default; see set_parallel().
};

}  // namespace agentnet
