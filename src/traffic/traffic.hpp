// Packet-level traffic over agent-maintained routing tables.
//
// The paper motivates dynamic routing with data delivery: "An average packet
// will use a multi-hop path to reach one of those gateways." Connectivity
// (fraction of nodes with a valid route) is the paper's proxy metric; this
// module closes the loop by actually injecting packets, forwarding them one
// hop per step along the routing tables over the *live* link graph, and
// measuring delivery ratio and latency. The extC bench shows how the proxy
// metric translates into end-to-end delivery for each agent design.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "net/graph.hpp"
#include "routing/routing_table.hpp"
#include "snapshot/bytes.hpp"

namespace agentnet {

struct TrafficConfig {
  /// Bernoulli packet-generation probability per non-gateway node per step.
  double packets_per_node_per_step = 0.05;
  /// Hop budget per packet; exceeded → dropped.
  std::uint32_t ttl = 32;
  /// Per-node queue capacity; arrivals beyond it are dropped.
  std::size_t queue_capacity = 16;
  /// Packets forwarded per node per step (link service rate).
  std::size_t service_rate = 4;
  /// A packet at a node with no valid route waits this many steps for the
  /// agents to install one before being dropped.
  std::size_t route_patience = 10;
};

struct TrafficStats {
  std::size_t generated = 0;
  std::size_t delivered = 0;
  std::size_t dropped_no_route = 0;   ///< Patience exhausted, no route.
  std::size_t dropped_link_down = 0;  ///< Next hop not a live link.
  std::size_t dropped_ttl = 0;
  std::size_t dropped_queue_full = 0;
  std::size_t in_flight = 0;  ///< Still queued when measurement ended.
  RunningStats latency;       ///< Steps from creation to gateway arrival.

  /// Checkpoint support.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(generated);
    w.size(delivered);
    w.size(dropped_no_route);
    w.size(dropped_link_down);
    w.size(dropped_ttl);
    w.size(dropped_queue_full);
    w.size(in_flight);
    latency.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    generated = r.size();
    delivered = r.size();
    dropped_no_route = r.size();
    dropped_link_down = r.size();
    dropped_ttl = r.size();
    dropped_queue_full = r.size();
    in_flight = r.size();
    latency.load_state(r);
  }

  std::size_t dropped() const {
    return dropped_no_route + dropped_link_down + dropped_ttl +
           dropped_queue_full;
  }
  /// Delivered / (delivered + dropped): the fate of resolved packets.
  double delivery_ratio() const {
    const std::size_t resolved = delivered + dropped();
    return resolved == 0
               ? 0.0
               : static_cast<double>(delivered) /
                     static_cast<double>(resolved);
  }
};

/// Forwards packets toward gateways along the current routing tables.
/// Deterministic given its Rng and the sequence of (graph, tables) steps.
class TrafficSimulator {
 public:
  TrafficSimulator(std::size_t node_count, std::vector<bool> is_gateway,
                   TrafficConfig config, Rng rng);

  /// One simulation step: generate new packets, then let every node forward
  /// up to service_rate packets one hop over `graph` per `tables`.
  void step(const Graph& graph, const RoutingTables& tables,
            std::size_t now);

  const TrafficStats& stats() const { return stats_; }
  /// Packets currently queued somewhere in the network.
  std::size_t queued() const;
  const TrafficConfig& config() const { return config_; }

  /// Marks measurement end: queued packets are tallied as in_flight.
  void finish();

  /// Checkpoint support: per-node queues (in order), stats and RNG.
  void save_state(snapshot::ByteWriter& w) const {
    w.size(queues_.size());
    for (const auto& q : queues_) {
      w.size(q.size());
      for (const Packet& p : q) {
        w.scalar(p.origin);
        w.size(p.created_at);
        w.scalar(p.hops);
        w.size(p.waited);
      }
    }
    stats_.save_state(w);
    rng_.save_state(w);
  }
  void load_state(snapshot::ByteReader& r) {
    const std::size_t n = r.counted(8);
    AGENTNET_REQUIRE(n == queues_.size(),
                     "snapshot: traffic queue count mismatch");
    for (auto& q : queues_) {
      const std::size_t m = r.counted(4 * 8);
      q.resize(m);
      for (Packet& p : q) {
        p.origin = r.scalar<NodeId>();
        p.created_at = r.size();
        p.hops = r.scalar<std::uint32_t>();
        p.waited = r.size();
      }
    }
    stats_.load_state(r);
    rng_.load_state(r);
  }

 private:
  struct Packet {
    NodeId origin = kInvalidNode;
    std::size_t created_at = 0;
    std::uint32_t hops = 0;
    std::size_t waited = 0;  ///< Consecutive steps without a usable route.
  };

  void enqueue(NodeId node, Packet packet);

  TrafficConfig config_;
  std::vector<bool> is_gateway_;
  std::vector<std::deque<Packet>> queues_;
  TrafficStats stats_;
  Rng rng_;
};

}  // namespace agentnet
