#include "traffic/traffic.hpp"

#include "common/error.hpp"

namespace agentnet {

TrafficSimulator::TrafficSimulator(std::size_t node_count,
                                   std::vector<bool> is_gateway,
                                   TrafficConfig config, Rng rng)
    : config_(config),
      is_gateway_(std::move(is_gateway)),
      queues_(node_count),
      rng_(rng) {
  AGENTNET_REQUIRE(is_gateway_.size() == node_count,
                   "gateway mask size mismatch");
  AGENTNET_REQUIRE(config.packets_per_node_per_step >= 0.0 &&
                       config.packets_per_node_per_step <= 1.0,
                   "generation probability must be in [0,1]");
  AGENTNET_REQUIRE(config.ttl >= 1, "ttl must be >= 1");
  AGENTNET_REQUIRE(config.queue_capacity >= 1, "queue capacity must be >= 1");
  AGENTNET_REQUIRE(config.service_rate >= 1, "service rate must be >= 1");
}

void TrafficSimulator::enqueue(NodeId node, Packet packet) {
  if (queues_[node].size() >= config_.queue_capacity) {
    ++stats_.dropped_queue_full;
    return;
  }
  queues_[node].push_back(packet);
}

void TrafficSimulator::step(const Graph& graph, const RoutingTables& tables,
                            std::size_t now) {
  AGENTNET_REQUIRE(graph.node_count() == queues_.size(),
                   "graph size does not match traffic simulator");
  AGENTNET_REQUIRE(tables.size() == queues_.size(),
                   "tables size does not match traffic simulator");

  // Generation: gateways sink traffic, everyone else sources it.
  for (NodeId v = 0; v < queues_.size(); ++v) {
    if (is_gateway_[v]) continue;
    if (rng_.bernoulli(config_.packets_per_node_per_step)) {
      ++stats_.generated;
      enqueue(v, Packet{v, now, 0, 0});
    }
  }

  // Forwarding: service each node's queue head-first. Packets forwarded in
  // this step land in `incoming` and only join queues afterwards, so a
  // packet moves at most one hop per step.
  std::vector<std::pair<NodeId, Packet>> incoming;
  for (NodeId v = 0; v < queues_.size(); ++v) {
    auto& queue = queues_[v];
    for (std::size_t served = 0;
         served < config_.service_rate && !queue.empty(); ++served) {
      Packet packet = queue.front();
      queue.pop_front();
      const RouteEntry& route = tables.entry(v);
      if (!route.valid()) {
        if (++packet.waited > config_.route_patience) {
          ++stats_.dropped_no_route;
        } else {
          queue.push_back(packet);  // wait for the agents to install one
        }
        continue;
      }
      if (!graph.has_edge(v, route.next_hop)) {
        // The table points over a dead link; treat like waiting — the
        // route may be refreshed or the link may come back as nodes move.
        if (++packet.waited > config_.route_patience) {
          ++stats_.dropped_link_down;
        } else {
          queue.push_back(packet);
        }
        continue;
      }
      packet.waited = 0;
      if (++packet.hops > config_.ttl) {
        ++stats_.dropped_ttl;
        continue;
      }
      incoming.push_back({route.next_hop, packet});
    }
  }
  for (auto& [node, packet] : incoming) {
    if (is_gateway_[node]) {
      ++stats_.delivered;
      stats_.latency.add(static_cast<double>(now - packet.created_at + 1));
    } else {
      enqueue(node, packet);
    }
  }
}

std::size_t TrafficSimulator::queued() const {
  std::size_t n = 0;
  for (const auto& q : queues_) n += q.size();
  return n;
}

void TrafficSimulator::finish() { stats_.in_flight = queued(); }

}  // namespace agentnet
