#include "traffic/flow_traffic.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

double FlowWorkloadConfig::mean_session_packets() const {
  return elephant_fraction * static_cast<double>(elephant_packets) +
         (1.0 - elephant_fraction) * static_cast<double>(mice_packets);
}

double FlowWorkloadConfig::session_rate() const {
  const double mean = mean_session_packets();
  return mean <= 0.0 ? 0.0 : offered_load / mean;
}

void FlowWorkloadConfig::validate() const {
  AGENTNET_REQUIRE(offered_load >= 0.0, "offered load must be >= 0");
  AGENTNET_REQUIRE(elephant_fraction >= 0.0 && elephant_fraction <= 1.0,
                   "elephant fraction must be in [0,1]");
  AGENTNET_REQUIRE(mice_packets >= 1, "mice session size must be >= 1");
  AGENTNET_REQUIRE(elephant_packets >= 1,
                   "elephant session size must be >= 1");
  AGENTNET_REQUIRE(elephant_rate >= 1, "elephant rate must be >= 1");
  AGENTNET_REQUIRE(p2p_fraction >= 0.0 && p2p_fraction <= 1.0,
                   "p2p fraction must be in [0,1]");
}

FlowWorkloadConfig FlowWorkloadConfig::from_env() {
  FlowWorkloadConfig config;
  config.offered_load = env_double("AGENTNET_TRAFFIC_LOAD",
                                   config.offered_load);
  config.elephant_fraction = env_double("AGENTNET_TRAFFIC_ELEPHANT_FRACTION",
                                        config.elephant_fraction);
  config.mice_packets = static_cast<std::uint32_t>(
      env_int("AGENTNET_TRAFFIC_MICE_PACKETS",
              static_cast<std::int64_t>(config.mice_packets)));
  config.elephant_packets = static_cast<std::uint32_t>(
      env_int("AGENTNET_TRAFFIC_ELEPHANT_PACKETS",
              static_cast<std::int64_t>(config.elephant_packets)));
  config.elephant_rate = static_cast<std::uint32_t>(
      env_int("AGENTNET_TRAFFIC_ELEPHANT_RATE",
              static_cast<std::int64_t>(config.elephant_rate)));
  if (const auto pattern = env_string("AGENTNET_TRAFFIC_PATTERN")) {
    if (*pattern == "uplink") {
      config.pattern = TrafficPattern::kUplink;
    } else if (*pattern == "p2p") {
      config.pattern = TrafficPattern::kPeerToPeer;
    } else if (*pattern == "mixed") {
      config.pattern = TrafficPattern::kMixed;
    } else {
      AGENTNET_REQUIRE(false, "AGENTNET_TRAFFIC_PATTERN must be "
                              "uplink|p2p|mixed, got: " + *pattern);
    }
  }
  config.p2p_fraction = env_double("AGENTNET_TRAFFIC_P2P_FRACTION",
                                   config.p2p_fraction);
  config.validate();
  return config;
}

void LinkQueueConfig::validate() const {
  AGENTNET_REQUIRE(link_capacity >= 1, "link capacity must be >= 1");
  AGENTNET_REQUIRE(queue_capacity >= 1, "queue capacity must be >= 1");
  AGENTNET_REQUIRE(ttl >= 1, "ttl must be >= 1");
}

LinkQueueConfig LinkQueueConfig::from_env() {
  LinkQueueConfig config;
  config.link_capacity = static_cast<std::size_t>(
      env_int("AGENTNET_TRAFFIC_LINK_CAPACITY",
              static_cast<std::int64_t>(config.link_capacity)));
  config.queue_capacity = static_cast<std::size_t>(
      env_int("AGENTNET_TRAFFIC_QUEUE_CAPACITY",
              static_cast<std::int64_t>(config.queue_capacity)));
  config.ttl = static_cast<std::uint32_t>(env_int(
      "AGENTNET_TRAFFIC_TTL", static_cast<std::int64_t>(config.ttl)));
  config.route_patience = static_cast<std::size_t>(
      env_int("AGENTNET_TRAFFIC_PATIENCE",
              static_cast<std::int64_t>(config.route_patience)));
  config.validate();
  return config;
}

std::uint64_t FlowTrafficStats::latency_quantile(double q) const {
  AGENTNET_ASSERT(q >= 0.0 && q <= 1.0);
  if (delivered == 0) return 0;
  // Every delivered packet lands in the histogram, so the shared rank
  // statistic (smallest latency whose cumulative count reaches
  // ceil(q * delivered)) gives the exact same answer it always did.
  return obs::histogram_quantile(latency_histogram, q);
}

FlowTrafficStats& FlowTrafficStats::operator+=(
    const FlowTrafficStats& other) {
  flows_started += other.flows_started;
  flows_completed += other.flows_completed;
  generated += other.generated;
  delivered += other.delivered;
  dropped_no_route += other.dropped_no_route;
  dropped_link_down += other.dropped_link_down;
  dropped_ttl += other.dropped_ttl;
  dropped_queue_full += other.dropped_queue_full;
  in_flight += other.in_flight;
  latency_sum += other.latency_sum;
  if (latency_histogram.size() < other.latency_histogram.size())
    latency_histogram.resize(other.latency_histogram.size(), 0);
  for (std::size_t i = 0; i < other.latency_histogram.size(); ++i)
    latency_histogram[i] += other.latency_histogram[i];
  return *this;
}

FlowTrafficSimulator::FlowTrafficSimulator(std::size_t node_count,
                                           std::vector<bool> is_gateway,
                                           FlowWorkloadConfig workload,
                                           LinkQueueConfig queue, Rng rng)
    : workload_(workload),
      queue_(queue),
      is_gateway_(std::move(is_gateway)),
      queues_(node_count),
      queued_packets_(node_count, 0),
      hop_delays_(node_count, 1.0),
      gateway_deliveries_(node_count, 0),
      rng_(rng) {
  AGENTNET_REQUIRE(is_gateway_.size() == node_count,
                   "gateway mask size mismatch");
  workload_.validate();
  queue_.validate();
  for (NodeId v = 0; v < node_count; ++v)
    if (!is_gateway_[v]) non_gateways_.push_back(v);
}

void FlowTrafficSimulator::open_sessions(std::size_t now) {
  const double rate = workload_.session_rate();
  if (rate <= 0.0) return;
  for (const NodeId origin : non_gateways_) {
    const std::uint64_t arrivals = rng_.poisson(rate);
    for (std::uint64_t i = 0; i < arrivals; ++i) {
      Session session;
      session.origin = origin;
      const bool elephant = rng_.bernoulli(workload_.elephant_fraction);
      session.total = elephant ? workload_.elephant_packets
                               : workload_.mice_packets;
      session.rate = elephant ? workload_.elephant_rate : 1;
      session.remaining = session.total;
      bool p2p = workload_.pattern == TrafficPattern::kPeerToPeer;
      if (workload_.pattern == TrafficPattern::kMixed)
        p2p = rng_.bernoulli(workload_.p2p_fraction);
      if (p2p && non_gateways_.size() > 1) {
        // Uniform non-gateway peer other than the origin: draw from the
        // n-1 other slots, remapping a self-hit to the last slot.
        NodeId dst = non_gateways_[rng_.index(non_gateways_.size() - 1)];
        if (dst == origin) dst = non_gateways_.back();
        session.dst = dst;
      }
      sessions_.push_back(session);
      ++stats_.flows_started;
      AGENTNET_COUNT(kFlowsStarted);
      AGENTNET_OBS_EVENT(kFlowStart, now, -1,
                         static_cast<std::int64_t>(origin),
                         session.dst == kInvalidNode
                             ? -1
                             : static_cast<std::int64_t>(session.dst));
    }
  }
}

void FlowTrafficSimulator::emit_session_batches(std::size_t now) {
  for (Session& session : sessions_) {
    const std::uint64_t emit = std::min<std::uint64_t>(session.remaining,
                                                       session.rate);
    if (emit == 0) continue;
    session.remaining -= emit;
    stats_.generated += emit;
    AGENTNET_COUNT_N(kPacketsGenerated, emit);
    PacketBatch batch;
    batch.origin = session.origin;
    batch.dst = session.dst;
    batch.count = emit;
    batch.created_at = now;
    enqueue(session.origin, batch, now);
    if (session.remaining == 0) {
      ++stats_.flows_completed;
      AGENTNET_COUNT(kFlowsCompleted);
      AGENTNET_OBS_EVENT(kFlowEnd, now, -1,
                         static_cast<std::int64_t>(session.origin),
                         static_cast<std::int64_t>(session.total));
    }
  }
  std::erase_if(sessions_,
                [](const Session& s) { return s.remaining == 0; });
}

void FlowTrafficSimulator::enqueue(NodeId node, PacketBatch batch,
                                   std::size_t now) {
  const std::uint64_t space =
      queue_.queue_capacity > queued_packets_[node]
          ? queue_.queue_capacity - queued_packets_[node]
          : 0;
  if (batch.count > space) {
    drop(node, batch.count - space, &stats_.dropped_queue_full, now);
    batch.count = space;
  }
  if (batch.count == 0) return;
  queued_packets_[node] += batch.count;
  total_queued_ += batch.count;
  queues_[node].push_back(batch);
}

void FlowTrafficSimulator::deliver(NodeId node, const PacketBatch& batch,
                                   std::size_t now) {
  const std::uint64_t latency =
      static_cast<std::uint64_t>(now - batch.created_at) + 1;
  stats_.delivered += batch.count;
  stats_.latency_sum += latency * batch.count;
  if (stats_.latency_histogram.size() <= latency)
    stats_.latency_histogram.resize(latency + 1, 0);
  stats_.latency_histogram[latency] += batch.count;
  if (is_gateway_[node]) gateway_deliveries_[node] += batch.count;
  AGENTNET_COUNT_N(kPacketsDelivered, batch.count);
}

void FlowTrafficSimulator::drop(NodeId node, std::uint64_t count,
                                std::uint64_t* bucket, std::size_t now) {
  *bucket += count;
  AGENTNET_COUNT_N(kPacketsDropped, count);
  AGENTNET_OBS_EVENT(kPacketDrop, now, -1, static_cast<std::int64_t>(node),
                     static_cast<std::int64_t>(count));
}

void FlowTrafficSimulator::refresh_hop_delays() {
  par_.for_each(queued_packets_.size(), [&](std::size_t v) {
    hop_delays_[v] = 1.0 + static_cast<double>(queued_packets_[v]) /
                               static_cast<double>(queue_.link_capacity);
  });
}

void FlowTrafficSimulator::serve_node(NodeId v, const Graph& graph,
                                      const RoutingTables& tables,
                                      std::vector<PacketBatch>& stuck,
                                      ServeSlot& slot) {
  // Serve this node's out-link: up to link_capacity packets move one hop.
  // Touches only node-local state (queues_[v], queued_packets_[v]) and the
  // slot — drops and forwarded batches are *recorded*, not applied, so the
  // serve pass can fan over the agent engine. Batches with no usable next
  // hop go to `stuck` (patience-checked) and return to the queue front in
  // order — they consume no link capacity.
  auto& queue = queues_[v];
  stuck.clear();
  std::uint64_t budget = queue_.link_capacity;
  while (budget > 0 && !queue.empty()) {
    PacketBatch batch = queue.front();
    queue.pop_front();
    // Next hop: a direct link to a p2p destination wins; otherwise the
    // agent-installed route toward a gateway (p2p traffic reaching any
    // gateway is relayed over the backhaul — see docs/TRAFFIC.md).
    const RouteEntry& route = tables.entry(v);
    NodeId next_hop = kInvalidNode;
    if (batch.dst != kInvalidNode && graph.has_edge(v, batch.dst)) {
      next_hop = batch.dst;
    } else if (route.valid() && graph.has_edge(v, route.next_hop)) {
      next_hop = route.next_hop;
    }
    if (next_hop == kInvalidNode) {
      if (++batch.waited > queue_.route_patience) {
        queued_packets_[v] -= batch.count;
        slot.dequeued += batch.count;
        slot.drops.push_back({route.valid() ? &stats_.dropped_link_down
                                            : &stats_.dropped_no_route,
                              batch.count});
      } else {
        stuck.push_back(batch);
      }
      continue;
    }
    if (batch.count > budget) {
      // Split: the head of the train crosses, the tail keeps the queue
      // slot (same creation step, so latency stays exact).
      PacketBatch tail = batch;
      tail.count = batch.count - budget;
      queue.push_front(tail);
      batch.count = budget;
    }
    budget -= batch.count;
    queued_packets_[v] -= batch.count;
    slot.dequeued += batch.count;
    batch.waited = 0;
    if (++batch.hops > queue_.ttl) {
      slot.drops.push_back({&stats_.dropped_ttl, batch.count});
      continue;
    }
    slot.incoming.emplace_back(next_hop, batch);
  }
  for (auto it = stuck.rbegin(); it != stuck.rend(); ++it)
    queue.push_front(*it);
}

void FlowTrafficSimulator::step(const Graph& graph,
                                const RoutingTables& tables,
                                std::size_t now) {
  AGENTNET_REQUIRE(graph.node_count() == queues_.size(),
                   "graph size does not match traffic simulator");
  AGENTNET_REQUIRE(tables.size() == queues_.size(),
                   "tables size does not match traffic simulator");
  const std::size_t n = queues_.size();

  std::fill(gateway_deliveries_.begin(), gateway_deliveries_.end(), 0);
  open_sessions(now);
  emit_session_batches(now);

  // Serve pass: batches forwarded this step land in `incoming` and only
  // join queues / sinks afterwards, so a packet moves at most one hop per
  // step. Each node's slot is committed — drop stats, drop events and the
  // global occupancy — serially in node order, reproducing the serial
  // loop's exact event sequence and arrival order.
  std::vector<std::pair<NodeId, PacketBatch>> incoming;
  const auto commit_slot = [&](NodeId v, ServeSlot& slot) {
    for (const ServeSlot::DropRecord& record : slot.drops)
      drop(v, record.count, record.bucket, now);
    total_queued_ -= slot.dequeued;
    incoming.insert(incoming.end(),
                    std::make_move_iterator(slot.incoming.begin()),
                    std::make_move_iterator(slot.incoming.end()));
  };
  if (par_.active() && n >= 2) {
    std::vector<ServeSlot> slots(n);
    par_.for_each_scratch(
        n, [] { return std::vector<PacketBatch>(); },
        [&](std::size_t v, std::vector<PacketBatch>& stuck) {
          serve_node(static_cast<NodeId>(v), graph, tables, stuck, slots[v]);
        });
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v)
      commit_slot(v, slots[v]);
  } else {
    std::vector<PacketBatch> stuck;
    ServeSlot slot;
    for (NodeId v = 0; v < static_cast<NodeId>(n); ++v) {
      serve_node(v, graph, tables, stuck, slot);
      commit_slot(v, slot);
      slot.clear();
    }
  }

  for (auto& [node, batch] : incoming) {
    if ((batch.dst != kInvalidNode && node == batch.dst) ||
        is_gateway_[node]) {
      deliver(node, batch, now);
    } else {
      enqueue(node, batch, now);
    }
  }
  refresh_hop_delays();
}

void FlowTrafficSimulator::reset_stats() {
  stats_ = {};
  // Packets already queued will later be delivered or dropped, so count
  // them as generated now — conservation (generated == delivered +
  // dropped + queued) then holds at every post-reset step boundary.
  stats_.generated = total_queued_;
  stats_.flows_started = sessions_.size();
}

}  // namespace agentnet
