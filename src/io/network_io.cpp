// File format (line oriented, '#' comments allowed between sections):
//
//   agentnet-network 1
//   bounds <lo.x> <lo.y> <hi.x> <hi.y>
//   policy <directed|symmetric-and|symmetric-or>
//   nodes <N>
//   <x> <y> <base_range>            (N lines, node id = line index)
//   edges <M>
//   <from> <to>                     (M lines)
#include "io/network_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace agentnet {

namespace {

const char* policy_name(LinkPolicy policy) {
  switch (policy) {
    case LinkPolicy::kDirected:
      return "directed";
    case LinkPolicy::kSymmetricAnd:
      return "symmetric-and";
    case LinkPolicy::kSymmetricOr:
      return "symmetric-or";
  }
  return "?";
}

LinkPolicy parse_policy(const std::string& name) {
  if (name == "directed") return LinkPolicy::kDirected;
  if (name == "symmetric-and") return LinkPolicy::kSymmetricAnd;
  if (name == "symmetric-or") return LinkPolicy::kSymmetricOr;
  throw ConfigError("unknown link policy in network file: " + name);
}

/// Next non-comment, non-blank line; throws at EOF.
std::string next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  throw ConfigError("unexpected end of network file");
}

}  // namespace

void save_network(const GeneratedNetwork& net, std::ostream& os) {
  os << "agentnet-network 1\n";
  os << std::setprecision(17);
  os << "bounds " << net.bounds.lo.x << ' ' << net.bounds.lo.y << ' '
     << net.bounds.hi.x << ' ' << net.bounds.hi.y << '\n';
  os << "policy " << policy_name(net.policy) << '\n';
  os << "nodes " << net.positions.size() << '\n';
  for (std::size_t i = 0; i < net.positions.size(); ++i)
    os << net.positions[i].x << ' ' << net.positions[i].y << ' '
       << net.base_ranges[i] << '\n';
  const auto edges = net.graph.edges();
  os << "edges " << edges.size() << '\n';
  for (const Edge& e : edges) os << e.from << ' ' << e.to << '\n';
  AGENTNET_REQUIRE(os.good(), "write failed while saving network");
}

GeneratedNetwork load_network(std::istream& is) {
  GeneratedNetwork net;
  {
    std::istringstream header(next_line(is));
    std::string magic;
    int version = 0;
    header >> magic >> version;
    AGENTNET_REQUIRE(magic == "agentnet-network" && version == 1,
                     "not an agentnet-network v1 file");
  }
  {
    std::istringstream line(next_line(is));
    std::string tag;
    line >> tag >> net.bounds.lo.x >> net.bounds.lo.y >> net.bounds.hi.x >>
        net.bounds.hi.y;
    AGENTNET_REQUIRE(tag == "bounds" && !line.fail(), "bad bounds line");
    AGENTNET_REQUIRE(net.bounds.width() > 0 && net.bounds.height() > 0,
                     "bounds must have positive area");
  }
  {
    std::istringstream line(next_line(is));
    std::string tag, name;
    line >> tag >> name;
    AGENTNET_REQUIRE(tag == "policy" && !line.fail(), "bad policy line");
    net.policy = parse_policy(name);
  }
  std::size_t node_count = 0;
  {
    std::istringstream line(next_line(is));
    std::string tag;
    line >> tag >> node_count;
    AGENTNET_REQUIRE(tag == "nodes" && !line.fail() && node_count > 0,
                     "bad nodes line");
  }
  net.positions.resize(node_count);
  net.base_ranges.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    std::istringstream line(next_line(is));
    line >> net.positions[i].x >> net.positions[i].y >> net.base_ranges[i];
    AGENTNET_REQUIRE(!line.fail(), "bad node line");
    AGENTNET_REQUIRE(net.base_ranges[i] > 0.0,
                     "node range must be positive");
  }
  std::size_t edge_count = 0;
  {
    std::istringstream line(next_line(is));
    std::string tag;
    line >> tag >> edge_count;
    AGENTNET_REQUIRE(tag == "edges" && !line.fail(), "bad edges line");
  }
  net.graph = Graph(node_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    std::istringstream line(next_line(is));
    NodeId u = kInvalidNode, v = kInvalidNode;
    line >> u >> v;
    AGENTNET_REQUIRE(!line.fail() && u < node_count && v < node_count,
                     "bad edge line");
    AGENTNET_REQUIRE(net.graph.add_edge(u, v),
                     "duplicate or self-loop edge in network file");
  }
  return net;
}

void save_network_file(const GeneratedNetwork& net, const std::string& path) {
  std::ofstream os(path);
  AGENTNET_REQUIRE(os.is_open(), "cannot open for writing: " + path);
  save_network(net, os);
}

GeneratedNetwork load_network_file(const std::string& path) {
  std::ifstream is(path);
  AGENTNET_REQUIRE(is.is_open(), "cannot open for reading: " + path);
  return load_network(is);
}

std::string to_dot(const GeneratedNetwork& net, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph agentnet {\n";
  os << "  node [shape=circle, width=0.2, fixedsize=true, fontsize=8];\n";
  std::vector<bool> highlighted(net.positions.size(), false);
  for (NodeId h : options.highlights) {
    AGENTNET_REQUIRE(h < net.positions.size(), "highlight id out of range");
    highlighted[h] = true;
  }
  for (std::size_t i = 0; i < net.positions.size(); ++i) {
    os << "  n" << i << " [pos=\""
       << net.positions[i].x * options.position_scale << ','
       << net.positions[i].y * options.position_scale << "!\"";
    if (highlighted[i])
      os << ", style=filled, fillcolor=gold, penwidth=2";
    os << "];\n";
  }
  for (const Edge& e : net.graph.edges()) {
    if (options.collapse_mutual && net.graph.has_edge(e.to, e.from)) {
      if (e.from > e.to) continue;  // emit each mutual pair once
      os << "  n" << e.from << " -> n" << e.to << " [dir=none];\n";
    } else {
      os << "  n" << e.from << " -> n" << e.to << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_series_csv(std::ostream& os,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series) {
  AGENTNET_REQUIRE(names.size() == series.size(),
                   "one name per series required");
  os << "step";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  os << std::setprecision(12);
  for (std::size_t t = 0; t < rows; ++t) {
    os << t;
    for (const auto& s : series) {
      os << ',';
      if (t < s.size()) os << s[t];
    }
    os << '\n';
  }
}

void RunRecorder::frame(std::size_t step,
                        const std::vector<Vec2>& node_positions,
                        const std::vector<NodeId>& agent_locations) {
  for (std::size_t i = 0; i < node_positions.size(); ++i)
    rows_.push_back({step, 'n', i, node_positions[i]});
  for (std::size_t a = 0; a < agent_locations.size(); ++a) {
    AGENTNET_REQUIRE(agent_locations[a] < node_positions.size(),
                     "agent location out of range");
    rows_.push_back({step, 'a', a, node_positions[agent_locations[a]]});
  }
  ++frames_;
}

void RunRecorder::write_csv(std::ostream& os) const {
  os << "step,kind,id,x,y\n";
  os << std::setprecision(12);
  for (const Row& row : rows_)
    os << row.step << ',' << (row.kind == 'n' ? "node" : "agent") << ','
       << row.id << ',' << row.position.x << ',' << row.position.y << '\n';
}

}  // namespace agentnet
