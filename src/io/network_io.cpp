// File format (line oriented, '#' comments allowed between sections):
//
//   agentnet-network 1
//   bounds <lo.x> <lo.y> <hi.x> <hi.y>
//   policy <directed|symmetric-and|symmetric-or>
//   nodes <N>
//   <x> <y> <base_range>            (N lines, node id = line index)
//   edges <M>
//   <from> <to>                     (M lines)
#include "io/network_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace agentnet {

namespace {

// Sanity ceiling for counts read from a file: large enough for any real
// scenario, small enough that a corrupted count line fails fast instead of
// attempting a multi-gigabyte allocation.
constexpr std::size_t kMaxFileNodes = 100'000'000;

const char* policy_name(LinkPolicy policy) {
  switch (policy) {
    case LinkPolicy::kDirected:
      return "directed";
    case LinkPolicy::kSymmetricAnd:
      return "symmetric-and";
    case LinkPolicy::kSymmetricOr:
      return "symmetric-or";
  }
  return "?";
}

LinkPolicy parse_policy(const std::string& name) {
  if (name == "directed") return LinkPolicy::kDirected;
  if (name == "symmetric-and") return LinkPolicy::kSymmetricAnd;
  if (name == "symmetric-or") return LinkPolicy::kSymmetricOr;
  throw ConfigError("unknown link policy in network file: " + name);
}

/// Hands out non-comment, non-blank lines and remembers the 1-based line
/// number of the last one, so every parse error can say where it happened.
class LineReader {
 public:
  explicit LineReader(std::istream& is) : is_(is) {}

  /// Next payload line; throws at EOF naming the last line seen.
  std::string next(const char* expected) {
    std::string line;
    while (std::getline(is_, line)) {
      ++line_no_;
      const auto first = line.find_first_not_of(" \t\r");
      if (first == std::string::npos) continue;
      if (line[first] == '#') continue;
      return line;
    }
    throw ConfigError("network file truncated after line " +
                      std::to_string(line_no_) + " (expected " + expected +
                      ")");
  }

  /// "line N" for the line last returned by next().
  std::string where() const { return "line " + std::to_string(line_no_); }

 private:
  std::istream& is_;
  std::size_t line_no_ = 0;
};

}  // namespace

void save_network(const GeneratedNetwork& net, std::ostream& os) {
  os << "agentnet-network 1\n";
  os << std::setprecision(17);
  os << "bounds " << net.bounds.lo.x << ' ' << net.bounds.lo.y << ' '
     << net.bounds.hi.x << ' ' << net.bounds.hi.y << '\n';
  os << "policy " << policy_name(net.policy) << '\n';
  os << "nodes " << net.positions.size() << '\n';
  for (std::size_t i = 0; i < net.positions.size(); ++i)
    os << net.positions[i].x << ' ' << net.positions[i].y << ' '
       << net.base_ranges[i] << '\n';
  const auto edges = net.graph.edges();
  os << "edges " << edges.size() << '\n';
  for (const Edge& e : edges) os << e.from << ' ' << e.to << '\n';
  AGENTNET_REQUIRE(os.good(), "write failed while saving network");
}

GeneratedNetwork load_network(std::istream& is) {
  // Every rejection names the offending line ("bad node line at line 7")
  // so a hand-edited or truncated file can be fixed without bisection.
  GeneratedNetwork net;
  LineReader reader(is);
  {
    std::istringstream header(reader.next("header"));
    std::string magic;
    int version = 0;
    header >> magic >> version;
    AGENTNET_REQUIRE(magic == "agentnet-network" && version == 1,
                     "not an agentnet-network v1 file (at " +
                         reader.where() + ")");
  }
  {
    std::istringstream line(reader.next("bounds"));
    std::string tag;
    line >> tag >> net.bounds.lo.x >> net.bounds.lo.y >> net.bounds.hi.x >>
        net.bounds.hi.y;
    AGENTNET_REQUIRE(tag == "bounds" && !line.fail(),
                     "bad bounds line at " + reader.where());
    AGENTNET_REQUIRE(net.bounds.width() > 0 && net.bounds.height() > 0,
                     "bounds must have positive area at " + reader.where());
  }
  {
    std::istringstream line(reader.next("policy"));
    std::string tag, name;
    line >> tag >> name;
    AGENTNET_REQUIRE(tag == "policy" && !line.fail(),
                     "bad policy line at " + reader.where());
    net.policy = parse_policy(name);
  }
  std::size_t node_count = 0;
  {
    std::istringstream line(reader.next("node count"));
    std::string tag;
    line >> tag >> node_count;
    AGENTNET_REQUIRE(tag == "nodes" && !line.fail() && node_count > 0,
                     "bad nodes line at " + reader.where());
    // A corrupted count must not drive a giant allocation: every node
    // still needs its own line in the stream, and positions/ranges cost
    // 24 bytes each, so anything past ~100M nodes is garbage, not data.
    AGENTNET_REQUIRE(node_count <= kMaxFileNodes,
                     "implausible node count " + std::to_string(node_count) +
                         " at " + reader.where());
  }
  net.positions.resize(node_count);
  net.base_ranges.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    std::istringstream line(reader.next("node record"));
    line >> net.positions[i].x >> net.positions[i].y >> net.base_ranges[i];
    AGENTNET_REQUIRE(!line.fail(), "bad node line at " + reader.where());
    AGENTNET_REQUIRE(net.base_ranges[i] > 0.0,
                     "node range must be positive at " + reader.where());
  }
  std::size_t edge_count = 0;
  {
    std::istringstream line(reader.next("edge count"));
    std::string tag;
    line >> tag >> edge_count;
    AGENTNET_REQUIRE(tag == "edges" && !line.fail(),
                     "bad edges line at " + reader.where());
    AGENTNET_REQUIRE(edge_count <= node_count * node_count,
                     "implausible edge count " + std::to_string(edge_count) +
                         " at " + reader.where());
  }
  net.graph = Graph(node_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    std::istringstream line(reader.next("edge record"));
    NodeId u = kInvalidNode, v = kInvalidNode;
    line >> u >> v;
    AGENTNET_REQUIRE(!line.fail() && u < node_count && v < node_count,
                     "bad edge line at " + reader.where());
    AGENTNET_REQUIRE(net.graph.add_edge(u, v),
                     "duplicate or self-loop edge at " + reader.where());
  }
  return net;
}

void save_network_file(const GeneratedNetwork& net, const std::string& path) {
  // Temp-then-rename: a crash mid-save never leaves a torn network file.
  AtomicFileWriter file(path);
  save_network(net, file.stream());
  file.commit();
}

GeneratedNetwork load_network_file(const std::string& path) {
  std::ifstream is(path);
  AGENTNET_REQUIRE(is.is_open(), "cannot open for reading: " + path);
  return load_network(is);
}

std::string to_dot(const GeneratedNetwork& net, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph agentnet {\n";
  os << "  node [shape=circle, width=0.2, fixedsize=true, fontsize=8];\n";
  std::vector<bool> highlighted(net.positions.size(), false);
  for (NodeId h : options.highlights) {
    AGENTNET_REQUIRE(h < net.positions.size(), "highlight id out of range");
    highlighted[h] = true;
  }
  for (std::size_t i = 0; i < net.positions.size(); ++i) {
    os << "  n" << i << " [pos=\""
       << net.positions[i].x * options.position_scale << ','
       << net.positions[i].y * options.position_scale << "!\"";
    if (highlighted[i])
      os << ", style=filled, fillcolor=gold, penwidth=2";
    os << "];\n";
  }
  for (const Edge& e : net.graph.edges()) {
    if (options.collapse_mutual && net.graph.has_edge(e.to, e.from)) {
      if (e.from > e.to) continue;  // emit each mutual pair once
      os << "  n" << e.from << " -> n" << e.to << " [dir=none];\n";
    } else {
      os << "  n" << e.from << " -> n" << e.to << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

void write_series_csv(std::ostream& os,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series) {
  AGENTNET_REQUIRE(names.size() == series.size(),
                   "one name per series required");
  os << "step";
  for (const auto& name : names) os << ',' << name;
  os << '\n';
  std::size_t rows = 0;
  for (const auto& s : series) rows = std::max(rows, s.size());
  os << std::setprecision(12);
  for (std::size_t t = 0; t < rows; ++t) {
    os << t;
    for (const auto& s : series) {
      os << ',';
      if (t < s.size()) os << s[t];
    }
    os << '\n';
  }
}

void RunRecorder::frame(std::size_t step,
                        const std::vector<Vec2>& node_positions,
                        const std::vector<NodeId>& agent_locations) {
  for (std::size_t i = 0; i < node_positions.size(); ++i)
    rows_.push_back({step, 'n', i, node_positions[i]});
  for (std::size_t a = 0; a < agent_locations.size(); ++a) {
    AGENTNET_REQUIRE(agent_locations[a] < node_positions.size(),
                     "agent location out of range");
    rows_.push_back({step, 'a', a, node_positions[agent_locations[a]]});
  }
  ++frames_;
}

void RunRecorder::write_csv(std::ostream& os) const {
  os << "step,kind,id,x,y\n";
  os << std::setprecision(12);
  for (const Row& row : rows_)
    os << row.step << ',' << (row.kind == 'n' ? "node" : "agent") << ','
       << row.id << ',' << row.position.x << ',' << row.position.y << '\n';
}

}  // namespace agentnet
