// Format (line oriented, '#' comments allowed between sections):
//
//   agentnet-scenario 1
//   params <node_count> <gateway_count> <placement> <mobile_fraction>
//   bounds <lo.x> <lo.y> <hi.x> <hi.y>
//   radio <node_range> <range_spread> <gateway_boost> <min_scale>
//   battery <capacity> <drain>
//   movement <min_speed> <max_speed> <turn_probability>
//   policy <directed|symmetric-and|symmetric-or>
//   nodes <N>
//   <x> <y> <range> <g|-> <m|->        (N lines: gateway/mobile flags)
//   frames <F>
//   <x y> * N                           (F lines, one frame per line)
#include "io/scenario_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/atomic_file.hpp"
#include "common/error.hpp"

namespace agentnet {

namespace {

const char* policy_token(LinkPolicy policy) {
  switch (policy) {
    case LinkPolicy::kDirected:
      return "directed";
    case LinkPolicy::kSymmetricAnd:
      return "symmetric-and";
    case LinkPolicy::kSymmetricOr:
      return "symmetric-or";
  }
  return "?";
}

LinkPolicy parse_policy_token(const std::string& name) {
  if (name == "directed") return LinkPolicy::kDirected;
  if (name == "symmetric-and") return LinkPolicy::kSymmetricAnd;
  if (name == "symmetric-or") return LinkPolicy::kSymmetricOr;
  throw ConfigError("unknown link policy in scenario file: " + name);
}

GatewayPlacement parse_placement_token(const std::string& name) {
  if (name == "random") return GatewayPlacement::kRandom;
  if (name == "spread") return GatewayPlacement::kSpread;
  if (name == "perimeter") return GatewayPlacement::kPerimeter;
  throw ConfigError("unknown gateway placement in scenario file: " + name);
}

std::string next_line(std::istream& is) {
  std::string line;
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return line;
  }
  throw ConfigError("unexpected end of scenario file");
}

std::istringstream tagged(std::istream& is, const char* tag) {
  std::istringstream line(next_line(is));
  std::string seen;
  line >> seen;
  AGENTNET_REQUIRE(seen == tag, std::string("expected section '") + tag +
                                    "', got '" + seen + "'");
  return line;
}

}  // namespace

void save_scenario(const RoutingScenario& scenario, std::ostream& os) {
  const auto& p = scenario.params();
  os << "agentnet-scenario 1\n" << std::setprecision(17);
  os << "params " << p.node_count << ' ' << p.gateway_count << ' '
     << to_string(p.gateway_placement) << ' ' << p.mobile_fraction << '\n';
  os << "bounds " << p.bounds.lo.x << ' ' << p.bounds.lo.y << ' '
     << p.bounds.hi.x << ' ' << p.bounds.hi.y << '\n';
  os << "radio " << p.node_range << ' ' << p.range_spread << ' '
     << p.gateway_range_boost << ' ' << p.scaling.min_scale << '\n';
  os << "battery " << p.battery.capacity << ' ' << p.battery.drain_per_step
     << '\n';
  os << "movement " << p.movement.min_speed << ' ' << p.movement.max_speed
     << ' ' << p.movement.turn_probability << '\n';
  os << "policy " << policy_token(p.policy) << '\n';
  os << "nodes " << p.node_count << '\n';
  for (std::size_t i = 0; i < p.node_count; ++i) {
    os << scenario.initial_positions()[i].x << ' '
       << scenario.initial_positions()[i].y << ' '
       << scenario.base_ranges()[i] << ' '
       << (scenario.is_gateway()[i] ? 'g' : '-') << ' '
       << (scenario.mobile()[i] ? 'm' : '-') << '\n';
  }
  const TraceMobility& trace = scenario.trace();
  os << "frames " << trace.frames() << '\n';
  for (std::size_t f = 0; f < trace.frames(); ++f) {
    const auto& frame = trace.frame(f);
    for (std::size_t i = 0; i < frame.size(); ++i)
      os << frame[i].x << ' ' << frame[i].y
         << (i + 1 == frame.size() ? '\n' : ' ');
  }
  AGENTNET_REQUIRE(os.good(), "write failed while saving scenario");
}

RoutingScenario load_scenario(std::istream& is) {
  {
    std::istringstream header(next_line(is));
    std::string magic;
    int version = 0;
    header >> magic >> version;
    AGENTNET_REQUIRE(magic == "agentnet-scenario" && version == 1,
                     "not an agentnet-scenario v1 file");
  }
  RoutingScenarioParams p;
  {
    auto line = tagged(is, "params");
    std::string placement;
    line >> p.node_count >> p.gateway_count >> placement >>
        p.mobile_fraction;
    AGENTNET_REQUIRE(!line.fail(), "bad params line");
    p.gateway_placement = parse_placement_token(placement);
  }
  {
    auto line = tagged(is, "bounds");
    line >> p.bounds.lo.x >> p.bounds.lo.y >> p.bounds.hi.x >> p.bounds.hi.y;
    AGENTNET_REQUIRE(!line.fail(), "bad bounds line");
  }
  {
    auto line = tagged(is, "radio");
    line >> p.node_range >> p.range_spread >> p.gateway_range_boost >>
        p.scaling.min_scale;
    AGENTNET_REQUIRE(!line.fail(), "bad radio line");
  }
  {
    auto line = tagged(is, "battery");
    line >> p.battery.capacity >> p.battery.drain_per_step;
    AGENTNET_REQUIRE(!line.fail(), "bad battery line");
  }
  {
    auto line = tagged(is, "movement");
    line >> p.movement.min_speed >> p.movement.max_speed >>
        p.movement.turn_probability;
    AGENTNET_REQUIRE(!line.fail(), "bad movement line");
  }
  {
    auto line = tagged(is, "policy");
    std::string token;
    line >> token;
    AGENTNET_REQUIRE(!line.fail(), "bad policy line");
    p.policy = parse_policy_token(token);
  }
  std::size_t node_count = 0;
  {
    auto line = tagged(is, "nodes");
    line >> node_count;
    AGENTNET_REQUIRE(!line.fail() && node_count == p.node_count,
                     "nodes section disagrees with params");
  }
  std::vector<Vec2> positions(node_count);
  std::vector<double> ranges(node_count);
  std::vector<bool> is_gateway(node_count), mobile(node_count);
  for (std::size_t i = 0; i < node_count; ++i) {
    std::istringstream line(next_line(is));
    char g = 0, m = 0;
    line >> positions[i].x >> positions[i].y >> ranges[i] >> g >> m;
    AGENTNET_REQUIRE(!line.fail() && (g == 'g' || g == '-') &&
                         (m == 'm' || m == '-'),
                     "bad node line");
    is_gateway[i] = g == 'g';
    mobile[i] = m == 'm';
  }
  std::size_t frame_count = 0;
  {
    auto line = tagged(is, "frames");
    line >> frame_count;
    AGENTNET_REQUIRE(!line.fail(), "bad frames line");
  }
  p.trace_steps = frame_count;
  // Re-record the trace by replaying the stored frames through a scripted
  // model, so the loaded scenario replays identically.
  class FrameScript final : public MobilityModel {
   public:
    std::vector<std::vector<Vec2>> frames;
    std::vector<bool> stationary;
    std::size_t cursor = 0;
    void step(std::vector<Vec2>& positions) override {
      if (cursor < frames.size()) positions = frames[cursor++];
    }
    bool is_stationary(std::size_t node) const override {
      return stationary[node];
    }
  };
  FrameScript script;
  script.stationary.resize(node_count);
  for (std::size_t i = 0; i < node_count; ++i)
    script.stationary[i] = !mobile[i];
  script.frames.reserve(frame_count);
  for (std::size_t f = 0; f < frame_count; ++f) {
    std::istringstream line(next_line(is));
    std::vector<Vec2> frame(node_count);
    for (std::size_t i = 0; i < node_count; ++i)
      line >> frame[i].x >> frame[i].y;
    AGENTNET_REQUIRE(!line.fail(), "bad frame line");
    script.frames.push_back(std::move(frame));
  }
  TraceMobility trace = TraceMobility::record(script, positions, frame_count);
  return RoutingScenario(p, std::move(positions), std::move(ranges),
                         std::move(is_gateway), std::move(mobile),
                         std::move(trace));
}

void save_scenario_file(const RoutingScenario& scenario,
                        const std::string& path) {
  // Temp-then-rename: a crash mid-save never leaves a torn scenario file.
  AtomicFileWriter file(path);
  save_scenario(scenario, file.stream());
  file.commit();
}

RoutingScenario load_scenario_file(const std::string& path) {
  std::ifstream is(path);
  AGENTNET_REQUIRE(is.is_open(), "cannot open for reading: " + path);
  return load_scenario(is);
}

}  // namespace agentnet
