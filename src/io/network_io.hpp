// Persistence and export: the counterpart of the original simulator's
// "graphical view and plots, [and] data-collection system".
//
// * save/load of generated networks (exact reproducibility across machines
//   without re-running the generator search),
// * Graphviz DOT export for figures,
// * CSV export of named time series for external plotting,
// * a run recorder that captures node positions and agent locations per
//   step for animation tooling.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "net/generators.hpp"

namespace agentnet {

/// Writes `net` as a line-oriented text document (format documented in
/// network_io.cpp; versioned header "agentnet-network 1").
void save_network(const GeneratedNetwork& net, std::ostream& os);

/// Parses a document produced by save_network. Throws ConfigError on any
/// malformed or inconsistent input (wrong magic, counts, ids out of range).
GeneratedNetwork load_network(std::istream& is);

/// Convenience file wrappers; throw ConfigError on I/O failure.
void save_network_file(const GeneratedNetwork& net, const std::string& path);
GeneratedNetwork load_network_file(const std::string& path);

struct DotOptions {
  /// Render mutual edge pairs as one undirected-looking edge (dir=none)
  /// instead of two arcs; one-way links stay arrows.
  bool collapse_mutual = true;
  /// Scale factor from arena coordinates to DOT position units.
  double position_scale = 0.01;
  /// Nodes to emphasise (e.g. gateways); doubled border, filled.
  std::vector<NodeId> highlights;
};

/// Graphviz DOT (digraph, with pinned node positions when the network
/// carries geometry).
std::string to_dot(const GeneratedNetwork& net, const DotOptions& options = {});

/// One named time series per column; rows are steps. Series may have
/// different lengths — missing cells are left empty.
void write_series_csv(std::ostream& os,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series);

/// Captures per-step world and agent state for animation/analysis.
/// Columns: step,kind,id,x,y (kind ∈ {node, agent}; agents take the
/// position of the node they sit on).
class RunRecorder {
 public:
  /// Records one frame. `agent_locations[i]` is agent i's node.
  void frame(std::size_t step, const std::vector<Vec2>& node_positions,
             const std::vector<NodeId>& agent_locations);

  std::size_t frames() const { return frames_; }
  void write_csv(std::ostream& os) const;

 private:
  struct Row {
    std::size_t step;
    char kind;  // 'n' or 'a'
    std::size_t id;
    Vec2 position;
  };
  std::vector<Row> rows_;
  std::size_t frames_ = 0;
};

}  // namespace agentnet
