// Serialization of routing scenarios (placement + masks + the full
// movement script). A scenario is deterministic in its seed *on one
// machine*, but the mobility models use libm (sin/cos/log), whose last-bit
// behaviour differs across platforms — so byte-exact cross-machine
// reproduction requires shipping the materialised scenario, not the seed.
#pragma once

#include <iosfwd>
#include <string>

#include "core/routing_task.hpp"

namespace agentnet {

/// Writes `scenario` as a line-oriented text document (versioned header
/// "agentnet-scenario 1"; format documented in scenario_io.cpp).
void save_scenario(const RoutingScenario& scenario, std::ostream& os);

/// Parses a document produced by save_scenario. Throws ConfigError on
/// malformed or inconsistent input.
RoutingScenario load_scenario(std::istream& is);

void save_scenario_file(const RoutingScenario& scenario,
                        const std::string& path);
RoutingScenario load_scenario_file(const std::string& path);

}  // namespace agentnet
