#include "sim/shard.hpp"

#include <cmath>

#include "common/error.hpp"

namespace agentnet {

WorldShards::WorldShards(Aabb bounds, double tile_size,
                         std::span<const NodeId> maybe_dirty,
                         const std::vector<Vec2>& built_positions,
                         const std::vector<double>& built_ranges,
                         const BatteryBank& batteries)
    : bounds_(bounds), tile_size_(tile_size) {
  AGENTNET_REQUIRE(std::isfinite(tile_size) && tile_size > 0.0,
                   "shard tile size must be finite and > 0");
  AGENTNET_REQUIRE(bounds.width() > 0.0 && bounds.height() > 0.0,
                   "shard bounds must have positive area");
  const auto tiles_for = [](double extent, double ts) {
    const double c = std::ceil(extent / ts);
    return c < 1.0 ? 1.0 : c;
  };
  while (tiles_for(bounds.width(), tile_size_) *
             tiles_for(bounds.height(), tile_size_) >
         static_cast<double>(kMaxTiles))
    tile_size_ *= 2.0;
  cols_ = static_cast<int>(tiles_for(bounds.width(), tile_size_));
  rows_ = static_cast<int>(tiles_for(bounds.height(), tile_size_));
  tiles_.resize(static_cast<std::size_t>(cols_) * rows_);

  const std::size_t n = built_positions.size();
  AGENTNET_REQUIRE(built_ranges.size() == n,
                   "shard built positions/ranges size mismatch");
  maybe_dirty_mask_ = DenseBitset(n);
  tile_of_.assign(n, kInvalidNode);
  slot_of_.assign(n, kInvalidNode);
  for (NodeId m : maybe_dirty) {
    AGENTNET_REQUIRE(m < n, "shard member id out of range");
    maybe_dirty_mask_.set(m);
    insert_member(tile_of_pos(built_positions[m]), m, built_positions[m],
                  built_ranges[m], batteries.on_battery(m));
  }
}

std::size_t WorldShards::tile_of_pos(Vec2 p) const {
  const Vec2 q = bounds_.clamp(p);
  const int cx = std::min(
      cols_ - 1, static_cast<int>((q.x - bounds_.lo.x) / tile_size_));
  const int cy = std::min(
      rows_ - 1, static_cast<int>((q.y - bounds_.lo.y) / tile_size_));
  return static_cast<std::size_t>(cy) * cols_ + cx;
}

void WorldShards::insert_member(std::size_t tile, NodeId m, Vec2 pos,
                                double range, bool battery) {
  Tile& t = tiles_[tile];
  tile_of_[m] = static_cast<std::uint32_t>(tile);
  slot_of_[m] = static_cast<std::uint32_t>(t.members.size());
  t.members.push_back(m);
  t.built_x.push_back(pos.x);
  t.built_y.push_back(pos.y);
  t.built_range.push_back(range);
  t.on_battery.push_back(battery ? 1 : 0);
}

void WorldShards::remove_member(NodeId m) {
  Tile& t = tiles_[tile_of_[m]];
  const std::uint32_t s = slot_of_[m];
  const std::uint32_t last = static_cast<std::uint32_t>(t.members.size() - 1);
  if (s != last) {
    t.members[s] = t.members[last];
    t.built_x[s] = t.built_x[last];
    t.built_y[s] = t.built_y[last];
    t.built_range[s] = t.built_range[last];
    t.on_battery[s] = t.on_battery[last];
    slot_of_[t.members[s]] = s;
  }
  t.members.pop_back();
  t.built_x.pop_back();
  t.built_y.pop_back();
  t.built_range.pop_back();
  t.on_battery.pop_back();
  tile_of_[m] = kInvalidNode;
  slot_of_[m] = kInvalidNode;
}

void WorldShards::commit(const std::vector<Vec2>& positions) {
  for (std::size_t k = 0; k < dirty_ids_.size(); ++k) {
    const NodeId m = dirty_ids_[k];
    const Vec2 p = positions[m];
    const std::size_t t_old = tile_of_[m];
    const std::size_t t_new = tile_of_pos(p);
    if (t_new == t_old) {
      Tile& t = tiles_[t_old];
      const std::uint32_t s = slot_of_[m];
      t.built_x[s] = p.x;
      t.built_y[s] = p.y;
      t.built_range[s] = dirty_ranges_[k];
    } else {
      const bool battery = tiles_[t_old].on_battery[slot_of_[m]] != 0;
      remove_member(m);
      insert_member(t_new, m, p, dirty_ranges_[k], battery);
    }
  }
}

std::size_t WorldShards::heap_bytes() const {
  std::size_t bytes = tiles_.capacity() * sizeof(Tile) +
                      tile_of_.capacity() * sizeof(std::uint32_t) +
                      slot_of_.capacity() * sizeof(std::uint32_t) +
                      merged_.capacity() * sizeof(merged_[0]) +
                      dirty_ids_.capacity() * sizeof(NodeId) +
                      dirty_ranges_.capacity() * sizeof(double) +
                      (maybe_dirty_mask_.size() + 63) / 64 * 8;
  for (const Tile& t : tiles_) {
    bytes += t.members.capacity() * sizeof(NodeId) +
             t.built_x.capacity() * sizeof(double) +
             t.built_y.capacity() * sizeof(double) +
             t.built_range.capacity() * sizeof(double) +
             t.on_battery.capacity() +
             t.dirty.capacity() * sizeof(NodeId) +
             t.dirty_range.capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace agentnet
