// The simulated wireless world: node positions driven by a mobility model,
// batteries draining, radio ranges scaling with charge, and the live link
// graph rebuilt from the current snapshot each step.
//
// Agents (src/core) observe the World read-only; all agent interaction with
// the environment goes through node-local state (routing tables, stigmergy
// boards) owned by the task layer, matching the paper's "the nodes
// themselves run no programs".
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/graph.hpp"
#include "net/link_noise.hpp"
#include "net/topology.hpp"
#include "radio/range_model.hpp"

namespace agentnet {

class World {
 public:
  /// Fully general constructor; see the factory helpers below for the two
  /// paper scenarios.
  World(Aabb bounds, std::vector<Vec2> initial_positions,
        RadioModel radio, BatteryBank batteries,
        std::unique_ptr<MobilityModel> mobility, LinkPolicy policy);

  /// A frozen snapshot world: stationary nodes, mains power. Used by the
  /// mapping scenario (and tests) — the graph never changes.
  static World frozen(const GeneratedNetwork& net);

  /// A world pinned to an explicit abstract graph (no geometry): the graph
  /// is never rebuilt, advance() only ticks the clock. For running agents
  /// on non-geometric topologies (Erdős–Rényi, preferential attachment).
  /// Link flappers are not supported on fixed worlds.
  static World fixed(Graph graph);

  /// Advances one simulation step: mobility, battery drain, link rebuild.
  void advance();

  std::size_t node_count() const { return positions_.size(); }
  std::size_t step() const { return step_; }
  const Graph& graph() const { return graph_; }
  /// Frozen CSR snapshot of graph(), refreshed on every rebuild. Read-heavy
  /// per-step consumers (connectivity walks, coverage measurement) iterate
  /// this; results are bit-identical to iterating graph().
  const CsrView& csr() const { return csr_; }
  /// True when the graph is derived from node geometry (positions/ranges).
  /// fixed() worlds pin an abstract graph over synthetic geometry, so
  /// geometric shortcuts (edge ⇒ within radio range) do not hold there.
  bool geometric() const { return !fixed_topology_; }
  const std::vector<Vec2>& positions() const { return positions_; }
  const RadioModel& radio() const { return radio_; }
  const BatteryBank& batteries() const { return batteries_; }
  const MobilityModel& mobility() const { return *mobility_; }
  Aabb bounds() const { return bounds_; }
  LinkPolicy link_policy() const { return builder_.policy(); }

  double effective_range(NodeId node) const {
    return radio_.effective_range(node, batteries_.fraction(node));
  }

  /// Installs (or clears) link weather: down links are removed from the
  /// graph after every rebuild. Takes effect immediately.
  void set_link_flapper(std::optional<LinkFlapper> flapper);
  const std::optional<LinkFlapper>& link_flapper() const { return flapper_; }

 private:
  void rebuild_graph();

  Aabb bounds_;
  std::vector<Vec2> positions_;
  RadioModel radio_;
  BatteryBank batteries_;
  std::unique_ptr<MobilityModel> mobility_;
  TopologyBuilder builder_;
  Graph graph_;
  // Double buffer: each rebuild writes into back_graph_ (recycling its
  // per-node capacity) and swaps — steady-state advance() allocates nothing.
  Graph back_graph_;
  CsrView csr_;
  std::vector<double> ranges_;  ///< rebuild_graph() scratch.
  std::optional<LinkFlapper> flapper_;
  bool fixed_topology_ = false;
  std::size_t step_ = 0;
};

/// Per-step scalar recorder: collects one named series over a run.
class SeriesRecorder {
 public:
  void record(double value) { values_.push_back(value); }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

}  // namespace agentnet
