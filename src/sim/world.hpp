// The simulated wireless world: node positions driven by a mobility model,
// batteries draining, radio ranges scaling with charge, and the live link
// graph maintained from the current snapshot each step.
//
// Agents (src/core) observe the World read-only; all agent interaction with
// the environment goes through node-local state (routing tables, stigmergy
// boards) owned by the task layer, matching the paper's "the nodes
// themselves run no programs".
//
// Topology maintenance is incremental by default: advance() collects the
// dirty set (nodes whose position or quantized range changed — stationary,
// mains-powered nodes are clean forever) and patches only the affected
// rows; set AGENTNET_TOPO_INCREMENTAL=0 for the full per-step rebuild.
// Both paths produce bit-identical graphs; epoch() counts the steps where
// the edge set actually changed, so derived-state consumers can memoise on
// it (docs/PERFORMANCE.md, "Incremental topology maintenance").
//
// At scale (AGENTNET_TOPO_SHARD, auto-on from AGENTNET_TOPO_SHARD_MIN_NODES
// nodes) upkeep additionally runs *sharded*: the maybe-dirty set lives in
// spatial tiles with SoA built state (sim/shard.hpp), the dirty scan is
// tile-local and can fan out over a thread pool, and the frozen CSR is
// patched row-by-row instead of refrozen wholesale. Sharded advance() is
// bit-identical to the flat path at any thread count — same graphs, same
// epochs, same checkpoint bytes (docs/PERFORMANCE.md, "Sharded world").
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "energy/battery.hpp"
#include "geom/vec2.hpp"
#include "mobility/mobility.hpp"
#include "net/generators.hpp"
#include "net/graph.hpp"
#include "net/link_noise.hpp"
#include "net/topology.hpp"
#include "radio/range_model.hpp"
#include "sim/shard.hpp"

namespace agentnet {

class World {
 public:
  /// Fully general constructor; see the factory helpers below for the two
  /// paper scenarios.
  World(Aabb bounds, std::vector<Vec2> initial_positions,
        RadioModel radio, BatteryBank batteries,
        std::unique_ptr<MobilityModel> mobility, LinkPolicy policy);

  /// A frozen snapshot world: stationary nodes, mains power. Used by the
  /// mapping scenario (and tests) — the graph never changes.
  static World frozen(const GeneratedNetwork& net);

  /// A world pinned to an explicit abstract graph (no geometry): the graph
  /// is never rebuilt, advance() only ticks the clock. For running agents
  /// on non-geometric topologies (Erdős–Rényi, preferential attachment).
  /// Link flappers are not supported on fixed worlds.
  static World fixed(Graph graph);

  /// Advances one simulation step: mobility, battery drain, link upkeep.
  /// When nothing is dirty (static world, pure clock tick) the topology —
  /// graph, CSR snapshot, epoch — is left untouched, so downstream caches
  /// stay warm.
  void advance();

  std::size_t node_count() const { return positions_.size(); }
  std::size_t step() const { return step_; }
  /// The live link graph: link weather applied when a flapper is active,
  /// the pure geometric topology otherwise.
  const Graph& graph() const {
    return weather_active_ ? flapped_ : geo_graph_;
  }
  /// Frozen CSR snapshot of graph(), refreshed only when the edge set
  /// changes. Read-heavy per-step consumers (connectivity walks, coverage
  /// measurement) iterate this; results are bit-identical to iterating
  /// graph().
  const CsrView& csr() const { return csr_; }
  /// Monotonic edge-set version of graph(): bumped exactly when an
  /// advance() (or reconfiguration) changed some edge. Derived-state
  /// consumers memoise on it — equal epochs guarantee an identical graph.
  std::uint64_t epoch() const { return epoch_; }
  /// Monotonic version of the node state feeding the topology (positions /
  /// effective ranges): bumped when any node moved or changed range, even
  /// if the edge set survived. Position-dependent consumers (blackout
  /// coverage) key on this in addition to epoch().
  std::uint64_t state_epoch() const { return state_epoch_; }
  /// True when the graph is derived from node geometry (positions/ranges).
  /// fixed() worlds pin an abstract graph over synthetic geometry, so
  /// geometric shortcuts (edge ⇒ within radio range) do not hold there.
  bool geometric() const { return !fixed_topology_; }
  const std::vector<Vec2>& positions() const { return positions_; }
  const RadioModel& radio() const { return radio_; }
  const BatteryBank& batteries() const { return batteries_; }
  const MobilityModel& mobility() const { return *mobility_; }
  Aabb bounds() const { return bounds_; }
  LinkPolicy link_policy() const { return builder_.policy(); }

  double effective_range(NodeId node) const {
    return radio_.effective_range(node, batteries_.fraction(node));
  }

  /// Selects incremental (dirty-set) vs full per-step topology upkeep.
  /// Defaults to AGENTNET_TOPO_INCREMENTAL (on when unset). Both modes keep
  /// every internal structure in sync, so toggling mid-run is safe and
  /// never changes results — only the amount of work per advance().
  void set_incremental_topology(bool incremental) {
    incremental_ = incremental;
  }
  bool incremental_topology() const { return incremental_; }

  /// Selects spatially sharded topology upkeep (sim/shard.hpp): tile-local
  /// dirty scans, per-row CSR patching, optional thread fan-out. Defaults
  /// from AGENTNET_TOPO_SHARD — "auto" (on from AGENTNET_TOPO_SHARD_MIN_NODES
  /// nodes, default 4096), or an explicit on/off. Sharded upkeep takes
  /// precedence over the incremental/full toggle and keeps every structure
  /// in sync, so toggling mid-run is safe and never changes results.
  void set_sharding(bool sharded);
  bool sharded() const { return sharded_; }

  /// Worker threads for the sharded dirty scan and row gather; 1 (the
  /// default, or AGENTNET_TOPO_SHARD_THREADS) is the exact serial path and
  /// every setting is bit-identical — threads only redistribute tile-local
  /// work (0 resolves AGENTNET_THREADS / hardware concurrency).
  void set_shard_threads(std::size_t threads);
  std::size_t shard_threads() const { return shard_threads_; }

  /// Approximate heap footprint of the world's live structures — node
  /// state, graphs, CSR, builder grid, shard tiles. The scale benches
  /// report this as bytes/node; O(n) walk, not for hot paths.
  std::size_t memory_bytes() const;

  /// Installs (or clears) link weather: down links are removed from the
  /// graph() view (the geometric topology is kept separately so
  /// incremental upkeep can diff against it). Takes effect immediately.
  void set_link_flapper(std::optional<LinkFlapper> flapper);
  const std::optional<LinkFlapper>& link_flapper() const { return flapper_; }

  /// Checkpoint support. Serializes the evolving state (positions, clock,
  /// batteries, mobility, epoch counters); load_state rebuilds the derived
  /// topology — ranges, geometric graph, weather view, CSR — from the
  /// restored snapshot, which reproduces it bit-for-bit because it is a
  /// pure function of that state. Call on a world constructed from the
  /// same config (same node count, policy, flapper and env knobs).
  void save_state(snapshot::ByteWriter& w) const;
  void load_state(snapshot::ByteReader& r);

 private:
  /// Quantized effective range: AGENTNET_TOPO_RANGE_QUANTUM > 0 coarsens
  /// ranges to multiples of the quantum (fewer range-dirty nodes per step);
  /// the default 0 is the exact identity. Applied identically in both
  /// upkeep modes, so they always agree bit for bit.
  double quantized_range(NodeId node) const;
  /// Fills dirty_ (ascending) with the maybe-dirty nodes whose position or
  /// quantized range changed since the last build, refreshing ranges_.
  void collect_dirty();
  /// Rebuilds or patches the geometric graph for the current snapshot.
  void refresh_topology();
  /// Refreshes the weather view, CSR snapshot and epoch after the
  /// geometric graph may have changed.
  void refresh_effective(bool geo_changed);
  /// Filter-copies geo_graph_ minus down links into back_flapped_,
  /// counting the drops (kLinkFlaps totals match the historical
  /// apply-every-step path).
  void rebuild_flapped();
  /// The sharded advance() tail: tile scan, parallel row gather, CSR row
  /// patching. Bit-identical to refresh_topology()'s flat body.
  void refresh_topology_sharded();
  /// Sharded counterpart of refresh_effective(): patches weather rows and
  /// CSR rows listed in touched_rows_ instead of rebuilding wholesale.
  void refresh_effective_sharded(bool geo_changed);
  /// (Re)builds the shard tiles + padded CSR from the current built state.
  void init_shards();
  /// Refreshes flap_row_drops_ (per-row weather drop counts) from the
  /// current geo/flapped pair; sharded weather bookkeeping.
  void rebuild_flap_row_drops();
  ThreadPool* shard_pool();

  Aabb bounds_;
  std::vector<Vec2> positions_;
  RadioModel radio_;
  BatteryBank batteries_;
  std::unique_ptr<MobilityModel> mobility_;
  TopologyBuilder builder_;
  // Pure geometric topology (no weather). Incremental updates patch it in
  // place; full rebuilds write into back_graph_ (recycling its per-node
  // capacity) and swap — steady-state advance() allocates nothing.
  Graph geo_graph_;
  Graph back_graph_;
  // Weather view double buffer, used only while a flapper is active.
  Graph flapped_;
  Graph back_flapped_;
  CsrView csr_;
  std::vector<double> ranges_;  ///< Quantized ranges as of the last build.
  std::vector<Vec2> built_positions_;  ///< Positions as of the last build.
  std::vector<NodeId> maybe_dirty_;  ///< Nodes that can ever become dirty.
  std::vector<NodeId> dirty_;        ///< collect_dirty() output (scratch).
  std::vector<NodeId> flap_scratch_;
  std::optional<LinkFlapper> flapper_;
  bool weather_active_ = false;
  bool flapped_valid_ = false;
  std::uint64_t flap_window_ = 0;
  std::size_t flap_drops_ = 0;  ///< Drops in the last weather rebuild.
  bool incremental_ = true;
  // Sharded upkeep (docs/PERFORMANCE.md, "Sharded world"). All of it is
  // derived state: checkpoints never serialize shard structures, load_state
  // rebuilds them, so snapshots stay byte-compatible with flat worlds.
  std::unique_ptr<WorldShards> shards_;
  std::unique_ptr<ThreadPool> shard_pool_;
  std::vector<NodeId> touched_rows_;  ///< update_into() modified-row output.
  std::vector<std::uint32_t> flap_row_drops_;  ///< Weather drops per row.
  bool sharded_ = false;
  std::size_t shard_threads_ = 1;
  double shard_tile_factor_ = 4.0;
  double quantum_ = 0.0;
  std::uint64_t epoch_ = 0;
  std::uint64_t state_epoch_ = 0;
  bool fixed_topology_ = false;
  std::size_t step_ = 0;
};

/// Per-step scalar recorder: collects one named series over a run.
class SeriesRecorder {
 public:
  void record(double value) { values_.push_back(value); }
  const std::vector<double>& values() const { return values_; }
  std::size_t size() const { return values_.size(); }

 private:
  std::vector<double> values_;
};

}  // namespace agentnet
