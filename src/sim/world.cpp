#include "sim/world.hpp"

#include <algorithm>
#include <cmath>

#include "common/env.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace agentnet {

World::World(Aabb bounds, std::vector<Vec2> initial_positions,
             RadioModel radio, BatteryBank batteries,
             std::unique_ptr<MobilityModel> mobility, LinkPolicy policy)
    : bounds_(bounds),
      positions_(std::move(initial_positions)),
      radio_(std::move(radio)),
      batteries_(std::move(batteries)),
      mobility_(std::move(mobility)),
      builder_(bounds, radio_.max_base_range(), policy) {
  AGENTNET_REQUIRE(positions_.size() == radio_.size(),
                   "positions / radio size mismatch");
  AGENTNET_REQUIRE(positions_.size() == batteries_.size(),
                   "positions / batteries size mismatch");
  AGENTNET_REQUIRE(mobility_ != nullptr, "world needs a mobility model");
  incremental_ = env_bool("AGENTNET_TOPO_INCREMENTAL", true);
  quantum_ = env_double("AGENTNET_TOPO_RANGE_QUANTUM", 0.0);
  AGENTNET_REQUIRE(quantum_ >= 0.0, "range quantum must be >= 0");
  shard_tile_factor_ = env_double("AGENTNET_TOPO_SHARD_TILE", 4.0);
  AGENTNET_REQUIRE(shard_tile_factor_ > 0.0, "shard tile factor must be > 0");
  const auto threads_knob = env_int("AGENTNET_TOPO_SHARD_THREADS", 1);
  AGENTNET_REQUIRE(threads_knob >= 0, "shard threads must be >= 0");
  shard_threads_ = threads_knob == 0
                       ? ThreadPool::default_threads()
                       : static_cast<std::size_t>(threads_knob);
  // Only nodes that can move or discharge can ever dirty the topology;
  // stationary mains-powered nodes (gateways, frozen mapping networks) are
  // clean forever and cost nothing per advance().
  for (std::size_t i = 0; i < positions_.size(); ++i)
    if (!mobility_->is_stationary(i) || batteries_.on_battery(i))
      maybe_dirty_.push_back(static_cast<NodeId>(i));
  ranges_.resize(positions_.size());
  for (std::size_t i = 0; i < ranges_.size(); ++i)
    ranges_[i] = quantized_range(static_cast<NodeId>(i));
  built_positions_ = positions_;
  builder_.build_into(geo_graph_, positions_, ranges_);
  refresh_effective(true);
  // AGENTNET_TOPO_SHARD: "auto" (default) turns sharded upkeep on from
  // AGENTNET_TOPO_SHARD_MIN_NODES nodes; explicit on/off overrides.
  const auto shard_env = env_string("AGENTNET_TOPO_SHARD");
  bool want_sharded;
  if (!shard_env || *shard_env == "auto") {
    const auto min_nodes = env_int("AGENTNET_TOPO_SHARD_MIN_NODES", 4096);
    want_sharded = min_nodes >= 0 &&
                   positions_.size() >= static_cast<std::size_t>(min_nodes);
  } else {
    want_sharded = env_bool("AGENTNET_TOPO_SHARD", false);
  }
  if (want_sharded) set_sharding(true);
}

World World::frozen(const GeneratedNetwork& net) {
  const std::size_t n = net.positions.size();
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(net.bounds, net.positions,
              RadioModel(net.base_ranges, RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              net.policy);
  return world;
}

World World::fixed(Graph graph) {
  const std::size_t n = graph.node_count();
  AGENTNET_REQUIRE(n >= 1, "fixed world needs at least one node");
  // Synthetic unit-spaced geometry so World's invariants hold; the graph
  // itself is pinned and never derived from it.
  std::vector<Vec2> positions(n);
  for (std::size_t i = 0; i < n; ++i)
    positions[i] = {static_cast<double>(i), 0.0};
  const Aabb bounds{{-1.0, -1.0}, {static_cast<double>(n), 1.0}};
  BatteryBank mains(n, std::vector<bool>(n, false), BatteryParams{});
  World world(bounds, std::move(positions),
              RadioModel(std::vector<double>(n, 0.5), RangeScaling{1.0}),
              std::move(mains), std::make_unique<StationaryMobility>(),
              LinkPolicy::kDirected);
  world.fixed_topology_ = true;
  world.sharded_ = false;  // pinned graph: no upkeep, no shard structures
  world.shards_.reset();
  world.geo_graph_ = std::move(graph);
  world.csr_.rebuild_from(world.geo_graph_);
  return world;
}

void World::advance() {
  AGENTNET_OBS_PHASE(kWorldAdvance);
  mobility_->step(positions_);
  batteries_.step();
  // Sampled at the pre-increment step, which is the task loop's current t.
  if (AGENTNET_OBS_METRICS_WANT(step_) && batteries_.size() > 0) {
    std::size_t alive = 0;
    for (std::size_t i = 0; i < batteries_.size(); ++i)
      if (batteries_.fraction(i) > 0.0) ++alive;
    AGENTNET_OBS_GAUGE(kBatteryAlive, step_,
                       static_cast<double>(alive) /
                           static_cast<double>(batteries_.size()));
  }
  ++step_;  // the refreshed graph (incl. link weather) belongs to the new step
  refresh_topology();
}

double World::quantized_range(NodeId node) const {
  const double r = effective_range(node);
  if (quantum_ <= 0.0) return r;
  return std::floor(r / quantum_) * quantum_;
}

void World::collect_dirty() {
  dirty_.clear();
  for (NodeId i : maybe_dirty_) {
    const double r = quantized_range(i);
    if (positions_[i] != built_positions_[i] || r != ranges_[i]) {
      dirty_.push_back(i);
      ranges_[i] = r;
    }
  }
  if (!dirty_.empty()) ++state_epoch_;
}

void World::refresh_topology() {
  if (fixed_topology_) return;  // pinned graph (and its CSR) never change
  if (sharded_) {
    refresh_topology_sharded();
    return;
  }
  collect_dirty();
  bool geo_changed = false;
  if (!dirty_.empty()) {
    if (incremental_) {
      AGENTNET_COUNT_N(kTopoNodesDirty, dirty_.size());
      geo_changed =
          builder_.update_into(geo_graph_, dirty_, positions_, ranges_);
      for (NodeId u : dirty_) built_positions_[u] = positions_[u];
    } else {
      AGENTNET_COUNT(kTopoFullRebuilds);
      builder_.build_into(back_graph_, positions_, ranges_);
      geo_changed = !(back_graph_ == geo_graph_);
      std::swap(geo_graph_, back_graph_);
      built_positions_ = positions_;
    }
  }
  refresh_effective(geo_changed);
}

void World::refresh_topology_sharded() {
  // Tile-local scan; the merged output is the same ascending dirty set the
  // flat collect_dirty() produces, so everything downstream matches.
  shards_->collect_dirty(
      positions_, [this](NodeId m) { return quantized_range(m); },
      shard_pool());
  const std::vector<NodeId>& dirty = shards_->dirty_ids();
  bool geo_changed = false;
  touched_rows_.clear();
  if (!dirty.empty()) {
    ++state_epoch_;
    AGENTNET_COUNT_N(kTopoNodesDirty, dirty.size());
    AGENTNET_COUNT_N(kShardTilesDirty, shards_->last_tiles_dirty());
    const std::vector<double>& new_ranges = shards_->dirty_ranges();
    for (std::size_t k = 0; k < dirty.size(); ++k)
      ranges_[dirty[k]] = new_ranges[k];
    TopologyBuilder::UpdateOptions opts;
    opts.pool = shard_pool();
    opts.touched_rows = &touched_rows_;
    geo_changed =
        builder_.update_into(geo_graph_, dirty, positions_, ranges_, opts);
    for (NodeId u : dirty) built_positions_[u] = positions_[u];
    shards_->commit(positions_);
    // Halo rows: modified rows that were not themselves dirty — clean
    // neighbours fixed up across tile boundaries. Two-pointer walk over
    // the two ascending lists.
    std::size_t halo = 0;
    std::size_t d = 0;
    for (NodeId u : touched_rows_) {
      while (d < dirty.size() && dirty[d] < u) ++d;
      if (d == dirty.size() || dirty[d] != u) ++halo;
    }
    AGENTNET_COUNT_N(kShardHaloRows, halo);
  }
  refresh_effective_sharded(geo_changed);
}

void World::rebuild_flapped() {
  back_flapped_.reset(geo_graph_.node_count());
  std::size_t drops = 0;
  for (NodeId u = 0; u < geo_graph_.node_count(); ++u) {
    flap_scratch_.clear();
    for (NodeId v : geo_graph_.out_neighbors(u)) {
      if (flapper_->down(u, v, step_))
        ++drops;
      else
        flap_scratch_.push_back(v);
    }
    back_flapped_.assign_out_edges(u, flap_scratch_);
  }
  AGENTNET_COUNT_N(kLinkFlaps, drops);
  flap_drops_ = drops;
}

void World::refresh_effective(bool geo_changed) {
  bool effective_changed;
  if (weather_active_) {
    const std::uint64_t window = step_ / flapper_->persistence();
    if (geo_changed || !flapped_valid_ || window != flap_window_) {
      rebuild_flapped();
      effective_changed = !flapped_valid_ || !(back_flapped_ == flapped_);
      std::swap(flapped_, back_flapped_);
      flapped_valid_ = true;
      flap_window_ = window;
    } else {
      // Same geometry, same weather window: the view is unchanged. Charge
      // the drops it still contains so kLinkFlaps totals stay identical to
      // the historical apply-every-step path.
      AGENTNET_COUNT_N(kLinkFlaps, flap_drops_);
      effective_changed = false;
    }
  } else {
    effective_changed = geo_changed;
  }
  if (effective_changed) {
    csr_.rebuild_from(graph());
    ++epoch_;
  } else {
    AGENTNET_COUNT(kDerivedCacheHits);  // CSR snapshot stayed warm
  }
}

void World::refresh_effective_sharded(bool geo_changed) {
  // Mirrors refresh_effective() decision for decision — same epoch bumps,
  // same counter emissions — but replaces every wholesale rebuild with
  // per-row patching of the rows listed in touched_rows_.
  bool effective_changed;
  if (weather_active_) {
    const std::uint64_t window = step_ / flapper_->persistence();
    if (!flapped_valid_ || window != flap_window_) {
      // Window boundary: the whole weather draw changes — full rebuild,
      // exactly like the flat path (it pays O(E) here too).
      rebuild_flapped();
      effective_changed = !flapped_valid_ || !(back_flapped_ == flapped_);
      std::swap(flapped_, back_flapped_);
      flapped_valid_ = true;
      flap_window_ = window;
      rebuild_flap_row_drops();
      if (effective_changed) {
        csr_.rebuild_padded_from(flapped_);
        ++epoch_;
      } else {
        AGENTNET_COUNT(kDerivedCacheHits);
      }
      return;
    }
    // Same window: down(u,v) is frozen, so only rows whose geometry
    // changed can differ. Re-filter exactly those, maintaining the
    // running drop total so kLinkFlaps matches the flat path's recount.
    effective_changed = false;
    bool csr_fits = true;
    for (NodeId u : touched_rows_) {
      flap_scratch_.clear();
      std::uint32_t drops = 0;
      for (NodeId v : geo_graph_.out_neighbors(u)) {
        if (flapper_->down(u, v, step_))
          ++drops;
        else
          flap_scratch_.push_back(v);
      }
      const auto old_row = flapped_.out_neighbors(u);
      if (!std::equal(old_row.begin(), old_row.end(), flap_scratch_.begin(),
                      flap_scratch_.end()))
        effective_changed = true;
      flapped_.assign_out_edges(u, flap_scratch_);
      flap_drops_ += drops;
      flap_drops_ -= flap_row_drops_[u];
      flap_row_drops_[u] = drops;
      if (csr_fits) csr_fits = csr_.patch_row(u, flap_scratch_);
    }
    if (!csr_fits) csr_.rebuild_padded_from(flapped_);
    AGENTNET_COUNT_N(kLinkFlaps, flap_drops_);
  } else {
    effective_changed = geo_changed;
    if (effective_changed) {
      for (NodeId u : touched_rows_) {
        if (!csr_.patch_row(u, geo_graph_.out_neighbors(u))) {
          csr_.rebuild_padded_from(geo_graph_);
          break;
        }
      }
    }
  }
  if (effective_changed) {
    ++epoch_;
  } else {
    AGENTNET_COUNT(kDerivedCacheHits);  // CSR snapshot stayed warm
  }
}

void World::rebuild_flap_row_drops() {
  const std::size_t n = geo_graph_.node_count();
  flap_row_drops_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u)
    flap_row_drops_[u] = static_cast<std::uint32_t>(
        geo_graph_.out_degree(u) - flapped_.out_degree(u));
}

void World::init_shards() {
  const double tile =
      std::max(radio_.max_base_range() * shard_tile_factor_, 1e-9);
  shards_ = std::make_unique<WorldShards>(bounds_, tile, maybe_dirty_,
                                          built_positions_, ranges_,
                                          batteries_);
  csr_.rebuild_padded_from(graph());
  if (weather_active_ && flapped_valid_) rebuild_flap_row_drops();
}

void World::set_sharding(bool sharded) {
  AGENTNET_REQUIRE(!fixed_topology_ || !sharded,
                   "fixed-topology worlds do not shard");
  if (sharded == sharded_) return;
  sharded_ = sharded;
  if (sharded_) {
    init_shards();
  } else {
    shards_.reset();
    csr_.rebuild_from(graph());  // repack dense; logically unchanged
  }
}

void World::set_shard_threads(std::size_t threads) {
  shard_threads_ = threads == 0 ? ThreadPool::default_threads() : threads;
  if (shard_pool_ && shard_pool_->size() != shard_threads_)
    shard_pool_.reset();
}

ThreadPool* World::shard_pool() {
  if (shard_threads_ <= 1) return nullptr;
  if (!shard_pool_) shard_pool_ = std::make_unique<ThreadPool>(shard_threads_);
  return shard_pool_.get();
}

std::size_t World::memory_bytes() const {
  std::size_t bytes = positions_.capacity() * sizeof(Vec2) +
                      built_positions_.capacity() * sizeof(Vec2) +
                      ranges_.capacity() * sizeof(double) +
                      maybe_dirty_.capacity() * sizeof(NodeId) +
                      dirty_.capacity() * sizeof(NodeId) +
                      touched_rows_.capacity() * sizeof(NodeId) +
                      flap_row_drops_.capacity() * sizeof(std::uint32_t) +
                      geo_graph_.heap_bytes() + back_graph_.heap_bytes() +
                      csr_.heap_bytes() + builder_.heap_bytes();
  if (weather_active_)
    bytes += flapped_.heap_bytes() + back_flapped_.heap_bytes();
  if (shards_) bytes += shards_->heap_bytes();
  return bytes;
}

void World::save_state(snapshot::ByteWriter& w) const {
  w.size(positions_.size());
  for (const Vec2& p : positions_) {
    w.f64(p.x);
    w.f64(p.y);
  }
  w.size(step_);
  batteries_.save_state(w);
  mobility_->save_state(w);
  w.u64(epoch_);
  w.u64(state_epoch_);
}

void World::load_state(snapshot::ByteReader& r) {
  const std::size_t n = r.counted(16);
  AGENTNET_REQUIRE(n == positions_.size(), "snapshot: node count mismatch");
  for (Vec2& p : positions_) {
    p.x = r.f64();
    p.y = r.f64();
  }
  step_ = r.size();
  batteries_.load_state(r);
  mobility_->load_state(r);
  if (!fixed_topology_) {
    // Rebuild every derived structure from the restored snapshot. The
    // post-advance invariant ranges_[i] == quantized_range(i) holds at a
    // checkpoint (captured at the top of a step), so recomputing here
    // reproduces the built state exactly.
    for (std::size_t i = 0; i < ranges_.size(); ++i)
      ranges_[i] = quantized_range(static_cast<NodeId>(i));
    built_positions_ = positions_;
    builder_.build_into(geo_graph_, positions_, ranges_);
    if (weather_active_) {
      rebuild_flapped();
      std::swap(flapped_, back_flapped_);
      flapped_valid_ = true;
      flap_window_ = step_ / flapper_->persistence();
    }
    if (sharded_) {
      // Shard tiles, padded CSR and weather row counts are all derived
      // state — rebuilt here, never serialized, so the snapshot bytes are
      // identical to a flat world's.
      init_shards();
    } else {
      csr_.rebuild_from(graph());
    }
  }
  // The epoch counters are restored directly (not bumped by the rebuilds
  // above) so derived-state caches keyed on them stay coherent.
  epoch_ = r.u64();
  state_epoch_ = r.u64();
}

void World::set_link_flapper(std::optional<LinkFlapper> flapper) {
  AGENTNET_REQUIRE(!fixed_topology_ || !flapper,
                   "fixed-topology worlds do not support link flappers");
  flapper_ = std::move(flapper);
  weather_active_ = flapper_ && flapper_->drop_probability() > 0.0;
  flapped_valid_ = false;
  // Reconfiguration: the effective view may have switched representation,
  // so refresh it and conservatively open a new epoch.
  if (weather_active_) {
    rebuild_flapped();
    std::swap(flapped_, back_flapped_);
    flapped_valid_ = true;
    flap_window_ = step_ / flapper_->persistence();
  }
  if (sharded_) {
    csr_.rebuild_padded_from(graph());
    if (weather_active_) rebuild_flap_row_drops();
  } else {
    csr_.rebuild_from(graph());
  }
  ++epoch_;
}

}  // namespace agentnet
